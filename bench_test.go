// Benchmarks regenerating every table and figure of the paper's
// evaluation (§7), plus microbenchmarks of the protocol primitives
// and ablations of the design choices called out in DESIGN.md.
//
// Each BenchmarkFig*/BenchmarkTable* target runs the corresponding
// experiment end-to-end and reports domain metrics (gap ratios,
// rounds, record errors) via b.ReportMetric, so `go test -bench=.`
// regenerates the paper's numbers alongside the timing.
package tlc_test

import (
	"fmt"
	"testing"
	"time"

	"tlc"
	"tlc/internal/apps"
	"tlc/internal/experiment"
	"tlc/internal/netem"
	"tlc/internal/poc"
	"tlc/internal/sim"
)

// benchOpt is the sweep size used by the figure benches: large enough
// to be representative, small enough for -bench=. to finish quickly.
func benchOpt() experiment.Options {
	return experiment.Options{
		Duration: 20 * time.Second,
		Seeds:    1,
		BGLevels: []float64{0, 100, 160},
	}
}

// benchSerialParallel runs a figure at Workers 0 (sequential) and -1
// (one worker per CPU) so every sweep-backed figure bench reports
// both timings; the output is byte-identical at both settings.
func benchSerialParallel(b *testing.B, run func(experiment.Options) experiment.Result, opt experiment.Options) {
	b.Helper()
	for _, mode := range []struct {
		name    string
		workers int
	}{{"serial", 0}, {"parallel", -1}} {
		o := opt
		o.Workers = mode.workers
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := run(o)
				if res.Text == "" {
					b.Fatal("empty result")
				}
			}
		})
	}
}

// --- One benchmark per table/figure -------------------------------

func BenchmarkHeadlineGaps(b *testing.B) {
	benchSerialParallel(b, experiment.Headline, benchOpt())
}

func BenchmarkFig3CongestionGap(b *testing.B) {
	benchSerialParallel(b, experiment.Fig3, benchOpt())
}

func BenchmarkFig4Intermittent(b *testing.B) {
	// Fig4 is a single time-series cycle: no sweep to parallelise.
	for i := 0; i < b.N; i++ {
		_ = experiment.Fig4(benchOpt())
	}
}

func BenchmarkFig11cDataset(b *testing.B) {
	benchSerialParallel(b, experiment.Dataset, benchOpt())
}

func BenchmarkFig12SchemeCDF(b *testing.B) {
	// Seeds 3 (the tlcbench default) so at least one figure bench
	// exercises the multi-repetition grid.
	opt := benchOpt()
	opt.Seeds = 3
	benchSerialParallel(b, experiment.Fig12, opt)
}

func BenchmarkTable2AverageGap(b *testing.B) {
	var legacyEps, optEps float64
	for i := 0; i < b.N; i++ {
		// Recompute the table's underlying averages for metrics.
		r := experiment.NewTestbed(experiment.Config{
			App: apps.VRidgeGVSP, Seed: int64(i), C: 0.5,
			Duration: 20 * time.Second, BackgroundMbps: 120,
		}).Run()
		res := experiment.EvaluateAll(r, int64(i))
		legacyEps += res[experiment.SchemeLegacy].Epsilon
		optEps += res[experiment.SchemeOptimal].Epsilon
	}
	b.ReportMetric(legacyEps/float64(b.N)*100, "legacy-ε-%")
	b.ReportMetric(optEps/float64(b.N)*100, "optimal-ε-%")
}

func BenchmarkFig13CongestionRatio(b *testing.B) {
	benchSerialParallel(b, experiment.Fig13, benchOpt())
}

func BenchmarkFig14Disconnectivity(b *testing.B) {
	benchSerialParallel(b, experiment.Fig14, benchOpt())
}

func BenchmarkFig15LossWeight(b *testing.B) {
	benchSerialParallel(b, experiment.Fig15, benchOpt())
}

func BenchmarkFig16aRTT(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = experiment.Fig16a(benchOpt())
	}
}

func BenchmarkFig16bRounds(b *testing.B) {
	var rounds float64
	for i := 0; i < b.N; i++ {
		rounds += experiment.Rounds16bFor(apps.WebCamUDP, benchOpt())
	}
	b.ReportMetric(rounds/float64(b.N), "random-rounds")
}

func BenchmarkFig17PoCCost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = experiment.Fig17(benchOpt())
	}
}

func BenchmarkFig18RecordError(b *testing.B) {
	benchSerialParallel(b, experiment.Fig18, experiment.Options{
		Duration: 20 * time.Second, Seeds: 1, BGLevels: []float64{0, 160},
	})
}

func BenchmarkAppendixDGenericCharging(b *testing.B) {
	benchSerialParallel(b, experiment.AppendixD, benchOpt())
}

// --- Protocol microbenchmarks --------------------------------------

var (
	benchKeysOnce *poc.KeyPair
	benchKeysPeer *poc.KeyPair
)

func benchKeys(b *testing.B) (*poc.KeyPair, *poc.KeyPair) {
	b.Helper()
	if benchKeysOnce == nil {
		rng := sim.NewRNG(9001)
		var err error
		benchKeysOnce, err = poc.GenerateKeyPair(poc.DefaultKeyBits, rng.Fork("a"))
		if err != nil {
			b.Fatal(err)
		}
		benchKeysPeer, err = poc.GenerateKeyPair(poc.DefaultKeyBits, rng.Fork("b"))
		if err != nil {
			b.Fatal(err)
		}
	}
	return benchKeysOnce, benchKeysPeer
}

func benchPlan() poc.Plan { return poc.Plan{TStart: 0, TEnd: int64(time.Hour), C: 0.5} }

func BenchmarkPoCSign(b *testing.B) {
	edge, op := benchKeys(b)
	_ = edge
	rng := sim.NewRNG(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := poc.BuildCDR(benchPlan(), poc.RoleOperator, 0, 1e6, rng, op.Private); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPoCVerify(b *testing.B) {
	edge, op := benchKeys(b)
	rng := sim.NewRNG(2)
	cdr, _ := poc.BuildCDR(benchPlan(), poc.RoleOperator, 0, 1e6, rng, op.Private)
	cda, _ := poc.BuildCDA(benchPlan(), poc.RoleEdge, 0, 9.3e5, cdr, rng, edge.Private)
	proof, _ := poc.BuildPoC(cda, op.Private)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := poc.VerifyStateless(proof, benchPlan(), edge.Public, op.Public); err != nil {
			b.Fatal(err)
		}
	}
	perHour := 3600 / (b.Elapsed().Seconds() / float64(b.N))
	b.ReportMetric(perHour/1e3, "K-PoCs/hour")
}

func BenchmarkPoCNegotiateLocal(b *testing.B) {
	edgeKeys, err := tlc.GenerateKeyPair()
	if err != nil {
		b.Fatal(err)
	}
	opKeys, err := tlc.GenerateKeyPair()
	if err != nil {
		b.Fatal(err)
	}
	start := time.Unix(0, 0)
	plan := tlc.Plan{Start: start, End: start.Add(time.Hour), C: 0.5}
	usage := tlc.Usage{Sent: 1e9, Received: 9.3e8}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := tlc.NegotiateLocal(plan, edgeKeys, opKeys, usage, usage,
			tlc.Optimal, tlc.Optimal, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCycleSimulation(b *testing.B) {
	// Raw simulator throughput: one 20s VR cycle per iteration.
	var events uint64
	for i := 0; i < b.N; i++ {
		tb := experiment.NewTestbed(experiment.Config{
			App: apps.VRidgeGVSP, Seed: int64(i), C: 0.5, Duration: 20 * time.Second,
		})
		tb.Run()
		events += tb.Sched.Fired()
	}
	b.ReportMetric(float64(events)/b.Elapsed().Seconds()/1e6, "M-events/s")
}

// BenchmarkCity runs the sharded city scenario at several shard
// worker counts against one fixed topology (8 eNodeBs so every count
// divides the partitions evenly). Metrics are byte-identical at every
// count; the timing spread is the scaling story BENCH_city.json
// records. On a single-core host the parallel counts show barrier
// overhead rather than speedup.
func BenchmarkCity(b *testing.B) {
	for _, shards := range []int{0, 1, 2, 4} {
		shards := shards
		b.Run(fmt.Sprintf("shards%d", shards), func(b *testing.B) {
			var events uint64
			for i := 0; i < b.N; i++ {
				res, err := experiment.RunCity(experiment.CityConfig{
					ENodeBs: 8, UEsPerENB: 16,
					Duration: 10 * time.Second, Seed: 4242, Shards: shards,
				})
				if err != nil {
					b.Fatal(err)
				}
				for _, c := range res.Cells {
					events += c.EventsFired
				}
			}
			b.ReportMetric(float64(events)/b.Elapsed().Seconds()/1e6, "M-events/s")
		})
	}
}

func BenchmarkLinkForwarding(b *testing.B) {
	s := sim.NewScheduler()
	sink := &netem.Sink{}
	l := netem.NewLink("bench", s, 1e9, time.Microsecond, 1<<20, sink)
	ids := &netem.IDGen{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Recv(&netem.Packet{ID: ids.Next(), Size: 1400, QCI: 9})
		if i%1024 == 0 {
			s.RunUntil(s.Now() + time.Second)
		}
	}
	s.RunUntil(s.Now() + time.Minute)
}

// --- Event-engine microbenchmarks ----------------------------------

// BenchmarkSchedulerPushPop measures a steady-state push+pop cycle
// against the 4-ary heap at two resident sizes, so both the shallow
// and the cache-unfriendly deep regime are covered. The pooled path
// must report 0 allocs/op.
func BenchmarkSchedulerPushPop(b *testing.B) {
	for _, size := range []int{1e3, 1e5} {
		size := size
		b.Run(fmt.Sprintf("heap%d", size), func(b *testing.B) {
			s := sim.NewScheduler()
			rng := sim.NewRNG(int64(size))
			fn := func() {}
			for i := 0; i < size; i++ {
				s.AfterPooled(time.Duration(rng.Intn(1e9)), fn)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.AfterPooled(time.Duration(rng.Intn(1e9)), fn)
				s.Step()
			}
		})
	}
}

// BenchmarkSchedulerCancelHeavy schedules non-pooled events and
// cancels half of them, exercising the lazy-discard path where
// cancelled entries must be skipped at the heap root.
func BenchmarkSchedulerCancelHeavy(b *testing.B) {
	s := sim.NewScheduler()
	rng := sim.NewRNG(17)
	fn := func() {}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ev := s.After(time.Duration(rng.Intn(1e6)), fn)
		if i&1 == 0 {
			s.Cancel(ev)
		}
		if i&1023 == 0 {
			s.RunUntil(s.Now() + time.Millisecond)
		}
	}
	s.Run()
}

// BenchmarkSchedulerTickerHeavy drives 64 concurrent periodic tickers
// — the shape the testbed's meters, droppers and RSS scanners put on
// the heap — through repeated reschedules.
func BenchmarkSchedulerTickerHeavy(b *testing.B) {
	s := sim.NewScheduler()
	var ticks int
	for i := 0; i < 64; i++ {
		interval := time.Duration(i+1) * 100 * time.Microsecond
		s.Ticker(0, interval, func(sim.Time) { ticks++ })
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step()
	}
	if ticks == 0 {
		b.Fatal("no ticks fired")
	}
}

// --- Ablations (design choices called out in DESIGN.md) ------------

func BenchmarkAblationQueueSize(b *testing.B) {
	for _, kb := range []int{64, 256, 1024} {
		kb := kb
		b.Run(fmt.Sprintf("%dKiB", kb), func(b *testing.B) {
			var loss float64
			for i := 0; i < b.N; i++ {
				r := experiment.NewTestbed(experiment.Config{
					App: apps.VRidgeGVSP, Seed: int64(i), C: 0.5,
					Duration:      20 * time.Second,
					AirQueueBytes: kb << 10,
					RSS:           experiment.RSSSpec{Base: -90, MeanGap: 8 * time.Second, MeanOutage: 1930 * time.Millisecond},
				}).Run()
				loss += (r.Truth.Sent - r.Truth.Received) / r.Truth.Sent
			}
			b.ReportMetric(loss/float64(b.N)*100, "loss-%")
		})
	}
}

func BenchmarkAblationCounterCheck(b *testing.B) {
	for _, period := range []time.Duration{2 * time.Second, 10 * time.Second, 60 * time.Second} {
		period := period
		b.Run(period.String(), func(b *testing.B) {
			var errSum float64
			for i := 0; i < b.N; i++ {
				r := experiment.NewTestbed(experiment.Config{
					App: apps.VRidgeGVSP, Seed: int64(i), C: 0.5,
					Duration:           20 * time.Second,
					CounterCheckPeriod: period,
					RSS:                experiment.RSSSpec{Base: -90, MeanGap: 6 * time.Second, MeanOutage: 2 * time.Second},
				}).Run()
				if r.Truth.Received > 0 {
					d := r.OpView.Received - r.Truth.Received
					if d < 0 {
						d = -d
					}
					errSum += d / r.Truth.Received
				}
			}
			b.ReportMetric(errSum/float64(b.N)*100, "op-record-err-%")
		})
	}
}

func BenchmarkAblationKeySize(b *testing.B) {
	for _, bits := range []int{1024, 2048, 3072} {
		bits := bits
		b.Run(fmt.Sprintf("RSA-%d", bits), func(b *testing.B) {
			rng := sim.NewRNG(int64(bits))
			kp, err := poc.GenerateKeyPair(bits, rng)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			var size int
			for i := 0; i < b.N; i++ {
				cdr, err := poc.BuildCDR(benchPlan(), poc.RoleOperator, 0, 1e6, rng, kp.Private)
				if err != nil {
					b.Fatal(err)
				}
				d, _ := cdr.MarshalBinary()
				size = len(d)
			}
			b.ReportMetric(float64(size), "CDR-bytes")
		})
	}
}

func BenchmarkAblationCycleLength(b *testing.B) {
	for _, dur := range []time.Duration{10 * time.Second, 30 * time.Second, 60 * time.Second} {
		dur := dur
		b.Run(dur.String(), func(b *testing.B) {
			var eps float64
			for i := 0; i < b.N; i++ {
				r := experiment.NewTestbed(experiment.Config{
					App: apps.VRidgeGVSP, Seed: int64(i), C: 0.5, Duration: dur,
				}).Run()
				eps += experiment.Evaluate(r, experiment.SchemeOptimal, int64(i)).Epsilon
			}
			// Longer cycles amortise boundary skew: ε shrinks.
			b.ReportMetric(eps/float64(b.N)*100, "optimal-ε-%")
		})
	}
}
