package tlc

import (
	"net"
	"testing"
	"time"
)

var (
	tEdgeKeys *KeyPair
	tOpKeys   *KeyPair
)

func testKeys(t *testing.T) (*KeyPair, *KeyPair) {
	t.Helper()
	if tEdgeKeys == nil {
		var err error
		if tEdgeKeys, err = GenerateKeyPair(); err != nil {
			t.Fatal(err)
		}
		if tOpKeys, err = GenerateKeyPair(); err != nil {
			t.Fatal(err)
		}
	}
	return tEdgeKeys, tOpKeys
}

func testPlan() Plan {
	start := time.Date(2019, 1, 7, 7, 13, 46, 0, time.UTC)
	return Plan{Start: start, End: start.Add(time.Hour), C: 0.5}
}

func TestPlanValidate(t *testing.T) {
	if err := testPlan().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := testPlan()
	bad.End = bad.Start
	if bad.Validate() == nil {
		t.Fatal("empty cycle accepted")
	}
	bad = testPlan()
	bad.C = 2
	if bad.Validate() == nil {
		t.Fatal("c=2 accepted")
	}
}

func TestExpectedCharge(t *testing.T) {
	got := ExpectedCharge(testPlan(), Usage{Sent: 1000, Received: 900})
	if got != 950 {
		t.Fatalf("ExpectedCharge = %d, want 950", got)
	}
}

func TestNegotiateLocalAndVerify(t *testing.T) {
	edgeKeys, opKeys := testKeys(t)
	plan := testPlan()
	usage := Usage{Sent: 1_000_000, Received: 930_000}
	opR, edgeR, err := NegotiateLocal(plan, edgeKeys, opKeys, usage, usage, Optimal, Optimal, 7)
	if err != nil {
		t.Fatal(err)
	}
	want := ExpectedCharge(plan, usage)
	if opR.X != want || edgeR.X != want {
		t.Fatalf("X = %d/%d, want %d", opR.X, edgeR.X, want)
	}
	if opR.Rounds != 1 {
		t.Fatalf("rounds = %d, want 1", opR.Rounds)
	}
	if err := Verify(opR.Proof, plan, edgeKeys.Public(), opKeys.Public()); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	vol, err := ProofVolume(opR.Proof)
	if err != nil || vol != want {
		t.Fatalf("ProofVolume = %d, %v", vol, err)
	}
}

func TestVerifyRejectsWrongPlan(t *testing.T) {
	edgeKeys, opKeys := testKeys(t)
	plan := testPlan()
	usage := Usage{Sent: 500_000, Received: 480_000}
	opR, _, err := NegotiateLocal(plan, edgeKeys, opKeys, usage, usage, Honest, Honest, 9)
	if err != nil {
		t.Fatal(err)
	}
	other := plan
	other.C = 0.25
	if Verify(opR.Proof, other, edgeKeys.Public(), opKeys.Public()) == nil {
		t.Fatal("wrong plan verified")
	}
}

func TestVerifierRejectsReplays(t *testing.T) {
	edgeKeys, opKeys := testKeys(t)
	plan := testPlan()
	usage := Usage{Sent: 100_000, Received: 99_000}
	opR, _, err := NegotiateLocal(plan, edgeKeys, opKeys, usage, usage, Optimal, Optimal, 11)
	if err != nil {
		t.Fatal(err)
	}
	v := NewVerifier(edgeKeys.Public(), opKeys.Public())
	if err := v.Verify(opR.Proof, plan); err != nil {
		t.Fatal(err)
	}
	if v.Verify(opR.Proof, plan) == nil {
		t.Fatal("replayed proof verified")
	}
}

func TestNegotiateOverTCP(t *testing.T) {
	edgeKeys, opKeys := testKeys(t)
	plan := testPlan()
	usage := Usage{Sent: 2_000_000, Received: 1_900_000}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close() //tlcvet:allow errdiscard — test cleanup; the assertions, not Close, decide this test
	type res struct {
		r   *Receipt
		err error
	}
	ch := make(chan res, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			ch <- res{nil, err}
			return
		}
		defer conn.Close() //tlcvet:allow errdiscard — test cleanup; the assertions, not Close, decide this test
		edge := NewNegotiator(Edge, plan, edgeKeys, opKeys.Public(), usage, Optimal)
		edge.SetSeed(1)
		r, err := edge.Negotiate(conn, false)
		ch <- res{r, err}
	}()
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close() //tlcvet:allow errdiscard — test cleanup; the assertions, not Close, decide this test
	op := NewNegotiator(Operator, plan, opKeys, edgeKeys.Public(), usage, Optimal)
	op.SetSeed(2)
	op.SetTimeout(5 * time.Second)
	opReceipt, err := op.Negotiate(conn, true)
	if err != nil {
		t.Fatal(err)
	}
	edgeRes := <-ch
	if edgeRes.err != nil {
		t.Fatal(edgeRes.err)
	}
	if opReceipt.X != edgeRes.r.X {
		t.Fatalf("receipts disagree: %d vs %d", opReceipt.X, edgeRes.r.X)
	}
	if err := Verify(opReceipt.Proof, plan, edgeKeys.Public(), opKeys.Public()); err != nil {
		t.Fatal(err)
	}
}

func TestStrategyStrings(t *testing.T) {
	if Honest.String() != "honest" || Optimal.String() != "optimal" || RandomSelfish.String() != "random-selfish" {
		t.Fatal("strategy strings wrong")
	}
}

func TestRunScenarioBasics(t *testing.T) {
	rep, err := RunScenario(Scenario{
		App: "VRidge-GVSP", Duration: 15 * time.Second, Seed: 3, BackgroundMbps: 120,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.SentBytes == 0 || rep.ReceivedBytes == 0 || rep.CDRs == 0 {
		t.Fatalf("report = %+v", rep)
	}
	if rep.ReceivedBytes >= rep.SentBytes {
		t.Fatal("no loss under congestion?")
	}
	if rep.TLCOptimal.Rounds != 1 {
		t.Fatalf("optimal rounds = %d", rep.TLCOptimal.Rounds)
	}
	if rep.TLCOptimal.GapRatio >= rep.Legacy.GapRatio {
		t.Fatalf("TLC gap %.3f >= legacy %.3f", rep.TLCOptimal.GapRatio, rep.Legacy.GapRatio)
	}
}

func TestRunScenarioUnknownApp(t *testing.T) {
	if _, err := RunScenario(Scenario{App: "nope"}); err == nil {
		t.Fatal("unknown app accepted")
	}
}

func TestRunScenarioDefaultsAndDownlink(t *testing.T) {
	rep, err := RunScenario(Scenario{
		Downlink: true, Duration: 10 * time.Second, Seed: 4,
		OutageMeanGap: 8 * time.Second, OutageMeanDur: 1500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.DisconnectRatio <= 0 {
		t.Fatalf("eta = %v with outages configured", rep.DisconnectRatio)
	}
}

func TestAppsList(t *testing.T) {
	names := Apps()
	if len(names) != 4 {
		t.Fatalf("Apps = %v", names)
	}
}
