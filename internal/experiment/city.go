// The city scenario: one simulated city of eNodeBs run as a single
// sharded simulation (sim.ShardGroup). Each eNodeB is its own
// partition — its own scheduler, RNG stream, packet pool and link
// chain — and UEs live at exactly one eNodeB at a time, generating
// diurnally-modulated downlink load from the internal/apps workload
// profiles. Mobility moves UEs between eNodeBs over X2 exchange
// lanes, and packets still in the source cell's pipeline after a
// handover are X2-forwarded to the target cell (or dropped once the
// forwarding window closes — the §3.1 mobility gap cause, now at
// city scale). Periodic handover storms push bursts of UEs between
// cells, stressing the cross-shard lanes.
//
// The whole city is charged at each cell's gateway meter before the
// backhaul, so congestion, residual air loss and expired forwards all
// land post-meter: the city-wide charging gap is the same quantity
// the paper's single-cell testbed measures, aggregated over every
// subscriber of every cell.
//
// Determinism: each cell's seed and each UE's seed are pure functions
// of (Seed, index); a UE's RNG travels with it across handovers; and
// all cross-cell traffic rides netem Lane/Inbox merges keyed by
// (at, lane, seq). Metrics are therefore byte-identical at any shard
// worker count, 0 (sequential golden path) included.
package experiment

import (
	"fmt"
	"math"
	"strings"
	"time"

	"tlc/internal/apps"
	"tlc/internal/netem"
	"tlc/internal/sim"
	"tlc/internal/stats"
)

// CityConfig parameterises one city-scale cycle.
type CityConfig struct {
	// ENodeBs is the number of cells; each is one shard partition.
	ENodeBs int
	// UEsPerENB is the number of subscribers initially homed at each
	// cell (they migrate freely afterwards).
	UEsPerENB int
	// Duration is the simulated cycle length.
	Duration time.Duration
	// Seed drives all randomness deterministically.
	Seed int64
	// Shards is the worker goroutine count: 0 runs the sequential
	// golden path, W >= 1 runs W shard workers. Requesting more
	// shards than eNodeBs is an error, never a silent clamp.
	Shards int

	// X2Delay is the cross-cell lane latency and the shard barrier
	// lookahead; default 20ms.
	X2Delay time.Duration
	// DayLength is the diurnal load period (the cycle compresses one
	// day); default Duration.
	DayLength time.Duration
	// MoveCheckMean is the mean interval between a UE's mobility
	// decisions; default 5s.
	MoveCheckMean time.Duration
	// MoveProb is the per-check handover probability outside storms;
	// default 0.12.
	MoveProb float64
	// StormPeriod/StormLen schedule handover storms: the last
	// StormLen of every StormPeriod multiplies the mobility hazard by
	// StormFactor. Defaults: Duration/3, Duration/15, 8.
	StormPeriod time.Duration
	StormLen    time.Duration
	StormFactor float64
	// ForwardWindow is how long a source cell X2-forwards packets for
	// a departed UE before dropping them (charged but undelivered);
	// default 2s.
	ForwardWindow time.Duration

	// Stopwatch supplies the wall-clock probe for per-shard stall
	// accounting; nil disables stall measurement (stalls are
	// diagnostics and never feed the simulation).
	Stopwatch Stopwatch
	// TraceEvents records a per-cell FNV hash of the fired-event
	// (at, seq) stream for the shard-vs-sequential differential
	// tests. It costs one branch per event; leave it off outside
	// tests.
	TraceEvents bool
}

// City link parameters, one set per cell: the meter charges before
// the backhaul, so backhaul queueing, air loss/queueing and expired
// X2 forwards are all post-meter gap sources.
const (
	cityBackhaulRateBps    = 200e6
	cityBackhaulQueueBytes = 192 << 10
	cityBackhaulDelay      = 2 * time.Millisecond
	cityAirRateBps         = 170e6
	cityAirQueueBytes      = 256 << 10
	cityAirDelay           = 5 * time.Millisecond
	cityAirResidualLoss    = 0.075
)

func (c CityConfig) withDefaults() CityConfig {
	if c.Duration <= 0 {
		c.Duration = 60 * time.Second
	}
	if c.ENodeBs <= 0 {
		c.ENodeBs = 12
	}
	if c.UEsPerENB <= 0 {
		c.UEsPerENB = 40
	}
	if c.X2Delay <= 0 {
		c.X2Delay = 20 * time.Millisecond
	}
	if c.DayLength <= 0 {
		c.DayLength = c.Duration
	}
	if c.MoveCheckMean <= 0 {
		c.MoveCheckMean = 5 * time.Second
	}
	if c.MoveProb <= 0 {
		c.MoveProb = 0.12
	}
	if c.StormPeriod <= 0 {
		c.StormPeriod = c.Duration / 3
	}
	if c.StormLen <= 0 {
		c.StormLen = c.Duration / 15
	}
	if c.StormFactor <= 0 {
		c.StormFactor = 8
	}
	if c.ForwardWindow <= 0 {
		c.ForwardWindow = 2 * time.Second
	}
	return c
}

// CellStat is one cell's contribution to a city run. Everything here
// is deterministic at any shard count.
type CellStat struct {
	Cell           int
	EventsFired    uint64
	ChargedBytes   uint64
	DeliveredBytes uint64
	QueueDrops     uint64
	LossDrops      uint64
	Forwarded      uint64
	ForwardDrops   uint64
	HandoversOut   uint64
	HandoversIn    uint64
	LanePackets    uint64
	InboxArrivals  uint64
	FiredTraceHash uint64 // only with CityConfig.TraceEvents
}

// CityResult is one completed city cycle.
type CityResult struct {
	Cfg   CityConfig
	Cells []CellStat
	// Shards is the per-worker execution report (events fired, stall
	// at barriers). Unlike everything else here it depends on the
	// shard count and, for stalls, on the host — it never enters
	// Metrics or Text.
	Shards []ShardStat

	ChargedBytes   uint64
	DeliveredBytes uint64
	Handovers      uint64

	// GapSample holds the per-UE charging-gap ratios, merged from
	// per-cell contributions in cell order (stats.Merge), UE order
	// within a cell — never worker completion order.
	GapSample *stats.Sample

	Metrics map[string]float64
	Text    string
}

// cityUE is one subscriber. Exactly one cell owns it at any time;
// ownership transfers through the ueMover at a window barrier, which
// is what makes the unguarded fields safe.
type cityUE struct {
	id   uint32
	prof apps.Profile
	rng  *sim.RNG

	// res marks the current residency; depart flips res.gone so the
	// old cell's orphaned tick/move events fire as no-ops. The marker
	// — not the UE — is what stale closures read: it belongs to the
	// old cell's scheduler, so no cross-shard access ever happens.
	res *residency

	frames    uint64
	charged   uint64
	delivered uint64
	rxPackets uint64
	handovers uint64
	home      int
}

type departure struct {
	at   sim.Time
	dest int
}

// residency gates one UE's tick/move event chains at one cell. It is
// created at attach, captured by that residency's closures, and
// flipped at depart — all on the owning cell's scheduler.
type residency struct {
	gone bool
}

// cityCell is one eNodeB partition.
type cityCell struct {
	id   int
	city *cityRun

	sched *sim.Scheduler
	rng   *sim.RNG
	pool  *netem.PacketPool
	ids   *netem.IDGen

	backhaul *netem.Link
	air      *netem.Link

	residents map[uint32]*cityUE
	departed  map[uint32]departure

	lanes []*netem.Lane // indexed by destination cell; nil at self
	inbox *netem.Inbox

	charged      uint64
	delivered    uint64
	forwarded    uint64
	forwardDrops uint64
	handoversOut uint64
	handoversIn  uint64
	traceHash    uint64
}

type cityRun struct {
	cfg   CityConfig
	group *sim.ShardGroup
	cells []*cityCell
	ues   []*cityUE
	mover *ueMover
}

// diurnal returns the load multiplier in [0.25, 1] at simulated time
// t: one cosine day per DayLength, troughs at the cycle boundaries.
func (r *cityRun) diurnal(t sim.Time) float64 {
	day := r.cfg.DayLength.Seconds()
	phase := math.Mod(t.Seconds(), day)
	return 0.25 + 0.375*(1-math.Cos(2*math.Pi*phase/day))
}

// inStorm reports whether t falls in a handover storm (the last
// StormLen of each StormPeriod).
func (r *cityRun) inStorm(t sim.Time) bool {
	phase := t % r.cfg.StormPeriod
	return phase >= r.cfg.StormPeriod-r.cfg.StormLen
}

// nextGap draws the next inter-frame (or inter-packet) gap for u from
// its own stream, scaled by the diurnal load at the cell's clock.
func (c *cityCell) nextGap(u *cityUE) time.Duration {
	rate := u.prof.FPS
	if u.prof.PacketMode {
		rate = u.prof.PacketRate
	}
	rate *= c.city.diurnal(c.sched.Now())
	mean := float64(time.Second) / rate
	return time.Duration(mean * (0.9 + 0.2*u.rng.Float64()))
}

// attach makes c the UE's owner: it joins the resident table and its
// traffic and mobility processes restart on c's scheduler. The
// closures capture a fresh residency marker instead of the UE, and
// depart flips it, so events left behind at the previous cell expire
// silently without ever touching the (now foreign-owned) UE — the
// marker lives and dies on one cell's scheduler.
func (c *cityCell) attach(u *cityUE) {
	res := &residency{}
	u.res = res
	u.home = c.id
	c.residents[u.id] = u
	delete(c.departed, u.id)

	var tick func()
	tick = func() {
		if res.gone {
			return
		}
		c.emit(u)
		c.sched.AfterPooled(c.nextGap(u), tick)
	}
	c.sched.AfterPooled(c.nextGap(u), tick)

	var move func()
	move = func() {
		if res.gone {
			return
		}
		p := c.city.cfg.MoveProb
		if c.city.inStorm(c.sched.Now()) {
			p *= c.city.cfg.StormFactor
			if p > 0.9 {
				p = 0.9
			}
		}
		if len(c.city.cells) > 1 && u.rng.Bernoulli(p) {
			c.depart(u)
			return
		}
		c.sched.AfterPooled(u.rng.Exp(c.city.cfg.MoveCheckMean), move)
	}
	c.sched.AfterPooled(u.rng.Exp(c.city.cfg.MoveCheckMean), move)
}

// emit generates one application frame (or control packet) for u,
// charges it at the cell's gateway meter and hands it to the
// backhaul. Everything downstream of the charge is a potential gap
// source.
func (c *cityCell) emit(u *cityUE) {
	p := u.prof
	if p.PacketMode {
		c.sendPacket(u, p.PacketSize+p.HeaderBytes)
		return
	}
	u.frames++
	bytes := float64(p.MeanFrameBytes) * math.Exp(u.rng.Norm(0, p.FrameSigma))
	if p.KeyFrameInterval > 0 && u.frames%uint64(p.KeyFrameInterval) == 0 {
		bytes *= p.KeyFrameScale
	}
	rem := int(bytes)
	if rem < 1 {
		rem = 1
	}
	for rem > 0 {
		sz := p.MTU
		if rem < sz {
			sz = rem
		}
		rem -= sz
		c.sendPacket(u, sz+p.HeaderBytes)
	}
}

func (c *cityCell) sendPacket(u *cityUE, size int) {
	pk := c.pool.Get()
	pk.ID = c.ids.Next()
	pk.Flow = u.prof.Name
	pk.QCI = u.prof.QCI
	pk.Size = size
	pk.Dir = netem.Downlink
	pk.Sent = c.sched.Now()
	pk.TEID = u.id
	c.charged += uint64(size)
	u.charged += uint64(size)
	c.backhaul.Recv(pk)
}

// depart hands the UE off: it leaves the resident table, a departure
// record keeps X2 forwarding alive for the forward window, and the
// UE state crosses to the destination cell through the mover lane.
func (c *cityCell) depart(u *cityUE) {
	now := c.sched.Now()
	dest := u.rng.Intn(len(c.city.cells) - 1)
	if dest >= c.id {
		dest++
	}
	u.res.gone = true // expire this residency's tick/move events
	delete(c.residents, u.id)
	c.departed[u.id] = departure{at: now, dest: dest}
	c.handoversOut++
	u.handovers++
	c.city.mover.send(c.id, dest, u, now+sim.Time(c.city.cfg.X2Delay))
}

// airDeliver terminates the cell's downlink air chain: deliver to the
// resident UE, X2-forward to a recently departed UE's new cell, or
// drop once the forwarding window has closed (charged, never
// delivered — the mobility share of the city's charging gap).
func (c *cityCell) airDeliver(p *netem.Packet) {
	if u, ok := c.residents[p.TEID]; ok {
		u.delivered += uint64(p.Size)
		u.rxPackets++
		c.delivered += uint64(p.Size)
		c.pool.Put(p)
		return
	}
	if dep, ok := c.departed[p.TEID]; ok {
		if c.sched.Now()-dep.at <= sim.Time(c.city.cfg.ForwardWindow) {
			c.forwarded++
			c.lanes[dep.dest].Send(p)
			return
		}
	}
	c.forwardDrops++
	c.pool.Put(p)
}

// ueMove is one UE handoff in transit between cells.
type ueMove struct {
	at   sim.Time
	ue   *cityUE
	dest int
}

// ueMover is the control-plane exchanger: it carries UE ownership
// between cells. Moves from all source cells merge by (at, source
// cell, send order) — the same deterministic key shape as the packet
// lanes — and the mover is registered before the inboxes, so at equal
// times a UE attaches before its forwarded packets arrive.
type ueMover struct {
	cells []*cityCell
	delay time.Duration
	bufs  [][]ueMove
	heads []int
}

func newUEMover(cells []*cityCell, delay time.Duration) *ueMover {
	return &ueMover{
		cells: cells,
		delay: delay,
		bufs:  make([][]ueMove, len(cells)),
		heads: make([]int, len(cells)),
	}
}

func (m *ueMover) send(src, dest int, u *cityUE, at sim.Time) {
	m.bufs[src] = append(m.bufs[src], ueMove{at: at, ue: u, dest: dest})
}

// MinDelay implements sim.Exchanger.
func (m *ueMover) MinDelay() time.Duration { return m.delay }

// Flush implements sim.Exchanger.
func (m *ueMover) Flush(limit sim.Time) {
	for {
		best := -1
		var bestAt sim.Time
		for src := range m.bufs {
			h := m.heads[src]
			if h >= len(m.bufs[src]) {
				continue
			}
			if best < 0 || m.bufs[src][h].at < bestAt {
				best, bestAt = src, m.bufs[src][h].at
			}
		}
		if best < 0 {
			break
		}
		mv := m.bufs[best][m.heads[best]]
		m.heads[best]++
		if mv.at <= limit {
			panic(fmt.Sprintf("experiment: ue move at %v violates the window barrier at %v", mv.at, limit))
		}
		d := m.cells[mv.dest]
		u := mv.ue
		d.sched.At(mv.at, func() {
			d.handoversIn++
			d.attach(u)
		})
	}
	for src := range m.bufs {
		if m.heads[src] > 0 {
			m.bufs[src] = m.bufs[src][:0]
			m.heads[src] = 0
		}
	}
}

// buildCity wires the partitions, lanes and subscribers.
func buildCity(cfg CityConfig) *cityRun {
	r := &cityRun{cfg: cfg}
	r.group = sim.NewShardGroup(cfg.ENodeBs, cfg.X2Delay)
	if cfg.Stopwatch != nil {
		r.group.Stopwatch = cfg.Stopwatch
	}

	r.cells = make([]*cityCell, cfg.ENodeBs)
	for i := range r.cells {
		sh := r.group.Shard(i)
		c := &cityCell{
			id:        i,
			city:      r,
			sched:     sh.Sched,
			rng:       sim.NewRNG(sim.SeedForCell(cfg.Seed, 0, i)),
			pool:      &netem.PacketPool{},
			ids:       &netem.IDGen{},
			residents: make(map[uint32]*cityUE),
			departed:  make(map[uint32]departure),
			lanes:     make([]*netem.Lane, cfg.ENodeBs),
		}
		c.air = netem.NewLink(fmt.Sprintf("city-air-%d", i), c.sched,
			cityAirRateBps, cityAirDelay, cityAirQueueBytes, netem.NodeFunc(c.airDeliver))
		c.air.Pool = c.pool
		c.air.Loss = &netem.BernoulliLoss{P: cityAirResidualLoss, RNG: c.rng.Fork("air-loss")}
		c.backhaul = netem.NewLink(fmt.Sprintf("city-backhaul-%d", i), c.sched,
			cityBackhaulRateBps, cityBackhaulDelay, cityBackhaulQueueBytes, c.air)
		c.backhaul.Pool = c.pool
		if cfg.TraceEvents {
			c.traceHash = 14695981039346656037 // FNV-1a offset basis
			cell := c
			cell.sched.TraceHook = func(at sim.Time, seq uint64) {
				cell.traceHash = fnvMix(fnvMix(cell.traceHash, uint64(at)), seq)
			}
		}
		r.cells[i] = c
	}

	// Cross-cell wiring: the UE mover first (a UE attaches before its
	// forwarded packets land at an equal instant), then one inbox per
	// cell with its inbound lanes attached in source order.
	if cfg.ENodeBs > 1 {
		r.mover = newUEMover(r.cells, cfg.X2Delay)
		r.group.AddExchanger(r.mover)
		for _, dst := range r.cells {
			d := dst
			dst.inbox = netem.NewInbox(fmt.Sprintf("city-x2-in-%d", dst.id),
				dst.sched, dst.pool, netem.NodeFunc(func(p *netem.Packet) { d.air.Recv(p) }))
			for _, src := range r.cells {
				if src.id == dst.id {
					continue
				}
				lane := netem.NewLane(fmt.Sprintf("city-x2-%d-%d", src.id, dst.id),
					cfg.X2Delay, src.sched, src.pool)
				src.lanes[dst.id] = lane
				dst.inbox.Attach(lane)
			}
			r.group.AddExchanger(dst.inbox)
		}
	}

	// Subscribers: UE g starts at cell g/UEsPerENB with the workload
	// profile g%len(Workloads), downlink. Its RNG seed is a pure
	// function of (Seed, g) and travels with it across handovers.
	n := cfg.ENodeBs * cfg.UEsPerENB
	r.ues = make([]*cityUE, n)
	for g := 0; g < n; g++ {
		u := &cityUE{
			id:   uint32(g),
			prof: apps.Workloads[g%len(apps.Workloads)].WithDirection(netem.Downlink),
			rng:  sim.NewRNG(sim.SeedForCell(cfg.Seed, 1, g)),
		}
		r.ues[g] = u
		r.cells[g/cfg.UEsPerENB].attach(u)
	}
	return r
}

func fnvMix(h, v uint64) uint64 {
	const prime = 1099511628211
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= prime
		v >>= 8
	}
	return h
}

// RunCity executes one city cycle at cfg.Shards workers and collects
// the results. It refuses — rather than clamps — a shard count above
// the eNodeB count, and refuses negative counts.
func RunCity(cfg CityConfig) (*CityResult, error) {
	cfg = cfg.withDefaults()
	if cfg.Shards < 0 {
		return nil, fmt.Errorf("city: negative shard count %d", cfg.Shards)
	}
	if cfg.Shards > cfg.ENodeBs {
		return nil, fmt.Errorf("city: %d shards exceed %d eNodeBs (refusing to clamp)", cfg.Shards, cfg.ENodeBs)
	}
	r := buildCity(cfg)
	workers, err := r.group.RunUntil(cfg.Duration, cfg.Shards)
	if err != nil {
		return nil, err
	}
	res := r.collect()
	res.Shards = make([]ShardStat, len(workers))
	for i, w := range workers {
		res.Shards[i] = ShardStat{
			Shard:       w.Worker,
			Partitions:  w.Partitions,
			EventsFired: w.EventsFired,
			StallMS:     float64(w.Stall.Microseconds()) / 1e3,
		}
	}
	r.publishMetrics()
	return res, nil
}

// publishMetrics folds every partition's run counters into the
// process-wide registry at the run boundary (the PR 5 two-tier rule:
// nothing observes inline, so event order and RNG draws are
// untouched), cell by cell in index order.
func (r *cityRun) publishMetrics() {
	for _, c := range r.cells {
		c.sched.PublishMetrics()
		c.backhaul.PublishMetrics()
		c.air.PublishMetrics()
		c.pool.PublishMetrics()
		for _, l := range c.lanes {
			l.PublishMetrics()
		}
		c.inbox.PublishMetrics()
	}
}

// collect aggregates the run into a CityResult. Every loop is in
// cell or UE index order; nothing depends on worker completion order.
func (r *cityRun) collect() *CityResult {
	cfg := r.cfg
	res := &CityResult{Cfg: cfg}
	res.Cells = make([]CellStat, len(r.cells))
	var queueDrops, lossDrops, forwarded, forwardDrops, lanePkts, inboxPkts uint64
	for i, c := range r.cells {
		st := CellStat{
			Cell:           i,
			EventsFired:    c.sched.Fired(),
			ChargedBytes:   c.charged,
			DeliveredBytes: c.delivered,
			QueueDrops:     c.backhaul.Stats.QueueDrops + c.air.Stats.QueueDrops,
			LossDrops:      c.air.Stats.LossDrops,
			Forwarded:      c.forwarded,
			ForwardDrops:   c.forwardDrops,
			HandoversOut:   c.handoversOut,
			HandoversIn:    c.handoversIn,
			FiredTraceHash: c.traceHash,
		}
		for _, l := range c.lanes {
			if l != nil {
				st.LanePackets += l.Stats.Packets
			}
		}
		if c.inbox != nil {
			st.InboxArrivals = c.inbox.Arrived()
		}
		res.Cells[i] = st
		res.ChargedBytes += st.ChargedBytes
		res.DeliveredBytes += st.DeliveredBytes
		res.Handovers += st.HandoversOut
		queueDrops += st.QueueDrops
		lossDrops += st.LossDrops
		forwarded += st.Forwarded
		forwardDrops += st.ForwardDrops
		lanePkts += st.LanePackets
		inboxPkts += st.InboxArrivals
	}

	// Per-UE gap ratios: one Sample contribution per cell (the UEs
	// initially homed there, in UE order), merged in cell order. The
	// merge must never reorder contributions — see stats.Merge and
	// the shard-parity regression tests.
	parts := make([]*stats.Sample, cfg.ENodeBs)
	for i := range parts {
		part := stats.NewSample()
		for g := i * cfg.UEsPerENB; g < (i+1)*cfg.UEsPerENB; g++ {
			u := r.ues[g]
			gap := 0.0
			if u.charged > 0 {
				gap = float64(u.charged-u.delivered) / float64(u.charged)
			}
			part.Add(gap)
		}
		parts[i] = part
	}
	res.GapSample = stats.Merge(parts...)

	events := uint64(0)
	for _, st := range res.Cells {
		events += st.EventsFired
	}
	gapMB := float64(res.ChargedBytes-res.DeliveredBytes) / 1e6
	gapRatio := 0.0
	if res.ChargedBytes > 0 {
		gapRatio = float64(res.ChargedBytes-res.DeliveredBytes) / float64(res.ChargedBytes)
	}
	res.Metrics = map[string]float64{
		"charged_mb":        float64(res.ChargedBytes) / 1e6,
		"delivered_mb":      float64(res.DeliveredBytes) / 1e6,
		"gap_mb":            gapMB,
		"gap_ratio":         gapRatio,
		"handovers":         float64(res.Handovers),
		"queue_drop_pkts":   float64(queueDrops),
		"loss_drop_pkts":    float64(lossDrops),
		"x2_forwarded_pkts": float64(forwarded),
		"forward_drop_pkts": float64(forwardDrops),
		"x2_lane_pkts":      float64(lanePkts),
		"ue_gap_p50":        res.GapSample.Percentile(50),
		"ue_gap_p95":        res.GapSample.Percentile(95),
		"events_fired":      float64(events),
	}

	var b strings.Builder
	fmt.Fprintf(&b, "city: %d eNodeBs x %d UEs, %v cycle, lookahead %v\n",
		cfg.ENodeBs, cfg.UEsPerENB, cfg.Duration, cfg.X2Delay)
	fmt.Fprintf(&b, "%-5s %10s %12s %12s %8s %8s %9s %9s\n",
		"cell", "events", "charged MB", "delivered MB", "ho-out", "ho-in", "x2-fwd", "fwd-drop")
	for _, st := range res.Cells {
		fmt.Fprintf(&b, "%-5d %10d %12.2f %12.2f %8d %8d %9d %9d\n",
			st.Cell, st.EventsFired,
			float64(st.ChargedBytes)/1e6, float64(st.DeliveredBytes)/1e6,
			st.HandoversOut, st.HandoversIn, st.Forwarded, st.ForwardDrops)
	}
	fmt.Fprintf(&b, "total: charged %.2f MB, delivered %.2f MB, gap %.2f MB (%.2f%%), %d handovers, %d x2 packets\n",
		float64(res.ChargedBytes)/1e6, float64(res.DeliveredBytes)/1e6,
		gapMB, gapRatio*100, res.Handovers, lanePkts)
	b.WriteString(stats.RenderCDF("per-UE charging-gap ratio", res.GapSample, 10))
	res.Text = b.String()
	return res
}

// CityScale returns the city sizing tlcbench and the City runner use
// for the given options: the full 12x40 city for full-length cycles,
// a 4x8 city for quick/smoke runs. tlcbench validates -shards against
// the eNodeB count this returns.
func CityScale(opt Options) (enodebs, uesPerENB int) {
	if opt.Duration > 0 && opt.Duration < 30*time.Second {
		return 4, 8
	}
	return 12, 40
}

// City is the experiment runner: one city-scale sharded cycle at
// opt.Shards workers. Its Metrics and Text are byte-identical at any
// shard count; only Result.Shards (events per worker, barrier stalls)
// reflects the execution layout.
func City(opt Options) Result {
	opt = opt.withDefaults()
	enbs, ues := CityScale(opt)
	res, err := RunCity(CityConfig{
		ENodeBs:   enbs,
		UEsPerENB: ues,
		Duration:  opt.Duration,
		Seed:      4242,
		Shards:    opt.Shards,
		Stopwatch: opt.Stopwatch,
	})
	if err != nil {
		// tlcbench validates -shards before running; reaching this
		// means a programming error, not user input.
		panic("experiment: " + err.Error())
	}
	return Result{
		ID:      "city",
		Title:   "Extension: city-scale sharded simulation (diurnal load, mobility, handover storms)",
		Text:    res.Text,
		Metrics: res.Metrics,
		Shards:  res.Shards,
	}
}
