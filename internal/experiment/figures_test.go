package experiment

import (
	"strings"
	"testing"
	"time"

	"tlc/internal/apps"
	"tlc/internal/netem"
)

func TestHeadlineShape(t *testing.T) {
	res := Headline(Quick())
	if res.ID != "headline" || !strings.Contains(res.Text, "WebCam-RTSP") {
		t.Fatalf("headline output:\n%s", res.Text)
	}
	// Every workload row present.
	for _, app := range fig3Apps {
		if !strings.Contains(res.Text, app.Name) {
			t.Fatalf("missing %s:\n%s", app.Name, res.Text)
		}
	}
}

func TestFig3GapGrowsWithCongestion(t *testing.T) {
	opt := Quick()
	opt.BGLevels = []float64{0, 160}
	opt.Duration = 20 * time.Second
	// Use the raw sweep rather than parsing text.
	for i, app := range fig3Apps {
		var gaps []float64
		for _, bg := range opt.BGLevels {
			r := NewTestbed(Config{
				App: app, Seed: int64(300 + i*31), C: 0.5,
				Duration: opt.Duration, BackgroundMbps: bg,
			}).Run()
			gaps = append(gaps, legacyGapBytes(r))
		}
		if gaps[1] <= gaps[0] {
			t.Fatalf("%s: congestion gap %v <= baseline %v", app.Name, gaps[1], gaps[0])
		}
	}
	res := Fig3(opt)
	if !strings.Contains(res.Text, "bg-Mbps") {
		t.Fatalf("fig3 output:\n%s", res.Text)
	}
}

func TestFig4TimeSeries(t *testing.T) {
	res := Fig4(Quick())
	if !strings.Contains(res.Text, "RSS(dBm)") || !strings.Contains(res.Text, "total gap") {
		t.Fatalf("fig4 output:\n%s", res.Text)
	}
	// The RSS column must show outages (values at the depth level).
	if !strings.Contains(res.Text, "-125") {
		t.Logf("fig4 (no visible outage sample at print resolution):\n%s", res.Text)
	}
}

func TestDatasetCountsCDRs(t *testing.T) {
	res := Dataset(Quick())
	for _, app := range apps.Workloads {
		if !strings.Contains(res.Text, app.Name) {
			t.Fatalf("dataset missing %s:\n%s", app.Name, res.Text)
		}
	}
}

func TestTable2SchemeOrdering(t *testing.T) {
	opt := Quick()
	opt.Duration = 20 * time.Second
	opt.Seeds = 2
	// Recompute the underlying averages to assert the paper's
	// ordering: optimal ε < legacy ε for every workload.
	for i, app := range apps.Workloads {
		cells := standardSweep(app, 0.5, opt, int64(2200+100*i))
		var legSum, optSum float64
		for _, cell := range cells {
			legSum += cell.res[SchemeLegacy].Epsilon
			optSum += cell.res[SchemeOptimal].Epsilon
		}
		if optSum >= legSum {
			t.Fatalf("%s: optimal ε sum %.3f >= legacy %.3f", app.Name, optSum, legSum)
		}
		// TLC-optimal's average relative gap stays small.
		if optSum/float64(len(cells)) > 0.05 {
			t.Fatalf("%s: optimal mean ε = %.3f", app.Name, optSum/float64(len(cells)))
		}
	}
}

func TestFig14EtaSweepMonotone(t *testing.T) {
	// Denser outages must produce larger legacy gaps.
	app := apps.WebCamUDP.WithDirection(netem.Downlink)
	mk := func(gap time.Duration, seed int64) float64 {
		r := NewTestbed(Config{
			App: app, Seed: seed, C: 0.5, Duration: 30 * time.Second,
			RSS: RSSSpec{Base: -90, MeanGap: gap, MeanOutage: 1930 * time.Millisecond},
		}).Run()
		return Evaluate(r, SchemeLegacy, seed).Epsilon
	}
	sparse := (mk(40*time.Second, 1) + mk(40*time.Second, 2) + mk(40*time.Second, 3)) / 3
	dense := (mk(8*time.Second, 1) + mk(8*time.Second, 2) + mk(8*time.Second, 3)) / 3
	if dense <= sparse {
		t.Fatalf("legacy gap did not grow with eta: sparse=%.3f dense=%.3f", sparse, dense)
	}
}

func TestFig15SmallerCMoreReduction(t *testing.T) {
	opt := Quick()
	opt.Duration = 20 * time.Second
	mu := func(c float64) float64 {
		cells := standardSweep(apps.VRidgeGVSP, c, opt, int64(5500+int(c*100)))
		var sum float64
		for _, cell := range cells {
			sum += GapReduction(cell.res[SchemeLegacy].X, cell.res[SchemeOptimal].X)
		}
		return sum / float64(len(cells))
	}
	mu0, mu1 := mu(0), mu(1)
	if mu0 <= mu1 {
		t.Fatalf("µ(c=0)=%.3f <= µ(c=1)=%.3f; reduction must shrink with c", mu0, mu1)
	}
	// At c=1 TLC charges all sent data, like honest legacy: µ ≈ 0.
	if mu1 > 0.05 || mu1 < -0.05 {
		t.Fatalf("µ(c=1) = %.3f, want ~0", mu1)
	}
}

func TestFig16aNoInCycleImpact(t *testing.T) {
	res := Fig16a(Quick())
	for _, dev := range []string{"EL20", "Pixel2XL", "S7Edge"} {
		if !strings.Contains(res.Text, dev) {
			t.Fatalf("fig16a missing %s:\n%s", dev, res.Text)
		}
	}
}

func TestFig16bOptimalIsOneRound(t *testing.T) {
	opt := Quick()
	opt.Duration = 15 * time.Second
	rounds := Rounds16bFor(apps.WebCamUDP, opt)
	if rounds < 1.2 || rounds > 10 {
		t.Fatalf("random rounds = %.1f, want a few", rounds)
	}
	res := Fig16b(opt)
	if !strings.Contains(res.Text, "TLC-optimal") {
		t.Fatalf("fig16b output:\n%s", res.Text)
	}
}

func TestFig17RealCryptoAndSizes(t *testing.T) {
	res := Fig17(Quick())
	for _, want := range []string{"TLC CDR", "TLC CDA", "TLC PoC", "PoCs/hour", "this-host"} {
		if !strings.Contains(res.Text, want) {
			t.Fatalf("fig17 missing %q:\n%s", want, res.Text)
		}
	}
}

func TestFig18ErrorsInPaperRegime(t *testing.T) {
	opt := Quick()
	opt.Duration = 20 * time.Second
	res := Fig18(opt)
	if !strings.Contains(res.Text, "operator record error") {
		t.Fatalf("fig18 output:\n%s", res.Text)
	}
}

func TestAppendixDBoundHolds(t *testing.T) {
	opt := Quick()
	opt.Duration = 15 * time.Second
	res := AppendixD(opt)
	if strings.Contains(res.Text, "false") {
		t.Fatalf("Appendix D bound violated:\n%s", res.Text)
	}
}

func TestByIDAndIDs(t *testing.T) {
	for _, id := range IDs {
		if _, ok := ByID(id); !ok {
			t.Fatalf("missing runner for %s", id)
		}
	}
	if _, ok := ByID("nope"); ok {
		t.Fatal("unknown id resolved")
	}
}

func TestHandoverExperiment(t *testing.T) {
	opt := Quick()
	opt.Duration = 15 * time.Second
	res := Handover(opt)
	if !strings.Contains(res.Text, "handovers") || !strings.Contains(res.Text, "none") {
		t.Fatalf("handover output:\n%s", res.Text)
	}
}

func TestRetransmissionExperiment(t *testing.T) {
	res := Retransmission(Quick())
	if !strings.Contains(res.Text, "over-charge") {
		t.Fatalf("retransmission output:\n%s", res.Text)
	}
	// The most aggressive RTO row must show a positive over-charge.
	lines := strings.Split(strings.TrimSpace(res.Text), "\n")
	last := lines[len(lines)-2] // row before the caption
	if strings.Contains(last, " 0.0%") {
		t.Fatalf("aggressive RTO shows no over-charge:\n%s", res.Text)
	}
}

func TestStrawmanExperiment(t *testing.T) {
	opt := Quick()
	opt.Duration = 15 * time.Second
	res := Strawman(opt)
	for _, want := range []string{"strawman 1", "strawman 2", "RRC COUNTER CHECK", "revenue loss"} {
		if !strings.Contains(res.Text, want) {
			t.Fatalf("strawman output missing %q:\n%s", want, res.Text)
		}
	}
}
