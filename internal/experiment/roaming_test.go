package experiment

import (
	"reflect"
	"runtime"
	"strings"
	"testing"
)

// The roaming sweep must be byte-identical at any worker count —
// determinism is what makes the settlement numbers auditable — and
// the byzantine chain battery must pin byz_chain_verified to zero.

func TestRoamingWorkerParity(t *testing.T) {
	if testing.Short() {
		t.Skip("crypto battery in -short mode")
	}
	opt := Options{Seeds: 2}
	base := Roaming(opt)
	for _, workers := range []int{0, 1, 4, 4, runtime.NumCPU()} {
		o := opt
		o.Workers = workers
		got := Roaming(o)
		if got.Text != base.Text {
			t.Fatalf("workers=%d text diverged:\n--- base ---\n%s--- got ---\n%s",
				workers, base.Text, got.Text)
		}
		if !reflect.DeepEqual(got.Metrics, base.Metrics) {
			t.Fatalf("workers=%d metrics diverged", workers)
		}
	}
}

func TestRoamingQuickMetrics(t *testing.T) {
	if testing.Short() {
		t.Skip("crypto battery in -short mode")
	}
	res := Roaming(Options{Seeds: 2})
	if res.ID != "roaming" {
		t.Fatalf("result ID = %q", res.ID)
	}
	if res.Metrics["byz_chain_verified"] != 0 {
		t.Fatalf("byz_chain_verified = %v, must be 0\n%s",
			res.Metrics["byz_chain_verified"], res.Text)
	}
	runs := res.Metrics["byz_chain_runs"]
	if runs == 0 || res.Metrics["byz_chain_typed_rejections"] != runs {
		t.Fatalf("battery: %v typed rejections of %v runs\n%s",
			res.Metrics["byz_chain_typed_rejections"], runs, res.Text)
	}
	if res.Metrics["roam_wire_runs"] == 0 ||
		res.Metrics["roam_wire_ok"] != res.Metrics["roam_wire_runs"] {
		t.Fatalf("wire check: %v/%v honest chains settled",
			res.Metrics["roam_wire_ok"], res.Metrics["roam_wire_runs"])
	}
	for _, lv := range roamLevels() {
		if res.Metrics["roam_zero_sum_"+lv.name] != 1 {
			t.Fatalf("level %s: settlement not zero-sum\n%s", lv.name, res.Text)
		}
		if res.Metrics["roam_in_bound_"+lv.name] != 1 {
			t.Fatalf("level %s: chained gap escaped its bound\n%s", lv.name, res.Text)
		}
		if res.Metrics["roam_converged_"+lv.name] != 1 {
			t.Fatalf("level %s: honest chained game did not converge", lv.name)
		}
	}
	// The chained scheme must beat legacy billing once real visited-
	// network loss is in play.
	if res.Metrics["roam_gap_pct_chained_20pct"] >= res.Metrics["roam_gap_pct_legacy_20pct"] {
		t.Fatalf("chained gap (%v%%) not below legacy gap (%v%%) at 20%% loss",
			res.Metrics["roam_gap_pct_chained_20pct"], res.Metrics["roam_gap_pct_legacy_20pct"])
	}
	if !strings.Contains(res.Text, "byzantine battery:") {
		t.Fatalf("battery line missing from text:\n%s", res.Text)
	}
}
