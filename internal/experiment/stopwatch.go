package experiment

import "time"

// Stopwatch starts a timing measurement and returns a function that
// reports the time elapsed since the start. Figure 17's "this-host"
// rows benchmark the real RSA implementation, which is inherently a
// wall-clock measurement; everything else in this package runs on
// simulated time. Injecting the stopwatch through Options keeps that
// single wall-clock dependency in one annotated place and lets tests
// substitute a deterministic fake.
type Stopwatch func() (elapsed func() time.Duration)

// wallStopwatch is the default Stopwatch: Go's monotonic clock.
func wallStopwatch() func() time.Duration {
	start := time.Now() //tlcvet:allow simtime — Fig17 benchmarks real crypto on this host; injectable via Options.Stopwatch
	return func() time.Duration {
		return time.Since(start) //tlcvet:allow simtime — paired with the start read above
	}
}

// fixedStopwatch returns a Stopwatch whose successive measurements
// report the given durations (cycling when exhausted). Tests use it to
// make the Figure 17 "this-host" rows reproducible.
func fixedStopwatch(durations ...time.Duration) Stopwatch {
	i := 0
	return func() func() time.Duration {
		d := durations[i%len(durations)]
		i++
		return func() time.Duration { return d }
	}
}
