package experiment

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// This file is the experiment suite's parallel sweep engine. Every
// table and figure is a grid of independent charging cycles — each
// cell builds its own Testbed with its own Scheduler, RNG, IDGen and
// PacketPool, so cells share no mutable state and can run on any
// goroutine. The engine fans cells across a worker pool while keeping
// the output *byte-identical* to a sequential run:
//
//   - every cell's seed is a pure function of the cell's grid
//     coordinates (see sim.SeedForCell and the per-figure seed
//     formulas), never of execution order;
//   - results land in a slice indexed by cell position, so the
//     aggregation loop reads them in grid order no matter which
//     worker finished first;
//   - a panicking cell does not tear down the process mid-sweep:
//     every worker drains, then the panic of the *lowest-indexed*
//     failing cell is re-raised, so even failures are deterministic.

// SweepWorkers resolves an Options.Workers value to a goroutine
// count for n cells: 0 means sequential (run inline on the caller's
// goroutine), negative means one worker per CPU, and any count is
// capped at the number of cells.
func SweepWorkers(workers, n int) int {
	if workers == 0 {
		return 0
	}
	if workers < 0 {
		workers = runtime.NumCPU()
	}
	if workers > n {
		workers = n
	}
	return workers
}

// SweepN runs runCell(i) for i in [0, n) across the given number of
// workers and returns the results ordered by cell index. See
// SweepWorkers for the workers semantics. runCell must not depend on
// any state shared with other cells.
func SweepN[R any](n, workers int, runCell func(int) R) []R {
	out := make([]R, n)
	if n == 0 {
		return out
	}
	w := SweepWorkers(workers, n)
	if w == 0 {
		for i := 0; i < n; i++ {
			out[i] = runCell(i)
		}
		return out
	}

	// Work-stealing by atomic counter: cell order never influences
	// cell results (seeds come from coordinates), so any assignment
	// of cells to workers produces the same output slice.
	var next atomic.Int64
	panics := make([]any, n)
	var wg sync.WaitGroup
	for g := 0; g < w; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				func() {
					defer func() {
						if r := recover(); r != nil {
							panics[i] = r
						}
					}()
					out[i] = runCell(i)
				}()
			}
		}()
	}
	wg.Wait()
	for i, p := range panics {
		if p != nil {
			panic(fmt.Sprintf("experiment: sweep cell %d panicked: %v", i, p))
		}
	}
	return out
}

// Sweep runs runCell over every cell across the given number of
// workers, returning results in cell order (the generic form of
// SweepN for pre-built cell descriptors).
func Sweep[C, R any](cells []C, workers int, runCell func(C) R) []R {
	return SweepN(len(cells), workers, func(i int) R { return runCell(cells[i]) })
}

// runCells executes one full charging cycle per config, fanned across
// opt.Workers goroutines, with results ordered like the configs.
func runCells(opt Options, cfgs []Config) []*CycleResult {
	return Sweep(cfgs, opt.Workers, func(c Config) *CycleResult {
		return NewTestbed(c).Run()
	})
}
