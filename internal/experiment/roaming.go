package experiment

import (
	"crypto/rsa"
	"errors"
	"fmt"
	"math"
	"strings"
	"sync"

	"tlc/internal/core"
	"tlc/internal/poc"
	"tlc/internal/protocol"
	"tlc/internal/roaming"
	"tlc/internal/sim"
)

// roamLevel is one visited-network loss intensity of the sweep: the
// drop happens inside the visited network, after the vendor<->visited
// settlement point — exactly the loss the bilateral game cannot see
// and the chained settlement must bound.
type roamLevel struct {
	name string
	l2   float64 // loss fraction inside the visited network
}

func roamLevels() []roamLevel {
	return []roamLevel{
		{"0pct", 0},
		{"2pct", 0.02},
		{"5pct", 0.05},
		{"10pct", 0.10},
		{"20pct", 0.20},
	}
}

// Roaming sweeps the chained three-party settlement over visited-
// network loss and then runs the chain-level byzantine battery over
// the signed wire protocol. It answers the multi-operator questions
// the bilateral experiments cannot: does the charging gap stay
// bounded by c·L2 + c²·L1 when the loss sits in the visited network,
// does the per-cycle settlement always net to zero, and does the
// countersigned chain keep every forged or replayed relay out
// (byz_chain_verified must be 0).
func Roaming(opt Options) Result {
	opt = opt.withDefaults()
	levels := roamLevels()

	type cellOut struct {
		legacyGap  float64 // legacy billing (vendor egress) vs delivered
		chainGap   float64 // chained billing vs delivered
		boundFrac  float64 // gap as a fraction of the chained bound
		inBound    bool
		zeroSum    bool
		margin     float64 // visited operator's X2-X1 spread, relative to X1
		vendorPaid bool    // vendor collected exactly X1
		converged  bool
	}
	const c = 0.5
	n := len(levels) * opt.Seeds
	cells := SweepN(n, opt.Workers, func(i int) cellOut {
		li, seed := i/opt.Seeds, i%opt.Seeds
		rng := sim.NewRNG(sim.SeedForCell(4400, li, seed))
		sent := rng.Uniform(5e8, 1.5e9)
		// A sliver of upstream loss keeps L1 in play; the sweep's
		// variable is the visited-network loss L2.
		arrived := sent * (1 - rng.Uniform(0, 0.01))
		delivered := arrived * (1 - levels[li].l2)
		tr := roaming.Truth{Sent: sent, Arrived: arrived, Delivered: delivered}

		g := roaming.Game{
			C:       c,
			Vendor:  core.HonestStrategy{},
			Visited: core.HonestStrategy{},
			Home:    core.HonestStrategy{},
		}
		out, err := g.Play(tr, rng.Fork("play"))
		if err != nil || !out.Converged {
			return cellOut{}
		}
		bound := roaming.ChainedGapBound(c, tr.L1(), tr.L2())
		gap := out.X2 - delivered
		s := roaming.Settle(poc.RoundVolume(out.X1), poc.RoundVolume(out.X2))
		boundFrac := 1.0
		if bound > 0 {
			boundFrac = gap / bound
		}
		return cellOut{
			legacyGap:  (sent - delivered) / delivered,
			chainGap:   gap / delivered,
			boundFrac:  boundFrac,
			inBound:    gap >= -1e-6 && gap <= bound+1e-6,
			zeroSum:    s.ZeroSum(),
			margin:     (out.X2 - out.X1) / out.X1,
			vendorPaid: s.Balances[roaming.Vendor] == int64(poc.RoundVolume(out.X1)),
			converged:  true,
		}
	})

	var b strings.Builder
	metrics := map[string]float64{}
	fmt.Fprintf(&b, "%-8s %12s %12s %12s %10s %9s %11s\n",
		"L2 loss", "legacy gap", "chained gap", "gap/bound", "in-bound", "zero-sum", "visited Δ")
	for li, lv := range levels {
		var agg cellOut
		inBound, zeroSum, vendorPaid, converged := 0, 0, 0, 0
		for seed := 0; seed < opt.Seeds; seed++ {
			cell := cells[li*opt.Seeds+seed]
			agg.legacyGap += cell.legacyGap
			agg.chainGap += cell.chainGap
			agg.boundFrac += cell.boundFrac
			agg.margin += cell.margin
			if cell.inBound {
				inBound++
			}
			if cell.zeroSum {
				zeroSum++
			}
			if cell.vendorPaid {
				vendorPaid++
			}
			if cell.converged {
				converged++
			}
		}
		sn := float64(opt.Seeds)
		fmt.Fprintf(&b, "%-8s %11.2f%% %11.2f%% %12.3f %8d/%d %7d/%d %10.2f%%\n",
			lv.name, agg.legacyGap/sn*100, agg.chainGap/sn*100, agg.boundFrac/sn,
			inBound, opt.Seeds, zeroSum, opt.Seeds, agg.margin/sn*100)
		metrics["roam_gap_pct_legacy_"+lv.name] = agg.legacyGap / sn * 100
		metrics["roam_gap_pct_chained_"+lv.name] = agg.chainGap / sn * 100
		metrics["roam_gap_bound_frac_"+lv.name] = agg.boundFrac / sn
		metrics["roam_in_bound_"+lv.name] = float64(inBound) / sn
		metrics["roam_zero_sum_"+lv.name] = float64(zeroSum) / sn
		metrics["roam_vendor_paid_"+lv.name] = float64(vendorPaid) / sn
		metrics["roam_converged_"+lv.name] = float64(converged) / sn
		metrics["roam_visited_margin_pct_"+lv.name] = agg.margin / sn * 100
	}

	wireOK, wireRuns := roamingWireCheck(opt.Seeds)
	verified, typed, runs := roamingByzantineBattery(opt.Seeds)
	fmt.Fprintf(&b, "wire check: %d/%d honest chains settled and re-verified\n", wireOK, wireRuns)
	fmt.Fprintf(&b, "byzantine battery: %d forged handovers, %d typed rejections, %d forged chains verified\n",
		runs, typed, verified)
	b.WriteString("(extension: multi-operator roaming settlement; not a paper figure)\n")
	metrics["roam_wire_ok"] = float64(wireOK)
	metrics["roam_wire_runs"] = float64(wireRuns)
	metrics["byz_chain_runs"] = float64(runs)
	metrics["byz_chain_typed_rejections"] = float64(typed)
	metrics["byz_chain_verified"] = float64(verified)

	return Result{ID: "roaming", Title: "Extension: multi-operator roaming and settlement", Text: b.String(), Metrics: metrics}
}

// roamKeys holds the roaming battery's shared RSA material, generated
// once from a seeded stream so the whole battery is replayable.
var roamKeys struct {
	once    sync.Once
	vendor  *poc.KeyPair
	visited *poc.KeyPair
	home    *poc.KeyPair
	err     error
}

func roamKeyTriple() (vendor, visited, home *poc.KeyPair, err error) {
	roamKeys.once.Do(func() {
		rng := sim.NewRNG(434343)
		if roamKeys.vendor, roamKeys.err = poc.GenerateKeyPair(poc.DefaultKeyBits, rng.Fork("vendor")); roamKeys.err != nil {
			return
		}
		if roamKeys.visited, roamKeys.err = poc.GenerateKeyPair(poc.DefaultKeyBits, rng.Fork("visited")); roamKeys.err != nil {
			return
		}
		roamKeys.home, roamKeys.err = poc.GenerateKeyPair(poc.DefaultKeyBits, rng.Fork("home"))
	})
	return roamKeys.vendor, roamKeys.visited, roamKeys.home, roamKeys.err
}

// roamWireConfig is one three-party wire run with the drop inside the
// visited network; the seed varies the truth.
func roamWireConfig(seed int64) (protocol.RoamingConfig, float64) {
	rng := sim.NewRNG(sim.SeedForCell(4500, 0, int(seed)))
	sent := math.Round(rng.Uniform(5e5, 1.5e6))
	delivered := math.Round(sent * (1 - rng.Uniform(0.02, 0.2)))
	vendor, visited, home, _ := roamKeyTriple()
	return protocol.RoamingConfig{
		Plan:            poc.Plan{TStart: 0, TEnd: int64(3600e9), C: 0.5},
		VendorKeys:      vendor,
		VisitedKeys:     visited,
		HomeKeys:        home,
		VendorStrategy:  core.HonestStrategy{},
		VisitedStrategy: core.HonestStrategy{},
		HomeStrategy:    core.HonestStrategy{},
		VendorView:      core.View{Sent: sent, Received: sent},
		VisitedViewA:    core.View{Sent: sent, Received: sent},
		HomeView:        core.View{Sent: sent, Received: delivered},
		RNG:             rng.Fork("wire"),
	}, delivered
}

// roamingWireCheck settles honest chains over the real signed
// protocol and re-verifies each accepted chain as a third party.
func roamingWireCheck(seeds int) (ok, runs int) {
	vendor, visited, home, err := roamKeyTriple()
	if err != nil {
		return 0, 1 // fail loud: 0/1 settled
	}
	for seed := 0; seed < seeds; seed++ {
		runs++
		cfg, _ := roamWireConfig(int64(seed))
		res, err := protocol.RunRoaming(cfg)
		if err != nil || res.Chain == nil {
			continue
		}
		if poc.ChainVerifyStateless(res.Chain, cfg.Plan, vendor.Public,
			[]*rsa.PublicKey{visited.Public}, home.Public) == nil {
			ok++
		}
	}
	return ok, runs
}

// roamingByzantineBattery runs every chain-level attack of the
// byzantine visited operator against a home operator with a
// persistent verifier. Scores: every handover must end in a typed
// chain rejection, and no forged chain may ever verify.
func roamingByzantineBattery(seeds int) (chainVerified, typedRejections, runs int) {
	vendor, visited, home, err := roamKeyTriple()
	if err != nil {
		return 1, 0, 0 // fail loud: a broken battery must not read as "0 verified"
	}
	for mi, mode := range roaming.ByzChainModes {
		for seed := 0; seed < seeds; seed++ {
			runs++
			verifier := poc.NewChainVerifier(vendor.Public,
				[]*rsa.PublicKey{visited.Public}, home.Public)

			// One honest settled cycle trains the verifier's replay set
			// and supplies the replay mode's stale material.
			honestCfg, _ := roamWireConfig(int64(1000 + seed))
			honestCfg.Verifier = verifier
			honest, err := protocol.RunRoaming(honestCfg)
			if err != nil {
				continue // counted as a run with no rejection: fails the pin
			}

			forger := &roaming.Forger{
				Mode:  mode,
				Keys:  visited,
				RNG:   sim.NewRNG(sim.SeedForCell(4600, mi, seed)),
				Stale: honest.Chain,
			}
			cfg, _ := roamWireConfig(int64(2000 + 100*mi + seed))
			cfg.Verifier = verifier
			cfg.Forge = forger.Forge
			_, err = protocol.RunRoaming(cfg)
			switch {
			case err == nil:
				chainVerified++
			case errors.Is(err, protocol.ErrBadChain):
				typedRejections++
			}
		}
	}
	return chainVerified, typedRejections, runs
}
