package experiment

import (
	"fmt"
	"reflect"
	"runtime"
	"strings"
	"testing"
	"time"
)

// parityOpt is a small-but-real grid: two background levels × three
// RSS specs per workload, enough cells for a 4-worker pool to
// interleave in every order.
func parityOpt(workers int) Options {
	return Options{
		Duration: 6 * time.Second,
		Seeds:    1,
		BGLevels: []float64{0, 140},
		Workers:  workers,
	}
}

// TestParallelFig12Table2Parity is the engine's core contract: the
// regenerated figure text and metrics are byte-identical at every
// worker count, and across repeated runs at the same count.
func TestParallelFig12Table2Parity(t *testing.T) {
	if testing.Short() {
		t.Skip("parity sweep is slow")
	}
	type figure struct {
		name string
		run  func(Options) Result
	}
	for _, fig := range []figure{{"fig12", Fig12}, {"table2", Table2}} {
		fig := fig
		t.Run(fig.name, func(t *testing.T) {
			t.Parallel()
			base := fig.run(parityOpt(0))
			if base.Text == "" {
				t.Fatal("sequential run produced no text")
			}
			// 4 appears twice: repeated runs at the same worker
			// count must agree too, not just with sequential.
			for _, workers := range []int{0, 1, 4, 4, runtime.NumCPU()} {
				got := fig.run(parityOpt(workers))
				if got.Text != base.Text {
					t.Errorf("workers=%d: text differs from sequential run\n--- sequential ---\n%s\n--- workers=%d ---\n%s",
						workers, base.Text, workers, got.Text)
				}
				if !reflect.DeepEqual(got.Metrics, base.Metrics) {
					t.Errorf("workers=%d: metrics differ: %v vs %v", workers, got.Metrics, base.Metrics)
				}
			}
		})
	}
}

func TestSweepWorkersResolution(t *testing.T) {
	cases := []struct {
		workers, n, want int
	}{
		{0, 10, 0},                      // sequential
		{1, 10, 1},                      // single worker goroutine
		{4, 10, 4},                      // explicit count
		{4, 2, 2},                       // capped at cell count
		{-1, 1 << 20, runtime.NumCPU()}, // all cores
		{-1, 1, 1},                      // all cores, one cell
	}
	for _, c := range cases {
		if got := SweepWorkers(c.workers, c.n); got != c.want {
			t.Errorf("SweepWorkers(%d, %d) = %d, want %d", c.workers, c.n, got, c.want)
		}
	}
}

// TestParallelSweepOrdering stresses the engine under the race
// detector with many fast-returning cells: results must land at their
// own index no matter which worker ran them.
func TestParallelSweepOrdering(t *testing.T) {
	const n = 500
	for _, workers := range []int{0, 1, 4, -1} {
		out := SweepN(n, workers, func(i int) int {
			// A little uneven work so workers genuinely interleave.
			v := i
			for k := 0; k < (i%7)*50; k++ {
				v += k % 3
			}
			runtime.Gosched()
			return v - (v - i) // == i
		})
		for i, got := range out {
			if got != i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, got, i)
			}
		}
	}
}

// TestParallelSweepPanic: a panicking cell must not crash the other
// workers mid-flight, and the re-raised panic is deterministically the
// lowest-indexed failure regardless of completion order.
func TestParallelSweepPanic(t *testing.T) {
	for _, workers := range []int{1, 4, -1} {
		var ran [64]bool
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("workers=%d: expected panic", workers)
				}
				msg := fmt.Sprint(r)
				if !strings.Contains(msg, "sweep cell 7 panicked") || !strings.Contains(msg, "boom-7") {
					t.Fatalf("workers=%d: wrong panic %q, want lowest failing cell 7", workers, msg)
				}
			}()
			SweepN(len(ran), workers, func(i int) int {
				ran[i] = true
				if i == 7 || i == 23 {
					panic(fmt.Sprintf("boom-%d", i))
				}
				return i
			})
		}()
		// Every cell still ran: one failure does not starve the rest.
		for i, ok := range ran {
			if !ok {
				t.Fatalf("workers=%d: cell %d never ran after panic in cell 7", workers, i)
			}
		}
	}
}

// TestSweepEmptyAndGeneric covers the zero-cell edge and the generic
// cell-descriptor form.
func TestSweepEmptyAndGeneric(t *testing.T) {
	if out := SweepN[int](0, 4, func(int) int { panic("unreachable") }); len(out) != 0 {
		t.Fatalf("empty sweep returned %d results", len(out))
	}
	cells := []string{"a", "bb", "ccc"}
	got := Sweep(cells, 2, func(c string) int { return len(c) })
	for i, want := range []int{1, 2, 3} {
		if got[i] != want {
			t.Fatalf("Sweep lengths = %v", got)
		}
	}
}
