package experiment

import (
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"time"

	"tlc/internal/apps"
	"tlc/internal/core"
	"tlc/internal/faults"
	"tlc/internal/poc"
	"tlc/internal/protocol"
	"tlc/internal/sim"
)

// faultLevel is one intensity point of the fault sweep. Component
// fault times are fractions of the cycle so the sweep scales with
// Options.Duration.
type faultLevel struct {
	name string
	spec func(d time.Duration) *faults.Spec
}

func faultLevels() []faultLevel {
	return []faultLevel{
		{"none", func(time.Duration) *faults.Spec { return nil }},
		{"light", func(time.Duration) *faults.Spec {
			return &faults.Spec{BurstP: 0.002, DupP: 0.002, ReorderP: 0.01}
		}},
		{"moderate", func(d time.Duration) *faults.Spec {
			return &faults.Spec{
				BurstP: 0.01, DupP: 0.01, ReorderP: 0.03, SpikeP: 0.005,
				OFCSCrashAt:   d / 3,
				OFCSDowntime:  d / 6,
				CDRLossWindow: 2 * time.Second,
			}
		}},
		{"heavy", func(d time.Duration) *faults.Spec {
			return &faults.Spec{
				BurstP: 0.03, BurstLen: 12, DupP: 0.02, ReorderP: 0.05,
				SpikeP:        0.01,
				OFCSCrashAt:   d / 3,
				OFCSDowntime:  d / 6,
				CDRLossWindow: 3 * time.Second,
				SPGWRestartAt: 2 * d / 3,
			}
		}},
	}
}

// Faults sweeps fault-injection intensity over full charging cycles
// and then runs the byzantine battery over the signed negotiation
// protocol. It answers two questions the paper's fault-free
// experiments leave open: does the charging gap stay bounded when the
// infrastructure itself misbehaves (crashed OFCS, restarted meters,
// bursty links), and does the proof chain keep every forged or
// replayed settlement out (byz_forged_verified must be 0).
func Faults(opt Options) Result {
	opt = opt.withDefaults()
	levels := faultLevels()

	// Cell (li, seed) at index li*Seeds+seed.
	var cfgs []Config
	for li, lv := range levels {
		for seed := 0; seed < opt.Seeds; seed++ {
			cfgs = append(cfgs, Config{
				App: apps.VRidgeGVSP, C: 0.5,
				Duration:       opt.Duration,
				BackgroundMbps: 12,
				Seed:           sim.SeedForCell(4200, li, seed),
				Faults:         lv.spec(opt.Duration),
			})
		}
	}
	type cellOut struct {
		legacy, optimal float64
		drops, dups     uint64
		delays          uint64
		lostCDRs        int
		crashes         int
		meterLost       uint64
		inBounds        bool
		converged       bool
		truthSent       float64
		truthRecv       float64
	}
	const tol = core.DefaultTolerance
	cells := Sweep(cfgs, opt.Workers, func(cfg Config) cellOut {
		r := NewTestbed(cfg).Run()
		best := Evaluate(r, SchemeOptimal, cfg.Seed+1)
		// Faults corrupt the records themselves (an OFCS crash can
		// destroy part of the operator's metered view), so the bound
		// the settlement guarantees is the span of the views as
		// presented, not of the uncorrupted ground truth.
		lo := min(r.EdgeView.Sent, r.EdgeView.Received, r.OpView.Sent, r.OpView.Received) * (1 - tol)
		hi := max(r.EdgeView.Sent, r.EdgeView.Received, r.OpView.Sent, r.OpView.Received) * (1 + tol)
		return cellOut{
			legacy:    Evaluate(r, SchemeLegacy, cfg.Seed+1).Epsilon,
			optimal:   best.Epsilon,
			drops:     r.FaultDrops,
			dups:      r.FaultDups,
			delays:    r.FaultDelays,
			lostCDRs:  r.LostCDRs,
			crashes:   r.OFCSCrashes,
			meterLost: r.MeterLostBytes,
			inBounds:  best.Converged && best.X >= lo-1e-6 && best.X <= hi+1e-6,
			converged: best.Converged,
			truthSent: r.Truth.Sent,
			truthRecv: r.Truth.Received,
		}
	})

	// Durable-ledger twin sweep: re-run the crashing levels with a
	// ledger attached (synced on every append) and the same per-cell
	// seeds. The ledger must not perturb the packet-level simulation
	// (ground truth byte-identical to the twin above), and the
	// restart must replay exactly the pre-crash loss window:
	// recovered == twin's lost - durable's residual lost.
	type durOut struct {
		recovered  int
		lostWindow int
		lost       int
		truthSent  float64
		truthRecv  float64
	}
	var durLevels []int
	var durCfgs []Config
	for li, lv := range levels {
		spec := lv.spec(opt.Duration)
		if spec == nil || spec.OFCSCrashAt == 0 {
			continue
		}
		durLevels = append(durLevels, li)
		for seed := 0; seed < opt.Seeds; seed++ {
			cfg := cfgs[li*opt.Seeds+seed]
			cfg.DurableLedger = true
			durCfgs = append(durCfgs, cfg)
		}
	}
	durCells := Sweep(durCfgs, opt.Workers, func(cfg Config) durOut {
		r := NewTestbed(cfg).Run()
		return durOut{
			recovered:  r.RecoveredCDRs,
			lostWindow: r.LostWindowCDRs,
			lost:       r.LostCDRs,
			truthSent:  r.Truth.Sent,
			truthRecv:  r.Truth.Received,
		}
	})

	var b strings.Builder
	metrics := map[string]float64{}
	fmt.Fprintf(&b, "%-10s %8s %8s %9s %9s | %12s %12s %10s\n",
		"intensity", "drops", "dups", "lost CDR", "crashes", "legacy ε", "optimal ε", "in-bounds")
	for li, lv := range levels {
		var agg cellOut
		inBounds, converged := 0, 0
		for seed := 0; seed < opt.Seeds; seed++ {
			cell := cells[li*opt.Seeds+seed]
			agg.legacy += cell.legacy
			agg.optimal += cell.optimal
			agg.drops += cell.drops
			agg.dups += cell.dups
			agg.delays += cell.delays
			agg.lostCDRs += cell.lostCDRs
			agg.crashes += cell.crashes
			agg.meterLost += cell.meterLost
			if cell.inBounds {
				inBounds++
			}
			if cell.converged {
				converged++
			}
		}
		n := float64(opt.Seeds)
		fmt.Fprintf(&b, "%-10s %8.0f %8.0f %9.1f %9.1f | %11.2f%% %11.2f%% %8d/%d\n",
			lv.name, float64(agg.drops)/n, float64(agg.dups)/n,
			float64(agg.lostCDRs)/n, float64(agg.crashes)/n,
			agg.legacy/n*100, agg.optimal/n*100, inBounds, opt.Seeds)
		metrics["eps_pct_legacy_"+lv.name] = agg.legacy / n * 100
		metrics["eps_pct_optimal_"+lv.name] = agg.optimal / n * 100
		metrics["fault_drops_"+lv.name] = float64(agg.drops) / n
		metrics["lost_cdrs_"+lv.name] = float64(agg.lostCDRs) / n
		metrics["billed_in_bounds_"+lv.name] = float64(inBounds) / n
		metrics["converged_"+lv.name] = float64(converged) / n
	}

	for di, li := range durLevels {
		lv := levels[li]
		exact := 0
		var recovered, window, residual float64
		for seed := 0; seed < opt.Seeds; seed++ {
			twin := cells[li*opt.Seeds+seed]
			dur := durCells[di*opt.Seeds+seed]
			// twin.lostCDRs = window + while-down; dur.lost =
			// torn tail (0 at SyncEvery=1) + while-down. The
			// difference is the pre-crash loss window.
			win := twin.lostCDRs - (dur.lost - dur.lostWindow)
			recovered += float64(dur.recovered)
			window += float64(win)
			residual += float64(dur.lost)
			if dur.recovered+dur.lostWindow == win &&
				dur.lostWindow == 0 &&
				dur.truthSent == twin.truthSent && dur.truthRecv == twin.truthRecv {
				exact++
			}
		}
		n := float64(opt.Seeds)
		fmt.Fprintf(&b, "durable ledger %-8s: recovered %.1f of %.1f window CDRs/run, residual lost %.1f, exact %d/%d\n",
			lv.name, recovered/n, window/n, residual/n, exact, opt.Seeds)
		metrics["recovered_records_"+lv.name] = recovered / n
		metrics["window_records_"+lv.name] = window / n
		metrics["ledger_recovery_exact_"+lv.name] = float64(exact) / n
	}

	forged, typed, runs := byzantineBattery(opt.Seeds)
	fmt.Fprintf(&b, "byzantine battery: %d exchanges, %d typed rejections, %d forged proofs verified\n",
		runs, typed, forged)
	b.WriteString("(extension: fault-injection sweep + adversarial battery; not a paper figure)\n")
	metrics["byz_runs"] = float64(runs)
	metrics["byz_typed_rejections"] = float64(typed)
	metrics["byz_forged_verified"] = float64(forged)

	return Result{ID: "faults", Title: "Extension: charging gap under injected faults", Text: b.String(), Metrics: metrics}
}

// byzKeys holds the battery's shared RSA material. Key generation is
// the dominant cost, so the pair is built once and reused; the keys
// themselves are deterministic (seeded RNG), keeping the whole
// battery replayable.
var byzKeys struct {
	once sync.Once
	edge *poc.KeyPair
	op   *poc.KeyPair
	err  error
}

func byzKeyPairs() (*poc.KeyPair, *poc.KeyPair, error) {
	byzKeys.once.Do(func() {
		rng := sim.NewRNG(424242)
		byzKeys.edge, byzKeys.err = poc.GenerateKeyPair(poc.DefaultKeyBits, rng.Fork("edge"))
		if byzKeys.err != nil {
			return
		}
		byzKeys.op, byzKeys.err = poc.GenerateKeyPair(poc.DefaultKeyBits, rng.Fork("op"))
	})
	return byzKeys.edge, byzKeys.op, byzKeys.err
}

// byzantineBattery runs every adversarial mode against an honest edge
// over an in-memory connection and scores the outcome: every exchange
// must end in a typed rejection, and no frame the adversary sent may
// ever verify as a proof of charge — statelessly for forgeries,
// statefully (replay set) for replayed genuine proofs.
func byzantineBattery(seeds int) (forgedVerified, typedRejections, runs int) {
	edgeKeys, opKeys, err := byzKeyPairs()
	if err != nil {
		return 1, 0, 0 // fail loud: a broken battery must not read as "0 forged"
	}
	plan := poc.Plan{TStart: 0, TEnd: int64(time.Hour), C: 0.5}

	// One genuine proof from an earlier "cycle" for the replay mode.
	staleRNG := sim.NewRNG(7)
	staleCDR, err := poc.BuildCDR(plan, poc.RoleEdge, 0, 800_000, staleRNG, edgeKeys.Private)
	if err != nil {
		return 1, 0, 0
	}
	staleCDA, err := poc.BuildCDA(plan, poc.RoleOperator, 0,
		poc.RoundVolume(core.Charge(plan.C, 800_000, 700_000)), staleCDR, staleRNG, opKeys.Private)
	if err != nil {
		return 1, 0, 0
	}
	stale, err := poc.BuildPoC(staleCDA, edgeKeys.Private)
	if err != nil {
		return 1, 0, 0
	}

	// The stateful verifier has already accepted the stale proof, as
	// the operator's billing backend would have in the earlier cycle.
	verifier := poc.NewVerifier(edgeKeys.Public, opKeys.Public)
	if err := verifier.Verify(stale, plan); err != nil {
		return 1, 0, 0
	}

	for mi, mode := range faults.ByzModes {
		for seed := 0; seed < seeds; seed++ {
			runs++
			rng := sim.NewRNG(sim.SeedForCell(4300, mi, seed))
			sent := rng.Uniform(5e8, 1.5e9)
			received := sent * (1 - rng.Uniform(0.02, 0.2))

			edge := &protocol.Party{
				Role: poc.RoleEdge, Plan: plan,
				Keys: edgeKeys, PeerKey: opKeys.Public,
				Strategy: core.HonestStrategy{},
				View:     core.View{Sent: sent, Received: received},
				RNG:      rng.Fork("edge"),
			}
			byz := &protocol.Byzantine{
				Mode: mode, Role: poc.RoleOperator, Plan: plan,
				Keys: opKeys, PeerKey: edgeKeys.Public,
				RNG:    rng.Fork("byz"),
				Volume: poc.RoundVolume(sent * 3),
				Stale:  stale,
			}

			ec, bc := net.Pipe()
			type byzOut struct {
				frames [][]byte
				err    error
			}
			ch := make(chan byzOut, 1)
			go func() {
				frames, berr := byz.Run(bc)
				ch <- byzOut{frames, berr}
			}()
			_, runErr := edge.Run(ec, true)
			out := <-ch
			_ = ec.Close()
			_ = bc.Close()

			if runErr != nil && (errors.Is(runErr, protocol.ErrBadPeer) ||
				errors.Is(runErr, protocol.ErrBadMessage) ||
				errors.Is(runErr, protocol.ErrStaleProof)) {
				typedRejections++
			}
			for _, frame := range out.frames {
				if len(frame) == 0 || frame[0] != 3 {
					continue
				}
				var p poc.PoC
				if p.UnmarshalBinary(frame) != nil {
					continue
				}
				// A replayed genuine proof passes stateless checks by
				// construction; the backstop is the replay set.
				if mode == protocol.ByzReplay {
					if verifier.Verify(&p, plan) == nil {
						forgedVerified++
					}
					continue
				}
				if poc.VerifyStateless(&p, plan, edgeKeys.Public, opKeys.Public) == nil {
					forgedVerified++
				}
			}
		}
	}
	return forgedVerified, typedRejections, runs
}
