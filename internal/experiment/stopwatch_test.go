package experiment

import (
	"strings"
	"testing"
	"time"
)

func TestFixedStopwatchCycles(t *testing.T) {
	sw := fixedStopwatch(2*time.Millisecond, 5*time.Millisecond)
	for i, want := range []time.Duration{
		2 * time.Millisecond, 5 * time.Millisecond, 2 * time.Millisecond,
	} {
		if got := sw()(); got != want {
			t.Fatalf("measurement %d = %v, want %v", i, got, want)
		}
	}
}

// TestFig17DeterministicWithInjectedStopwatch is the point of the
// stopwatch satellite: with the wall-clock probe replaced, Figure 17
// regenerates byte-identically, including its "this-host" rows.
func TestFig17DeterministicWithInjectedStopwatch(t *testing.T) {
	opt := Quick()
	// 50 iterations per measured loop: 100ms and 250ms mean 2ms/5ms
	// per-op figures in the printed table.
	opt.Stopwatch = fixedStopwatch(100*time.Millisecond, 250*time.Millisecond)
	first := Fig17(opt)
	if !strings.Contains(first.Text, "this-host") {
		t.Fatalf("fig17 lost its measured row:\n%s", first.Text)
	}
	if !strings.Contains(first.Text, "2.00") || !strings.Contains(first.Text, "5.00") {
		t.Fatalf("fig17 did not use the injected stopwatch:\n%s", first.Text)
	}
	opt = Quick()
	opt.Stopwatch = fixedStopwatch(100*time.Millisecond, 250*time.Millisecond)
	second := Fig17(opt)
	if first.Text != second.Text {
		t.Errorf("fig17 not reproducible under an injected stopwatch:\n--- first ---\n%s--- second ---\n%s",
			first.Text, second.Text)
	}
}
