package experiment

import (
	"testing"
	"time"

	"tlc/internal/apps"
	"tlc/internal/netem"
)

func shortRun(t *testing.T, cfg Config) *CycleResult {
	t.Helper()
	if cfg.Duration == 0 {
		cfg.Duration = 30 * time.Second
	}
	tb := NewTestbed(cfg)
	return tb.Run()
}

func TestUplinkWebcamBaseline(t *testing.T) {
	r := shortRun(t, Config{App: apps.WebCamUDP, Seed: 1, C: 0.5})
	if r.Truth.Sent == 0 {
		t.Fatal("no uplink traffic")
	}
	// The app should achieve roughly its nominal bitrate.
	mbps := r.Truth.Sent * 8 / r.Cfg.Duration.Seconds() / 1e6
	if mbps < 1.3 || mbps > 2.2 {
		t.Fatalf("UL bitrate = %.2f Mbps, want ~1.73", mbps)
	}
	// Loss exists (residuals) but is bounded in good radio.
	loss := (r.Truth.Sent - r.Truth.Received) / r.Truth.Sent
	if loss <= 0.01 || loss > 0.20 {
		t.Fatalf("baseline UL loss = %.3f, want a few percent", loss)
	}
	// x̂o ≤ x̂ ≤ x̂e.
	if r.XHat < r.Truth.Received || r.XHat > r.Truth.Sent {
		t.Fatalf("xhat %v outside [%v, %v]", r.XHat, r.Truth.Received, r.Truth.Sent)
	}
}

func TestDownlinkVRBaseline(t *testing.T) {
	r := shortRun(t, Config{App: apps.VRidgeGVSP, Seed: 2, C: 0.5})
	mbps := r.Truth.Sent * 8 / r.Cfg.Duration.Seconds() / 1e6
	if mbps < 7 || mbps > 11 {
		t.Fatalf("DL bitrate = %.2f Mbps, want ~9", mbps)
	}
	loss := (r.Truth.Sent - r.Truth.Received) / r.Truth.Sent
	if loss <= 0.02 || loss > 0.20 {
		t.Fatalf("baseline DL loss = %.3f", loss)
	}
	// Legacy charges the gateway meter, which sits before the air
	// loss: legacy ≈ sent > x̂.
	if r.LegacyCharge < r.XHat {
		t.Fatalf("legacy %v < xhat %v; DL metering point wrong", r.LegacyCharge, r.XHat)
	}
}

func TestCongestionEnlargesGap(t *testing.T) {
	quiet := shortRun(t, Config{App: apps.VRidgeGVSP, Seed: 3, C: 0.5})
	busy := shortRun(t, Config{App: apps.VRidgeGVSP, Seed: 3, C: 0.5, BackgroundMbps: 160})
	lossQ := (quiet.Truth.Sent - quiet.Truth.Received) / quiet.Truth.Sent
	lossB := (busy.Truth.Sent - busy.Truth.Received) / busy.Truth.Sent
	if lossB <= lossQ {
		t.Fatalf("congestion did not enlarge loss: %.3f vs %.3f", lossQ, lossB)
	}
}

func TestGamingQCI7ResistsCongestion(t *testing.T) {
	busyGame := shortRun(t, Config{App: apps.Gaming, Seed: 4, C: 0.5, BackgroundMbps: 160})
	lossGame := (busyGame.Truth.Sent - busyGame.Truth.Received) / busyGame.Truth.Sent
	busyVR := shortRun(t, Config{App: apps.VRidgeGVSP, Seed: 4, C: 0.5, BackgroundMbps: 160})
	lossVR := (busyVR.Truth.Sent - busyVR.Truth.Received) / busyVR.Truth.Sent
	// The dedicated QCI=7 bearer shields gaming from queue drops.
	if lossGame >= lossVR {
		t.Fatalf("QCI7 gaming loss %.3f >= QCI9 VR loss %.3f", lossGame, lossVR)
	}
}

func TestIntermittentConnectivityEnlargesGap(t *testing.T) {
	steady := shortRun(t, Config{App: apps.WebCamUDP, Seed: 5, C: 0.5, Duration: 60 * time.Second})
	flaky := shortRun(t, Config{
		App: apps.WebCamUDP, Seed: 5, C: 0.5, Duration: 60 * time.Second,
		RSS: RSSSpec{Base: -90, MeanGap: 15 * time.Second, MeanOutage: 2 * time.Second},
	})
	if flaky.Eta <= 0.005 {
		t.Fatalf("eta = %.4f, outages did not register", flaky.Eta)
	}
	lossS := (steady.Truth.Sent - steady.Truth.Received) / steady.Truth.Sent
	lossF := (flaky.Truth.Sent - flaky.Truth.Received) / flaky.Truth.Sent
	if lossF <= lossS {
		t.Fatalf("intermittency did not enlarge loss: %.3f vs %.3f", lossS, lossF)
	}
}

func TestSchemesOrderingOnCycle(t *testing.T) {
	// Paper Table 2 ordering (on averages): optimal < random <
	// legacy gaps. Individual seeds can tie, so average a few runs
	// of a congested downlink scenario.
	var sumLeg, sumOpt, sumRnd float64
	const n = 5
	for seed := int64(0); seed < n; seed++ {
		r := shortRun(t, Config{App: apps.VRidgeGVSP, Seed: 600 + seed, C: 0.5, BackgroundMbps: 160})
		res := EvaluateAll(r, 60+seed)
		leg, opt, rnd := res[SchemeLegacy], res[SchemeOptimal], res[SchemeRandom]
		if !opt.Converged || !rnd.Converged {
			t.Fatalf("seed %d: TLC schemes did not converge: %+v %+v", seed, opt, rnd)
		}
		if opt.Rounds != 1 {
			t.Fatalf("seed %d: optimal rounds = %d, want 1", seed, opt.Rounds)
		}
		// TLC-optimal's relative gap stays small (paper: ≤2.5%).
		if opt.Epsilon > 0.05 {
			t.Fatalf("seed %d: optimal epsilon = %.3f", seed, opt.Epsilon)
		}
		sumLeg += leg.Delta
		sumOpt += opt.Delta
		sumRnd += rnd.Delta
	}
	if !(sumOpt < sumRnd && sumRnd < sumLeg) {
		t.Fatalf("average gap ordering violated: opt=%.0f rnd=%.0f leg=%.0f",
			sumOpt/n, sumRnd/n, sumLeg/n)
	}
}

func TestC1MakesTLCEqualLegacyOnDownlink(t *testing.T) {
	// §7.1: "When c = 1 ... TLC is the same as the honest legacy
	// 4G/5G" — all sent (gateway-metered) data is charged.
	r := shortRun(t, Config{App: apps.VRidgeGVSP, Seed: 7, C: 1})
	res := EvaluateAll(r, 70)
	leg, opt := res[SchemeLegacy], res[SchemeOptimal]
	relDiff := (opt.X - leg.X) / leg.X
	if relDiff < -0.05 || relDiff > 0.05 {
		t.Fatalf("c=1: TLC %.0f vs legacy %.0f (%.2f%%)", opt.X, leg.X, relDiff*100)
	}
}

func TestDetachPreventsCharging(t *testing.T) {
	// A long outage detaches the device; the SPGW must discard the
	// downlink uncharged, so the legacy gap stays bounded.
	r := shortRun(t, Config{
		App: apps.VRidgeGVSP, Seed: 8, C: 0.5, Duration: 60 * time.Second,
		RSS: RSSSpec{Base: -90, MeanGap: 20 * time.Second, MeanOutage: 8 * time.Second},
	})
	if r.DetachedDrops == 0 {
		t.Fatal("no detached drops despite long outages")
	}
}

func TestCDRsEmitted(t *testing.T) {
	r := shortRun(t, Config{App: apps.WebCamRTSP, Seed: 9, C: 0.5})
	if r.CDRCount < int(r.Cfg.Duration.Seconds())/2 {
		t.Fatalf("CDRs = %d over %v", r.CDRCount, r.Cfg.Duration)
	}
}

func TestCounterChecksHappen(t *testing.T) {
	r := shortRun(t, Config{App: apps.VRidgeGVSP, Seed: 10, C: 0.5})
	if r.CounterChecks == 0 {
		t.Fatal("no counter checks completed")
	}
}

func TestRecordErrorsAreSmall(t *testing.T) {
	r := shortRun(t, Config{App: apps.VRidgeGVSP, Seed: 11, C: 0.5, Duration: 60 * time.Second})
	// Figure 18 regime: operator DL record error ~2%, edge ~1.2%.
	opErr := relErr(r.OpView.Received, r.Truth.Received)
	edgeErr := relErr(r.EdgeView.Sent, r.Truth.Sent)
	if opErr > 0.15 {
		t.Fatalf("operator record error = %.3f", opErr)
	}
	if edgeErr > 0.08 {
		t.Fatalf("edge record error = %.3f", edgeErr)
	}
}

func relErr(est, truth float64) float64 {
	if truth == 0 {
		return 0
	}
	d := est - truth
	if d < 0 {
		d = -d
	}
	return d / truth
}

func TestEdgeTamperLowersEdgeView(t *testing.T) {
	honest := shortRun(t, Config{App: apps.VRidgeGVSP, Seed: 12, C: 0.5})
	tampered := shortRun(t, Config{App: apps.VRidgeGVSP, Seed: 12, C: 0.5, EdgeTamper: 0.5})
	if tampered.EdgeView.Received >= honest.EdgeView.Received {
		t.Fatal("tamper had no effect on edge view")
	}
	// Ground truth and operator view are unaffected (the hardware
	// modem and gateway are tamper-resilient).
	if tampered.OpView.Received != honest.OpView.Received {
		t.Fatal("tamper leaked into the operator's RRC-based record")
	}
}

func TestInternetLossBoundsOvercharge(t *testing.T) {
	// Appendix D: with the server on the internet, the edge is
	// over-charged by at most c·(x̂'e − x̂e) where x̂'e is the
	// server-sent volume and x̂e the core-received volume.
	r := shortRun(t, Config{App: apps.VRidgeGVSP, Seed: 13, C: 0.5, InternetLoss: 0.1})
	opt := Evaluate(r, SchemeHonest, 130)
	// Ideal billing uses the core-received volume x̂e (≈ gateway
	// meter); the edge's internet-side sent record x̂'e exceeds it,
	// so the settled charge overshoots by at most c·(x̂'e − x̂e).
	coreSent := r.LegacyCharge
	idealXHat := r.Truth.Received + r.Cfg.C*(coreSent-r.Truth.Received)
	overcharge := opt.X - idealXHat
	bound := r.Cfg.C*(r.Truth.Sent-coreSent) + 0.02*idealXHat // +2% record-error slack
	if overcharge > bound {
		t.Fatalf("overcharge %.0f exceeds Appendix D bound %.0f", overcharge, bound)
	}
	if r.Truth.Sent <= coreSent {
		t.Fatal("internet loss did not reduce core-received volume")
	}
}

func TestPerHourScaling(t *testing.T) {
	r := &CycleResult{}
	r.Cfg.Duration = 30 * time.Second
	if got := r.PerHour(1e6); got != 120 {
		t.Fatalf("PerHour = %v, want 120 MB/hr", got)
	}
}

func TestGapReduction(t *testing.T) {
	if GapReduction(0, 5) != 0 {
		t.Fatal("zero legacy not handled")
	}
	if got := GapReduction(100, 90); got != 0.1 {
		t.Fatalf("GapReduction = %v", got)
	}
}

func TestDeterminism(t *testing.T) {
	a := shortRun(t, Config{App: apps.WebCamUDP, Seed: 42, C: 0.5, BackgroundMbps: 100})
	b := shortRun(t, Config{App: apps.WebCamUDP, Seed: 42, C: 0.5, BackgroundMbps: 100})
	if a.Truth.Sent != b.Truth.Sent || a.Truth.Received != b.Truth.Received ||
		a.LegacyCharge != b.LegacyCharge {
		t.Fatalf("same seed diverged: %+v vs %+v", a.Truth, b.Truth)
	}
}

func TestDirectionsWired(t *testing.T) {
	ul := shortRun(t, Config{App: apps.WebCamUDP, Seed: 14, C: 0.5})
	if ul.Cfg.App.Dir != netem.Uplink {
		t.Fatal("webcam dir")
	}
	// Uplink traffic must not appear in downlink meters.
	tb := NewTestbed(Config{App: apps.WebCamUDP, Seed: 14, C: 0.5, Duration: 10 * time.Second})
	tb.Run()
	if tb.SrvAppSent.TotalBytes() != 0 || tb.DevAppRecv.TotalBytes() != 0 {
		t.Fatal("UL traffic leaked into DL meters")
	}
	if tb.DevAppSent.TotalBytes() == 0 || tb.SrvAppRecv.TotalBytes() == 0 {
		t.Fatal("UL meters empty")
	}
}

func TestTraceReplayModeMatchesLiveGenerator(t *testing.T) {
	// The paper replays tcpdump traces through its testbed; our
	// replay mode must carry the same volume through the same
	// charging path as the live generator.
	live := shortRun(t, Config{App: apps.VRidgeGVSP, Seed: 42, C: 0.5, Duration: 15 * time.Second})
	replayed := shortRun(t, Config{App: apps.VRidgeGVSP, Seed: 42, C: 0.5,
		Duration: 15 * time.Second, UseTraceReplay: true})
	if replayed.Truth.Sent == 0 || replayed.Truth.Received == 0 {
		t.Fatalf("replay carried nothing: %+v", replayed.Truth)
	}
	ratio := replayed.Truth.Sent / live.Truth.Sent
	if ratio < 0.8 || ratio > 1.2 {
		t.Fatalf("replayed volume %.0f vs live %.0f (ratio %.2f)",
			replayed.Truth.Sent, live.Truth.Sent, ratio)
	}
	// The charging pipeline works identically on replayed traffic.
	res := EvaluateAll(replayed, 43)
	if !res[SchemeOptimal].Converged || res[SchemeOptimal].Epsilon > 0.05 {
		t.Fatalf("optimal on replay: %+v", res[SchemeOptimal])
	}
	if replayed.CDRCount == 0 {
		t.Fatal("no CDRs from replayed traffic")
	}
}
