package experiment

import (
	"fmt"
	"strings"
	"time"

	"tlc/internal/apps"
	"tlc/internal/core"
	"tlc/internal/device"
	"tlc/internal/netem"
	"tlc/internal/sim"
	"tlc/internal/transport"
)

// Retransmission is an extension experiment quantifying §3.1's gap
// cause (4): spurious transport-layer retransmission. A reliable
// transfer crosses a metered link; an aggressive retransmission timer
// re-sends segments whose originals were merely slow, and every copy
// is charged while the application receives each byte once.
func Retransmission(opt Options) Result {
	opt = opt.withDefaults()
	rtos := []time.Duration{500 * time.Millisecond, 130 * time.Millisecond,
		100 * time.Millisecond, 80 * time.Millisecond}
	type cellOut struct {
		charged, received, rtx float64
	}
	// Each cell builds a private sender/receiver/link stack on its
	// own scheduler, so the RTO sweep fans out like the testbed grid.
	cells := Sweep(rtos, opt.Workers, func(rto time.Duration) cellOut {
		s := sim.NewScheduler()
		ids := &netem.IDGen{}
		snd := transport.NewSender(s, ids, nil, "bulk", imsi)
		snd.RTO = rto
		rcv := transport.NewReceiver(s, snd)
		// Gateway meter in front of a slow-ish path (80ms one way,
		// modest rate so window position adds queueing jitter): the
		// real testbed's metering point.
		link := netem.NewLink("path", s, 20e6, 80*time.Millisecond, 1<<20, rcv)
		gw := netem.NewMeter("gw", s, link)
		snd.Dst = gw
		snd.Transfer(2000, nil)
		s.RunUntil(3 * time.Minute)
		_, _, rtx, _ := snd.Stats()
		return cellOut{
			charged:  float64(gw.TotalBytes()),
			received: float64(rcv.UniqueBytes()),
			rtx:      float64(rtx),
		}
	})
	var b strings.Builder
	metrics := map[string]float64{}
	fmt.Fprintf(&b, "%-10s %12s %12s %12s %12s\n",
		"RTO", "charged(MB)", "received(MB)", "rtx(MB)", "over-charge")
	for ri, rto := range rtos {
		cell := cells[ri]
		over := 0.0
		if cell.received > 0 {
			over = (cell.charged - cell.received) / cell.received
		}
		fmt.Fprintf(&b, "%-10s %12.2f %12.2f %12.2f %11.1f%%\n",
			rto, cell.charged/1e6, cell.received/1e6, cell.rtx/1e6, over*100)
		metrics["overcharge_pct_"+rto.String()] = over * 100
	}
	b.WriteString("(extension: §3.1 cause 4 — spurious retransmissions are charged, received once)\n")
	return Result{ID: "retransmission", Title: "Extension: over-charging from spurious retransmission", Text: b.String(), Metrics: metrics}
}

// Strawman reproduces §5.4's monitor comparison: how each candidate
// downlink charging record fares against a selfish edge that tampers
// with the device OS counters, versus the RRC COUNTER CHECK record
// TLC adopts.
func Strawman(opt Options) Result {
	opt = opt.withDefaults()
	var b strings.Builder
	fmt.Fprintf(&b, "%-34s %14s %12s\n", "operator downlink monitor", "recorded (MB)", "error")
	tamper := 0.5 // the edge under-reports half its received traffic

	tb := NewTestbed(Config{
		App: apps.VRidgeGVSP, Seed: 5400, C: 0.5, Duration: opt.Duration,
	})
	// The selfish edge ships a modified OS image: the user-space
	// TrafficStats-style API under-reports...
	tb.OS.Tamper = device.UnderReport{Factor: tamper}
	r := tb.Run()
	truth := r.Truth.Received

	metrics := map[string]float64{}
	row := func(name, key string, recorded float64) {
		err := 0.0
		if truth > 0 {
			err = (recorded - truth) / truth
		}
		fmt.Fprintf(&b, "%-34s %14.2f %11.1f%%\n", name, recorded/1e6, err*100)
		metrics["recorded_mb_"+key] = recorded / 1e6
		metrics["record_err_"+key] = err
	}

	// Strawman 1: user-space monitor reading the (tampered) OS API
	// over the operator's cycle window.
	opW := tb.OpClock.ObservedWindow(tb.Plan())
	trueWindowed := tb.DevAppRecv.BytesInWindow(opW.Start, opW.End)
	strawman1 := trueWindowed * tamper
	row("strawman 1: user-space API", "strawman1", strawman1)
	// Strawman 2: system monitor with root — inspects every packet
	// the device consumes over the operator's cycle window
	// (accurate, but needs root and raises privacy concerns, §5.4).
	row("strawman 2: root system monitor", "strawman2", trueWindowed)
	// TLC: RRC COUNTER CHECK against the hardware modem — accurate
	// *without* system privilege.
	opView := tb.OpMon.View(tb.Plan(), netem.Downlink)
	row("TLC: RRC COUNTER CHECK", "tlc_rrc", opView.Received)

	// Revenue impact: an operator trusting the strawman-1 record
	// settles against an edge whose monitors tell the same lie — the
	// under-claim sails through every cross-check.
	tamperedView := core.View{
		Sent:     r.OpView.Sent * tamper,
		Received: strawman1,
	}
	out, err := core.Negotiate(core.Config{
		C:        0.5,
		Edge:     core.HonestStrategy{},
		Operator: core.HonestStrategy{},
		EdgeView: core.View{
			Sent:     r.EdgeView.Sent * tamper,
			Received: r.EdgeView.Received * tamper,
		},
		OperatorView: tamperedView,
		RNG:          sim.NewRNG(5401),
		MaxRounds:    256,
	})
	if err == nil && out.Converged && r.XHat > 0 {
		lossFrac := (r.XHat - out.X) / r.XHat
		fmt.Fprintf(&b, "\nwith strawman 1 the settled charge drops to %.2f MB (%.0f%% operator revenue loss);\n",
			out.X/1e6, lossFrac*100)
		fmt.Fprintf(&b, "with the RRC record the operator's cross-check rejects the under-claim instead.\n")
		metrics["revenue_loss_frac"] = lossFrac
	}
	return Result{ID: "strawman", Title: "§5.4: tamper resilience of candidate charging records", Text: b.String(), Metrics: metrics}
}
