package experiment

import (
	"fmt"
	"strings"
	"time"

	"tlc/internal/apps"
	"tlc/internal/core"
	"tlc/internal/device"
	"tlc/internal/poc"
	"tlc/internal/sim"
	"tlc/internal/stats"
)

// sampleCost draws a positive timing sample from a device profile
// component.
func sampleCost(rng *sim.RNG, mean, sigma time.Duration) time.Duration {
	v := time.Duration(rng.Norm(float64(mean), float64(sigma)))
	if v < mean/10 {
		v = mean / 10
	}
	return v
}

// Fig16a reproduces Figure 16a: the in-cycle round-trip time with and
// without TLC per edge device. TLC only acts at the end of the cycle,
// so the two distributions coincide up to noise.
func Fig16a(opt Options) Result {
	opt = opt.withDefaults()
	rng := sim.NewRNG(16)
	var b strings.Builder
	metrics := map[string]float64{}
	fmt.Fprintf(&b, "%-10s %16s %16s\n", "device", "RTT w/o TLC (ms)", "RTT w/ TLC (ms)")
	for _, name := range device.DeviceNames {
		p := device.Profiles[name]
		without, with := stats.NewSample(), stats.NewSample()
		for i := 0; i < 200; i++ { // the paper pings 200 times per device
			without.Add(sampleCost(rng, p.RTT, p.RTTSigma).Seconds() * 1e3)
			// Within the charging cycle TLC adds no per-packet
			// processing (§5.2): the distribution is unchanged.
			with.Add(sampleCost(rng, p.RTT, p.RTTSigma).Seconds() * 1e3)
		}
		fmt.Fprintf(&b, "%-10s %16.1f %16.1f\n", name, without.Mean(), with.Mean())
		metrics["rtt_ms_"+name] = without.Mean()
		metrics["rtt_tlc_ms_"+name] = with.Mean()
	}
	b.WriteString("(paper: marginal differences with/without TLC on every device)\n")
	return Result{ID: "fig16a", Title: "Figure 16a: in-cycle RTT with/without TLC", Text: b.String(), Metrics: metrics}
}

// Fig16b reproduces Figure 16b: negotiation rounds per workload for
// TLC-optimal (always 1) and TLC-random (a few).
func Fig16b(opt Options) Result {
	opt = opt.withDefaults()
	// One congested cycle per workload provides the usage views.
	cfgs := make([]Config, len(apps.Workloads))
	for i, app := range apps.Workloads {
		cfgs[i] = Config{
			App: app, Seed: int64(1600 + i), C: 0.5,
			Duration: opt.Duration, BackgroundMbps: 100,
		}
	}
	runs := runCells(opt, cfgs)
	var b strings.Builder
	metrics := map[string]float64{}
	var roundSum float64
	fmt.Fprintf(&b, "%-16s %12s %12s\n", "workload", "TLC-random", "TLC-optimal")
	for i, app := range apps.Workloads {
		r := runs[i]
		// ...then each strategy renegotiates it many times.
		rounds := func(scheme string) float64 {
			total := 0
			const n = 60
			for k := 0; k < n; k++ {
				res := Evaluate(r, scheme, int64(1700+100*i+k))
				total += res.Rounds
			}
			return float64(total) / n
		}
		rr := rounds(SchemeRandom)
		roundSum += rr
		metrics["rounds_random_"+app.Name] = rr
		fmt.Fprintf(&b, "%-16s %12.1f %12d\n", app.Name, rr, 1)
	}
	metrics["rounds_random_mean"] = roundSum / float64(len(apps.Workloads))
	metrics["rounds_optimal"] = 1
	b.WriteString("(paper: random 3.5/2.7/2.7/4.6 rounds; optimal always 1)\n")
	return Result{ID: "fig16b", Title: "Figure 16b: negotiation rounds after the charging cycle", Text: b.String(), Metrics: metrics}
}

// Fig17 reproduces Figure 17: PoC negotiation and verification
// latency per device, the message-size table, and the verifier
// throughput claim. Device rows use the calibrated cost profiles; the
// "this-host" row measures the real Go crypto implementation.
func Fig17(opt Options) Result {
	opt = opt.withDefaults()
	rng := sim.NewRNG(17)
	var b strings.Builder

	fmt.Fprintf(&b, "%-16s %18s %18s\n", "device", "negotiate p50 (ms)", "verify p50 (ms)")
	order := append(append([]string{}, device.DeviceNames...), "Z840")
	for _, name := range order {
		p := device.Profiles[name]
		neg, ver := stats.NewSample(), stats.NewSample()
		for i := 0; i < 200; i++ {
			n := sampleCost(rng, p.NegotiationCrypto, p.NegotiationCryptoSigma) +
				sampleCost(rng, p.RTT, p.RTTSigma)
			neg.Add(n.Seconds() * 1e3)
			ver.Add(sampleCost(rng, p.VerifyPoC, p.VerifyPoCSigma).Seconds() * 1e3)
		}
		fmt.Fprintf(&b, "%-16s %18.1f %18.1f\n", name, neg.Median(), ver.Median())
	}

	// Real crypto on this host.
	keyRNG := sim.NewRNG(1770)
	edgeKeys, err := poc.GenerateKeyPair(poc.DefaultKeyBits, keyRNG.Fork("e"))
	if err != nil {
		return Result{ID: "fig17", Text: "key generation failed: " + err.Error()}
	}
	opKeys, err := poc.GenerateKeyPair(poc.DefaultKeyBits, keyRNG.Fork("o"))
	if err != nil {
		return Result{ID: "fig17", Text: "key generation failed: " + err.Error()}
	}
	plan := poc.Plan{TStart: 0, TEnd: int64(opt.Duration), C: 0.5}
	build := func() *poc.PoC {
		cdr, _ := poc.BuildCDR(plan, poc.RoleOperator, 0, 1000000, keyRNG, opKeys.Private)
		cda, _ := poc.BuildCDA(plan, poc.RoleEdge, 0, 930000, cdr, keyRNG, edgeKeys.Private)
		pr, _ := poc.BuildPoC(cda, opKeys.Private)
		return pr
	}
	proof := build()
	const iters = 50
	elapsed := opt.Stopwatch()
	for i := 0; i < iters; i++ {
		_ = build()
	}
	negReal := elapsed() / iters
	elapsed = opt.Stopwatch()
	for i := 0; i < iters; i++ {
		if err := poc.VerifyStateless(proof, plan, edgeKeys.Public, opKeys.Public); err != nil {
			return Result{ID: "fig17", Text: "verification failed: " + err.Error()}
		}
	}
	verReal := elapsed() / iters
	perHour := 3600 / verReal.Seconds()
	fmt.Fprintf(&b, "%-16s %18.2f %18.2f  (measured, RSA-%d)\n", "this-host",
		negReal.Seconds()*1e3, verReal.Seconds()*1e3, poc.DefaultKeyBits)
	fmt.Fprintf(&b, "verifier throughput on this host: %.0fK PoCs/hour (paper: 230K on a Z840)\n", perHour/1e3)
	metrics := map[string]float64{
		"neg_ms_this_host":    negReal.Seconds() * 1e3,
		"verify_ms_this_host": verReal.Seconds() * 1e3,
		"pocs_per_hour":       perHour,
	}

	// Message sizes.
	cdr, _ := poc.BuildCDR(plan, poc.RoleOperator, 0, 1000000, keyRNG, opKeys.Private)
	cda, _ := poc.BuildCDA(plan, poc.RoleEdge, 0, 930000, cdr, keyRNG, edgeKeys.Private)
	d1, _ := cdr.MarshalBinary()
	d2, _ := cda.MarshalBinary()
	d3, _ := proof.MarshalBinary()
	fmt.Fprintf(&b, "\n%-12s %8s %8s\n", "message", "bytes", "paper")
	fmt.Fprintf(&b, "%-12s %8d %8d\n", "LTE CDR", 34, 34)
	fmt.Fprintf(&b, "%-12s %8d %8d\n", "TLC CDR", len(d1), 199)
	fmt.Fprintf(&b, "%-12s %8d %8d\n", "TLC CDA", len(d2), 398)
	fmt.Fprintf(&b, "%-12s %8d %8d\n", "TLC PoC", len(d3), 796)
	fmt.Fprintf(&b, "%-12s %8d %8s  (3 messages/cycle)\n", "total", len(d1)+len(d2)+len(d3), "1393")
	return Result{ID: "fig17", Title: "Figure 17: Proof-of-Charging cost", Text: b.String(), Metrics: metrics}
}

// Fig18 reproduces Figure 18: the accuracy of TLC's tamper-resilient
// charging records. The operator's downlink record comes from RRC
// COUNTER CHECK; the edge's from its own monitors; both integrate
// over clock-skewed windows.
func Fig18(opt Options) Result {
	opt = opt.withDefaults()
	// Cell (i, seed, bi) in the sequential accumulation order.
	var cfgs []Config
	for i := range []int{0, 1} {
		for seed := 0; seed < opt.Seeds*3; seed++ {
			for bi, bg := range opt.BGLevels {
				app := apps.VRidgeGVSP
				if i == 1 {
					app = apps.Gaming
				}
				cfgs = append(cfgs, Config{
					App: app, Seed: int64(1800 + 311*i + 17*seed + bi), C: 0.5,
					Duration: opt.Duration, BackgroundMbps: bg,
				})
			}
		}
	}
	runs := runCells(opt, cfgs)
	opErr, edgeErr := stats.NewSample(), stats.NewSample()
	for _, r := range runs {
		if r.Truth.Received > 0 {
			opErr.Add(relError(r.OpView.Received, r.Truth.Received) * 100)
		}
		if r.Truth.Sent > 0 {
			edgeErr.Add(relError(r.EdgeView.Sent, r.Truth.Sent) * 100)
		}
	}
	var b strings.Builder
	b.WriteString(stats.RenderCDF("operator record error γo (%)", opErr, 5))
	b.WriteString(stats.RenderCDF("edge record error γe (%)", edgeErr, 5))
	fmt.Fprintf(&b, "operator mean %.2f%% (paper 2.0%%, 95%% ≤7.7%%) | edge mean %.2f%% (paper 1.2%%, 95%% ≤2.9%%)\n",
		opErr.Mean(), edgeErr.Mean())
	metrics := map[string]float64{
		"op_err_pct_mean":   opErr.Mean(),
		"edge_err_pct_mean": edgeErr.Mean(),
	}
	return Result{ID: "fig18", Title: "Figure 18: tamper-resilient CDR accuracy", Text: b.String(), Metrics: metrics}
}

func relError(est, truth float64) float64 {
	if truth == 0 {
		return 0
	}
	d := est - truth
	if d < 0 {
		d = -d
	}
	return d / truth
}

// AppendixD reproduces the generic-charging analysis: when the edge
// server sits on the internet, downlink loss upstream of the core
// over-charges the edge by at most c·(x̂'e − x̂e).
func AppendixD(opt Options) Result {
	opt = opt.withDefaults()
	losses := []float64{0, 0.05, 0.1, 0.2}
	cfgs := make([]Config, len(losses))
	for li, loss := range losses {
		cfgs[li] = Config{
			App: apps.VRidgeGVSP, Seed: int64(1900 + int(loss*100)), C: 0.5,
			Duration: opt.Duration, InternetLoss: loss,
		}
	}
	runs := runCells(opt, cfgs)
	var b strings.Builder
	metrics := map[string]float64{}
	fmt.Fprintf(&b, "%-12s %14s %14s %14s\n", "inet-loss", "overcharge", "bound c·loss", "within")
	for li, loss := range losses {
		r := runs[li]
		// The Appendix D premise: an *honest* edge reports its
		// internet-side sent record x̂'e (it cannot see the core).
		res := Evaluate(r, SchemeHonest, 1901)
		// Appendix D notation: x̂'e is the server-sent volume (our
		// Truth.Sent meters at the internet server) and x̂e the
		// volume the 4G/5G core actually received (≈ the gateway
		// meter). The edge should ideally be billed against x̂e; its
		// internet-side record over-charges it by at most
		// c·(x̂'e − x̂e).
		coreSent := r.LegacyCharge
		idealXHat := r.Truth.Received + r.Cfg.C*(coreSent-r.Truth.Received)
		overcharge := res.X - idealXHat
		bound := r.Cfg.C * (r.Truth.Sent - coreSent)
		slack := 0.02 * idealXHat // record-error slack
		fmt.Fprintf(&b, "%-12.2f %11.2f MB %11.2f MB %14v\n",
			loss, overcharge/1e6, bound/1e6, overcharge <= bound+slack)
		metrics[fmt.Sprintf("overcharge_mb_loss%.2f", loss)] = overcharge / 1e6
	}
	b.WriteString("(Appendix D: over-charging bounded by the server→core loss; legacy is unbounded)\n")
	return Result{ID: "appendixD", Title: "Appendix D: TLC in generic mobile data charging", Text: b.String(), Metrics: metrics}
}

// Rounds16bFor exposes the Figure 16b per-app round computation for
// reuse by benchmarks.
func Rounds16bFor(app apps.Profile, opt Options) (randomRounds float64) {
	opt = opt.withDefaults()
	r := NewTestbed(Config{
		App: app, Seed: 1666, C: 0.5,
		Duration: opt.Duration, BackgroundMbps: 100,
	}).Run()
	total := 0
	const n = 40
	for k := 0; k < n; k++ {
		total += Evaluate(r, SchemeRandom, int64(1667+k)).Rounds
	}
	return float64(total) / n
}

// Handover is an extension experiment beyond the paper's figures: it
// quantifies the link-layer mobility gap cause the paper classifies
// in §3.1 ("the moving device may switch its base stations, in which
// the data can be lost") by sweeping the handover rate of a moving
// VR user.
func Handover(opt Options) Result {
	opt = opt.withDefaults()
	intervals := []time.Duration{0, 30 * time.Second, 10 * time.Second, 5 * time.Second}
	// Cell (ii, seed) at index ii*Seeds+seed. A moving device rides
	// near the cell edge with some cross traffic, so the eNodeB
	// buffer is populated and handovers genuinely lose data.
	var cfgs []Config
	for _, interval := range intervals {
		for seed := 0; seed < opt.Seeds; seed++ {
			cfgs = append(cfgs, Config{
				App: apps.VRidgeGVSP, Seed: int64(2100 + int(interval.Seconds()) + seed), C: 0.5,
				Duration:             opt.Duration,
				RSS:                  RSSSpec{Base: -107},
				BackgroundMbps:       12,
				HandoverMeanInterval: interval,
			})
		}
	}
	type cellOut struct {
		legacy, optimal float64
		handovers, lost uint64
	}
	cells := Sweep(cfgs, opt.Workers, func(cfg Config) cellOut {
		r := NewTestbed(cfg).Run()
		return cellOut{
			legacy:    Evaluate(r, SchemeLegacy, cfg.Seed+1).Epsilon,
			optimal:   Evaluate(r, SchemeOptimal, cfg.Seed+1).Epsilon,
			handovers: r.Handovers,
			lost:      r.HandoverLostBytes,
		}
	})
	var b strings.Builder
	metrics := map[string]float64{}
	fmt.Fprintf(&b, "%-14s %10s %14s | %12s %12s\n",
		"mean interval", "handovers", "buffer loss", "legacy ε", "optimal ε")
	for ii, interval := range intervals {
		var legacy, optimal float64
		var handovers, lost uint64
		for seed := 0; seed < opt.Seeds; seed++ {
			cell := cells[ii*opt.Seeds+seed]
			legacy += cell.legacy
			optimal += cell.optimal
			handovers += cell.handovers
			lost += cell.lost
		}
		n := float64(opt.Seeds)
		name := "none"
		if interval > 0 {
			name = interval.String()
		}
		fmt.Fprintf(&b, "%-14s %10.1f %11.2f MB | %11.2f%% %11.2f%%\n",
			name, float64(handovers)/n, float64(lost)/n/1e6,
			legacy/n*100, optimal/n*100)
		metrics["eps_pct_legacy_"+name] = legacy / n * 100
	}
	b.WriteString("(extension: §3.1 mobility loss; not a paper figure)\n")
	return Result{ID: "handover", Title: "Extension: charging gap vs handover rate", Text: b.String(), Metrics: metrics}
}

// All runs every table and figure.
func All(opt Options) []Result {
	return []Result{
		Headline(opt), Fig3(opt), Fig4(opt), Dataset(opt),
		Fig12(opt), Table2(opt), Fig13(opt), Fig14(opt), Fig15(opt),
		Fig16a(opt), Fig16b(opt), Fig17(opt), Fig18(opt), AppendixD(opt),
	}
}

// ByID returns the runner for a single experiment id.
func ByID(id string) (func(Options) Result, bool) {
	m := map[string]func(Options) Result{
		"headline": Headline, "fig3": Fig3, "fig4": Fig4, "dataset": Dataset,
		"fig12": Fig12, "table2": Table2, "fig13": Fig13, "fig14": Fig14,
		"fig15": Fig15, "fig16a": Fig16a, "fig16b": Fig16b, "fig17": Fig17,
		"fig18": Fig18, "appendixD": AppendixD, "handover": Handover,
		"retransmission": Retransmission, "strawman": Strawman,
		"faults": Faults, "city": City, "roaming": Roaming,
	}
	f, ok := m[id]
	return f, ok
}

// IDs lists the experiment identifiers in presentation order.
var IDs = []string{"headline", "fig3", "fig4", "dataset", "fig12", "table2",
	"fig13", "fig14", "fig15", "fig16a", "fig16b", "fig17", "fig18", "appendixD",
	"handover", "retransmission", "strawman", "faults", "city", "roaming"}

// verify core.Strategy is exercised via Evaluate (compile-time use of
// core in this file's imports).
var _ core.Strategy = core.OptimalStrategy{}
