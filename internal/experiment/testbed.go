// Package experiment assembles the full emulated testbed of Figure 11
// — edge device, Qualcomm-small-cell-like RAN, OpenEPC-like core,
// co-located edge server — runs charging cycles over it, and contains
// one runner per table/figure of the paper's evaluation (§7).
//
// Topology and drop placement (see DESIGN.md for the rationale):
//
//	UL: device app → modem → UL air (gated, small pre-meter residual)
//	    → SPGW meter → core bridge (post-meter: congestion queue +
//	    residual) → operator server-port monitor → server app
//	DL: server app → SPGW meter (QCI stamp, detach drop) → core
//	    bridge (congestion queue) → DL air (gated, RSS loss, queue)
//	    → modem → device OS → device app
//
// Background iperf-style traffic shares the core bridge and the DL
// air interface, so congestion drops land after the metering point —
// the §3.1 "dropped after being charged by the gateway" gap source.
package experiment

import (
	"fmt"
	"time"

	"tlc/internal/apps"
	"tlc/internal/device"
	"tlc/internal/epc"
	"tlc/internal/faults"
	"tlc/internal/ledger"
	"tlc/internal/monitor"
	"tlc/internal/netem"
	"tlc/internal/ran"
	"tlc/internal/sim"
	"tlc/internal/simclock"
	"tlc/internal/trace"
)

// Config parameterises one charging cycle on the testbed.
type Config struct {
	// App is the workload profile (apps.Workloads).
	App apps.Profile
	// Duration is the charging cycle length in simulated time. The
	// paper uses 1-hour cycles; experiments default to 60s and
	// scale reported volumes to per-hour.
	Duration time.Duration
	// Seed drives all randomness deterministically.
	Seed int64
	// C is the data plan's lost-data weight.
	C float64

	// BackgroundMbps is iperf-style UDP cross traffic (Figure 3/13).
	BackgroundMbps float64

	// RSS configures the radio signal; zero value means good radio.
	RSS RSSSpec

	// NTPPrecision is the clock sync residual sigma for both
	// parties (§7.2 record errors); default 500ms.
	NTPPrecision time.Duration

	// EdgeTamper scales the edge's reported records (<1 =
	// under-claiming via a tampered monitor); 0 or 1 = honest.
	EdgeTamper float64

	// InternetLoss moves the edge server out of the operator's
	// infrastructure (Appendix D's generic charging): downlink
	// packets are lost with this probability between the server and
	// the 4G/5G core, upstream of the gateway meter.
	InternetLoss float64

	// AirQueueBytes overrides the eNodeB buffer size (ablation:
	// outage tolerance vs latency); 0 uses the default.
	AirQueueBytes int

	// CounterCheckPeriod overrides the operator's periodic RRC
	// COUNTER CHECK polling interval (ablation: per-release checks
	// vs periodic polling); 0 uses the default 10s.
	CounterCheckPeriod time.Duration

	// HandoverMeanInterval enables link-layer mobility: the device
	// hands over between cells with this mean period, losing
	// source-cell-buffered data (§3.1's mobility gap cause). Zero
	// disables handovers.
	HandoverMeanInterval time.Duration

	// UseTraceReplay drives the cycle by replaying a pre-recorded
	// packet trace of the workload instead of the live generator —
	// the paper's tcpdump/tcprelay methodology for the VR and gaming
	// datasets.
	UseTraceReplay bool

	// Faults, when non-nil and non-zero, attaches the deterministic
	// fault-injection subsystem (internal/faults): per-packet network
	// faults on the downlink air and core bridge, plus scheduled OFCS
	// crash and SPGW meter restart. A nil pointer (the zero Config)
	// leaves every RNG fork and golden output byte-identical to a
	// fault-free build.
	Faults *faults.Spec

	// DurableLedger attaches a crash-consistent charging ledger
	// (internal/ledger over an in-memory page-cache model) to the
	// OFCS: collected CDRs are logged, an injected OFCS crash drops
	// the log's unsynced tail with the page cache, and the restart
	// replays the loss window back instead of only counting it. The
	// OFCS is a passive sink in this testbed, so the packet-level
	// outputs (truth, views, ε) stay byte-identical with the ledger
	// on or off — only the CDR loss accounting changes.
	DurableLedger bool
	// LedgerSyncEvery is the ledger's group-commit window when
	// DurableLedger is set; 0 means sync every append (no loss).
	LedgerSyncEvery int
}

// RSSSpec describes the signal strength process.
type RSSSpec struct {
	// Base RSS in dBm; 0 means -90 (good radio).
	Base float64
	// MeanGap/MeanOutage configure intermittent connectivity
	// (exponential outage process); both zero disables outages.
	MeanGap    time.Duration
	MeanOutage time.Duration
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.Duration <= 0 {
		out.Duration = 60 * time.Second
	}
	if out.RSS.Base == 0 {
		out.RSS.Base = -90
	}
	if out.NTPPrecision == 0 {
		out.NTPPrecision = 200 * time.Millisecond
	}
	if out.App.Name == "" {
		out.App = apps.WebCamUDP
	}
	return out
}

// Link/loss parameters of the emulated testbed, tuned so the legacy
// charging-gap ratios land in the paper's regimes (§3.2's 6.7-8.3%
// baseline, growing past 20% under heavy congestion).
const (
	// cellCapacityBps is the combined virtualised-core + cell
	// processing capacity modelled by the LoadDropper.
	cellCapacityBps = 160e6
	// bridgeRateBps is the wiring rate of the core bridge link
	// (post-thinning, so it rarely queues in steady state).
	bridgeRateBps = 400e6
	// bridgeQueueBytes bounds the bridge queue.
	bridgeQueueBytes = 192 << 10
	// dlAirRateBps is the shared downlink air capacity of the 20MHz
	// FDD cell.
	dlAirRateBps = 170e6
	// ulAirRateBps is the uplink air capacity.
	ulAirRateBps = 50e6
	// airQueueBytes is the eNodeB buffer absorbing short outages.
	airQueueBytes = 256 << 10
	// dlAirResidualLoss is the residual downlink air-interface loss
	// in good radio (post-meter).
	dlAirResidualLoss = 0.075
	// ulAirResidualLoss is the (pre-meter) uplink air residual.
	ulAirResidualLoss = 0.005
	// bridgeULResidualLoss is the post-meter uplink residual in the
	// virtualised core; it reproduces the paper's uplink baseline
	// gap (§3.1's "dropped after being charged by the gateway").
	bridgeULResidualLoss = 0.07
	// imsi identifies the single edge device under test.
	imsi = "001011132547648"
)

// EventsFired returns the cumulative count of simulator events
// executed in this process (including parallel sweep workers), read
// from the process-wide metrics registry. cmd/tlcbench diffs it
// around each experiment to report events_fired / events_per_sec /
// allocs_per_event.
func EventsFired() uint64 { return sim.EventsFiredTotal() }

// Testbed is one fully wired emulation instance.
type Testbed struct {
	Cfg   Config
	Sched *sim.Scheduler
	RNG   *sim.RNG
	IDs   *netem.IDGen
	// Pool recycles packet structs across the whole topology: the
	// sources draw from it and every terminal sink and drop site
	// returns to it, so a steady-state cycle allocates no packets.
	Pool *netem.PacketPool

	HSS  *epc.HSS
	PCRF *epc.PCRF
	MME  *epc.MME
	SPGW *epc.SPGW
	OFCS *epc.OFCS

	Radio *ran.Radio
	BS    *ran.BaseStation

	Modem *device.Modem
	OS    *device.OSCounters

	Streamer *apps.Streamer
	Replayer *trace.Replayer

	// Application-level meters (ground truth and party records).
	DevAppSent *netem.Meter // device app egress (UL x̂e)
	DevAppRecv *netem.Meter // device app ingress (DL x̂o)
	SrvAppSent *netem.Meter // server app egress (DL x̂e)
	SrvAppRecv *netem.Meter // server app ingress (UL x̂o)
	SrvIngress *netem.Meter // operator's server-port monitor

	EdgeClock *simclock.Clock
	OpClock   *simclock.Clock

	EdgeMon *monitor.EdgeMonitor
	OpMon   *monitor.OperatorMonitor

	DLAir    *netem.Link
	ULAir    *netem.Link
	Bridge   *netem.Link
	Dropper  *netem.LoadDropper
	Bearers  *epc.BearerTable
	Handover *ran.HandoverModel

	// FaultTrace is non-nil exactly when Cfg.Faults is active; it
	// records every injected fault for the determinism pin.
	FaultTrace      *faults.Trace
	NetFaultsDL     *faults.NetFaults
	NetFaultsBridge *faults.NetFaults
	faultSpec       faults.Spec

	bgSources []*netem.TrafficSource
	rssModel  ran.RSSModel
}

// NewTestbed wires the full topology for the config.
func NewTestbed(cfg Config) *Testbed {
	cfg = cfg.withDefaults()
	tb := &Testbed{
		Cfg:   cfg,
		Sched: sim.NewScheduler(),
		RNG:   sim.NewRNG(cfg.Seed),
		IDs:   &netem.IDGen{},
		Pool:  &netem.PacketPool{},
	}
	s := tb.Sched

	// Control plane.
	tb.HSS = epc.NewHSS()
	tb.HSS.Register(&epc.Subscriber{IMSI: imsi, DefaultQCI: 9})
	tb.PCRF = epc.NewPCRF()
	if cfg.App.QCI != 9 && cfg.App.QCI != 0 {
		tb.PCRF.Install(epc.PolicyRule{Flow: cfg.App.Name, QCI: cfg.App.QCI})
	}
	tb.MME = epc.NewMME(s)
	tb.MME.Attach(imsi)
	tb.SPGW = epc.NewSPGW(s, "192.168.2.11", tb.MME, tb.PCRF)
	tb.SPGW.Pool = tb.Pool
	tb.SPGW.MeterHorizon = cfg.Duration + 2*time.Second
	tb.OFCS = epc.NewOFCS()
	tb.SPGW.OFCS = tb.OFCS
	if cfg.DurableLedger {
		syncEvery := cfg.LedgerSyncEvery
		if syncEvery <= 0 {
			syncEvery = 1 // every append durable: the full loss window recovers
		}
		led, err := ledger.Open(ledger.Options{
			Dir: "ofcs", FS: ledger.NewMemFS(), SyncEvery: syncEvery,
		}, nil)
		if err == nil {
			// The ledger draws no randomness and the OFCS is a
			// passive sink, so attaching it cannot perturb the
			// packet-level simulation.
			tb.OFCS.AttachLedger(led, 1)
		}
	}

	// Radio.
	if cfg.RSS.MeanGap > 0 && cfg.RSS.MeanOutage > 0 {
		tb.rssModel = ran.NewOutageRSS(cfg.RSS.Base, -125,
			cfg.RSS.MeanGap, cfg.RSS.MeanOutage, cfg.Duration+10*time.Second,
			tb.RNG.Fork("rss"))
	} else {
		tb.rssModel = ran.ConstantRSS(cfg.RSS.Base)
	}
	tb.Radio = ran.NewRadio(s, tb.rssModel)
	tb.Radio.OnDetach = func(sim.Time) { tb.MME.Detach(imsi) }
	tb.Radio.OnAttach = func(sim.Time) { tb.MME.Attach(imsi) }

	// Device.
	tb.Modem = &device.Modem{}
	tb.OS = &device.OSCounters{}
	tb.BS = ran.NewBaseStation(s, tb.Radio, tb.Modem)

	// Meters.
	tb.DevAppSent = netem.NewMeter("dev-app-sent", s, nil)
	tb.DevAppRecv = netem.NewMeter("dev-app-recv", s, nil)
	tb.SrvAppSent = netem.NewMeter("srv-app-sent", s, nil)
	tb.SrvAppRecv = netem.NewMeter("srv-app-recv", s, nil)
	tb.SrvIngress = netem.NewMeter("op-srv-ingress", s, nil)
	horizon := cfg.Duration + 2*time.Second
	for _, m := range []*netem.Meter{
		tb.DevAppSent, tb.DevAppRecv, tb.SrvAppSent, tb.SrvAppRecv, tb.SrvIngress,
	} {
		m.Reserve(horizon)
	}

	bsTap := func(next netem.Node) netem.Node {
		return netem.NodeFunc(func(p *netem.Packet) {
			if !p.Background {
				tb.BS.NotifyActivity(s.Now())
			}
			next.Recv(p)
		})
	}

	// ---- Uplink chain (device → server) ----
	// server app ingress (terminal).
	ulServer := netem.NodeFunc(func(p *netem.Packet) {
		if !p.Background && p.Dir == netem.Uplink {
			tb.SrvAppRecv.Recv(p)
		}
		tb.Pool.Put(p)
	})
	// Operator's server-port monitor in front of the app.
	ulOpMonitor := netem.NodeFunc(func(p *netem.Packet) {
		if !p.Background && p.Dir == netem.Uplink {
			tb.SrvIngress.Recv(p)
		}
		ulServer.Recv(p)
	})

	// ---- Downlink chain tail (air → device) ----
	dlDevice := netem.NodeFunc(func(p *netem.Packet) {
		if !p.Background && p.Dir == netem.Downlink {
			tb.DevAppRecv.Recv(p)
		}
		tb.Pool.Put(p)
	})
	osRX := tb.OS.RXNode()
	dlOS := netem.NodeFunc(func(p *netem.Packet) {
		if p.Dir == netem.Downlink {
			osRX.Recv(p)
		}
		dlDevice.Recv(p)
	})
	modemDL := tb.Modem.DLNode(dlOS)
	// Background DL traffic terminates at the cell without reaching
	// this device's modem (it belongs to the other phone).
	dlAirDst := netem.NodeFunc(func(p *netem.Packet) {
		if p.Background {
			tb.Pool.Put(p)
			return
		}
		modemDL.Recv(p)
	})
	airQueue := cfg.AirQueueBytes
	if airQueue <= 0 {
		airQueue = airQueueBytes
	}
	tb.DLAir = ran.NewAirLink(ran.AirLinkConfig{
		Name: "dl-air", RateBps: dlAirRateBps, Delay: 5 * time.Millisecond,
		QueueBytes: airQueue, ResidualLoss: dlAirResidualLoss,
	}, s, tb.Radio, bsTap(dlAirDst), tb.RNG.Fork("dl-air"))
	tb.DLAir.Pool = tb.Pool

	// ---- Core bridge (shared, post-meter both directions) ----
	// GTP-U tunnels the SPGW↔eNodeB segment (S1-U): downlink packets
	// are encapsulated after metering and decapsulated at the base
	// station before the air interface.
	tb.Bearers = epc.NewBearerTable()
	dlDecap := &epc.GTPDecap{Bearers: tb.Bearers, Pool: tb.Pool}
	bridgeRouter := netem.NodeFunc(func(p *netem.Packet) {
		if p.Dir == netem.Downlink {
			dlDecap.Recv(p)
			return
		}
		ulOpMonitor.Recv(p)
	})
	tb.Bridge = netem.NewLink("core-bridge", s, bridgeRateBps, time.Millisecond,
		bridgeQueueBytes, bridgeRouter)
	tb.Bridge.Pool = tb.Pool
	bridgeRNG := tb.RNG.Fork("bridge")
	tb.Bridge.Loss = netem.LossFunc(func(p *netem.Packet, _ sim.Time) bool {
		if p.Background || p.Dir != netem.Uplink {
			return false
		}
		return bridgeRNG.Float64() < bridgeULResidualLoss
	})
	// The shared congestion point: all traffic (both directions and
	// the background stream) competes for the cell+core capacity.
	tb.Dropper = netem.NewLoadDropper(s, cellCapacityBps, tb.Bridge, tb.RNG.Fork("load"))
	tb.Dropper.Pool = tb.Pool
	dlDecap.Next = tb.DLAir

	// SPGW forwards into the congested core in both directions; the
	// downlink enters the S1-U tunnel after metering.
	dlEncap := &epc.GTPEncap{Bearers: tb.Bearers, Next: tb.Dropper}
	tb.SPGW.ULNext = tb.Dropper
	tb.SPGW.DLNext = dlEncap

	// ---- Uplink chain head (device → air → SPGW) ----
	// The uplink S1-U tunnel: the base station encapsulates into GTP
	// toward the gateway, which decapsulates before metering (CDRs
	// count subscriber bytes, not tunnel bytes).
	spgwUL := tb.SPGW.ULNode()
	ulDecap := &epc.GTPDecap{Bearers: tb.Bearers, Next: spgwUL, Pool: tb.Pool}
	ulEncap := &epc.GTPEncap{Bearers: tb.Bearers, Next: ulDecap}
	tb.ULAir = ran.NewAirLink(ran.AirLinkConfig{
		Name: "ul-air", RateBps: ulAirRateBps, Delay: 5 * time.Millisecond,
		QueueBytes: airQueue, ResidualLoss: ulAirResidualLoss,
	}, s, tb.Radio, bsTap(ulEncap), tb.RNG.Fork("ul-air"))
	tb.ULAir.Pool = tb.Pool
	osTX := tb.OS.TXNode()
	modemUL := tb.Modem.ULNode(tb.ULAir)
	deviceULStack := netem.NodeFunc(func(p *netem.Packet) {
		tb.DevAppSent.Recv(p)
		osTX.Recv(p)
		modemUL.Recv(p)
	})

	// ---- Application streamer ----
	spgwDL := tb.SPGW.DLNode()
	inetRNG := tb.RNG.Fork("internet")
	serverDLStack := netem.NodeFunc(func(p *netem.Packet) {
		tb.SrvAppSent.Recv(p)
		if cfg.InternetLoss > 0 && inetRNG.Float64() < cfg.InternetLoss {
			tb.Pool.Put(p) // lost between the remote server and the core
			return
		}
		spgwDL.Recv(p)
	})
	var appDst netem.Node
	if cfg.App.Dir == netem.Uplink {
		appDst = deviceULStack
	} else {
		appDst = serverDLStack
	}
	if cfg.UseTraceReplay {
		tr := trace.Synthesize(cfg.App, cfg.App.Name, imsi, cfg.Duration+2*time.Second, cfg.Seed^0x5eed)
		tb.Replayer = &trace.Replayer{Trace: tr, Sched: s, IDs: tb.IDs, Dst: appDst, Pool: tb.Pool}
	} else {
		tb.Streamer = apps.NewStreamer(cfg.App, s, tb.IDs, appDst, cfg.App.Name, imsi, tb.RNG.Fork("app"))
		tb.Streamer.Pool = tb.Pool
	}

	// ---- Background traffic ----
	if cfg.BackgroundMbps > 0 {
		// Downlink iperf stream to a separate phone: crosses the
		// bridge, then the shared downlink air interface.
		src := &netem.TrafficSource{
			Sched: s, IDs: tb.IDs, Dst: tb.Dropper,
			Flow: "iperf-bg", IMSI: "other-phone", QCI: 9,
			Dir: netem.Downlink, RateBps: cfg.BackgroundMbps * 1e6,
			PacketSize: 7000, Background: true,
			Jitter: 0.2, RNG: tb.RNG.Fork("bg"),
			Pool: tb.Pool,
		}
		tb.bgSources = append(tb.bgSources, src)
	}

	// ---- Mobility ----
	if cfg.HandoverMeanInterval > 0 {
		tb.Handover = ran.NewHandoverModel(s, tb.RNG.Fork("handover"), cfg.HandoverMeanInterval)
		tb.Handover.Links = []*netem.Link{tb.DLAir, tb.ULAir}
		gate := func(now sim.Time) bool {
			return tb.Radio.Available(now) && !tb.Handover.Active(now)
		}
		tb.DLAir.Gate = gate
		tb.ULAir.Gate = gate
	}

	// ---- Fault injection ----
	// Strictly gated: RNG.Fork consumes the parent stream, so a
	// fault-free config must not touch tb.RNG here or every golden
	// output downstream would shift.
	if cfg.Faults != nil && !cfg.Faults.Zero() {
		tb.faultSpec = cfg.Faults.WithDefaults()
		tb.FaultTrace = &faults.Trace{}
		if tb.faultSpec.NetworkActive() {
			tb.NetFaultsDL = faults.NewNetFaults(tb.faultSpec,
				tb.RNG.Fork("faults-dl"), tb.FaultTrace, "dl-air")
			tb.DLAir.Inject = tb.NetFaultsDL
			tb.NetFaultsBridge = faults.NewNetFaults(tb.faultSpec,
				tb.RNG.Fork("faults-bridge"), tb.FaultTrace, "bridge")
			tb.Bridge.Inject = tb.NetFaultsBridge
		}
	}

	// ---- Clocks and monitors ----
	sync := simclock.NewSyncModel(cfg.NTPPrecision, tb.RNG.Fork("ntp"))
	tb.EdgeClock = simclock.New(sync.Residual(), tb.RNG.Fork("drift-e").Uniform(-5, 5))
	tb.OpClock = simclock.New(sync.Residual(), tb.RNG.Fork("drift-o").Uniform(-5, 5))

	tb.EdgeMon = &monitor.EdgeMonitor{
		Clock:      tb.EdgeClock,
		DeviceSent: tb.DevAppSent, DeviceReceived: tb.DevAppRecv,
		ServerSent: tb.SrvAppSent, ServerReceived: tb.SrvAppRecv,
		TamperFactor: cfg.EdgeTamper,
	}
	tb.OpMon = &monitor.OperatorMonitor{
		Clock: tb.OpClock, IMSI: imsi,
		Gateway:       tb.SPGW,
		ServerIngress: tb.SrvIngress,
	}
	tb.BS.OnCounterCheck = tb.OpMon.OnCounterCheck

	return tb
}

// Plan returns the cycle's data-plan window in true time.
func (tb *Testbed) Plan() simclock.Window {
	return simclock.Window{Start: 0, End: tb.Cfg.Duration}
}

// Run executes one full charging cycle and returns the measurements.
func (tb *Testbed) Run() *CycleResult {
	cfg := tb.Cfg
	s := tb.Sched

	tb.Radio.Start()
	tb.BS.Start()
	tb.SPGW.Start()
	tb.Dropper.Start()
	if tb.Handover != nil {
		tb.Handover.Start()
	}
	if tb.Replayer != nil {
		tb.Replayer.Start(0)
	} else {
		tb.Streamer.Start(0)
	}
	for _, bg := range tb.bgSources {
		bg.Start(0)
	}

	// The operator polls the modem with COUNTER CHECK at its view
	// of the cycle end (plus periodic keep-up polls every 10s so a
	// boundary outage degrades gracefully to a stale record).
	opWindow := tb.OpClock.ObservedWindow(tb.Plan())
	checkEvery := cfg.CounterCheckPeriod
	if checkEvery <= 0 {
		checkEvery = 10 * time.Second
	}
	for at := checkEvery; at < cfg.Duration; at += checkEvery {
		s.At(at, tb.BS.TriggerCounterCheck)
	}
	if opWindow.End > 0 {
		// Send the final check one air round-trip early so the
		// response snapshot lands at the boundary.
		end := opWindow.End - tb.BS.CheckRTT
		if end < s.Now() {
			end = s.Now()
		}
		s.At(end, tb.BS.TriggerCounterCheck)
	}

	// Component faults fire on the same simulated clock as everything
	// else, so they land identically at any sweep worker count.
	if tb.FaultTrace != nil {
		fs := tb.faultSpec
		if fs.OFCSCrashAt > 0 {
			s.At(fs.OFCSCrashAt, func() {
				lost := tb.OFCS.Crash(s.Now(), fs.CDRLossWindow)
				tb.FaultTrace.Addf(s.Now(), "ofcs crash lost=%d window=%s", lost, fs.CDRLossWindow)
			})
			s.At(fs.OFCSCrashAt+fs.OFCSDowntime, func() {
				recovered := tb.OFCS.Restart()
				if tb.OFCS.Ledger() != nil {
					tb.FaultTrace.Addf(s.Now(), "ofcs restart recovered=%d", recovered)
				} else {
					// Keep the ledger-less trace byte-identical to
					// the pre-ledger goldens.
					tb.FaultTrace.Addf(s.Now(), "ofcs restart")
				}
			})
		}
		if fs.SPGWRestartAt > 0 {
			s.At(fs.SPGWRestartAt, func() {
				lost := tb.SPGW.RestartMeters()
				tb.FaultTrace.Addf(s.Now(), "spgw meter restart lost=%d", lost)
			})
		}
	}

	horizon := cfg.Duration + 2*time.Second
	s.RunUntil(horizon)
	if tb.Streamer != nil {
		tb.Streamer.Stop()
	}
	for _, bg := range tb.bgSources {
		bg.Stop()
	}
	tb.SPGW.FlushCDRs(s.Now())
	tb.publishMetrics()

	return tb.collect()
}

// publishMetrics folds every substrate's plain run counters into the
// process-wide registry. It runs once, after the event loop stops, so
// instrumentation adds nothing to the hot path and cannot perturb
// event order or RNG draws; each component's PublishMetrics is
// once-guarded, so a second call is a no-op.
func (tb *Testbed) publishMetrics() {
	tb.Sched.PublishMetrics()
	tb.DLAir.PublishMetrics()
	tb.ULAir.PublishMetrics()
	tb.Bridge.PublishMetrics()
	tb.Dropper.PublishMetrics()
	tb.Pool.PublishMetrics()
	tb.OFCS.PublishMetrics()
	tb.SPGW.PublishMetrics()
	tb.NetFaultsDL.PublishMetrics()
	tb.NetFaultsBridge.PublishMetrics()
}

// CycleResult captures everything a charging scheme needs from one
// cycle, plus diagnostics.
type CycleResult struct {
	Cfg Config

	// Truth is the ground-truth (x̂e, x̂o) in the true cycle window.
	Truth struct {
		Sent     float64
		Received float64
	}
	// XHat is the plan-correct charging volume x̂.
	XHat float64

	// EdgeView and OpView are the parties' negotiation inputs.
	EdgeView struct{ Sent, Received float64 }
	OpView   struct{ Sent, Received float64 }

	// LegacyCharge is what legacy 4G/5G bills: the gateway-metered
	// volume in the direction under test.
	LegacyCharge float64

	// Eta is the intermittent disconnectivity ratio η.
	Eta float64
	// CDRCount is the number of gateway CDRs (Figure 11c).
	CDRCount int
	// DetachedDrops is the downlink volume discarded uncharged
	// while detached.
	DetachedDrops uint64
	// RRCReleases and CounterChecks count signalling events.
	RRCReleases   uint64
	CounterChecks uint64
	// Handovers and HandoverLostBytes record mobility effects.
	Handovers         uint64
	HandoverLostBytes uint64

	// Fault-injection outcomes; all zero when Cfg.Faults is nil.
	FaultDrops      uint64 // packets dropped by injected bursts
	FaultDups       uint64
	FaultDelays     uint64 // spikes + reorder holds
	LostCDRs        int    // records lost to OFCS crashes
	RecoveredCDRs   int    // loss-window records replayed from the ledger
	LostWindowCDRs  int    // loss-window records still missing (torn tail)
	OFCSCrashes     int
	GatewayRestarts int
	MeterLostBytes  uint64 // unflushed bytes lost to meter restarts
	FaultTraceLen   int
	FaultTraceHash  uint64
}

// collect computes the cycle's measurements.
func (tb *Testbed) collect() *CycleResult {
	cfg := tb.Cfg
	w := tb.Plan()
	r := &CycleResult{Cfg: cfg}

	var sentM, recvM *netem.Meter
	if cfg.App.Dir == netem.Uplink {
		sentM, recvM = tb.DevAppSent, tb.SrvAppRecv
	} else {
		sentM, recvM = tb.SrvAppSent, tb.DevAppRecv
	}
	truth := monitor.Truth(sentM, recvM, w)
	r.Truth.Sent, r.Truth.Received = truth.Sent, truth.Received
	r.XHat = truth.Received + cfg.C*(truth.Sent-truth.Received)

	ev := tb.EdgeMon.View(w, cfg.App.Dir)
	ov := tb.OpMon.View(w, cfg.App.Dir)
	r.EdgeView.Sent, r.EdgeView.Received = ev.Sent, ev.Received
	r.OpView.Sent, r.OpView.Received = ov.Sent, ov.Received

	opW := tb.OpClock.ObservedWindow(w)
	ul, dl := tb.SPGW.UsageInWindow(imsi, opW.Start, opW.End)
	if cfg.App.Dir == netem.Uplink {
		r.LegacyCharge = ul
	} else {
		r.LegacyCharge = dl
	}

	total := cfg.Duration
	if total > 0 {
		r.Eta = float64(tb.Radio.OutOfServiceTime()) / float64(total)
	}
	r.CDRCount = tb.OFCS.Records()
	_, r.DetachedDrops = tb.SPGW.DroppedDetached(imsi)
	r.RRCReleases = tb.BS.Releases()
	_, r.CounterChecks = tb.BS.CounterChecks()
	if tb.Handover != nil {
		r.Handovers = tb.Handover.Handovers()
		_, r.HandoverLostBytes = tb.Handover.Lost()
	}
	if tb.FaultTrace != nil {
		for _, l := range []*netem.Link{tb.DLAir, tb.Bridge} {
			r.FaultDrops += l.Stats.FaultDrops
			r.FaultDups += l.Stats.FaultDups
			r.FaultDelays += l.Stats.FaultDelays
		}
		r.LostCDRs = tb.OFCS.LostRecords()
		r.RecoveredCDRs = tb.OFCS.RecoveredRecords()
		r.LostWindowCDRs = tb.OFCS.LostWindowRecords()
		r.OFCSCrashes = tb.OFCS.Crashes()
		r.GatewayRestarts = tb.SPGW.Restarts()
		r.MeterLostBytes = tb.SPGW.RestartLostBytes()
		r.FaultTraceLen = tb.FaultTrace.Len()
		r.FaultTraceHash = tb.FaultTrace.Hash()
	}
	return r
}

// PerHour scales a per-cycle byte volume to MB/hr.
func (r *CycleResult) PerHour(bytes float64) float64 {
	secs := r.Cfg.Duration.Seconds()
	if secs == 0 {
		return 0
	}
	return bytes / 1e6 * 3600 / secs
}

// String summarises the cycle.
func (r *CycleResult) String() string {
	return fmt.Sprintf("%s: sent=%.0f recv=%.0f xhat=%.0f legacy=%.0f eta=%.3f cdrs=%d",
		r.Cfg.App.Name, r.Truth.Sent, r.Truth.Received, r.XHat, r.LegacyCharge, r.Eta, r.CDRCount)
}
