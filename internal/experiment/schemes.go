package experiment

import (
	"math"

	"tlc/internal/core"
	"tlc/internal/sim"
)

// Scheme names used across the experiments, matching §7.1.
const (
	SchemeLegacy  = "legacy"      // honest legacy 4G/5G: the gateway CDR is the bill
	SchemeOptimal = "tlc-optimal" // TLC with rational minimax parties
	SchemeRandom  = "tlc-random"  // TLC with selfish-but-naive parties
	SchemeHonest  = "tlc-honest"  // TLC with honest parties
)

// Schemes lists the three compared schemes in presentation order.
var Schemes = []string{SchemeLegacy, SchemeRandom, SchemeOptimal}

// SchemeResult is one charging scheme applied to one cycle.
type SchemeResult struct {
	Scheme    string
	X         float64 // billed volume (bytes)
	Rounds    int
	Converged bool
	Delta     float64 // Δ = |x − x̂|
	Epsilon   float64 // ε = Δ / x̂
}

func newSchemeResult(name string, x, xhat float64, rounds int, converged bool) SchemeResult {
	r := SchemeResult{Scheme: name, X: x, Rounds: rounds, Converged: converged}
	r.Delta = math.Abs(x - xhat)
	if xhat > 0 {
		r.Epsilon = r.Delta / xhat
	}
	return r
}

// Evaluate applies a charging scheme to a finished cycle. The same
// cycle (same traffic, same records) feeds every scheme, exactly as
// the paper replays its recorded usage under each scheme.
func Evaluate(r *CycleResult, scheme string, seed int64) SchemeResult {
	switch scheme {
	case SchemeLegacy:
		return newSchemeResult(SchemeLegacy, r.LegacyCharge, r.XHat, 0, true)
	case SchemeOptimal:
		return runTLC(r, core.OptimalStrategy{}, core.OptimalStrategy{}, SchemeOptimal, seed)
	case SchemeRandom:
		return runTLC(r, core.RandomSelfishStrategy{}, core.RandomSelfishStrategy{}, SchemeRandom, seed)
	case SchemeHonest:
		return runTLC(r, core.HonestStrategy{}, core.HonestStrategy{}, SchemeHonest, seed)
	default:
		panic("experiment: unknown scheme " + scheme)
	}
}

// EvaluateAll runs the standard scheme comparison on a cycle.
func EvaluateAll(r *CycleResult, seed int64) map[string]SchemeResult {
	out := make(map[string]SchemeResult, len(Schemes))
	for _, s := range Schemes {
		out[s] = Evaluate(r, s, seed)
	}
	return out
}

func runTLC(r *CycleResult, edge, op core.Strategy, name string, seed int64) SchemeResult {
	out, err := core.Negotiate(core.Config{
		C:        r.Cfg.C,
		Edge:     edge,
		Operator: op,
		EdgeView: core.View{Sent: r.EdgeView.Sent, Received: r.EdgeView.Received},
		OperatorView: core.View{
			Sent: r.OpView.Sent, Received: r.OpView.Received,
		},
		RNG:       sim.NewRNG(seed),
		MaxRounds: 256,
	})
	if err != nil || !out.Converged {
		return newSchemeResult(name, 0, r.XHat, out.Rounds, false)
	}
	return newSchemeResult(name, out.X, r.XHat, out.Rounds, true)
}

// GapReduction computes the paper's Figure 15 metric µ =
// (x_legacy − x_TLC) / x_legacy.
func GapReduction(legacy, tlc float64) float64 {
	if legacy <= 0 {
		return 0
	}
	return (legacy - tlc) / legacy
}
