package experiment

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"tlc/internal/apps"
	"tlc/internal/netem"
	"tlc/internal/stats"
)

// Options scales an experiment sweep. The zero value gives the full
// configuration used by cmd/tlcbench; Quick() gives a configuration
// small enough for unit tests.
type Options struct {
	// Duration is the charging cycle length per run.
	Duration time.Duration
	// Seeds is the number of repetitions per grid point.
	Seeds int
	// BGLevels are the background-traffic sweep points in Mbps.
	BGLevels []float64
	// Stopwatch supplies the elapsed-time probe for the benchmark-style
	// "this-host" rows (Figure 17), which genuinely measure the real
	// crypto implementation. The default reads the monotonic wall
	// clock — the one sanctioned wall-clock use in this package — and
	// tests inject a fake so regenerated figures stay byte-identical.
	Stopwatch Stopwatch
	// Workers fans the sweep's independent cells across a worker
	// pool: 0 runs sequentially, a negative value uses one worker per
	// CPU, any other value that many goroutines. Output is
	// byte-identical at every setting (see sweep.go).
	Workers int
	// Shards is the shard worker count for experiments that run one
	// sharded simulation instead of a sweep (the city scenario): 0
	// runs the sequential golden path, W >= 1 runs W shard workers.
	// Like Workers, output is byte-identical at every setting.
	Shards int
}

func (o Options) withDefaults() Options {
	if o.Duration <= 0 {
		o.Duration = 60 * time.Second
	}
	if o.Seeds <= 0 {
		o.Seeds = 3
	}
	if len(o.BGLevels) == 0 {
		o.BGLevels = []float64{0, 100, 120, 140, 160}
	}
	if o.Stopwatch == nil {
		o.Stopwatch = wallStopwatch
	}
	return o
}

// Quick returns options sized for unit tests.
func Quick() Options {
	return Options{Duration: 15 * time.Second, Seeds: 1, BGLevels: []float64{0, 160}}
}

// Result is one regenerated table or figure.
type Result struct {
	ID    string
	Title string
	Text  string
	// Metrics carries the experiment's headline domain numbers in
	// machine-readable form (gap ratios, ε means, negotiation
	// rounds, …) for tlcbench's JSON output and perf tracking.
	Metrics map[string]float64
	// Shards reports per-worker execution statistics for sharded
	// experiments (the city scenario); nil for sweep experiments.
	// Unlike Metrics and Text — which are byte-identical at any shard
	// count — this reflects the actual execution layout, and StallMS
	// is wall-clock, so it never participates in golden comparisons.
	Shards []ShardStat
}

// ShardStat is one shard worker's share of a sharded experiment run.
type ShardStat struct {
	Shard       int     `json:"shard"`
	Partitions  int     `json:"partitions"`
	EventsFired uint64  `json:"events_fired"`
	StallMS     float64 `json:"stall_ms"`
}

// fig3Apps are the three workloads of Figure 3 (gaming joins for
// Figures 12-13 and Table 2).
var fig3Apps = []apps.Profile{apps.WebCamRTSP, apps.WebCamUDP, apps.VRidgeGVSP}

// legacyGapBytes is the §3.2 charging-gap measurement: the volume the
// gateway charged minus what the receiving edge endpoint counted.
func legacyGapBytes(r *CycleResult) float64 {
	return r.LegacyCharge - r.Truth.Received
}

// Headline reproduces the paper's §1/§3.2 headline numbers: the
// per-hour charging gap for the three streaming workloads in good
// radio, and the stressed variants under congestion and intermittent
// connectivity.
func Headline(opt Options) Result {
	opt = opt.withDefaults()
	// Cells 2i / 2i+1 are workload i's good-radio and stressed runs.
	cfgs := make([]Config, 0, 2*len(fig3Apps))
	for i, app := range fig3Apps {
		cfgs = append(cfgs,
			Config{App: app, Seed: int64(100 + i), C: 0.5, Duration: opt.Duration},
			Config{
				App: app, Seed: int64(200 + i), C: 0.5, Duration: opt.Duration,
				BackgroundMbps: 160,
				RSS:            RSSSpec{Base: -90, MeanGap: 20 * time.Second, MeanOutage: 2 * time.Second},
			})
	}
	runs := runCells(opt, cfgs)
	var b strings.Builder
	metrics := map[string]float64{}
	fmt.Fprintf(&b, "%-16s %14s %14s %14s\n", "workload", "good (MB/hr)", "gap ratio", "stressed (MB/hr)")
	for i, app := range fig3Apps {
		good, stressed := runs[2*i], runs[2*i+1]
		gGood, gBad := legacyGapBytes(good), legacyGapBytes(stressed)
		ratio := 0.0
		if good.XHat > 0 {
			ratio = gGood / good.XHat
		}
		fmt.Fprintf(&b, "%-16s %14.2f %13.1f%% %14.2f\n",
			app.Name, good.PerHour(gGood), ratio*100, stressed.PerHour(gBad))
		metrics["gap_good_mbhr_"+app.Name] = good.PerHour(gGood)
		metrics["gap_ratio_"+app.Name] = ratio
		metrics["gap_stressed_mbhr_"+app.Name] = stressed.PerHour(gBad)
	}
	return Result{ID: "headline", Title: "§3.2 headline charging gaps (paper: 8.28/59.04/80.64 MB/hr good; 98/252/983 stressed)", Text: b.String(), Metrics: metrics}
}

// Fig3 reproduces Figure 3: the per-hour charging gap versus
// background traffic for the three streaming workloads.
func Fig3(opt Options) Result {
	opt = opt.withDefaults()
	// Cell (i, bi, seed) at index (i*len(BGLevels)+bi)*Seeds+seed.
	var cfgs []Config
	for i, app := range fig3Apps {
		for _, bg := range opt.BGLevels {
			for seed := 0; seed < opt.Seeds; seed++ {
				cfgs = append(cfgs, Config{
					App: app, Seed: int64(300 + i*31 + seed), C: 0.5,
					Duration: opt.Duration, BackgroundMbps: bg,
				})
			}
		}
	}
	runs := runCells(opt, cfgs)
	series := make([]*stats.Series, len(fig3Apps))
	metrics := map[string]float64{}
	var gapSum float64
	for i, app := range fig3Apps {
		s := &stats.Series{Name: app.Name}
		for bi, bg := range opt.BGLevels {
			var sum float64
			for seed := 0; seed < opt.Seeds; seed++ {
				r := runs[(i*len(opt.BGLevels)+bi)*opt.Seeds+seed]
				sum += r.PerHour(legacyGapBytes(r))
			}
			s.AddPoint(bg, sum/float64(opt.Seeds))
			gapSum += sum / float64(opt.Seeds)
		}
		series[i] = s
	}
	metrics["gap_mbhr_mean"] = gapSum / float64(len(fig3Apps)*len(opt.BGLevels))
	return Result{
		ID:      "fig3",
		Title:   "Figure 3: charging gap (MB/hr) vs background traffic (Mbps)",
		Text:    stats.Table("bg-Mbps", opt.BGLevels, series...),
		Metrics: metrics,
	}
}

// Fig4 reproduces Figure 4: a time series of edge-received rate,
// gateway-charged rate, cumulative gap and RSS for a downlink UDP
// WebCam stream under intermittent connectivity.
func Fig4(opt Options) Result {
	opt = opt.withDefaults()
	dur := 300 * time.Second
	if opt.Duration < 60*time.Second {
		dur = 60 * time.Second // quick mode
	}
	// The paper's Figure 4 stream is a *downlink* UDP WebCam.
	app := apps.WebCamUDP.WithDirection(netem.Downlink)
	tb := NewTestbed(Config{
		App: app, Seed: 400, C: 0.5, Duration: dur,
		RSS: RSSSpec{Base: -90, MeanGap: 25 * time.Second, MeanOutage: 1930 * time.Millisecond},
	})
	r := tb.Run()

	interval := time.Second
	n := int(dur / interval)
	edgeSeries := tb.DevAppRecv.SeriesMB(interval, dur)
	// The cellular network's view: the gateway meter.
	gwUL, gwDL := make([]float64, n), make([]float64, n)
	for i := 0; i < n; i++ {
		start := time.Duration(i) * interval
		ul, dl := tb.SPGW.UsageInWindow(imsi, start, start+interval)
		gwUL[i], gwDL[i] = ul/1e6, dl/1e6
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s %12s %12s %12s %10s\n", "t(s)", "edge(Mbps)", "cell(Mbps)", "cum-gap(MB)", "RSS(dBm)")
	cum := 0.0
	step := n / 60
	if step < 1 {
		step = 1
	}
	for i := 0; i < n; i++ {
		edge := 0.0
		if i < len(edgeSeries) {
			edge = edgeSeries[i]
		}
		cum += gwDL[i] - edge
		if i%step == 0 {
			rss := tb.Radio.Model.RSS(time.Duration(i) * interval)
			fmt.Fprintf(&b, "%-6d %12.3f %12.3f %12.3f %10.1f\n",
				i, edge*8, gwDL[i]*8, cum, rss)
		}
	}
	fmt.Fprintf(&b, "total gap %.2f MB over %v (eta=%.1f%%, detach-drops %.2f MB)\n",
		(r.LegacyCharge-r.Truth.Received)/1e6, dur, r.Eta*100, float64(r.DetachedDrops)/1e6)
	metrics := map[string]float64{
		"gap_mb":  (r.LegacyCharge - r.Truth.Received) / 1e6,
		"eta_pct": r.Eta * 100,
	}
	return Result{ID: "fig4", Title: "Figure 4: intermittent connectivity time series (paper: 10.6MB gap / 300s)", Text: b.String(), Metrics: metrics}
}

// Dataset reproduces Figure 11c: the experimental dataset size.
func Dataset(opt Options) Result {
	opt = opt.withDefaults()
	// Cell (i, seed, bi) at index (i*Seeds+seed)*len(BGLevels)+bi.
	var cfgs []Config
	for i, app := range apps.Workloads {
		for seed := 0; seed < opt.Seeds; seed++ {
			for _, bg := range opt.BGLevels {
				cfgs = append(cfgs, Config{
					App: app, Seed: int64(500 + i*17 + seed), C: 0.5,
					Duration: opt.Duration, BackgroundMbps: bg,
				})
			}
		}
	}
	runs := runCells(opt, cfgs)
	var b strings.Builder
	metrics := map[string]float64{}
	var totalCDRs int
	fmt.Fprintf(&b, "%-16s %14s %18s\n", "workload", "#CDRs", "charged volume")
	for i, app := range apps.Workloads {
		var cdrs int
		var vol float64
		for seed := 0; seed < opt.Seeds; seed++ {
			for bi := range opt.BGLevels {
				r := runs[(i*opt.Seeds+seed)*len(opt.BGLevels)+bi]
				cdrs += r.CDRCount
				vol += r.LegacyCharge
			}
		}
		totalCDRs += cdrs
		fmt.Fprintf(&b, "%-16s %14d %15.1f MB\n", app.Name, cdrs, vol/1e6)
	}
	metrics["cdrs_total"] = float64(totalCDRs)
	return Result{ID: "dataset", Title: "Figure 11c: dataset (paper: 914,565 / 58,903 / 31,448 CDRs)", Text: b.String(), Metrics: metrics}
}

// sweepCell is one grid point of the standard §7.1 sweep.
type sweepCell struct {
	r   *CycleResult
	res map[string]SchemeResult
}

// standardSweep runs the §7.1 evaluation grid for one app at a given
// c: background levels × intermittency × seeds. Each grid point's
// seed is a function of its (seed, bg, rss) coordinates only, so the
// parallel fan-out is byte-identical to the sequential order.
func standardSweep(app apps.Profile, c float64, opt Options, baseSeed int64) []sweepCell {
	rssSpecs := []RSSSpec{
		{},           // good radio
		{Base: -112}, // cell edge: MCS adaptation throttles the UE (paper sweeps RSS to -120dBm)
		{Base: -90, MeanGap: 20 * time.Second, MeanOutage: 2 * time.Second}, // intermittent
	}
	var cfgs []Config
	for seed := 0; seed < opt.Seeds; seed++ {
		for bi, bg := range opt.BGLevels {
			for ri, rss := range rssSpecs {
				cfgs = append(cfgs, Config{
					App: app, Seed: baseSeed + int64(seed*1000+bi*100+ri*7), C: c,
					Duration: opt.Duration, BackgroundMbps: bg, RSS: rss,
				})
			}
		}
	}
	return Sweep(cfgs, opt.Workers, func(cfg Config) sweepCell {
		r := NewTestbed(cfg).Run()
		return sweepCell{r: r, res: EvaluateAll(r, cfg.Seed+1)}
	})
}

// Fig12 reproduces Figure 12: the CDF of the per-hour charging gap
// Δ = |x − x̂| under the three schemes for each workload (c = 0.5).
func Fig12(opt Options) Result {
	opt = opt.withDefaults()
	var b strings.Builder
	metrics := map[string]float64{}
	all := map[string]*stats.Sample{}
	for _, scheme := range Schemes {
		all[scheme] = stats.NewSample()
	}
	for i, app := range apps.Workloads {
		cells := standardSweep(app, 0.5, opt, int64(1200+100*i))
		fmt.Fprintf(&b, "-- %s --\n", app.Name)
		for _, scheme := range Schemes {
			s := stats.NewSample()
			for _, cell := range cells {
				s.Add(cell.r.PerHour(cell.res[scheme].Delta))
				all[scheme].Add(cell.r.PerHour(cell.res[scheme].Delta))
			}
			b.WriteString(stats.RenderCDF(scheme+" gap/hr (MB)", s, 4))
		}
	}
	for _, scheme := range Schemes {
		metrics["delta_mbhr_mean_"+scheme] = all[scheme].Mean()
	}
	return Result{ID: "fig12", Title: "Figure 12: charging gap CDFs per scheme (c=0.5)", Text: b.String(), Metrics: metrics}
}

// Table2 reproduces Table 2: average bitrate, absolute gap Δ and
// relative gap ε per workload per scheme (c = 0.5).
func Table2(opt Options) Result {
	opt = opt.withDefaults()
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s %10s | %12s %7s | %12s %7s | %12s %7s\n",
		"workload", "Mbps", "legacy Δ/hr", "ε", "optimal Δ/hr", "ε", "random Δ/hr", "ε")
	metrics := map[string]float64{}
	overall := map[string]*stats.Sample{}
	for _, scheme := range Schemes {
		overall[scheme] = stats.NewSample()
	}
	for i, app := range apps.Workloads {
		cells := standardSweep(app, 0.5, opt, int64(2200+100*i))
		var bitrate float64
		deltas := map[string]*stats.Sample{}
		epsilons := map[string]*stats.Sample{}
		for _, scheme := range Schemes {
			deltas[scheme] = stats.NewSample()
			epsilons[scheme] = stats.NewSample()
		}
		for _, cell := range cells {
			bitrate += cell.r.Truth.Sent * 8 / cell.r.Cfg.Duration.Seconds() / 1e6
			for _, scheme := range Schemes {
				deltas[scheme].Add(cell.r.PerHour(cell.res[scheme].Delta))
				epsilons[scheme].Add(cell.res[scheme].Epsilon)
				overall[scheme].Add(cell.res[scheme].Epsilon)
			}
		}
		bitrate /= float64(len(cells))
		fmt.Fprintf(&b, "%-16s %10.2f | %12.2f %6.1f%% | %12.2f %6.1f%% | %12.2f %6.1f%%\n",
			app.Name, bitrate,
			deltas[SchemeLegacy].Mean(), epsilons[SchemeLegacy].Mean()*100,
			deltas[SchemeOptimal].Mean(), epsilons[SchemeOptimal].Mean()*100,
			deltas[SchemeRandom].Mean(), epsilons[SchemeRandom].Mean()*100)
	}
	for _, scheme := range Schemes {
		metrics["eps_mean_"+scheme] = overall[scheme].Mean()
	}
	b.WriteString("(paper: legacy ε 17.0/8.1/21.9/3.2% vs optimal 2.2/2.0/1.8/1.6%)\n")
	return Result{ID: "table2", Title: "Table 2: average charging gap (c=0.5)", Text: b.String(), Metrics: metrics}
}

// Fig13 reproduces Figure 13: the relative gap ratio ε versus
// background traffic per scheme for each workload.
func Fig13(opt Options) Result {
	opt = opt.withDefaults()
	// Cell (i, bi, seed) at index (i*len(BGLevels)+bi)*Seeds+seed;
	// each cell evaluates every scheme on its own cycle.
	var cfgs []Config
	for i, app := range apps.Workloads {
		for _, bg := range opt.BGLevels {
			for seed := 0; seed < opt.Seeds; seed++ {
				cfgs = append(cfgs, Config{
					App: app, Seed: int64(3300 + 100*i + seed), C: 0.5,
					Duration: opt.Duration, BackgroundMbps: bg,
				})
			}
		}
	}
	cells := Sweep(cfgs, opt.Workers, func(cfg Config) map[string]float64 {
		r := NewTestbed(cfg).Run()
		eps := make(map[string]float64, len(Schemes))
		for _, scheme := range Schemes {
			eps[scheme] = Evaluate(r, scheme, cfg.Seed+1).Epsilon
		}
		return eps
	})
	var b strings.Builder
	metrics := map[string]float64{}
	epsTotals := map[string]float64{}
	for i, app := range apps.Workloads {
		fmt.Fprintf(&b, "-- %s --\n", app.Name)
		series := make([]*stats.Series, len(Schemes))
		for si, scheme := range Schemes {
			series[si] = &stats.Series{Name: scheme}
		}
		for bi, bg := range opt.BGLevels {
			sums := map[string]float64{}
			for seed := 0; seed < opt.Seeds; seed++ {
				eps := cells[(i*len(opt.BGLevels)+bi)*opt.Seeds+seed]
				for _, scheme := range Schemes {
					sums[scheme] += eps[scheme]
				}
			}
			for si, scheme := range Schemes {
				series[si].AddPoint(bg, sums[scheme]/float64(opt.Seeds)*100)
				epsTotals[scheme] += sums[scheme] / float64(opt.Seeds)
			}
		}
		b.WriteString(stats.Table("bg-Mbps", opt.BGLevels, series...))
	}
	n := float64(len(apps.Workloads) * len(opt.BGLevels))
	for _, scheme := range Schemes {
		metrics["eps_mean_"+scheme] = epsTotals[scheme] / n
	}
	return Result{ID: "fig13", Title: "Figure 13: gap ratio (%) vs background traffic", Text: b.String(), Metrics: metrics}
}

// Fig14 reproduces Figure 14: the gap ratio versus the intermittent
// disconnectivity ratio η for the UDP WebCam stream.
func Fig14(opt Options) Result {
	opt = opt.withDefaults()
	// Mean outage 1.93s (the paper's measured average); vary the
	// inter-outage gap to sweep η from ~5% to ~15%.
	gaps := []time.Duration{36 * time.Second, 22 * time.Second, 16 * time.Second,
		13 * time.Second, 11 * time.Second}
	series := make([]*stats.Series, len(Schemes))
	for si, scheme := range Schemes {
		series[si] = &stats.Series{Name: scheme}
	}
	// Figure 4/14 use the downlink UDP WebCam: outage loss lands
	// after the gateway meter, so the legacy gap grows with η.
	app := apps.WebCamUDP.WithDirection(netem.Downlink)
	type row struct {
		eta  float64
		vals map[string]float64
	}
	// Intermittency realisations are noisy; run extra repetitions.
	// Cell (gi, seed) at index gi*reps+seed.
	reps := opt.Seeds * 6
	var cfgs []Config
	for gi, gap := range gaps {
		for seed := 0; seed < reps; seed++ {
			cfgs = append(cfgs, Config{
				App: app, Seed: int64(4400 + 10*gi + seed), C: 0.5, Duration: opt.Duration,
				RSS: RSSSpec{Base: -90, MeanGap: gap, MeanOutage: 1930 * time.Millisecond},
			})
		}
	}
	type cellOut struct {
		eta float64
		eps map[string]float64
	}
	cells := Sweep(cfgs, opt.Workers, func(cfg Config) cellOut {
		r := NewTestbed(cfg).Run()
		out := cellOut{eta: r.Eta, eps: make(map[string]float64, len(Schemes))}
		for _, scheme := range Schemes {
			out.eps[scheme] = Evaluate(r, scheme, cfg.Seed+1).Epsilon
		}
		return out
	})
	var rows []row
	for gi := range gaps {
		sums := map[string]float64{}
		var etaSum float64
		for seed := 0; seed < reps; seed++ {
			cell := cells[gi*reps+seed]
			etaSum += cell.eta
			for _, scheme := range Schemes {
				sums[scheme] += cell.eps[scheme]
			}
		}
		rw := row{eta: etaSum / float64(reps) * 100, vals: map[string]float64{}}
		for _, scheme := range Schemes {
			rw.vals[scheme] = sums[scheme] / float64(reps) * 100
		}
		rows = append(rows, rw)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].eta < rows[j].eta })
	var etas []float64
	metrics := map[string]float64{}
	for _, rw := range rows {
		etas = append(etas, rw.eta)
		for si, scheme := range Schemes {
			series[si].AddPoint(rw.eta, rw.vals[scheme])
			metrics["eps_pct_mean_"+scheme] += rw.vals[scheme] / float64(len(rows))
		}
	}
	return Result{
		ID:      "fig14",
		Title:   "Figure 14: gap ratio (%) vs intermittent disconnectivity ratio η (%)",
		Text:    stats.Table("eta-%", etas, series...),
		Metrics: metrics,
	}
}

// Fig15 reproduces Figure 15: the CDF of TLC-optimal's gap reduction
// µ = (x_legacy − x_TLC)/x_legacy for c in {0, 0.25, 0.5, 0.75, 1}.
func Fig15(opt Options) Result {
	opt = opt.withDefaults()
	var b strings.Builder
	metrics := map[string]float64{}
	for _, c := range []float64{0, 0.25, 0.5, 0.75, 1} {
		sample := stats.NewSample()
		cells := standardSweep(apps.VRidgeGVSP, c, opt, int64(5500+int(c*100)))
		for _, cell := range cells {
			leg := cell.res[SchemeLegacy]
			tlc := cell.res[SchemeOptimal]
			sample.Add(GapReduction(leg.X, tlc.X) * 100)
		}
		metrics[fmt.Sprintf("mu_pct_mean_c%.2f", c)] = sample.Mean()
		b.WriteString(stats.RenderCDF(fmt.Sprintf("c=%.2f  µ (%%)", c), sample, 4))
	}
	b.WriteString("(paper: smaller c ⇒ larger reduction; c=1 ⇒ TLC equals honest legacy)\n")
	return Result{ID: "fig15", Title: "Figure 15: TLC-optimal gap reduction under various plans c", Text: b.String(), Metrics: metrics}
}
