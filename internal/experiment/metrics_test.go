package experiment

import (
	"testing"
	"time"

	"tlc/internal/metrics"
)

// TestRegistryParity pins the bench/scrape single-source-of-truth
// contract: the deltas a testbed run publishes into the process-wide
// registry must equal the run's own counters, and EventsFired (what
// cmd/tlcbench diffs for its JSON report) must read the same series
// the live /metrics endpoint would expose.
func TestRegistryParity(t *testing.T) {
	before := metrics.Default.Snapshot()
	firedBefore := EventsFired()

	tb := NewTestbed(Config{Duration: 2 * time.Second, Seed: 41})
	res := tb.Run()
	if res == nil {
		t.Fatal("nil cycle result")
	}

	after := metrics.Default.Snapshot()
	firedDelta := after["sim_events_fired_total"] - before["sim_events_fired_total"]
	if got, want := uint64(firedDelta), tb.Sched.Fired(); got != want {
		t.Errorf("sim_events_fired_total delta = %d, scheduler fired %d", got, want)
	}
	if got, want := EventsFired()-firedBefore, tb.Sched.Fired(); got != want {
		t.Errorf("EventsFired delta = %d, scheduler fired %d", got, want)
	}

	cdrDelta := after["epc_cdrs_emitted_total"] - before["epc_cdrs_emitted_total"]
	if got, want := int(cdrDelta), tb.OFCS.Records(); got != want {
		t.Errorf("epc_cdrs_emitted_total delta = %d, OFCS records %d", got, want)
	}

	// A second publish must be a no-op: the per-component once guards
	// are what make cycle-end flushing idempotent.
	tb.publishMetrics()
	again := metrics.Default.Snapshot()
	for _, k := range []string{"sim_events_fired_total", "epc_cdrs_emitted_total"} {
		if again[k] != after[k] {
			t.Errorf("%s changed on re-publish: %v -> %v", k, after[k], again[k])
		}
	}
}
