package experiment

import (
	"testing"
	"time"

	"tlc/internal/apps"
)

// These goldens were captured from the seed event engine — the
// container/heap binary-heap scheduler and the per-packet delivery
// closure in Link.propagate — immediately before the 4-ary-heap +
// delivery-ring rewrite. The rewrite claims *bit-for-bit* preservation
// of the (time, seq) event order, so every float here must match
// exactly: no tolerance, no "statistically close".

type engineGolden struct {
	TruthSent, TruthRecv float64
	XHat                 float64
	EdgeSent, EdgeRecv   float64
	OpSent, OpRecv       float64
	Legacy, Eta          float64
	CDRs                 int
	Fired                uint64
}

// engineGoldenCfgs exercise the paths the rewrite touched: pooled
// event churn under background congestion, outage gating (cancel-
// heavy), handover buffer flushes (DropQueuedFraction), queue
// overflow eviction, and trace replay.
func engineGoldenCfgs() []Config {
	return []Config{
		{App: apps.VRidgeGVSP, Seed: 424242, C: 0.5, Duration: 12 * time.Second,
			BackgroundMbps: 140,
			RSS:            RSSSpec{Base: -90, MeanGap: 6 * time.Second, MeanOutage: 1500 * time.Millisecond}},
		{App: apps.WebCamUDP, Seed: 777, C: 0.5, Duration: 10 * time.Second},
		{App: apps.WebCamRTSP, Seed: 31337, C: 0.3, Duration: 10 * time.Second,
			BackgroundMbps: 160, HandoverMeanInterval: 4 * time.Second},
		{App: apps.VRidgeGVSP, Seed: 99, C: 0.5, Duration: 10 * time.Second,
			UseTraceReplay: true},
	}
}

var engineGoldens = []engineGolden{
	{ // cell 0: congestion + outages
		TruthSent: 1.3564801e+07, TruthRecv: 1.0525119e+07,
		XHat:     1.204496e+07,
		EdgeSent: 1.345545253467185e+07, EdgeRecv: 1.046606512916897e+07,
		OpSent: 1.348184466413358e+07, OpRecv: 1.0739021e+07,
		Legacy: 1.348184466413358e+07, Eta: 0.1,
		CDRs: 14, Fired: 183529,
	},
	{ // cell 1: clean radio
		TruthSent: 2.227274e+06, TruthRecv: 2.035661e+06,
		XHat:     2.1314675e+06,
		EdgeSent: 2.22166134079853e+06, EdgeRecv: 2.03348153674065e+06,
		OpSent: 2.19224277589658e+06, OpRecv: 2.04077777589658e+06,
		Legacy: 2.19224277589658e+06, Eta: 0,
		CDRs: 12, Fired: 8472,
	},
	{ // cell 2: congestion + handovers
		TruthSent: 915791, TruthRecv: 681970,
		XHat:     752116.3,
		EdgeSent: 904886.06569303, EdgeRecv: 675371.94409381,
		OpSent: 905086.10085998, OpRecv: 675709.84124614,
		Legacy: 905086.10085998, Eta: 0,
		CDRs: 12, Fired: 144550,
	},
	{ // cell 3: trace replay
		TruthSent: 1.1029489e+07, TruthRecv: 1.0210994e+07,
		XHat:     1.06202415e+07,
		EdgeSent: 1.1022878121163439e+07, EdgeRecv: 1.025036849908058e+07,
		OpSent: 1.10315557598115e+07, OpRecv: 1.0280863e+07,
		Legacy: 1.10315557598115e+07, Eta: 0,
		CDRs: 12, Fired: 47636,
	},
}

func TestEngineParityWithSeedEngine(t *testing.T) {
	for i, cfg := range engineGoldenCfgs() {
		want := engineGoldens[i]
		tb := NewTestbed(cfg)
		r := tb.Run()
		check := func(name string, got, exp float64) {
			if got != exp {
				t.Errorf("cell %d %s = %v, seed engine produced %v", i, name, got, exp)
			}
		}
		check("Truth.Sent", r.Truth.Sent, want.TruthSent)
		check("Truth.Received", r.Truth.Received, want.TruthRecv)
		check("XHat", r.XHat, want.XHat)
		check("EdgeView.Sent", r.EdgeView.Sent, want.EdgeSent)
		check("EdgeView.Received", r.EdgeView.Received, want.EdgeRecv)
		check("OpView.Sent", r.OpView.Sent, want.OpSent)
		check("OpView.Received", r.OpView.Received, want.OpRecv)
		check("LegacyCharge", r.LegacyCharge, want.Legacy)
		check("Eta", r.Eta, want.Eta)
		if r.CDRCount != want.CDRs {
			t.Errorf("cell %d CDRs = %d, seed engine produced %d", i, r.CDRCount, want.CDRs)
		}
		// The fired-event count proves the engines executed the *same
		// events*, not merely ones that aggregate to the same totals.
		if got := tb.Sched.Fired(); got != want.Fired {
			t.Errorf("cell %d fired %d events, seed engine fired %d", i, got, want.Fired)
		}
	}
}

// TestEngineParityFigureMetrics pins two full figure sweeps (the
// tier-1 acceptance figures) to the seed engine's metric maps.
func TestEngineParityFigureMetrics(t *testing.T) {
	want := map[string]map[string]float64{
		"fig12": {
			"delta_mbhr_mean_legacy":      211.06934083187443,
			"delta_mbhr_mean_tlc-optimal": 318.490091854892,
			"delta_mbhr_mean_tlc-random":  182.30497527126192,
		},
		"table2": {
			"eps_mean_legacy":      0.10749589425547058,
			"eps_mean_tlc-optimal": 0.18575568146771773,
			"eps_mean_tlc-random":  0.08775559210101502,
		},
	}
	for id, metrics := range want {
		run, ok := ByID(id)
		if !ok {
			t.Fatalf("experiment %q missing", id)
		}
		res := run(Quick())
		for k, exp := range metrics {
			if got := res.Metrics[k]; got != exp {
				t.Errorf("%s metric %s = %v, seed engine produced %v", id, k, got, exp)
			}
		}
	}
}
