package experiment

import (
	"testing"
	"time"

	"tlc/internal/apps"
	"tlc/internal/core"
	"tlc/internal/faults"
	"tlc/internal/poc"
	"tlc/internal/protocol"
	"tlc/internal/sim"
)

// chaosSpec exercises all injectable fault families at once: bursty
// loss, duplication, reordering and delay spikes on the wire, an OFCS
// crash that loses its recent CDR tail, and a gateway meter restart
// mid-cycle.
func chaosSpec() *faults.Spec {
	return &faults.Spec{
		BurstP: 0.01, DupP: 0.005, ReorderP: 0.02, SpikeP: 0.005,
		OFCSCrashAt:   8 * time.Second,
		OFCSDowntime:  3 * time.Second,
		CDRLossWindow: 2 * time.Second,
		SPGWRestartAt: 16 * time.Second,
	}
}

func chaosConfig(seed int64) Config {
	return Config{
		App: apps.VRidgeGVSP, C: 0.5,
		Duration:       24 * time.Second,
		BackgroundMbps: 12,
		Seed:           seed,
		Faults:         chaosSpec(),
	}
}

// TestChaosFullCycle is the end-to-end chaos run: a full charging
// cycle under a seeded fault plan hitting every family, replayed
// twice to pin determinism, then settled over the real signed
// negotiation protocol. The settlement's PoC must verify and the
// billed volume must stay inside the game bound the records support.
func TestChaosFullCycle(t *testing.T) {
	r1 := NewTestbed(chaosConfig(42)).Run()
	r2 := NewTestbed(chaosConfig(42)).Run()

	// Every fault family actually fired.
	if r1.FaultDrops == 0 || r1.FaultDups == 0 || r1.FaultDelays == 0 {
		t.Fatalf("network faults did not fire: drops=%d dups=%d delays=%d",
			r1.FaultDrops, r1.FaultDups, r1.FaultDelays)
	}
	if r1.OFCSCrashes != 1 || r1.GatewayRestarts != 1 {
		t.Fatalf("component faults did not fire: crashes=%d restarts=%d",
			r1.OFCSCrashes, r1.GatewayRestarts)
	}
	if r1.LostCDRs == 0 {
		t.Fatal("OFCS crash lost no CDRs; loss window did not engage")
	}
	if r1.FaultTraceLen == 0 {
		t.Fatal("fault trace is empty")
	}

	// Same (seed, FaultPlan) → byte-identical trace and metrics.
	if r1.FaultTraceHash != r2.FaultTraceHash || r1.FaultTraceLen != r2.FaultTraceLen {
		t.Fatalf("fault trace diverged across identical runs: %016x/%d vs %016x/%d",
			r1.FaultTraceHash, r1.FaultTraceLen, r2.FaultTraceHash, r2.FaultTraceLen)
	}
	if r1.FaultDrops != r2.FaultDrops || r1.FaultDups != r2.FaultDups ||
		r1.FaultDelays != r2.FaultDelays || r1.LostCDRs != r2.LostCDRs ||
		r1.MeterLostBytes != r2.MeterLostBytes {
		t.Fatalf("fault metrics diverged: %+v vs %+v", r1, r2)
	}
	if r1.Truth != r2.Truth || r1.EdgeView != r2.EdgeView || r1.OpView != r2.OpView {
		t.Fatalf("cycle outputs diverged:\n%+v\n%+v", r1, r2)
	}

	// Settle the cycle over the signed protocol path.
	edgeKeys, opKeys, err := byzKeyPairs()
	if err != nil {
		t.Fatal(err)
	}
	plan := poc.Plan{TStart: 0, TEnd: int64(24 * time.Second), C: 0.5}
	rng := sim.NewRNG(4242)
	edge := &protocol.Party{
		Role: poc.RoleEdge, Plan: plan,
		Keys: edgeKeys, PeerKey: opKeys.Public,
		Strategy:  core.OptimalStrategy{},
		View:      core.View{Sent: r1.EdgeView.Sent, Received: r1.EdgeView.Received},
		RNG:       rng.Fork("edge"),
		MaxRounds: 256,
	}
	op := &protocol.Party{
		Role: poc.RoleOperator, Plan: plan,
		Keys: opKeys, PeerKey: edgeKeys.Public,
		Strategy:  core.OptimalStrategy{},
		View:      core.View{Sent: r1.OpView.Sent, Received: r1.OpView.Received},
		RNG:       rng.Fork("op"),
		MaxRounds: 256,
	}
	ri, ro, err := protocol.RunPair(edge, op)
	if err != nil {
		t.Fatalf("settlement under chaos failed: %v", err)
	}
	if ri.X != ro.X {
		t.Fatalf("parties settled on different volumes: %d vs %d", ri.X, ro.X)
	}
	proof := ri.PoC
	if proof == nil {
		proof = ro.PoC
	}
	if proof == nil {
		t.Fatal("settlement produced no proof of charge")
	}
	if err := poc.VerifyStateless(proof, plan, edgeKeys.Public, opKeys.Public); err != nil {
		t.Fatalf("settlement PoC does not verify: %v", err)
	}

	// Billed volume within the game bound the records support. Faults
	// corrupt the records themselves (the OFCS crash destroys part of
	// the operator's metered view), so the honest guarantee is against
	// the views as presented: the settlement never escapes the span of
	// what either party could support.
	const tol = core.DefaultTolerance
	lo := min(r1.EdgeView.Sent, r1.EdgeView.Received, r1.OpView.Sent, r1.OpView.Received) * (1 - tol)
	hi := max(r1.EdgeView.Sent, r1.EdgeView.Received, r1.OpView.Sent, r1.OpView.Received) * (1 + tol)
	x := float64(ri.X)
	if x < lo-1 || x > hi+1 {
		t.Fatalf("billed X=%v escapes game bound [%v, %v] (edge view %+v, op view %+v)",
			x, lo, hi, r1.EdgeView, r1.OpView)
	}
}

// TestChaosZeroSpecIsInert pins that a nil fault config changes
// nothing: the golden-compatible no-fault run and an explicit
// zero-spec run produce identical cycles (every RNG fork gate stays
// closed).
func TestChaosZeroSpecIsInert(t *testing.T) {
	base := chaosConfig(7)
	base.Faults = nil
	zero := chaosConfig(7)
	zero.Faults = &faults.Spec{}

	r1 := NewTestbed(base).Run()
	r2 := NewTestbed(zero).Run()
	if r1.Truth != r2.Truth || r1.EdgeView != r2.EdgeView || r1.OpView != r2.OpView {
		t.Fatalf("zero fault spec perturbed the cycle:\n%+v\n%+v", r1, r2)
	}
	if r2.FaultTraceLen != 0 || r2.FaultDrops != 0 {
		t.Fatalf("zero spec injected faults: trace=%d drops=%d", r2.FaultTraceLen, r2.FaultDrops)
	}
}

// TestChaosDurableLedgerRecovery runs the chaos cycle twice — once
// ledger-less, once with the durable CDR ledger attached — and pins
// the recovery contract: the durable run recovers exactly the CDRs
// the ledger-less run rolled out of the crash loss window, leaves no
// window residue (SyncEvery=1 makes every append durable), and
// perturbs nothing at the packet level (the OFCS is a passive sink,
// so ground truth and both views stay identical).
func TestChaosDurableLedgerRecovery(t *testing.T) {
	base := chaosConfig(42)
	dur := chaosConfig(42)
	dur.DurableLedger = true
	dur.LedgerSyncEvery = 1

	rb := NewTestbed(base).Run()
	rd := NewTestbed(dur).Run()

	if rb.Truth != rd.Truth || rb.EdgeView != rd.EdgeView || rb.OpView != rd.OpView {
		t.Fatalf("durable ledger perturbed the cycle:\nbase %+v\ndur  %+v", rb, rd)
	}
	if rb.FaultTraceHash == rd.FaultTraceHash {
		t.Fatal("fault traces identical; restart recovery line never emitted")
	}
	if rb.LostCDRs == 0 {
		t.Fatal("ledger-less run lost no CDRs; the crash window did not engage")
	}
	// The window loss the ledger-less twin suffered is the recovery
	// target; records discarded while the OFCS was down are lost in
	// both runs (the collector was not there to append them).
	window := rb.LostCDRs - (rd.LostCDRs - rd.LostWindowCDRs)
	if rd.RecoveredCDRs != window {
		t.Fatalf("recovered %d CDRs, want the pre-crash loss window %d (base lost %d, dur lost %d, dur window %d)",
			rd.RecoveredCDRs, window, rb.LostCDRs, rd.LostCDRs, rd.LostWindowCDRs)
	}
	if rd.LostWindowCDRs != 0 {
		t.Fatalf("with SyncEvery=1 every append is durable, yet %d window CDRs stayed lost", rd.LostWindowCDRs)
	}
	if rd.RecoveredCDRs == 0 {
		t.Fatal("nothing recovered; ledger never engaged")
	}
}

// TestFaultsParallelWorkerParity pins that the fault sweep is
// schedule-independent: the same cells swept sequentially and on a
// 4-worker pool produce byte-identical traces and metrics. (The name
// keeps it inside verify.sh's dedicated -run Parallel race pass.)
func TestFaultsParallelWorkerParity(t *testing.T) {
	levels := faultLevels()
	var cfgs []Config
	for li, lv := range levels {
		for seed := 0; seed < 2; seed++ {
			cfgs = append(cfgs, Config{
				App: apps.VRidgeGVSP, C: 0.5,
				Duration:       6 * time.Second,
				BackgroundMbps: 12,
				Seed:           sim.SeedForCell(4200, li, seed),
				Faults:         lv.spec(6 * time.Second),
			})
		}
	}
	type out struct {
		traceHash      uint64
		traceLen       int
		drops, dups    uint64
		lostCDRs       int
		truth          struct{ Sent, Received float64 }
		meterLostBytes uint64
	}
	run := func(workers int) []out {
		return Sweep(cfgs, workers, func(cfg Config) out {
			r := NewTestbed(cfg).Run()
			o := out{
				traceHash: r.FaultTraceHash, traceLen: r.FaultTraceLen,
				drops: r.FaultDrops, dups: r.FaultDups,
				lostCDRs:       r.LostCDRs,
				meterLostBytes: r.MeterLostBytes,
			}
			o.truth = r.Truth
			return o
		})
	}
	seq := run(0)
	par := run(4)
	for i := range seq {
		if seq[i] != par[i] {
			t.Fatalf("cell %d diverged across worker counts:\nseq %+v\npar %+v", i, seq[i], par[i])
		}
	}
}
