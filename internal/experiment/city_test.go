package experiment

import (
	"runtime"
	"strings"
	"testing"
	"time"

	"tlc/internal/sim"
)

// stormyCityConfig is a small city with mobility turned up far enough
// that handovers, X2 forwarding and storms all fire within a few
// simulated seconds.
func stormyCityConfig(shards int) CityConfig {
	return CityConfig{
		ENodeBs: 4, UEsPerENB: 8,
		Duration:      8 * time.Second,
		Seed:          7,
		Shards:        shards,
		MoveCheckMean: 800 * time.Millisecond,
		MoveProb:      0.3,
		StormPeriod:   2 * time.Second,
		StormLen:      500 * time.Millisecond,
		ForwardWindow: time.Second,
		TraceEvents:   true,
	}
}

func assertCityEqual(t *testing.T, label string, got, want *CityResult) {
	t.Helper()
	if got.Text != want.Text {
		t.Fatalf("%s: Text differs\n--- got ---\n%s\n--- want ---\n%s", label, got.Text, want.Text)
	}
	if len(got.Metrics) != len(want.Metrics) {
		t.Fatalf("%s: metric key sets differ: %d vs %d", label, len(got.Metrics), len(want.Metrics))
	}
	for k, v := range want.Metrics {
		if got.Metrics[k] != v { // exact float equality: same draws, same order, same arithmetic
			t.Errorf("%s: metric %q = %v, want %v", label, k, got.Metrics[k], v)
		}
	}
	for i := range want.Cells {
		if got.Cells[i] != want.Cells[i] {
			t.Errorf("%s: cell %d stats %+v, want %+v", label, i, got.Cells[i], want.Cells[i])
		}
	}
}

// TestShardParityCityAcrossShardCounts is the tentpole golden: the
// city scenario produces byte-identical Text and exactly equal
// metrics, per-cell counters and fired-event trace hashes at shard
// counts {0, 1, 2, 4, NumCPU} (NumCPU capped at the eNodeB count —
// above it RunCity errors by design).
func TestShardParityCityAcrossShardCounts(t *testing.T) {
	base, err := RunCity(stormyCityConfig(0))
	if err != nil {
		t.Fatal(err)
	}
	// The scenario must actually exercise the cross-shard machinery,
	// or parity would hold vacuously.
	if base.Handovers == 0 || base.Metrics["x2_lane_pkts"] == 0 || base.Metrics["x2_forwarded_pkts"] == 0 {
		t.Fatalf("scenario too quiet: handovers=%d lane=%v fwd=%v",
			base.Handovers, base.Metrics["x2_lane_pkts"], base.Metrics["x2_forwarded_pkts"])
	}
	if base.ChargedBytes <= base.DeliveredBytes {
		t.Fatalf("no charging gap: charged=%d delivered=%d", base.ChargedBytes, base.DeliveredBytes)
	}
	counts := []int{1, 2, 4}
	if n := runtime.NumCPU(); n < 4 && n >= 1 {
		counts = append(counts, n)
	}
	for _, w := range counts {
		got, err := RunCity(stormyCityConfig(w))
		if err != nil {
			t.Fatalf("shards=%d: %v", w, err)
		}
		assertCityEqual(t, "shards="+itoa(w), got, base)
		if len(got.Shards) != w {
			t.Errorf("shards=%d: %d worker stats, want %d", w, len(got.Shards), w)
		}
	}
}

func itoa(n int) string { return string(rune('0' + n)) }

// TestShardParityRandomCityDifferential is the randomized
// shard-vs-sequential differential: random topologies, seeds and
// shard counts must all replay the sequential run's per-partition
// fired-event traces exactly.
func TestShardParityRandomCityDifferential(t *testing.T) {
	rng := sim.NewRNG(99)
	for iter := 0; iter < 4; iter++ {
		cfg := CityConfig{
			ENodeBs:       2 + rng.Intn(4),
			UEsPerENB:     1 + rng.Intn(4),
			Duration:      time.Duration(1500+rng.Intn(1500)) * time.Millisecond,
			Seed:          rng.Int63(),
			X2Delay:       time.Duration(5+rng.Intn(30)) * time.Millisecond,
			MoveCheckMean: time.Duration(200+rng.Intn(800)) * time.Millisecond,
			MoveProb:      0.1 + 0.4*rng.Float64(),
			TraceEvents:   true,
		}
		base, err := RunCity(cfg)
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		w := 1 + rng.Intn(cfg.ENodeBs)
		cfg.Shards = w
		got, err := RunCity(cfg)
		if err != nil {
			t.Fatalf("iter %d shards=%d: %v", iter, w, err)
		}
		for i := range base.Cells {
			if got.Cells[i].FiredTraceHash != base.Cells[i].FiredTraceHash {
				t.Errorf("iter %d (enbs=%d ues=%d shards=%d): cell %d trace %#x != sequential %#x",
					iter, cfg.ENodeBs, cfg.UEsPerENB, w, i,
					got.Cells[i].FiredTraceHash, base.Cells[i].FiredTraceHash)
			}
			if got.Cells[i].EventsFired != base.Cells[i].EventsFired {
				t.Errorf("iter %d: cell %d fired %d events, sequential %d",
					iter, i, got.Cells[i].EventsFired, base.Cells[i].EventsFired)
			}
		}
		assertCityEqual(t, "differential", got, base)
	}
}

// TestCityRejectsBadShardCounts pins the no-silent-clamp contract at
// the RunCity layer (tlcbench turns this into a non-zero exit).
func TestCityRejectsBadShardCounts(t *testing.T) {
	cfg := CityConfig{ENodeBs: 4, UEsPerENB: 2, Duration: time.Second, Shards: 5}
	if _, err := RunCity(cfg); err == nil {
		t.Fatal("5 shards on 4 eNodeBs: want error, got nil")
	} else if !strings.Contains(err.Error(), "refusing to clamp") {
		t.Fatalf("error %q should refuse to clamp", err)
	}
	cfg.Shards = -1
	if _, err := RunCity(cfg); err == nil {
		t.Fatal("negative shards: want error, got nil")
	}
}

// TestCityRunnerReportsShardStats checks the experiment-facing City
// runner: worker stats surface in Result.Shards, and the
// wall-clock-dependent stall numbers stay out of Metrics and Text.
func TestCityRunnerReportsShardStats(t *testing.T) {
	opt := Options{Duration: 2 * time.Second, Shards: 2, Stopwatch: fixedStopwatch(time.Millisecond)}
	res := City(opt)
	if res.ID != "city" {
		t.Fatalf("ID = %q", res.ID)
	}
	if len(res.Shards) != 2 {
		t.Fatalf("%d shard stats, want 2", len(res.Shards))
	}
	total := 0
	for _, st := range res.Shards {
		total += st.Partitions
	}
	if total != 4 { // CityScale gives 4 eNodeBs for quick durations
		t.Fatalf("shard stats cover %d partitions, want 4", total)
	}
	if _, ok := res.Metrics["events_fired"]; !ok {
		t.Fatal("events_fired missing from metrics")
	}
	for k := range res.Metrics {
		if strings.Contains(k, "stall") {
			t.Fatalf("wall-clock stall leaked into deterministic metrics as %q", k)
		}
	}
	if strings.Contains(res.Text, "stall") {
		t.Fatal("wall-clock stall leaked into deterministic text")
	}
}

// TestShardParityFig12BytesAcrossShardOptions is the satellite
// regression for the metrics-merge rule: regenerating Figure 12 with
// any combination of sweep workers and shard options must yield
// byte-identical text and exactly equal metrics — per-cell histogram
// contributions merge in partition order, never completion order.
func TestShardParityFig12BytesAcrossShardOptions(t *testing.T) {
	opt := Quick()
	opt.Stopwatch = fixedStopwatch(time.Millisecond)
	base := Fig12(opt)
	for _, variant := range []Options{
		{Workers: 4},
		{Shards: 4},
		{Workers: 4, Shards: 4},
	} {
		o := Quick()
		o.Stopwatch = fixedStopwatch(time.Millisecond)
		o.Workers = variant.Workers
		o.Shards = variant.Shards
		got := Fig12(o)
		if got.Text != base.Text {
			t.Fatalf("workers=%d shards=%d: Fig12 text differs from sequential",
				variant.Workers, variant.Shards)
		}
		for k, v := range base.Metrics {
			if got.Metrics[k] != v {
				t.Errorf("workers=%d shards=%d: metric %q = %v, want %v",
					variant.Workers, variant.Shards, k, got.Metrics[k], v)
			}
		}
	}
}

// TestShardParityCityCDFUnaffectedByMergeLaziness guards the render
// path itself: rendering the city CDF (which sorts lazily) from the
// same run twice, and across shard counts, stays byte-identical.
func TestShardParityCityCDFUnaffectedByMergeLaziness(t *testing.T) {
	cfg := stormyCityConfig(0)
	cfg.Duration = 3 * time.Second
	a, err := RunCity(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Shards = 4
	b, err := RunCity(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ia := strings.Index(a.Text, "per-UE charging-gap ratio")
	ib := strings.Index(b.Text, "per-UE charging-gap ratio")
	if ia < 0 || ib < 0 {
		t.Fatal("CDF section missing from city text")
	}
	if a.Text[ia:] != b.Text[ib:] {
		t.Fatalf("CDF bytes differ between shards 0 and 4:\n%s\nvs\n%s", a.Text[ia:], b.Text[ib:])
	}
}
