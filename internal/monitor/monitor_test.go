package monitor

import (
	"testing"
	"time"

	"tlc/internal/netem"
	"tlc/internal/ran"
	"tlc/internal/sim"
	"tlc/internal/simclock"
)

// fakeGateway implements GatewayUsage with fixed per-second rates.
type fakeGateway struct {
	ulPerSec, dlPerSec float64
}

func (g fakeGateway) UsageInWindow(_ string, start, end sim.Time) (float64, float64) {
	secs := (end - start).Seconds()
	return g.ulPerSec * secs, g.dlPerSec * secs
}

func fillMeter(s *sim.Scheduler, m *netem.Meter, bytesPerSec int, until time.Duration) {
	s.Ticker(0, time.Second, func(now sim.Time) {
		if now < until {
			m.Recv(&netem.Packet{Size: bytesPerSec})
		}
	})
}

func TestTruth(t *testing.T) {
	s := sim.NewScheduler()
	sent := netem.NewMeter("sent", s, nil)
	recv := netem.NewMeter("recv", s, nil)
	fillMeter(s, sent, 1000, 10*time.Second)
	fillMeter(s, recv, 900, 10*time.Second)
	s.RunUntil(12 * time.Second)
	v := Truth(sent, recv, simclock.Window{Start: 0, End: 10 * time.Second})
	if v.Sent != 10000 || v.Received != 9000 {
		t.Fatalf("truth = %+v", v)
	}
}

func TestEdgeMonitorUplinkView(t *testing.T) {
	s := sim.NewScheduler()
	devSent := netem.NewMeter("dev-sent", s, nil)
	srvRecv := netem.NewMeter("srv-recv", s, nil)
	fillMeter(s, devSent, 1000, 10*time.Second)
	fillMeter(s, srvRecv, 950, 10*time.Second)
	s.RunUntil(12 * time.Second)
	m := &EdgeMonitor{
		Clock:      simclock.New(0, 0),
		DeviceSent: devSent, ServerReceived: srvRecv,
	}
	v := m.View(simclock.Window{Start: 0, End: 10 * time.Second}, netem.Uplink)
	if v.Sent != 10000 || v.Received != 9500 {
		t.Fatalf("UL view = %+v", v)
	}
}

func TestEdgeMonitorDownlinkViewWithSkew(t *testing.T) {
	s := sim.NewScheduler()
	srvSent := netem.NewMeter("srv-sent", s, nil)
	devRecv := netem.NewMeter("dev-recv", s, nil)
	fillMeter(s, srvSent, 1000, 20*time.Second)
	fillMeter(s, devRecv, 1000, 20*time.Second)
	s.RunUntil(25 * time.Second)
	// A clock running 500ms behind shifts the observed window right:
	// the window [0,10s) becomes [0.5s,10.5s) in true time, which
	// still catches 10 ticks of 1000 bytes (ticks at 1s..10s).
	m := &EdgeMonitor{
		Clock:      simclock.New(-500*time.Millisecond, 0),
		ServerSent: srvSent, DeviceReceived: devRecv,
	}
	v := m.View(simclock.Window{Start: 0, End: 10 * time.Second}, netem.Downlink)
	if v.Sent != 10000 {
		t.Fatalf("skewed DL sent = %v, want 10000", v.Sent)
	}
	// With a larger skew (1.5s) the window [1.5s,11.5s) catches
	// ticks 2..11: still 10 ticks — but [0,10s) unskewed catches
	// ticks 0..9 (tick at 0 counts 0 bytes? tick at 0 fires at 0).
	// The essential invariant: skew changes *which* traffic is
	// counted, not how much for perfectly uniform traffic.
	m2 := &EdgeMonitor{ServerSent: srvSent, DeviceReceived: devRecv}
	v2 := m2.View(simclock.Window{Start: 0, End: 10 * time.Second}, netem.Downlink)
	if v2.Sent != 11000 { // ticks at 0..10 fall in [0,10s)? tick 10 at exactly 10s is excluded; 0..9 = 10 ticks + tick at 0 => 10 or 11
		// Accept either quantisation; just require closeness.
		if v2.Sent < 10000 || v2.Sent > 11000 {
			t.Fatalf("unskewed DL sent = %v", v2.Sent)
		}
	}
}

func TestEdgeMonitorTamper(t *testing.T) {
	s := sim.NewScheduler()
	devRecv := netem.NewMeter("dev-recv", s, nil)
	srvSent := netem.NewMeter("srv-sent", s, nil)
	fillMeter(s, devRecv, 1000, 5*time.Second)
	fillMeter(s, srvSent, 1000, 5*time.Second)
	s.RunUntil(6 * time.Second)
	m := &EdgeMonitor{ServerSent: srvSent, DeviceReceived: devRecv, TamperFactor: 0.5}
	v := m.View(simclock.Window{Start: 0, End: 5 * time.Second}, netem.Downlink)
	honest := (&EdgeMonitor{ServerSent: srvSent, DeviceReceived: devRecv}).View(
		simclock.Window{Start: 0, End: 5 * time.Second}, netem.Downlink)
	if v.Received >= honest.Received {
		t.Fatalf("tampered %v vs honest %v", v.Received, honest.Received)
	}
}

func TestOperatorMonitorUplink(t *testing.T) {
	s := sim.NewScheduler()
	srvIngress := netem.NewMeter("ingress", s, nil)
	fillMeter(s, srvIngress, 900, 10*time.Second)
	s.RunUntil(12 * time.Second)
	m := &OperatorMonitor{
		Clock: simclock.New(0, 0), IMSI: "i",
		Gateway:       fakeGateway{ulPerSec: 1000},
		ServerIngress: srvIngress,
	}
	v := m.View(simclock.Window{Start: 0, End: 10 * time.Second}, netem.Uplink)
	if v.Sent != 10000 {
		t.Fatalf("UL sent = %v", v.Sent)
	}
	if v.Received != 9000 {
		t.Fatalf("UL received = %v", v.Received)
	}
}

func TestOperatorMonitorUplinkWithoutIngressFallsBackToGateway(t *testing.T) {
	m := &OperatorMonitor{IMSI: "i", Gateway: fakeGateway{ulPerSec: 1000}}
	v := m.View(simclock.Window{Start: 0, End: 10 * time.Second}, netem.Uplink)
	if v.Received != v.Sent {
		t.Fatalf("fallback view = %+v", v)
	}
}

func TestOperatorMonitorDownlinkViaCounterChecks(t *testing.T) {
	m := &OperatorMonitor{IMSI: "i", Gateway: fakeGateway{dlPerSec: 1000}}
	// Counter checks at t=0 (DL=0) and t=10s (DL=9500): the device
	// received 9500 bytes across the cycle.
	m.OnCounterCheck(ran.CounterCheckRecord{At: 0, DL: 0})
	m.OnCounterCheck(ran.CounterCheckRecord{At: 10 * time.Second, DL: 9500})
	v := m.View(simclock.Window{Start: 0, End: 10 * time.Second}, netem.Downlink)
	if v.Sent != 10000 {
		t.Fatalf("DL sent = %v", v.Sent)
	}
	if v.Received != 9500 {
		t.Fatalf("DL received = %v, want 9500", v.Received)
	}
	if m.Checks() != 2 {
		t.Fatalf("Checks = %d", m.Checks())
	}
}

func TestOperatorMonitorDownlinkStaleCheck(t *testing.T) {
	m := &OperatorMonitor{IMSI: "i", Gateway: fakeGateway{dlPerSec: 1000}}
	// The final check happened 2s before cycle end (device went into
	// an outage): the record is stale and under-counts.
	m.OnCounterCheck(ran.CounterCheckRecord{At: 0, DL: 0})
	m.OnCounterCheck(ran.CounterCheckRecord{At: 8 * time.Second, DL: 7600})
	v := m.View(simclock.Window{Start: 0, End: 10 * time.Second}, netem.Downlink)
	if v.Received != 7600 {
		t.Fatalf("stale DL received = %v, want 7600", v.Received)
	}
}

func TestOperatorMonitorDownlinkNoChecksFallsBack(t *testing.T) {
	m := &OperatorMonitor{IMSI: "i", Gateway: fakeGateway{dlPerSec: 1000}}
	v := m.View(simclock.Window{Start: 0, End: 10 * time.Second}, netem.Downlink)
	// RRC COUNTER CHECK inactive: roll back to the gateway record.
	if v.Received != v.Sent {
		t.Fatalf("fallback DL view = %+v", v)
	}
}

func TestRecordError(t *testing.T) {
	cases := []struct{ est, truth, want float64 }{
		{100, 100, 0},
		{102, 100, 0.02},
		{98, 100, 0.02},
		{5, 0, 0},
	}
	for _, c := range cases {
		if got := RecordError(c.est, c.truth); got != c.want {
			t.Errorf("RecordError(%v,%v) = %v, want %v", c.est, c.truth, got, c.want)
		}
	}
}
