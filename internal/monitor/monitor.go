// Package monitor implements TLC's charging-record collection
// (Figure 8): how each party turns raw counters into the usage view
// it brings to the negotiation.
//
//   - Edge vendor, uplink sent: in-app/TrafficStats counter on the
//     device.
//   - Edge vendor, downlink sent: a monitor inside its edge server.
//   - Edge vendor, received volumes: its own app-level counters at
//     the receiving end.
//   - Operator, uplink: the gateway charging function (SPGW meters).
//   - Operator, downlink received: the tamper-resilient RRC COUNTER
//     CHECK procedure (§5.4), aggregated from base-station exchanges.
//
// Record errors arise exactly as in §7.2: each party integrates its
// counters over its *own clock's* view of the charging cycle, and the
// operator's downlink record is additionally quantised to the nearest
// completed COUNTER CHECK.
package monitor

import (
	"sort"
	"time"

	"tlc/internal/core"
	"tlc/internal/netem"
	"tlc/internal/ran"
	"tlc/internal/sim"
	"tlc/internal/simclock"
)

// Truth computes the ground-truth usage pair (x̂e, x̂o) for a cycle
// from the sender-side and receiver-side application meters over the
// true cycle window.
func Truth(sent, received *netem.Meter, w simclock.Window) core.View {
	return core.View{
		Sent:     sent.BytesInWindow(w.Start, w.End),
		Received: received.BytesInWindow(w.Start, w.End),
	}
}

// EdgeMonitor is the edge application vendor's record collection.
type EdgeMonitor struct {
	Clock *simclock.Clock

	// DeviceSent counts uplink bytes at the device app (x̂e for UL).
	DeviceSent *netem.Meter
	// DeviceReceived counts downlink bytes at the device app (the
	// edge's x̂o estimate for DL).
	DeviceReceived *netem.Meter
	// ServerSent counts downlink bytes at the server egress (x̂e for
	// DL).
	ServerSent *netem.Meter
	// ServerReceived counts uplink bytes arriving at the server app
	// (the edge's x̂o estimate for UL).
	ServerReceived *netem.Meter

	// TamperFactor scales the edge's *reported* values; 1 (or 0,
	// treated as 1) is honest. A selfish edge under-reports its
	// received volume with a factor < 1.
	TamperFactor float64
}

func (m *EdgeMonitor) factor() float64 {
	if m.TamperFactor <= 0 {
		return 1
	}
	return m.TamperFactor
}

// View returns the edge's negotiation view for the cycle in the given
// direction, metered over the edge clock's (possibly skewed) window.
func (m *EdgeMonitor) View(cycle simclock.Window, dir netem.Direction) core.View {
	w := cycle
	if m.Clock != nil {
		w = m.Clock.ObservedWindow(cycle)
	}
	f := m.factor()
	if dir == netem.Uplink {
		return core.View{
			Sent:     m.DeviceSent.BytesInWindow(w.Start, w.End) * f,
			Received: m.ServerReceived.BytesInWindow(w.Start, w.End) * f,
		}
	}
	return core.View{
		Sent:     m.ServerSent.BytesInWindow(w.Start, w.End) * f,
		Received: m.DeviceReceived.BytesInWindow(w.Start, w.End) * f,
	}
}

// GatewayUsage is the subset of the SPGW the operator monitor needs;
// *epc.SPGW satisfies it.
type GatewayUsage interface {
	UsageInWindow(imsi string, start, end sim.Time) (ul, dl float64)
}

// OperatorMonitor is the cellular operator's record collection.
type OperatorMonitor struct {
	Clock *simclock.Clock
	IMSI  string

	// Gateway provides the metered volumes (UL: ≈x̂e since loss
	// downstream of the gateway dominates; DL: ≈x̂e since metering
	// happens before the air interface).
	Gateway GatewayUsage

	// ServerIngress is the operator's port monitor where the edge
	// server attaches to its infrastructure; it provides the UL
	// received estimate (the edge server is co-located with the
	// core, §7's testbed).
	ServerIngress *netem.Meter

	// CheckSlack tolerates the COUNTER CHECK response latency when
	// matching a check to a cycle boundary: the operator sends the
	// check at its local boundary and the response snapshot arrives
	// one air round-trip later. Default 500ms.
	CheckSlack sim.Time

	// checks accumulates completed RRC COUNTER CHECK records.
	checks []ran.CounterCheckRecord
}

// OnCounterCheck ingests a completed COUNTER CHECK exchange; wire it
// to ran.BaseStation.OnCounterCheck.
func (m *OperatorMonitor) OnCounterCheck(rec ran.CounterCheckRecord) {
	if m.checks == nil {
		// A cycle polls every ~10s plus per-release checks; reserve
		// once so the record log appends without reallocating.
		m.checks = make([]ran.CounterCheckRecord, 0, 64)
	}
	m.checks = append(m.checks, rec)
}

// Checks returns the number of counter-check records collected.
func (m *OperatorMonitor) Checks() int { return len(m.checks) }

// modemDLAt returns the modem's cumulative downlink counter at the
// most recent COUNTER CHECK at or before t (plus the response-latency
// slack); zero if none. When the device is unreachable around a
// boundary the record goes stale — the operator-record error source
// of Figure 18.
func (m *OperatorMonitor) modemDLAt(t sim.Time) float64 {
	slack := m.CheckSlack
	if slack == 0 {
		slack = 500 * time.Millisecond
	}
	cutoff := t + slack
	i := sort.Search(len(m.checks), func(i int) bool { return m.checks[i].At > cutoff })
	if i == 0 {
		return 0
	}
	return float64(m.checks[i-1].DL)
}

// View returns the operator's negotiation view for the cycle in the
// given direction, over the operator clock's window.
func (m *OperatorMonitor) View(cycle simclock.Window, dir netem.Direction) core.View {
	w := cycle
	if m.Clock != nil {
		w = m.Clock.ObservedWindow(cycle)
	}
	ul, dl := m.Gateway.UsageInWindow(m.IMSI, w.Start, w.End)
	if dir == netem.Uplink {
		received := ul
		if m.ServerIngress != nil {
			received = m.ServerIngress.BytesInWindow(w.Start, w.End)
		}
		return core.View{Sent: ul, Received: received}
	}
	received := m.modemDLAt(w.End) - m.modemDLAt(w.Start)
	if received < 0 {
		received = 0
	}
	if len(m.checks) == 0 {
		// No counter check completed (e.g. RRC COUNTER CHECK not
		// activated): fall back to the gateway record, the §5.4
		// "roll back to the device APIs" path approximated by the
		// only operator-side record available.
		received = dl
	}
	return core.View{Sent: dl, Received: received}
}

// RecordError quantifies a record against ground truth as the paper's
// Figure 18 error ratio γ = |estimate − truth| / truth (zero when the
// truth is zero).
func RecordError(estimate, truth float64) float64 {
	if truth == 0 {
		return 0
	}
	d := estimate - truth
	if d < 0 {
		d = -d
	}
	return d / truth
}
