package sim

import (
	"testing"
	"time"
)

func TestAtPooledRunsInOrder(t *testing.T) {
	s := NewScheduler()
	var got []int
	s.AtPooled(3*time.Second, func() { got = append(got, 3) })
	s.AtPooled(1*time.Second, func() { got = append(got, 1) })
	s.At(2*time.Second, func() { got = append(got, 2) })
	s.Run()
	for i, want := range []int{1, 2, 3} {
		if got[i] != want {
			t.Fatalf("order = %v", got)
		}
	}
}

// TestAtPooledRecyclesEvents drives a self-rescheduling chain long
// enough that the free list must be serving reuses, and checks the
// recycled structs never corrupt later callbacks.
func TestAtPooledRecyclesEvents(t *testing.T) {
	s := NewScheduler()
	var fired int
	var step func()
	step = func() {
		fired++
		if fired < 1000 {
			s.AfterPooled(time.Millisecond, step)
		}
	}
	s.AfterPooled(time.Millisecond, step)
	s.Run()
	if fired != 1000 {
		t.Fatalf("fired %d chained pooled events, want 1000", fired)
	}
	if len(s.free) == 0 {
		t.Fatal("free list empty after a pooled chain: events are not being recycled")
	}
}

// TestPooledAndHandleEventsCoexist: recycling pooled events must not
// disturb Cancel on handle-carrying events scheduled around them.
func TestPooledAndHandleEventsCoexist(t *testing.T) {
	s := NewScheduler()
	var got []string
	ev := s.At(2*time.Second, func() { got = append(got, "cancelled") })
	s.AtPooled(time.Second, func() {
		got = append(got, "pooled")
		s.Cancel(ev)
	})
	s.At(3*time.Second, func() { got = append(got, "kept") })
	s.Run()
	if len(got) != 2 || got[0] != "pooled" || got[1] != "kept" {
		t.Fatalf("got %v, want [pooled kept]", got)
	}
}

func TestSeedForCellDeterministic(t *testing.T) {
	a := SeedForCell(42, 1, 2, 3)
	b := SeedForCell(42, 1, 2, 3)
	if a != b {
		t.Fatalf("SeedForCell not deterministic: %d vs %d", a, b)
	}
}

// TestSeedForCellSeparatesCoordinates: neighbouring grid cells, and
// coordinate lists that concatenate to the same digits, must land on
// distinct seeds.
func TestSeedForCellSeparatesCoordinates(t *testing.T) {
	seen := map[int64][]int{}
	add := func(seed int64, coords ...int) {
		if prev, ok := seen[seed]; ok {
			t.Fatalf("seed collision: coords %v and %v both map to %d", prev, coords, seed)
		}
		seen[seed] = coords
	}
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			add(SeedForCell(7, i, j), i, j)
		}
	}
	if SeedForCell(7, 12) == SeedForCell(7, 1, 2) {
		t.Fatal("coordinate boundaries are not separated")
	}
	if SeedForCell(7, 1) == SeedForCell(8, 1) {
		t.Fatal("base seed ignored")
	}
}
