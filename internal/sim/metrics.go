package sim

import "tlc/internal/metrics"

// Registry instruments for the event engine. The scheduler hot path
// never touches these: Step keeps counting into the scheduler's plain
// fields (fired, freeDrops) exactly as before, and PublishMetrics
// flushes the delta at run boundaries. Per-event atomic traffic would
// cost nothing in allocations but would put one contended cache line
// under every parallel sweep worker; delta-flushing keeps the hot
// path untouched and the published totals exact.
var (
	mEventsFired = metrics.Default.Counter("sim_events_fired_total",
		"simulator events executed across all published scheduler runs")
	mFreeDrops = metrics.Default.Counter("sim_free_list_drops_total",
		"pooled events discarded because the scheduler free list was at capacity")
)

// PublishMetrics flushes the scheduler's event counters into the
// process metrics registry (the delta since the previous publish, so
// calling it at every run boundary is safe and exact).
func (s *Scheduler) PublishMetrics() {
	mEventsFired.Add(s.fired - s.publishedFired)
	s.publishedFired = s.fired
	mFreeDrops.Add(s.freeDrops - s.publishedFreeDrops)
	s.publishedFreeDrops = s.freeDrops
}

// EventsFiredTotal returns the registry's cumulative count of
// executed simulator events (everything flushed by PublishMetrics).
func EventsFiredTotal() uint64 { return mEventsFired.Value() }
