// Package sim provides a deterministic discrete-event simulator.
//
// All substrates in this repository (the emulated LTE core, the radio
// access network, the workload generators) are driven by a single
// Scheduler so that a one-hour charging cycle can be replayed in
// milliseconds and every experiment is reproducible from a seed.
package sim

import (
	"fmt"
	"math/rand"
	"time"
)

// Time is simulated time, expressed as the duration since the start of
// the simulation. The zero Time is the simulation epoch.
type Time = time.Duration

// Event is a scheduled callback. Events with equal fire times run in
// the order they were scheduled (FIFO), which keeps runs deterministic.
type Event struct {
	at  Time
	seq uint64
	fn  func()

	cancelled bool

	// pooled events were scheduled through AtPooled/AfterPooled: no
	// handle escaped, so the struct returns to the scheduler's free
	// list after it fires.
	pooled bool
}

// Cancelled reports whether the event was cancelled before it fired.
func (e *Event) Cancelled() bool { return e.cancelled }

// At returns the simulated time the event is (or was) scheduled for.
func (e *Event) At() Time { return e.at }

// The event queue is a hand-specialised 4-ary min-heap over (at, seq).
// A one-hour charging cycle funnels tens of millions of events through
// it, so the heap avoids container/heap entirely: no heap.Interface
// method calls, no `any` boxing at push/pop, and the (at, seq)
// comparison is inlined into the sift loops. The heap stores value
// entries carrying the (at, seq) key next to the *Event, so sifting
// compares keys straight out of the contiguous slice instead of
// chasing an Event pointer per comparison — the 4 children of a node
// span two cache lines. A 4-ary layout halves the tree depth of a
// binary heap, trading a slightly wider min-of-children scan for half
// the sift-down levels on the pop-dominated workload.
//
// Heap order is strict: seq is unique per scheduler, so no two events
// ever compare equal and FIFO-at-equal-time falls out of the (at, seq)
// ordering exactly as it did under container/heap.

// heapEntry is one queued event with its ordering key inlined.
type heapEntry struct {
	at  Time
	seq uint64
	ev  *Event
}

// push inserts e, sifting up from the new leaf.
func (s *Scheduler) push(e heapEntry) {
	s.events = append(s.events, e)
	h := s.events
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) >> 2
		if h[p].at < e.at || (h[p].at == e.at && h[p].seq < e.seq) {
			break // parent fires first: heap property holds
		}
		h[i] = h[p]
		i = p
	}
	h[i] = e
	s.events = h
}

// pop removes and returns the earliest entry, sifting the displaced
// last leaf down from the root.
func (s *Scheduler) pop() heapEntry {
	h := s.events
	n := len(h) - 1
	root := h[0]
	last := h[n]
	h[n] = heapEntry{}
	s.events = h[:n]
	if n > 0 {
		s.siftDown(last)
	}
	return root
}

// siftDown places e starting from the (vacant) root.
func (s *Scheduler) siftDown(e heapEntry) {
	h := s.events
	n := len(h)
	i := 0
	for {
		c := i<<2 + 1 // first of up to four children
		if c >= n {
			break
		}
		m := c
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if h[j].at < h[m].at || (h[j].at == h[m].at && h[j].seq < h[m].seq) {
				m = j
			}
		}
		if e.at < h[m].at || (e.at == h[m].at && e.seq < h[m].seq) {
			break // e fires before its earliest child: done
		}
		h[i] = h[m]
		i = m
	}
	h[i] = e
}

// freeListCap bounds the pooled-event free list. A burst of in-flight
// events (a congestion spike queueing tens of thousands of deliveries)
// would otherwise pin its high-water mark in memory for the rest of
// the cycle; beyond the cap, recycled events are dropped for the GC to
// collect and counted in freeDrops.
const freeListCap = 1 << 16

// Scheduler is a discrete-event scheduler. The zero value is not ready
// for use; construct one with NewScheduler.
type Scheduler struct {
	now     Time
	events  []heapEntry // 4-ary min-heap on (at, seq); see push/pop
	seq     uint64
	stopped bool
	fired   uint64

	// free recycles Event structs for the pooled scheduling calls
	// (AtPooled/AfterPooled). A one-hour charging cycle fires tens of
	// millions of events, almost all from hot paths that never keep
	// the *Event handle; reusing their structs removes the dominant
	// allocation of the simulator. Growth is bounded by freeListCap.
	free      []*Event
	freeDrops uint64

	// publishedFired/publishedFreeDrops remember what PublishMetrics
	// already flushed to the registry, so publishes are delta-exact.
	publishedFired     uint64
	publishedFreeDrops uint64

	// TraceHook, when non-nil, observes every fired (non-cancelled)
	// event's (at, seq) key just before its callback runs. It exists
	// for the shard-vs-sequential differential tests, which hash the
	// fired-event stream of each partition; production runs leave it
	// nil and pay one predictable branch per event.
	TraceHook func(at Time, seq uint64)
}

// NewScheduler returns an empty scheduler positioned at time zero.
func NewScheduler() *Scheduler {
	return &Scheduler{}
}

// Now returns the current simulated time.
func (s *Scheduler) Now() Time { return s.now }

// Fired returns the number of events executed so far. It is useful for
// sanity checks in tests and benchmarks.
func (s *Scheduler) Fired() uint64 { return s.fired }

// Pending returns the number of events still queued (including
// cancelled events that have not yet been popped).
func (s *Scheduler) Pending() int { return len(s.events) }

// At schedules fn to run at absolute simulated time t. Scheduling in
// the past panics: it indicates a causality bug in the caller.
func (s *Scheduler) At(t Time, fn func()) *Event {
	if t < s.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", t, s.now))
	}
	//tlcvet:allow hotalloc — cancellable events need a unique handle the caller keeps; hot callers that never cancel use AtPooled
	ev := &Event{at: t, seq: s.seq, fn: fn}
	s.push(heapEntry{at: t, seq: s.seq, ev: ev})
	s.seq++
	return ev
}

// After schedules fn to run d after the current simulated time.
func (s *Scheduler) After(d time.Duration, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return s.At(s.now+d, fn)
}

// AtPooled schedules fn at absolute time t without returning a
// handle. The backing Event is drawn from and returned to a per-
// scheduler free list, so hot paths that never cancel (link
// transmissions, packet sources, tickers) schedule allocation-free.
// Use At when the caller needs Cancel.
//
//tlcvet:hotpath every packet transmission schedules through here
func (s *Scheduler) AtPooled(t Time, fn func()) {
	if t < s.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", t, s.now))
	}
	var ev *Event
	if n := len(s.free); n > 0 {
		ev = s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
		*ev = Event{at: t, seq: s.seq, fn: fn, pooled: true}
	} else {
		//tlcvet:allow hotalloc — pool miss: allocates only until the free list warms up to the burst's high-water mark
		ev = &Event{at: t, seq: s.seq, fn: fn, pooled: true}
	}
	s.push(heapEntry{at: t, seq: s.seq, ev: ev})
	s.seq++
}

// AfterPooled schedules fn to run d after now, without a handle; see
// AtPooled.
//
//tlcvet:hotpath relative-time twin of AtPooled
func (s *Scheduler) AfterPooled(d time.Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	s.AtPooled(s.now+d, fn)
}

// recycle returns a pooled event to the free list after it has been
// popped from the heap, unless the list already sits at freeListCap.
func (s *Scheduler) recycle(ev *Event) {
	if !ev.pooled {
		return
	}
	ev.fn = nil // release the closure
	if len(s.free) >= freeListCap {
		s.freeDrops++
		return
	}
	s.free = append(s.free, ev)
}

// FreeDrops returns the number of pooled events discarded because the
// free list was at capacity; a non-zero value just means a burst's
// high-water mark was released to the GC instead of being pinned.
func (s *Scheduler) FreeDrops() uint64 { return s.freeDrops }

// Cancel prevents a scheduled event from firing. Cancelling an event
// that already fired (or was already cancelled) is a no-op.
// Cancellation is lazy: the event stays queued and is discarded when
// it reaches the heap root.
func (s *Scheduler) Cancel(ev *Event) {
	if ev != nil {
		ev.cancelled = true
	}
}

// Step executes the single next event. It reports false when no
// runnable events remain.
//
//tlcvet:hotpath the event loop's inner dispatch; runs once per event
func (s *Scheduler) Step() bool {
	for len(s.events) > 0 {
		e := s.pop()
		ev := e.ev
		if ev.cancelled {
			s.recycle(ev)
			continue
		}
		s.now = e.at
		s.fired++
		if s.TraceHook != nil {
			s.TraceHook(e.at, e.seq)
		}
		fn := ev.fn
		s.recycle(ev)
		fn()
		return true
	}
	return false
}

// Run executes events until the queue drains or Stop is called.
func (s *Scheduler) Run() {
	s.stopped = false
	for !s.stopped && s.Step() {
	}
}

// RunUntil executes events with fire time <= deadline, then advances
// the clock to the deadline. Events scheduled beyond the deadline stay
// queued.
func (s *Scheduler) RunUntil(deadline Time) {
	s.stopped = false
	for !s.stopped {
		if len(s.events) == 0 {
			break
		}
		// Peek: the heap root is the earliest event.
		next := s.events[0]
		if next.ev.cancelled {
			s.recycle(s.pop().ev)
			continue
		}
		if next.at > deadline {
			break
		}
		s.Step()
	}
	if s.now < deadline {
		s.now = deadline
	}
}

// Stop makes Run/RunUntil return after the current event completes.
func (s *Scheduler) Stop() { s.stopped = true }

// Ticker invokes fn every interval starting at start until the
// scheduler drains or the returned stop function is called.
func (s *Scheduler) Ticker(start Time, interval time.Duration, fn func(now Time)) (stop func()) {
	if interval <= 0 {
		panic("sim: non-positive ticker interval")
	}
	stopped := false
	var tick func()
	next := start
	tick = func() {
		if stopped {
			return
		}
		fn(s.now)
		next += interval
		s.AtPooled(next, tick)
	}
	s.AtPooled(start, tick)
	return func() { stopped = true }
}

// RNG is a deterministic random source for simulation components.
// Each component should derive its own stream with Fork so that adding
// randomness in one module does not perturb another.
type RNG struct {
	r *rand.Rand
}

// NewRNG returns a deterministic generator for the given seed.
func NewRNG(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(seed))}
}

// SeedForCell derives a deterministic RNG seed for one cell of an
// experiment sweep from the sweep's base seed and the cell's grid
// coordinates. The derivation is a pure function of (base, coords) —
// never of execution order — so a sweep fanned out across worker
// goroutines draws exactly the random streams the sequential run
// draws, and its output stays byte-identical at any worker count.
// This is the sanctioned way to mint per-cell seeds (the seededrand
// check points here); feed the result to NewRNG or Config.Seed.
func SeedForCell(base int64, coords ...int) int64 {
	// FNV-1a over the base seed and each coordinate, mirroring
	// RNG.Fork's label hashing.
	const (
		offset = 1469598103934665603
		prime  = 1099511628211
	)
	h := uint64(offset)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime
			v >>= 8
		}
	}
	mix(uint64(base))
	for _, c := range coords {
		mix(uint64(int64(c)))
	}
	return int64(h)
}

// Fork derives an independent deterministic stream labelled by name.
func (g *RNG) Fork(name string) *RNG {
	var h uint64 = 1469598103934665603 // FNV-1a offset basis
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return NewRNG(int64(h) ^ g.r.Int63())
}

// Float64 returns a uniform value in [0,1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Bernoulli reports a coin flip with success probability p. The
// degenerate cases p <= 0 and p >= 1 consume no draw, so disabling a
// probabilistic feature leaves the stream — and everything seeded
// downstream of it — untouched.
func (g *RNG) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return g.r.Float64() < p
}

// Intn returns a uniform value in [0,n).
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Int63 returns a non-negative pseudo-random 63-bit integer.
func (g *RNG) Int63() int64 { return g.r.Int63() }

// Uniform returns a uniform value in [lo,hi).
func (g *RNG) Uniform(lo, hi float64) float64 {
	if hi <= lo {
		return lo
	}
	return lo + (hi-lo)*g.r.Float64()
}

// Exp returns an exponentially distributed duration with the given
// mean. It is used for outage inter-arrival and duration processes.
func (g *RNG) Exp(mean time.Duration) time.Duration {
	if mean <= 0 {
		return 0
	}
	return time.Duration(g.r.ExpFloat64() * float64(mean))
}

// Norm returns a normally distributed value.
func (g *RNG) Norm(mean, stddev float64) float64 {
	return mean + stddev*g.r.NormFloat64()
}

// Perm returns a pseudo-random permutation of [0,n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// Bytes fills b with pseudo-random bytes and never fails. It lets the
// simulator drive crypto key generation deterministically.
func (g *RNG) Bytes(b []byte) {
	_, _ = g.r.Read(b) // rand.Rand.Read is documented to always succeed
}

// Read implements io.Reader so an RNG can be passed to crypto key
// generation for reproducible (test-only) keys.
func (g *RNG) Read(b []byte) (int, error) {
	_, _ = g.r.Read(b) // rand.Rand.Read is documented to always succeed
	return len(b), nil
}
