//go:build !race

package sim

// raceEnabled: see raceon_test.go.
const raceEnabled = false
