// Sharded execution of one simulation across cores.
//
// A ShardGroup partitions a single simulation into independent
// partitions ("shards"), each with its own Scheduler — its own 4-ary
// heap, free list and event sequence — and runs them under a
// conservative time-windowed barrier. The only communication between
// partitions is through Exchangers (time-windowed lanes, see
// internal/netem's Lane/Inbox), whose messages carry a delivery time
// at least one lookahead in the future. That makes every window
// [kL, (k+1)L] causally closed: no event executed inside a window can
// schedule work for another partition inside the same window, so
// partitions advance a window in parallel with no locks and no
// rollback, and the barrier between windows flushes the lanes
// single-threaded in registration order.
//
// Determinism: a partition's event stream is a pure function of its
// own initial state plus the merged lane traffic it receives, and the
// lane merge is ordered by the (at, seq) key — arrival time, then the
// source-fixed tiebreak each Exchanger documents — never by goroutine
// timing. How partitions are assigned to worker goroutines therefore
// cannot change any partition's (at, seq) event order, so a run is
// byte-identical at any worker count: 0 workers is the plain
// sequential engine (the golden path, no goroutines at all), and any
// W >= 1 statically assigns partitions round-robin to W workers.
package sim

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Exchanger moves messages between partitions at window barriers.
// Flush is called once per window, single-threaded, after every
// partition has executed the window ending at limit; every message it
// delivers must be scheduled strictly after limit (one lookahead of
// slack guarantees this — see ShardGroup.AddExchanger). Exchangers
// are flushed in registration order, which is part of the
// deterministic merge key for equal-time deliveries.
type Exchanger interface {
	// MinDelay is the smallest latency the exchanger ever adds to a
	// message; AddExchanger rejects exchangers faster than the
	// group's lookahead.
	MinDelay() time.Duration
	// Flush delivers everything buffered during the window that ended
	// at limit into the destination partitions' schedulers.
	Flush(limit Time)
}

// Shard is one partition of a sharded simulation.
type Shard struct {
	// ID is the partition index, fixed at construction.
	ID int
	// Sched is the partition's private scheduler. Everything the
	// partition simulates must run on it; cross-partition effects go
	// through an Exchanger.
	Sched *Scheduler
}

// WorkerStat reports one shard worker's share of a run: the events
// its partitions fired and the wall-clock time it spent stalled at
// window barriers waiting for slower workers (zero unless the group
// has a Stopwatch). The sequential path reports a single worker with
// zero stall.
type WorkerStat struct {
	Worker      int
	Partitions  int
	EventsFired uint64
	Stall       time.Duration
}

// ShardGroup owns the partitions and the barrier that runs them.
type ShardGroup struct {
	lookahead  time.Duration
	shards     []*Shard
	exchangers []Exchanger

	// Stopwatch, when non-nil, supplies the wall-clock probe used for
	// per-worker stall accounting (one instance per worker). It is
	// injected rather than read from time.Now so simulation packages
	// stay wall-clock-free and tests stay deterministic; stall times
	// are diagnostics and never feed back into simulated state.
	Stopwatch func() func() time.Duration

	stop atomic.Bool
}

// NewShardGroup returns a group of n partitions with the given
// lookahead (the barrier window length). Lookahead must be positive
// and no larger than the smallest cross-partition latency; every
// Exchanger added later is checked against it.
func NewShardGroup(n int, lookahead time.Duration) *ShardGroup {
	if n <= 0 {
		panic(fmt.Sprintf("sim: shard group needs at least one partition, got %d", n))
	}
	if lookahead <= 0 {
		panic(fmt.Sprintf("sim: non-positive shard lookahead %v", lookahead))
	}
	g := &ShardGroup{lookahead: lookahead}
	g.shards = make([]*Shard, n)
	for i := range g.shards {
		g.shards[i] = &Shard{ID: i, Sched: NewScheduler()}
	}
	return g
}

// Lookahead returns the barrier window length.
func (g *ShardGroup) Lookahead() time.Duration { return g.lookahead }

// Partitions returns the number of partitions.
func (g *ShardGroup) Partitions() int { return len(g.shards) }

// Shard returns partition i.
func (g *ShardGroup) Shard(i int) *Shard { return g.shards[i] }

// AddExchanger registers a cross-partition message conduit, flushed
// at every barrier in registration order. It panics if the exchanger
// can deliver faster than the group's lookahead, which would let a
// message land inside the window being executed.
func (g *ShardGroup) AddExchanger(e Exchanger) {
	if d := e.MinDelay(); d < g.lookahead {
		panic(fmt.Sprintf("sim: exchanger min delay %v below shard lookahead %v", d, g.lookahead))
	}
	g.exchangers = append(g.exchangers, e)
}

// Stop makes RunUntil return at the next window barrier. It is safe
// to call from an event callback inside any partition (that is its
// purpose: a scenario that finishes early stops the whole group).
func (g *ShardGroup) Stop() { g.stop.Store(true) }

// RunUntil executes every partition up to deadline under the windowed
// barrier, using the given number of worker goroutines: 0 runs
// sequentially on the caller's goroutine (the golden path), W >= 1
// statically assigns partitions round-robin to W persistent workers.
// It returns per-worker statistics ordered by worker index.
//
// Requesting more workers than partitions is an error, not a clamp: a
// silent clamp would report speedups for shard counts that were never
// actually run. A panic inside any partition is re-raised on the
// caller's goroutine after all workers have parked — the panic of the
// lowest-numbered panicking partition, so even failures are
// deterministic — and no worker goroutine outlives the call.
func (g *ShardGroup) RunUntil(deadline Time, workers int) ([]WorkerStat, error) {
	if workers < 0 {
		return nil, fmt.Errorf("sim: negative shard worker count %d", workers)
	}
	if workers > len(g.shards) {
		return nil, fmt.Errorf("sim: %d shard workers exceed %d partitions", workers, len(g.shards))
	}
	g.stop.Store(false)
	if workers == 0 {
		g.runSequential(deadline)
		total := uint64(0)
		for _, sh := range g.shards {
			total += sh.Sched.Fired()
		}
		return []WorkerStat{{Worker: 0, Partitions: len(g.shards), EventsFired: total}}, nil
	}
	return g.runParallel(deadline, workers), nil
}

// runSequential is the golden path: the same window/flush schedule as
// the parallel runner, executed inline with no goroutines. Panics
// propagate naturally and the loop allocates nothing.
//
//tlcvet:hotpath the sequential shard inner loop; one iteration per window per partition
func (g *ShardGroup) runSequential(deadline Time) {
	for end := g.firstWindow(deadline); ; {
		for _, sh := range g.shards {
			sh.Sched.RunUntil(end)
		}
		for _, e := range g.exchangers {
			e.Flush(end)
		}
		if g.stop.Load() || end >= deadline {
			return
		}
		end = g.nextWindow(end, deadline)
	}
}

func (g *ShardGroup) firstWindow(deadline Time) Time {
	end := Time(g.lookahead)
	if end > deadline {
		end = deadline
	}
	return end
}

func (g *ShardGroup) nextWindow(end, deadline Time) Time {
	end += Time(g.lookahead)
	if end > deadline {
		end = deadline
	}
	return end
}

// runParallel drives W persistent workers through the window/barrier
// schedule. Workers never touch each other's partitions; the
// coordinator (the calling goroutine) owns the barrier and the
// exchanger flushes.
func (g *ShardGroup) runParallel(deadline Time, workers int) []WorkerStat {
	type shardWorker struct {
		work  chan Time
		mine  []*Shard
		stall time.Duration
	}
	ws := make([]*shardWorker, workers)
	for w := range ws {
		ws[w] = &shardWorker{work: make(chan Time, 1)}
	}
	for i, sh := range g.shards {
		w := ws[i%workers]
		w.mine = append(w.mine, sh)
	}

	// panics[i] records the panic raised inside partition i's window,
	// if any; workers write only their own partitions' slots and the
	// coordinator reads them after the barrier, so the WaitGroup
	// provides the ordering.
	panics := make([]any, len(g.shards))
	var window sync.WaitGroup
	var lives sync.WaitGroup

	for w, sw := range ws {
		lives.Add(1)
		// Start the stopwatch here, on the coordinator, not inside the
		// worker: Stopwatch implementations may keep unsynchronized
		// state across starts (the deterministic test fake does), so
		// starts are serialized in worker-index order. Each returned
		// elapsed func is then used by exactly one goroutine.
		var elapsed func() time.Duration
		if g.Stopwatch != nil {
			elapsed = g.Stopwatch()
		}
		go func(w int, sw *shardWorker, elapsed func() time.Duration) {
			defer lives.Done()
			var idleSince time.Duration
			idle := false
			for end := range sw.work {
				if elapsed != nil && idle {
					sw.stall += elapsed() - idleSince
				}
				g.runWorkerWindow(sw.mine, end, panics)
				if elapsed != nil {
					idleSince = elapsed()
					idle = true
				}
				window.Done()
			}
		}(w, sw, elapsed)
	}

	failed := false
	for end := g.firstWindow(deadline); ; {
		window.Add(workers)
		for _, sw := range ws {
			sw.work <- end
		}
		window.Wait()
		for _, p := range panics {
			if p != nil {
				failed = true
			}
		}
		if failed {
			break
		}
		for _, e := range g.exchangers {
			e.Flush(end)
		}
		if g.stop.Load() || end >= deadline {
			break
		}
		end = g.nextWindow(end, deadline)
	}
	for _, sw := range ws {
		close(sw.work)
	}
	lives.Wait()

	for i, p := range panics {
		if p != nil {
			panic(fmt.Sprintf("sim: shard partition %d panicked: %v", i, p))
		}
	}
	stats := make([]WorkerStat, workers)
	for w, sw := range ws {
		st := WorkerStat{Worker: w, Partitions: len(sw.mine), Stall: sw.stall}
		for _, sh := range sw.mine {
			st.EventsFired += sh.Sched.Fired()
		}
		stats[w] = st
	}
	return stats
}

// runWorkerWindow advances one worker's partitions through a window,
// containing any partition panic so the group can drain its workers
// and re-raise deterministically.
//
//tlcvet:hotpath the parallel shard inner loop; one iteration per window per worker
func (g *ShardGroup) runWorkerWindow(mine []*Shard, end Time, panics []any) {
	cur := -1
	//tlcvet:allow hotalloc — one recover frame per worker window, not per event; panic containment is what makes shard failures deterministic
	defer func() {
		if r := recover(); r != nil && cur >= 0 {
			panics[cur] = r
		}
	}()
	for _, sh := range mine {
		cur = sh.ID
		sh.Sched.RunUntil(end)
	}
	cur = -1
}
