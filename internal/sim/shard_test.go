package sim

import (
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"
)

// testExchanger is a minimal cross-partition conduit: integers sent
// from any partition are delivered to a destination partition's
// scheduler after a fixed delay, merged by (at, source, send order)
// like the real netem lanes.
type testExchanger struct {
	group *ShardGroup
	delay time.Duration
	bufs  [][]testMsg
	heads []int
	// recv[i] records the values partition i received, in delivery
	// order (appended by the destination scheduler's events).
	recv [][]int
}

type testMsg struct {
	at   Time
	dest int
	val  int
}

func newTestExchanger(g *ShardGroup, delay time.Duration) *testExchanger {
	e := &testExchanger{
		group: g,
		delay: delay,
		bufs:  make([][]testMsg, g.Partitions()),
		heads: make([]int, g.Partitions()),
		recv:  make([][]int, g.Partitions()),
	}
	g.AddExchanger(e)
	return e
}

func (e *testExchanger) send(src, dest, val int) {
	at := e.group.Shard(src).Sched.Now() + Time(e.delay)
	e.bufs[src] = append(e.bufs[src], testMsg{at: at, dest: dest, val: val})
}

func (e *testExchanger) MinDelay() time.Duration { return e.delay }

func (e *testExchanger) Flush(limit Time) {
	for {
		best := -1
		var bestAt Time
		for src := range e.bufs {
			h := e.heads[src]
			if h >= len(e.bufs[src]) {
				continue
			}
			if best < 0 || e.bufs[src][h].at < bestAt {
				best, bestAt = src, e.bufs[src][h].at
			}
		}
		if best < 0 {
			break
		}
		m := e.bufs[best][e.heads[best]]
		e.heads[best]++
		if m.at <= limit {
			panic("testExchanger: barrier violation")
		}
		dest := m.dest
		val := m.val
		e.group.Shard(dest).Sched.At(m.at, func() {
			e.recv[dest] = append(e.recv[dest], val)
		})
	}
	for src := range e.bufs {
		e.bufs[src] = e.bufs[src][:0]
		e.heads[src] = 0
	}
}

// buildPingRing wires n partitions where each partition ticks on its
// own scheduler, mixes its RNG into a running hash, and periodically
// sends values to the next partition over the exchanger. It returns
// per-partition trace hashes updated by a TraceHook.
func buildPingRing(n int, lookahead time.Duration, seed int64) (*ShardGroup, *testExchanger, []uint64) {
	g := NewShardGroup(n, lookahead)
	ex := newTestExchanger(g, lookahead)
	traces := make([]uint64, n)
	for i := 0; i < n; i++ {
		i := i
		sh := g.Shard(i)
		rng := NewRNG(SeedForCell(seed, i))
		traces[i] = 14695981039346656037
		sh.Sched.TraceHook = func(at Time, seq uint64) {
			h := traces[i]
			for _, v := range [2]uint64{uint64(at), seq} {
				for b := 0; b < 8; b++ {
					h ^= v & 0xff
					h *= 1099511628211
					v >>= 8
				}
			}
			traces[i] = h
		}
		var tick func()
		ticks := 0
		tick = func() {
			ticks++
			if ticks%3 == 0 {
				ex.send(i, (i+1)%n, i*1000+ticks)
			}
			sh.Sched.AfterPooled(time.Duration(1+rng.Intn(5))*time.Millisecond, tick)
		}
		sh.Sched.AfterPooled(time.Duration(1+rng.Intn(5))*time.Millisecond, tick)
	}
	return g, ex, traces
}

// TestShardParityRingAcrossWorkerCounts runs the same ping ring at
// every worker count from sequential to one-per-partition and asserts
// the fired-event traces, event counts and received message streams
// are identical — the tentpole determinism invariant at sim level.
func TestShardParityRingAcrossWorkerCounts(t *testing.T) {
	const n = 4
	lookahead := 10 * time.Millisecond
	run := func(workers int) ([]uint64, []uint64, [][]int) {
		g, ex, traces := buildPingRing(n, lookahead, 42)
		if _, err := g.RunUntil(Time(300*time.Millisecond), workers); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		fired := make([]uint64, n)
		for i := 0; i < n; i++ {
			fired[i] = g.Shard(i).Sched.Fired()
		}
		return traces, fired, ex.recv
	}
	baseTraces, baseFired, baseRecv := run(0)
	for _, w := range []int{1, 2, 3, 4} {
		traces, fired, recv := run(w)
		for i := 0; i < n; i++ {
			if traces[i] != baseTraces[i] {
				t.Errorf("workers=%d: partition %d trace %#x != sequential %#x", w, i, traces[i], baseTraces[i])
			}
			if fired[i] != baseFired[i] {
				t.Errorf("workers=%d: partition %d fired %d != sequential %d", w, i, fired[i], baseFired[i])
			}
			if fmt.Sprint(recv[i]) != fmt.Sprint(baseRecv[i]) {
				t.Errorf("workers=%d: partition %d recv %v != sequential %v", w, i, recv[i], baseRecv[i])
			}
		}
	}
}

// TestShardGroupRejectsTooManyWorkers pins the no-silent-clamp rule:
// more workers than partitions is an error naming both counts, and a
// negative count is an error too.
func TestShardGroupRejectsTooManyWorkers(t *testing.T) {
	g := NewShardGroup(2, time.Millisecond)
	if _, err := g.RunUntil(Time(time.Second), 3); err == nil {
		t.Fatal("3 workers on 2 partitions: want error, got nil")
	} else if !strings.Contains(err.Error(), "3 shard workers exceed 2 partitions") {
		t.Fatalf("error %q does not name the counts", err)
	}
	if _, err := g.RunUntil(Time(time.Second), -1); err == nil {
		t.Fatal("negative workers: want error, got nil")
	}
}

// TestShardGroupRejectsFastExchanger pins the lookahead safety check:
// an exchanger that can deliver inside the execution window would
// break the conservative barrier, so AddExchanger must refuse it.
func TestShardGroupRejectsFastExchanger(t *testing.T) {
	g := NewShardGroup(2, 10*time.Millisecond)
	defer func() {
		if recover() == nil {
			t.Fatal("AddExchanger accepted an exchanger faster than the lookahead")
		}
	}()
	newTestExchanger(g, 5*time.Millisecond)
}

// stableGoroutines samples the goroutine count until it settles,
// tolerating runtime background goroutines that are mid-exit.
func stableGoroutines(t *testing.T) int {
	t.Helper()
	n := runtime.NumGoroutine()
	for i := 0; i < 50; i++ {
		time.Sleep(2 * time.Millisecond) //tlcvet:allow simtime — counting real goroutines parking; wall clock is the only clock they run on
		m := runtime.NumGoroutine()
		if m == n {
			return n
		}
		n = m
	}
	return n
}

// TestShardGroupPanicIsDeterministicAndLeakFree makes two partitions
// panic in the same window and asserts (a) the re-raised panic names
// the lowest-numbered partition regardless of worker scheduling, and
// (b) every worker goroutine has parked by the time RunUntil unwinds.
func TestShardGroupPanicIsDeterministicAndLeakFree(t *testing.T) {
	for _, workers := range []int{1, 2, 4} {
		before := stableGoroutines(t)
		g := NewShardGroup(4, 10*time.Millisecond)
		for _, i := range []int{1, 3} {
			i := i
			g.Shard(i).Sched.At(Time(25*time.Millisecond), func() {
				panic(fmt.Sprintf("boom-%d", i))
			})
		}
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("workers=%d: no panic propagated", workers)
				}
				msg := fmt.Sprint(r)
				if !strings.Contains(msg, "partition 1") || !strings.Contains(msg, "boom-1") {
					t.Fatalf("workers=%d: panic %q should name partition 1's boom-1", workers, msg)
				}
			}()
			_, _ = g.RunUntil(Time(time.Second), workers)
		}()
		after := stableGoroutines(t)
		if after > before {
			t.Fatalf("workers=%d: %d goroutines before, %d after panic unwind", workers, before, after)
		}
	}
}

// TestShardGroupStopExitsEarlyWithoutLeaks stops the group from
// inside a partition event and asserts RunUntil returns at that
// window's barrier with no worker goroutines left behind.
func TestShardGroupStopExitsEarlyWithoutLeaks(t *testing.T) {
	for _, workers := range []int{0, 2} {
		before := stableGoroutines(t)
		g := NewShardGroup(3, 10*time.Millisecond)
		g.Shard(1).Sched.At(Time(15*time.Millisecond), func() { g.Stop() })
		late := false
		g.Shard(2).Sched.At(Time(500*time.Millisecond), func() { late = true })
		stats, err := g.RunUntil(Time(time.Second), workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if late {
			t.Fatalf("workers=%d: event after Stop window still fired", workers)
		}
		total := uint64(0)
		for _, st := range stats {
			total += st.EventsFired
		}
		if total != 1 {
			t.Fatalf("workers=%d: fired %d events, want 1 (the stopper)", workers, total)
		}
		if after := stableGoroutines(t); after > before {
			t.Fatalf("workers=%d: %d goroutines before, %d after early stop", workers, before, after)
		}
	}
}

// TestShardGroupSequentialZeroAllocWindows extends the PR 3 zero-alloc
// guard to the sharded golden path: once the schedulers are warm, a
// whole window cycle — partition loops plus exchanger flush — must
// allocate nothing beyond RunUntil's one stats slice.
func TestShardGroupSequentialZeroAllocWindows(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are perturbed by -race instrumentation")
	}
	g := NewShardGroup(2, time.Millisecond)
	for i := 0; i < 2; i++ {
		sh := g.Shard(i)
		var tick func()
		tick = func() { sh.Sched.AfterPooled(100*time.Microsecond, tick) }
		sh.Sched.AfterPooled(100*time.Microsecond, tick)
	}
	deadline := Time(10 * time.Millisecond)
	if _, err := g.RunUntil(deadline, 0); err != nil { // warm free lists and heaps
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(50, func() {
		deadline += Time(time.Millisecond)
		if _, err := g.RunUntil(deadline, 0); err != nil {
			t.Fatal(err)
		}
	})
	// One allocation per call: the []WorkerStat RunUntil returns.
	if avg > 1 {
		t.Fatalf("sequential shard window allocates %v per run, want <= 1 (the stats slice)", avg)
	}
}

// TestShardGroupParallelZeroAllocSteadyWindows guards the multi-shard hot
// path: the per-call cost of a parallel run is worker setup (fixed),
// not per-event or per-window allocation, so tripling the simulated
// time must not move the allocation count.
func TestShardGroupParallelZeroAllocSteadyWindows(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are perturbed by -race instrumentation")
	}
	build := func() *ShardGroup {
		g := NewShardGroup(2, time.Millisecond)
		for i := 0; i < 2; i++ {
			sh := g.Shard(i)
			var tick func()
			tick = func() { sh.Sched.AfterPooled(50*time.Microsecond, tick) }
			sh.Sched.AfterPooled(50*time.Microsecond, tick)
		}
		// Warm sequentially so the measured runs reuse free lists.
		if _, err := g.RunUntil(Time(5*time.Millisecond), 0); err != nil {
			t.Fatal(err)
		}
		return g
	}
	measure := func(extra Time) float64 {
		g := build()
		deadline := Time(5 * time.Millisecond)
		return testing.AllocsPerRun(20, func() {
			deadline += extra
			if _, err := g.RunUntil(deadline, 2); err != nil {
				t.Fatal(err)
			}
		})
	}
	short := measure(Time(2 * time.Millisecond)) // 2 windows per call
	long := measure(Time(20 * time.Millisecond)) // 20 windows per call
	// 10x the windows (and events) may not add allocations: headroom
	// of a few covers AllocsPerRun noise, nothing more.
	if long > short+3 {
		t.Fatalf("parallel shard path allocates per window: %v allocs at 2 windows, %v at 20", short, long)
	}
}
