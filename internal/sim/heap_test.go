package sim

import (
	"sort"
	"testing"
	"time"
)

// TestHeapMatchesReferenceOrder drives the 4-ary heap with a
// randomized schedule — duplicate fire times, interleaved pushes and
// pops, cancellations — and checks the execution order against a
// reference model sorted by (at, seq).
func TestHeapMatchesReferenceOrder(t *testing.T) {
	rng := NewRNG(20260805)
	for trial := 0; trial < 50; trial++ {
		s := NewScheduler()
		type ref struct {
			at  Time
			seq int
		}
		var want []ref
		var got []int
		n := 1 + rng.Intn(300)
		for i := 0; i < n; i++ {
			// Few distinct times so equal-time FIFO is exercised hard.
			at := Time(rng.Intn(16)) * time.Millisecond
			i := i
			if rng.Intn(4) == 0 {
				s.AtPooled(at, func() { got = append(got, i) })
			} else {
				ev := s.At(at, func() { got = append(got, i) })
				if rng.Intn(5) == 0 {
					s.Cancel(ev)
					continue // not in the reference
				}
			}
			want = append(want, ref{at: at, seq: i})
		}
		sort.SliceStable(want, func(a, b int) bool { return want[a].at < want[b].at })
		s.Run()
		if len(got) != len(want) {
			t.Fatalf("trial %d: fired %d events, want %d", trial, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i].seq {
				t.Fatalf("trial %d: position %d fired event %d, reference says %d",
					trial, i, got[i], want[i].seq)
			}
		}
	}
}

// TestHeapInterleavedPushPop alternates scheduling and stepping so
// sift-down runs against a constantly reshaped heap, with the clock
// checked to be non-decreasing throughout.
func TestHeapInterleavedPushPop(t *testing.T) {
	s := NewScheduler()
	rng := NewRNG(7)
	fired := 0
	var last Time
	for i := 0; i < 2000; i++ {
		d := time.Duration(rng.Intn(1000)) * time.Microsecond
		s.AfterPooled(d, func() {
			if s.Now() < last {
				t.Fatalf("time went backwards: %v after %v", s.Now(), last)
			}
			last = s.Now()
			fired++
		})
		if i%3 == 0 {
			s.Step()
		}
	}
	s.Run()
	if fired != 2000 {
		t.Fatalf("fired %d, want 2000", fired)
	}
}

// TestRunUntilCancelledAtRoot cancels the earliest queued events — the
// heap root RunUntil peeks at — and checks the peek loop discards and
// recycles them without firing or stalling.
func TestRunUntilCancelledAtRoot(t *testing.T) {
	s := NewScheduler()
	var got []int
	var cancelled []*Event
	// The three earliest events all sit at the root region and get
	// cancelled; one of them is beyond the deadline too.
	for i, at := range []time.Duration{1, 2, 3} {
		i := i
		cancelled = append(cancelled, s.At(at*time.Millisecond, func() { got = append(got, -i) }))
	}
	s.At(5*time.Millisecond, func() { got = append(got, 5) })
	s.At(7*time.Millisecond, func() { got = append(got, 7) })
	for _, ev := range cancelled {
		s.Cancel(ev)
	}
	s.RunUntil(6 * time.Millisecond)
	if len(got) != 1 || got[0] != 5 {
		t.Fatalf("got %v, want [5]", got)
	}
	if s.Now() != 6*time.Millisecond {
		t.Fatalf("Now = %v, want 6ms", s.Now())
	}
	if s.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1 (the 7ms event)", s.Pending())
	}
	if s.Fired() != 1 {
		t.Fatalf("Fired = %d, want 1 (cancelled events must not count)", s.Fired())
	}
}

// TestFreeListCap floods the scheduler with more simultaneously
// in-flight pooled events than freeListCap and checks the free list
// stays bounded, the overflow is counted, and scheduling still works.
func TestFreeListCap(t *testing.T) {
	s := NewScheduler()
	n := freeListCap + 1000
	fired := 0
	for i := 0; i < n; i++ {
		s.AtPooled(time.Millisecond, func() { fired++ })
	}
	s.Run()
	if fired != n {
		t.Fatalf("fired %d, want %d", fired, n)
	}
	if len(s.free) != freeListCap {
		t.Fatalf("free list len %d, want capped at %d", len(s.free), freeListCap)
	}
	if s.FreeDrops() != 1000 {
		t.Fatalf("FreeDrops = %d, want 1000", s.FreeDrops())
	}
	// The capped scheduler keeps recycling normally.
	s.AfterPooled(time.Millisecond, func() { fired++ })
	s.Run()
	if fired != n+1 || len(s.free) != freeListCap {
		t.Fatalf("post-cap scheduling broken: fired %d, free %d", fired, len(s.free))
	}
}

// TestAtPooledZeroAllocSteadyState asserts the pooled scheduling path
// allocates nothing once the free list and heap are warm.
func TestAtPooledZeroAllocSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are perturbed by -race instrumentation")
	}
	s := NewScheduler()
	fn := func() {}
	for i := 0; i < 256; i++ { // warm the heap slice and free list
		s.AfterPooled(time.Duration(i)*time.Microsecond, fn)
	}
	s.Run()
	avg := testing.AllocsPerRun(200, func() {
		s.AfterPooled(time.Microsecond, fn)
		s.Step()
	})
	if avg != 0 {
		t.Fatalf("AtPooled steady state allocates %v per op, want 0", avg)
	}
}
