package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestSchedulerRunsInTimeOrder(t *testing.T) {
	s := NewScheduler()
	var got []int
	s.At(3*time.Second, func() { got = append(got, 3) })
	s.At(1*time.Second, func() { got = append(got, 1) })
	s.At(2*time.Second, func() { got = append(got, 2) })
	s.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if s.Now() != 3*time.Second {
		t.Fatalf("Now = %v, want 3s", s.Now())
	}
}

func TestSchedulerFIFOAtSameTime(t *testing.T) {
	s := NewScheduler()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(time.Second, func() { got = append(got, i) })
	}
	s.Run()
	for i := 0; i < 10; i++ {
		if got[i] != i {
			t.Fatalf("same-time events not FIFO: %v", got)
		}
	}
}

func TestSchedulerAfterIsRelative(t *testing.T) {
	s := NewScheduler()
	var fired Time
	s.At(5*time.Second, func() {
		s.After(2*time.Second, func() { fired = s.Now() })
	})
	s.Run()
	if fired != 7*time.Second {
		t.Fatalf("After fired at %v, want 7s", fired)
	}
}

func TestSchedulerPastSchedulingPanics(t *testing.T) {
	s := NewScheduler()
	s.At(time.Second, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		s.At(0, func() {})
	})
	s.Run()
}

func TestSchedulerNegativeAfterClampsToNow(t *testing.T) {
	s := NewScheduler()
	ran := false
	s.At(time.Second, func() {
		s.After(-5*time.Second, func() { ran = true })
	})
	s.Run()
	if !ran {
		t.Fatal("negative After never ran")
	}
}

func TestSchedulerCancel(t *testing.T) {
	s := NewScheduler()
	ran := false
	ev := s.At(time.Second, func() { ran = true })
	s.Cancel(ev)
	s.Run()
	if ran {
		t.Fatal("cancelled event ran")
	}
	if !ev.Cancelled() {
		t.Fatal("event not marked cancelled")
	}
	// Cancelling again, or cancelling nil, must not panic.
	s.Cancel(ev)
	s.Cancel(nil)
}

func TestSchedulerRunUntil(t *testing.T) {
	s := NewScheduler()
	var got []Time
	for _, d := range []time.Duration{1, 2, 3, 4, 5} {
		d := d * time.Second
		s.At(d, func() { got = append(got, d) })
	}
	s.RunUntil(3 * time.Second)
	if len(got) != 3 {
		t.Fatalf("ran %d events, want 3", len(got))
	}
	if s.Now() != 3*time.Second {
		t.Fatalf("Now = %v, want 3s", s.Now())
	}
	if s.Pending() != 2 {
		t.Fatalf("Pending = %d, want 2", s.Pending())
	}
	// RunUntil advances the clock even with an empty relevant window.
	s.RunUntil(3500 * time.Millisecond)
	if s.Now() != 3500*time.Millisecond {
		t.Fatalf("Now = %v, want 3.5s", s.Now())
	}
}

func TestSchedulerStop(t *testing.T) {
	s := NewScheduler()
	count := 0
	for i := 1; i <= 5; i++ {
		s.At(time.Duration(i)*time.Second, func() {
			count++
			if count == 2 {
				s.Stop()
			}
		})
	}
	s.Run()
	if count != 2 {
		t.Fatalf("ran %d events before stop, want 2", count)
	}
	s.Run() // resumes
	if count != 5 {
		t.Fatalf("ran %d events total, want 5", count)
	}
}

func TestTicker(t *testing.T) {
	s := NewScheduler()
	var ticks []Time
	s.Ticker(0, time.Second, func(now Time) { ticks = append(ticks, now) })
	s.RunUntil(5 * time.Second)
	if len(ticks) != 6 { // t=0..5 inclusive
		t.Fatalf("got %d ticks, want 6: %v", len(ticks), ticks)
	}
	for i, tk := range ticks {
		if tk != time.Duration(i)*time.Second {
			t.Fatalf("tick %d at %v", i, tk)
		}
	}
}

func TestTickerStop(t *testing.T) {
	s := NewScheduler()
	n := 0
	var stop func()
	stop = s.Ticker(0, time.Second, func(now Time) {
		n++
		if n == 3 {
			stop()
		}
	})
	s.RunUntil(10 * time.Second)
	if n != 3 {
		t.Fatalf("ticker fired %d times after stop, want 3", n)
	}
}

func TestTickerZeroIntervalPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero ticker interval did not panic")
		}
	}()
	NewScheduler().Ticker(0, 0, func(Time) {})
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRNG(43)
	same := true
	for i := 0; i < 10; i++ {
		if NewRNG(42).Fork("x").Float64() == c.Float64() {
			continue
		}
		same = false
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestRNGForkIndependence(t *testing.T) {
	g := NewRNG(7)
	a := g.Fork("link")
	b := g.Fork("radio")
	// Streams from different labels should differ (overwhelmingly).
	diff := 0
	for i := 0; i < 32; i++ {
		if a.Float64() != b.Float64() {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("forked streams identical")
	}
}

func TestRNGUniformBounds(t *testing.T) {
	g := NewRNG(1)
	f := func(a, b uint32) bool {
		lo, hi := float64(a), float64(b)
		if lo > hi {
			lo, hi = hi, lo
		}
		v := g.Uniform(lo, hi)
		return v >= lo && (v < hi || lo == hi)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	if got := g.Uniform(5, 5); got != 5 {
		t.Fatalf("degenerate Uniform = %v, want 5", got)
	}
	if got := g.Uniform(5, 3); got != 5 {
		t.Fatalf("inverted Uniform = %v, want lo", got)
	}
}

func TestRNGExp(t *testing.T) {
	g := NewRNG(2)
	mean := 500 * time.Millisecond
	var sum time.Duration
	const n = 20000
	for i := 0; i < n; i++ {
		d := g.Exp(mean)
		if d < 0 {
			t.Fatal("negative exponential sample")
		}
		sum += d
	}
	avg := sum / n
	if avg < 450*time.Millisecond || avg > 550*time.Millisecond {
		t.Fatalf("Exp mean = %v, want ~%v", avg, mean)
	}
	if g.Exp(0) != 0 {
		t.Fatal("Exp(0) != 0")
	}
}

func TestRNGRead(t *testing.T) {
	g := NewRNG(3)
	buf := make([]byte, 64)
	n, err := g.Read(buf)
	if n != 64 || err != nil {
		t.Fatalf("Read = (%d, %v)", n, err)
	}
	zero := true
	for _, b := range buf {
		if b != 0 {
			zero = false
		}
	}
	if zero {
		t.Fatal("Read produced all zeros")
	}
}

func TestSchedulerFiredCount(t *testing.T) {
	s := NewScheduler()
	for i := 0; i < 5; i++ {
		s.At(time.Duration(i)*time.Second, func() {})
	}
	s.Run()
	if s.Fired() != 5 {
		t.Fatalf("Fired = %d, want 5", s.Fired())
	}
}
