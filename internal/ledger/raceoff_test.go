//go:build !race

package ledger

// raceEnabled: see raceon_test.go.
const raceEnabled = false
