package ledger

import (
	"fmt"
	"testing"
)

// BenchmarkAppend measures appends/sec at the three group-commit
// windows archived in BENCH_ledger.json: every append synced, the
// default batch of 16, and a deep batch of 256. MemFS keeps the
// numbers about the ledger (framing + CRC + group-commit accounting),
// not about one host's disk; tlcbench -ledger-bench runs the same
// sweep against the real filesystem.
func BenchmarkAppend(b *testing.B) {
	for _, syncEvery := range []int{1, 16, 256} {
		b.Run(fmt.Sprintf("sync%d", syncEvery), func(b *testing.B) {
			fsys := NewMemFS()
			l, err := Open(Options{Dir: "led", FS: fsys, SegmentBytes: 1 << 30, SyncEvery: syncEvery}, nil)
			if err != nil {
				b.Fatal(err)
			}
			rec := Record{Kind: KindCDR, Cycle: 1, Subscriber: "imsi-000001",
				Seq: 1, ChargingID: 2, TimeUsage: 3, UL: 4096, DL: 65536}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rec.Seq = uint32(i)
				if err := l.Append(&rec); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if err := l.Close(); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkReplay measures startup replay throughput over a segmented
// log.
func BenchmarkReplay(b *testing.B) {
	fsys := NewMemFS()
	l, err := Open(Options{Dir: "led", FS: fsys, SegmentBytes: 1 << 20, SyncEvery: 256}, nil)
	if err != nil {
		b.Fatal(err)
	}
	rec := Record{Kind: KindCDR, Cycle: 1, Subscriber: "imsi-000001",
		Seq: 1, ChargingID: 2, TimeUsage: 3, UL: 4096, DL: 65536}
	const n = 10000
	for i := 0; i < n; i++ {
		rec.Seq = uint32(i)
		if err := l.Append(&rec); err != nil {
			b.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		count := 0
		if err := Replay(fsys, "led", func(*Record) error { count++; return nil }); err != nil {
			b.Fatal(err)
		}
		if count != n {
			b.Fatalf("replayed %d of %d", count, n)
		}
	}
}
