package ledger

import (
	"bytes"
	"testing"
)

// Roaming chains are evidence records like PoCs: they must round-trip
// the codec exactly and survive compaction verbatim, provenance
// included, so an offline audit can re-verify the multi-operator path
// long after the cycle settled.

func TestChainPoCRecordRoundTrip(t *testing.T) {
	rec := &Record{
		Kind:       KindChainPoC,
		Cycle:      7,
		Subscriber: "imsi-roam",
		X:          950,
		Rounds:     3,
		Links:      1,
		Via:        "visited-fp-aa55",
		Proof:      []byte{5, 1, 2, 3, 4, 5, 6, 7, 8},
	}
	payload := appendRecord(nil, rec)
	if len(payload) != recordSize(rec) {
		t.Fatalf("encoded %d bytes, recordSize says %d", len(payload), recordSize(rec))
	}
	var back Record
	if err := decodeRecord(payload, &back); err != nil {
		t.Fatal(err)
	}
	if back.Via != rec.Via || back.Links != rec.Links || back.X != rec.X ||
		back.Rounds != rec.Rounds || !bytes.Equal(back.Proof, rec.Proof) {
		t.Fatalf("round trip changed record: %+v", back)
	}
	re := appendRecord(nil, &back)
	if !bytes.Equal(re, payload) {
		t.Fatal("re-encode not canonical")
	}
}

func TestChainPoCSurvivesCompaction(t *testing.T) {
	const dir = "led"
	fsys := NewMemFS()
	l, err := Open(Options{Dir: dir, FS: fsys, SyncEvery: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(&Record{Kind: KindCDR, Cycle: 4, Subscriber: "imsi-roam", UL: 500, DL: 450}); err != nil {
		t.Fatal(err)
	}
	chain := &Record{
		Kind: KindChainPoC, Cycle: 4, Subscriber: "imsi-roam",
		X: 950, Rounds: 2, Links: 1, Via: "visited-fp-aa55",
		Proof: []byte{5, 9, 9, 9},
	}
	if err := l.Append(chain); err != nil {
		t.Fatal(err)
	}
	if err := l.MarkSettled(4); err != nil {
		t.Fatal(err)
	}
	if err := l.Compact(); err != nil {
		t.Fatal(err)
	}
	rep, err := Audit(fsys, dir, "imsi-roam", 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.CDRs) != 0 {
		t.Fatalf("raw CDRs survived compaction: %d", len(rep.CDRs))
	}
	if len(rep.Chains) != 1 {
		t.Fatalf("chains after compaction: %d, want 1", len(rep.Chains))
	}
	got := rep.Chains[0]
	if got.Via != chain.Via || got.Links != chain.Links || got.X != chain.X ||
		!bytes.Equal(got.Proof, chain.Proof) {
		t.Fatalf("chain provenance mangled by compaction: %+v", got)
	}
	if !rep.Settled || rep.UL != 500 || rep.DL != 450 {
		t.Fatalf("aggregate lost: %+v", rep)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}
