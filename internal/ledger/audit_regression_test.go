package ledger

import (
	"errors"
	"fmt"
	"io/fs"
	"strings"
	"testing"
)

// Regression tests for the audit/compaction edge cases: a subscriber
// whose evidence survives only inside snapshot chunks, the error
// taxonomy for bad -ledger-dir paths, CURRENT read failures that must
// not masquerade as a fresh ledger, snapshot chunks that must respect
// MaxRecordBytes, and a failed compaction that must leave the ledger
// appendable instead of wedged on a nil segment handle.

// TestAuditSnapshotOnlyAnswer: after compaction folds a settled cycle,
// a subscriber with no surviving raw frames (CDRs folded, no PoC ever
// logged) must still get the snapshot-aggregated answer — not zeros,
// and not an error that reads like "not found".
func TestAuditSnapshotOnlyAnswer(t *testing.T) {
	const dir = "led"
	fsys := NewMemFS()
	l, err := Open(Options{Dir: dir, FS: fsys, SyncEvery: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(&Record{Kind: KindCDR, Cycle: 3, Subscriber: "imsi-snap", UL: 40, DL: 60}); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(&Record{Kind: KindCDR, Cycle: 3, Subscriber: "imsi-snap", UL: 1, DL: 2}); err != nil {
		t.Fatal(err)
	}
	if err := l.MarkSettled(3); err != nil {
		t.Fatal(err)
	}
	if err := l.Compact(); err != nil {
		t.Fatal(err)
	}
	rep, err := Audit(fsys, dir, "imsi-snap", 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.CDRs) != 0 {
		t.Fatalf("raw CDRs survived compaction: %d", len(rep.CDRs))
	}
	if rep.UL != 41 || rep.DL != 62 || rep.Records != 2 || !rep.Settled {
		t.Fatalf("snapshot-only audit = %+v, want ul=41 dl=62 records=2 settled", rep)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestAuditDirErrors: a nonexistent ledger directory gets its own
// typed error (an operator typo, not an empty store), distinct from a
// directory that exists but was never written.
func TestAuditDirErrors(t *testing.T) {
	fsys := NewMemFS()
	if _, err := Audit(fsys, "no/such/dir", "imsi-1", 1); !errors.Is(err, ErrDirNotExist) {
		t.Fatalf("missing dir: err = %v, want ErrDirNotExist", err)
	}
	if err := fsys.MkdirAll("empty"); err != nil {
		t.Fatal(err)
	}
	if _, err := Audit(fsys, "empty", "imsi-1", 1); !errors.Is(err, ErrNoLedger) {
		t.Fatalf("empty dir: err = %v, want ErrNoLedger", err)
	}
}

// denyFS fails ReadFile on CURRENT with a permission error, leaving
// everything else intact — the shape of a ledger directory an
// operator can list but not read.
type denyFS struct{ *MemFS }

func (d denyFS) ReadFile(name string) ([]byte, error) {
	if strings.HasSuffix(name, currentFile) {
		return nil, &fs.PathError{Op: "open", Path: name, Err: fs.ErrPermission}
	}
	return d.MemFS.ReadFile(name)
}

// TestOpenPropagatesCurrentReadError: an unreadable CURRENT must fail
// Open. The old behavior treated every ReadFile error as "fresh
// ledger" and silently started generation 1 over the existing log —
// the next compaction would then delete the real data as orphans.
func TestOpenPropagatesCurrentReadError(t *testing.T) {
	const dir = "led"
	mem := NewMemFS()
	l, err := Open(Options{Dir: dir, FS: mem, SyncEvery: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(&Record{Kind: KindCDR, Cycle: 1, Subscriber: "imsi-1", UL: 7}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Options{Dir: dir, FS: denyFS{mem}, SyncEvery: 1}, nil); !errors.Is(err, fs.ErrPermission) {
		t.Fatalf("Open over unreadable CURRENT: err = %v, want the permission error", err)
	}
	// Same contract on the read-only audit path.
	if _, err := Audit(denyFS{mem}, dir, "imsi-1", 1); !errors.Is(err, fs.ErrPermission) {
		t.Fatalf("Audit over unreadable CURRENT: err = %v, want the permission error", err)
	}
}

// TestSnapshotChunksRespectMaxRecordBytes: chunking by entry count
// alone let a snapshot of max-length subscriber ids (or a huge
// settled-cycle set) encode past MaxRecordBytes, which failed the
// very compaction that built it. Every chunk must fit, and the chunks
// together must reproduce the folded state exactly.
func TestSnapshotChunksRespectMaxRecordBytes(t *testing.T) {
	st := NewState()
	sub := strings.Repeat("x", MaxSubscriberLen-4)
	const nsubs = 10000
	for i := 0; i < nsubs; i++ {
		k := UsageKey{Cycle: 1, Subscriber: fmt.Sprintf("%s%04d", sub, i)}
		st.Usage[k] = UsageAgg{UL: uint64(i), DL: uint64(2 * i), Records: 1}
	}
	const ncycles = 200000 // 1.6 MB of settled ids alone
	for c := uint64(1); c <= ncycles; c++ {
		st.Settled[c] = true
	}
	snaps := buildSnapshots(st)
	entries, settled := 0, 0
	for i, snap := range snaps {
		rec := Record{Kind: KindSnapshot, Snap: snap}
		if size := recordSize(&rec); size > MaxRecordBytes {
			t.Fatalf("snapshot chunk %d encodes to %d bytes > MaxRecordBytes", i, size)
		}
		entries += len(snap.Entries)
		settled += len(snap.Settled)
	}
	if entries != nsubs || settled != ncycles {
		t.Fatalf("chunks carry %d entries / %d settled cycles, want %d / %d", entries, settled, nsubs, ncycles)
	}
	// Folding the chunks back must reproduce the settled aggregates.
	back := NewState()
	for _, snap := range snaps {
		if err := back.Apply(&Record{Kind: KindSnapshot, Snap: snap}); err != nil {
			t.Fatal(err)
		}
	}
	if len(back.Settled) != ncycles || len(back.Usage) != nsubs {
		t.Fatalf("refold: %d settled / %d usage keys, want %d / %d", len(back.Settled), len(back.Usage), ncycles, nsubs)
	}
	probe := UsageKey{Cycle: 1, Subscriber: fmt.Sprintf("%s%04d", sub, 123)}
	if agg := back.Usage[probe]; agg.UL != 123 || agg.DL != 246 || agg.Records != 1 {
		t.Fatalf("refold aggregate %+v", back.Usage[probe])
	}
}

// flakyFS fails the first Create of a new-generation segment, then
// behaves normally — a transient "disk full" in the middle of
// compaction.
type flakyFS struct {
	*MemFS
	failPrefix string
	spent      bool
}

func (f *flakyFS) Create(name string) (File, error) {
	if !f.spent && strings.Contains(name, f.failPrefix) {
		f.spent = true
		return nil, errors.New("disk full")
	}
	return f.MemFS.Create(name)
}

// TestCompactFailureLeavesAppendable: a compaction that fails before
// the CURRENT switch must leave the ledger appendable in the old
// generation. The old code returned with the active segment handle
// closed and nil — the next Append dereferenced it and panicked,
// wedging the ledger over a recoverable error.
func TestCompactFailureLeavesAppendable(t *testing.T) {
	const dir = "led"
	fsys := &flakyFS{MemFS: NewMemFS(), failPrefix: "g000002"}
	l, err := Open(Options{Dir: dir, FS: fsys, SyncEvery: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(&Record{Kind: KindCDR, Cycle: 1, Subscriber: "imsi-1", UL: 5}); err != nil {
		t.Fatal(err)
	}
	if err := l.MarkSettled(1); err != nil {
		t.Fatal(err)
	}
	if err := l.Compact(); err == nil {
		t.Fatal("Compact should fail when the new generation cannot be created")
	}
	// The failed compaction must not wedge (or panic) the ledger: the
	// old generation is still live and appends keep landing in it.
	if err := l.Append(&Record{Kind: KindCDR, Cycle: 2, Subscriber: "imsi-1", UL: 9}); err != nil {
		t.Fatalf("Append after failed compaction: %v", err)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	rep, err := Audit(fsys, dir, "imsi-1", 2)
	if err != nil {
		t.Fatal(err)
	}
	if rep.UL != 9 || rep.Records != 1 {
		t.Fatalf("post-failure record not readable: %+v", rep)
	}
	// And the retried compaction succeeds once the fault clears.
	if err := l.Compact(); err != nil {
		t.Fatalf("retried Compact: %v", err)
	}
	rep, err = Audit(fsys, dir, "imsi-1", 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.UL != 5 || !rep.Settled {
		t.Fatalf("settled cycle lost across failed+retried compaction: %+v", rep)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}
