// Package ledger is the durable charging store: an append-only
// segment log for CDRs and settled proofs-of-charge that survives a
// process crash. Records are CRC32C-framed and length-prefixed; fsync
// is group-committed (one sync covers a batch of appends); segments
// rotate at a size threshold; settled cycles compact into a snapshot
// record under a generation switch; and replay on startup truncates
// the log at the first torn record, so every recovered record is
// either fully present or fully absent — never corrupt.
//
// The paper's premise is that billable state must survive adversity
// at the cellular edge; this package is what turns the simulator's
// "LostRecords counter" into an actual recovery path (the OFCS
// replays its loss window out of the log) and what gives the live
// tlcd operator an audit trail ("every PoC for subscriber X in cycle
// Y") that outlives any single process.
//
// The package reads no clocks and draws no randomness: durability
// policy is count-based (sync every N appends), which keeps it legal
// inside the deterministic simulation (tlcvet simtime) and makes
// every torture run replayable.
package ledger

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Kind discriminates record payloads.
type Kind uint8

const (
	// KindCDR is one charging data record: a subscriber's metered
	// usage delta, stamped with its arrival time.
	KindCDR Kind = 1
	// KindPoC is one settled proof-of-charge: the negotiated volume
	// plus the full signed proof bytes (poc.PoC binary encoding).
	KindPoC Kind = 2
	// KindMark declares a cycle settled; compaction folds that
	// cycle's CDRs into the snapshot.
	KindMark Kind = 3
	// KindSnapshot is the compaction artifact: aggregated usage of
	// settled cycles plus the settled-cycle set.
	KindSnapshot Kind = 4
	// KindChainPoC is one settled roaming chain: the billed volume,
	// the relay provenance (visited-operator fingerprint and link
	// count) and the full signed chain bytes (poc.Chain encoding), so
	// an offline audit can re-verify the whole multi-operator path.
	KindChainPoC Kind = 5
)

// Limits keeping a corrupt length prefix from driving allocation.
const (
	// MaxRecordBytes bounds one record's framed payload.
	MaxRecordBytes = 1 << 20
	// MaxSubscriberLen bounds the subscriber identifier.
	MaxSubscriberLen = 256
)

// Record is one ledger entry. Kind selects which fields are
// meaningful; the codec is canonical (decode∘encode is the identity
// on valid payloads), which the fuzz target exploits to prove no
// corrupt record ever surfaces from replay.
type Record struct {
	Kind       Kind
	Cycle      uint64
	At         int64  // arrival stamp in ns (KindCDR); 0 otherwise
	Subscriber string // IMSI or peer-key fingerprint

	// KindCDR fields.
	Seq        uint32
	ChargingID uint32
	TimeUsage  int64
	UL, DL     uint64

	// KindPoC fields; KindChainPoC reuses X, Rounds and Proof (the
	// chain bytes).
	X      uint64
	Rounds uint32
	Proof  []byte

	// KindChainPoC provenance: the relaying (visited) operator's key
	// fingerprint and the number of chain links.
	Via   string
	Links uint32

	// KindSnapshot payload.
	Snap *Snapshot
}

// Snapshot aggregates the settled cycles compaction folded away.
type Snapshot struct {
	Settled []uint64 // settled cycle ids, ascending
	Entries []SnapEntry
}

// SnapEntry is one (cycle, subscriber) usage aggregate.
type SnapEntry struct {
	Cycle      uint64
	Subscriber string
	UL, DL     uint64
	Records    uint32
}

// Volume returns the record's charged bytes in both directions.
func (r *Record) Volume() uint64 { return r.UL + r.DL }

// castagnoli is the CRC32C table (the polynomial storage systems use
// for record framing; hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Frame layout, little-endian:
//
//	[len u32][crc32c u32][payload len bytes]
//
// crc covers the payload only. A record is valid iff len is in
// (0, MaxRecordBytes], the payload is fully present and the CRC
// matches; anything else is a torn record and truncates replay.
const frameHeader = 8

var (
	errShortFrame = errors.New("ledger: torn frame header")
	errBadLength  = errors.New("ledger: frame length out of range")
	errShortBody  = errors.New("ledger: torn frame body")
	errBadCRC     = errors.New("ledger: frame CRC mismatch")
)

// appendFrame appends one framed payload to dst and returns the
// extended slice. The payload must already be length-checked.
//
//tlcvet:hotpath
func appendFrame(dst, payload []byte) []byte {
	var hdr [frameHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, castagnoli))
	dst = append(dst, hdr[:]...)
	dst = append(dst, payload...)
	return dst
}

// appendU32 / appendU64 are the integer field encoders, kept in the
// amortized self-append form the hotalloc check certifies.
//
//tlcvet:hotpath
func appendU32(dst []byte, v uint32) []byte {
	var tmp [4]byte
	binary.LittleEndian.PutUint32(tmp[:], v)
	dst = append(dst, tmp[:]...)
	return dst
}

//tlcvet:hotpath
func appendU64(dst []byte, v uint64) []byte {
	var tmp [8]byte
	binary.LittleEndian.PutUint64(tmp[:], v)
	dst = append(dst, tmp[:]...)
	return dst
}

// nextFrame decodes the frame at the head of b, returning the payload
// and the total framed size. Any defect — short header, absurd
// length, short body, CRC mismatch — is a torn record.
func nextFrame(b []byte) (payload []byte, size int, err error) {
	if len(b) < frameHeader {
		return nil, 0, errShortFrame
	}
	n := binary.LittleEndian.Uint32(b[0:4])
	if n == 0 || n > MaxRecordBytes {
		return nil, 0, errBadLength
	}
	if len(b) < frameHeader+int(n) {
		return nil, 0, errShortBody
	}
	payload = b[frameHeader : frameHeader+int(n)]
	if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(b[4:8]) {
		return nil, 0, errBadCRC
	}
	return payload, frameHeader + int(n), nil
}

// appendRecord appends the canonical payload encoding of rec to dst.
//
//tlcvet:hotpath
func appendRecord(dst []byte, rec *Record) []byte {
	dst = append(dst, byte(rec.Kind))
	dst = appendU64(dst, rec.Cycle)
	dst = appendU64(dst, uint64(rec.At))
	dst = appendU32(dst, uint32(len(rec.Subscriber)))
	dst = append(dst, rec.Subscriber...)
	switch rec.Kind {
	case KindCDR:
		dst = appendU32(dst, rec.Seq)
		dst = appendU32(dst, rec.ChargingID)
		dst = appendU64(dst, uint64(rec.TimeUsage))
		dst = appendU64(dst, rec.UL)
		dst = appendU64(dst, rec.DL)
	case KindPoC:
		dst = appendU64(dst, rec.X)
		dst = appendU32(dst, rec.Rounds)
		dst = appendU32(dst, uint32(len(rec.Proof)))
		dst = append(dst, rec.Proof...)
	case KindChainPoC:
		dst = appendU64(dst, rec.X)
		dst = appendU32(dst, rec.Rounds)
		dst = appendU32(dst, rec.Links)
		dst = appendU32(dst, uint32(len(rec.Via)))
		dst = append(dst, rec.Via...)
		dst = appendU32(dst, uint32(len(rec.Proof)))
		dst = append(dst, rec.Proof...)
	case KindMark:
	case KindSnapshot:
		snap := rec.Snap
		if snap == nil {
			snap = &emptySnapshot
		}
		dst = appendU32(dst, uint32(len(snap.Settled)))
		for _, c := range snap.Settled {
			dst = appendU64(dst, c)
		}
		dst = appendU32(dst, uint32(len(snap.Entries)))
		for i := range snap.Entries {
			e := &snap.Entries[i]
			dst = appendU64(dst, e.Cycle)
			dst = appendU32(dst, uint32(len(e.Subscriber)))
			dst = append(dst, e.Subscriber...)
			dst = appendU64(dst, e.UL)
			dst = appendU64(dst, e.DL)
			dst = appendU32(dst, e.Records)
		}
	}
	return dst
}

var emptySnapshot Snapshot

// recordSize returns the encoded payload size of rec, for the
// pre-append length check and rotation decision.
func recordSize(rec *Record) int {
	n := 1 + 8 + 8 + 4 + len(rec.Subscriber)
	switch rec.Kind {
	case KindCDR:
		n += 4 + 4 + 8 + 8 + 8
	case KindPoC:
		n += 8 + 4 + 4 + len(rec.Proof)
	case KindChainPoC:
		n += 8 + 4 + 4 + 4 + len(rec.Via) + 4 + len(rec.Proof)
	case KindSnapshot:
		if rec.Snap != nil {
			n += 4 + 8*len(rec.Snap.Settled) + 4
			for i := range rec.Snap.Entries {
				n += 8 + 4 + len(rec.Snap.Entries[i].Subscriber) + 8 + 8 + 4
			}
		} else {
			n += 4 + 4
		}
	}
	return n
}

// decodeRecord decodes one canonical payload. Every read is
// bounds-checked: arbitrary input returns an error, never panics, and
// a success decodes to a record that re-encodes to the same bytes.
func decodeRecord(payload []byte, rec *Record) error {
	d := decoder{b: payload}
	kind, err := d.byte()
	if err != nil {
		return err
	}
	*rec = Record{Kind: Kind(kind)}
	if rec.Cycle, err = d.u64(); err != nil {
		return err
	}
	at, err := d.u64()
	if err != nil {
		return err
	}
	rec.At = int64(at)
	if rec.Subscriber, err = d.str(MaxSubscriberLen); err != nil {
		return err
	}
	switch rec.Kind {
	case KindCDR:
		if rec.Seq, err = d.u32(); err != nil {
			return err
		}
		if rec.ChargingID, err = d.u32(); err != nil {
			return err
		}
		tu, err := d.u64()
		if err != nil {
			return err
		}
		rec.TimeUsage = int64(tu)
		if rec.UL, err = d.u64(); err != nil {
			return err
		}
		if rec.DL, err = d.u64(); err != nil {
			return err
		}
	case KindPoC:
		if rec.X, err = d.u64(); err != nil {
			return err
		}
		if rec.Rounds, err = d.u32(); err != nil {
			return err
		}
		n, err := d.u32()
		if err != nil {
			return err
		}
		if int(n) > len(d.b)-d.off {
			return errTruncatedPayload
		}
		rec.Proof = append([]byte(nil), d.b[d.off:d.off+int(n)]...)
		d.off += int(n)
	case KindChainPoC:
		if rec.X, err = d.u64(); err != nil {
			return err
		}
		if rec.Rounds, err = d.u32(); err != nil {
			return err
		}
		if rec.Links, err = d.u32(); err != nil {
			return err
		}
		if rec.Via, err = d.str(MaxSubscriberLen); err != nil {
			return err
		}
		n, err := d.u32()
		if err != nil {
			return err
		}
		if int(n) > len(d.b)-d.off {
			return errTruncatedPayload
		}
		rec.Proof = append([]byte(nil), d.b[d.off:d.off+int(n)]...)
		d.off += int(n)
	case KindMark:
	case KindSnapshot:
		snap := &Snapshot{}
		ns, err := d.u32()
		if err != nil {
			return err
		}
		if int(ns) > (len(d.b)-d.off)/8 {
			return errTruncatedPayload
		}
		if ns > 0 {
			snap.Settled = make([]uint64, ns)
			for i := range snap.Settled {
				if snap.Settled[i], err = d.u64(); err != nil {
					return err
				}
			}
		}
		ne, err := d.u32()
		if err != nil {
			return err
		}
		// Each entry is at least 32 bytes; bound before allocating.
		if int(ne) > (len(d.b)-d.off)/32+1 {
			return errTruncatedPayload
		}
		if ne > 0 {
			snap.Entries = make([]SnapEntry, ne)
			for i := range snap.Entries {
				e := &snap.Entries[i]
				if e.Cycle, err = d.u64(); err != nil {
					return err
				}
				if e.Subscriber, err = d.str(MaxSubscriberLen); err != nil {
					return err
				}
				if e.UL, err = d.u64(); err != nil {
					return err
				}
				if e.DL, err = d.u64(); err != nil {
					return err
				}
				if e.Records, err = d.u32(); err != nil {
					return err
				}
			}
		}
		rec.Snap = snap
	default:
		return fmt.Errorf("ledger: unknown record kind %d", kind)
	}
	if d.off != len(d.b) {
		return errors.New("ledger: trailing bytes after record")
	}
	return nil
}

var errTruncatedPayload = errors.New("ledger: truncated record payload")

// decoder is a bounds-checked cursor over one payload.
type decoder struct {
	b   []byte
	off int
}

func (d *decoder) byte() (byte, error) {
	if d.off >= len(d.b) {
		return 0, errTruncatedPayload
	}
	v := d.b[d.off]
	d.off++
	return v, nil
}

func (d *decoder) u32() (uint32, error) {
	if len(d.b)-d.off < 4 {
		return 0, errTruncatedPayload
	}
	v := binary.LittleEndian.Uint32(d.b[d.off:])
	d.off += 4
	return v, nil
}

func (d *decoder) u64() (uint64, error) {
	if len(d.b)-d.off < 8 {
		return 0, errTruncatedPayload
	}
	v := binary.LittleEndian.Uint64(d.b[d.off:])
	d.off += 8
	return v, nil
}

func (d *decoder) str(max int) (string, error) {
	n, err := d.u32()
	if err != nil {
		return "", err
	}
	if int(n) > max || int(n) > len(d.b)-d.off {
		return "", errTruncatedPayload
	}
	s := string(d.b[d.off : d.off+int(n)])
	d.off += int(n)
	return s, nil
}
