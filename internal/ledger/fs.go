package ledger

import (
	"io"
	"os"
	"path/filepath"
	"sort"
)

// File is the write handle the ledger needs: sequential writes, an
// explicit durability barrier, and close. Torture harnesses substitute
// implementations that fail or tear at a chosen byte.
type File interface {
	io.Writer
	// Sync makes everything written so far durable: after Sync
	// returns nil, the bytes survive a crash.
	Sync() error
	Close() error
}

// FS is the filesystem slice the ledger runs on. Production uses
// DirFS (real files + fsync); simulations and torture tests use MemFS
// whose Sync/Crash semantics model the OS page cache.
type FS interface {
	// Create truncates-or-creates the named file for writing.
	Create(name string) (File, error)
	// ReadFile returns the file's durable-or-better contents.
	ReadFile(name string) ([]byte, error)
	// ReadDir lists the names (not paths) of files in dir, sorted.
	ReadDir(dir string) ([]string, error)
	// Rename atomically replaces newname with oldname.
	Rename(oldname, newname string) error
	Remove(name string) error
	MkdirAll(dir string) error
}

// DirFS is the production FS: plain files under the OS filesystem,
// Sync = fsync.
type DirFS struct{}

type osFile struct{ f *os.File }

func (o osFile) Write(p []byte) (int, error) { return o.f.Write(p) }
func (o osFile) Sync() error                 { return o.f.Sync() }
func (o osFile) Close() error                { return o.f.Close() }

// Create implements FS.
func (DirFS) Create(name string) (File, error) {
	f, err := os.Create(name)
	if err != nil {
		return nil, err
	}
	return osFile{f}, nil
}

// ReadFile implements FS.
func (DirFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

// ReadDir implements FS.
func (DirFS) ReadDir(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

// Rename implements FS. os.Rename is atomic on POSIX filesystems,
// which is what the CURRENT generation switch relies on.
func (DirFS) Rename(oldname, newname string) error { return os.Rename(oldname, newname) }

// Remove implements FS.
func (DirFS) Remove(name string) error { return os.Remove(name) }

// MkdirAll implements FS.
func (DirFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

var _ FS = DirFS{}

// join builds FS paths. All FS implementations use / separators via
// path/filepath so DirFS works on the host OS and MemFS keys match.
func join(dir, name string) string { return filepath.Join(dir, name) }
