package ledger

import "tlc/internal/metrics"

// Metrics are the ledger instruments, observed inline on the live
// path (same discipline as protocol/session metrics: single atomic
// ops on pre-registered instruments, no locks, no clock reads). The
// simulation-side counterpart — what a *recovered* OFCS re-ingested —
// lives in internal/epc under the two-tier rule.
var Metrics = struct {
	// Appends counts records appended; AppendedBytes their framed
	// size on disk.
	Appends       *metrics.Counter
	AppendedBytes *metrics.Counter
	// Syncs counts fsync barriers issued; Appends/Syncs is the
	// realized group-commit amortisation.
	Syncs *metrics.Counter
	// Rotations counts segment files started (including the fresh
	// segment every Open begins).
	Rotations *metrics.Counter
	// Opens counts replay+repair startups (Open and Reopen).
	Opens *metrics.Counter
	// TornTails counts startups that found a torn record;
	// TruncatedBytes the bytes cut away to restore the verified
	// prefix.
	TornTails      *metrics.Counter
	TruncatedBytes *metrics.Counter
	// Compactions counts generation switches; CompactedRecords the
	// records folded into snapshots (no longer individually stored).
	Compactions      *metrics.Counter
	CompactedRecords *metrics.Counter
}{
	Appends: metrics.Default.Counter("ledger_appends_total",
		"records appended to the charging ledger"),
	AppendedBytes: metrics.Default.Counter("ledger_appended_bytes_total",
		"framed bytes appended to the charging ledger"),
	Syncs: metrics.Default.Counter("ledger_syncs_total",
		"fsync barriers issued by the charging ledger"),
	Rotations: metrics.Default.Counter("ledger_segment_rotations_total",
		"segment files started by the charging ledger"),
	Opens: metrics.Default.Counter("ledger_opens_total",
		"replay+repair startups of the charging ledger"),
	TornTails: metrics.Default.Counter("ledger_torn_tails_total",
		"startups that truncated a torn record tail"),
	TruncatedBytes: metrics.Default.Counter("ledger_truncated_bytes_total",
		"bytes truncated to restore a verified record prefix"),
	Compactions: metrics.Default.Counter("ledger_compactions_total",
		"generation-switch compactions of the charging ledger"),
	CompactedRecords: metrics.Default.Counter("ledger_compacted_records_total",
		"settled records folded into snapshots by compaction"),
}
