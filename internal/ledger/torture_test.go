package ledger

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"tlc/internal/sim"
)

// The torture battery: the ledger's one promise is that after any
// crash — power cut mid-write, device error mid-batch, process kill
// mid-rotation — reopen-and-replay yields a verified record prefix:
// every record fully present or fully absent, never corrupt. These
// tests attack that promise from three directions: chopping the log
// at every byte offset, flipping every byte, and injecting a torn
// write at every cumulative byte count.

// mkRecord derives the i-th torture record deterministically from an
// RNG stream: a mix of CDRs, PoCs and marks with varied sizes.
func mkRecord(rng *sim.RNG, i int) Record {
	switch rng.Intn(8) {
	case 0:
		proof := make([]byte, rng.Intn(200))
		for j := range proof {
			proof[j] = byte(rng.Intn(256))
		}
		return Record{
			Kind:       KindPoC,
			Cycle:      uint64(rng.Intn(4)),
			Subscriber: fmt.Sprintf("imsi-%03d", rng.Intn(16)),
			X:          uint64(rng.Int63()),
			Rounds:     uint32(rng.Intn(30)),
			Proof:      proof,
		}
	case 1:
		return Record{Kind: KindMark, Cycle: uint64(rng.Intn(4))}
	default:
		return Record{
			Kind:       KindCDR,
			Cycle:      uint64(rng.Intn(4)),
			At:         int64(i) * 1e6,
			Subscriber: fmt.Sprintf("imsi-%03d", rng.Intn(16)),
			Seq:        uint32(i),
			ChargingID: uint32(rng.Intn(1 << 20)),
			TimeUsage:  int64(rng.Intn(1e6)),
			UL:         uint64(rng.Intn(1 << 16)),
			DL:         uint64(rng.Intn(1 << 20)),
		}
	}
}

func recordsEqual(a, b *Record) bool {
	if a.Kind != b.Kind || a.Cycle != b.Cycle || a.At != b.At ||
		a.Subscriber != b.Subscriber || a.Seq != b.Seq ||
		a.ChargingID != b.ChargingID || a.TimeUsage != b.TimeUsage ||
		a.UL != b.UL || a.DL != b.DL || a.X != b.X || a.Rounds != b.Rounds {
		return false
	}
	if len(a.Proof) != len(b.Proof) {
		return false
	}
	for i := range a.Proof {
		if a.Proof[i] != b.Proof[i] {
			return false
		}
	}
	return true
}

// requirePrefix asserts got is exactly want[:len(got)].
func requirePrefix(t *testing.T, label string, got, want []Record) {
	t.Helper()
	if len(got) > len(want) {
		t.Fatalf("%s: replayed %d records, only %d were written", label, len(got), len(want))
	}
	for i := range got {
		if !recordsEqual(&got[i], &want[i]) {
			t.Fatalf("%s: record %d corrupt: got %+v want %+v", label, i, got[i], want[i])
		}
	}
}

// fill appends n deterministic records and returns them. The ledger
// is left open.
func fill(t *testing.T, l *Ledger, seed int64, n int) []Record {
	t.Helper()
	rng := sim.NewRNG(seed)
	recs := make([]Record, 0, n)
	for i := 0; i < n; i++ {
		rec := mkRecord(rng, i)
		if err := l.Append(&rec); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		recs = append(recs, rec)
	}
	return recs
}

// collect is a replay callback that clones records into *out.
func collect(out *[]Record) func(*Record) error {
	return func(rec *Record) error {
		*out = append(*out, cloneRecord(rec))
		return nil
	}
}

// cloneFS copies every durable file of a cleanly closed ledger into a
// fresh MemFS so each torture case mutates its own copy.
func cloneFS(t *testing.T, src *MemFS, dir string) *MemFS {
	t.Helper()
	dst := NewMemFS()
	if err := dst.MkdirAll(dir); err != nil {
		t.Fatal(err)
	}
	names, err := src.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range names {
		data, err := src.ReadFile(join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		f, err := dst.Create(join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write(data); err != nil {
			t.Fatal(err)
		}
		if err := f.Sync(); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// lastSegment returns the name of the highest-index live segment.
func lastSegment(t *testing.T, fsys FS, dir string) string {
	t.Helper()
	gen, err := readCurrent(fsys, dir)
	if err != nil || gen == 0 {
		t.Fatalf("readCurrent: gen=%d err=%v", gen, err)
	}
	segs, err := listSegments(fsys, dir, gen)
	if err != nil || len(segs) == 0 {
		t.Fatalf("listSegments: %d segs, err=%v", len(segs), err)
	}
	return segs[len(segs)-1].name
}

// truncateFile rewrites name to its first k bytes, durable.
func truncateFile(t *testing.T, fsys *MemFS, name string, k int) {
	t.Helper()
	data, err := fsys.ReadFile(name)
	if err != nil {
		t.Fatal(err)
	}
	f, err := fsys.Create(name)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(data[:k]); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestTortureChopSweep cuts the final segment of a cleanly written
// ledger at EVERY byte offset and reopens: replay must recover the
// exact record prefix that fits in the surviving bytes — computed
// independently from the known record sizes, so a framing bug cannot
// hide by being self-consistent.
func TestTortureChopSweep(t *testing.T) {
	const dir = "led"
	base := NewMemFS()
	l, err := Open(Options{Dir: dir, FS: base, SegmentBytes: 1 << 10, SyncEvery: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := fill(t, l, 0x517, 60)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	last := lastSegment(t, base, dir)
	lastData, err := base.ReadFile(join(dir, last))
	if err != nil {
		t.Fatal(err)
	}

	// Independently compute, for each record, which segment it
	// landed in and its end offset there, by simulating the writer's
	// size accounting.
	segBytes := 1 << 10
	curSize := segHeader
	segIdx := uint64(1)
	_, lastIdx, _ := parseSegName(last)
	prior := 0 // records wholly in earlier segments
	var ends []int
	for i := range want {
		framed := frameHeader + recordSize(&want[i])
		if curSize > segHeader && curSize+framed > segBytes {
			segIdx++
			curSize = segHeader
		}
		curSize += framed
		if segIdx == lastIdx {
			ends = append(ends, curSize)
		} else if segIdx < lastIdx {
			prior++
		}
	}
	wantLast := segHeader
	if len(ends) > 0 {
		wantLast = ends[len(ends)-1]
	}
	if wantLast != len(lastData) {
		t.Fatalf("size accounting drifted: computed %d, real last segment %d bytes", wantLast, len(lastData))
	}

	for k := 0; k <= len(lastData); k++ {
		fsys := cloneFS(t, base, dir)
		truncateFile(t, fsys, join(dir, last), k)
		var got []Record
		l2, err := Open(Options{Dir: dir, FS: fsys, SegmentBytes: 1 << 10, SyncEvery: 1}, collect(&got))
		if err != nil {
			t.Fatalf("chop %d: reopen: %v", k, err)
		}
		expect := prior
		for _, end := range ends {
			if end <= k {
				expect++
			}
		}
		if len(got) != expect {
			t.Fatalf("chop %d: recovered %d records, want %d", k, len(got), expect)
		}
		requirePrefix(t, fmt.Sprintf("chop %d", k), got, want)
		// The repaired log must replay identically a second time.
		var again []Record
		if err := l2.Close(); err != nil {
			t.Fatalf("chop %d: close: %v", k, err)
		}
		if err := Replay(fsys, dir, collect(&again)); err != nil {
			t.Fatalf("chop %d: re-replay: %v", k, err)
		}
		if len(again) != expect {
			t.Fatalf("chop %d: second replay %d records, want %d", k, len(again), expect)
		}
	}
}

// TestTortureBitFlipSweep corrupts every byte of the final segment in
// turn (XOR 0x40) and reopens: the CRC must catch the damage, so the
// replayed records are always an intact prefix — a corrupt record
// must never surface.
func TestTortureBitFlipSweep(t *testing.T) {
	const dir = "led"
	base := NewMemFS()
	l, err := Open(Options{Dir: dir, FS: base, SegmentBytes: 1 << 12, SyncEvery: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := fill(t, l, 0xF11A, 40)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	last := lastSegment(t, base, dir)
	lastData, err := base.ReadFile(join(dir, last))
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < len(lastData); k++ {
		fsys := cloneFS(t, base, dir)
		data := append([]byte(nil), lastData...)
		data[k] ^= 0x40
		f, err := fsys.Create(join(dir, last))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write(data); err != nil {
			t.Fatal(err)
		}
		if err := f.Sync(); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		var got []Record
		if _, err := Open(Options{Dir: dir, FS: fsys, SyncEvery: 1}, collect(&got)); err != nil {
			t.Fatalf("flip %d: reopen: %v", k, err)
		}
		requirePrefix(t, fmt.Sprintf("flip %d", k), got, want)
	}
}

// TestTortureFailpointSweep arms the injectable WriteSyncer failpoint
// at every cumulative byte count, runs the workload until the device
// "dies", machine-crashes (volatile bytes discarded), reopens and
// replays. With SyncEvery=1 every successful append was covered by an
// fsync, so recovery must yield exactly the successfully appended
// records.
func TestTortureFailpointSweep(t *testing.T) {
	const dir = "led"
	const n = 30
	// First pass with no failpoint measures the total bytes written.
	probe := NewMemFS()
	lp, err := Open(Options{Dir: dir, FS: probe, SegmentBytes: 1 << 10, SyncEvery: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	fill(t, lp, 0xBEEF, n)
	if err := lp.Close(); err != nil {
		t.Fatal(err)
	}
	total := int64(0)
	names, err := probe.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range names {
		data, err := probe.ReadFile(join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		total += int64(len(data))
	}

	step := int64(1)
	if testing.Short() {
		step = 37
	}
	for cut := int64(1); cut <= total; cut += step {
		fsys := NewMemFS()
		fsys.FailAfterBytes(cut)
		l, err := Open(Options{Dir: dir, FS: fsys, SegmentBytes: 1 << 10, SyncEvery: 1}, nil)
		if err != nil {
			// The failpoint can hit during Open itself; nothing
			// was promised durable, so nothing to verify.
			continue
		}
		rng := sim.NewRNG(0xBEEF)
		var acked []Record
		for i := 0; i < n; i++ {
			rec := mkRecord(rng, i)
			if err := l.Append(&rec); err != nil {
				if !errors.Is(err, ErrInjected) {
					t.Fatalf("cut %d: append %d: unexpected error %v", cut, i, err)
				}
				break
			}
			acked = append(acked, rec)
		}
		l.Crash() // machine death: volatile page cache is gone

		var got []Record
		if err := l.Reopen(collect(&got)); err != nil {
			t.Fatalf("cut %d: reopen: %v", cut, err)
		}
		if len(got) != len(acked) {
			t.Fatalf("cut %d: recovered %d records, %d were acked durable", cut, len(got), len(acked))
		}
		requirePrefix(t, fmt.Sprintf("cut %d", cut), got, acked)
	}
}

// TestTortureGroupCommitWindow crashes with a partially filled
// group-commit batch: recovery must keep every record covered by a
// sync barrier and may keep any prefix of the unsynced tail — but
// always a prefix, never a gap or a corrupt record.
func TestTortureGroupCommitWindow(t *testing.T) {
	const dir = "led"
	for _, syncEvery := range []int{2, 4, 16} {
		fsys := NewMemFS()
		l, err := Open(Options{Dir: dir, FS: fsys, SyncEvery: syncEvery}, nil)
		if err != nil {
			t.Fatal(err)
		}
		want := fill(t, l, 0xAB, 25)
		synced := (len(want) / syncEvery) * syncEvery
		l.Crash()
		var got []Record
		if err := l.Reopen(collect(&got)); err != nil {
			t.Fatal(err)
		}
		if len(got) < synced {
			t.Fatalf("SyncEvery=%d: recovered %d, but %d were covered by fsync", syncEvery, len(got), synced)
		}
		requirePrefix(t, fmt.Sprintf("SyncEvery=%d", syncEvery), got, want)

		// Process death (no page-cache loss) must lose nothing.
		fsys2 := NewMemFS()
		l2, err := Open(Options{Dir: dir, FS: fsys2, SyncEvery: syncEvery}, nil)
		if err != nil {
			t.Fatal(err)
		}
		want2 := fill(t, l2, 0xCD, 25)
		var got2 []Record
		if err := l2.Reopen(collect(&got2)); err != nil {
			t.Fatal(err)
		}
		if len(got2) != len(want2) {
			t.Fatalf("SyncEvery=%d: process restart lost records: %d of %d", syncEvery, len(got2), len(want2))
		}
		requirePrefix(t, "process restart", got2, want2)
	}
}

// TestTortureConcurrentAppendCrash is the -race replay differential:
// several goroutines append interleaved per-stream sequences, the
// machine crashes, and after replay every stream must recover a
// per-stream prefix (the log's total order serializes the appends;
// losing stream A's record 3 but keeping its record 4 would be a
// hole, not a prefix).
func TestTortureConcurrentAppendCrash(t *testing.T) {
	const dir = "led"
	const streams = 4
	const perStream = 200
	fsys := NewMemFS()
	l, err := Open(Options{Dir: dir, FS: fsys, SegmentBytes: 1 << 12, SyncEvery: 8}, nil)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < streams; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perStream; i++ {
				rec := Record{
					Kind:       KindCDR,
					Cycle:      1,
					Subscriber: fmt.Sprintf("stream-%d", g),
					Seq:        uint32(i),
					UL:         uint64(i),
				}
				if err := l.Append(&rec); err != nil {
					t.Errorf("stream %d append %d: %v", g, i, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	l.Crash()

	next := make([]uint32, streams)
	err = l.Reopen(func(rec *Record) error {
		var g int
		if _, err := fmt.Sscanf(rec.Subscriber, "stream-%d", &g); err != nil {
			return fmt.Errorf("alien record %q", rec.Subscriber)
		}
		if rec.Seq != next[g] {
			return fmt.Errorf("stream %d: got seq %d, want %d (hole or reorder)", g, rec.Seq, next[g])
		}
		next[g]++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Everything before the crash was appended; SyncEvery=8 means at
	// most 7 records (total, across streams) were in the unsynced
	// window, so each stream loses at most 7.
	for g := 0; g < streams; g++ {
		if int(next[g]) < perStream-7 {
			t.Fatalf("stream %d: recovered only %d of %d (window is 7)", g, next[g], perStream)
		}
	}
}
