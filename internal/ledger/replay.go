package ledger

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io/fs"
	"sort"
)

// Segment header: [magic 8]["gen" u64 LE][idx u64 LE]. A segment whose
// header doesn't match is treated as torn at offset 0.
const segHeader = 24

var segMagic = [8]byte{'T', 'L', 'C', 'L', 'E', 'D', 'G', '1'}

func segmentHeader(gen, idx uint64) [segHeader]byte {
	var h [segHeader]byte
	copy(h[:8], segMagic[:])
	binary.LittleEndian.PutUint64(h[8:16], gen)
	binary.LittleEndian.PutUint64(h[16:24], idx)
	return h
}

// replaySegment verifies data as segment (gen, idx) and streams every
// verified record through fn (which may be nil). It returns the byte
// offset of the verified prefix and, if the segment ends in a torn or
// corrupt record — or fn itself errored — a non-nil tear describing
// why the scan stopped there.
func replaySegment(data []byte, gen, idx uint64, fn func(*Record) error) (verified int, tear error) {
	if len(data) < segHeader {
		return 0, errShortFrame
	}
	want := segmentHeader(gen, idx)
	for i := 0; i < segHeader; i++ {
		if data[i] != want[i] {
			return 0, fmt.Errorf("ledger: segment header mismatch at byte %d", i)
		}
	}
	n, tear := scanSegment(data[segHeader:], fn)
	return segHeader + n, tear
}

// scanSegment walks the framed records in b (no segment header),
// calling fn for each verified, decodable record. It returns the
// length of the verified prefix and a non-nil tear if the scan
// stopped before the end. It never panics on arbitrary input — the
// fuzz target FuzzLedgerReplay holds it to that.
func scanSegment(b []byte, fn func(*Record) error) (verified int, tear error) {
	off := 0
	var rec Record
	for off < len(b) {
		payload, size, err := nextFrame(b[off:])
		if err != nil {
			return off, err
		}
		if err := decodeRecord(payload, &rec); err != nil {
			// CRC says the bytes are what was written, but the
			// payload doesn't decode: a writer bug or hand-edited
			// log. Refuse to surface it.
			return off, err
		}
		if fn != nil {
			if err := fn(&rec); err != nil {
				return off, callbackError{err}
			}
		}
		off += size
	}
	return off, nil
}

// callbackError marks a replay stop caused by the caller's fn, not by
// log damage: it must propagate as an error, never trigger repair.
type callbackError struct{ err error }

func (e callbackError) Error() string { return "ledger: replay callback: " + e.err.Error() }
func (e callbackError) Unwrap() error { return e.err }

// ErrNoLedger is returned by Replay (and so Audit) when the directory
// exists but holds no ledger generation — nothing was ever appended
// there.
var ErrNoLedger = errors.New("ledger: no ledger")

// ErrDirNotExist is returned by Replay (and so Audit) when the ledger
// directory itself does not exist. It gets its own identity because
// for an audit query it almost always means a mistyped -ledger-dir,
// not a legitimately empty store.
var ErrDirNotExist = errors.New("ledger: directory does not exist")

// Replay streams every verified record of the ledger in dir through
// fn, read-only: no repair, no new segment, no handle kept. It is the
// audit path — it works on a live ledger's directory as well as a
// closed one. A torn tail simply ends the replay.
func Replay(fsys FS, dir string, fn func(*Record) error) error {
	if fsys == nil {
		fsys = DirFS{}
	}
	gen, err := readCurrent(fsys, dir)
	if err != nil {
		return err
	}
	if gen == 0 {
		// No CURRENT: tell a missing directory apart from an existing
		// but empty one — the former is an operator pointing the audit
		// at the wrong path and deserves a precise error.
		if _, derr := fsys.ReadDir(dir); derr != nil {
			if errors.Is(derr, fs.ErrNotExist) {
				return fmt.Errorf("%w: %s", ErrDirNotExist, dir)
			}
			return fmt.Errorf("ledger: list %s: %w", dir, derr)
		}
		return fmt.Errorf("%w at %s", ErrNoLedger, dir)
	}
	segs, err := listSegments(fsys, dir, gen)
	if err != nil {
		return err
	}
	for _, seg := range segs {
		data, err := fsys.ReadFile(join(dir, seg.name))
		if err != nil {
			return fmt.Errorf("ledger: read segment: %w", err)
		}
		if _, tear := replaySegment(data, seg.gen, seg.idx, fn); tear != nil {
			var cb callbackError
			if errors.As(tear, &cb) {
				return cb.err
			}
			return nil // verified prefix ends here
		}
	}
	return nil
}

// UsageKey identifies one subscriber's usage within one cycle.
type UsageKey struct {
	Cycle      uint64
	Subscriber string
}

// UsageAgg is the aggregate usage behind a UsageKey.
type UsageAgg struct {
	UL, DL  uint64
	Records uint32
}

// State is the canonical materialization of a ledger: what you get by
// replaying it front to back. Compaction must preserve it exactly —
// the property tests compare the State of a compacted ledger against
// the State of the uncompacted original.
type State struct {
	// Usage aggregates every CDR ever logged, settled or not.
	Usage map[UsageKey]UsageAgg
	// Settled is the set of cycles marked settled.
	Settled map[uint64]bool
	// CDRs holds the individual records of unsettled cycles, in
	// append order (settled cycles' records live only in Usage).
	CDRs []Record
	// PoCs holds every settled proof-of-charge, in append order.
	// Proofs are never folded away: they are the billable evidence.
	PoCs []Record
	// Chains holds every settled roaming chain, in append order.
	// Like PoCs they are evidence and survive compaction verbatim.
	Chains []Record
}

// NewState returns an empty State.
func NewState() *State {
	return &State{
		Usage:   make(map[UsageKey]UsageAgg),
		Settled: make(map[uint64]bool),
	}
}

// Apply folds one replayed record into the state. Pass it as the
// replay callback: records arrive in append order.
func (s *State) Apply(rec *Record) error {
	switch rec.Kind {
	case KindCDR:
		k := UsageKey{rec.Cycle, rec.Subscriber}
		agg := s.Usage[k]
		agg.UL += rec.UL
		agg.DL += rec.DL
		agg.Records++
		s.Usage[k] = agg
		s.CDRs = append(s.CDRs, cloneRecord(rec))
	case KindPoC:
		s.PoCs = append(s.PoCs, cloneRecord(rec))
	case KindChainPoC:
		s.Chains = append(s.Chains, cloneRecord(rec))
	case KindMark:
		s.Settled[rec.Cycle] = true
	case KindSnapshot:
		if rec.Snap == nil {
			return nil
		}
		for _, c := range rec.Snap.Settled {
			s.Settled[c] = true
		}
		for _, e := range rec.Snap.Entries {
			k := UsageKey{e.Cycle, e.Subscriber}
			agg := s.Usage[k]
			agg.UL += e.UL
			agg.DL += e.DL
			agg.Records += e.Records
			s.Usage[k] = agg
		}
	}
	return nil
}

// Finish drops the individual CDRs of settled cycles (their usage
// stays in Usage) and returns the state for chaining. Call it once
// after the replay completes.
func (s *State) Finish() *State {
	kept := s.CDRs[:0]
	for i := range s.CDRs {
		if !s.Settled[s.CDRs[i].Cycle] {
			kept = append(kept, s.CDRs[i])
		}
	}
	s.CDRs = kept
	return s
}

// SettledCycles returns the settled set in ascending order.
func (s *State) SettledCycles() []uint64 {
	out := make([]uint64, 0, len(s.Settled))
	for c := range s.Settled {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// cloneRecord deep-copies rec so pooled decode buffers can be reused.
func cloneRecord(rec *Record) Record {
	out := *rec
	if rec.Proof != nil {
		out.Proof = append([]byte(nil), rec.Proof...)
	}
	if rec.Snap != nil {
		snap := *rec.Snap
		snap.Settled = append([]uint64(nil), rec.Snap.Settled...)
		snap.Entries = append([]SnapEntry(nil), rec.Snap.Entries...)
		out.Snap = &snap
	}
	return out
}
