package ledger

import (
	"bytes"
	"testing"
)

// FuzzLedgerReplay is the adversarial-surface guard for the segment
// reader (the ledger's analogue of protocol.FuzzReadFrame): arbitrary
// bytes fed to the scanner must never panic, never claim more
// verified bytes than exist, and — the core invariant — never surface
// a corrupt record: every record handed to the replay callback must
// re-encode to exactly the payload bytes the CRC vouched for.
func FuzzLedgerReplay(f *testing.F) {
	// Seeds: an empty log, one valid record, two records with a torn
	// tail, a CRC-flipped record, an absurd length prefix, and a
	// full segment image with header.
	var one []byte
	rec := Record{Kind: KindCDR, Cycle: 3, At: 42, Subscriber: "imsi-001",
		Seq: 7, ChargingID: 9, TimeUsage: 100, UL: 1000, DL: 2000}
	one = appendFrame(one, appendRecord(nil, &rec))
	f.Add([]byte{})
	f.Add(append([]byte(nil), one...))
	poc := Record{Kind: KindPoC, Cycle: 1, Subscriber: "imsi-002",
		X: 5, Rounds: 2, Proof: []byte{0xde, 0xad}}
	two := appendFrame(append([]byte(nil), one...), appendRecord(nil, &poc))
	f.Add(two[:len(two)-3]) // torn tail
	flipped := append([]byte(nil), one...)
	flipped[len(flipped)-1] ^= 0xFF
	f.Add(flipped)                                    // CRC mismatch
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0}) // absurd length
	hdr := segmentHeader(1, 1)
	f.Add(append(hdr[:], one...)) // full segment image

	f.Fuzz(func(t *testing.T, data []byte) {
		// Re-scan manually in lockstep so every surfaced record can
		// be checked against the exact payload it came from.
		off := 0
		verified, tear := scanSegment(data, func(got *Record) error {
			payload, size, err := nextFrame(data[off:])
			if err != nil {
				t.Fatalf("scanner surfaced a record where nextFrame fails: %v", err)
			}
			reenc := appendRecord(nil, got)
			if !bytes.Equal(reenc, payload) {
				t.Fatalf("corrupt record surfaced: re-encoding differs from CRC-verified payload\npayload: %x\nreenc:   %x", payload, reenc)
			}
			off += size
			return nil
		})
		if verified != off {
			t.Fatalf("verified prefix %d does not match the surfaced records' extent %d", verified, off)
		}
		if verified > len(data) {
			t.Fatalf("verified %d bytes of a %d-byte input", verified, len(data))
		}
		if tear == nil && verified != len(data) {
			t.Fatalf("clean scan stopped early: %d of %d bytes", verified, len(data))
		}
		// The segment-level entry point (header + frames) must hold
		// the same no-panic guarantee.
		if v, _ := replaySegment(data, 1, 1, nil); v > len(data) {
			t.Fatalf("segment verified %d bytes of %d", v, len(data))
		}
	})
}

// TestSeedCorpusPresent pins the checked-in seed corpus: the fuzz
// stage in verify.sh starts from these inputs, so losing them
// silently weakens the smoke.
func TestSeedCorpusPresent(t *testing.T) {
	names, err := DirFS{}.ReadDir("testdata/fuzz/FuzzLedgerReplay")
	if err != nil {
		t.Fatalf("seed corpus missing: %v", err)
	}
	if len(names) < 3 {
		t.Fatalf("seed corpus has %d entries, want at least 3", len(names))
	}
}
