package ledger

import (
	"fmt"
	"reflect"
	"testing"

	"tlc/internal/sim"
)

// TestPropPrefixRoundTrip is the basic durability property: append a
// sequence of records with random payload sizes spanning 0..64KiB,
// reopen, and replay must return the exact sequence — byte-for-byte,
// order preserved, nothing invented.
func TestPropPrefixRoundTrip(t *testing.T) {
	const dir = "led"
	rng := sim.NewRNG(0x60D)
	fsys := NewMemFS()
	l, err := Open(Options{Dir: dir, FS: fsys, SegmentBytes: 256 << 10, SyncEvery: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	var want []Record
	for i := 0; i < 50; i++ {
		// Sizes cover the extremes: empty proof, tiny, and up to
		// 64KiB, crossing several rotation boundaries.
		size := 0
		switch rng.Intn(4) {
		case 0:
			size = rng.Intn(16)
		case 1:
			size = rng.Intn(1 << 10)
		default:
			size = rng.Intn(64 << 10)
		}
		proof := make([]byte, size)
		for j := range proof {
			proof[j] = byte(rng.Intn(256))
		}
		rec := Record{
			Kind:       KindPoC,
			Cycle:      uint64(i % 3),
			Subscriber: fmt.Sprintf("imsi-%d", i%7),
			X:          uint64(rng.Int63()),
			Rounds:     uint32(rng.Intn(40)),
			Proof:      proof,
		}
		if err := l.Append(&rec); err != nil {
			t.Fatalf("append %d (size %d): %v", i, size, err)
		}
		want = append(want, rec)
	}
	var got []Record
	if err := l.Reopen(collect(&got)); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("replayed %d of %d records", len(got), len(want))
	}
	requirePrefix(t, "round trip", got, want)
}

// TestPropOversizeRecordRejected: a record beyond MaxRecordBytes must
// be refused up front, not torn mid-segment.
func TestPropOversizeRecordRejected(t *testing.T) {
	fsys := NewMemFS()
	l, err := Open(Options{Dir: "led", FS: fsys}, nil)
	if err != nil {
		t.Fatal(err)
	}
	rec := Record{Kind: KindPoC, Subscriber: "imsi-1", Proof: make([]byte, MaxRecordBytes)}
	if err := l.Append(&rec); err != ErrRecordTooLarge {
		t.Fatalf("oversize append: got %v, want ErrRecordTooLarge", err)
	}
	// The refusal must not have poisoned or torn anything.
	small := Record{Kind: KindMark, Cycle: 9}
	if err := l.Append(&small); err != nil {
		t.Fatalf("append after refusal: %v", err)
	}
	var got []Record
	if err := l.Reopen(collect(&got)); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Kind != KindMark || got[0].Cycle != 9 {
		t.Fatalf("replay after refusal: %+v", got)
	}
}

// ledgerState replays a ledger directory into a finished State.
func ledgerState(t *testing.T, fsys FS, dir string) *State {
	t.Helper()
	st := NewState()
	if err := Replay(fsys, dir, st.Apply); err != nil {
		t.Fatal(err)
	}
	return st.Finish()
}

func statesEqual(a, b *State) bool {
	if !reflect.DeepEqual(a.Usage, b.Usage) || !reflect.DeepEqual(a.Settled, b.Settled) {
		return false
	}
	if len(a.CDRs) != len(b.CDRs) || len(a.PoCs) != len(b.PoCs) {
		return false
	}
	for i := range a.CDRs {
		if !recordsEqual(&a.CDRs[i], &b.CDRs[i]) {
			return false
		}
	}
	for i := range a.PoCs {
		if !recordsEqual(&a.PoCs[i], &b.PoCs[i]) {
			return false
		}
	}
	return true
}

// TestPropCompactionPreservesState: compaction must not change the
// materialized state — usage aggregates, the settled set, every
// unsettled CDR individually, every PoC individually. Run twin
// ledgers over the same workload, compact one mid-way and again at
// the end, and compare States.
func TestPropCompactionPreservesState(t *testing.T) {
	const dir = "led"
	for _, seed := range []int64{1, 0x5E7, 0xFEED} {
		fsA := NewMemFS() // compacted twice
		fsB := NewMemFS() // never compacted
		la, err := Open(Options{Dir: dir, FS: fsA, SegmentBytes: 2 << 10, SyncEvery: 1}, nil)
		if err != nil {
			t.Fatal(err)
		}
		lb, err := Open(Options{Dir: dir, FS: fsB, SegmentBytes: 2 << 10, SyncEvery: 1}, nil)
		if err != nil {
			t.Fatal(err)
		}
		rng := sim.NewRNG(seed)
		const n = 120
		for i := 0; i < n; i++ {
			rec := mkRecord(rng, i)
			if err := la.Append(&rec); err != nil {
				t.Fatal(err)
			}
			if err := lb.Append(&rec); err != nil {
				t.Fatal(err)
			}
			if i == n/2 {
				if err := la.Compact(); err != nil {
					t.Fatalf("seed %#x: mid compaction: %v", seed, err)
				}
			}
		}
		if err := la.Compact(); err != nil {
			t.Fatalf("seed %#x: final compaction: %v", seed, err)
		}
		if err := la.Close(); err != nil {
			t.Fatal(err)
		}
		if err := lb.Close(); err != nil {
			t.Fatal(err)
		}
		stA := ledgerState(t, fsA, dir)
		stB := ledgerState(t, fsB, dir)
		if !statesEqual(stA, stB) {
			t.Fatalf("seed %#x: compaction changed state:\ncompacted: %d CDRs %d PoCs %d usage %d settled\noriginal:  %d CDRs %d PoCs %d usage %d settled",
				seed,
				len(stA.CDRs), len(stA.PoCs), len(stA.Usage), len(stA.Settled),
				len(stB.CDRs), len(stB.PoCs), len(stB.Usage), len(stB.Settled))
		}
	}
}

// TestPropSnapshotReplayEquivalence: recovery from snapshot + tail
// must equal a full replay of the uncompacted history — including
// after a crash on the compacted ledger.
func TestPropSnapshotReplayEquivalence(t *testing.T) {
	const dir = "led"
	fsA := NewMemFS()
	fsB := NewMemFS()
	la, err := Open(Options{Dir: dir, FS: fsA, SegmentBytes: 2 << 10, SyncEvery: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	lb, err := Open(Options{Dir: dir, FS: fsB, SegmentBytes: 2 << 10, SyncEvery: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(0xACE)
	for i := 0; i < 60; i++ {
		rec := mkRecord(rng, i)
		if err := la.Append(&rec); err != nil {
			t.Fatal(err)
		}
		if err := lb.Append(&rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := la.Compact(); err != nil {
		t.Fatal(err)
	}
	// Post-compaction appends land in the new generation.
	for i := 60; i < 90; i++ {
		rec := mkRecord(rng, i)
		if err := la.Append(&rec); err != nil {
			t.Fatal(err)
		}
		if err := lb.Append(&rec); err != nil {
			t.Fatal(err)
		}
	}
	// Crash the compacted ledger (SyncEvery=1: nothing is lost) and
	// recover through its snapshot; the twin closes cleanly.
	la.Crash()
	if err := la.Reopen(nil); err != nil {
		t.Fatal(err)
	}
	if err := la.Close(); err != nil {
		t.Fatal(err)
	}
	if err := lb.Close(); err != nil {
		t.Fatal(err)
	}
	stA := ledgerState(t, fsA, dir)
	stB := ledgerState(t, fsB, dir)
	if !statesEqual(stA, stB) {
		t.Fatalf("snapshot+replay diverged from full replay:\nsnapshot: %d CDRs %d PoCs %d usage %d settled\nfull:     %d CDRs %d PoCs %d usage %d settled",
			len(stA.CDRs), len(stA.PoCs), len(stA.Usage), len(stA.Settled),
			len(stB.CDRs), len(stB.PoCs), len(stB.Usage), len(stB.Settled))
	}
}

// TestMarkSettledSurvivesCrash: MarkSettled syncs immediately, so a
// machine crash right after it must not lose the settlement.
func TestMarkSettledSurvivesCrash(t *testing.T) {
	fsys := NewMemFS()
	l, err := Open(Options{Dir: "led", FS: fsys, SyncEvery: 64}, nil)
	if err != nil {
		t.Fatal(err)
	}
	rec := Record{Kind: KindCDR, Cycle: 7, Subscriber: "imsi-1", UL: 10}
	if err := l.Append(&rec); err != nil {
		t.Fatal(err)
	}
	if err := l.MarkSettled(7); err != nil {
		t.Fatal(err)
	}
	l.Crash()
	st := NewState()
	if err := l.Reopen(st.Apply); err != nil {
		t.Fatal(err)
	}
	st.Finish()
	if !st.Settled[7] {
		t.Fatal("settlement mark lost in crash despite immediate sync")
	}
	// The CDR rode along under the mark's sync barrier.
	if agg := st.Usage[UsageKey{7, "imsi-1"}]; agg.UL != 10 || agg.Records != 1 {
		t.Fatalf("usage lost: %+v", agg)
	}
}

// TestAuditReport: the audit path answers (subscriber, cycle) across
// live records, marks and compacted snapshots.
func TestAuditReport(t *testing.T) {
	const dir = "led"
	fsys := NewMemFS()
	l, err := Open(Options{Dir: dir, FS: fsys, SyncEvery: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	appendOK := func(rec Record) {
		t.Helper()
		if err := l.Append(&rec); err != nil {
			t.Fatal(err)
		}
	}
	appendOK(Record{Kind: KindCDR, Cycle: 1, Subscriber: "imsi-7", UL: 100, DL: 200})
	appendOK(Record{Kind: KindCDR, Cycle: 1, Subscriber: "imsi-7", UL: 1, DL: 2})
	appendOK(Record{Kind: KindCDR, Cycle: 1, Subscriber: "imsi-8", UL: 9999}) // other sub
	appendOK(Record{Kind: KindCDR, Cycle: 2, Subscriber: "imsi-7", UL: 5})    // other cycle
	appendOK(Record{Kind: KindPoC, Cycle: 1, Subscriber: "imsi-7", X: 42, Rounds: 3, Proof: []byte{1, 2, 3}})
	if err := l.MarkSettled(1); err != nil {
		t.Fatal(err)
	}

	check := func(label string) {
		t.Helper()
		rep, err := Audit(fsys, dir, "imsi-7", 1)
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		if rep.UL != 101 || rep.DL != 202 || rep.Records != 2 {
			t.Fatalf("%s: aggregate %d/%d over %d records, want 101/202 over 2", label, rep.UL, rep.DL, rep.Records)
		}
		if len(rep.PoCs) != 1 || rep.PoCs[0].X != 42 {
			t.Fatalf("%s: PoCs %+v", label, rep.PoCs)
		}
		if !rep.Settled {
			t.Fatalf("%s: cycle 1 should be settled", label)
		}
		if rep.Volume() != 303 {
			t.Fatalf("%s: volume %d", label, rep.Volume())
		}
	}
	check("pre-compaction")
	if len(mustAudit(t, fsys, dir).CDRs) != 2 {
		t.Fatal("expected the individual CDRs before compaction")
	}

	if err := l.Compact(); err != nil {
		t.Fatal(err)
	}
	// After compaction the individual CDRs of the settled cycle are
	// folded into the snapshot, but the aggregate answer — and the
	// PoC evidence — must not change.
	check("post-compaction")
	if len(mustAudit(t, fsys, dir).CDRs) != 0 {
		t.Fatal("settled cycle's CDRs should be folded away after compaction")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	check("after close")
}

func mustAudit(t *testing.T, fsys FS, dir string) *AuditReport {
	t.Helper()
	rep, err := Audit(fsys, dir, "imsi-7", 1)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestRotationProducesSegments: a small segment threshold must yield
// multiple segment files, and replay must walk them in order.
func TestRotationProducesSegments(t *testing.T) {
	const dir = "led"
	fsys := NewMemFS()
	l, err := Open(Options{Dir: dir, FS: fsys, SegmentBytes: 512, SyncEvery: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := fill(t, l, 0x707, 40)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := listSegments(fsys, dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("expected rotation to produce several segments, got %d", len(segs))
	}
	var got []Record
	if err := Replay(fsys, dir, collect(&got)); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("replayed %d of %d across %d segments", len(got), len(want), len(segs))
	}
	requirePrefix(t, "rotation", got, want)
}

// TestDirFSRoundTrip exercises the production filesystem end to end
// on a real temp directory: append, close, reopen, audit.
func TestDirFSRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir, SegmentBytes: 1 << 10, SyncEvery: 4}, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := fill(t, l, 0xD15C, 30)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	var got []Record
	l2, err := Open(Options{Dir: dir, SegmentBytes: 1 << 10}, collect(&got))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("disk replay %d of %d", len(got), len(want))
	}
	requirePrefix(t, "disk", got, want)
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
}
