//go:build race

package ledger

// raceEnabled reports whether the race detector is compiled in; the
// allocation-count guards skip themselves when it is, because its
// instrumentation inflates AllocsPerRun.
const raceEnabled = true
