package ledger

import (
	"errors"
	"fmt"
	"io/fs"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Options configures a Ledger. Zero values select the defaults noted
// on each field.
type Options struct {
	// Dir is the ledger directory (created if absent).
	Dir string
	// FS is the filesystem; nil selects DirFS (the real disk).
	// Simulations and torture tests pass a MemFS.
	FS FS
	// SegmentBytes rotates the active segment once it reaches this
	// size. Default 4 MiB.
	SegmentBytes int
	// SyncEvery is the group-commit window: one fsync covers up to
	// this many appends. 1 syncs every append (no loss window);
	// default 16. The policy is count-based, never time-based, so
	// the ledger stays legal inside the deterministic simulation.
	SyncEvery int
}

func (o *Options) withDefaults() Options {
	opts := *o
	if opts.FS == nil {
		opts.FS = DirFS{}
	}
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = 4 << 20
	}
	if opts.SyncEvery <= 0 {
		opts.SyncEvery = 16
	}
	return opts
}

// ErrClosed is returned by operations on a closed (or crashed)
// ledger.
var ErrClosed = errors.New("ledger: closed")

// ErrRecordTooLarge is returned by Append when the encoded record
// exceeds MaxRecordBytes.
var ErrRecordTooLarge = errors.New("ledger: record exceeds MaxRecordBytes")

// Ledger is the append-only charging store. All methods are safe for
// concurrent use.
type Ledger struct {
	mu   sync.Mutex
	opts Options
	fs   FS

	gen     uint64 // live generation (named by CURRENT)
	nextIdx uint64 // index the next segment will get
	cur     File   // active segment handle
	curSize int    // bytes written to the active segment
	curIdx  uint64

	unsynced int    // appends since the last fsync
	payload  []byte // reused record-encode buffer
	buf      []byte // reused frame-encode buffer
	closed   bool
	sticky   error // first write/sync failure; poisons the ledger
}

// Open opens (creating if necessary) the ledger in opts.Dir, replays
// every verified record through fn in append order, repairs a torn
// tail (the damaged segment is rewritten to its verified prefix and
// later segments removed), and starts a fresh segment for appends.
// fn may be nil when the caller only wants the store open.
//
// The replay invariant: every record passed to fn was fully written
// and CRC-verified; a record that was mid-write at the crash is
// truncated away, never surfaced.
func Open(opts Options, fn func(*Record) error) (*Ledger, error) {
	l := &Ledger{opts: opts.withDefaults()}
	l.fs = l.opts.FS
	if err := l.open(fn); err != nil {
		return nil, err
	}
	return l, nil
}

// open (re)initializes the ledger from disk. Caller must not hold mu
// for Open; Reopen locks around it.
func (l *Ledger) open(fn func(*Record) error) error {
	if err := l.fs.MkdirAll(l.opts.Dir); err != nil {
		return fmt.Errorf("ledger: mkdir: %w", err)
	}
	gen, err := readCurrent(l.fs, l.opts.Dir)
	if err != nil {
		return err
	}
	if gen == 0 {
		gen = 1
		if err := writeCurrent(l.fs, l.opts.Dir, gen); err != nil {
			return err
		}
	}
	if err := removeOrphans(l.fs, l.opts.Dir, gen); err != nil {
		return err
	}
	segs, err := listSegments(l.fs, l.opts.Dir, gen)
	if err != nil {
		return err
	}
	lastIdx := uint64(0)
	stop := false
	for _, seg := range segs {
		if stop {
			// Everything after the first torn record is
			// unreachable log: remove it.
			if err := l.fs.Remove(join(l.opts.Dir, seg.name)); err != nil {
				return fmt.Errorf("ledger: drop post-tear segment: %w", err)
			}
			continue
		}
		data, err := l.fs.ReadFile(join(l.opts.Dir, seg.name))
		if err != nil {
			return fmt.Errorf("ledger: read segment: %w", err)
		}
		verified, torn := replaySegment(data, seg.gen, seg.idx, fn)
		if torn != nil {
			var cb callbackError
			if errors.As(torn, &cb) {
				return cb.err
			}
			Metrics.TornTails.Inc()
			Metrics.TruncatedBytes.Add(uint64(len(data) - verified))
			stop = true
			if verified <= segHeader {
				// Nothing valid in this segment at all.
				if err := l.fs.Remove(join(l.opts.Dir, seg.name)); err != nil {
					return fmt.Errorf("ledger: drop torn segment: %w", err)
				}
				continue
			}
			if err := rewritePrefix(l.fs, l.opts.Dir, seg.name, data[:verified]); err != nil {
				return err
			}
		}
		lastIdx = seg.idx
	}
	l.gen = gen
	l.nextIdx = lastIdx + 1
	l.cur = nil
	l.curSize = 0
	l.unsynced = 0
	l.closed = false
	l.sticky = nil
	if err := l.newSegment(); err != nil {
		return err
	}
	Metrics.Opens.Inc()
	return nil
}

// rewritePrefix replaces dir/name with its verified prefix via a tmp
// file and an atomic rename, then syncs the replacement so the repair
// itself is durable.
func rewritePrefix(fsys FS, dir, name string, prefix []byte) error {
	tmp := join(dir, name+".tmp")
	f, err := fsys.Create(tmp)
	if err != nil {
		return fmt.Errorf("ledger: repair create: %w", err)
	}
	if _, err := f.Write(prefix); err != nil {
		_ = f.Close()
		return fmt.Errorf("ledger: repair write: %w", err)
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return fmt.Errorf("ledger: repair sync: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("ledger: repair close: %w", err)
	}
	if err := fsys.Rename(tmp, join(dir, name)); err != nil {
		return fmt.Errorf("ledger: repair rename: %w", err)
	}
	return nil
}

// newSegment rotates to a fresh segment file: header written, handle
// retained. Caller holds mu (or is single-threaded during open).
func (l *Ledger) newSegment() error {
	name := segName(l.gen, l.nextIdx)
	f, err := l.fs.Create(join(l.opts.Dir, name))
	if err != nil {
		return fmt.Errorf("ledger: create segment: %w", err)
	}
	hdr := segmentHeader(l.gen, l.nextIdx)
	if _, err := f.Write(hdr[:]); err != nil {
		_ = f.Close()
		return fmt.Errorf("ledger: write segment header: %w", err)
	}
	l.cur = f
	l.curIdx = l.nextIdx
	l.curSize = segHeader
	l.nextIdx++
	Metrics.Rotations.Inc()
	return nil
}

// Append writes one record to the log. Durability follows the
// group-commit window: the record is on disk for sure only after the
// batch's fsync (SyncEvery appends, or an explicit Sync). A write or
// sync failure poisons the ledger — every later Append returns the
// first error, because a log with a silent hole must not keep
// growing.
func (l *Ledger) Append(rec *Record) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.appendLocked(rec)
}

func (l *Ledger) appendLocked(rec *Record) error {
	if l.closed {
		return ErrClosed
	}
	if l.sticky != nil {
		return l.sticky
	}
	size := recordSize(rec)
	if size > MaxRecordBytes {
		return ErrRecordTooLarge
	}
	if l.curSize > segHeader && l.curSize+frameHeader+size > l.opts.SegmentBytes {
		// Rotate: the full segment must be durable before we move
		// on, or replay order could have a hole.
		if err := l.syncLocked(); err != nil {
			return err
		}
		if err := l.cur.Close(); err != nil {
			return l.poison(fmt.Errorf("ledger: close segment: %w", err))
		}
		if err := l.newSegment(); err != nil {
			return l.poison(err)
		}
	}
	l.payload = appendRecord(l.payload[:0], rec)
	l.buf = appendFrame(l.buf[:0], l.payload)
	if _, err := l.cur.Write(l.buf); err != nil {
		return l.poison(fmt.Errorf("ledger: append: %w", err))
	}
	l.curSize += len(l.buf)
	l.unsynced++
	Metrics.Appends.Inc()
	Metrics.AppendedBytes.Add(uint64(len(l.buf)))
	if l.unsynced >= l.opts.SyncEvery {
		return l.syncLocked()
	}
	return nil
}

// poison records the first hard failure and returns it.
func (l *Ledger) poison(err error) error {
	if l.sticky == nil {
		l.sticky = err
	}
	return l.sticky
}

// Sync forces the group-commit barrier: everything appended so far is
// durable when it returns nil.
func (l *Ledger) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.sticky != nil {
		return l.sticky
	}
	return l.syncLocked()
}

func (l *Ledger) syncLocked() error {
	if l.unsynced == 0 {
		return nil
	}
	if err := l.cur.Sync(); err != nil {
		return l.poison(fmt.Errorf("ledger: sync: %w", err))
	}
	l.unsynced = 0
	Metrics.Syncs.Inc()
	return nil
}

// MarkSettled appends a cycle-settled mark and syncs immediately: a
// settlement is the one event that must never sit in the group-commit
// window, because compaction folds everything behind it.
func (l *Ledger) MarkSettled(cycle uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.appendLocked(&Record{Kind: KindMark, Cycle: cycle}); err != nil {
		return err
	}
	if l.closed {
		return ErrClosed
	}
	return l.syncLocked()
}

// Crash simulates process death for tests and the simulation: the
// handle is dropped without syncing (unsynced appends are lost) and,
// when the FS models a page cache (MemFS), its volatile tail is
// discarded too. The ledger is closed; Reopen brings it back with
// replay.
func (l *Ledger) Crash() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.closed = true
	l.cur = nil
	l.unsynced = 0
	if c, ok := l.fs.(interface{ Crash() }); ok {
		c.Crash()
	}
}

// Reopen re-runs the startup path — replay every verified record
// through fn, repair the torn tail, fresh segment — on a closed or
// crashed ledger.
func (l *Ledger) Reopen(fn func(*Record) error) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.cur != nil {
		if !l.closed && l.sticky == nil {
			if err := l.syncLocked(); err != nil {
				// Poisoned mid-reopen: fall through and rebuild
				// from what the disk actually holds.
				_ = err
			}
		}
		_ = l.cur.Close() // handle may already be dead; replay re-verifies
		l.cur = nil
	}
	return l.open(fn)
}

// Close syncs and closes the active segment. The ledger can be
// Reopened afterwards.
func (l *Ledger) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	if l.sticky != nil {
		_ = l.cur.Close()
		return l.sticky
	}
	if l.unsynced > 0 {
		if err := l.cur.Sync(); err != nil {
			_ = l.cur.Close()
			return fmt.Errorf("ledger: sync on close: %w", err)
		}
		l.unsynced = 0
		Metrics.Syncs.Inc()
	}
	if err := l.cur.Close(); err != nil {
		return fmt.Errorf("ledger: close: %w", err)
	}
	l.cur = nil
	return nil
}

// Dir returns the ledger directory.
func (l *Ledger) Dir() string { return l.opts.Dir }

// segment bookkeeping --------------------------------------------------

type segRef struct {
	name string
	gen  uint64
	idx  uint64
}

// segName names segment idx of generation gen. Lexicographic order of
// the names equals numeric order, which listSegments relies on.
func segName(gen, idx uint64) string {
	return fmt.Sprintf("g%06d-%08d.seg", gen, idx)
}

func parseSegName(name string) (gen, idx uint64, ok bool) {
	if len(name) < 2 || name[0] != 'g' || !strings.HasSuffix(name, ".seg") {
		return 0, 0, false
	}
	body := name[1 : len(name)-len(".seg")]
	dash := strings.IndexByte(body, '-')
	if dash <= 0 || dash == len(body)-1 {
		return 0, 0, false
	}
	g, err1 := strconv.ParseUint(body[:dash], 10, 64)
	i, err2 := strconv.ParseUint(body[dash+1:], 10, 64)
	if err1 != nil || err2 != nil {
		return 0, 0, false
	}
	return g, i, true
}

// removeOrphans deletes segments of any generation other than the
// live one, plus leftover .tmp files — the debris of a crash during
// compaction (either side of the CURRENT switch) or repair.
func removeOrphans(fsys FS, dir string, gen uint64) error {
	names, err := fsys.ReadDir(dir)
	if err != nil {
		return fmt.Errorf("ledger: list for cleanup: %w", err)
	}
	for _, name := range names {
		drop := strings.HasSuffix(name, ".tmp")
		if g, _, ok := parseSegName(name); ok && g != gen {
			drop = true
		}
		if drop {
			if err := fsys.Remove(join(dir, name)); err != nil {
				return fmt.Errorf("ledger: remove orphan %s: %w", name, err)
			}
		}
	}
	return nil
}

// listSegments returns generation gen's segments in index order.
func listSegments(fsys FS, dir string, gen uint64) ([]segRef, error) {
	names, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("ledger: list segments: %w", err)
	}
	var segs []segRef
	for _, name := range names {
		g, idx, ok := parseSegName(name)
		if !ok || g != gen {
			continue
		}
		segs = append(segs, segRef{name: name, gen: g, idx: idx})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].idx < segs[j].idx })
	return segs, nil
}

// currentFile is the generation pointer: its content is the decimal
// live generation. It is replaced atomically (tmp + rename), which is
// what makes compaction crash-safe on either side of the switch.
const currentFile = "CURRENT"

func readCurrent(fsys FS, dir string) (uint64, error) {
	data, err := fsys.ReadFile(join(dir, currentFile))
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return 0, nil // no CURRENT yet: fresh ledger
		}
		// Any other failure (permissions, I/O) must NOT look like a
		// fresh ledger: starting generation 1 over an unreadable
		// CURRENT would orphan the real log on the next compaction.
		return 0, fmt.Errorf("ledger: read CURRENT: %w", err)
	}
	var gen uint64
	if _, err := fmt.Sscanf(string(data), "%d", &gen); err != nil || gen == 0 {
		return 0, fmt.Errorf("ledger: corrupt CURRENT %q", data)
	}
	return gen, nil
}

func writeCurrent(fsys FS, dir string, gen uint64) error {
	tmp := join(dir, currentFile+".tmp")
	f, err := fsys.Create(tmp)
	if err != nil {
		return fmt.Errorf("ledger: CURRENT create: %w", err)
	}
	if _, err := fmt.Fprintf(f, "%d\n", gen); err != nil {
		_ = f.Close()
		return fmt.Errorf("ledger: CURRENT write: %w", err)
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return fmt.Errorf("ledger: CURRENT sync: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("ledger: CURRENT close: %w", err)
	}
	if err := fsys.Rename(tmp, join(dir, currentFile)); err != nil {
		return fmt.Errorf("ledger: CURRENT rename: %w", err)
	}
	return nil
}
