package ledger

import "fmt"

// AuditReport answers the operator's audit question: everything the
// ledger knows about one subscriber in one cycle — the individual
// records still stored, the aggregate (including usage folded into
// snapshots by compaction), and whether the cycle settled.
type AuditReport struct {
	Subscriber string
	Cycle      uint64
	// CDRs and PoCs are the individual matching records, append
	// order. CDRs of a compacted settled cycle are gone as
	// individuals but still counted in the aggregate below.
	CDRs []Record
	PoCs []Record
	// Chains are the matching roaming settlement chains: billed
	// volume plus relay provenance plus the re-verifiable chain bytes.
	Chains []Record
	// Aggregate usage: live records plus snapshot entries.
	UL, DL  uint64
	Records uint32
	Settled bool
}

// Volume is the aggregate charged bytes.
func (r *AuditReport) Volume() uint64 { return r.UL + r.DL }

// Audit replays the ledger in dir (read-only; works on live and
// closed ledgers alike) and reports on (subscriber, cycle).
func Audit(fsys FS, dir, subscriber string, cycle uint64) (*AuditReport, error) {
	rep := &AuditReport{Subscriber: subscriber, Cycle: cycle}
	err := Replay(fsys, dir, func(rec *Record) error {
		switch rec.Kind {
		case KindCDR:
			if rec.Subscriber == subscriber && rec.Cycle == cycle {
				rep.CDRs = append(rep.CDRs, cloneRecord(rec))
				rep.UL += rec.UL
				rep.DL += rec.DL
				rep.Records++
			}
		case KindPoC:
			if rec.Subscriber == subscriber && rec.Cycle == cycle {
				rep.PoCs = append(rep.PoCs, cloneRecord(rec))
			}
		case KindChainPoC:
			if rec.Subscriber == subscriber && rec.Cycle == cycle {
				rep.Chains = append(rep.Chains, cloneRecord(rec))
			}
		case KindMark:
			if rec.Cycle == cycle {
				rep.Settled = true
			}
		case KindSnapshot:
			if rec.Snap == nil {
				return nil
			}
			for _, c := range rec.Snap.Settled {
				if c == cycle {
					rep.Settled = true
				}
			}
			for i := range rec.Snap.Entries {
				e := &rec.Snap.Entries[i]
				if e.Subscriber == subscriber && e.Cycle == cycle {
					rep.UL += e.UL
					rep.DL += e.DL
					rep.Records += e.Records
				}
			}
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("ledger: audit: %w", err)
	}
	return rep, nil
}
