package ledger

import (
	"fmt"
	"sort"
)

// snapChunk bounds the entries packed into one snapshot record and
// snapBudget bounds its encoded payload bytes. Both limits apply: the
// count keeps chunks cheap to stream through replay, and the byte
// budget is the correctness bound — 8192 entries with max-length
// subscriber ids (or a huge settled-cycle set) would otherwise encode
// past MaxRecordBytes and fail the compaction that tried to write it.
const (
	snapChunk  = 8192
	snapBudget = MaxRecordBytes / 2
)

// Compact folds the settled cycles into a snapshot and switches to a
// new generation:
//
//  1. the live generation is synced and replayed into a State;
//  2. generation g+1 is written — first the snapshot record(s)
//     (settled-cycle set + per-(cycle,subscriber) aggregates of the
//     settled cycles), then every retained record (unsettled CDRs in
//     append order, then all PoCs, then all roaming chains, each in
//     append order);
//  3. CURRENT is atomically switched to g+1;
//  4. generation g is deleted.
//
// A crash anywhere in this sequence is safe: before the CURRENT
// rename the old generation is intact and the half-written g+1 is
// orphan debris (removed on next open); after it, g+1 is complete and
// durable and the old generation is the debris.
func (l *Ledger) Compact() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.sticky != nil {
		return l.sticky
	}
	if err := l.syncLocked(); err != nil {
		return err
	}
	if err := l.cur.Close(); err != nil {
		return l.poison(fmt.Errorf("ledger: close for compaction: %w", err))
	}
	l.cur = nil

	// fail recovers from an error before the CURRENT switch: the old
	// generation is intact and any half-written g+1 segments are
	// orphan debris (swept on the next open), but the active segment
	// handle was already closed above — without restoring one, the
	// next Append would dereference a nil handle and wedge the ledger
	// on a compaction failure that was perfectly recoverable.
	fail := func(err error) error {
		if serr := l.newSegment(); serr != nil {
			return l.poison(serr)
		}
		return err
	}

	st := NewState()
	segs, err := listSegments(l.fs, l.opts.Dir, l.gen)
	if err != nil {
		return fail(err)
	}
	for _, seg := range segs {
		data, err := l.fs.ReadFile(join(l.opts.Dir, seg.name))
		if err != nil {
			return fail(fmt.Errorf("ledger: compaction read: %w", err))
		}
		if _, tear := replaySegment(data, seg.gen, seg.idx, st.Apply); tear != nil {
			// A synced, live ledger must replay clean end to end.
			return fail(fmt.Errorf("ledger: compaction replay: %w", tear))
		}
	}
	preFold := len(st.CDRs)
	st.Finish()

	newGen := l.gen + 1
	w := &segWriter{l: l, gen: newGen, idx: 1}
	for _, snap := range buildSnapshots(st) {
		if err := w.append(&Record{Kind: KindSnapshot, Snap: snap}); err != nil {
			return fail(err)
		}
	}
	for i := range st.CDRs {
		if err := w.append(&st.CDRs[i]); err != nil {
			return fail(err)
		}
	}
	for i := range st.PoCs {
		if err := w.append(&st.PoCs[i]); err != nil {
			return fail(err)
		}
	}
	for i := range st.Chains {
		if err := w.append(&st.Chains[i]); err != nil {
			return fail(err)
		}
	}
	if err := w.finish(); err != nil {
		return fail(err)
	}
	if err := writeCurrent(l.fs, l.opts.Dir, newGen); err != nil {
		return fail(err)
	}
	// The switch is durable; the old generation is now debris. Removal
	// is best-effort — a leftover dead-generation segment is swept by
	// removeOrphans on the next open, and an unlink failure must not
	// fail a compaction whose switch already happened.
	for _, seg := range segs {
		_ = l.fs.Remove(join(l.opts.Dir, seg.name))
	}
	l.gen = newGen
	l.nextIdx = w.idx
	Metrics.Compactions.Inc()
	Metrics.CompactedRecords.Add(uint64(preFold - len(st.CDRs)))
	return l.newSegment()
}

// buildSnapshots chunks the settled portion of st into snapshot
// payloads, packing greedily under both snapChunk and snapBudget.
// The settled-cycle set spreads over as many leading chunks as it
// needs (State.Apply unions Settled across snapshots); entries are
// ordered by (cycle, subscriber) so compaction output is
// deterministic.
func buildSnapshots(st *State) []*Snapshot {
	keys := make([]UsageKey, 0, len(st.Usage))
	for k := range st.Usage {
		if st.Settled[k.Cycle] {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Cycle != keys[j].Cycle {
			return keys[i].Cycle < keys[j].Cycle
		}
		return keys[i].Subscriber < keys[j].Subscriber
	})
	settled := st.SettledCycles()
	if len(keys) == 0 && len(settled) == 0 {
		return nil
	}
	var snaps []*Snapshot
	cur := &Snapshot{}
	size := 0
	emit := func() {
		snaps = append(snaps, cur)
		cur = &Snapshot{}
		size = 0
	}
	for _, c := range settled {
		if size+8 > snapBudget {
			emit()
		}
		cur.Settled = append(cur.Settled, c)
		size += 8
	}
	for _, k := range keys {
		// Encoded SnapEntry size per appendRecord: cycle + sublen +
		// subscriber + UL + DL + records.
		esz := 8 + 4 + len(k.Subscriber) + 8 + 8 + 4
		if len(cur.Entries) >= snapChunk || size+esz > snapBudget {
			emit()
		}
		agg := st.Usage[k]
		cur.Entries = append(cur.Entries, SnapEntry{
			Cycle:      k.Cycle,
			Subscriber: k.Subscriber,
			UL:         agg.UL,
			DL:         agg.DL,
			Records:    agg.Records,
		})
		size += esz
	}
	if len(cur.Settled) > 0 || len(cur.Entries) > 0 || len(snaps) == 0 {
		snaps = append(snaps, cur)
	}
	return snaps
}

// segWriter writes a fresh generation's segments with rotation, each
// synced and closed before the next begins.
type segWriter struct {
	l       *Ledger
	gen     uint64
	idx     uint64 // next segment index to create
	cur     File
	size    int
	payload []byte
	buf     []byte
}

// ensure opens the next segment file if none is active.
func (w *segWriter) ensure() error {
	if w.cur != nil {
		return nil
	}
	name := segName(w.gen, w.idx)
	f, err := w.l.fs.Create(join(w.l.opts.Dir, name))
	if err != nil {
		return fmt.Errorf("ledger: compaction create: %w", err)
	}
	hdr := segmentHeader(w.gen, w.idx)
	if _, err := f.Write(hdr[:]); err != nil {
		_ = f.Close()
		return fmt.Errorf("ledger: compaction header: %w", err)
	}
	w.cur = f
	w.size = segHeader
	w.idx++
	return nil
}

func (w *segWriter) append(rec *Record) error {
	size := recordSize(rec)
	if size > MaxRecordBytes {
		return ErrRecordTooLarge
	}
	if w.cur != nil && w.size+frameHeader+size > w.l.opts.SegmentBytes {
		if err := w.closeCur(); err != nil {
			return err
		}
	}
	if err := w.ensure(); err != nil {
		return err
	}
	w.payload = appendRecord(w.payload[:0], rec)
	w.buf = appendFrame(w.buf[:0], w.payload)
	if _, err := w.cur.Write(w.buf); err != nil {
		_ = w.cur.Close()
		return fmt.Errorf("ledger: compaction write: %w", err)
	}
	w.size += len(w.buf)
	return nil
}

func (w *segWriter) closeCur() error {
	if err := w.cur.Sync(); err != nil {
		_ = w.cur.Close()
		return fmt.Errorf("ledger: compaction sync: %w", err)
	}
	if err := w.cur.Close(); err != nil {
		return fmt.Errorf("ledger: compaction close: %w", err)
	}
	w.cur = nil
	return nil
}

func (w *segWriter) finish() error {
	// An empty generation still gets one header-only segment so the
	// directory names the generation; replay of it yields nothing.
	if w.cur == nil && w.idx == 1 {
		if err := w.ensure(); err != nil {
			return err
		}
	}
	if w.cur != nil {
		return w.closeCur()
	}
	return nil
}
