package ledger

import "testing"

// TestZeroAllocAppendEncode guards the hot encode path: once the
// ledger's reused buffers are warm, framing a record must not
// allocate — the group-commit batch loop runs once per settled
// session and must not feed the GC. (Skips itself under -race, whose
// instrumentation perturbs the counts; verify.sh runs the allocs
// stage without -race.)
func TestZeroAllocAppendEncode(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are perturbed by the race detector")
	}
	rec := Record{
		Kind:       KindCDR,
		Cycle:      9,
		At:         123456789,
		Subscriber: "imsi-042",
		Seq:        7,
		ChargingID: 99,
		TimeUsage:  1000,
		UL:         4096,
		DL:         16384,
	}
	payload := make([]byte, 0, 256)
	buf := make([]byte, 0, 256)
	allocs := testing.AllocsPerRun(1000, func() {
		payload = appendRecord(payload[:0], &rec)
		buf = appendFrame(buf[:0], payload)
	})
	if allocs != 0 {
		t.Fatalf("record encode path allocates %.1f per op, want 0", allocs)
	}
}

// TestZeroAllocAppendSteadyState drives the full Append path against
// a MemFS whose file storage is pre-grown: after warm-up the only
// allocations allowed are the MemFS content append's amortized
// growth, which pre-growing eliminates.
func TestZeroAllocAppendSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are perturbed by the race detector")
	}
	fsys := NewMemFS()
	l, err := Open(Options{Dir: "led", FS: fsys, SegmentBytes: 1 << 30, SyncEvery: 16}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Pre-grow the in-memory segment so content append never
	// reallocates during the measured window.
	fsys.mu.Lock()
	f := fsys.files[join("led", segName(1, 1))]
	grown := make([]byte, len(f.content), 64<<20)
	copy(grown, f.content)
	f.content = grown
	fsys.mu.Unlock()

	rec := Record{Kind: KindCDR, Cycle: 1, Subscriber: "imsi-001", UL: 1, DL: 2}
	// Warm the encode buffers.
	for i := 0; i < 32; i++ {
		if err := l.Append(&rec); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(1000, func() {
		if err := l.Append(&rec); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state Append allocates %.1f per op, want 0", allocs)
	}
}
