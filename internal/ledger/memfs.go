package ledger

import (
	"errors"
	"io/fs"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// MemFS is an in-memory FS that models the OS page cache: writes land
// in volatile content, Sync advances the durable watermark, and
// Crash() throws away everything past it. It is the substrate for the
// torture suite and for the deterministic simulation (the testbed
// cannot touch the real disk — that would break replay and the
// simtime discipline).
//
// All methods are mutex-guarded so concurrent-append torture tests
// run clean under -race.
type MemFS struct {
	mu    sync.Mutex
	files map[string]*memFile
	dirs  map[string]bool

	// FailAfter, when > 0, arms the torture failpoint: after that
	// many more content bytes are written across all files, the
	// write tears (a prefix of the last write may land) and every
	// subsequent write or sync returns ErrInjected.
	failAfter int64
	failed    bool
}

// ErrInjected is returned by writes/syncs after the armed failpoint
// trips.
var ErrInjected = errors.New("ledger: injected write failure")

type memFile struct {
	content []byte
	durable int // bytes guaranteed to survive Crash
}

// NewMemFS returns an empty in-memory filesystem.
func NewMemFS() *MemFS {
	return &MemFS{files: make(map[string]*memFile), dirs: make(map[string]bool)}
}

// FailAfterBytes arms the failpoint: the next n content bytes written
// (across all files) succeed, then writes tear and error. n counts
// bytes, so a sweep over n exercises every possible torn-write
// boundary. Passing n < 0 disarms.
func (m *MemFS) FailAfterBytes(n int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.failAfter = n
	m.failed = n == 0
}

// Crash simulates machine death: every file loses content beyond its
// durable watermark. The failpoint is disarmed — the "reboot" writes
// normally.
func (m *MemFS) Crash() {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, f := range m.files {
		f.content = f.content[:f.durable]
	}
	m.failAfter = 0
	m.failed = false
}

type memHandle struct {
	fs   *MemFS
	name string
}

func (h memHandle) Write(p []byte) (int, error) {
	m := h.fs
	m.mu.Lock()
	defer m.mu.Unlock()
	f := m.files[h.name]
	if f == nil {
		return 0, fs.ErrClosed
	}
	if m.failed {
		return 0, ErrInjected
	}
	if m.failAfter > 0 {
		if int64(len(p)) >= m.failAfter {
			// Tear: a prefix lands in the page cache, then the
			// device "dies" for all subsequent IO.
			torn := int(m.failAfter)
			f.content = append(f.content, p[:torn]...)
			m.failAfter = 0
			m.failed = true
			return torn, ErrInjected
		}
		m.failAfter -= int64(len(p))
	}
	f.content = append(f.content, p...)
	return len(p), nil
}

func (h memHandle) Sync() error {
	m := h.fs
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.failed {
		return ErrInjected
	}
	f := m.files[h.name]
	if f == nil {
		return fs.ErrClosed
	}
	f.durable = len(f.content)
	return nil
}

func (h memHandle) Close() error { return nil }

// Create implements FS. The created file starts empty and fully
// volatile (durable = 0) until the first Sync.
func (m *MemFS) Create(name string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.failed {
		return nil, ErrInjected
	}
	m.files[name] = &memFile{}
	return memHandle{fs: m, name: name}, nil
}

// ReadFile implements FS. Reads observe the page cache (volatile
// content), exactly like a reader on a live machine.
func (m *MemFS) ReadFile(name string) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f := m.files[name]
	if f == nil {
		return nil, &fs.PathError{Op: "open", Path: name, Err: fs.ErrNotExist}
	}
	return append([]byte(nil), f.content...), nil
}

// ReadDir implements FS.
func (m *MemFS) ReadDir(dir string) ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.dirs[dir] {
		return nil, &fs.PathError{Op: "readdir", Path: dir, Err: fs.ErrNotExist}
	}
	var names []string
	prefix := dir + string(filepath.Separator)
	for name := range m.files {
		if strings.HasPrefix(name, prefix) && !strings.ContainsRune(name[len(prefix):], filepath.Separator) {
			names = append(names, name[len(prefix):])
		}
	}
	sort.Strings(names)
	return names, nil
}

// Rename implements FS. Metadata operations are modeled as durable
// immediately (journaled-metadata filesystem semantics); the data they
// point at keeps its own watermark.
func (m *MemFS) Rename(oldname, newname string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	f := m.files[oldname]
	if f == nil {
		return &fs.PathError{Op: "rename", Path: oldname, Err: fs.ErrNotExist}
	}
	delete(m.files, oldname)
	m.files[newname] = f
	return nil
}

// Remove implements FS.
func (m *MemFS) Remove(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.files[name] == nil {
		return &fs.PathError{Op: "remove", Path: name, Err: fs.ErrNotExist}
	}
	delete(m.files, name)
	return nil
}

// MkdirAll implements FS.
func (m *MemFS) MkdirAll(dir string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.dirs[dir] = true
	return nil
}

var _ FS = (*MemFS)(nil)
