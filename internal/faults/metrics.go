package faults

import "tlc/internal/metrics"

// Injection counters, one series per fault family. Packet-path
// injectors (NetFaults) run inside the simulation hot loop, so they
// keep their existing plain counters and delta-flush here at run
// boundaries via PublishMetrics — the same pattern as sim and netem,
// chosen so parallel sweep workers never contend on these cache
// lines mid-run. Stream-path injectors (Conn) fire on live
// connections where a cycle-end flush would be too late, and fault
// hits are rare relative to packets, so they publish inline.
var (
	mDrop     = metrics.Default.Counter(`faults_injected_total{family="drop"}`, "fault injections by family")
	mDup      = metrics.Default.Counter(`faults_injected_total{family="dup"}`, "fault injections by family")
	mSpike    = metrics.Default.Counter(`faults_injected_total{family="spike"}`, "fault injections by family")
	mHold     = metrics.Default.Counter(`faults_injected_total{family="hold"}`, "fault injections by family")
	mCorrupt  = metrics.Default.Counter(`faults_injected_total{family="corrupt"}`, "fault injections by family")
	mTruncate = metrics.Default.Counter(`faults_injected_total{family="truncate"}`, "fault injections by family")
	mStall    = metrics.Default.Counter(`faults_injected_total{family="stall"}`, "fault injections by family")
)

// PublishMetrics folds this injector's packet-fault counters into the
// process-wide registry. Call once per injector, after its simulation
// run completes; later calls are no-ops.
func (nf *NetFaults) PublishMetrics() {
	if nf == nil || nf.published {
		return
	}
	nf.published = true
	mDrop.Add(nf.Drops)
	mDup.Add(nf.Dups)
	mSpike.Add(nf.Spikes)
	mHold.Add(nf.Holds)
}
