package faults

import (
	"fmt"

	"tlc/internal/sim"
)

// traceKeep is how many trace lines are kept verbatim by default;
// beyond that only the rolling hash and count advance, so arbitrarily
// long runs stay comparable at constant memory.
const traceKeep = 512

// Trace is an append-only log of injected faults. Two runs of the
// same (seed, Spec) pair must produce identical traces — Summary()
// folds every line (kept or not) into an FNV-1a hash so the
// determinism pin is exact regardless of length. A nil *Trace is
// valid and records nothing.
type Trace struct {
	// Keep overrides how many lines are stored verbatim (default
	// traceKeep). Set before the first Addf.
	Keep int

	entries []string
	n       uint64
	hash    uint64
}

// Addf records one fault event stamped with the simulated time.
func (t *Trace) Addf(now sim.Time, format string, args ...any) {
	if t == nil {
		return
	}
	line := now.String() + " " + fmt.Sprintf(format, args...)
	if t.hash == 0 {
		t.hash = 14695981039346656037 // FNV-1a offset basis
	}
	for i := 0; i < len(line); i++ {
		t.hash ^= uint64(line[i])
		t.hash *= 1099511628211
	}
	t.hash ^= '\n'
	t.hash *= 1099511628211
	keep := t.Keep
	if keep <= 0 {
		keep = traceKeep
	}
	if len(t.entries) < keep {
		t.entries = append(t.entries, line)
	}
	t.n++
}

// Len returns how many events were recorded (including ones beyond
// the verbatim window).
func (t *Trace) Len() int {
	if t == nil {
		return 0
	}
	return int(t.n)
}

// Hash returns the rolling FNV-1a hash over every recorded line.
func (t *Trace) Hash() uint64 {
	if t == nil {
		return 0
	}
	return t.hash
}

// Entries returns the verbatim-kept prefix of the trace.
func (t *Trace) Entries() []string {
	if t == nil {
		return nil
	}
	return t.entries
}

// Summary is the one-line determinism pin: equal traces — of any
// length — summarise identically, unequal ones differ.
func (t *Trace) Summary() string {
	return fmt.Sprintf("entries=%d hash=%016x", t.Len(), t.Hash())
}
