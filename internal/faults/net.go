package faults

import (
	"math"

	"tlc/internal/netem"
	"tlc/internal/sim"
)

// maxBurst caps a single loss burst so a pathological geometric draw
// cannot black-hole a whole cycle.
const maxBurst = 1024

// NetFaults implements netem.FaultInjector: seeded burst loss,
// duplication, reordering and delay spikes, drawn per packet in a
// fixed order so a (seed, Spec) pair replays identically. One
// NetFaults instance serves exactly one link (it owns per-link burst
// state and its RNG fork).
type NetFaults struct {
	spec  Spec
	rng   *sim.RNG
	trace *Trace
	label string

	burstLeft int // packets still to drop in the current burst
	published bool

	// Counters mirror the link's fault stats but survive link resets
	// and carry the injector's own view for traces/metrics.
	Drops  uint64
	Dups   uint64
	Holds  uint64 // reorder holds
	Spikes uint64
}

// NewNetFaults builds an injector for one link. rng must be a
// dedicated fork; trace may be nil; label names the link in trace
// lines.
func NewNetFaults(spec Spec, rng *sim.RNG, trace *Trace, label string) *NetFaults {
	return &NetFaults{spec: spec.WithDefaults(), rng: rng, trace: trace, label: label}
}

// Apply implements netem.FaultInjector. Draw order is fixed —
// burst-entry, duplicate, spike, reorder — and every branch either
// draws exactly its own randomness or none (Bernoulli consumes no
// draw for p<=0), so enabling one fault family never shifts another
// family's stream.
func (nf *NetFaults) Apply(pkt *netem.Packet, now sim.Time) netem.FaultAction {
	var act netem.FaultAction

	if nf.burstLeft > 0 {
		nf.burstLeft--
		nf.Drops++
		act.Drop = true
		return act
	}
	if nf.rng.Bernoulli(nf.spec.BurstP) {
		// Entered a burst: this packet drops, and a geometric tail
		// with mean BurstLen-1 extra packets follows.
		nf.burstLeft = nf.geometricTail()
		nf.Drops++
		nf.trace.Addf(now, "%s burst drop id=%d len=%d", nf.label, pkt.ID, nf.burstLeft+1)
		act.Drop = true
		return act
	}

	if nf.rng.Bernoulli(nf.spec.DupP) {
		nf.Dups++
		nf.trace.Addf(now, "%s dup id=%d", nf.label, pkt.ID)
		act.Duplicate = true
	}

	if nf.rng.Bernoulli(nf.spec.SpikeP) {
		nf.Spikes++
		nf.trace.Addf(now, "%s spike id=%d +%s", nf.label, pkt.ID, nf.spec.SpikeDelay)
		act.ExtraDelay = nf.spec.SpikeDelay
	} else if nf.rng.Bernoulli(nf.spec.ReorderP) {
		nf.Holds++
		nf.trace.Addf(now, "%s hold id=%d +%s", nf.label, pkt.ID, nf.spec.ReorderDelay)
		act.ExtraDelay = nf.spec.ReorderDelay
	}
	return act
}

// geometricTail draws the number of additional packets lost after a
// burst begins: geometric with mean BurstLen-1, capped at maxBurst.
func (nf *NetFaults) geometricTail() int {
	mean := nf.spec.BurstLen - 1
	if mean <= 0 {
		return 0
	}
	// Inverse-CDF geometric: floor(ln(U)/ln(1-1/mean-ish)). Using the
	// continuous exponential keeps it one draw.
	u := nf.rng.Float64()
	if u <= 0 {
		u = math.SmallestNonzeroFloat64
	}
	n := int(-math.Log(u) * mean)
	if n > maxBurst {
		n = maxBurst
	}
	return n
}
