package faults

import (
	"bytes"
	"io"
	"strings"
	"testing"
	"time"

	"tlc/internal/netem"
	"tlc/internal/sim"
)

func TestParseStringRoundTrip(t *testing.T) {
	in := "burst=0.02,burstlen=6,byz=replay,cdr-loss=2s,corrupt=0.01,dup=0.005,ofcs-crash=20s,ofcs-down=5s,reorder=0.01,reorderdelay=20ms,spgw-restart=40s,spike=0.002,spikedelay=200ms,stall=0.01,stallfor=50ms,truncate=0.003"
	spec, err := Parse(in)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if got := spec.String(); got != in {
		t.Fatalf("round trip:\n in  %s\n out %s", in, got)
	}
	re, err := Parse(spec.String())
	if err != nil {
		t.Fatalf("re-Parse: %v", err)
	}
	if re != spec {
		t.Fatalf("re-parsed spec differs: %+v vs %+v", re, spec)
	}
}

func TestParseRejects(t *testing.T) {
	for _, bad := range []string{
		"nope=1", "burst", "burst=-0.1", "burst=1.5", "byz=evil",
		"ofcs-crash=xyz", "ofcs-crash=-2s",
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) = nil error, want failure", bad)
		}
	}
	spec, err := Parse("")
	if err != nil || !spec.Zero() {
		t.Fatalf("empty spec: %+v, %v", spec, err)
	}
}

func TestSpecPredicates(t *testing.T) {
	if !(Spec{}).Zero() {
		t.Fatal("zero Spec not Zero()")
	}
	if !(Spec{BurstP: 0.1}).NetworkActive() {
		t.Fatal("burst not NetworkActive")
	}
	if !(Spec{OFCSCrashAt: time.Second}).ComponentActive() {
		t.Fatal("crash not ComponentActive")
	}
	if !(Spec{CorruptP: 0.1}).StreamActive() {
		t.Fatal("corrupt not StreamActive")
	}
	if (Spec{Byzantine: "replay"}).Zero() {
		t.Fatal("byz Spec reported Zero()")
	}
}

// TestNetFaultsDeterministic replays the same seeded injector over the
// same packet stream twice and requires identical actions, counters
// and trace summaries.
func TestNetFaultsDeterministic(t *testing.T) {
	spec := Spec{BurstP: 0.05, BurstLen: 4, DupP: 0.03, ReorderP: 0.05, SpikeP: 0.01}
	run := func() (string, []netem.FaultAction, uint64) {
		tr := &Trace{}
		nf := NewNetFaults(spec, sim.NewRNG(7), tr, "lnk")
		var acts []netem.FaultAction
		pkt := &netem.Packet{Size: 1200}
		for i := 0; i < 5000; i++ {
			pkt.ID = uint64(i)
			acts = append(acts, nf.Apply(pkt, sim.Time(i)))
		}
		return tr.Summary(), acts, nf.Drops + nf.Dups + nf.Holds + nf.Spikes
	}
	s1, a1, n1 := run()
	s2, a2, n2 := run()
	if s1 != s2 || n1 != n2 {
		t.Fatalf("trace diverged: %s (%d) vs %s (%d)", s1, n1, s2, n2)
	}
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatalf("action %d diverged: %+v vs %+v", i, a1[i], a2[i])
		}
	}
	if n1 == 0 {
		t.Fatal("no faults fired at these probabilities over 5000 packets")
	}
}

// TestNetFaultsFamilyIsolation: enabling only one family must not
// consume draws for the others — disabling duplication leaves the
// burst pattern untouched.
func TestNetFaultsFamilyIsolation(t *testing.T) {
	drops := func(spec Spec) []int {
		nf := NewNetFaults(spec, sim.NewRNG(11), nil, "lnk")
		var out []int
		pkt := &netem.Packet{Size: 100}
		for i := 0; i < 3000; i++ {
			pkt.ID = uint64(i)
			if nf.Apply(pkt, 0).Drop {
				out = append(out, i)
			}
		}
		return out
	}
	a := drops(Spec{BurstP: 0.02, BurstLen: 3})
	b := drops(Spec{BurstP: 0.02, BurstLen: 3, DupP: 0, ReorderP: 0, SpikeP: 0})
	if len(a) == 0 {
		t.Fatal("no drops")
	}
	if len(a) != len(b) {
		t.Fatalf("drop schedule changed: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("drop %d moved: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestTraceSummaryAndCap(t *testing.T) {
	a, b := &Trace{Keep: 4}, &Trace{Keep: 4}
	for i := 0; i < 10; i++ {
		a.Addf(sim.Time(i), "ev %d", i)
		b.Addf(sim.Time(i), "ev %d", i)
	}
	if a.Summary() != b.Summary() {
		t.Fatalf("equal traces summarize differently: %s vs %s", a.Summary(), b.Summary())
	}
	if len(a.Entries()) != 4 || a.Len() != 10 {
		t.Fatalf("keep window wrong: %d entries, len %d", len(a.Entries()), a.Len())
	}
	b.Addf(0, "extra")
	if a.Summary() == b.Summary() {
		t.Fatal("hash failed to distinguish a beyond-window divergence")
	}
	var nilT *Trace
	nilT.Addf(0, "ignored")
	if nilT.Len() != 0 || nilT.Summary() != "entries=0 hash=0000000000000000" {
		t.Fatalf("nil trace misbehaved: %s", nilT.Summary())
	}
}

func TestConnCorruptsReads(t *testing.T) {
	payload := bytes.Repeat([]byte{0xaa}, 256)
	c := &Conn{
		Inner: struct{ io.ReadWriter }{bytes.NewBuffer(append([]byte(nil), payload...))},
		Spec:  Spec{CorruptP: 1},
		RNG:   sim.NewRNG(3),
	}
	buf := make([]byte, len(payload))
	n, err := io.ReadFull(c, buf)
	if err != nil || n != len(payload) {
		t.Fatalf("read: %d, %v", n, err)
	}
	if bytes.Equal(buf, payload) {
		t.Fatal("CorruptP=1 read came back clean")
	}
	if c.Corrupted == 0 {
		t.Fatal("corruption counter stayed zero")
	}
}

type closeRecorder struct {
	bytes.Buffer
	closed bool
}

func (c *closeRecorder) Close() error { c.closed = true; return nil }

func TestConnTruncatesAndCloses(t *testing.T) {
	rec := &closeRecorder{}
	c := &Conn{Inner: rec, Spec: Spec{TruncateP: 1}, RNG: sim.NewRNG(5), Trace: &Trace{}}
	msg := []byte("0123456789abcdef")
	n, err := c.Write(msg)
	if err == nil || !strings.Contains(err.Error(), "truncated") {
		t.Fatalf("want truncate error, got %v", err)
	}
	if n != len(msg)/2 || rec.Len() != len(msg)/2 {
		t.Fatalf("wrote %d (buffer %d), want %d", n, rec.Len(), len(msg)/2)
	}
	if !rec.closed {
		t.Fatal("transport not closed after truncation")
	}
	if c.Trace.Len() == 0 {
		t.Fatal("truncation left no trace")
	}
}

func TestConnStallInjectable(t *testing.T) {
	var stalled time.Duration
	c := &Conn{
		Inner: &bytes.Buffer{},
		Spec:  Spec{StallP: 1, StallFor: 30 * time.Millisecond},
		RNG:   sim.NewRNG(9),
		Stall: func(d time.Duration) { stalled += d },
	}
	if _, err := c.Write([]byte("x")); err != nil {
		t.Fatalf("write: %v", err)
	}
	if stalled != 30*time.Millisecond || c.Stalls != 1 {
		t.Fatalf("stall not recorded: %s, count %d", stalled, c.Stalls)
	}
}

// TestConnZeroSpecPassthrough: a zero Spec must not consume RNG draws
// or perturb data.
func TestConnZeroSpecPassthrough(t *testing.T) {
	rng := sim.NewRNG(1)
	before := rng.Int63()
	rng = sim.NewRNG(1)
	buf := bytes.NewBufferString("hello")
	c := &Conn{Inner: buf, RNG: rng}
	out := make([]byte, 5)
	if _, err := io.ReadFull(c, out); err != nil || string(out) != "hello" {
		t.Fatalf("read: %q, %v", out, err)
	}
	if _, err := c.Write([]byte("world")); err != nil {
		t.Fatalf("write: %v", err)
	}
	if got := rng.Int63(); got != before {
		t.Fatalf("zero spec consumed RNG draws: %d vs %d", got, before)
	}
}
