// Package faults is the deterministic fault-injection subsystem: a
// seeded description of network, component and adversarial faults
// that composes with the internal/sim scheduler. Every random choice
// is drawn from a sim.RNG fork, so one (seed, Spec) pair replays the
// exact same fault schedule — byte-identical traces and metrics — on
// every run and at any sweep worker count.
//
// Three fault families (see DESIGN.md's fault matrix):
//
//   - network: burst loss, duplication, reordering and delay spikes
//     applied per packet on a netem.Link (NetFaults), plus a
//     corrupting/truncating/stalling stream wrapper for the
//     negotiation transport (Conn);
//   - component: OFCS crash/restart with a CDR loss window and SPGW
//     meter restart mid-cycle (scheduled by the experiment testbed
//     from the same Spec);
//   - adversarial: a byzantine negotiation peer (protocol.Byzantine)
//     driven by the byz mode named here.
package faults

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Spec describes one fault plan. The zero value injects nothing; a
// Spec parses from and renders to the canonical key=value flag string
// understood by cmd/tlcd's -faults flag.
type Spec struct {
	// Network faults, applied per packet on an injected link.

	// BurstP is the per-packet probability of entering a loss burst;
	// BurstLen is the mean burst length in packets (geometric).
	BurstP   float64
	BurstLen float64
	// DupP duplicates a packet with this probability.
	DupP float64
	// ReorderP holds a packet back by ReorderDelay so it overtakes
	// nothing but is overtaken by its successors.
	ReorderP     float64
	ReorderDelay time.Duration
	// SpikeP adds a SpikeDelay latency spike to a packet.
	SpikeP     float64
	SpikeDelay time.Duration

	// Component faults, scheduled on the cycle's simulated clock.

	// OFCSCrashAt crashes the charging collector at this cycle time
	// (zero = never); records collected within the trailing
	// CDRLossWindow are lost, and the OFCS stays down for
	// OFCSDowntime before restarting.
	OFCSCrashAt   time.Duration
	OFCSDowntime  time.Duration
	CDRLossWindow time.Duration
	// SPGWRestartAt restarts the gateway's in-memory meters at this
	// cycle time (zero = never), losing un-flushed usage.
	SPGWRestartAt time.Duration

	// Adversarial faults.

	// Byzantine names the peer misbehaviour mode: "inflate", "replay"
	// or "tamper" (see protocol.Byzantine). Empty = honest peer.
	Byzantine string

	// Stream faults, applied by the Conn wrapper on the negotiation
	// transport.

	// CorruptP flips one byte per read with this probability.
	CorruptP float64
	// TruncateP abandons a write halfway and closes the transport.
	TruncateP float64
	// StallP stalls a write for StallFor before it proceeds.
	StallP   float64
	StallFor time.Duration
}

// Defaults for the secondary knobs when their primary probability or
// schedule is set.
const (
	DefaultBurstLen      = 8.0
	DefaultReorderDelay  = 20 * time.Millisecond
	DefaultSpikeDelay    = 200 * time.Millisecond
	DefaultOFCSDowntime  = 5 * time.Second
	DefaultCDRLossWindow = 2 * time.Second
	DefaultStallFor      = 50 * time.Millisecond
)

// WithDefaults returns the spec with unset secondary knobs filled in.
func (s Spec) WithDefaults() Spec {
	if s.BurstLen <= 0 {
		s.BurstLen = DefaultBurstLen
	}
	if s.ReorderDelay <= 0 {
		s.ReorderDelay = DefaultReorderDelay
	}
	if s.SpikeDelay <= 0 {
		s.SpikeDelay = DefaultSpikeDelay
	}
	if s.OFCSDowntime <= 0 {
		s.OFCSDowntime = DefaultOFCSDowntime
	}
	if s.CDRLossWindow <= 0 {
		s.CDRLossWindow = DefaultCDRLossWindow
	}
	if s.StallFor <= 0 {
		s.StallFor = DefaultStallFor
	}
	return s
}

// NetworkActive reports whether any per-packet link fault is enabled.
func (s Spec) NetworkActive() bool {
	return s.BurstP > 0 || s.DupP > 0 || s.ReorderP > 0 || s.SpikeP > 0
}

// ComponentActive reports whether any EPC component fault is
// scheduled.
func (s Spec) ComponentActive() bool {
	return s.OFCSCrashAt > 0 || s.SPGWRestartAt > 0
}

// StreamActive reports whether any stream-wrapper fault is enabled.
func (s Spec) StreamActive() bool {
	return s.CorruptP > 0 || s.TruncateP > 0 || s.StallP > 0
}

// Zero reports whether the spec injects nothing at all.
func (s Spec) Zero() bool {
	return !s.NetworkActive() && !s.ComponentActive() && !s.StreamActive() && s.Byzantine == ""
}

// ByzModes are the accepted Byzantine mode names (defined with the
// peer implementation in internal/protocol).
var ByzModes = []string{"inflate", "replay", "tamper"}

// Parse builds a Spec from the comma-separated key=value flag syntax,
// e.g. "burst=0.01,dup=0.005,ofcs-crash=20s,byz=replay". Probability
// keys take a value in [0,1]; schedule keys take a Go duration.
func Parse(s string) (Spec, error) {
	var out Spec
	s = strings.TrimSpace(s)
	if s == "" {
		return out, nil
	}
	probs := map[string]*float64{
		"burst":    &out.BurstP,
		"burstlen": &out.BurstLen, // mean packets, not a probability
		"dup":      &out.DupP,
		"reorder":  &out.ReorderP,
		"spike":    &out.SpikeP,
		"corrupt":  &out.CorruptP,
		"truncate": &out.TruncateP,
		"stall":    &out.StallP,
	}
	durs := map[string]*time.Duration{
		"reorderdelay": &out.ReorderDelay,
		"spikedelay":   &out.SpikeDelay,
		"ofcs-crash":   &out.OFCSCrashAt,
		"ofcs-down":    &out.OFCSDowntime,
		"cdr-loss":     &out.CDRLossWindow,
		"spgw-restart": &out.SPGWRestartAt,
		"stallfor":     &out.StallFor,
	}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		key, val, ok := strings.Cut(part, "=")
		if !ok {
			return Spec{}, fmt.Errorf("faults: %q is not key=value", part)
		}
		key = strings.TrimSpace(key)
		val = strings.TrimSpace(val)
		switch {
		case key == "byz":
			valid := false
			for _, m := range ByzModes {
				if val == m {
					valid = true
				}
			}
			if !valid {
				return Spec{}, fmt.Errorf("faults: byz mode %q (want one of %s)",
					val, strings.Join(ByzModes, "/"))
			}
			out.Byzantine = val
		case probs[key] != nil:
			f, err := strconv.ParseFloat(val, 64)
			if err != nil || f < 0 {
				return Spec{}, fmt.Errorf("faults: %s=%q is not a non-negative number", key, val)
			}
			if key != "burstlen" && f > 1 {
				return Spec{}, fmt.Errorf("faults: %s=%q exceeds probability 1", key, val)
			}
			*probs[key] = f
		case durs[key] != nil:
			d, err := time.ParseDuration(val)
			if err != nil || d < 0 {
				return Spec{}, fmt.Errorf("faults: %s=%q is not a non-negative duration", key, val)
			}
			*durs[key] = d
		default:
			return Spec{}, fmt.Errorf("faults: unknown key %q", key)
		}
	}
	return out, nil
}

// String renders the spec back to the canonical flag syntax: only
// non-zero fields, keys sorted, so equal specs render identically.
func (s Spec) String() string {
	parts := map[string]string{}
	addF := func(key string, v float64) {
		if v > 0 {
			parts[key] = strconv.FormatFloat(v, 'g', -1, 64)
		}
	}
	addD := func(key string, v time.Duration) {
		if v > 0 {
			parts[key] = v.String()
		}
	}
	addF("burst", s.BurstP)
	addF("burstlen", s.BurstLen)
	addF("dup", s.DupP)
	addF("reorder", s.ReorderP)
	addD("reorderdelay", s.ReorderDelay)
	addF("spike", s.SpikeP)
	addD("spikedelay", s.SpikeDelay)
	addD("ofcs-crash", s.OFCSCrashAt)
	addD("ofcs-down", s.OFCSDowntime)
	addD("cdr-loss", s.CDRLossWindow)
	addD("spgw-restart", s.SPGWRestartAt)
	addF("corrupt", s.CorruptP)
	addF("truncate", s.TruncateP)
	addF("stall", s.StallP)
	addD("stallfor", s.StallFor)
	if s.Byzantine != "" {
		parts["byz"] = s.Byzantine
	}
	keys := make([]string, 0, len(parts))
	for k := range parts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(parts[k])
	}
	return b.String()
}
