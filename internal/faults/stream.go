package faults

import (
	"errors"
	"fmt"
	"io"
	"time"

	"tlc/internal/sim"
)

// ErrTruncatedWrite is returned by Conn.Write when the truncate fault
// fires: only part of the buffer went out and the transport was
// closed underneath the peer.
var ErrTruncatedWrite = errors.New("faults: write truncated by injected fault")

// Conn wraps the negotiation stream with seeded corruption, write
// truncation and write stalls — the stream-path half of the network
// fault family. It corrupts what the *local* side reads, which models
// on-the-wire damage without needing to own both endpoints.
//
// Stall is injectable so internal/ code stays tlcvet-clean: tests
// pass a recorder; cmd/tlcd passes time.Sleep. A nil Stall records
// the stall in the trace and moves on.
type Conn struct {
	Inner io.ReadWriter
	Spec  Spec
	RNG   *sim.RNG
	Trace *Trace
	Stall func(time.Duration)

	// Counters for assertions and metrics.
	Corrupted uint64
	Truncated uint64
	Stalls    uint64
}

// Read reads from the wrapped stream, flipping one byte with
// probability CorruptP per successful read.
func (c *Conn) Read(p []byte) (int, error) {
	n, err := c.Inner.Read(p)
	if n > 0 && c.RNG.Bernoulli(c.Spec.CorruptP) {
		i := 0
		if n > 1 {
			i = c.RNG.Intn(n)
		}
		p[i] ^= 0xff
		c.Corrupted++
		//tlcvet:allow metricstier — Conn wraps live net.Conn streams outside any sim run; there is no run boundary to flush at
		mCorrupt.Inc()
		c.Trace.Addf(0, "stream corrupt byte %d of %d", i, n)
	}
	return n, err
}

// Write writes to the wrapped stream. A stall fault delays the write;
// a truncate fault writes only the first half, closes the transport
// if it can, and returns ErrTruncatedWrite.
func (c *Conn) Write(p []byte) (int, error) {
	if c.RNG.Bernoulli(c.Spec.StallP) {
		c.Stalls++
		//tlcvet:allow metricstier — live stream path (see Read); counts must be visible while the connection is still open
		mStall.Inc()
		d := c.Spec.StallFor
		if d <= 0 {
			d = DefaultStallFor
		}
		c.Trace.Addf(0, "stream stall %s", d)
		if c.Stall != nil {
			c.Stall(d)
		}
	}
	if len(p) > 1 && c.RNG.Bernoulli(c.Spec.TruncateP) {
		c.Truncated++
		//tlcvet:allow metricstier — live stream path (see Read); counts must be visible while the connection is still open
		mTruncate.Inc()
		half := len(p) / 2
		c.Trace.Addf(0, "stream truncate %d of %d bytes", half, len(p))
		n, err := c.Inner.Write(p[:half])
		if closer, ok := c.Inner.(io.Closer); ok {
			_ = closer.Close() // the fault's point is a dead transport
		}
		if err != nil {
			return n, err
		}
		return n, fmt.Errorf("%w: wrote %d of %d", ErrTruncatedWrite, n, len(p))
	}
	return c.Inner.Write(p)
}

// Close closes the wrapped stream when it supports closing.
func (c *Conn) Close() error {
	if closer, ok := c.Inner.(io.Closer); ok {
		return closer.Close()
	}
	return nil
}
