package netem

import (
	"testing"
	"time"

	"tlc/internal/sim"
)

func newPkt(ids *IDGen, size int, qci uint8) *Packet {
	return &Packet{ID: ids.Next(), Flow: "f", Size: size, QCI: qci}
}

func TestInfiniteRateLinkIsPureDelay(t *testing.T) {
	s := sim.NewScheduler()
	ids := &IDGen{}
	var arrival sim.Time
	sink := NodeFunc(func(p *Packet) { arrival = s.Now() })
	l := NewLink("l", s, 0, 10*time.Millisecond, 0, sink)
	s.At(time.Second, func() { l.Recv(newPkt(ids, 1000, 9)) })
	s.Run()
	if arrival != time.Second+10*time.Millisecond {
		t.Fatalf("arrival = %v, want 1.01s", arrival)
	}
	if l.Stats.OutPackets != 1 || l.Stats.OutBytes != 1000 {
		t.Fatalf("stats = %+v", l.Stats)
	}
}

func TestLinkSerializationTime(t *testing.T) {
	s := sim.NewScheduler()
	ids := &IDGen{}
	var arrivals []sim.Time
	sink := NodeFunc(func(p *Packet) { arrivals = append(arrivals, s.Now()) })
	// 8 Mbps link: a 1000-byte packet takes 1ms to serialize.
	l := NewLink("l", s, 8e6, 0, 1<<20, sink)
	s.At(0, func() {
		l.Recv(newPkt(ids, 1000, 9))
		l.Recv(newPkt(ids, 1000, 9))
		l.Recv(newPkt(ids, 1000, 9))
	})
	s.Run()
	want := []sim.Time{time.Millisecond, 2 * time.Millisecond, 3 * time.Millisecond}
	if len(arrivals) != 3 {
		t.Fatalf("arrivals = %v", arrivals)
	}
	for i := range want {
		if arrivals[i] != want[i] {
			t.Fatalf("arrival[%d] = %v, want %v", i, arrivals[i], want[i])
		}
	}
}

func TestLinkQueueDropTail(t *testing.T) {
	s := sim.NewScheduler()
	ids := &IDGen{}
	var got int
	sink := NodeFunc(func(p *Packet) { got++ })
	// Queue holds 2000 bytes; one packet transmits immediately, so of
	// 5 x 1000B back-to-back sends, 1 transmits, 2 queue, 2 drop.
	l := NewLink("l", s, 8e6, 0, 2000, sink)
	s.At(0, func() {
		for i := 0; i < 5; i++ {
			l.Recv(newPkt(ids, 1000, 9))
		}
	})
	s.Run()
	if got != 3 {
		t.Fatalf("delivered %d packets, want 3", got)
	}
	if l.Stats.QueueDrops != 2 || l.Stats.QueueDropped != 2000 {
		t.Fatalf("queue drops = %+v", l.Stats)
	}
}

func TestLinkPriorityScheduling(t *testing.T) {
	s := sim.NewScheduler()
	ids := &IDGen{}
	var order []uint8
	sink := NodeFunc(func(p *Packet) { order = append(order, p.QCI) })
	l := NewLink("l", s, 8e6, 0, 1<<20, sink)
	s.At(0, func() {
		// First packet seizes the transmitter; the rest queue and
		// must be served in priority order (QCI 7 before QCI 9).
		l.Recv(newPkt(ids, 1000, 9))
		l.Recv(newPkt(ids, 1000, 9))
		l.Recv(newPkt(ids, 7, 7))
		l.Recv(newPkt(ids, 1000, 9))
		l.Recv(newPkt(ids, 7, 7))
	})
	s.Run()
	want := []uint8{9, 7, 7, 9, 9}
	if len(order) != len(want) {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestLinkPriorityEviction(t *testing.T) {
	s := sim.NewScheduler()
	ids := &IDGen{}
	var gotQCI []uint8
	sink := NodeFunc(func(p *Packet) { gotQCI = append(gotQCI, p.QCI) })
	l := NewLink("l", s, 8e6, 0, 2000, sink)
	s.At(0, func() {
		l.Recv(newPkt(ids, 1000, 9)) // transmitting
		l.Recv(newPkt(ids, 1000, 9)) // queued
		l.Recv(newPkt(ids, 1000, 9)) // queued (queue now full)
		l.Recv(newPkt(ids, 1000, 7)) // evicts a QCI 9 packet
	})
	s.Run()
	if l.Stats.QueueDrops != 1 {
		t.Fatalf("drops = %d, want 1", l.Stats.QueueDrops)
	}
	// Delivered: the transmitting 9, then priority 7, then one 9.
	want := []uint8{9, 7, 9}
	if len(gotQCI) != 3 {
		t.Fatalf("delivered = %v", gotQCI)
	}
	for i := range want {
		if gotQCI[i] != want[i] {
			t.Fatalf("delivered = %v, want %v", gotQCI, want)
		}
	}
}

func TestLinkHighPriorityCannotEvictEqualPriority(t *testing.T) {
	s := sim.NewScheduler()
	ids := &IDGen{}
	sink := &Sink{}
	l := NewLink("l", s, 8e6, 0, 1000, sink)
	s.At(0, func() {
		l.Recv(newPkt(ids, 1000, 7)) // transmitting
		l.Recv(newPkt(ids, 1000, 7)) // queued, fills queue
		l.Recv(newPkt(ids, 1000, 7)) // same priority: dropped
	})
	s.Run()
	if l.Stats.QueueDrops != 1 {
		t.Fatalf("drops = %d, want 1", l.Stats.QueueDrops)
	}
	if sink.Packets != 2 {
		t.Fatalf("delivered = %d, want 2", sink.Packets)
	}
}

func TestBernoulliLoss(t *testing.T) {
	rng := sim.NewRNG(5)
	always := &BernoulliLoss{P: 1, RNG: rng}
	never := &BernoulliLoss{P: 0, RNG: rng}
	if !always.Drop(nil, 0) || never.Drop(nil, 0) {
		t.Fatal("degenerate Bernoulli wrong")
	}
	half := &BernoulliLoss{P: 0.5, RNG: rng}
	drops := 0
	const n = 10000
	for i := 0; i < n; i++ {
		if half.Drop(nil, 0) {
			drops++
		}
	}
	if drops < 4700 || drops > 5300 {
		t.Fatalf("P=0.5 dropped %d/%d", drops, n)
	}
}

func TestLinkLossModelCounts(t *testing.T) {
	s := sim.NewScheduler()
	ids := &IDGen{}
	sink := &Sink{}
	l := NewLink("l", s, 0, 0, 0, sink)
	l.Loss = &BernoulliLoss{P: 1, RNG: sim.NewRNG(1)}
	s.At(0, func() { l.Recv(newPkt(ids, 500, 9)) })
	s.Run()
	if sink.Packets != 0 || l.Stats.LossDrops != 1 || l.Stats.LossDropped != 500 {
		t.Fatalf("loss accounting: sink=%d stats=%+v", sink.Packets, l.Stats)
	}
}

func TestLinkGateBuffersUntilOpen(t *testing.T) {
	s := sim.NewScheduler()
	ids := &IDGen{}
	var arrival sim.Time
	sink := NodeFunc(func(p *Packet) { arrival = s.Now() })
	open := false
	l := NewLink("l", s, 8e6, 0, 1<<20, sink)
	l.Gate = func(now sim.Time) bool { return open }
	s.At(0, func() { l.Recv(newPkt(ids, 1000, 9)) })
	s.At(500*time.Millisecond, func() { open = true; l.Kick() })
	s.Run()
	if arrival < 500*time.Millisecond {
		t.Fatalf("packet delivered at %v while gated", arrival)
	}
	if l.Stats.OutPackets != 1 {
		t.Fatalf("stats = %+v", l.Stats)
	}
}

func TestMeterCountsAndWindows(t *testing.T) {
	s := sim.NewScheduler()
	m := NewMeter("m", s, nil)
	s.At(50*time.Millisecond, func() { m.Recv(&Packet{Size: 100}) })
	s.At(250*time.Millisecond, func() { m.Recv(&Packet{Size: 200}) })
	s.At(1050*time.Millisecond, func() { m.Recv(&Packet{Size: 400}) })
	s.Run()
	if m.TotalBytes() != 700 || m.Packets() != 3 {
		t.Fatalf("totals = %d bytes %d pkts", m.TotalBytes(), m.Packets())
	}
	if got := m.BytesInWindow(0, time.Second); got != 300 {
		t.Fatalf("window [0,1s) = %v, want 300", got)
	}
	if got := m.BytesInWindow(time.Second, 2*time.Second); got != 400 {
		t.Fatalf("window [1s,2s) = %v, want 400", got)
	}
	if got := m.BytesInWindow(0, 2*time.Second); got != 700 {
		t.Fatalf("window [0,2s) = %v, want 700", got)
	}
}

func TestMeterPartialBinInterpolation(t *testing.T) {
	s := sim.NewScheduler()
	m := NewMeter("m", s, nil)
	s.At(0, func() { m.Recv(&Packet{Size: 1000}) }) // bin [0, 100ms)
	s.Run()
	// Half the first bin should attribute half the bytes.
	if got := m.BytesInWindow(0, 50*time.Millisecond); got != 500 {
		t.Fatalf("half-bin = %v, want 500", got)
	}
	if got := m.BytesInWindow(25*time.Millisecond, 75*time.Millisecond); got != 500 {
		t.Fatalf("middle half-bin = %v, want 500", got)
	}
}

func TestMeterEdgeCases(t *testing.T) {
	s := sim.NewScheduler()
	m := NewMeter("m", s, nil)
	if m.BytesInWindow(0, time.Second) != 0 {
		t.Fatal("empty meter nonzero")
	}
	s.At(0, func() { m.Recv(&Packet{Size: 100}) })
	s.Run()
	if m.BytesInWindow(time.Second, time.Second) != 0 {
		t.Fatal("empty window nonzero")
	}
	if m.BytesInWindow(2*time.Second, time.Second) != 0 {
		t.Fatal("inverted window nonzero")
	}
	if got := m.BytesInWindow(-time.Second, time.Second); got != 100 {
		t.Fatalf("negative start clamped = %v, want 100", got)
	}
}

func TestMeterSkipsBackgroundByDefault(t *testing.T) {
	s := sim.NewScheduler()
	m := NewMeter("m", s, nil)
	s.At(0, func() {
		m.Recv(&Packet{Size: 100, Background: true})
		m.Recv(&Packet{Size: 50})
	})
	s.Run()
	if m.TotalBytes() != 50 {
		t.Fatalf("TotalBytes = %d, want 50", m.TotalBytes())
	}
}

func TestMeterFilterAndForwarding(t *testing.T) {
	s := sim.NewScheduler()
	sink := &Sink{}
	m := NewMeter("m", s, sink)
	m.Filter = func(p *Packet) bool { return p.Flow == "keep" }
	s.At(0, func() {
		m.Recv(&Packet{Size: 10, Flow: "keep"})
		m.Recv(&Packet{Size: 20, Flow: "skip"})
	})
	s.Run()
	if m.TotalBytes() != 10 {
		t.Fatalf("filtered TotalBytes = %d", m.TotalBytes())
	}
	if sink.Packets != 2 {
		t.Fatalf("forwarded %d packets, want 2", sink.Packets)
	}
}

func TestMeterSeriesMB(t *testing.T) {
	s := sim.NewScheduler()
	m := NewMeter("m", s, nil)
	s.At(500*time.Millisecond, func() { m.Recv(&Packet{Size: 1e6}) })
	s.At(1500*time.Millisecond, func() { m.Recv(&Packet{Size: 2e6}) })
	s.Run()
	series := m.SeriesMB(time.Second, 2*time.Second)
	if len(series) != 2 || series[0] != 1 || series[1] != 2 {
		t.Fatalf("series = %v", series)
	}
}

func TestTrafficSourceRate(t *testing.T) {
	s := sim.NewScheduler()
	ids := &IDGen{}
	sink := &Sink{}
	src := &TrafficSource{
		Sched: s, IDs: ids, Dst: sink,
		Flow: "bg", RateBps: 8e6, PacketSize: 1000,
	}
	src.Start(0)
	s.RunUntil(time.Second)
	// 8 Mbps at 1000B packets = 1000 packets/s (one emitted at t=0).
	if sink.Packets < 990 || sink.Packets > 1010 {
		t.Fatalf("packets in 1s = %d, want ~1000", sink.Packets)
	}
	src.Stop()
	before := sink.Packets
	s.RunUntil(2 * time.Second)
	if sink.Packets > before+1 {
		t.Fatalf("source kept emitting after Stop: %d -> %d", before, sink.Packets)
	}
}

func TestTrafficSourceJitterStaysPositive(t *testing.T) {
	s := sim.NewScheduler()
	ids := &IDGen{}
	sink := &Sink{}
	src := &TrafficSource{
		Sched: s, IDs: ids, Dst: sink,
		Flow: "bg", RateBps: 1e6, PacketSize: 100,
		Jitter: 0.5, RNG: sim.NewRNG(9),
	}
	src.Start(0)
	s.RunUntil(time.Second)
	// 1 Mbps at 100B = 1250 pkt/s nominal; jitter keeps the long-run
	// rate within ~10%.
	if sink.Packets < 1000 || sink.Packets > 1600 {
		t.Fatalf("jittered packets = %d", sink.Packets)
	}
}

func TestTrafficSourceZeroRateNoEmission(t *testing.T) {
	s := sim.NewScheduler()
	sink := &Sink{}
	src := &TrafficSource{Sched: s, IDs: &IDGen{}, Dst: sink, RateBps: 0}
	src.Start(0)
	s.RunUntil(time.Second)
	if sink.Packets != 0 {
		t.Fatal("zero-rate source emitted packets")
	}
}

func TestDirectionString(t *testing.T) {
	if Uplink.String() != "UL" || Downlink.String() != "DL" {
		t.Fatal("direction strings wrong")
	}
	if Direction(9).String() != "Direction(9)" {
		t.Fatalf("unknown direction: %s", Direction(9))
	}
}

func TestIDGenMonotonic(t *testing.T) {
	g := &IDGen{}
	last := uint64(0)
	for i := 0; i < 100; i++ {
		id := g.Next()
		if id <= last {
			t.Fatal("IDs not strictly increasing")
		}
		last = id
	}
}

func TestSinkCounts(t *testing.T) {
	s := &Sink{}
	s.Recv(&Packet{Size: 10})
	s.Recv(&Packet{Size: 20})
	if s.Packets != 2 || s.Bytes != 30 {
		t.Fatalf("sink = %+v", s)
	}
}
