package netem

import "testing"

func TestPacketPoolReusesAndZeroes(t *testing.T) {
	pp := &PacketPool{}
	p1 := pp.Get()
	p1.ID, p1.Size, p1.IMSI, p1.Background = 7, 1200, "imsi", true
	pp.Put(p1)
	p2 := pp.Get()
	if p2 != p1 {
		t.Fatal("pool did not reuse the recycled packet")
	}
	if p2.ID != 0 || p2.Size != 0 || p2.IMSI != "" || p2.Background {
		t.Fatalf("reused packet not zeroed: %+v", p2)
	}
	if pp.Gets != 2 || pp.Reuses != 1 {
		t.Fatalf("counters = gets %d reuses %d, want 2/1", pp.Gets, pp.Reuses)
	}
}

func TestPacketPoolNilSafe(t *testing.T) {
	var pp *PacketPool
	p := pp.Get()
	if p == nil {
		t.Fatal("nil pool Get returned nil")
	}
	pp.Put(p) // must not panic
	pp.Put(nil)
	(&PacketPool{}).Put(nil)
}
