package netem

import (
	"testing"
	"time"

	"tlc/internal/sim"
)

// TestDeliveryRingFIFOAcrossGrowth keeps more packets in flight than
// the ring's initial capacity so the circular buffer wraps and grows
// mid-stream, and checks packets still arrive in transmission order.
func TestDeliveryRingFIFOAcrossGrowth(t *testing.T) {
	s := sim.NewScheduler()
	var got []uint64
	dst := NodeFunc(func(p *Packet) { got = append(got, p.ID) })
	// Infinite rate + long delay: every packet sits in the ring at
	// once (pure-delay links skip the queue and go straight to
	// propagate).
	l := NewLink("wire", s, 0, 10*time.Millisecond, 0, dst)
	const n = 100 // well past the initial 16-slot ring
	var id uint64
	for i := 0; i < n; i++ {
		s.AtPooled(sim.Time(i)*time.Microsecond, func() {
			id++
			l.Recv(&Packet{ID: id, Size: 100})
		})
	}
	s.Run()
	if len(got) != n {
		t.Fatalf("delivered %d packets, want %d", len(got), n)
	}
	for i, v := range got {
		if v != uint64(i+1) {
			t.Fatalf("delivery order broken at %d: got ID %d, want %d", i, v, i+1)
		}
	}
	if l.InFlight() != 0 {
		t.Fatalf("InFlight = %d after drain, want 0", l.InFlight())
	}
}

// TestLinkSteadyStateZeroAllocs asserts the full per-packet hot path —
// pool Get, Recv, queue, transmit, propagate (ring push), delayed
// delivery (ring pop), pool Put — allocates nothing once warm.
func TestLinkSteadyStateZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are perturbed by -race instrumentation")
	}
	s := sim.NewScheduler()
	pp := &PacketPool{}
	delivered := 0
	dst := NodeFunc(func(p *Packet) {
		delivered++
		pp.Put(p)
	})
	l := NewLink("hot", s, 1e8, 2*time.Millisecond, 1<<20, dst)
	l.Pool = pp
	send := func() {
		p := pp.Get()
		p.Size = 1400
		p.QCI = 9
		l.Recv(p)
		s.RunUntil(s.Now() + 10*time.Millisecond)
	}
	for i := 0; i < 64; i++ { // warm pools, heap, ring and queue
		send()
	}
	if avg := testing.AllocsPerRun(200, send); avg != 0 {
		t.Fatalf("link hot path allocates %v per packet, want 0", avg)
	}
	if delivered == 0 {
		t.Fatal("nothing delivered")
	}
}

// TestEvictLowerPriorityZeroAllocs asserts the queue-overflow eviction
// path reuses its scratch index slice instead of allocating a map.
func TestEvictLowerPriorityZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are perturbed by -race instrumentation")
	}
	s := sim.NewScheduler()
	pp := &PacketPool{}
	l := NewLink("evict", s, 1e6, 0, 3000, &Sink{})
	l.Pool = pp
	l.Gate = func(sim.Time) bool { return false } // keep the queue full
	overflow := func() {
		// Fill with low-priority, then push a high-priority packet
		// that must evict.
		for l.QueuedBytes()+1000 <= l.QueueBytes {
			p := pp.Get()
			p.Size, p.QCI = 1000, 9
			l.Recv(p)
		}
		p := pp.Get()
		p.Size, p.QCI = 1000, 5
		l.Recv(p)
	}
	for i := 0; i < 16; i++ { // warm scratch, queue and pool
		overflow()
	}
	if avg := testing.AllocsPerRun(100, overflow); avg != 0 {
		t.Fatalf("eviction path allocates %v per overflow, want 0", avg)
	}
}

// TestDropQueuedFractionReturnsPacketsToPool checks every packet the
// handover buffer flush discards goes back to the pool.
func TestDropQueuedFractionReturnsPacketsToPool(t *testing.T) {
	s := sim.NewScheduler()
	pp := &PacketPool{}
	l := NewLink("ho", s, 1e6, 0, 1<<20, &Sink{})
	l.Pool = pp
	l.Gate = func(sim.Time) bool { return false } // buffer everything
	const n = 40
	for i := 0; i < n; i++ {
		p := pp.Get()
		p.Size, p.QCI = 500, 9
		l.Recv(p)
	}
	queued := l.QueueLen()
	if queued == 0 {
		t.Fatal("nothing queued")
	}
	packets, bytes := l.DropQueuedFraction(0.5)
	if packets == 0 || bytes == 0 {
		t.Fatal("nothing dropped")
	}
	if got := uint64(len(pp.free)); got != packets {
		t.Fatalf("pool got %d packets back, %d were dropped", got, packets)
	}
	if l.QueueLen() != queued-int(packets) {
		t.Fatalf("queue len %d after dropping %d of %d", l.QueueLen(), packets, queued)
	}
	// Full flush returns the rest too.
	rest, _ := l.DropQueuedFraction(1.0)
	if got := uint64(len(pp.free)); got != packets+rest {
		t.Fatalf("pool got %d packets back after full flush, want %d", got, packets+rest)
	}
}

// TestPacketPoolCap checks Put stops retaining beyond packetPoolCap
// and counts the overflow instead.
func TestPacketPoolCap(t *testing.T) {
	pp := &PacketPool{}
	n := packetPoolCap + 500
	for i := 0; i < n; i++ {
		pp.Put(&Packet{})
	}
	if len(pp.free) != packetPoolCap {
		t.Fatalf("free list len %d, want capped at %d", len(pp.free), packetPoolCap)
	}
	if pp.Drops != 500 {
		t.Fatalf("Drops = %d, want 500", pp.Drops)
	}
	// The capped pool still serves and accepts normally.
	p := pp.Get()
	pp.Put(p)
	if len(pp.free) != packetPoolCap || pp.Drops != 500 {
		t.Fatalf("post-cap Put/Get broken: free %d drops %d", len(pp.free), pp.Drops)
	}
}
