// Package netem emulates the packet-level network substrate: links
// with finite rate, propagation delay and drop-tail queues, QCI-based
// priority scheduling, configurable loss models, byte meters, and
// background (cross) traffic sources.
//
// The emulated LTE core (internal/epc) and radio access network
// (internal/ran) are assembled from these parts. Where a packet is
// dropped relative to the operator's metering point is what creates
// the charging gap the paper studies, so the topology builders are
// careful about drop placement (see DESIGN.md).
package netem

import (
	"fmt"
	"time"

	"tlc/internal/sim"
)

// Direction of a packet relative to the edge device.
type Direction int

const (
	// Uplink flows from the edge device toward the edge server.
	Uplink Direction = iota
	// Downlink flows from the edge server toward the edge device.
	Downlink
)

// String implements fmt.Stringer.
func (d Direction) String() string {
	switch d {
	case Uplink:
		return "UL"
	case Downlink:
		return "DL"
	default:
		return fmt.Sprintf("Direction(%d)", int(d))
	}
}

// Packet is one network datagram moving through the emulation. Sizes
// are in bytes and include protocol headers; the simulator does not
// carry payload bytes.
type Packet struct {
	ID         uint64
	Flow       string    // application flow identifier
	IMSI       string    // subscriber the packet belongs to
	QCI        uint8     // LTE QoS class identifier (1 = highest priority)
	Size       int       // bytes on the wire
	Dir        Direction // uplink or downlink
	Sent       sim.Time  // time the application emitted the packet
	Background bool      // cross traffic, never charged to the edge app

	// Tunneled and TEID are set while the packet rides a GTP-U
	// tunnel between the base station and the gateway.
	Tunneled bool
	TEID     uint32

	// Seq is the transport-layer sequence number for reliable flows
	// (internal/transport); zero for datagram traffic.
	Seq uint64
}

// Node consumes packets. Links, gateways, base stations, devices and
// meters all implement Node.
type Node interface {
	Recv(pkt *Packet)
}

// NodeFunc adapts a function to the Node interface.
type NodeFunc func(*Packet)

// Recv implements Node.
func (f NodeFunc) Recv(pkt *Packet) { f(pkt) }

// Sink is a Node that counts and discards everything it receives.
type Sink struct {
	Packets uint64
	Bytes   uint64
}

// Recv implements Node.
func (s *Sink) Recv(pkt *Packet) {
	s.Packets++
	s.Bytes += uint64(pkt.Size)
}

// IDGen allocates packet IDs unique within one simulation.
type IDGen struct{ next uint64 }

// Next returns the next packet ID.
func (g *IDGen) Next() uint64 {
	g.next++
	return g.next
}

// PacketPool recycles Packet structs within one simulation. Traffic
// sources draw packets from the pool and every terminal point — app
// sinks, drop sites inside links and droppers, the gateway's
// detached-discard — returns them, so a steady-state cycle stops
// allocating per packet. A pool belongs to a single scheduler (one
// testbed); it is not safe for concurrent use, which is fine because
// parallel sweeps give every cell its own testbed. A nil *PacketPool
// is valid everywhere and falls back to plain allocation.
type PacketPool struct {
	free []*Packet

	// Gets/Reuses count pool traffic for allocation diagnostics.
	Gets   uint64
	Reuses uint64
	// Drops counts packets discarded at Put because the free list sat
	// at packetPoolCap: the burst's high-water mark goes to the GC
	// instead of staying pinned for the rest of the cycle.
	Drops uint64

	published bool
}

// packetPoolCap bounds the pool's free list; see PacketPool.Drops.
const packetPoolCap = 1 << 16

// Get returns a zeroed packet, reusing a recycled struct when one is
// available.
func (pp *PacketPool) Get() *Packet {
	if pp == nil {
		//tlcvet:allow hotalloc — pool-less operation is the documented fallback for tiny topologies
		return &Packet{}
	}
	pp.Gets++
	if n := len(pp.free); n > 0 {
		p := pp.free[n-1]
		pp.free[n-1] = nil
		pp.free = pp.free[:n-1]
		pp.Reuses++
		*p = Packet{}
		return p
	}
	//tlcvet:allow hotalloc — pool miss: allocates only until the free list warms up to the burst's high-water mark
	return &Packet{}
}

// Put returns a packet whose journey ended (delivered to its final
// consumer or dropped). The caller must not touch p afterwards.
func (pp *PacketPool) Put(p *Packet) {
	if pp == nil || p == nil {
		return
	}
	if len(pp.free) >= packetPoolCap {
		pp.Drops++
		return
	}
	pp.free = append(pp.free, p)
}

// LossModel decides whether a packet is lost in transit on a link.
type LossModel interface {
	Drop(pkt *Packet, now sim.Time) bool
}

// NoLoss never drops.
type NoLoss struct{}

// Drop implements LossModel.
func (NoLoss) Drop(*Packet, sim.Time) bool { return false }

// BernoulliLoss drops each packet independently with probability P.
type BernoulliLoss struct {
	P   float64
	RNG *sim.RNG
}

// Drop implements LossModel.
func (b *BernoulliLoss) Drop(_ *Packet, _ sim.Time) bool {
	if b.P <= 0 {
		return false
	}
	if b.P >= 1 {
		return true
	}
	return b.RNG.Float64() < b.P
}

// LossFunc adapts a function to the LossModel interface; the radio
// layer uses it to drive loss from the instantaneous RSS.
type LossFunc func(pkt *Packet, now sim.Time) bool

// Drop implements LossModel.
func (f LossFunc) Drop(pkt *Packet, now sim.Time) bool { return f(pkt, now) }

// LinkStats counts what happened on a link.
type LinkStats struct {
	InPackets    uint64
	InBytes      uint64
	OutPackets   uint64
	OutBytes     uint64
	QueueDrops   uint64
	QueueDropped uint64 // bytes
	LossDrops    uint64
	LossDropped  uint64 // bytes

	// Fault-injection outcomes (see FaultInjector); all zero when no
	// injector is attached.
	FaultDrops   uint64
	FaultDropped uint64 // bytes
	FaultDups    uint64
	FaultDelays  uint64
}

// FaultAction is a fault injector's verdict for one packet. The zero
// value passes the packet through untouched. Drop wins over the other
// fields; Duplicate and ExtraDelay compose (the copy is sent clean,
// the original is delayed).
type FaultAction struct {
	Drop       bool
	Duplicate  bool
	ExtraDelay time.Duration
}

// FaultInjector decides per-packet faults on a link, consulted after
// the loss model (faults are on-the-wire events, like loss). It is
// deliberately separate from LossModel so fault sweeps can stack on
// any configured loss regime. Implementations must be deterministic
// given their own seeded RNG; internal/faults provides the standard
// one.
type FaultInjector interface {
	Apply(pkt *Packet, now sim.Time) FaultAction
}

// Link is a simplex link with a finite transmission rate, a priority
// drop-tail queue, fixed propagation delay and an optional loss model
// applied after transmission (i.e. "on the wire"). A zero RateBps
// means infinite rate (no queueing). The queue serves strictly by QCI
// priority (lower QCI first) and FIFO within a class, matching LTE's
// scheduling-based primitives that the paper credits for the
// low-latency edge (§2.1).
type Link struct {
	Name       string
	Sched      *sim.Scheduler
	RateBps    float64
	Delay      time.Duration
	QueueBytes int // queue capacity in bytes; 0 = unlimited
	Loss       LossModel
	Dst        Node

	// Inject optionally applies per-packet faults (drop bursts,
	// duplication, reordering, delay spikes) after the loss model.
	// Leave nil for a clean link; the hot path pays nothing for it.
	Inject FaultInjector

	// Gate optionally pauses the server: while Gate returns false the
	// link buffers packets instead of transmitting (the RAN uses this
	// to model base-station buffering across short radio outages).
	Gate func(now sim.Time) bool

	// RateScale optionally scales the transmission rate at each
	// serving instant; the RAN uses it to model MCS adaptation (weak
	// signal lowers the achievable rate rather than dropping IP
	// packets — HARQ recovers those). Values are clamped to a small
	// positive floor.
	RateScale func(now sim.Time) float64

	// Pool optionally recycles packets the link drops (queue
	// overflow, loss model, handover buffer flush). Leave nil when
	// packets are allocated outside a PacketPool.
	Pool *PacketPool

	Stats LinkStats

	queue        []*Packet
	queuedBytes  int
	transmitting bool

	// inFlight is the packet occupying the transmitter; the
	// transmitting flag guarantees at most one. gateRetryFn/txDoneFn
	// cache the two hot-path event closures (see gateRetry/txDone).
	inFlight    *Packet
	gateRetryFn func()
	txDoneFn    func()

	// ring is the FIFO of packets on the wire: transmitted and
	// loss-checked, awaiting delivery after Delay. Deliveries share
	// the single cached pooled callback deliverFn instead of closing
	// over each packet; see propagate for why FIFO pairing preserves
	// the exact (time, seq) delivery schedule. The buffer is a
	// power-of-two circular queue.
	ring      []*Packet
	ringHead  int
	ringLen   int
	deliverFn func()

	// evictIdx is scratch for evictLowerPriority, reused across
	// overflows so the queue-overflow path does not allocate.
	evictIdx []int

	// Per-QCI accounting for the metrics registry: offered, dropped
	// (queue, loss and fault drops combined) and delivered packets by
	// class. Flat arrays indexed by the full QCI byte keep the hot
	// path at one unconditional increment; PublishMetrics folds them
	// into the pre-registered per-class counters at a run boundary.
	qciEnq  [256]uint64
	qciDrop [256]uint64
	qciOut  [256]uint64

	published bool
}

// NewLink returns a ready link. Loss defaults to NoLoss.
func NewLink(name string, sched *sim.Scheduler, rateBps float64, delay time.Duration, queueBytes int, dst Node) *Link {
	return &Link{
		Name:       name,
		Sched:      sched,
		RateBps:    rateBps,
		Delay:      delay,
		QueueBytes: queueBytes,
		Loss:       NoLoss{},
		Dst:        dst,
	}
}

// QueueLen returns the number of queued packets (excluding the packet
// currently in transmission).
func (l *Link) QueueLen() int { return len(l.queue) }

// QueuedBytes returns the number of queued bytes.
func (l *Link) QueuedBytes() int { return l.queuedBytes }

// Recv implements Node: the link accepts the packet for transmission.
//
//tlcvet:hotpath per-packet ingress; enqueue/propagate/send/deliver and the ring helpers are all reached from here
func (l *Link) Recv(pkt *Packet) {
	l.Stats.InPackets++
	l.Stats.InBytes += uint64(pkt.Size)
	l.qciEnq[pkt.QCI]++

	if l.RateBps <= 0 && l.Gate == nil {
		// Infinite-rate ungated link: pure delay + loss.
		l.propagate(pkt)
		return
	}

	if l.QueueBytes > 0 && l.queuedBytes+pkt.Size > l.QueueBytes {
		if !l.evictLowerPriority(pkt) {
			l.Stats.QueueDrops++
			l.Stats.QueueDropped += uint64(pkt.Size)
			l.qciDrop[pkt.QCI]++
			l.Pool.Put(pkt)
			return
		}
	}
	l.enqueue(pkt)
	l.kick()
}

// evictLowerPriority makes room for pkt by dropping strictly lower
// priority queued packets (higher QCI value) from the back of the
// queue. It reports whether enough room was freed.
func (l *Link) evictLowerPriority(pkt *Packet) bool {
	need := l.queuedBytes + pkt.Size - l.QueueBytes
	if need <= 0 {
		return true
	}
	// Scan from the back (lowest priority sits last due to priority
	// insertion) marking evictable packets. evictIdx collects the
	// victims in descending index order.
	freed := 0
	l.evictIdx = l.evictIdx[:0]
	for i := len(l.queue) - 1; i >= 0 && freed < need; i-- {
		if l.queue[i].QCI > pkt.QCI {
			freed += l.queue[i].Size
			l.evictIdx = append(l.evictIdx, i)
		}
	}
	if freed < need {
		return false
	}
	// Compact in place: evictIdx is descending, so its last entry is
	// the smallest victim index.
	next := len(l.evictIdx) - 1
	keep := l.queue[:0]
	for i, q := range l.queue {
		if next >= 0 && i == l.evictIdx[next] {
			next--
			l.queuedBytes -= q.Size
			l.Stats.QueueDrops++
			l.Stats.QueueDropped += uint64(q.Size)
			l.qciDrop[q.QCI]++
			l.Pool.Put(q)
			continue
		}
		keep = append(keep, q)
	}
	for i := len(keep); i < len(l.queue); i++ {
		l.queue[i] = nil
	}
	l.queue = keep
	return true
}

// enqueue inserts by QCI priority (stable within a class).
func (l *Link) enqueue(pkt *Packet) {
	i := len(l.queue)
	for i > 0 && l.queue[i-1].QCI > pkt.QCI {
		i--
	}
	l.queue = append(l.queue, nil)
	copy(l.queue[i+1:], l.queue[i:])
	l.queue[i] = pkt
	l.queuedBytes += pkt.Size
}

// kick starts the transmitter if idle.
func (l *Link) kick() {
	if l.transmitting || len(l.queue) == 0 {
		return
	}
	if l.Gate != nil && !l.Gate(l.Sched.Now()) {
		// Gated closed: retry shortly. The RAN re-kicks links on
		// radio state changes, but polling keeps the model safe even
		// if it forgets.
		l.transmitting = true
		l.Sched.AfterPooled(10*time.Millisecond, l.gateRetry())
		return
	}
	pkt := l.queue[0]
	l.queue[0] = nil
	if len(l.queue) == 1 {
		// Drained: rewind to the backing array's start so steady-state
		// enqueue/dequeue churn reuses it. Advancing the base with
		// queue[1:] here would erode the capacity and make the next
		// append reallocate — one hidden allocation per packet.
		l.queue = l.queue[:0]
	} else {
		l.queue = l.queue[1:]
	}
	l.queuedBytes -= pkt.Size
	l.transmitting = true
	tx := time.Duration(0)
	if l.RateBps > 0 {
		rate := l.RateBps
		if l.RateScale != nil {
			scale := l.RateScale(l.Sched.Now())
			if scale < 0.01 {
				scale = 0.01
			}
			rate *= scale
		}
		tx = time.Duration(float64(pkt.Size*8) / rate * float64(time.Second))
	}
	l.inFlight = pkt
	l.Sched.AfterPooled(tx, l.txDone())
}

// gateRetry and txDone return per-link closures that are allocated
// once and reused for every transmission, so the two events on the
// per-packet hot path cost neither an Event nor a closure allocation.
func (l *Link) gateRetry() func() {
	if l.gateRetryFn == nil {
		//tlcvet:allow hotalloc — allocated once per link on first use, then cached in gateRetryFn
		l.gateRetryFn = func() {
			l.transmitting = false
			l.kick()
		}
	}
	return l.gateRetryFn
}

func (l *Link) txDone() func() {
	if l.txDoneFn == nil {
		//tlcvet:allow hotalloc — allocated once per link on first use, then cached in txDoneFn
		l.txDoneFn = func() {
			pkt := l.inFlight
			l.inFlight = nil
			l.transmitting = false
			l.propagate(pkt)
			l.kick()
		}
	}
	return l.txDoneFn
}

// propagate applies the loss model and delivers after Delay.
//
// Delayed deliveries ride the link's FIFO ring: the packet is pushed
// here and a pooled event — sharing the cached deliverFn rather than
// closing over the packet — is scheduled for now+Delay. The event's
// scheduler seq is reserved by AfterPooled at this moment, exactly
// when the per-packet closure used to reserve it, and simulated time
// never decreases while Delay is fixed per link, so delivery events
// fire in enqueue order and each firing pops the packet enqueued with
// it. The (time, seq) delivery schedule is therefore bit-for-bit what
// the closure version produced, without the per-packet allocation.
// (Mutating Delay while packets are in flight would break the FIFO
// pairing; no caller does.)
func (l *Link) propagate(pkt *Packet) {
	if l.Loss != nil && l.Loss.Drop(pkt, l.Sched.Now()) {
		l.Stats.LossDrops++
		l.Stats.LossDropped += uint64(pkt.Size)
		l.qciDrop[pkt.QCI]++
		l.Pool.Put(pkt)
		return
	}
	if l.Inject != nil {
		act := l.Inject.Apply(pkt, l.Sched.Now())
		if act.Drop {
			l.Stats.FaultDrops++
			l.Stats.FaultDropped += uint64(pkt.Size)
			l.qciDrop[pkt.QCI]++
			l.Pool.Put(pkt)
			return
		}
		if act.Duplicate {
			l.Stats.FaultDups++
			dup := l.Pool.Get()
			*dup = *pkt
			l.send(dup, 0)
		}
		if act.ExtraDelay > 0 {
			l.Stats.FaultDelays++
			l.send(pkt, act.ExtraDelay)
			return
		}
	}
	l.send(pkt, 0)
}

// send puts the packet on the wire. extra == 0 is the normal path and
// rides the FIFO delivery ring. extra > 0 (a fault's reorder hold or
// delay spike) deliberately breaks the link's FIFO order, so it must
// bypass the ring — the ring's deliverFn pops strictly in push order
// and a longer-delayed packet would make a later pop hand back the
// wrong struct. Those packets get a dedicated per-packet closure
// event instead; the allocation only happens on faulted packets.
func (l *Link) send(pkt *Packet, extra time.Duration) {
	if extra > 0 {
		p := pkt
		//tlcvet:allow hotalloc — out-of-FIFO delivery must bypass the ring (see doc comment); only faulted packets pay this closure
		l.Sched.After(l.Delay+extra, func() { l.deliver(p) })
		return
	}
	if l.Delay > 0 {
		l.ringPush(pkt)
		if l.deliverFn == nil {
			//tlcvet:allow hotalloc — allocated once per link on first use, then cached in deliverFn
			l.deliverFn = func() { l.deliver(l.ringPop()) }
		}
		l.Sched.AfterPooled(l.Delay, l.deliverFn)
	} else {
		l.deliver(pkt)
	}
}

// deliver hands the packet to the destination, counting it out.
func (l *Link) deliver(pkt *Packet) {
	l.Stats.OutPackets++
	l.Stats.OutBytes += uint64(pkt.Size)
	l.qciOut[pkt.QCI]++
	if l.Dst != nil {
		l.Dst.Recv(pkt)
	}
}

// InFlight returns the number of packets propagating on the wire
// (transmitted, not yet delivered).
func (l *Link) InFlight() int { return l.ringLen }

// ringPush appends to the delivery ring, growing it when full.
func (l *Link) ringPush(p *Packet) {
	if l.ringLen == len(l.ring) {
		l.ringGrow()
	}
	l.ring[(l.ringHead+l.ringLen)&(len(l.ring)-1)] = p
	l.ringLen++
}

// ringPop removes and returns the oldest in-flight packet.
func (l *Link) ringPop() *Packet {
	p := l.ring[l.ringHead]
	l.ring[l.ringHead] = nil
	l.ringHead = (l.ringHead + 1) & (len(l.ring) - 1)
	l.ringLen--
	return p
}

// ringGrow doubles the ring (16 slots minimum), unwrapping the FIFO to
// the front of the new buffer.
func (l *Link) ringGrow() {
	n := len(l.ring) * 2
	if n == 0 {
		n = 16
	}
	//tlcvet:allow hotalloc — geometric doubling; amortized O(1) per push and quiescent once the ring reaches the in-flight high-water mark
	buf := make([]*Packet, n)
	for i := 0; i < l.ringLen; i++ {
		buf[i] = l.ring[(l.ringHead+i)&(len(l.ring)-1)]
	}
	l.ring = buf
	l.ringHead = 0
}

// Kick re-evaluates the transmitter; the RAN calls it when a gate
// opens so buffered packets flush immediately.
func (l *Link) Kick() { l.kick() }

// DropQueuedFraction discards the given fraction of queued bytes from
// the back of the queue (newest first), counting them as queue drops.
// The RAN's handover model uses it for source-cell buffer loss.
func (l *Link) DropQueuedFraction(frac float64) (packets, bytes uint64) {
	if frac <= 0 || len(l.queue) == 0 {
		return 0, 0
	}
	target := int(float64(l.queuedBytes) * frac)
	dropped := 0
	i := len(l.queue)
	for i > 0 && dropped < target {
		i--
		q := l.queue[i]
		dropped += q.Size
		packets++
		bytes += uint64(q.Size)
		l.Stats.QueueDrops++
		l.Stats.QueueDropped += uint64(q.Size)
		l.qciDrop[q.QCI]++
		l.Pool.Put(q)
	}
	for j := i; j < len(l.queue); j++ {
		l.queue[j] = nil
	}
	l.queue = l.queue[:i]
	l.queuedBytes -= dropped
	return packets, bytes
}
