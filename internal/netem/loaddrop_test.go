package netem

import (
	"testing"
	"time"

	"tlc/internal/sim"
)

func runLoad(t *testing.T, capacityMbps, offeredMbps float64, qci uint8, dur time.Duration) (*LoadDropper, *Sink) {
	t.Helper()
	s := sim.NewScheduler()
	sink := &Sink{}
	d := NewLoadDropper(s, capacityMbps*1e6, sink, sim.NewRNG(1))
	d.Start()
	src := &TrafficSource{
		Sched: s, IDs: &IDGen{}, Dst: d,
		Flow: "f", QCI: qci, RateBps: offeredMbps * 1e6, PacketSize: 1400,
	}
	src.Start(0)
	s.RunUntil(dur)
	src.Stop()
	return d, sink
}

func TestLoadDropperNoLossAtLowUtilization(t *testing.T) {
	d, _ := runLoad(t, 100, 20, 9, 5*time.Second)
	rate := float64(d.Dropped) / float64(d.Dropped+d.Forwarded)
	if rate > 0.001 {
		t.Fatalf("loss at 20%% utilization = %v", rate)
	}
}

func TestLoadDropperSoftLossBelowCapacity(t *testing.T) {
	d, _ := runLoad(t, 100, 85, 9, 10*time.Second)
	rate := float64(d.Dropped) / float64(d.Dropped+d.Forwarded)
	if rate < 0.01 || rate > 0.15 {
		t.Fatalf("loss at 85%% utilization = %v, want a few percent", rate)
	}
}

func TestLoadDropperStationaryFloorAboveCapacity(t *testing.T) {
	d, _ := runLoad(t, 100, 150, 9, 10*time.Second)
	rate := float64(d.Dropped) / float64(d.Dropped+d.Forwarded)
	// Must at least shed the physically impossible excess (1 - 1/1.5
	// = 33%) and at most the soft curve on top of it.
	if rate < 0.25 || rate > 0.5 {
		t.Fatalf("loss at 150%% utilization = %v", rate)
	}
}

func TestLoadDropperMonotoneInLoad(t *testing.T) {
	prev := -1.0
	for _, offered := range []float64{40, 70, 100, 130, 160} {
		d, _ := runLoad(t, 100, offered, 9, 5*time.Second)
		rate := float64(d.Dropped) / float64(d.Dropped+d.Forwarded)
		if rate < prev-0.01 {
			t.Fatalf("loss not monotone: %v after %v at %v Mbps", rate, prev, offered)
		}
		prev = rate
	}
}

func TestLoadDropperPriorityShielding(t *testing.T) {
	// A QCI=7 flow sharing the resource with an overloading QCI=9
	// flow must see (almost) no loss: it only competes with classes
	// of equal or higher priority.
	s := sim.NewScheduler()
	sink := &Sink{}
	d := NewLoadDropper(s, 100e6, sink, sim.NewRNG(2))
	d.Start()
	ids := &IDGen{}
	bg := &TrafficSource{Sched: s, IDs: ids, Dst: d, Flow: "bg", QCI: 9, RateBps: 150e6, PacketSize: 1400, Background: true}
	game := &TrafficSource{Sched: s, IDs: ids, Dst: d, Flow: "game", QCI: 7, RateBps: 1e6, PacketSize: 100}
	bg.Start(0)
	game.Start(0)
	s.RunUntil(10 * time.Second)
	bg.Stop()
	game.Stop()
	// Count per-class deliveries at the sink by re-deriving from
	// drop probabilities instead: the QCI 7 class must report ~0.
	if p := d.DropProb(7); p > 0.01 {
		t.Fatalf("QCI7 drop prob = %v under QCI9 overload", p)
	}
	if p := d.DropProb(9); p < 0.2 {
		t.Fatalf("QCI9 drop prob = %v, want heavy", p)
	}
}

func TestLoadDropperZeroCapacity(t *testing.T) {
	s := sim.NewScheduler()
	sink := &Sink{}
	d := NewLoadDropper(s, 0, sink, sim.NewRNG(3))
	d.Start()
	d.Recv(&Packet{Size: 100, QCI: 9})
	if sink.Packets != 1 {
		t.Fatal("zero-capacity dropper must forward everything (unconfigured)")
	}
}

func TestLoadDropperNilRNGForwards(t *testing.T) {
	s := sim.NewScheduler()
	sink := &Sink{}
	d := NewLoadDropper(s, 1e6, sink, nil)
	d.Recv(&Packet{Size: 1400, QCI: 9})
	if sink.Packets != 1 {
		t.Fatal("nil-RNG dropper must forward")
	}
}

func TestLoadDropperDropProbShape(t *testing.T) {
	s := sim.NewScheduler()
	d := NewLoadDropper(s, 100e6, nil, sim.NewRNG(4))
	// Inject synthetic rates directly (refreshing the prefix sums the
	// ticker would otherwise maintain).
	setRate := func(qci uint8, bps float64) {
		d.rateBps[qci] = bps
		d.refreshCum()
	}
	setRate(9, 40e6)
	if p := d.DropProb(9); p != 0 {
		t.Fatalf("p(0.4) = %v, want 0", p)
	}
	setRate(9, 75e6)
	mid := d.DropProb(9)
	if mid <= 0 || mid >= d.MaxSoftLoss {
		t.Fatalf("p(0.75) = %v, want in (0, max)", mid)
	}
	setRate(9, 200e6)
	if p := d.DropProb(9); p < 0.5 {
		t.Fatalf("p(2.0) = %v, want >= 1-1/2", p)
	}
	// Higher priority ignores lower-priority load.
	if p := d.DropProb(5); p != 0 {
		t.Fatalf("p(QCI5) = %v, want 0 (only QCI9 loaded)", p)
	}
	// Equal priority load counts.
	setRate(3, 200e6)
	if p := d.DropProb(5); p < 0.4 {
		t.Fatalf("p(QCI5 with QCI3 overload) = %v", p)
	}
}
