package netem

import (
	"strconv"

	"tlc/internal/metrics"
)

// Registry instruments for the packet substrate. The per-packet hot
// path keeps counting into each Link's plain LinkStats and per-QCI
// arrays — single-scheduler code needs no atomics — and PublishMetrics
// flushes once at a run boundary. QCI label sets are pre-registered
// (classes 1–9 plus "other"), never formatted per packet.
const qciClasses = 9 // LTE QCI 1..9; everything else lands in "other"

type qciCounters [qciClasses + 1]*metrics.Counter // [0] = "other"

func newQCICounters(name, help string) qciCounters {
	var out qciCounters
	out[0] = metrics.Default.Counter(name+`{qci="other"}`, help)
	for q := 1; q <= qciClasses; q++ {
		out[q] = metrics.Default.Counter(name+`{qci="`+strconv.Itoa(q)+`"}`, help)
	}
	return out
}

// add flushes a per-link [256] QCI array into the registry counters.
func (qc qciCounters) add(byQCI *[256]uint64) {
	for q, n := range byQCI {
		if n == 0 {
			continue
		}
		if q >= 1 && q <= qciClasses {
			qc[q].Add(n)
		} else {
			qc[0].Add(n)
		}
	}
}

var (
	mLinkEnq = newQCICounters("netem_link_enqueued_packets_total",
		"packets offered to a link for transmission, by QCI class")
	mLinkDrop = newQCICounters("netem_link_dropped_packets_total",
		"packets dropped by a link (queue overflow, loss model, injected faults), by QCI class")
	mLinkOut = newQCICounters("netem_link_delivered_packets_total",
		"packets delivered by a link to its destination, by QCI class")
	mLinkInFlight = metrics.Default.Gauge("netem_link_in_flight_packets",
		"packets on the wire (transmitted, not yet delivered) at last publish")
	mPoolGets = metrics.Default.Counter("netem_pool_gets_total",
		"packet structs drawn from a PacketPool")
	mPoolReuses = metrics.Default.Counter("netem_pool_reuses_total",
		"packet draws served from the pool free list instead of the heap")
	mPoolDrops = metrics.Default.Counter("netem_pool_drops_total",
		"packets discarded at Put because the pool free list was at capacity")
	mLoadDropped = metrics.Default.Counter("netem_load_dropped_packets_total",
		"packets dropped by the congestion LoadDropper")
	mLoadForwarded = metrics.Default.Counter("netem_load_forwarded_packets_total",
		"packets forwarded by the congestion LoadDropper")
	mLanePackets = metrics.Default.Counter("netem_lane_packets_total",
		"packets sent across shard exchange lanes")
	mLaneBytes = metrics.Default.Counter("netem_lane_bytes_total",
		"bytes sent across shard exchange lanes")
	mInboxPackets = metrics.Default.Counter("netem_inbox_arrivals_total",
		"cross-shard packets delivered into destination partitions")
	mInboxBytes = metrics.Default.Counter("netem_inbox_arrival_bytes_total",
		"cross-shard bytes delivered into destination partitions")
)

// PublishMetrics flushes the link's cumulative counters into the
// process metrics registry. Call it once, at the end of a run; later
// calls are no-ops (a link's counters are never reset).
func (l *Link) PublishMetrics() {
	if l == nil || l.published {
		return
	}
	l.published = true
	mLinkEnq.add(&l.qciEnq)
	mLinkDrop.add(&l.qciDrop)
	mLinkOut.add(&l.qciOut)
	mLinkInFlight.Add(int64(l.ringLen))
}

// PublishMetrics flushes the dropper's counters into the process
// metrics registry, once.
func (d *LoadDropper) PublishMetrics() {
	if d == nil || d.published {
		return
	}
	d.published = true
	mLoadDropped.Add(d.Dropped)
	mLoadForwarded.Add(d.Forwarded)
}

// PublishMetrics flushes the lane's counters into the process metrics
// registry, once. Like every publisher it runs only at a run boundary
// (the two-tier rule): the lane's hot path touches only its own plain
// LaneStats.
func (l *Lane) PublishMetrics() {
	if l == nil || l.published {
		return
	}
	l.published = true
	mLanePackets.Add(l.Stats.Packets)
	mLaneBytes.Add(l.Stats.Bytes)
}

// PublishMetrics flushes the inbox's counters into the process metrics
// registry, once.
func (ib *Inbox) PublishMetrics() {
	if ib == nil || ib.published {
		return
	}
	ib.published = true
	mInboxPackets.Add(ib.Stats.Packets)
	mInboxBytes.Add(ib.Stats.Bytes)
}

// PublishMetrics flushes the pool's counters into the process metrics
// registry, once.
func (pp *PacketPool) PublishMetrics() {
	if pp == nil || pp.published {
		return
	}
	pp.published = true
	mPoolGets.Add(pp.Gets)
	mPoolReuses.Add(pp.Reuses)
	mPoolDrops.Add(pp.Drops)
}
