package netem

import (
	"time"

	"tlc/internal/sim"
)

// Meter counts bytes and packets passing a point in the network and
// keeps a binned time series so that usage can later be queried over
// an arbitrary (possibly clock-skewed) window. Both the operator's
// gateway charging function and the edge vendor's app monitors are
// built on Meter.
type Meter struct {
	Name string

	sched    *sim.Scheduler
	binWidth time.Duration
	bins     []float64 // bytes per bin
	packets  uint64
	bytes    uint64

	// Filter selects which packets are counted; nil counts all
	// non-background packets.
	Filter func(*Packet) bool

	// Next optionally forwards the packet on, so a Meter can be
	// spliced into a path.
	Next Node
}

// DefaultBinWidth is the metering resolution. The paper records usage
// every 1s (§3.2); we bin at 100ms so that sub-second clock skews
// still resolve in windowed queries.
const DefaultBinWidth = 100 * time.Millisecond

// NewMeter returns a meter with the default bin width.
func NewMeter(name string, sched *sim.Scheduler, next Node) *Meter {
	return &Meter{Name: name, sched: sched, binWidth: DefaultBinWidth, Next: next}
}

// Recv implements Node.
func (m *Meter) Recv(pkt *Packet) {
	counted := false
	if m.Filter != nil {
		counted = m.Filter(pkt)
	} else {
		counted = !pkt.Background
	}
	if counted {
		m.record(m.sched.Now(), pkt.Size)
	}
	if m.Next != nil {
		m.Next.Recv(pkt)
	}
}

// Reserve pre-sizes the bin series for a cycle of the given length,
// so steady-state metering never grows the slice. Callers that know
// the cycle duration (the testbed, the gateway) reserve up front;
// metering past the reservation still works and grows amortised.
func (m *Meter) Reserve(horizon time.Duration) {
	n := int(horizon/m.binWidth) + 1
	if n > cap(m.bins) {
		nb := make([]float64, len(m.bins), n)
		copy(nb, m.bins)
		m.bins = nb
	}
}

func (m *Meter) record(now sim.Time, size int) {
	m.packets++
	m.bytes += uint64(size)
	idx := int(now / m.binWidth)
	if idx >= len(m.bins) {
		// Grow geometrically instead of one bin at a time: extending
		// within capacity is free, and a fresh backing array doubles
		// so a cycle performs O(log n) bin allocations.
		if idx < cap(m.bins) {
			m.bins = m.bins[:idx+1]
		} else {
			newCap := 2 * cap(m.bins)
			if newCap < idx+1 {
				newCap = idx + 1
			}
			nb := make([]float64, idx+1, newCap)
			copy(nb, m.bins)
			m.bins = nb
		}
	}
	m.bins[idx] += float64(size)
}

// Packets returns the total packets counted.
func (m *Meter) Packets() uint64 { return m.packets }

// TotalBytes returns the total bytes counted.
func (m *Meter) TotalBytes() uint64 { return m.bytes }

// BytesInWindow returns the bytes counted in [start, end), linearly
// interpolating partial bins at the window edges. This is how a party
// whose clock is skewed observes a charging cycle: it integrates the
// same traffic over a shifted window.
func (m *Meter) BytesInWindow(start, end sim.Time) float64 {
	if end <= start || len(m.bins) == 0 {
		return 0
	}
	if start < 0 {
		start = 0
	}
	total := 0.0
	startBin := int(start / m.binWidth)
	endBin := int(end / m.binWidth)
	for i := startBin; i <= endBin && i < len(m.bins); i++ {
		binStart := time.Duration(i) * m.binWidth
		binEnd := binStart + m.binWidth
		overlapStart := maxDur(binStart, start)
		overlapEnd := minDur(binEnd, end)
		if overlapEnd <= overlapStart {
			continue
		}
		frac := float64(overlapEnd-overlapStart) / float64(m.binWidth)
		total += m.bins[i] * frac
	}
	return total
}

// SeriesMB returns per-interval megabytes for plotting time-series
// figures (Figure 4). The interval must be a multiple of the bin
// width.
func (m *Meter) SeriesMB(interval time.Duration, until sim.Time) []float64 {
	if interval < m.binWidth {
		interval = m.binWidth
	}
	n := int(until / interval)
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		start := time.Duration(i) * interval
		out[i] = m.BytesInWindow(start, start+interval) / 1e6
	}
	return out
}

func maxDur(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}

func minDur(a, b time.Duration) time.Duration {
	if a < b {
		return a
	}
	return b
}

// TrafficSource emits fixed-size packets at a constant bit rate; it
// models the iperf UDP background traffic used throughout §7 as well
// as simple CBR application flows.
type TrafficSource struct {
	Sched      *sim.Scheduler
	IDs        *IDGen
	Dst        Node
	Flow       string
	IMSI       string
	QCI        uint8
	Dir        Direction
	RateBps    float64
	PacketSize int
	Background bool
	Jitter     float64 // fraction of the inter-packet gap, uniform +/-
	RNG        *sim.RNG

	// Pool optionally recycles emitted packets; wire the same pool
	// into the terminal sinks and drop sites downstream.
	Pool *PacketPool

	stopped bool
	emitFn  func() // bound emit closure, allocated once
}

// Start begins emission at the given simulated time.
func (t *TrafficSource) Start(at sim.Time) {
	if t.PacketSize <= 0 {
		t.PacketSize = 1400
	}
	if t.RateBps <= 0 {
		return
	}
	t.emitFn = t.emit
	t.Sched.AtPooled(at, t.emitFn)
}

// Stop halts emission after the next scheduled packet.
func (t *TrafficSource) Stop() { t.stopped = true }

func (t *TrafficSource) emit() {
	if t.stopped {
		return
	}
	pkt := t.Pool.Get()
	pkt.ID = t.IDs.Next()
	pkt.Flow = t.Flow
	pkt.IMSI = t.IMSI
	pkt.QCI = t.QCI
	pkt.Size = t.PacketSize
	pkt.Dir = t.Dir
	pkt.Sent = t.Sched.Now()
	pkt.Background = t.Background
	t.Dst.Recv(pkt)
	gap := time.Duration(float64(t.PacketSize*8) / t.RateBps * float64(time.Second))
	if t.Jitter > 0 && t.RNG != nil {
		gap = time.Duration(float64(gap) * (1 + t.RNG.Uniform(-t.Jitter, t.Jitter)))
		if gap <= 0 {
			gap = time.Microsecond
		}
	}
	t.Sched.AfterPooled(gap, t.emitFn)
}
