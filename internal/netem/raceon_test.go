//go:build race

package netem

// raceEnabled reports that this test binary was built with the race
// detector, whose instrumentation perturbs allocation counts; the
// testing.AllocsPerRun guards skip themselves under it (verify.sh
// runs them in a separate non-race pass).
const raceEnabled = true
