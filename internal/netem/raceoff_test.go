//go:build !race

package netem

// raceEnabled: see raceon_test.go.
const raceEnabled = false
