package netem

import (
	"time"

	"tlc/internal/sim"
)

// LoadDropper models a congested shared resource (the virtualised EPC
// host plus cell processing in the paper's testbed) as a fluid
// priority scheduler: it estimates the offered load per QoS class
// over short windows and drops packets probabilistically as
// utilisation approaches and exceeds capacity.
//
// Strict drop-tail sharing starves a low-rate flow almost completely
// under persistent overload (the queue is always full when its sparse
// bursts arrive), which is much harsher than the graceful degradation
// the paper measures (~8% → ~25-30% gap as background traffic grows
// to 160 Mbps). A load-proportional model matches LTE behaviour:
// losses grow smoothly with utilisation and respect QCI priority —
// class p only competes with classes of equal or higher priority.
type LoadDropper struct {
	Sched       *sim.Scheduler
	CapacityBps float64
	Next        Node
	RNG         *sim.RNG

	// Pool optionally recycles packets the dropper discards.
	Pool *PacketPool

	// Onset is the utilisation at which losses start (default 0.5).
	Onset float64
	// MaxSoftLoss is the loss probability as utilisation reaches 1
	// (default 0.22); beyond that the stationary floor 1 - 1/u
	// applies.
	MaxSoftLoss float64
	// Window is the rate-estimation bin (default 100ms).
	Window time.Duration

	// binBytes accumulates the current bin's offered bytes per QCI
	// and rateBps holds the EWMA offered rate per QCI. QCI is a
	// byte, so these are flat arrays rather than maps: Recv runs once
	// per packet and must not pay for map accesses or iteration.
	binBytes [256]float64
	rateBps  [256]float64
	// cumRate[q] is rateBps summed over classes 0..q (higher-or-equal
	// priority), refreshed once per estimation window so utilization
	// is O(1) on the per-packet path.
	cumRate [256]float64
	// active lists the QCIs seen so far; the ticker only walks these.
	active []uint8
	seen   [256]bool

	Dropped   uint64
	Forwarded uint64

	started   bool
	published bool
}

// NewLoadDropper returns a dropper with default parameters.
func NewLoadDropper(sched *sim.Scheduler, capacityBps float64, next Node, rng *sim.RNG) *LoadDropper {
	return &LoadDropper{
		Sched:       sched,
		CapacityBps: capacityBps,
		Next:        next,
		RNG:         rng,
		Onset:       0.5,
		MaxSoftLoss: 0.22,
		Window:      100 * time.Millisecond,
	}
}

// Start begins the rate-estimation ticker; it must be called before
// the simulation runs.
func (d *LoadDropper) Start() {
	if d.started {
		return
	}
	d.started = true
	const alpha = 0.3
	d.Sched.Ticker(d.Window, d.Window, func(sim.Time) {
		secs := d.Window.Seconds()
		for _, qci := range d.active {
			inst := d.binBytes[qci] * 8 / secs
			d.rateBps[qci] = alpha*inst + (1-alpha)*d.rateBps[qci]
			d.binBytes[qci] = 0
		}
		d.refreshCum()
	})
}

// refreshCum recomputes the priority-prefix sums of rateBps.
func (d *LoadDropper) refreshCum() {
	var cum float64
	for q := 0; q < 256; q++ {
		cum += d.rateBps[q]
		d.cumRate[q] = cum
	}
}

// utilization returns the offered load from classes with priority >=
// the given class (numerically QCI <= qci) relative to capacity.
func (d *LoadDropper) utilization(qci uint8) float64 {
	if d.CapacityBps <= 0 {
		return 0
	}
	return d.cumRate[qci] / d.CapacityBps
}

// DropProb returns the current drop probability for a class.
func (d *LoadDropper) DropProb(qci uint8) float64 {
	u := d.utilization(qci)
	p := 0.0
	if u > d.Onset && d.Onset < 1 {
		frac := (u - d.Onset) / (1 - d.Onset)
		if frac > 1 {
			frac = 1
		}
		p = d.MaxSoftLoss * frac * frac
	}
	if u > 1 {
		// Stationary floor: the resource physically cannot carry
		// more than its capacity.
		if floor := 1 - 1/u; floor > p {
			p = floor
		}
	}
	return p
}

// Recv implements Node.
func (d *LoadDropper) Recv(p *Packet) {
	if !d.seen[p.QCI] {
		d.seen[p.QCI] = true
		d.active = append(d.active, p.QCI)
	}
	d.binBytes[p.QCI] += float64(p.Size)
	if d.RNG != nil && d.RNG.Float64() < d.DropProb(p.QCI) {
		d.Dropped++
		d.Pool.Put(p)
		return
	}
	d.Forwarded++
	if d.Next != nil {
		d.Next.Recv(p)
	}
}
