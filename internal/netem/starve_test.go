package netem

import (
	"testing"
	"time"

	"tlc/internal/sim"
)

// TestPriorityFlowSurvivesFlood is a regression test for queue
// corruption in evictLowerPriority: a high-priority (QCI=7) trickle
// must survive a sustained low-priority flood on a slow link, since
// every arrival can evict queued lower-priority bytes.
func TestPriorityFlowSurvivesFlood(t *testing.T) {
	s := sim.NewScheduler()
	var gameGot, bgGot int
	sink := NodeFunc(func(p *Packet) {
		if p.QCI == 7 {
			gameGot++
		} else {
			bgGot++
		}
	})
	l := NewLink("air", s, 5.6e6, 0, 256<<10, sink)
	ids := &IDGen{}
	bg := &TrafficSource{Sched: s, IDs: ids, Dst: l, Flow: "bg", QCI: 9,
		RateBps: 125e6, PacketSize: 7000, Background: true}
	game := &TrafficSource{Sched: s, IDs: ids, Dst: l, Flow: "g", QCI: 7,
		RateBps: 25 * 128 * 8, PacketSize: 128}
	bg.Start(0)
	game.Start(0)
	s.RunUntil(10 * time.Second)
	bg.Stop()
	game.Stop()
	s.RunUntil(11 * time.Second)
	// 25 pkt/s for 10s = ~250 packets; allow a couple in flight.
	if gameGot < 245 {
		t.Fatalf("priority flow starved: %d/250 delivered (bg %d, drops %d)",
			gameGot, bgGot, l.Stats.QueueDrops)
	}
	// The flood itself is mostly shed (5.6Mbps of 125Mbps offered).
	if l.Stats.QueueDrops == 0 {
		t.Fatal("no queue drops under a 20x overload")
	}
	// Byte accounting must balance after heavy eviction churn.
	if l.QueuedBytes() < 0 || l.QueuedBytes() > 256<<10 {
		t.Fatalf("queuedBytes accounting corrupt: %d", l.QueuedBytes())
	}
}
