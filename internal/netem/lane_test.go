package netem

import (
	"strings"
	"testing"
	"time"

	"tlc/internal/sim"
)

// TestLaneSendCopiesAndRecyclesImmediately pins the pool-per-shard
// contract: Send copies the packet by value into the lane buffer and
// the struct goes straight back to the source pool.
func TestLaneSendCopiesAndRecyclesImmediately(t *testing.T) {
	s := sim.NewScheduler()
	pp := &PacketPool{}
	l := NewLane("x2", 10*time.Millisecond, s, pp)
	p := pp.Get()
	p.ID = 7
	p.Size = 100
	p.TEID = 3
	l.Send(p)
	if l.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", l.Pending())
	}
	if l.Stats.Packets != 1 || l.Stats.Bytes != 100 {
		t.Fatalf("stats = %+v, want 1 packet / 100 bytes", l.Stats)
	}
	// The struct must already be reusable: the next Get returns the
	// same (zeroed) struct without disturbing the buffered copy.
	q := pp.Get()
	if q != p {
		t.Fatal("Send did not return the packet struct to the source pool")
	}
	if q.ID != 0 || q.Size != 0 {
		t.Fatalf("recycled struct not zeroed: %+v", q)
	}
	if l.buf[0].pkt.ID != 7 || l.buf[0].pkt.Size != 100 || l.buf[0].pkt.TEID != 3 {
		t.Fatalf("buffered copy corrupted by recycling: %+v", l.buf[0].pkt)
	}
}

// TestLaneRejectsNonPositiveDelay: a zero-delay lane could deliver
// inside the execution window, so construction must refuse it.
func TestLaneRejectsNonPositiveDelay(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewLane accepted delay 0")
		}
	}()
	NewLane("bad", 0, sim.NewScheduler(), nil)
}

// TestShardParityInboxMergesByAtThenLaneThenSeq pins the deterministic
// merge key: earlier arrival time first; at equal times the earlier-
// attached lane first; within one lane, send order.
func TestShardParityInboxMergesByAtThenLaneThenSeq(t *testing.T) {
	srcA := sim.NewScheduler()
	srcB := sim.NewScheduler()
	dstSched := sim.NewScheduler()
	dstPool := &PacketPool{}
	var got []uint64
	ib := NewInbox("in", dstSched, dstPool, NodeFunc(func(p *Packet) {
		got = append(got, p.ID)
		dstPool.Put(p)
	}))
	delay := 10 * time.Millisecond
	laneA := NewLane("a", delay, srcA, nil)
	laneB := NewLane("b", delay, srcB, nil)
	ib.Attach(laneA)
	ib.Attach(laneB)

	send := func(l *Lane, src *sim.Scheduler, at sim.Time, id uint64) {
		src.At(at, func() { l.Send(&Packet{ID: id, Size: 10}) })
	}
	// B sends first in wall order but A's equal-time traffic must win
	// (lane attach order), and A's 1ms message beats both.
	send(laneB, srcB, sim.Time(2*time.Millisecond), 20)
	send(laneB, srcB, sim.Time(2*time.Millisecond), 21) // same instant: send order
	send(laneA, srcA, sim.Time(2*time.Millisecond), 10)
	send(laneA, srcA, sim.Time(1*time.Millisecond), 11)
	window := sim.Time(delay)
	srcA.RunUntil(window)
	srcB.RunUntil(window)
	ib.Flush(window)
	dstSched.RunUntil(window + sim.Time(delay))
	want := []uint64{11, 10, 20, 21}
	if len(got) != len(want) {
		t.Fatalf("delivered %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("delivered %v, want %v", got, want)
		}
	}
	if ib.Arrived() != 4 || ib.Stats.Bytes != 40 {
		t.Fatalf("inbox stats = %+v, want 4 packets / 40 bytes", ib.Stats)
	}
	if laneA.Pending() != 0 || laneB.Pending() != 0 {
		t.Fatal("Flush left lane buffers non-empty")
	}
}

// TestInboxFlushPanicsOnBarrierViolation: a message timed at or before
// the window end means the lookahead contract was broken upstream;
// Flush must fail loudly, not deliver into the past.
func TestInboxFlushPanicsOnBarrierViolation(t *testing.T) {
	src := sim.NewScheduler()
	dst := sim.NewScheduler()
	ib := NewInbox("in", dst, nil, nil)
	l := NewLane("a", 5*time.Millisecond, src, nil)
	ib.Attach(l)
	l.Send(&Packet{ID: 1}) // arrival at 5ms
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Flush accepted a message inside the window")
		}
		if !strings.Contains(r.(string), "violates the window barrier") {
			t.Fatalf("panic %q should name the barrier violation", r)
		}
	}()
	ib.Flush(sim.Time(5 * time.Millisecond))
}

// TestInboxRejectsMixedLaneDelays: the FIFO arrival ring pairs pushes
// with pooled delivery events, which is only order-safe when every
// lane of an inbox shares one delay.
func TestInboxRejectsMixedLaneDelays(t *testing.T) {
	s := sim.NewScheduler()
	ib := NewInbox("in", s, nil, nil)
	ib.Attach(NewLane("a", 5*time.Millisecond, s, nil))
	defer func() {
		if recover() == nil {
			t.Fatal("Attach accepted a lane with a different delay")
		}
	}()
	ib.Attach(NewLane("b", 6*time.Millisecond, s, nil))
}

// TestInboxMinDelay: the exchanger's lookahead bound is the shared
// lane delay, and effectively infinite with no lanes attached.
func TestInboxMinDelay(t *testing.T) {
	s := sim.NewScheduler()
	ib := NewInbox("in", s, nil, nil)
	if ib.MinDelay() < time.Duration(1<<62) {
		t.Fatalf("empty inbox MinDelay = %v, want effectively infinite", ib.MinDelay())
	}
	ib.Attach(NewLane("a", 7*time.Millisecond, s, nil))
	if ib.MinDelay() != 7*time.Millisecond {
		t.Fatalf("MinDelay = %v, want 7ms", ib.MinDelay())
	}
}

// TestShardParityLaneSteadyStateZeroAllocs extends the PR 3 zero-alloc
// guards to the cross-shard path: once lane buffers, the arrival ring
// and both pools are warm, a full send → flush → deliver cycle
// allocates nothing.
func TestShardParityLaneSteadyStateZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are perturbed by -race instrumentation")
	}
	src := sim.NewScheduler()
	dst := sim.NewScheduler()
	srcPool := &PacketPool{}
	dstPool := &PacketPool{}
	ib := NewInbox("in", dst, dstPool, NodeFunc(func(p *Packet) { dstPool.Put(p) }))
	delay := time.Millisecond
	l := NewLane("a", delay, src, srcPool)
	ib.Attach(l)

	window := sim.Time(0)
	sendBatch := func(batch int) func() {
		return func() {
			for i := 0; i < batch; i++ {
				p := srcPool.Get()
				p.ID = uint64(i)
				p.Size = 100
				l.Send(p)
			}
		}
	}
	send8 := sendBatch(8)
	cycle := func() {
		// Send mid-window, as real traffic does: a send at exactly
		// time zero would arrive exactly on the first barrier.
		src.AtPooled(window+sim.Time(delay)/2, send8)
		window += sim.Time(delay)
		src.RunUntil(window)
		ib.Flush(window)
		dst.RunUntil(window)
	}
	for i := 0; i < 32; i++ { // warm buffers, ring, pools, free lists
		cycle()
	}
	avg := testing.AllocsPerRun(100, func() { cycle() })
	if avg != 0 {
		t.Fatalf("lane send/flush/deliver steady state allocates %v per cycle, want 0", avg)
	}
}
