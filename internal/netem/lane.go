// Cross-shard packet transport for the sharded event engine
// (sim.ShardGroup). A Lane is the sending half: a one-way conduit out
// of one partition with a fixed latency at least the shard group's
// lookahead. An Inbox is the receiving half: it merges every lane
// pointing at one partition and schedules the arrivals on that
// partition's scheduler at each window barrier.
//
// Pools are shard-local: a packet crossing a lane is copied by value
// into the lane buffer and its struct returns to the *source* shard's
// pool at Send; the Inbox draws a fresh struct from the
// *destination* shard's pool at Flush. No packet struct is ever
// owned by two schedulers.
//
// Determinism: Flush merges the inbound lanes by (at, lane, seq) —
// arrival time, then the lane's attach order, then the send order
// within the lane — and schedules arrivals in that merged order, so
// the destination scheduler assigns (at, seq) event keys identically
// no matter how many worker goroutines ran the window. Arrivals ride
// the same cached-callback FIFO ring trick as Link delivery: within
// an Inbox every lane shares one Delay, so merged arrival times are
// non-decreasing across flushes and each pooled delivery event pops
// exactly the packet pushed with it.
package netem

import (
	"fmt"
	"time"

	"tlc/internal/sim"
)

// laneMsg is one packet in transit between partitions, held by value
// so the source shard's struct can be recycled immediately.
type laneMsg struct {
	at  sim.Time
	pkt Packet
}

// LaneStats counts a lane's traffic.
type LaneStats struct {
	Packets uint64
	Bytes   uint64
}

// Lane is the sending half of a cross-shard conduit. It belongs to
// the source partition: only that partition's events may call Send,
// and only the barrier (single-threaded) drains it.
type Lane struct {
	Name  string
	Delay time.Duration  // cross-shard latency; >= the group lookahead
	Sched *sim.Scheduler // source partition's clock
	Pool  *PacketPool    // source partition's pool (packets return here)

	Stats LaneStats

	buf       []laneMsg
	published bool
}

// NewLane returns a lane out of the partition owning sched and pool.
func NewLane(name string, delay time.Duration, sched *sim.Scheduler, pool *PacketPool) *Lane {
	if delay <= 0 {
		panic(fmt.Sprintf("netem: non-positive lane delay on %q", name))
	}
	return &Lane{Name: name, Delay: delay, Sched: sched, Pool: pool}
}

// Send puts a packet on the lane. The packet is copied by value and
// its struct returns to the source pool; the caller must not touch it
// afterwards. Delivery happens on the destination partition at
// now+Delay, after the next window barrier. Send must run from an
// event strictly after time zero: the very first window is closed
// [0, L] rather than half-open, so a send at exactly t=0 would arrive
// exactly on the first barrier, which Flush rejects.
//
//tlcvet:hotpath cross-shard egress; every forwarded packet takes one copy through here
func (l *Lane) Send(p *Packet) {
	l.Stats.Packets++
	l.Stats.Bytes += uint64(p.Size)
	l.buf = append(l.buf, laneMsg{at: l.Sched.Now() + sim.Time(l.Delay), pkt: *p})
	l.Pool.Put(p)
}

// Pending returns the number of packets buffered since the last
// barrier flush.
func (l *Lane) Pending() int { return len(l.buf) }

// InboxStats counts arrivals delivered into the destination
// partition.
type InboxStats struct {
	Packets uint64
	Bytes   uint64
}

// Inbox is the receiving half: all lanes into one partition. It
// implements sim.Exchanger; register it on the shard group and attach
// every inbound lane. All attached lanes must share one Delay (the
// FIFO arrival ring depends on it; see the package comment).
type Inbox struct {
	Name  string
	Sched *sim.Scheduler // destination partition's scheduler
	Pool  *PacketPool    // destination partition's pool
	Dst   Node           // where arrivals are delivered

	Stats InboxStats

	lanes []*Lane
	heads []int // per-lane merge cursor, reused across flushes

	ring      []*Packet // FIFO of packets awaiting their delivery event
	ringHead  int
	ringLen   int
	deliverFn func()

	published bool
}

// NewInbox returns the receiving half for the partition owning sched
// and pool, delivering arrivals to dst.
func NewInbox(name string, sched *sim.Scheduler, pool *PacketPool, dst Node) *Inbox {
	return &Inbox{Name: name, Sched: sched, Pool: pool, Dst: dst}
}

// Attach registers an inbound lane. Lanes merge in attach order —
// part of the deterministic (at, lane, seq) key — and must all carry
// the inbox's single Delay.
func (ib *Inbox) Attach(l *Lane) {
	if len(ib.lanes) > 0 && l.Delay != ib.lanes[0].Delay {
		panic(fmt.Sprintf("netem: inbox %q mixes lane delays %v and %v; the arrival ring needs one",
			ib.Name, ib.lanes[0].Delay, l.Delay))
	}
	ib.lanes = append(ib.lanes, l)
	ib.heads = append(ib.heads, 0)
}

// MinDelay implements sim.Exchanger.
func (ib *Inbox) MinDelay() time.Duration {
	if len(ib.lanes) == 0 {
		return time.Duration(1<<63 - 1)
	}
	return ib.lanes[0].Delay
}

// Flush implements sim.Exchanger: it merges every attached lane's
// buffered packets by (at, lane, seq) and schedules their deliveries
// on the destination scheduler. It runs single-threaded at the
// window barrier, which is what makes touching the destination pool
// and scheduler safe.
//
//tlcvet:hotpath cross-shard ingress; runs at every window barrier and once per forwarded packet
func (ib *Inbox) Flush(limit sim.Time) {
	for {
		best := -1
		var bestAt sim.Time
		for li, l := range ib.lanes {
			h := ib.heads[li]
			if h >= len(l.buf) {
				continue
			}
			if best < 0 || l.buf[h].at < bestAt {
				best, bestAt = li, l.buf[h].at
			}
		}
		if best < 0 {
			break
		}
		m := &ib.lanes[best].buf[ib.heads[best]]
		ib.heads[best]++
		if m.at <= limit {
			panic(fmt.Sprintf("netem: inbox %q message at %v violates the window barrier at %v", ib.Name, m.at, limit))
		}
		ib.Stats.Packets++
		ib.Stats.Bytes += uint64(m.pkt.Size)
		p := ib.Pool.Get()
		*p = m.pkt
		ib.ringPush(p)
		if ib.deliverFn == nil {
			//tlcvet:allow hotalloc — allocated once per inbox on first use, then cached in deliverFn
			ib.deliverFn = func() {
				pkt := ib.ringPop()
				if ib.Dst != nil {
					ib.Dst.Recv(pkt)
				}
			}
		}
		ib.Sched.AtPooled(m.at, ib.deliverFn)
	}
	for li, l := range ib.lanes {
		if ib.heads[li] > 0 {
			l.buf = l.buf[:0]
			ib.heads[li] = 0
		}
	}
}

// ringPush appends to the arrival ring, growing it when full.
func (ib *Inbox) ringPush(p *Packet) {
	if ib.ringLen == len(ib.ring) {
		ib.ringGrow()
	}
	ib.ring[(ib.ringHead+ib.ringLen)&(len(ib.ring)-1)] = p
	ib.ringLen++
}

// ringPop removes and returns the oldest pending arrival.
func (ib *Inbox) ringPop() *Packet {
	p := ib.ring[ib.ringHead]
	ib.ring[ib.ringHead] = nil
	ib.ringHead = (ib.ringHead + 1) & (len(ib.ring) - 1)
	ib.ringLen--
	return p
}

// ringGrow doubles the ring (16 slots minimum), unwrapping the FIFO
// to the front of the new buffer.
func (ib *Inbox) ringGrow() {
	n := len(ib.ring) * 2
	if n == 0 {
		n = 16
	}
	//tlcvet:allow hotalloc — geometric doubling; amortized O(1) per push and quiescent once the ring reaches the in-flight high-water mark
	buf := make([]*Packet, n)
	for i := 0; i < ib.ringLen; i++ {
		buf[i] = ib.ring[(ib.ringHead+i)&(len(ib.ring)-1)]
	}
	ib.ring = buf
	ib.ringHead = 0
}

// Arrived returns the number of packets delivered into this partition
// over all flushes.
func (ib *Inbox) Arrived() uint64 { return ib.Stats.Packets }
