package device

import (
	"testing"
	"testing/quick"

	"tlc/internal/netem"
)

func TestModemCountsBothDirections(t *testing.T) {
	m := &Modem{}
	sinkUL := &netem.Sink{}
	sinkDL := &netem.Sink{}
	ul := m.ULNode(sinkUL)
	dl := m.DLNode(sinkDL)
	ul.Recv(&netem.Packet{Size: 100})
	ul.Recv(&netem.Packet{Size: 200})
	dl.Recv(&netem.Packet{Size: 50})
	gotUL, gotDL := m.CounterSnapshot()
	if gotUL != 300 || gotDL != 50 {
		t.Fatalf("snapshot = (%d, %d), want (300, 50)", gotUL, gotDL)
	}
	pUL, pDL := m.Packets()
	if pUL != 2 || pDL != 1 {
		t.Fatalf("packets = (%d, %d)", pUL, pDL)
	}
	if sinkUL.Packets != 2 || sinkDL.Packets != 1 {
		t.Fatal("modem did not forward")
	}
}

func TestModemNilNextIsSafe(t *testing.T) {
	m := &Modem{}
	m.ULNode(nil).Recv(&netem.Packet{Size: 10})
	m.DLNode(nil).Recv(&netem.Packet{Size: 20})
	ul, dl := m.CounterSnapshot()
	if ul != 10 || dl != 20 {
		t.Fatalf("snapshot = (%d, %d)", ul, dl)
	}
}

func TestModemTaps(t *testing.T) {
	m := &Modem{}
	tapped := 0
	m.TapDL(netem.NodeFunc(func(*netem.Packet) { tapped++ }))
	m.TapUL(netem.NodeFunc(func(*netem.Packet) { tapped++ }))
	m.DLNode(nil).Recv(&netem.Packet{Size: 1})
	m.ULNode(nil).Recv(&netem.Packet{Size: 1})
	if tapped != 2 {
		t.Fatalf("taps fired %d times, want 2", tapped)
	}
}

func TestOSCountersHonest(t *testing.T) {
	o := &OSCounters{}
	o.RXNode().Recv(&netem.Packet{Size: 500})
	o.TXNode().Recv(&netem.Packet{Size: 300})
	if o.TotalRxBytes() != 500 || o.TotalTxBytes() != 300 {
		t.Fatalf("honest counters = (%d, %d)", o.TotalRxBytes(), o.TotalTxBytes())
	}
}

func TestOSCountersUnderReport(t *testing.T) {
	o := &OSCounters{Tamper: UnderReport{Factor: 0.5}}
	o.RXNode().Recv(&netem.Packet{Size: 1000})
	if o.TotalRxBytes() != 500 {
		t.Fatalf("under-reported RX = %d, want 500", o.TotalRxBytes())
	}
	o.TXNode().Recv(&netem.Packet{Size: 400})
	if o.TotalTxBytes() != 200 {
		t.Fatalf("under-reported TX = %d, want 200", o.TotalTxBytes())
	}
}

func TestOSCountersBillCycleReset(t *testing.T) {
	o := &OSCounters{}
	rx := o.RXNode()
	rx.Recv(&netem.Packet{Size: 1000})
	o.Reset()
	if o.TotalRxBytes() != 0 {
		t.Fatalf("post-reset RX = %d, want 0", o.TotalRxBytes())
	}
	rx.Recv(&netem.Packet{Size: 250})
	if o.TotalRxBytes() != 250 {
		t.Fatalf("RX after reset+traffic = %d, want 250", o.TotalRxBytes())
	}
	if o.Resets() != 1 {
		t.Fatalf("Resets = %d", o.Resets())
	}
}

func TestTamperDoesNotAffectModem(t *testing.T) {
	// The whole point of §5.4: OS tampering cannot reach the modem.
	m := &Modem{}
	o := &OSCounters{Tamper: UnderReport{Factor: 0}}
	dl := m.DLNode(o.RXNode())
	dl.Recv(&netem.Packet{Size: 800})
	if o.TotalRxBytes() != 0 {
		t.Fatal("tamper had no effect on OS counters")
	}
	_, hw := m.CounterSnapshot()
	if hw != 800 {
		t.Fatalf("modem counter affected by tamper: %d", hw)
	}
}

func TestUnderReportProperty(t *testing.T) {
	f := func(v uint32, f8 uint8) bool {
		factor := float64(f8%101) / 100
		u := UnderReport{Factor: factor}
		got := u.AdjustRX(uint64(v))
		return got <= uint64(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestProfilesCalibration(t *testing.T) {
	for _, name := range DeviceNames {
		p, ok := Profiles[name]
		if !ok {
			t.Fatalf("missing profile %s", name)
		}
		if p.Name != name {
			t.Fatalf("profile name mismatch: %q vs %q", p.Name, name)
		}
		if p.RTT <= 0 || p.NegotiationCrypto <= 0 || p.VerifyPoC <= 0 {
			t.Fatalf("profile %s has non-positive timings: %+v", name, p)
		}
	}
	// The Z840 verification cost must support the paper's 230K
	// verifications/hour on a single workstation.
	z := Profiles["Z840"]
	perHour := float64(3600) / z.VerifyPoC.Seconds()
	if perHour < 200_000 || perHour > 260_000 {
		t.Fatalf("Z840 sustains %.0f verifications/hr, want ~230K", perHour)
	}
	// Paper ordering: Pixel 2 XL is the slowest verifier, Z840 the
	// fastest.
	if !(Profiles["Pixel2XL"].VerifyPoC > Profiles["S7Edge"].VerifyPoC &&
		Profiles["S7Edge"].VerifyPoC > Profiles["EL20"].VerifyPoC &&
		Profiles["EL20"].VerifyPoC > Profiles["Z840"].VerifyPoC) {
		t.Fatal("device verification ordering does not match Figure 17")
	}
}

func TestNegotiationLatencySplit(t *testing.T) {
	// §7.2: crypto contributes ~54.9% of negotiation time, the
	// round-trip ~45.1%. One negotiation includes one RTT.
	for _, name := range DeviceNames {
		p := Profiles[name]
		total := p.NegotiationCrypto + p.RTT
		frac := float64(p.NegotiationCrypto) / float64(total)
		if frac < 0.45 || frac < 0.50 && name != "EL20" {
			t.Fatalf("%s crypto fraction = %.3f, want ~0.55", name, frac)
		}
		if frac > 0.65 {
			t.Fatalf("%s crypto fraction = %.3f, too high", name, frac)
		}
	}
}
