// Package device models the edge device (UE): the hardware modem with
// tamper-resilient traffic counters (read by the RRC COUNTER CHECK
// procedure, §5.4), the OS-level counters behind TrafficStats/netstat
// style APIs that a selfish edge *can* manipulate, and per-device cost
// profiles calibrated to the paper's hardware (HPE EL20, Google Pixel
// 2 XL, Samsung S7 Edge, HP Z840 workstation).
package device

import (
	"time"

	"tlc/internal/netem"
)

// Modem is the 4G/5G hardware modem. Its counters increment for every
// byte that actually crosses the air interface and, being implemented
// in hardware, cannot be altered by the device OS: "we are unaware of
// attacks that can manipulate the cellular hardware modem" (§5.4).
type Modem struct {
	ulBytes   uint64
	dlBytes   uint64
	ulPackets uint64
	dlPackets uint64

	// Listeners observe packets after counting (the OS counters and
	// the application stack chain from here).
	onUL []netem.Node
	onDL []netem.Node
}

// CounterSnapshot implements ran.ModemCounters.
func (m *Modem) CounterSnapshot() (ulBytes, dlBytes uint64) {
	return m.ulBytes, m.dlBytes
}

// Packets returns the packet counts (ul, dl).
func (m *Modem) Packets() (ul, dl uint64) { return m.ulPackets, m.dlPackets }

// ULNode returns a Node that counts uplink traffic through the modem
// and forwards it to next (the air interface).
func (m *Modem) ULNode(next netem.Node) netem.Node {
	return netem.NodeFunc(func(p *netem.Packet) {
		m.ulBytes += uint64(p.Size)
		m.ulPackets++
		for _, n := range m.onUL {
			n.Recv(p)
		}
		if next != nil {
			next.Recv(p)
		}
	})
}

// DLNode returns a Node that counts downlink traffic received over
// the air and forwards it up the stack to next (the OS/application).
func (m *Modem) DLNode(next netem.Node) netem.Node {
	return netem.NodeFunc(func(p *netem.Packet) {
		m.dlBytes += uint64(p.Size)
		m.dlPackets++
		for _, n := range m.onDL {
			n.Recv(p)
		}
		if next != nil {
			next.Recv(p)
		}
	})
}

// TapUL registers an extra observer of uplink packets.
func (m *Modem) TapUL(n netem.Node) { m.onUL = append(m.onUL, n) }

// TapDL registers an extra observer of downlink packets.
func (m *Modem) TapDL(n netem.Node) { m.onDL = append(m.onDL, n) }

// Tamper models how a selfish edge manipulates the OS-level counters
// that strawman monitors rely on (§5.4): modified TrafficStats /
// netstat implementations, or the no-root bill-cycle reset trick.
type Tamper interface {
	// AdjustRX maps the true cumulative received bytes to what the
	// tampered API reports.
	AdjustRX(true_ uint64) uint64
	// AdjustTX maps the true cumulative sent bytes to what the
	// tampered API reports.
	AdjustTX(true_ uint64) uint64
}

// Honest leaves the counters alone.
type Honest struct{}

// AdjustRX implements Tamper.
func (Honest) AdjustRX(v uint64) uint64 { return v }

// AdjustTX implements Tamper.
func (Honest) AdjustTX(v uint64) uint64 { return v }

// UnderReport scales the received counter down, modelling a modified
// Android/Linux image that lies to TrafficStats-style queries.
type UnderReport struct {
	// Factor in [0,1]: the fraction of real usage reported.
	Factor float64
}

// AdjustRX implements Tamper.
func (u UnderReport) AdjustRX(v uint64) uint64 { return uint64(float64(v) * u.Factor) }

// AdjustTX implements Tamper.
func (u UnderReport) AdjustTX(v uint64) uint64 { return uint64(float64(v) * u.Factor) }

// OSCounters are the operating-system traffic statistics. They mirror
// the modem's ground truth but are read through the Tamper model.
type OSCounters struct {
	Tamper Tamper

	rx, tx         uint64
	rxBase, txBase uint64 // subtracted after a bill-cycle reset
	resets         int
}

// RXNode returns a Node counting received (downlink) bytes.
func (o *OSCounters) RXNode() netem.Node {
	return netem.NodeFunc(func(p *netem.Packet) { o.rx += uint64(p.Size) })
}

// TXNode returns a Node counting sent (uplink) bytes.
func (o *OSCounters) TXNode() netem.Node {
	return netem.NodeFunc(func(p *netem.Packet) { o.tx += uint64(p.Size) })
}

// Reset emulates the no-root "reset the bill cycle for smaller usage"
// manipulation [31]: subsequent reads report usage since the reset.
func (o *OSCounters) Reset() {
	o.rxBase, o.txBase = o.rx, o.tx
	o.resets++
}

// Resets returns how many bill-cycle resets occurred.
func (o *OSCounters) Resets() int { return o.resets }

func (o *OSCounters) tamper() Tamper {
	if o.Tamper == nil {
		return Honest{}
	}
	return o.Tamper
}

// TotalRxBytes is the TrafficStats-style read of received bytes.
func (o *OSCounters) TotalRxBytes() uint64 {
	return o.tamper().AdjustRX(o.rx - o.rxBase)
}

// TotalTxBytes is the TrafficStats-style read of sent bytes.
func (o *OSCounters) TotalTxBytes() uint64 {
	return o.tamper().AdjustTX(o.tx - o.txBase)
}

// Profile captures a device's crypto and network timing, calibrated
// against the paper's measurements (Figures 16a and 17).
type Profile struct {
	Name string
	// RTT is the mean device<->network round-trip time and its
	// spread (Figure 16a: ping x200 per device).
	RTT      time.Duration
	RTTSigma time.Duration
	// NegotiationCrypto is the mean device-side cryptographic time
	// in a 1-round PoC negotiation (sign CDA + verify CDR + verify
	// PoC). Paper: crypto contributes 54.9% of negotiation latency.
	NegotiationCrypto      time.Duration
	NegotiationCryptoSigma time.Duration
	// VerifyPoC is the mean time for a full Algorithm 2 public
	// verification on this hardware.
	VerifyPoC      time.Duration
	VerifyPoCSigma time.Duration
}

// Profiles for the paper's evaluation hardware. Means match Figure 17
// (negotiation: 65.8/105.5/93.7 ms on EL20/Pixel 2 XL/S7 Edge;
// verification: 23.2/75.6/58.3/15.7 ms adding the Z840) with the
// crypto/RTT split of §7.2 (54.9% crypto, 45.1% round-trip).
var Profiles = map[string]Profile{
	"EL20": {
		Name: "EL20",
		RTT:  30 * time.Millisecond, RTTSigma: 6 * time.Millisecond,
		NegotiationCrypto: 36100 * time.Microsecond, NegotiationCryptoSigma: 7 * time.Millisecond,
		VerifyPoC: 23200 * time.Microsecond, VerifyPoCSigma: 5 * time.Millisecond,
	},
	"Pixel2XL": {
		Name: "Pixel2XL",
		RTT:  48 * time.Millisecond, RTTSigma: 10 * time.Millisecond,
		NegotiationCrypto: 57900 * time.Microsecond, NegotiationCryptoSigma: 12 * time.Millisecond,
		VerifyPoC: 75600 * time.Microsecond, VerifyPoCSigma: 15 * time.Millisecond,
	},
	"S7Edge": {
		Name: "S7Edge",
		RTT:  42 * time.Millisecond, RTTSigma: 9 * time.Millisecond,
		NegotiationCrypto: 51400 * time.Microsecond, NegotiationCryptoSigma: 10 * time.Millisecond,
		VerifyPoC: 58300 * time.Microsecond, VerifyPoCSigma: 12 * time.Millisecond,
	},
	"Z840": {
		Name: "Z840",
		RTT:  1 * time.Millisecond, RTTSigma: 200 * time.Microsecond,
		NegotiationCrypto: 8 * time.Millisecond, NegotiationCryptoSigma: 1500 * time.Microsecond,
		VerifyPoC: 15700 * time.Microsecond, VerifyPoCSigma: 3 * time.Millisecond,
	},
}

// DeviceNames lists the edge devices (excluding the Z840 server) in
// the order the paper's figures present them.
var DeviceNames = []string{"EL20", "Pixel2XL", "S7Edge"}
