package fixture

import "time"

// Cycle is pure duration arithmetic: no wall-clock read involved.
const Cycle = time.Hour

// Epoch builds a fixed instant; time.Unix is a conversion, not a
// clock read.
func Epoch() time.Time {
	return time.Unix(0, 0).Add(Cycle)
}
