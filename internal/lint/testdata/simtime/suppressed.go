package fixture

import "time"

// RealDeadline is a sanctioned wall-clock read, waived on the same
// line.
func RealDeadline() time.Time {
	return time.Now().Add(time.Minute) //tlcvet:allow simtime — fixture: real network deadline
}

// RealSleep is a sanctioned wall-clock wait, waived from the line
// above.
func RealSleep() {
	//tlcvet:allow simtime — fixture: throttling a live connection
	time.Sleep(time.Millisecond)
}
