// Package fixture is the simtime positive fixture: every wall-clock
// read below must be reported.
package fixture

import "time"

// Deadline leaks the wall clock into simulated control flow.
func Deadline() time.Time {
	return time.Now().Add(time.Second) // want simtime "time.Now"
}

// Spin waits on real time instead of the event scheduler.
func Spin() time.Duration {
	start := time.Now()            // want simtime "time.Now"
	time.Sleep(time.Millisecond)   // want simtime "time.Sleep"
	<-time.After(time.Millisecond) // want simtime "time.After"
	return time.Since(start)       // want simtime "time.Since"
}

// Clock smuggles the wall-clock reader out as a value (not a call).
var Clock func() time.Time = time.Now // want simtime "time.Now"
