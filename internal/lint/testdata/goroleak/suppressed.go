package goroleak

// watch is deliberately immortal; the waiver names who owns its
// lifetime.
func (s *server) watch() {
	//tlcvet:allow goroleak — fixture watcher lives for the process; the kernel reaps it
	go func() {
		for {
			<-s.work
		}
	}()
}
