package goroleak

// drain's goroutines all stop: a select case returning on the stop
// channel, a range loop ended by channel close, and a labeled break
// that really targets the loop.
func (s *server) drain() {
	go func() {
		for {
			select {
			case <-s.stop:
				return
			case v := <-s.work:
				_ = v
			}
		}
	}()
	go func() {
		for v := range s.work {
			_ = v
		}
	}()
	go func() {
	loop:
		for {
			select {
			case <-s.stop:
				break loop
			case v := <-s.work:
				_ = v
			}
		}
		close(s.stop)
	}()
}
