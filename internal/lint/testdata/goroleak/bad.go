// Package goroleak exercises goroutine stop-path analysis: every go
// statement in a long-lived component needs a reachable way for the
// goroutine to end.
package goroleak

type server struct {
	work chan int
	stop chan struct{}
}

// serve spawns the classic leak: the bare break exits the select, not
// the for, so the goroutine can never end.
func (s *server) serve() {
	go func() { // want goroleak "no stop path"
		for {
			select {
			case v := <-s.work:
				if v == 0 {
					break
				}
			}
		}
	}()
	go s.pump() // want goroleak "no stop path"
}

// pump's unbounded loop lives in a helper; the analysis follows the
// static call from the go statement.
func (s *server) pump() {
	for {
		<-s.work
	}
}
