// Package hotalloc exercises the hotalloc analyzer: a //tlcvet:hotpath
// function and every intra-module function it statically calls may not
// contain allocating constructs.
package hotalloc

import "fmt"

type event struct {
	at int64
}

type ring struct {
	buf    []*event
	held   *event
	stamp  string
	cached func()
}

// Step is the annotated entry point of the fixture's hot loop.
//
//tlcvet:hotpath fixture hot loop
func (r *ring) Step(n int) {
	r.held = &event{at: int64(n)} // want hotalloc "composite literal escapes"
	r.buf = append(r.buf, r.held) // amortized self-append form: sanctioned
	grow(r, n)
}

// grow is unannotated: the call-graph walk reaches it from Step.
func grow(r *ring, n int) {
	spare := new(event) // want hotalloc "new allocates"
	r.held = spare
	scratch := make([]*event, 0, n) // want hotalloc "make allocates"
	r.buf = append(scratch, r.held) // want hotalloc "append outside the amortized"
	label(r, n)
}

func label(r *ring, n int) {
	r.stamp = fmt.Sprint()          // want hotalloc "fmt.Sprint formats"
	r.stamp = r.stamp + "!"         // want hotalloc "string concatenation allocates"
	r.cached = func() { r.mark(n) } // want hotalloc "captures"
	sink(n)                         // want hotalloc "boxes int"
	keep := any(n)                  // want hotalloc "conversion boxes int"
	_ = keep
}

func (r *ring) mark(n int) { r.held.at = int64(n) }

func sink(v any) { _ = v }
