package hotalloc

import "fmt"

// Pop is hot but allocation-free: slicing, self-append growth,
// pointer-shaped interface arguments and panic formatting are all
// sanctioned.
//
//tlcvet:hotpath fixture pop side
func (r *ring) Pop(n int) *event {
	if n < 0 {
		panic(fmt.Sprintf("hotalloc fixture: bad n %d", n)) // a causality panic may format its last words
	}
	if len(r.buf) == 0 {
		return nil
	}
	e := r.buf[len(r.buf)-1]
	r.buf = r.buf[:len(r.buf)-1]
	sink(e) // pointers ride in the interface word: no boxing
	return e
}
