package hotalloc

// Refill is the slow path of the fixture loop: its allocations are
// deliberate and each carries a waiver with the argument.
//
//tlcvet:hotpath fixture slow-path twin
func (r *ring) Refill(n int) {
	//tlcvet:allow hotalloc — pool miss: allocates once per burst high-water mark
	r.held = &event{at: int64(n)}
	//tlcvet:allow hotalloc — geometric growth, amortized O(1) per push
	r.buf = make([]*event, 0, n)
}
