package fixture

import "math/rand"

// Stream builds an explicitly seeded source — exactly how sim.RNG
// wraps math/rand, and therefore allowed.
func Stream(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}
