package fixture

import "math/rand"

// Shuffle draws from a generator the caller already owns — naming the
// *rand.Rand type is fine anywhere; only building one is confined to
// tlc/internal/sim.
func Shuffle(rng *rand.Rand, xs []int) {
	rng.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
}

// Spread widens a unit draw taken from an injected source.
func Spread(src rand.Source, scale float64) float64 {
	return float64(src.Int63()) / (1 << 63) * scale
}
