// Package fixture is the seededrand positive fixture: draws from the
// process-global math/rand source.
package fixture

import "math/rand"

// Jitter draws from the shared global generator.
func Jitter() float64 {
	return rand.Float64() // want seededrand "rand.Float64"
}

// Pick uses the global Intn.
func Pick(n int) int {
	return rand.Intn(n) // want seededrand "rand.Intn"
}

// Reseed reseeds the generator every other package shares.
func Reseed() {
	rand.Seed(1) // want seededrand "rand.Seed"
}

// Stream builds a raw seeded generator. That avoids global state but
// sidesteps the sim.SeedForCell / RNG.Fork derivation discipline, so
// outside tlc/internal/sim it is still flagged.
func Stream(seed int64) *rand.Rand {
	src := rand.NewSource(seed) // want seededrand "rand.NewSource"
	return rand.New(src)        // want seededrand "rand.New"
}
