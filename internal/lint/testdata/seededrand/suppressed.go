package fixture

import "math/rand"

// Scramble uses the global source under an explicit waiver.
func Scramble(xs []int) {
	//tlcvet:allow seededrand — fixture: one-off helper outside any replayed experiment
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
}
