package fixture

import (
	"crypto/rand"
	"crypto/sha256"
)

// Nonce draws from the CSPRNG and digests with SHA-256: the approved
// combination.
func Nonce() ([32]byte, error) {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		return [32]byte{}, err
	}
	return sha256.Sum256(b[:]), nil
}
