// Package fixture is the cryptorand positive fixture: a pretend nonce
// helper in a crypto-sensitive package (the "poc" path segment puts it
// in scope) built on predictable randomness and broken digests.
package fixture

import (
	"crypto/md5"  // want cryptorand "crypto/md5"
	"crypto/sha1" // want cryptorand "crypto/sha1"
	"math/rand"   // want cryptorand "math/rand"
)

// WeakNonce stacks everything the check forbids.
func WeakNonce(seed int64) []byte {
	var b [16]byte
	_, _ = rand.New(rand.NewSource(seed)).Read(b[:])
	s := sha1.Sum(b[:])
	m := md5.Sum(s[:])
	return m[:]
}
