package fixture

import (
	legacymd5 "crypto/md5" //tlcvet:allow cryptorand — fixture: checksum interop with pre-TLC archives, not key material
)

// LegacyChecksum digests an archived record with the historical
// algorithm; no new secret material flows through here.
func LegacyChecksum(rec []byte) [16]byte {
	return legacymd5.Sum(rec)
}
