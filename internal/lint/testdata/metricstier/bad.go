// Package metricstier exercises the two-tier metrics rule: inside a
// simulated substrate, calls that observe an internal/metrics
// instrument are legal only inside PublishMetrics or a helper it
// reaches through in-package static calls.
package metricstier

import "tlc/internal/metrics"

var (
	reg   = metrics.New()
	sent  = reg.Counter("fixture_sent_total", "packets sent")
	depth = reg.Gauge("fixture_depth", "queue depth")
	lat   = reg.Histogram("fixture_latency_seconds", "delivery latency", []float64{0.001, 0.01})
)

type link struct {
	sent  uint64
	depth int64
}

// push runs inside the simulated event loop; it must count into plain
// fields and leave the instruments to PublishMetrics.
func (l *link) push() {
	l.sent++           // plain run counter: the legal tier
	sent.Inc()         // want metricstier "Counter.Inc observes"
	depth.Set(l.depth) // want metricstier "Gauge.Set observes"
	lat.Observe(0.004) // want metricstier "Histogram.Observe observes"
}

// report only reads instruments, which is legal anywhere.
func (l *link) report() uint64 { return sent.Value() }
