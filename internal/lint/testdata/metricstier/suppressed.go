package metricstier

// onWire stands in for a live-path component (faults.Conn wrapping a
// real connection): there is no run boundary to flush at, so the
// inline observation carries a waiver.
func (l *link) onWire() {
	//tlcvet:allow metricstier — live stream path fixture; no run boundary to flush at
	sent.Inc()
}
