package metricstier

// PublishMetrics is the run-boundary flush; it and the helpers it
// reaches may observe instruments.
func (l *link) PublishMetrics() {
	flush(l)
}

// flush is legal because PublishMetrics statically calls it.
func flush(l *link) {
	sent.Add(l.sent)
	l.sent = 0
	depth.Set(l.depth)
}
