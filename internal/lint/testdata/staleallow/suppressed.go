package staleallow

// guard's waiver outlives what it suppresses — the story is a
// build-tag path this run cannot see — so it names staleallow itself
// with the reason and is kept.
func guard() int {
	//tlcvet:allow simtime staleallow — suppresses simtime only under the race build tag
	return 1
}
