// Package staleallow exercises the waiver lifecycle: an
// //tlcvet:allow directive that suppresses zero findings in a full run
// is itself a finding.
package staleallow

// value is innocent; the waiver above its return suppresses nothing
// and has rotted.
func value() int {
	//tlcvet:allow simtime — left behind after a refactor // want staleallow "stale waiver"
	return 42
}

// typo'd directives suppress nothing and are always reported, even
// under a partial -checks run.
func typo() int {
	//tlcvet:allow simtym — misspelled check name // want staleallow "names no registered check"
	return 7
}
