package staleallow

import "time"

// uptime really does read the wall clock; its waiver suppresses a
// simtime finding every run and is therefore never stale.
func uptime() time.Time {
	//tlcvet:allow simtime — fixture exercises a waiver that stays in use
	return time.Now()
}
