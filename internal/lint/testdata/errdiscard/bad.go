// Package fixture is the errdiscard positive fixture: the three
// silent ways to drop an error result.
package fixture

import "os"

// Cleanup discards errors as a bare statement, a defer and a
// goroutine.
func Cleanup() {
	os.Remove("stale.lock")      // want errdiscard "os.Remove"
	defer os.Remove("tmp.state") // want errdiscard "deferred"
	go os.Remove("bg.state")     // want errdiscard "spawned"
}
