package fixture

import (
	"fmt"
	"os"
	"strings"
)

// Report handles or visibly discards every error; none of this may be
// flagged.
func Report() (string, error) {
	if err := os.Remove("state"); err != nil {
		return "", err
	}
	_ = os.Remove("state.bak") // explicit discard is reviewable
	var b strings.Builder
	fmt.Fprintf(&b, "removed %d files\n", 2) // strings.Builder never fails
	b.WriteString("done")
	fmt.Println("report ready")
	fmt.Fprintln(os.Stderr, "stderr prints are best-effort by convention")
	return b.String(), nil
}
