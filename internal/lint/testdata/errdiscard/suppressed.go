package fixture

import "os"

// BestEffort documents its discards with directives, one per style.
func BestEffort() {
	os.Remove("cache.tmp") //tlcvet:allow errdiscard — fixture: best-effort cache cleanup
	//tlcvet:allow errdiscard — fixture: directive on the preceding line
	os.Remove("cache.bak")
}
