package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GoroLeak guards goroutine lifecycle in the long-lived components:
// cmd/tlcd (a daemon that must drain cleanly on SIGTERM),
// internal/protocol (whose parties tlcd spawns per connection),
// internal/session (whose crypto workers and per-conn writer
// goroutines live as long as the daemon) and internal/sim (whose
// shard workers must all park before RunUntil
// returns, even when a partition panics). Every
// `go` statement there must have a reachable stop path: each
// unconditional `for` loop in the spawned body — or in an in-package
// function it statically calls, transitively — must be able to leave
// the goroutine via `return`, a `break` that actually targets that
// loop, `goto`, or a terminating call (panic, os.Exit, log.Fatal*,
// runtime.Goexit). Conditional and range loops count as bounded: their
// condition or channel close is the stop signal.
//
// The break analysis honours Go's targeting rules: a bare `break`
// inside a nested select/switch/for exits that construct, not the
// outer loop, so the classic leak
//
//	go func() { for { select { case v := <-work: handle(v) } } }()
//
// is reported even though it contains a breakable statement. A
// goroutine that is deliberately immortal takes a
// //tlcvet:allow goroleak waiver naming who owns its lifetime.
var GoroLeak = &Analyzer{
	Name: "goroleak",
	Doc:  "require a reachable stop path for goroutines in long-lived components (cmd/tlcd, internal/protocol, internal/session, internal/sim)",
	Applies: func(importPath string) bool {
		return pathHasSegment(importPath, "tlcd") || pathHasSegment(importPath, "protocol") ||
			pathHasSegment(importPath, "session") || pathHasSegment(importPath, "sim")
	},
	Run: runGoroLeak,
}

func runGoroLeak(pass *Pass) {
	decls := packageFuncDecls(pass)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			checkGoStmt(pass, decls, gs)
			return true
		})
	}
}

// checkGoStmt resolves the goroutine's body and walks its in-package
// call graph looking for unbounded loops with no exit.
func checkGoStmt(pass *Pass, decls map[*types.Func]*ast.FuncDecl, gs *ast.GoStmt) {
	var bodies []*ast.BlockStmt
	visited := make(map[*types.Func]bool)
	var enqueue func(fn *types.Func)
	enqueue = func(fn *types.Func) {
		if fn == nil || visited[fn] {
			return
		}
		visited[fn] = true
		if fd, ok := decls[fn]; ok {
			bodies = append(bodies, fd.Body)
		}
	}

	switch fun := unparen(gs.Call.Fun).(type) {
	case *ast.FuncLit:
		bodies = append(bodies, fun.Body)
	default:
		enqueue(calleeOf(pass.Info, gs.Call))
	}

	for i := 0; i < len(bodies); i++ {
		body := bodies[i]
		for _, pos := range leakyLoops(pass.Info, body) {
			pass.Reportf(gs.Pos(),
				"goroutine has no stop path: unbounded for loop at %s never returns, breaks out, or terminates; select on a stop/ctx channel, bound the loop, or waive with the lifetime owner",
				shortPos(pass.Fset, pos))
		}
		// Follow in-package static calls: the goroutine's loop may live
		// in a helper (go o.acceptLoop(...)). Calls inside nested
		// literals are followed too — a closure built here usually runs
		// here.
		ast.Inspect(body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				enqueue(calleeOf(pass.Info, call))
			}
			return true
		})
	}
}

// leakyLoops returns the positions of unconditional for loops in body
// that have no reachable exit. Nested function literals are skipped:
// their loops run when the literal is invoked, not in this goroutine's
// frame (and callbacks passed elsewhere have their own spawn sites).
func leakyLoops(info *types.Info, body *ast.BlockStmt) []token.Pos {
	// Pre-pass: map loops to their labels so labeled breaks resolve.
	labelOf := make(map[*ast.ForStmt]string)
	ast.Inspect(body, func(n ast.Node) bool {
		if ls, ok := n.(*ast.LabeledStmt); ok {
			if loop, ok := ls.Stmt.(*ast.ForStmt); ok {
				labelOf[loop] = ls.Label.Name
			}
		}
		return true
	})

	var bad []token.Pos
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ForStmt:
			if x.Cond == nil && !loopExits(info, x.Body, labelOf[x]) {
				bad = append(bad, x.Pos())
			}
		}
		return true
	})
	return bad
}

// loopExits reports whether the body of an unconditional loop contains
// a statement that leaves the loop: return, goto, a break targeting
// this loop (honouring Go's nearest-breakable rule), or a terminating
// call. depth counts breakable constructs between the statement and
// the loop, so a bare break deep inside a select does not count.
func loopExits(info *types.Info, body *ast.BlockStmt, label string) bool {
	var stmtExits func(s ast.Stmt, depth int) bool
	listExits := func(list []ast.Stmt, depth int) bool {
		for _, s := range list {
			if stmtExits(s, depth) {
				return true
			}
		}
		return false
	}
	stmtExits = func(s ast.Stmt, depth int) bool {
		switch x := s.(type) {
		case *ast.ReturnStmt:
			return true
		case *ast.BranchStmt:
			switch x.Tok {
			case token.GOTO:
				return true // conservatively assume the jump leaves the loop
			case token.BREAK:
				if x.Label != nil {
					return label != "" && x.Label.Name == label
				}
				return depth == 0
			}
			return false
		case *ast.ExprStmt:
			call, ok := x.X.(*ast.CallExpr)
			return ok && isTerminatingCall(info, call)
		case *ast.LabeledStmt:
			return stmtExits(x.Stmt, depth)
		case *ast.BlockStmt:
			return listExits(x.List, depth)
		case *ast.IfStmt:
			if listExits(x.Body.List, depth) {
				return true
			}
			if x.Else != nil {
				return stmtExits(x.Else, depth)
			}
			return false
		case *ast.ForStmt:
			return listExits(x.Body.List, depth+1)
		case *ast.RangeStmt:
			return listExits(x.Body.List, depth+1)
		case *ast.SelectStmt:
			for _, clause := range x.Body.List {
				if cc, ok := clause.(*ast.CommClause); ok && listExits(cc.Body, depth+1) {
					return true
				}
			}
			return false
		case *ast.SwitchStmt:
			for _, clause := range x.Body.List {
				if cc, ok := clause.(*ast.CaseClause); ok && listExits(cc.Body, depth+1) {
					return true
				}
			}
			return false
		case *ast.TypeSwitchStmt:
			for _, clause := range x.Body.List {
				if cc, ok := clause.(*ast.CaseClause); ok && listExits(cc.Body, depth+1) {
					return true
				}
			}
			return false
		case *ast.DeferStmt, *ast.GoStmt:
			return false // runs elsewhere / later, not an exit of this loop
		}
		return false
	}
	return listExits(body.List, 0)
}

// isTerminatingCall matches calls that never return: panic, os.Exit,
// runtime.Goexit and the log.Fatal family.
func isTerminatingCall(info *types.Info, call *ast.CallExpr) bool {
	if builtinName(info, call) == "panic" {
		return true
	}
	f := calleeOf(info, call)
	if f == nil || f.Pkg() == nil {
		return false
	}
	switch f.Pkg().Path() {
	case "os":
		return f.Name() == "Exit"
	case "runtime":
		return f.Name() == "Goexit"
	case "log":
		switch f.Name() {
		case "Fatal", "Fatalf", "Fatalln", "Panic", "Panicf", "Panicln":
			return true
		}
	}
	return false
}
