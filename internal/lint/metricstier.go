package lint

import (
	"go/ast"
	"go/types"
)

// metricsPackagePath is the instrument registry whose observation
// methods the two-tier rule confines.
const metricsPackagePath = "tlc/internal/metrics"

// observeMethods maps instrument type name -> the methods that mutate
// it. Reads (Value, Count, Sum) and registration (Registry.Counter,
// Registry.Gauge, Registry.Histogram) stay legal everywhere.
var observeMethods = map[string]map[string]bool{
	"Counter":   {"Inc": true, "Add": true},
	"Gauge":     {"Set": true, "Add": true},
	"Histogram": {"Observe": true},
}

// MetricsTier enforces the two-tier instrumentation rule from PR 5,
// previously prose in DESIGN.md: simulated substrates (internal/sim,
// internal/netem, internal/epc, internal/faults) accumulate into plain
// run counters and flush deltas only at run boundaries, so
// instrumentation can never perturb event order, RNG draws or sweep
// goldens. Concretely: inside those packages a call that observes an
// internal/metrics instrument (Counter.Inc/Add, Gauge.Set/Add,
// Histogram.Observe) is legal only inside a PublishMetrics function or
// a helper reachable from one through in-package static calls.
//
// In-package test files are exempt — they exercise instruments
// directly and never run inside a sweep. Live-path code that must
// observe inline (faults.Conn on real connections) carries a
// //tlcvet:allow metricstier waiver stating why cycle-end flushing
// would be wrong there.
var MetricsTier = &Analyzer{
	Name: "metricstier",
	Doc:  "confine internal/metrics observation in simulated substrates (sim, netem, epc, faults) to PublishMetrics",
	Applies: func(importPath string) bool {
		if !internalPackage(importPath) {
			return false
		}
		return pathHasSegment(importPath, "sim") || pathHasSegment(importPath, "netem") ||
			pathHasSegment(importPath, "epc") || pathHasSegment(importPath, "faults")
	},
	Run: runMetricsTier,
}

func runMetricsTier(pass *Pass) {
	decls := packageFuncDecls(pass)
	legal := publishReachable(pass, decls)

	for _, file := range pass.Files {
		if isTestFileName(pass.Fset.Position(file.Pos()).Filename) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, _ := pass.Info.Defs[fd.Name].(*types.Func)
			if obj != nil && legal[obj] {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				typeName, method, ok := observedInstrument(pass.Info, call)
				if !ok {
					return true
				}
				pass.Reportf(call.Pos(),
					"%s.%s observes a metrics instrument outside PublishMetrics in a simulated substrate; count into a plain field and delta-flush at the run boundary (two-tier rule, DESIGN.md)",
					typeName, method)
				return true
			})
		}
	}
}

// observedInstrument reports whether the call mutates an
// internal/metrics instrument, returning the instrument type and
// method names.
func observedInstrument(info *types.Info, call *ast.CallExpr) (typeName, method string, ok bool) {
	sel, isSel := unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	f, isFunc := info.Uses[sel.Sel].(*types.Func)
	if !isFunc {
		return "", "", false
	}
	sig, isSig := f.Type().(*types.Signature)
	if !isSig || sig.Recv() == nil {
		return "", "", false
	}
	recv := sig.Recv().Type()
	if ptr, isPtr := recv.(*types.Pointer); isPtr {
		recv = ptr.Elem()
	}
	named, isNamed := recv.(*types.Named)
	if !isNamed || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != metricsPackagePath {
		return "", "", false
	}
	methods, isInstrument := observeMethods[named.Obj().Name()]
	if !isInstrument || !methods[f.Name()] {
		return "", "", false
	}
	return named.Obj().Name(), f.Name(), true
}

// packageFuncDecls indexes the pass's function declarations by their
// type-checker objects.
func packageFuncDecls(pass *Pass) map[*types.Func]*ast.FuncDecl {
	decls := make(map[*types.Func]*ast.FuncDecl)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if obj, ok := pass.Info.Defs[fd.Name].(*types.Func); ok {
				decls[obj] = fd
			}
		}
	}
	return decls
}

// publishReachable returns the functions allowed to observe
// instruments: every PublishMetrics declaration plus the in-package
// helpers they statically call, transitively. (The approximation is
// one-sided: a helper also called from elsewhere stays legal, but the
// elsewhere call site is itself in scope of this analyzer.)
func publishReachable(pass *Pass, decls map[*types.Func]*ast.FuncDecl) map[*types.Func]bool {
	legal := make(map[*types.Func]bool)
	var queue []*types.Func
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || fd.Name.Name != "PublishMetrics" {
				continue
			}
			if obj, ok := pass.Info.Defs[fd.Name].(*types.Func); ok && !legal[obj] {
				legal[obj] = true
				queue = append(queue, obj)
			}
		}
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		fd, ok := decls[fn]
		if !ok {
			continue
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if callee := calleeOf(pass.Info, call); callee != nil && !legal[callee] {
				if _, inPkg := decls[callee]; inPkg {
					legal[callee] = true
					queue = append(queue, callee)
				}
			}
			return true
		})
	}
	return legal
}
