// Package lint implements tlcvet, the project-specific static
// analysis behind the tier-1 verify gate. The repository's results
// depend on two properties that ordinary review loses as the code
// grows: byte-exact replay of the emulated testbed (a single stray
// wall-clock read or global math/rand draw in internal/ breaks
// determinism) and the nonce/randomness discipline that makes the
// Proof-of-Charging trustworthy. Each invariant is machine-checked by
// an Analyzer; `tlcvet ./...` runs them all and exits non-zero on any
// finding.
//
// Analyzers are table-registered in All. A finding is reported as
// "file:line: [check] message" and can be suppressed for one line with
// a directive comment on the same line or the line directly above:
//
//	conn.SetDeadline(t) //tlcvet:allow simtime — real network deadline
//
// The directive names one or more checks (comma separated); anything
// after the check names is a free-form justification. Suppressions are
// deliberately per-line so each exemption carries its own paper trail.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"io"
	"path/filepath"
	"sort"
	"strings"
)

// Finding is one rule violation at a source position.
type Finding struct {
	Pos     token.Position
	Check   string
	Message string
}

// Analyzer is one registered check. Run inspects a type-checked
// package and reports findings through the Pass.
type Analyzer struct {
	// Name is the check identifier used in reports and in
	// //tlcvet:allow directives.
	Name string
	// Doc is a one-line description shown by `tlcvet -list`.
	Doc string
	// Applies filters packages by import path; nil means every
	// package.
	Applies func(importPath string) bool
	// Run reports findings for one package.
	Run func(*Pass)
}

// All is the registry of project checks, in report order.
var All = []*Analyzer{Simtime, SeededRand, CryptoRand, ErrDiscard}

// Select resolves a comma-separated list of check names ("" selects
// every registered analyzer).
func Select(names string) ([]*Analyzer, error) {
	if strings.TrimSpace(names) == "" {
		return All, nil
	}
	byName := make(map[string]*Analyzer, len(All))
	for _, a := range All {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, name := range strings.Split(names, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("lint: unknown check %q", name)
		}
		out = append(out, a)
	}
	return out, nil
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
	// Path is the import path analyzers scope on. Fixture tests load
	// testdata packages under a synthetic path (e.g. "tlc/internal/poc")
	// to target a specific analyzer.
	Path string

	check    string
	allow    directiveIndex
	findings *[]Finding
}

// Reportf records a finding at pos unless an //tlcvet:allow directive
// covers it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.allow.covers(position, p.check) {
		return
	}
	*p.findings = append(*p.findings, Finding{
		Pos:     position,
		Check:   p.check,
		Message: fmt.Sprintf(format, args...),
	})
}

// PkgNameOf resolves the package an identifier qualifies, if the
// identifier names an import (e.g. the `time` in time.Now). It returns
// nil for anything else.
func (p *Pass) PkgNameOf(id *ast.Ident) *types.Package {
	if obj, ok := p.Info.Uses[id].(*types.PkgName); ok {
		return obj.Imported()
	}
	return nil
}

// directiveIndex maps file -> line -> the set of checks allowed there.
type directiveIndex map[string]map[int]map[string]bool

// covers reports whether check is allowed at position, honouring a
// directive on the same line or the line directly above.
func (d directiveIndex) covers(pos token.Position, check string) bool {
	lines := d[pos.Filename]
	if lines == nil {
		return false
	}
	return lines[pos.Line][check] || lines[pos.Line-1][check]
}

const directivePrefix = "//tlcvet:allow"

// parseDirectives indexes every //tlcvet:allow comment in the package.
func parseDirectives(fset *token.FileSet, files []*ast.File) directiveIndex {
	idx := make(directiveIndex)
	for _, file := range files {
		for _, group := range file.Comments {
			for _, c := range group.List {
				rest, ok := strings.CutPrefix(c.Text, directivePrefix)
				if !ok || (rest != "" && rest[0] != ' ' && rest[0] != '\t') {
					continue
				}
				pos := fset.Position(c.Pos())
				lines := idx[pos.Filename]
				if lines == nil {
					lines = make(map[int]map[string]bool)
					idx[pos.Filename] = lines
				}
				checks := lines[pos.Line]
				if checks == nil {
					checks = make(map[string]bool)
					lines[pos.Line] = checks
				}
				for _, name := range directiveChecks(rest) {
					checks[name] = true
				}
			}
		}
	}
	return idx
}

// directiveChecks extracts the check names from the text after the
// //tlcvet:allow prefix. Names are separated by spaces or commas; the
// first token that is not a registered check name starts the free-form
// justification and ends the list. Requiring registered names means a
// typo ("simtym") suppresses nothing instead of silently allowing.
func directiveChecks(rest string) []string {
	var names []string
	for _, field := range strings.FieldsFunc(rest, func(r rune) bool {
		return r == ' ' || r == '\t' || r == ','
	}) {
		if !isCheckName(field) {
			break
		}
		names = append(names, field)
	}
	return names
}

func isCheckName(s string) bool {
	for _, a := range All {
		if a.Name == s {
			return true
		}
	}
	return false
}

// Run applies the analyzers to each package and returns the surviving
// findings sorted by file, line and check.
func Run(pkgs []*Package, analyzers []*Analyzer) []Finding {
	var findings []Finding
	for _, pkg := range pkgs {
		allow := parseDirectives(pkg.Fset, pkg.Files)
		for _, a := range analyzers {
			if a.Applies != nil && !a.Applies(pkg.Path) {
				continue
			}
			a.Run(&Pass{
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				Path:     pkg.Path,
				check:    a.Name,
				allow:    allow,
				findings: &findings,
			})
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Check != b.Check {
			return a.Check < b.Check
		}
		return a.Message < b.Message
	})
	return findings
}

// Render writes findings as "file:line: [check] message" lines, with
// filenames shown relative to base when possible.
func Render(w io.Writer, findings []Finding, base string) {
	for _, f := range findings {
		name := f.Pos.Filename
		if base != "" {
			if rel, err := filepath.Rel(base, name); err == nil && !strings.HasPrefix(rel, "..") {
				name = rel
			}
		}
		//tlcvet:allow errdiscard — best-effort report printing; a failed write cannot be reported anywhere better
		fmt.Fprintf(w, "%s:%d: [%s] %s\n", name, f.Pos.Line, f.Check, f.Message)
	}
}

// internalPackage reports whether the import path has an "internal"
// path segment, i.e. the package belongs to the simulation core rather
// than the CLI/example shell.
func internalPackage(importPath string) bool {
	for _, seg := range strings.Split(importPath, "/") {
		if seg == "internal" {
			return true
		}
	}
	return false
}
