// Package lint implements tlcvet, the project-specific static
// analysis behind the tier-1 verify gate. The repository's results
// depend on properties that ordinary review loses as the code grows:
// byte-exact replay of the emulated testbed (a single stray wall-clock
// read or global math/rand draw in internal/ breaks determinism), the
// nonce/randomness discipline that makes the Proof-of-Charging
// trustworthy, allocation-free event-engine hot paths, the two-tier
// metrics rule that keeps instrumentation from perturbing simulations,
// and goroutine lifecycle discipline in the long-lived daemons. Each
// invariant is machine-checked by an Analyzer; `tlcvet ./...` runs
// them all and exits non-zero on any finding.
//
// Analyzers are table-registered in All. A finding is reported as
// "file:line: [check] message" and can be suppressed for one line with
// a directive comment on the same line or the line directly above:
//
//	conn.SetDeadline(t) //tlcvet:allow simtime — real network deadline
//
// The directive names one or more checks (comma separated); anything
// after the check names is a free-form justification. Suppressions are
// deliberately per-line so each exemption carries its own paper trail,
// and the staleallow analyzer closes the lifecycle: a directive that
// suppresses nothing in the current run is itself a finding, so
// waivers can never outlive the code they excused.
//
// Two analyzers (hotalloc, staleallow) need the whole run, not one
// package at a time — hotalloc walks the call graph across packages
// and staleallow judges directives against every other analyzer's
// suppressions — so the engine runs in two phases: per-package
// analyzers first, then program-level ones over the accumulated
// Program state.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"io"
	"path/filepath"
	"sort"
	"strings"
)

// Finding is one rule violation at a source position.
type Finding struct {
	Pos     token.Position
	Check   string
	Message string
}

// Analyzer is one registered check. Exactly one of Run and RunProgram
// is set: Run inspects a single type-checked package, RunProgram sees
// the whole load (for cross-package call graphs and waiver-lifecycle
// accounting) and runs after every per-package analyzer.
type Analyzer struct {
	// Name is the check identifier used in reports and in
	// //tlcvet:allow directives.
	Name string
	// Doc is a one-line description shown by `tlcvet -list`.
	Doc string
	// Applies filters packages by import path; nil means every
	// package. Program-level analyzers apply it themselves via
	// Program.Packages.
	Applies func(importPath string) bool
	// Run reports findings for one package.
	Run func(*Pass)
	// RunProgram reports findings over the whole loaded program.
	RunProgram func(*Program)
}

// All is the registry of project checks, in report order. StaleAllow
// must stay last: it judges the directives every other analyzer had a
// chance to use.
var All = []*Analyzer{
	Simtime, SeededRand, CryptoRand, ErrDiscard,
	HotAlloc, MetricsTier, GoroLeak, StaleAllow,
}

// Select resolves a comma-separated list of check names ("" selects
// every registered analyzer).
func Select(names string) ([]*Analyzer, error) {
	if strings.TrimSpace(names) == "" {
		return All, nil
	}
	byName := make(map[string]*Analyzer, len(All))
	for _, a := range All {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, name := range strings.Split(names, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("lint: unknown check %q", name)
		}
		out = append(out, a)
	}
	return out, nil
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
	// Path is the import path analyzers scope on. Fixture tests load
	// testdata packages under a synthetic path (e.g. "tlc/internal/poc")
	// to target a specific analyzer.
	Path string

	check    string
	allow    directiveIndex
	findings *[]Finding
}

// Reportf records a finding at pos unless an //tlcvet:allow directive
// covers it. A directive that suppresses a finding is marked used,
// which is what keeps it alive under the staleallow lifecycle check.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.allow.covers(position, p.check) {
		return
	}
	*p.findings = append(*p.findings, Finding{
		Pos:     position,
		Check:   p.check,
		Message: fmt.Sprintf(format, args...),
	})
}

// PkgNameOf resolves the package an identifier qualifies, if the
// identifier names an import (e.g. the `time` in time.Now). It returns
// nil for anything else.
func (p *Pass) PkgNameOf(id *ast.Ident) *types.Package {
	if obj, ok := p.Info.Uses[id].(*types.PkgName); ok {
		return obj.Imported()
	}
	return nil
}

// directive is one parsed //tlcvet:allow comment. used flips when the
// directive suppresses a finding; staleallow reports directives that
// finish a full run with used still false.
type directive struct {
	pos      token.Pos
	position token.Position
	checks   []string
}

// directiveIndex maps file -> line -> the directives on that line,
// plus the per-directive usage state for the waiver lifecycle.
type directiveIndex struct {
	byLine map[string]map[int][]*directive
	used   map[*directive]bool
}

// covers reports whether check is allowed at position, honouring a
// directive on the same line or the line directly above, and marks the
// covering directive used.
func (d directiveIndex) covers(pos token.Position, check string) bool {
	lines := d.byLine[pos.Filename]
	if lines == nil {
		return false
	}
	for _, line := range [2]int{pos.Line, pos.Line - 1} {
		for _, dir := range lines[line] {
			for _, c := range dir.checks {
				if c == check {
					d.used[dir] = true
					return true
				}
			}
		}
	}
	return false
}

const directivePrefix = "//tlcvet:allow"

// parseDirectives indexes every //tlcvet:allow comment in the package.
func parseDirectives(fset *token.FileSet, files []*ast.File) directiveIndex {
	idx := directiveIndex{
		byLine: make(map[string]map[int][]*directive),
		used:   make(map[*directive]bool),
	}
	for _, file := range files {
		for _, group := range file.Comments {
			for _, c := range group.List {
				rest, ok := strings.CutPrefix(c.Text, directivePrefix)
				if !ok || (rest != "" && rest[0] != ' ' && rest[0] != '\t') {
					continue
				}
				pos := fset.Position(c.Pos())
				lines := idx.byLine[pos.Filename]
				if lines == nil {
					lines = make(map[int][]*directive)
					idx.byLine[pos.Filename] = lines
				}
				lines[pos.Line] = append(lines[pos.Line], &directive{
					pos:      c.Pos(),
					position: pos,
					checks:   directiveChecks(rest),
				})
			}
		}
	}
	return idx
}

// directiveChecks extracts the check names from the text after the
// //tlcvet:allow prefix. Names are separated by spaces or commas; the
// first token that is not a registered check name starts the free-form
// justification and ends the list. Requiring registered names means a
// typo ("simtym") suppresses nothing instead of silently allowing —
// and staleallow then reports the impotent directive.
func directiveChecks(rest string) []string {
	var names []string
	for _, field := range strings.FieldsFunc(rest, func(r rune) bool {
		return r == ' ' || r == '\t' || r == ','
	}) {
		if !isCheckName(field) {
			break
		}
		names = append(names, field)
	}
	return names
}

func isCheckName(s string) bool {
	for _, a := range All {
		if a.Name == s {
			return true
		}
	}
	return false
}

// Run applies the analyzers to each package — per-package analyzers
// first, then program-level ones in registry order — and returns the
// surviving findings in a stable cross-package order (file, line,
// column, check, message). The order depends only on the source, never
// on package load order, so CI diffs and the golden report stay
// byte-stable.
func Run(pkgs []*Package, analyzers []*Analyzer) []Finding {
	prog := newProgram(pkgs, analyzers)
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			if a.Run == nil {
				continue
			}
			if a.Applies != nil && !a.Applies(pkg.Path) {
				continue
			}
			a.Run(prog.Pass(pkg, a.Name))
		}
	}
	for _, a := range analyzers {
		if a.RunProgram != nil {
			a.RunProgram(prog)
		}
	}
	findings := prog.findings
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Check != b.Check {
			return a.Check < b.Check
		}
		return a.Message < b.Message
	})
	return findings
}

// Render writes findings as "file:line: [check] message" lines, with
// filenames shown relative to base when possible.
func Render(w io.Writer, findings []Finding, base string) {
	for _, f := range findings {
		//tlcvet:allow errdiscard — best-effort report printing; a failed write cannot be reported anywhere better
		fmt.Fprintf(w, "%s:%d: [%s] %s\n", relName(f.Pos.Filename, base), f.Pos.Line, f.Check, f.Message)
	}
}

// relName shows name relative to base when it lies underneath it.
func relName(name, base string) string {
	if base != "" {
		if rel, err := filepath.Rel(base, name); err == nil && !strings.HasPrefix(rel, "..") {
			return rel
		}
	}
	return name
}

// internalPackage reports whether the import path has an "internal"
// path segment, i.e. the package belongs to the simulation core rather
// than the CLI/example shell.
func internalPackage(importPath string) bool {
	for _, seg := range strings.Split(importPath, "/") {
		if seg == "internal" {
			return true
		}
	}
	return false
}

// pathHasSegment reports whether the import path contains seg as a
// whole path element. Analyzer scoping matches on segments rather than
// literal prefixes so the lint fixtures (loaded under synthetic
// testdata paths) land in scope of the analyzer they exercise.
func pathHasSegment(importPath, seg string) bool {
	for _, s := range strings.Split(importPath, "/") {
		if s == seg {
			return true
		}
	}
	return false
}
