// Package loading for tlcvet. The module cache is empty in the build
// environment, so nothing here may depend on golang.org/x/tools: the
// loader resolves this module's packages itself (go.mod discovery +
// go/build directory scans) and delegates standard-library imports to
// go/importer's source importer, which type-checks GOROOT sources
// directly and therefore works fully offline.
package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and type-checked package.
type Package struct {
	// Path is the import path ("tlc/internal/sim"). Fixture loads may
	// override it to scope analyzers (see LoadAs).
	Path string
	// Dir is the absolute directory the sources came from.
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	// TypeErrors collects type-checker diagnostics. Analyzers still
	// run on partial information, but the CLI treats these as fatal:
	// missing type info silently hides findings.
	TypeErrors []error
}

// Loader loads packages of a single module rooted at a go.mod.
type Loader struct {
	fset       *token.FileSet
	ctxt       build.Context
	std        types.ImporterFrom
	moduleRoot string
	modulePath string
	pkgs       map[string]*Package
	rootPkgs   map[string]*Package
	loading    map[string]bool

	// IncludeTests makes Load parse and type-check each matched
	// package's in-package _test.go files together with its ordinary
	// sources, so the analyzers see test code too. Only matched (root)
	// packages get their tests: a package loaded as a dependency of
	// another import never includes them, exactly like the go tool —
	// test files are not part of a package's importable surface, and
	// loading them for dependencies would manufacture import cycles
	// (sim's tests may import packages that import sim). External
	// _test packages (XTestGoFiles) are not loaded.
	IncludeTests bool
}

// NewLoader finds the module containing dir and prepares a loader for
// it.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root, modPath, err := findModule(abs)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	std, ok := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	if !ok {
		return nil, fmt.Errorf("lint: source importer unavailable")
	}
	// Disable cgo in the loader's own context so module packages
	// resolve to their pure-Go fallbacks, which type-check without
	// invoking the cgo tool. The standard-library side needs the same
	// override but cannot take a context: importer.ForCompiler
	// hard-wires &build.Default into its srcimporter, so importStd
	// saves and restores the global flag around each call instead of
	// mutating it for the life of the process (which used to leak the
	// override into the host test binary).
	ctxt := build.Default
	ctxt.CgoEnabled = false
	return &Loader{
		fset:       fset,
		ctxt:       ctxt,
		std:        std,
		moduleRoot: root,
		modulePath: modPath,
		pkgs:       make(map[string]*Package),
		rootPkgs:   make(map[string]*Package),
		loading:    make(map[string]bool),
	}, nil
}

// findModule walks up from dir to the enclosing go.mod and returns the
// module root directory and module path.
func findModule(dir string) (root, modPath string, err error) {
	for d := dir; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module"); ok {
					mod := strings.TrimSpace(rest)
					mod = strings.Trim(mod, `"`)
					if mod != "" {
						return d, mod, nil
					}
				}
			}
			return "", "", fmt.Errorf("lint: %s/go.mod has no module line", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		d = parent
	}
}

// Load resolves package patterns ("./...", "./internal/sim", "...")
// relative to the current directory and returns the matched packages.
// Dependencies inside the module are loaded and type-checked as needed
// but only matched packages are returned.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	var dirs []string
	seen := make(map[string]bool)
	for _, pattern := range patterns {
		expanded, err := l.expand(pattern)
		if err != nil {
			return nil, err
		}
		for _, d := range expanded {
			if !seen[d] {
				seen[d] = true
				dirs = append(dirs, d)
			}
		}
	}
	sort.Strings(dirs)
	var pkgs []*Package
	for _, dir := range dirs {
		pkg, err := l.loadDir(dir)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// expand turns one pattern into a list of absolute package
// directories. "..." matches recursively, skipping testdata and
// hidden/underscore directories exactly like the go tool.
func (l *Loader) expand(pattern string) ([]string, error) {
	recursive := false
	if rest, ok := strings.CutSuffix(pattern, "..."); ok {
		recursive = true
		pattern = strings.TrimSuffix(rest, "/")
		if pattern == "" {
			pattern = "."
		}
	}
	base, err := filepath.Abs(pattern)
	if err != nil {
		return nil, err
	}
	if !recursive {
		return []string{base}, nil
	}
	var dirs []string
	err = filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		if name := d.Name(); path != base &&
			(name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		if _, err := l.ctxt.ImportDir(path, 0); err != nil {
			if _, ok := err.(*build.NoGoError); ok {
				return nil // directory without Go files
			}
			return err
		}
		dirs = append(dirs, path)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return dirs, nil
}

// importPathFor maps an absolute directory inside the module to its
// import path.
func (l *Loader) importPathFor(dir string) (string, error) {
	rel, err := filepath.Rel(l.moduleRoot, dir)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return l.modulePath, nil
	}
	if strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("lint: %s is outside module %s", dir, l.moduleRoot)
	}
	return l.modulePath + "/" + filepath.ToSlash(rel), nil
}

// loadDir loads the package in dir under its natural import path. As a
// root (pattern-matched) package it includes in-package test files when
// IncludeTests is set; the test-augmented variant is cached separately
// from the plain one so dependency imports of the same path keep seeing
// the importable (test-free) package.
func (l *Loader) loadDir(dir string) (*Package, error) {
	importPath, err := l.importPathFor(dir)
	if err != nil {
		return nil, err
	}
	if !l.IncludeTests {
		return l.LoadAs(dir, importPath)
	}
	if pkg, ok := l.rootPkgs[importPath]; ok {
		return pkg, nil
	}
	bp, err := l.ctxt.ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("lint: %s: %w", dir, err)
	}
	if len(bp.TestGoFiles) == 0 {
		pkg, err := l.LoadAs(dir, importPath)
		if err == nil {
			l.rootPkgs[importPath] = pkg
		}
		return pkg, err
	}
	names := make([]string, 0, len(bp.GoFiles)+len(bp.TestGoFiles))
	names = append(names, bp.GoFiles...)
	names = append(names, bp.TestGoFiles...)
	pkg, err := l.check(dir, importPath, names)
	if err == nil {
		l.rootPkgs[importPath] = pkg
	}
	return pkg, err
}

// LoadAs parses and type-checks the single package in dir, recording
// it under importPath. Tests use synthetic paths (e.g.
// "tlc/internal/poc") to point path-scoped analyzers at testdata
// fixtures.
func (l *Loader) LoadAs(dir, importPath string) (*Package, error) {
	if pkg, ok := l.pkgs[importPath]; ok {
		return pkg, nil
	}
	if l.loading[importPath] {
		return nil, fmt.Errorf("lint: import cycle through %s", importPath)
	}
	l.loading[importPath] = true
	defer delete(l.loading, importPath)

	bp, err := l.ctxt.ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("lint: %s: %w", dir, err)
	}
	pkg, err := l.check(dir, importPath, bp.GoFiles)
	if err != nil {
		return nil, err
	}
	l.pkgs[importPath] = pkg
	return pkg, nil
}

// check parses the named files in dir and type-checks them as one
// package under importPath.
func (l *Loader) check(dir, importPath string, names []string) (*Package, error) {
	pkg := &Package{Path: importPath, Dir: dir, Fset: l.fset}
	for _, name := range names {
		file, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		pkg.Files = append(pkg.Files, file)
	}
	pkg.Info = &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	// Check returns an error when TypeErrors is non-empty; the partial
	// package is still usable, and the caller decides severity.
	pkg.Types, _ = conf.Check(importPath, l.fset, pkg.Files, pkg.Info)
	return pkg, nil
}

// Import implements types.Importer: module-internal paths load through
// the loader, everything else through the standard-library source
// importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.modulePath || strings.HasPrefix(path, l.modulePath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.modulePath), "/")
		dir := filepath.Join(l.moduleRoot, filepath.FromSlash(rel))
		pkg, err := l.LoadAs(dir, path)
		if err != nil {
			return nil, err
		}
		if pkg.Types == nil {
			return nil, fmt.Errorf("lint: type-checking %s failed", path)
		}
		return pkg.Types, nil
	}
	return l.importStd(path)
}

// importStd type-checks a standard-library package via the source
// importer. That importer captured &build.Default at construction and
// offers no way to inject a context, so the cgo override is applied to
// the global for exactly the duration of the call (the import graph of
// the requested package is resolved entirely within it) and restored
// after, instead of being left set for the whole process.
func (l *Loader) importStd(path string) (*types.Package, error) {
	saved := build.Default.CgoEnabled
	build.Default.CgoEnabled = false
	defer func() { build.Default.CgoEnabled = saved }()
	return l.std.ImportFrom(path, l.moduleRoot, 0)
}
