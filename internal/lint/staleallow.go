package lint

import "strings"

// StaleAllow closes the waiver lifecycle: a //tlcvet:allow directive
// that suppresses zero findings in the current run is itself a
// finding, so waivers rot visibly instead of silently. Two cases:
//
//   - A directive whose check-name list is empty (typo'd or unknown
//     check names) is always reported — today it silently suppresses
//     nothing, which is worse than either suppressing or failing.
//   - A well-formed directive is reported as stale only when every
//     check it names actually ran (so `tlcvet -checks simtime` cannot
//     condemn errdiscard waivers it never gave a chance to fire) and
//     none of them used the directive.
//
// A directive that must outlive what it suppresses — for example one
// guarding a build-tag configuration this run cannot see — waives its
// own staleness: `//tlcvet:allow staleallow <reason>` on the same line
// or the line above. StaleAllow runs after every other analyzer, as a
// program-level pass over the accumulated usage state.
var StaleAllow = &Analyzer{
	Name:       "staleallow",
	Doc:        "flag //tlcvet:allow directives that suppress no findings in the current run",
	RunProgram: runStaleAllow,
}

func runStaleAllow(prog *Program) {
	for _, da := range prog.directivesInOrder() {
		pass := prog.Pass(da.pkg, "staleallow")
		d := da.dir
		if len(d.checks) == 0 {
			pass.Reportf(d.pos,
				"//tlcvet:allow names no registered check, so it suppresses nothing; fix the check name or delete the directive")
			continue
		}
		if da.used[d] {
			continue
		}
		ran := true
		for _, c := range d.checks {
			if !prog.Ran(c) {
				ran = false
				break
			}
		}
		if !ran {
			continue // a partial -checks run cannot judge this waiver
		}
		pass.Reportf(d.pos,
			"stale waiver: //tlcvet:allow %s suppresses no findings in this run; delete it, or add `staleallow` with a reason if it guards a path this run cannot see",
			strings.Join(d.checks, ","))
	}
}
