package lint

import (
	"go/ast"
)

// wallClockFuncs are the package time entry points that read or wait
// on the process wall clock. Pure conversions and types
// (time.Duration, time.Unix, time.Date, ...) are fine: determinism is
// only lost when real time leaks into simulated control flow.
var wallClockFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
	"AfterFunc": true,
}

// Simtime forbids wall-clock reads in internal/ simulation code.
// Every figure in the paper reproduction is regenerated from seeded
// runs; one time.Now() on a simulated path makes replays diverge.
// Simulated components must take time from the sim.Scheduler /
// simclock. Real network deadlines (internal/protocol,
// internal/transport) are legitimate wall-clock uses and carry a
// //tlcvet:allow simtime directive with a justification.
var Simtime = &Analyzer{
	Name:    "simtime",
	Doc:     "forbid wall-clock time.Now/Since/Sleep/... in internal/ simulation code; use sim.Time/simclock",
	Applies: internalPackage,
	Run:     runSimtime,
}

func runSimtime(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			if pkg := pass.PkgNameOf(id); pkg == nil || pkg.Path() != "time" {
				return true
			}
			if !wallClockFuncs[sel.Sel.Name] {
				return true
			}
			pass.Reportf(sel.Pos(),
				"time.%s reads the wall clock inside simulation code; take time from sim.Scheduler/simclock so seeded runs replay byte-exactly",
				sel.Sel.Name)
			return true
		})
	}
}
