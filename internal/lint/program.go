package lint

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// Program is the state of one whole tlcvet run: every loaded package,
// its parsed //tlcvet:allow directives with usage accounting, and the
// accumulated findings. Per-package analyzers see it only through
// their Pass; program-level analyzers (hotalloc's cross-package call
// graph, staleallow's waiver lifecycle) receive it directly after the
// per-package phase completes.
type Program struct {
	Pkgs []*Package

	allow    map[*Package]directiveIndex
	ran      map[string]bool
	findings []Finding

	funcs     map[string]declSite
	funcsOnce bool
}

func newProgram(pkgs []*Package, analyzers []*Analyzer) *Program {
	prog := &Program{
		Pkgs:  pkgs,
		allow: make(map[*Package]directiveIndex, len(pkgs)),
		ran:   make(map[string]bool, len(analyzers)),
	}
	for _, pkg := range pkgs {
		prog.allow[pkg] = parseDirectives(pkg.Fset, pkg.Files)
	}
	for _, a := range analyzers {
		prog.ran[a.Name] = true
	}
	return prog
}

// Pass builds the view one analyzer gets of one package. Findings and
// directive usage accumulate in the program.
func (prog *Program) Pass(pkg *Package, check string) *Pass {
	return &Pass{
		Fset:     pkg.Fset,
		Files:    pkg.Files,
		Pkg:      pkg.Types,
		Info:     pkg.Info,
		Path:     pkg.Path,
		check:    check,
		allow:    prog.allow[pkg],
		findings: &prog.findings,
	}
}

// Ran reports whether the named check was part of this run. staleallow
// uses it to judge only directives whose every named check actually
// had the chance to suppress something.
func (prog *Program) Ran(check string) bool { return prog.ran[check] }

// Packages returns the loaded packages an Applies filter admits (all
// of them for nil).
func (prog *Program) Packages(applies func(importPath string) bool) []*Package {
	if applies == nil {
		return prog.Pkgs
	}
	var out []*Package
	for _, pkg := range prog.Pkgs {
		if applies(pkg.Path) {
			out = append(out, pkg)
		}
	}
	return out
}

// declSite locates one function declaration and the package that owns
// it.
type declSite struct {
	decl *ast.FuncDecl
	pkg  *Package
}

// funcKey identifies a function declaration across type-check
// universes. A package matched by the patterns is type-checked with
// its test files while the same package imported as a dependency is
// checked without them, so two distinct *types.Func objects can stand
// for one declaration; the qualified FullName ("(*tlc/internal/sim.
// Scheduler).At") is the stable program-wide identity.
func funcKey(f *types.Func) string { return f.FullName() }

// FuncDecls indexes every function and method declaration with a body
// across the program by funcKey, so analyzers can chase static calls
// from one package into another.
func (prog *Program) FuncDecls() map[string]declSite {
	if prog.funcsOnce {
		return prog.funcs
	}
	prog.funcsOnce = true
	prog.funcs = make(map[string]declSite)
	for _, pkg := range prog.Pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if obj, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
					prog.funcs[funcKey(obj)] = declSite{decl: fd, pkg: pkg}
				}
			}
		}
	}
	return prog.funcs
}

// directivesInOrder returns every parsed directive of the program in
// stable (file, line, column) order, with the package it came from.
func (prog *Program) directivesInOrder() []directiveAt {
	var out []directiveAt
	for _, pkg := range prog.Pkgs {
		idx := prog.allow[pkg]
		for _, lines := range idx.byLine {
			for _, dirs := range lines {
				for _, d := range dirs {
					out = append(out, directiveAt{pkg: pkg, dir: d, used: idx.used})
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].dir.position, out[j].dir.position
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return out
}

type directiveAt struct {
	pkg  *Package
	dir  *directive
	used map[*directive]bool
}

// unparen strips parentheses from an expression.
func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// calleeOf resolves the declared function or method a call statically
// invokes. Dynamic calls (function values, interface methods bound at
// run time) and builtins resolve to nil.
func calleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// funcDisplayName renders a function for reports: "Name" for plain
// functions, "Type.Name" for methods (pointer receivers shown without
// the star).
func funcDisplayName(f *types.Func) string {
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return f.Name()
	}
	recv := sig.Recv().Type()
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	if named, ok := recv.(*types.Named); ok {
		return named.Obj().Name() + "." + f.Name()
	}
	return f.Name()
}

// isTestFile reports whether the position's file is a _test.go file.
// Some analyzers (metricstier) exempt in-package tests: they exercise
// instruments directly and never run inside a sweep.
func isTestFileName(filename string) bool {
	return strings.HasSuffix(filename, "_test.go")
}
