package lint

import (
	"strconv"
	"strings"
)

// cryptoBannedImports maps imports that undermine the
// Proof-of-Charging's security to the reason they are banned in
// crypto-sensitive packages.
var cryptoBannedImports = map[string]string{
	"math/rand":    "predictable randomness; nonces/keys/salts must come from crypto/rand",
	"math/rand/v2": "predictable randomness; nonces/keys/salts must come from crypto/rand",
	"crypto/md5":   "broken hash; use crypto/sha256 or stronger",
	"crypto/sha1":  "broken hash; use crypto/sha256 or stronger",
}

// CryptoRand guards the crypto-sensitive packages (internal/poc, the
// Proof-of-Charging, and internal/keyio, its key handling): anything
// generating nonces, keys or salts there must use crypto/rand, and
// collision-broken digests (md5, sha1) may not be imported at all. A
// PoC built on predictable nonces is forgeable no matter how sound the
// protocol is.
var CryptoRand = &Analyzer{
	Name: "cryptorand",
	Doc:  "forbid math/rand and weak hashes (md5, sha1) in internal/poc and internal/keyio",
	// Scope: any package with a "poc" or "keyio" path segment under an
	// "internal" segment, so subpackages (and the lint fixtures) are
	// covered too.
	Applies: func(importPath string) bool {
		inInternal := false
		for _, seg := range strings.Split(importPath, "/") {
			if seg == "internal" {
				inInternal = true
			}
			if inInternal && (seg == "poc" || seg == "keyio") {
				return true
			}
		}
		return false
	},
	Run: runCryptoRand,
}

func runCryptoRand(pass *Pass) {
	for _, file := range pass.Files {
		for _, spec := range file.Imports {
			path, err := strconv.Unquote(spec.Path.Value)
			if err != nil {
				continue
			}
			reason, banned := cryptoBannedImports[path]
			if !banned {
				continue
			}
			pass.Reportf(spec.Pos(), "import of %s in crypto-sensitive package: %s", path, reason)
		}
	}
}
