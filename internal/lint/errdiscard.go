package lint

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
)

// ErrDiscard flags statements that drop a function's error result on
// the floor: a bare call statement, `defer f()` or `go f()` whose
// callee returns an error nobody looks at. The charging pipeline's
// guarantees (signed records, framed protocol messages, deadline
// handling) all communicate failure through errors; a silent drop
// turns a detectable fault into a wrong bill. Explicit discards
// (`_ = f()`) are visible in review and stay legal; silent ones need a
// handler or a //tlcvet:allow errdiscard directive with a reason.
//
// Unlike the determinism checks this applies to the whole module
// (library root, cmd/, examples/), not just internal/: operator-facing
// binaries are exactly where dropped I/O errors hurt.
var ErrDiscard = &Analyzer{
	Name: "errdiscard",
	Doc:  "flag calls whose error result is silently dropped (bare statement, defer, go)",
	Run:  runErrDiscard,
}

func runErrDiscard(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch stmt := n.(type) {
			case *ast.ExprStmt:
				if call, ok := stmt.X.(*ast.CallExpr); ok {
					checkDiscardedError(pass, call, "")
				}
			case *ast.DeferStmt:
				checkDiscardedError(pass, stmt.Call, "deferred ")
			case *ast.GoStmt:
				checkDiscardedError(pass, stmt.Call, "spawned ")
			}
			return true
		})
	}
}

func checkDiscardedError(pass *Pass, call *ast.CallExpr, kind string) {
	tv, ok := pass.Info.Types[ast.Expr(call)]
	if !ok || tv.Type == nil {
		return
	}
	if !returnsError(tv.Type) {
		return
	}
	if neverFails(pass, call) {
		return
	}
	pass.Reportf(call.Pos(),
		"%scall to %s discards its error result; handle it, assign it, or annotate //tlcvet:allow errdiscard",
		kind, calleeText(pass.Fset, call.Fun))
}

// returnsError reports whether t is the error type or a tuple
// containing it.
func returnsError(t types.Type) bool {
	errType := types.Universe.Lookup("error").Type()
	if tuple, ok := t.(*types.Tuple); ok {
		for i := 0; i < tuple.Len(); i++ {
			if types.Identical(tuple.At(i).Type(), errType) {
				return true
			}
		}
		return false
	}
	return types.Identical(t, errType)
}

// neverFails whitelists callees whose error results are documented to
// always be nil or that print to the process streams by design:
// fmt.Print* (and fmt.Fprint* aimed at os.Stdout/os.Stderr — the same
// thing spelled longhand), plus any method on strings.Builder or
// bytes.Buffer (including fmt.Fprint* targeting one). Flagging those
// would bury real findings in noise.
func neverFails(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if id, ok := sel.X.(*ast.Ident); ok {
		if pkg := pass.PkgNameOf(id); pkg != nil && pkg.Path() == "fmt" {
			switch sel.Sel.Name {
			case "Print", "Printf", "Println":
				return true
			case "Fprint", "Fprintf", "Fprintln":
				if len(call.Args) == 0 {
					return false
				}
				return isInMemoryWriter(pass.Info.Types[call.Args[0]].Type) ||
					isProcessStream(pass, call.Args[0])
			}
			return false
		}
	}
	// Method call: builder/buffer writes never return a non-nil error.
	if xt, ok := pass.Info.Types[sel.X]; ok && isInMemoryWriter(xt.Type) {
		return true
	}
	return false
}

// isProcessStream matches the expressions os.Stdout and os.Stderr.
func isProcessStream(pass *Pass, arg ast.Expr) bool {
	sel, ok := arg.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pkg := pass.PkgNameOf(id)
	return pkg != nil && pkg.Path() == "os" &&
		(sel.Sel.Name == "Stdout" || sel.Sel.Name == "Stderr")
}

// isInMemoryWriter matches *strings.Builder and *bytes.Buffer (or
// their value forms).
func isInMemoryWriter(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return false
	}
	full := obj.Pkg().Path() + "." + obj.Name()
	return full == "strings.Builder" || full == "bytes.Buffer"
}

// calleeText renders the called expression ("conn.SetDeadline") for
// the report.
func calleeText(fset *token.FileSet, fun ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, fun); err != nil {
		return "function"
	}
	return buf.String()
}
