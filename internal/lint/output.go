// This file holds the machine-readable report formats for CI: a
// stable JSON shape and a minimal SARIF 2.1.0 document. Both render
// findings with paths relative to a base directory (forward-slashed
// for SARIF's URI fields) so reports are byte-identical across
// checkouts.

package lint

import (
	"encoding/json"
	"io"
	"path/filepath"
)

// JSONReport is the `tlcvet -json` document. Findings keep the exact
// order Run produced (file, line, column, check, message), so the
// report is a stable CI artifact.
type JSONReport struct {
	// Version names the report schema, not the tool release.
	Version  string        `json:"version"`
	Checks   []CheckInfo   `json:"checks"`
	Findings []JSONFinding `json:"findings"`
}

// CheckInfo describes one registered analyzer.
type CheckInfo struct {
	Name string `json:"name"`
	Doc  string `json:"doc"`
}

// JSONFinding is one finding with a base-relative path.
type JSONFinding struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Column  int    `json:"column"`
	Check   string `json:"check"`
	Message string `json:"message"`
}

// BuildJSONReport assembles the -json document from findings, with
// file paths shown relative to base when possible.
func BuildJSONReport(findings []Finding, analyzers []*Analyzer, base string) JSONReport {
	report := JSONReport{
		Version:  "tlcvet-report/1",
		Checks:   make([]CheckInfo, 0, len(analyzers)),
		Findings: make([]JSONFinding, 0, len(findings)),
	}
	for _, a := range analyzers {
		report.Checks = append(report.Checks, CheckInfo{Name: a.Name, Doc: a.Doc})
	}
	for _, f := range findings {
		report.Findings = append(report.Findings, JSONFinding{
			File:    filepath.ToSlash(relName(f.Pos.Filename, base)),
			Line:    f.Pos.Line,
			Column:  f.Pos.Column,
			Check:   f.Check,
			Message: f.Message,
		})
	}
	return report
}

// WriteJSON writes the -json report document.
func WriteJSON(w io.Writer, findings []Finding, analyzers []*Analyzer, base string) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(BuildJSONReport(findings, analyzers, base))
}

// SARIF 2.1.0 minimum shape. Only the fields CI viewers require are
// emitted; the schema reference lets consumers validate the rest.
type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

// WriteSARIF writes the findings as a SARIF 2.1.0 log, one run with
// one rule per registered analyzer. Every finding is level "error":
// tlcvet has no advisory tier — a finding either fails the gate or is
// waived at the source line.
func WriteSARIF(w io.Writer, findings []Finding, analyzers []*Analyzer, base string) error {
	rules := make([]sarifRule, 0, len(analyzers))
	for _, a := range analyzers {
		rules = append(rules, sarifRule{ID: a.Name, ShortDescription: sarifMessage{Text: a.Doc}})
	}
	results := make([]sarifResult, 0, len(findings))
	for _, f := range findings {
		results = append(results, sarifResult{
			RuleID:  f.Check,
			Level:   "error",
			Message: sarifMessage{Text: f.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{URI: filepath.ToSlash(relName(f.Pos.Filename, base))},
					Region:           sarifRegion{StartLine: f.Pos.Line, StartColumn: f.Pos.Column},
				},
			}},
		})
	}
	log := sarifLog{
		Schema:  "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "tlcvet", InformationURI: "https://example.invalid/tlc/internal/lint", Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}
