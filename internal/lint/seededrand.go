package lint

import (
	"go/ast"
)

// seededRandAllowed lists the math/rand selectors that do NOT touch
// the process-global generator: explicit-source constructors and type
// names. Everything else (rand.Intn, rand.Float64, rand.Seed, ...)
// draws from — or reseeds — shared global state, which is both
// nondeterministic across packages and a data race under -race.
var seededRandAllowed = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"Rand":       true,
	"Source":     true,
	"Source64":   true,
	"Zipf":       true,
	"NewPCG":     true, // math/rand/v2
	"PCG":        true,
	"NewChaCha8": true,
	"ChaCha8":    true,
}

// SeededRand forbids the global math/rand functions in internal/
// packages. Simulation randomness must flow through sim.RNG (seeded,
// forkable per component) so experiments replay from a seed; wrapping
// an explicit seeded source (rand.New(rand.NewSource(seed))) is how
// sim.RNG itself is built and stays allowed.
var SeededRand = &Analyzer{
	Name:    "seededrand",
	Doc:     "forbid global/unseeded math/rand use in internal/ packages; draw from sim.RNG",
	Applies: internalPackage,
	Run:     runSeededRand,
}

func runSeededRand(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pkg := pass.PkgNameOf(id)
			if pkg == nil || (pkg.Path() != "math/rand" && pkg.Path() != "math/rand/v2") {
				return true
			}
			if seededRandAllowed[sel.Sel.Name] {
				return true
			}
			pass.Reportf(sel.Pos(),
				"%s.%s uses the process-global random source; draw from a seeded sim.RNG so runs replay deterministically",
				pkg.Path(), sel.Sel.Name)
			return true
		})
	}
}
