package lint

import (
	"go/ast"
	"strings"
)

// simPackagePath is the one package allowed to build raw math/rand
// generators: sim wraps an explicitly seeded source into sim.RNG, and
// everything else derives randomness from it (sim.NewRNG, RNG.Fork,
// sim.SeedForCell for per-cell sweep seeds).
const simPackagePath = "tlc/internal/sim"

// seededRandTypes lists math/rand selectors that merely name types
// (e.g. a *rand.Rand parameter). Naming a type draws nothing from the
// global source, so these stay allowed everywhere.
var seededRandTypes = map[string]bool{
	"Rand":     true,
	"Source":   true,
	"Source64": true,
	"Zipf":     true,
	"PCG":      true, // math/rand/v2
	"ChaCha8":  true,
}

// seededRandConstructors lists the explicit-source constructors. They
// do not touch global state either, but outside internal/sim a raw
// generator bypasses the seed-derivation discipline (forked,
// coordinate-derived seeds) that keeps parallel sweeps replayable —
// so they are confined to the sim package.
var seededRandConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true,
}

// SeededRand forbids the global math/rand functions in internal/
// packages, and confines the explicit-source constructors to
// tlc/internal/sim. Simulation randomness must flow through sim.RNG
// (seeded, forkable per component, per-cell seeds via
// sim.SeedForCell) so experiments replay from a seed at any sweep
// worker count.
var SeededRand = &Analyzer{
	Name:    "seededrand",
	Doc:     "forbid global/unseeded math/rand use in internal/ packages; draw from sim.RNG",
	Applies: internalPackage,
	Run:     runSeededRand,
}

func inSimPackage(path string) bool {
	return path == simPackagePath || strings.HasPrefix(path, simPackagePath+"/")
}

func runSeededRand(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pkg := pass.PkgNameOf(id)
			if pkg == nil || (pkg.Path() != "math/rand" && pkg.Path() != "math/rand/v2") {
				return true
			}
			name := sel.Sel.Name
			if seededRandTypes[name] {
				return true
			}
			if seededRandConstructors[name] {
				if inSimPackage(pass.Path) {
					return true
				}
				pass.Reportf(sel.Pos(),
					"%s.%s builds a raw generator outside %s; derive per-cell seeds with sim.SeedForCell and draw from sim.NewRNG / RNG.Fork",
					pkg.Path(), name, simPackagePath)
				return true
			}
			pass.Reportf(sel.Pos(),
				"%s.%s uses the process-global random source; draw from a seeded sim.RNG so runs replay deterministically",
				pkg.Path(), name)
			return true
		})
	}
}
