package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strconv"
)

// HotAlloc turns the repository's AllocsPerRun guards into a static
// invariant. A function annotated with a //tlcvet:hotpath line in its
// doc comment — and every function it statically calls inside the
// module, found by a breadth-first call-graph walk across the loaded
// packages — may not contain allocating constructs:
//
//   - composite literals whose address escapes (&T{...})
//   - new(T) and make(...)
//   - append outside the amortized self-append form x = append(x, ...)
//   - func literals that capture variables (each creation allocates a
//     closure)
//   - fmt calls and non-constant string concatenation
//   - interface boxing: passing or converting a concrete non-pointer
//     value to an interface-typed parameter
//
// Constructs inside a panic(...) argument are exempt — a causality
// panic is allowed to format its last words. Everything else needs a
// //tlcvet:allow hotalloc waiver naming why the allocation is
// acceptable (amortized growth, pool-miss slow path, once-cached
// closure), which keeps the dynamic ZeroAlloc tests and the annotated
// source telling the same story.
var HotAlloc = &Analyzer{
	Name:       "hotalloc",
	Doc:        "forbid allocating constructs in //tlcvet:hotpath functions and their intra-module callees",
	RunProgram: runHotAlloc,
}

const hotpathPrefix = "//tlcvet:hotpath"

// isHotpathAnnotated reports whether the declaration's doc comment
// carries a //tlcvet:hotpath line.
func isHotpathAnnotated(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if rest, ok := cutPrefixWord(c.Text, hotpathPrefix); ok {
			_ = rest
			return true
		}
	}
	return false
}

// cutPrefixWord matches prefix followed by end-of-string or blank, so
// //tlcvet:hotpathological never counts as an annotation.
func cutPrefixWord(s, prefix string) (string, bool) {
	if len(s) < len(prefix) || s[:len(prefix)] != prefix {
		return "", false
	}
	rest := s[len(prefix):]
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return "", false
	}
	return rest, true
}

func runHotAlloc(prog *Program) {
	funcs := prog.FuncDecls()

	// Seed the walk with annotated declarations in source order, so
	// the "reachable from" attribution is deterministic.
	type workItem struct {
		key  string
		fn   *types.Func
		root string
	}
	var queue []workItem
	visited := make(map[string]bool)
	for _, pkg := range prog.Pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil || !isHotpathAnnotated(fd) {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok || visited[funcKey(obj)] {
					continue
				}
				visited[funcKey(obj)] = true
				queue = append(queue, workItem{key: funcKey(obj), fn: obj, root: funcDisplayName(obj)})
			}
		}
	}

	for len(queue) > 0 {
		item := queue[0]
		queue = queue[1:]
		site, ok := funcs[item.key]
		if !ok {
			continue
		}
		for _, callee := range checkHotFunc(prog, site, item.fn, item.root) {
			k := funcKey(callee)
			if _, inModule := funcs[k]; !inModule || visited[k] {
				continue
			}
			visited[k] = true
			queue = append(queue, workItem{key: k, fn: callee, root: item.root})
		}
	}
}

// checkHotFunc scans one hot function body for allocating constructs
// and returns its static callees in source order for the walk.
func checkHotFunc(prog *Program, site declSite, fn *types.Func, root string) []*types.Func {
	pass := prog.Pass(site.pkg, "hotalloc")
	info := site.pkg.Info
	body := site.decl.Body

	via := ""
	if name := funcDisplayName(fn); name != root {
		via = " (reachable from hotpath " + root + " via " + name + ")"
	}

	// The amortized self-append form x = append(x, ...) is the one
	// sanctioned growth pattern: steady state never grows, so the
	// ZeroAlloc guards hold.
	allowedAppend := make(map[*ast.CallExpr]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok || builtinName(info, call) != "append" || len(call.Args) == 0 {
			return true
		}
		if types.ExprString(as.Lhs[0]) == types.ExprString(call.Args[0]) {
			allowedAppend[call] = true
		}
		return true
	})

	var callees []*types.Func
	seen := make(map[*types.Func]bool)
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			switch builtinName(info, x) {
			case "panic":
				// A causality panic may format its last words.
				return false
			case "new":
				pass.Reportf(x.Pos(), "hot path%s: new allocates; hoist the allocation out of the hot path or reuse a pooled struct", via)
				return true
			case "make":
				pass.Reportf(x.Pos(), "hot path%s: make allocates; preallocate at construction time or reuse a buffer", via)
				return true
			case "append":
				if !allowedAppend[x] {
					pass.Reportf(x.Pos(), "hot path%s: append outside the amortized x = append(x, ...) form may allocate per call; restructure or waive with the growth argument", via)
				}
				return true
			}
			if f := calleeOf(info, x); f != nil {
				if !seen[f] {
					seen[f] = true
					callees = append(callees, f)
				}
				if f.Pkg() != nil && f.Pkg().Path() == "fmt" {
					pass.Reportf(x.Pos(), "hot path%s: fmt.%s formats and allocates; move formatting off the hot path", via, f.Name())
					return true
				}
			}
			checkHotBoxing(pass, info, x, via)
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if _, ok := unparen(x.X).(*ast.CompositeLit); ok {
					pass.Reportf(x.Pos(), "hot path%s: &composite literal escapes to the heap; draw from a pool or reuse a struct", via)
				}
			}
		case *ast.FuncLit:
			if cap := closureCapture(info, site.pkg.Types.Scope(), x); cap != nil {
				pass.Reportf(x.Pos(), "hot path%s: func literal captures %q and allocates a closure per creation; cache the closure once or pass state explicitly", via, cap.Name)
			}
			// Keep descending: cached-callback bodies (allocated once,
			// invoked per event) are exactly the hot path.
		case *ast.BinaryExpr:
			if x.Op == token.ADD {
				if tv, ok := info.Types[x]; ok && tv.Type != nil && tv.Value == nil && isStringType(tv.Type) {
					pass.Reportf(x.Pos(), "hot path%s: string concatenation allocates; precompute the string or use fixed keys", via)
				}
			}
		}
		return true
	}
	ast.Inspect(body, walk)
	return callees
}

// checkHotBoxing reports call arguments and conversions that box a
// concrete non-pointer value into an interface, which escapes it to
// the heap.
func checkHotBoxing(pass *Pass, info *types.Info, call *ast.CallExpr, via string) {
	tvFun, ok := info.Types[unparen(call.Fun)]
	if !ok || tvFun.Type == nil {
		return
	}
	if tvFun.IsType() {
		// Explicit conversion I(x).
		if isIfaceType(tvFun.Type) && len(call.Args) == 1 {
			if at, ok := info.Types[call.Args[0]]; ok && at.Type != nil && boxAllocates(at.Type) {
				pass.Reportf(call.Pos(), "hot path%s: conversion boxes %s into interface %s and allocates; pass a pointer or avoid the interface", via, at.Type, tvFun.Type)
			}
		}
		return
	}
	sig, ok := tvFun.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // f(xs...) forwards the slice, no per-element boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if !isIfaceType(pt) {
			continue
		}
		at, ok := info.Types[arg]
		if !ok || at.Type == nil || !boxAllocates(at.Type) {
			continue
		}
		pass.Reportf(arg.Pos(), "hot path%s: argument boxes %s into interface %s and allocates; pass a pointer or avoid the interface", via, at.Type, pt)
	}
}

// closureCapture returns an identifier the literal captures from an
// enclosing function, or nil when the closure is capture-free (and so
// can be compiled as a static function value without allocating).
func closureCapture(info *types.Info, pkgScope *types.Scope, lit *ast.FuncLit) *ast.Ident {
	var captured *ast.Ident
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if captured != nil {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		if v.Parent() == nil || v.Parent() == pkgScope || v.Parent() == types.Universe {
			return true // package-level state is shared, not captured
		}
		if v.Pos() >= lit.Pos() && v.Pos() <= lit.End() {
			return true // declared inside the literal itself
		}
		captured = id
		return false
	})
	return captured
}

func builtinName(info *types.Info, call *ast.CallExpr) string {
	id, ok := unparen(call.Fun).(*ast.Ident)
	if !ok {
		return ""
	}
	if b, ok := info.Uses[id].(*types.Builtin); ok {
		return b.Name()
	}
	return ""
}

func isIfaceType(t types.Type) bool {
	_, ok := t.Underlying().(*types.Interface)
	return ok
}

func isStringType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// boxAllocates reports whether storing a value of static type t in an
// interface heap-allocates: pointer-shaped values (pointers, channels,
// maps, funcs, unsafe pointers) ride in the interface word for free,
// everything else escapes.
func boxAllocates(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Interface, *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return false
	case *types.Basic:
		switch u.Kind() {
		case types.UntypedNil, types.UnsafePointer:
			return false
		}
		return true
	default:
		return true
	}
}

// shortPos renders a position as "base.go:line" for inclusion inside
// finding messages that point at a second location.
func shortPos(fset *token.FileSet, pos token.Pos) string {
	p := fset.Position(pos)
	return filepath.Base(p.Filename) + ":" + strconv.Itoa(p.Line)
}
