package lint

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden report file")

// fixtureLoader is shared across tests: source-importing the standard
// library is the expensive part of loading, and one loader caches it.
var fixtureLoader *Loader

func TestMain(m *testing.M) {
	flag.Parse()
	var err error
	fixtureLoader, err = NewLoader(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "lint_test:", err)
		os.Exit(1)
	}
	os.Exit(m.Run())
}

// fixturePath is where a testdata package would live as a real import.
// Path-scoped analyzers (metricstier, goroleak) get synthetic paths
// inside their scope, the way the poc fixture has always stood in for
// the real crypto package.
func fixturePath(name string) string {
	switch name {
	case "metricstier":
		return "tlc/internal/epc/testdata/metricstier"
	case "goroleak":
		return "tlc/internal/protocol/testdata/goroleak"
	}
	return "tlc/internal/lint/testdata/" + name
}

func loadFixture(t *testing.T, name string) *Package {
	t.Helper()
	dir, err := filepath.Abs(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := fixtureLoader.LoadAs(dir, fixturePath(name))
	if err != nil {
		t.Fatalf("loading fixture %s: %v", name, err)
	}
	if len(pkg.TypeErrors) > 0 {
		t.Fatalf("fixture %s has type errors: %v", name, pkg.TypeErrors)
	}
	return pkg
}

// want is one expectation parsed from a fixture comment of the form
//
//	expr // want <check> "<message substring>"
type want struct {
	file   string // base name
	line   int
	check  string
	substr string
}

var wantRe = regexp.MustCompile(`// want ([a-z]+) "([^"]+)"`)

// parseWants collects the expectations of every .go file in dir.
func parseWants(t *testing.T, dir string) []want {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var wants []want
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			if m := wantRe.FindStringSubmatch(line); m != nil {
				wants = append(wants, want{file: e.Name(), line: i + 1, check: m[1], substr: m[2]})
			}
		}
	}
	return wants
}

// TestAnalyzers runs each analyzer on its fixture package and checks
// the findings against the // want annotations: every annotated line
// must be reported, suppressed and clean files must stay silent.
func TestAnalyzers(t *testing.T) {
	cases := []struct {
		fixture  string
		analyzer *Analyzer
		// analyzers overrides the run set; staleallow only judges
		// directives whose named checks all ran, so its fixture runs
		// everything.
		analyzers []*Analyzer
	}{
		{fixture: "simtime", analyzer: Simtime},
		{fixture: "seededrand", analyzer: SeededRand},
		{fixture: "poc", analyzer: CryptoRand},
		{fixture: "errdiscard", analyzer: ErrDiscard},
		{fixture: "hotalloc", analyzer: HotAlloc},
		{fixture: "metricstier", analyzer: MetricsTier},
		{fixture: "goroleak", analyzer: GoroLeak},
		{fixture: "staleallow", analyzer: StaleAllow, analyzers: All},
	}
	for _, tc := range cases {
		t.Run(tc.analyzer.Name, func(t *testing.T) {
			pkg := loadFixture(t, tc.fixture)
			if tc.analyzer.Applies != nil && !tc.analyzer.Applies(pkg.Path) {
				t.Fatalf("%s does not apply to %s", tc.analyzer.Name, pkg.Path)
			}
			analyzers := tc.analyzers
			if analyzers == nil {
				analyzers = []*Analyzer{tc.analyzer}
			}
			got := Run([]*Package{pkg}, analyzers)
			unmatched := append([]Finding(nil), got...)
			for _, w := range parseWants(t, filepath.Join("testdata", tc.fixture)) {
				found := false
				for i, f := range unmatched {
					if filepath.Base(f.Pos.Filename) == w.file && f.Pos.Line == w.line &&
						f.Check == w.check && strings.Contains(f.Message, w.substr) {
						unmatched = append(unmatched[:i], unmatched[i+1:]...)
						found = true
						break
					}
				}
				if !found {
					t.Errorf("missing finding %s:%d [%s] ~%q", w.file, w.line, w.check, w.substr)
				}
			}
			for _, f := range unmatched {
				t.Errorf("unexpected finding %s:%d: [%s] %s",
					filepath.Base(f.Pos.Filename), f.Pos.Line, f.Check, f.Message)
			}
		})
	}
}

// TestReportGolden locks down the "file:line: [check] message" report
// format over every fixture at once. Regenerate with `go test
// ./internal/lint -run Golden -update`.
func TestReportGolden(t *testing.T) {
	var pkgs []*Package
	for _, name := range []string{
		"errdiscard", "goroleak", "hotalloc", "metricstier",
		"poc", "seededrand", "simtime", "staleallow",
	} {
		pkgs = append(pkgs, loadFixture(t, name))
	}
	findings := Run(pkgs, All)
	if len(findings) == 0 {
		t.Fatal("fixtures produced no findings; the verify gate would pass vacuously")
	}
	base, err := filepath.Abs("testdata")
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	Render(&b, findings, base)
	golden := filepath.Join("testdata", "report.golden")
	if *update {
		if err := os.WriteFile(golden, []byte(b.String()), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	data, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := b.String(), string(data); got != want {
		t.Errorf("report mismatch\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestLoadResolvesModulePath checks that plain and recursive patterns
// map directories to their real module import paths.
func TestLoadResolvesModulePath(t *testing.T) {
	pkgs, err := fixtureLoader.Load("./testdata/simtime")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 || pkgs[0].Path != fixturePath("simtime") {
		t.Fatalf("got %+v, want single package %s", pkgs, fixturePath("simtime"))
	}

	all, err := fixtureLoader.Load("./testdata/...")
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 8 {
		t.Fatalf("recursive load found %d packages, want 8", len(all))
	}
	// The acceptance contract: tlcvet must exit non-zero on the
	// fixtures, i.e. running everything over them finds problems.
	if findings := Run(all, All); len(findings) == 0 {
		t.Error("no findings across fixture packages")
	}
}

func TestSelect(t *testing.T) {
	all, err := Select("")
	if err != nil || len(all) != len(All) {
		t.Fatalf("Select(\"\") = %v, %v; want all %d analyzers", all, err, len(All))
	}
	two, err := Select("simtime, errdiscard")
	if err != nil || len(two) != 2 || two[0] != Simtime || two[1] != ErrDiscard {
		t.Fatalf("Select subset = %v, %v", two, err)
	}
	if _, err := Select("nope"); err == nil {
		t.Fatal("Select accepted an unknown check")
	}
}

// TestJSONReportRoundTrip checks that the -json document survives
// encoding/json both ways and carries base-relative forward-slashed
// paths in stable order.
func TestJSONReportRoundTrip(t *testing.T) {
	pkg := loadFixture(t, "simtime")
	findings := Run([]*Package{pkg}, []*Analyzer{Simtime})
	if len(findings) == 0 {
		t.Fatal("simtime fixture produced no findings")
	}
	base, err := filepath.Abs("testdata")
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := WriteJSON(&buf, findings, All, base); err != nil {
		t.Fatal(err)
	}
	var report JSONReport
	if err := json.Unmarshal([]byte(buf.String()), &report); err != nil {
		t.Fatalf("report does not round-trip: %v", err)
	}
	if report.Version != "tlcvet-report/1" {
		t.Errorf("version = %q", report.Version)
	}
	if len(report.Checks) != len(All) {
		t.Errorf("checks = %d, want %d", len(report.Checks), len(All))
	}
	if len(report.Findings) != len(findings) {
		t.Fatalf("findings = %d, want %d", len(report.Findings), len(findings))
	}
	for i, f := range report.Findings {
		if f.File != "simtime/bad.go" {
			t.Errorf("finding %d file = %q, want base-relative slash path", i, f.File)
		}
		if f.Check != "simtime" || f.Line <= 0 || f.Column <= 0 || f.Message == "" {
			t.Errorf("finding %d incomplete: %+v", i, f)
		}
	}
}

// TestSARIFMinimumShape validates the -sarif document against the
// SARIF 2.1.0 minimum shape: schema/version header, one run with a
// named driver and rules, and results pointing at physical locations.
func TestSARIFMinimumShape(t *testing.T) {
	pkg := loadFixture(t, "simtime")
	findings := Run([]*Package{pkg}, []*Analyzer{Simtime})
	if len(findings) == 0 {
		t.Fatal("simtime fixture produced no findings")
	}
	base, err := filepath.Abs("testdata")
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := WriteSARIF(&buf, findings, All, base); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Schema  string `json:"$schema"`
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID               string `json:"id"`
						ShortDescription struct {
							Text string `json:"text"`
						} `json:"shortDescription"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID  string `json:"ruleId"`
				Level   string `json:"level"`
				Message struct {
					Text string `json:"text"`
				} `json:"message"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine int `json:"startLine"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal([]byte(buf.String()), &doc); err != nil {
		t.Fatalf("SARIF does not parse: %v", err)
	}
	if doc.Version != "2.1.0" || !strings.Contains(doc.Schema, "sarif-schema-2.1.0") {
		t.Errorf("header = %q %q", doc.Schema, doc.Version)
	}
	if len(doc.Runs) != 1 {
		t.Fatalf("runs = %d, want 1", len(doc.Runs))
	}
	run := doc.Runs[0]
	if run.Tool.Driver.Name != "tlcvet" || len(run.Tool.Driver.Rules) != len(All) {
		t.Errorf("driver = %q with %d rules, want tlcvet with %d",
			run.Tool.Driver.Name, len(run.Tool.Driver.Rules), len(All))
	}
	if len(run.Results) != len(findings) {
		t.Fatalf("results = %d, want %d", len(run.Results), len(findings))
	}
	for i, r := range run.Results {
		if r.RuleID != "simtime" || r.Level != "error" || r.Message.Text == "" {
			t.Errorf("result %d incomplete: %+v", i, r)
		}
		if len(r.Locations) != 1 ||
			r.Locations[0].PhysicalLocation.ArtifactLocation.URI != "simtime/bad.go" ||
			r.Locations[0].PhysicalLocation.Region.StartLine <= 0 {
			t.Errorf("result %d location incomplete: %+v", i, r.Locations)
		}
	}
}

func TestDirectiveChecks(t *testing.T) {
	cases := []struct {
		rest string
		want []string
	}{
		{" simtime — real deadline", []string{"simtime"}},
		{" simtime, errdiscard best effort", []string{"simtime", "errdiscard"}},
		{" simtime errdiscard", []string{"simtime", "errdiscard"}},
		{" Simtime is not lower-case", nil},
		{"", nil},
	}
	for _, tc := range cases {
		got := directiveChecks(tc.rest)
		if len(got) != len(tc.want) {
			t.Errorf("directiveChecks(%q) = %v, want %v", tc.rest, got, tc.want)
			continue
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("directiveChecks(%q) = %v, want %v", tc.rest, got, tc.want)
				break
			}
		}
	}
}
