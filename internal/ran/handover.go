package ran

import (
	"time"

	"tlc/internal/netem"
	"tlc/internal/sim"
)

// HandoverModel emulates link-layer mobility (§3.1's second gap
// cause): a moving device periodically switches base stations. During
// the handover interruption no data flows, and packets buffered at
// the source eNodeB are lost when X2 forwarding is absent — data that
// the gateway may already have charged.
type HandoverModel struct {
	Sched *sim.Scheduler
	RNG   *sim.RNG

	// MeanInterval is the mean time between handovers (exponential);
	// zero disables the model.
	MeanInterval time.Duration
	// Interruption is the control-plane break during which the air
	// interface is unavailable. LTE handover interruption is a few
	// tens of milliseconds.
	Interruption time.Duration
	// ForwardingLossFrac is the fraction of source-eNodeB-buffered
	// bytes lost at each handover (1 = no X2 forwarding, 0 = perfect
	// forwarding).
	ForwardingLossFrac float64

	// Links are the air-interface links whose queues flush on
	// handover.
	Links []*netem.Link

	// OnHandover observes each event.
	OnHandover func(now sim.Time)

	handovers     uint64
	lostPackets   uint64
	lostBytes     uint64
	inHandover    bool
	handoverUntil sim.Time
	started       bool
}

// NewHandoverModel returns a model with LTE-typical defaults.
func NewHandoverModel(sched *sim.Scheduler, rng *sim.RNG, meanInterval time.Duration) *HandoverModel {
	return &HandoverModel{
		Sched:              sched,
		RNG:                rng,
		MeanInterval:       meanInterval,
		Interruption:       50 * time.Millisecond,
		ForwardingLossFrac: 1,
	}
}

// Start schedules the handover process.
func (h *HandoverModel) Start() {
	if h.started || h.MeanInterval <= 0 {
		return
	}
	h.started = true
	h.scheduleNext()
}

func (h *HandoverModel) scheduleNext() {
	gap := h.RNG.Exp(h.MeanInterval)
	if gap < time.Second {
		gap = time.Second
	}
	h.Sched.After(gap, h.execute)
}

func (h *HandoverModel) execute() {
	now := h.Sched.Now()
	h.handovers++
	h.inHandover = true
	h.handoverUntil = now + h.Interruption

	// Source-cell buffer loss.
	for _, l := range h.Links {
		pkts, bytes := l.DropQueuedFraction(h.ForwardingLossFrac)
		h.lostPackets += pkts
		h.lostBytes += bytes
	}
	if h.OnHandover != nil {
		h.OnHandover(now)
	}
	h.Sched.After(h.Interruption, func() {
		h.inHandover = false
		// Re-kick the links: their gates just opened.
		for _, l := range h.Links {
			l.Kick()
		}
	})
	h.scheduleNext()
}

// Active reports whether a handover interruption is in progress; air
// link gates consult it.
func (h *HandoverModel) Active(now sim.Time) bool {
	return h.inHandover && now < h.handoverUntil
}

// Handovers returns the number of executed handovers.
func (h *HandoverModel) Handovers() uint64 { return h.handovers }

// Lost returns the packets and bytes dropped from source-cell
// buffers.
func (h *HandoverModel) Lost() (packets, bytes uint64) { return h.lostPackets, h.lostBytes }
