package ran

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// RRC message encodings. 3GPP specifies these in ASN.1 PER (TS
// 36.331); the emulation uses an equivalent fixed binary layout so
// that the COUNTER CHECK exchange the operator's charging record
// depends on (§5.4) travels as real bytes that can be captured,
// replayed and inspected, and so its signalling overhead is
// accountable.

// RRCMessageType identifies the downlink/uplink DCCH messages used
// here.
type RRCMessageType uint8

const (
	// RRCCounterCheck: eNodeB → UE, queries the PDCP COUNT values.
	RRCCounterCheck RRCMessageType = 1
	// RRCCounterCheckResponse: UE → eNodeB, reports the counts.
	RRCCounterCheckResponse RRCMessageType = 2
	// RRCConnectionRelease: eNodeB → UE, tears the connection down.
	RRCConnectionRelease RRCMessageType = 3
)

// String implements fmt.Stringer.
func (t RRCMessageType) String() string {
	switch t {
	case RRCCounterCheck:
		return "CounterCheck"
	case RRCCounterCheckResponse:
		return "CounterCheckResponse"
	case RRCConnectionRelease:
		return "ConnectionRelease"
	default:
		return fmt.Sprintf("RRCMessageType(%d)", uint8(t))
	}
}

// CounterCheckMsg is the eNodeB's query. TransactionID correlates the
// response.
type CounterCheckMsg struct {
	TransactionID uint8
}

// Marshal encodes the message.
func (m CounterCheckMsg) Marshal() []byte {
	return []byte{byte(RRCCounterCheck), m.TransactionID}
}

// CounterCheckResponseMsg carries the modem's cumulative PDCP byte
// counts per direction.
type CounterCheckResponseMsg struct {
	TransactionID uint8
	ULBytes       uint64
	DLBytes       uint64
}

// Marshal encodes the message.
func (m CounterCheckResponseMsg) Marshal() []byte {
	b := make([]byte, 2+16)
	b[0] = byte(RRCCounterCheckResponse)
	b[1] = m.TransactionID
	binary.BigEndian.PutUint64(b[2:10], m.ULBytes)
	binary.BigEndian.PutUint64(b[10:18], m.DLBytes)
	return b
}

// ConnectionReleaseMsg releases the RRC connection; Cause 0 means
// "other" (e.g. inactivity).
type ConnectionReleaseMsg struct {
	Cause uint8
}

// Marshal encodes the message.
func (m ConnectionReleaseMsg) Marshal() []byte {
	return []byte{byte(RRCConnectionRelease), m.Cause}
}

// ErrShortRRC reports a truncated RRC message.
var ErrShortRRC = errors.New("ran: short RRC message")

// ParseRRC decodes any supported RRC message; callers type-switch on
// the result.
func ParseRRC(data []byte) (any, error) {
	if len(data) < 2 {
		return nil, ErrShortRRC
	}
	switch RRCMessageType(data[0]) {
	case RRCCounterCheck:
		return CounterCheckMsg{TransactionID: data[1]}, nil
	case RRCCounterCheckResponse:
		if len(data) < 18 {
			return nil, ErrShortRRC
		}
		return CounterCheckResponseMsg{
			TransactionID: data[1],
			ULBytes:       binary.BigEndian.Uint64(data[2:10]),
			DLBytes:       binary.BigEndian.Uint64(data[10:18]),
		}, nil
	case RRCConnectionRelease:
		return ConnectionReleaseMsg{Cause: data[1]}, nil
	default:
		return nil, fmt.Errorf("ran: unknown RRC message type %d", data[0])
	}
}
