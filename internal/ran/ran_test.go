package ran

import (
	"testing"
	"testing/quick"
	"time"

	"tlc/internal/netem"
	"tlc/internal/sim"
)

func TestConstantRSS(t *testing.T) {
	m := ConstantRSS(-90)
	if m.RSS(0) != -90 || m.RSS(time.Hour) != -90 {
		t.Fatal("constant RSS not constant")
	}
}

func TestOutageRSSSchedule(t *testing.T) {
	rng := sim.NewRNG(1)
	o := NewOutageRSS(-90, -125, 10*time.Second, 2*time.Second, 5*time.Minute, rng)
	if len(o.Outages()) == 0 {
		t.Fatal("no outages generated")
	}
	prevEnd := sim.Time(-1)
	for _, iv := range o.Outages() {
		if iv.Start <= prevEnd {
			t.Fatalf("overlapping or unordered outage %+v after %v", iv, prevEnd)
		}
		if iv.End <= iv.Start {
			t.Fatalf("empty outage %+v", iv)
		}
		if iv.End > 5*time.Minute {
			t.Fatalf("outage beyond horizon: %+v", iv)
		}
		prevEnd = iv.End
	}
}

func TestOutageRSSValues(t *testing.T) {
	rng := sim.NewRNG(2)
	o := NewOutageRSS(-90, -125, 5*time.Second, time.Second, time.Minute, rng)
	outs := o.Outages()
	if len(outs) == 0 {
		t.Skip("no outages with this seed")
	}
	iv := outs[0]
	mid := iv.Start + (iv.End-iv.Start)/2
	if o.RSS(mid) != -125 {
		t.Fatalf("RSS inside outage = %v", o.RSS(mid))
	}
	if iv.Start > 0 && o.RSS(iv.Start-time.Millisecond) != -90 {
		t.Fatalf("RSS before outage = %v", o.RSS(iv.Start-time.Millisecond))
	}
	if o.RSS(iv.End) != -90 && !outs[1].Contains(iv.End) {
		t.Fatalf("RSS at outage end = %v", o.RSS(iv.End))
	}
}

func TestOutageRSSOutageTime(t *testing.T) {
	o := &OutageRSS{Base: -90, Depth: -125, outages: []Interval{
		{Start: time.Second, End: 2 * time.Second},
		{Start: 10 * time.Second, End: 13 * time.Second},
	}}
	if got := o.OutageTime(20 * time.Second); got != 4*time.Second {
		t.Fatalf("OutageTime = %v, want 4s", got)
	}
	// Truncated by the until bound.
	if got := o.OutageTime(11 * time.Second); got != 2*time.Second {
		t.Fatalf("truncated OutageTime = %v, want 2s", got)
	}
	if got := o.OutageTime(500 * time.Millisecond); got != 0 {
		t.Fatalf("early OutageTime = %v, want 0", got)
	}
}

func TestOutageRSSNoOutagesConfigured(t *testing.T) {
	o := NewOutageRSS(-90, -125, 0, 0, time.Minute, sim.NewRNG(1))
	if len(o.Outages()) != 0 || o.RSS(time.Second) != -90 {
		t.Fatal("zero-mean outage model generated outages")
	}
}

func TestTraceRSS(t *testing.T) {
	tr := &TraceRSS{
		Times:  []sim.Time{0, 10 * time.Second, 20 * time.Second},
		Values: []float64{-90, -110, -95},
	}
	cases := []struct {
		at   sim.Time
		want float64
	}{
		{0, -90}, {5 * time.Second, -90}, {10 * time.Second, -110},
		{15 * time.Second, -110}, {25 * time.Second, -95},
	}
	for _, c := range cases {
		if got := tr.RSS(c.at); got != c.want {
			t.Errorf("RSS(%v) = %v, want %v", c.at, got, c.want)
		}
	}
	empty := &TraceRSS{}
	if empty.RSS(0) != 0 {
		t.Fatal("empty trace RSS not 0")
	}
}

func TestLossProb(t *testing.T) {
	if got := LossProb(-80, 0.05); got != 0.05 {
		t.Fatalf("good radio loss = %v, want residual", got)
	}
	if got := LossProb(-125, 0.05); got != 1 {
		t.Fatalf("no-service loss = %v, want 1", got)
	}
	// HARQ recovers weak-but-usable signal: loss stays residual.
	if got := LossProb(-110, 0.05); got != 0.05 {
		t.Fatalf("weak-signal loss = %v, want residual (HARQ)", got)
	}
}

func TestMCSFactor(t *testing.T) {
	if MCSFactor(-80) != 1 || MCSFactor(-95) != 1 {
		t.Fatal("good radio must serve full rate")
	}
	if MCSFactor(-125) != 0 || MCSFactor(-120) != 0 {
		t.Fatal("no-service must serve zero rate")
	}
	mid := MCSFactor(-110)
	if mid <= 0 || mid >= 0.2 {
		t.Fatalf("cell-edge MCS factor = %v, want small positive", mid)
	}
}

func TestMCSFactorMonotoneProperty(t *testing.T) {
	f := func(a, b uint8) bool {
		// Map to the interesting RSS range [-130, -80].
		ra := -130 + float64(a%50)
		rb := -130 + float64(b%50)
		if ra > rb {
			ra, rb = rb, ra
		}
		// Weaker signal (more negative) must not serve faster.
		return MCSFactor(ra) <= MCSFactor(rb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAirLinkRateAdaptsToWeakSignal(t *testing.T) {
	// The same stream that fits in good radio overflows the eNodeB
	// buffer at the cell edge: the gap source moves from "loss on
	// the wire" to post-meter queue overflow, matching LTE MCS
	// behaviour.
	run := func(rss float64) (delivered, drops uint64) {
		s := sim.NewScheduler()
		r := NewRadio(s, ConstantRSS(rss))
		r.Start()
		sink := &netem.Sink{}
		l := NewAirLink(AirLinkConfig{Name: "dl", RateBps: 100e6, QueueBytes: 64 << 10},
			s, r, sink, sim.NewRNG(6))
		src := &netem.TrafficSource{
			Sched: s, IDs: &netem.IDGen{}, Dst: l,
			Flow: "f", RateBps: 5e6, PacketSize: 1400,
		}
		src.Start(0)
		s.RunUntil(10 * time.Second)
		src.Stop()
		return sink.Packets, l.Stats.QueueDrops
	}
	goodDelivered, goodDrops := run(-90)
	edgeDelivered, edgeDrops := run(-113)
	if goodDrops != 0 {
		t.Fatalf("good radio dropped %d packets", goodDrops)
	}
	if edgeDrops == 0 {
		t.Fatal("cell edge did not overflow the buffer")
	}
	if edgeDelivered >= goodDelivered {
		t.Fatalf("cell edge delivered %d >= good radio %d", edgeDelivered, goodDelivered)
	}
}

func TestRadioDetachAfterPersistentOutage(t *testing.T) {
	s := sim.NewScheduler()
	// Out of coverage from t=10s to t=30s: longer than DetachAfter.
	model := &TraceRSS{
		Times:  []sim.Time{0, 10 * time.Second, 30 * time.Second},
		Values: []float64{-90, -125, -90},
	}
	r := NewRadio(s, model)
	var detachedAt, attachedAt sim.Time
	r.OnDetach = func(now sim.Time) { detachedAt = now }
	r.OnAttach = func(now sim.Time) { attachedAt = now }
	r.Start()
	s.RunUntil(40 * time.Second)
	if detachedAt < 15*time.Second-100*time.Millisecond || detachedAt > 15*time.Second+200*time.Millisecond {
		t.Fatalf("detached at %v, want ~15s (outage start + 5s)", detachedAt)
	}
	if attachedAt < 30*time.Second || attachedAt > 31*time.Second {
		t.Fatalf("re-attached at %v, want shortly after 30s", attachedAt)
	}
	if r.State() != Attached {
		t.Fatal("radio not re-attached")
	}
}

func TestRadioShortOutageDoesNotDetach(t *testing.T) {
	s := sim.NewScheduler()
	// 2s outage: below the 5s RLF timer.
	model := &TraceRSS{
		Times:  []sim.Time{0, 10 * time.Second, 12 * time.Second},
		Values: []float64{-90, -125, -90},
	}
	r := NewRadio(s, model)
	detached := false
	r.OnDetach = func(sim.Time) { detached = true }
	r.Start()
	s.RunUntil(20 * time.Second)
	if detached {
		t.Fatal("short outage caused detach")
	}
	if r.State() != Attached {
		t.Fatal("radio not attached after short outage")
	}
}

func TestRadioOutOfServiceTime(t *testing.T) {
	s := sim.NewScheduler()
	model := &TraceRSS{
		Times:  []sim.Time{0, 10 * time.Second, 12 * time.Second},
		Values: []float64{-90, -125, -90},
	}
	r := NewRadio(s, model)
	r.Start()
	s.RunUntil(20 * time.Second)
	oos := r.OutOfServiceTime()
	if oos < 1800*time.Millisecond || oos > 2200*time.Millisecond {
		t.Fatalf("OutOfServiceTime = %v, want ~2s", oos)
	}
}

func TestRadioAvailability(t *testing.T) {
	s := sim.NewScheduler()
	model := &TraceRSS{
		Times:  []sim.Time{0, 10 * time.Second, 11 * time.Second},
		Values: []float64{-90, -125, -90},
	}
	r := NewRadio(s, model)
	r.Start()
	s.RunUntil(10500 * time.Millisecond)
	if r.Available(s.Now()) {
		t.Fatal("available during outage")
	}
	s.RunUntil(12 * time.Second)
	if !r.Available(s.Now()) {
		t.Fatal("not available after outage")
	}
}

type fakeModem struct{ ul, dl uint64 }

func (m *fakeModem) CounterSnapshot() (uint64, uint64) { return m.ul, m.dl }

func TestBaseStationInactivityReleaseAndCounterCheck(t *testing.T) {
	s := sim.NewScheduler()
	r := NewRadio(s, ConstantRSS(-90))
	r.Start()
	modem := &fakeModem{ul: 111, dl: 222}
	bs := NewBaseStation(s, r, modem)
	bs.InactivityRelease = 5 * time.Second
	var recs []CounterCheckRecord
	bs.OnCounterCheck = func(rec CounterCheckRecord) { recs = append(recs, rec) }
	bs.Start()
	s.At(time.Second, func() { bs.NotifyActivity(s.Now()) })
	s.RunUntil(20 * time.Second)
	if bs.Connected() {
		t.Fatal("connection not released after inactivity")
	}
	if bs.Releases() != 1 || bs.Setups() != 1 {
		t.Fatalf("releases=%d setups=%d, want 1/1", bs.Releases(), bs.Setups())
	}
	if len(recs) != 1 || recs[0].UL != 111 || recs[0].DL != 222 {
		t.Fatalf("counter check records = %+v", recs)
	}
	// The release happens ~6s after the activity (inactivity timer)
	// and the check response is delayed by CheckRTT.
	if recs[0].At < 6*time.Second || recs[0].At > 8*time.Second {
		t.Fatalf("counter check at %v", recs[0].At)
	}
}

func TestBaseStationActivityKeepsConnection(t *testing.T) {
	s := sim.NewScheduler()
	r := NewRadio(s, ConstantRSS(-90))
	r.Start()
	bs := NewBaseStation(s, r, &fakeModem{})
	bs.InactivityRelease = 5 * time.Second
	bs.Start()
	// Activity every 2 seconds: the connection should never release.
	s.Ticker(0, 2*time.Second, func(now sim.Time) { bs.NotifyActivity(now) })
	s.RunUntil(30 * time.Second)
	if !bs.Connected() || bs.Releases() != 0 {
		t.Fatalf("connected=%v releases=%d", bs.Connected(), bs.Releases())
	}
	if bs.Setups() != 1 {
		t.Fatalf("setups = %d, want 1", bs.Setups())
	}
}

func TestCounterCheckLostWhenRadioUnavailable(t *testing.T) {
	s := sim.NewScheduler()
	model := &TraceRSS{
		Times:  []sim.Time{0, 5 * time.Second},
		Values: []float64{-90, -125},
	}
	r := NewRadio(s, model)
	r.Start()
	bs := NewBaseStation(s, r, &fakeModem{})
	got := 0
	bs.OnCounterCheck = func(CounterCheckRecord) { got++ }
	bs.Start()
	// Trigger during outage: not even sent.
	s.At(6*time.Second, func() { bs.TriggerCounterCheck() })
	s.RunUntil(10 * time.Second)
	sent, answered := bs.CounterChecks()
	if sent != 0 || answered != 0 || got != 0 {
		t.Fatalf("check during outage: sent=%d answered=%d cb=%d", sent, answered, got)
	}
	// Trigger in coverage: completes.
	s2 := sim.NewScheduler()
	r2 := NewRadio(s2, ConstantRSS(-90))
	r2.Start()
	bs2 := NewBaseStation(s2, r2, &fakeModem{ul: 1, dl: 2})
	got2 := 0
	bs2.OnCounterCheck = func(CounterCheckRecord) { got2++ }
	s2.At(time.Second, func() { bs2.TriggerCounterCheck() })
	s2.RunUntil(2 * time.Second)
	if got2 != 1 {
		t.Fatalf("check in coverage not answered: %d", got2)
	}
}

func TestAirLinkDropsEverythingInOutage(t *testing.T) {
	s := sim.NewScheduler()
	model := &TraceRSS{
		Times:  []sim.Time{0, time.Second},
		Values: []float64{-90, -125},
	}
	r := NewRadio(s, model)
	r.Start()
	sink := &netem.Sink{}
	rng := sim.NewRNG(3)
	// Small queue so gating overflow drops occur.
	l := NewAirLink(AirLinkConfig{Name: "dl", RateBps: 10e6, QueueBytes: 3000}, s, r, sink, rng)
	ids := &netem.IDGen{}
	src := &netem.TrafficSource{Sched: s, IDs: ids, Dst: l, Flow: "f", RateBps: 5e6, PacketSize: 1000}
	src.Start(0)
	s.RunUntil(3 * time.Second)
	src.Stop()
	s.RunUntil(4 * time.Second)
	// During the outage (1s..) the gate holds packets; the 3000-byte
	// queue overflows and drops the rest.
	if l.Stats.QueueDrops == 0 {
		t.Fatal("no queue drops during outage buffering")
	}
	if sink.Packets == 0 {
		t.Fatal("nothing delivered before outage")
	}
}

func TestAirLinkBuffersAcrossShortOutage(t *testing.T) {
	s := sim.NewScheduler()
	model := &TraceRSS{
		Times:  []sim.Time{0, time.Second, 1500 * time.Millisecond},
		Values: []float64{-90, -125, -90},
	}
	r := NewRadio(s, model)
	r.Start()
	var lastArrival sim.Time
	count := 0
	sink := netem.NodeFunc(func(p *netem.Packet) { count++; lastArrival = s.Now() })
	rng := sim.NewRNG(4)
	l := NewAirLink(AirLinkConfig{Name: "dl", RateBps: 10e6, QueueBytes: 1 << 20}, s, r, sink, rng)
	ids := &netem.IDGen{}
	// One packet sent during the outage: buffered, delivered after.
	s.At(1200*time.Millisecond, func() {
		l.Recv(&netem.Packet{ID: ids.Next(), Flow: "f", Size: 1000, QCI: 9})
	})
	s.RunUntil(3 * time.Second)
	if count != 1 {
		t.Fatalf("delivered %d, want 1 (buffered across outage)", count)
	}
	if lastArrival < 1500*time.Millisecond {
		t.Fatalf("delivered at %v, during outage", lastArrival)
	}
}

func TestAirLinkResidualLossInGoodRadio(t *testing.T) {
	s := sim.NewScheduler()
	r := NewRadio(s, ConstantRSS(-90))
	r.Start()
	sink := &netem.Sink{}
	rng := sim.NewRNG(5)
	l := NewAirLink(AirLinkConfig{Name: "dl", RateBps: 100e6, QueueBytes: 1 << 20, ResidualLoss: 0.1}, s, r, sink, rng)
	ids := &netem.IDGen{}
	src := &netem.TrafficSource{Sched: s, IDs: ids, Dst: l, Flow: "f", RateBps: 10e6, PacketSize: 1000}
	src.Start(0)
	s.RunUntil(10 * time.Second)
	src.Stop()
	s.RunUntil(11 * time.Second)
	lossRate := float64(l.Stats.LossDrops) / float64(l.Stats.InPackets)
	if lossRate < 0.07 || lossRate > 0.13 {
		t.Fatalf("residual loss rate = %v, want ~0.1", lossRate)
	}
}
