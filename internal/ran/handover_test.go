package ran

import (
	"testing"
	"time"

	"tlc/internal/netem"
	"tlc/internal/sim"
)

func TestHandoverModelDisabled(t *testing.T) {
	s := sim.NewScheduler()
	h := NewHandoverModel(s, sim.NewRNG(1), 0)
	h.Start()
	s.RunUntil(time.Minute)
	if h.Handovers() != 0 {
		t.Fatal("disabled model executed handovers")
	}
}

func TestHandoverExecutesAndInterrupts(t *testing.T) {
	s := sim.NewScheduler()
	h := NewHandoverModel(s, sim.NewRNG(2), 10*time.Second)
	var events []sim.Time
	h.OnHandover = func(now sim.Time) { events = append(events, now) }
	h.Start()
	// Probe Active during the interruption window of the first event.
	s.RunUntil(2 * time.Minute)
	if h.Handovers() == 0 || len(events) == 0 {
		t.Fatal("no handovers in 2 minutes at 10s mean interval")
	}
	// Roughly 2min/10s = 12 events expected; tolerate wide variance.
	if h.Handovers() < 4 || h.Handovers() > 30 {
		t.Fatalf("handovers = %d, want ~12", h.Handovers())
	}
}

func TestHandoverActiveWindow(t *testing.T) {
	s := sim.NewScheduler()
	h := NewHandoverModel(s, sim.NewRNG(3), 30*time.Second)
	var at sim.Time
	h.OnHandover = func(now sim.Time) {
		at = now
		if !h.Active(now) {
			t.Error("not active during handover event")
		}
	}
	h.Start()
	s.RunUntil(3 * time.Minute)
	if at == 0 {
		t.Fatal("no handover happened")
	}
	if h.Active(s.Now()) {
		t.Fatal("still active long after the interruption")
	}
}

func TestHandoverFlushesSourceBuffers(t *testing.T) {
	s := sim.NewScheduler()
	sink := &netem.Sink{}
	// A slow link so the queue is always populated.
	l := netem.NewLink("air", s, 1e6, 0, 1<<20, sink)
	src := &netem.TrafficSource{Sched: s, IDs: &netem.IDGen{}, Dst: l,
		Flow: "f", QCI: 9, RateBps: 5e6, PacketSize: 1400}
	h := NewHandoverModel(s, sim.NewRNG(4), 5*time.Second)
	h.Links = []*netem.Link{l}
	src.Start(0)
	h.Start()
	s.RunUntil(time.Minute)
	src.Stop()
	pkts, bytes := h.Lost()
	if pkts == 0 || bytes == 0 {
		t.Fatal("handovers lost nothing from a saturated buffer")
	}
	if h.Handovers() == 0 {
		t.Fatal("no handovers")
	}
}

func TestHandoverPartialForwarding(t *testing.T) {
	// With perfect X2 forwarding nothing is lost.
	s := sim.NewScheduler()
	sink := &netem.Sink{}
	l := netem.NewLink("air", s, 1e6, 0, 1<<20, sink)
	src := &netem.TrafficSource{Sched: s, IDs: &netem.IDGen{}, Dst: l,
		Flow: "f", QCI: 9, RateBps: 5e6, PacketSize: 1400}
	h := NewHandoverModel(s, sim.NewRNG(5), 5*time.Second)
	h.ForwardingLossFrac = 0
	h.Links = []*netem.Link{l}
	src.Start(0)
	h.Start()
	s.RunUntil(30 * time.Second)
	if _, bytes := h.Lost(); bytes != 0 {
		t.Fatalf("perfect forwarding lost %d bytes", bytes)
	}
}

func TestDropQueuedFraction(t *testing.T) {
	s := sim.NewScheduler()
	sink := &netem.Sink{}
	l := netem.NewLink("l", s, 8e6, 0, 1<<20, sink)
	ids := &netem.IDGen{}
	s.At(0, func() {
		for i := 0; i < 11; i++ { // 1 transmitting + 10 queued
			l.Recv(&netem.Packet{ID: ids.Next(), Size: 1000, QCI: 9})
		}
		if l.QueueLen() != 10 {
			t.Errorf("queued = %d, want 10", l.QueueLen())
		}
		pkts, bytes := l.DropQueuedFraction(0.5)
		if pkts != 5 || bytes != 5000 {
			t.Errorf("dropped %d pkts / %d bytes, want 5/5000", pkts, bytes)
		}
		if l.QueueLen() != 5 || l.QueuedBytes() != 5000 {
			t.Errorf("remaining %d pkts / %d bytes", l.QueueLen(), l.QueuedBytes())
		}
		// Zero fraction and empty-queue cases.
		if p, _ := l.DropQueuedFraction(0); p != 0 {
			t.Error("zero fraction dropped packets")
		}
	})
	s.Run()
	if sink.Packets != 6 {
		t.Fatalf("delivered %d, want 6 (1 in flight + 5 kept)", sink.Packets)
	}
}
