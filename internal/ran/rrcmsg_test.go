package ran

import (
	"testing"
	"testing/quick"
	"time"

	"tlc/internal/sim"
)

func TestCounterCheckMsgRoundTrip(t *testing.T) {
	m := CounterCheckMsg{TransactionID: 42}
	got, err := ParseRRC(m.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.(CounterCheckMsg) != m {
		t.Fatalf("round trip: %+v", got)
	}
}

func TestCounterCheckResponseRoundTrip(t *testing.T) {
	m := CounterCheckResponseMsg{TransactionID: 7, ULBytes: 274841, DLBytes: 33604032}
	got, err := ParseRRC(m.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.(CounterCheckResponseMsg) != m {
		t.Fatalf("round trip: %+v", got)
	}
}

func TestCounterCheckResponseRoundTripProperty(t *testing.T) {
	f := func(txn uint8, ul, dl uint64) bool {
		m := CounterCheckResponseMsg{TransactionID: txn, ULBytes: ul, DLBytes: dl}
		got, err := ParseRRC(m.Marshal())
		return err == nil && got.(CounterCheckResponseMsg) == m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestConnectionReleaseRoundTrip(t *testing.T) {
	m := ConnectionReleaseMsg{Cause: 3}
	got, err := ParseRRC(m.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.(ConnectionReleaseMsg) != m {
		t.Fatalf("round trip: %+v", got)
	}
}

func TestParseRRCErrors(t *testing.T) {
	if _, err := ParseRRC(nil); err == nil {
		t.Fatal("nil accepted")
	}
	if _, err := ParseRRC([]byte{byte(RRCCounterCheck)}); err == nil {
		t.Fatal("one-byte message accepted")
	}
	if _, err := ParseRRC([]byte{99, 0}); err == nil {
		t.Fatal("unknown type accepted")
	}
	// Truncated response.
	if _, err := ParseRRC([]byte{byte(RRCCounterCheckResponse), 1, 2, 3}); err == nil {
		t.Fatal("truncated response accepted")
	}
}

func TestRRCMessageTypeString(t *testing.T) {
	if RRCCounterCheck.String() != "CounterCheck" ||
		RRCCounterCheckResponse.String() != "CounterCheckResponse" ||
		RRCConnectionRelease.String() != "ConnectionRelease" {
		t.Fatal("type strings wrong")
	}
	if RRCMessageType(99).String() != "RRCMessageType(99)" {
		t.Fatal("unknown type string wrong")
	}
}

func TestBaseStationSignallingAccounting(t *testing.T) {
	s := sim.NewScheduler()
	r := NewRadio(s, ConstantRSS(-90))
	r.Start()
	bs := NewBaseStation(s, r, &fakeModem{ul: 5, dl: 10})
	bs.InactivityRelease = 3 * time.Second
	got := 0
	bs.OnCounterCheck = func(rec CounterCheckRecord) {
		got++
		if rec.UL != 5 || rec.DL != 10 {
			t.Errorf("counts via RRC codec = %d/%d", rec.UL, rec.DL)
		}
	}
	bs.Start()
	s.At(time.Second, func() { bs.NotifyActivity(s.Now()) })
	s.RunUntil(10 * time.Second)
	if got != 1 {
		t.Fatalf("counter checks completed = %d", got)
	}
	// One check (2B) + one response (18B) + one release (2B).
	if bs.SignallingBytes() != 22 {
		t.Fatalf("signalling bytes = %d, want 22", bs.SignallingBytes())
	}
}
