package ran

import (
	"time"

	"tlc/internal/netem"
	"tlc/internal/sim"
)

// ModemCounters is the view the base station has of the device's
// hardware modem traffic statistics. The RRC COUNTER CHECK procedure
// reads these counters; because they live in the modem hardware, a
// selfish edge OS cannot manipulate them (§5.4).
type ModemCounters interface {
	// CounterSnapshot returns the cumulative uplink and downlink
	// bytes the modem has transferred.
	CounterSnapshot() (ulBytes, dlBytes uint64)
}

// CounterCheckRecord is one completed RRC COUNTER CHECK exchange.
type CounterCheckRecord struct {
	At sim.Time
	UL uint64
	DL uint64
}

// BaseStation models the eNodeB/gNB: RRC connection management with
// an inactivity release timer, and the COUNTER CHECK procedure that
// TLC activates so the operator obtains a tamper-resilient downlink
// record. Per §5.4, a COUNTER CHECK is issued before every RRC
// CONNECTION RELEASE, bounding the added signalling by the number of
// releases.
type BaseStation struct {
	Sched *sim.Scheduler
	Radio *Radio
	Modem ModemCounters

	// InactivityRelease is how long the connection stays up without
	// traffic before the base station releases it.
	InactivityRelease time.Duration
	// CheckRTT is the COUNTER CHECK request/response air round trip.
	CheckRTT time.Duration

	// OnCounterCheck receives every completed exchange; the
	// operator's monitor subscribes here.
	OnCounterCheck func(rec CounterCheckRecord)

	rrcConnected  bool
	lastActivity  sim.Time
	releases      uint64
	setups        uint64
	checksSent    uint64
	checksAnswerd uint64
	nextTxn       uint8
	signalBytes   uint64

	started bool
}

// NewBaseStation returns a base station with default timers.
func NewBaseStation(sched *sim.Scheduler, radio *Radio, modem ModemCounters) *BaseStation {
	return &BaseStation{
		Sched:             sched,
		Radio:             radio,
		Modem:             modem,
		InactivityRelease: 10 * time.Second,
		CheckRTT:          30 * time.Millisecond,
	}
}

// Start begins the inactivity monitor.
func (b *BaseStation) Start() {
	if b.started {
		return
	}
	b.started = true
	b.Sched.Ticker(time.Second, time.Second, func(now sim.Time) {
		if b.rrcConnected && now-b.lastActivity >= b.InactivityRelease {
			b.release(now)
		}
	})
}

// NotifyActivity records data activity on the bearer; any packet
// crossing the air interface calls it. It implicitly performs RRC
// connection setup if the connection was idle.
func (b *BaseStation) NotifyActivity(now sim.Time) {
	if !b.rrcConnected {
		b.rrcConnected = true
		b.setups++
	}
	b.lastActivity = now
}

// release performs COUNTER CHECK then RRC CONNECTION RELEASE.
func (b *BaseStation) release(now sim.Time) {
	b.TriggerCounterCheck()
	b.signalBytes += uint64(len(ConnectionReleaseMsg{Cause: 0}.Marshal()))
	b.rrcConnected = false
	b.releases++
}

// TriggerCounterCheck initiates an RRC COUNTER CHECK toward the
// device. The request and response travel as encoded RRC messages;
// the response arrives after CheckRTT if the radio is available and
// is silently lost otherwise (the device is unreachable). The count
// snapshot is taken at response time on the modem.
func (b *BaseStation) TriggerCounterCheck() {
	if !b.Radio.Available(b.Sched.Now()) {
		return
	}
	b.nextTxn++
	req := CounterCheckMsg{TransactionID: b.nextTxn}
	wire := req.Marshal()
	b.signalBytes += uint64(len(wire))
	b.checksSent++
	b.Sched.After(b.CheckRTT, func() {
		if !b.Radio.Available(b.Sched.Now()) {
			return // response lost in an outage
		}
		// The modem answers with its PDCP counts; decode the request
		// and encode the response exactly as the air interface would.
		decoded, err := ParseRRC(wire)
		if err != nil {
			return
		}
		q := decoded.(CounterCheckMsg)
		ul, dl := b.Modem.CounterSnapshot()
		respWire := CounterCheckResponseMsg{TransactionID: q.TransactionID, ULBytes: ul, DLBytes: dl}.Marshal()
		b.signalBytes += uint64(len(respWire))
		parsed, err := ParseRRC(respWire)
		if err != nil {
			return
		}
		resp := parsed.(CounterCheckResponseMsg)
		if resp.TransactionID != q.TransactionID {
			return // stale response
		}
		b.checksAnswerd++
		if b.OnCounterCheck != nil {
			b.OnCounterCheck(CounterCheckRecord{At: b.Sched.Now(), UL: resp.ULBytes, DL: resp.DLBytes})
		}
	})
}

// SignallingBytes returns the RRC signalling volume TLC's counter
// checks added; §5.4 bounds it by the number of connection releases.
func (b *BaseStation) SignallingBytes() uint64 { return b.signalBytes }

// Connected reports whether an RRC connection is established.
func (b *BaseStation) Connected() bool { return b.rrcConnected }

// Releases returns how many RRC CONNECTION RELEASEs occurred.
func (b *BaseStation) Releases() uint64 { return b.releases }

// Setups returns how many RRC connection setups occurred.
func (b *BaseStation) Setups() uint64 { return b.setups }

// CounterChecks returns (sent, answered) COUNTER CHECK exchanges.
func (b *BaseStation) CounterChecks() (sent, answered uint64) {
	return b.checksSent, b.checksAnswerd
}

// AirLinkConfig parameterises one direction of the air interface.
type AirLinkConfig struct {
	Name         string
	RateBps      float64
	Delay        time.Duration
	QueueBytes   int
	ResidualLoss float64 // loss probability floor in good radio
}

// NewAirLink builds an air-interface link gated on radio
// availability, with residual (post-HARQ) Bernoulli loss and
// MCS-adaptive rate: weak signal lowers the serving rate, so a stream
// exceeding the degraded rate overflows the eNodeB buffer instead of
// being "lost on the wire". While the radio is unavailable the link
// buffers (base-station buffering partially tolerates short outages,
// Figure 4); buffered packets beyond the queue limit drop.
func NewAirLink(cfg AirLinkConfig, sched *sim.Scheduler, radio *Radio, dst netem.Node, rng *sim.RNG) *netem.Link {
	l := netem.NewLink(cfg.Name, sched, cfg.RateBps, cfg.Delay, cfg.QueueBytes, dst)
	l.Gate = radio.Available
	l.RateScale = func(now sim.Time) float64 {
		return MCSFactor(radio.Model.RSS(now))
	}
	l.Loss = netem.LossFunc(func(pkt *netem.Packet, now sim.Time) bool {
		p := LossProb(radio.Model.RSS(now), cfg.ResidualLoss)
		if p <= 0 {
			return false
		}
		if p >= 1 {
			return true
		}
		return rng.Float64() < p
	})
	return l
}
