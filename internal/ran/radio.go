package ran

import (
	"time"

	"tlc/internal/sim"
)

// RadioState is the attachment state of the device as seen by the
// network.
type RadioState int

const (
	// Attached: the device has a registered session; the gateway
	// meters (and the operator charges) its traffic.
	Attached RadioState = iota
	// Detached: the network detected a persistent radio link failure
	// and released the session. Traffic is neither delivered nor
	// charged until re-attach (§3.2: "the network can detect it via
	// radio link failures, detach the device and prevent larger
	// gap. Our LTE core takes 5s on average for this.").
	Detached
)

// Radio tracks coverage and attachment for one device. It polls the
// RSS process, gates the air-interface links while the device is out
// of coverage or detached, and drives detach/attach transitions with
// the paper's ~5s radio-link-failure timer.
type Radio struct {
	Sched *sim.Scheduler
	Model RSSModel

	// DetachAfter is how long a continuous out-of-coverage condition
	// persists before the core detaches the device. Paper: 5s.
	DetachAfter time.Duration
	// AttachDelay is the re-attach signalling time once coverage
	// returns after a detach.
	AttachDelay time.Duration
	// PollInterval is the coverage sampling period.
	PollInterval time.Duration

	// OnDetach and OnAttach fire on state transitions; the EPC's MME
	// subscribes to stop/resume gateway metering.
	OnDetach func(now sim.Time)
	OnAttach func(now sim.Time)

	state        RadioState
	outageSince  sim.Time // valid when inOutage
	inOutage     bool
	attachingAt  sim.Time // when a pending re-attach completes
	attachPend   bool
	outOfService time.Duration // cumulative no-service time
	lastPoll     sim.Time

	started bool
}

// NewRadio returns a radio with the paper's default timers.
func NewRadio(sched *sim.Scheduler, model RSSModel) *Radio {
	return &Radio{
		Sched:        sched,
		Model:        model,
		DetachAfter:  5 * time.Second,
		AttachDelay:  200 * time.Millisecond,
		PollInterval: 50 * time.Millisecond,
		state:        Attached,
	}
}

// Start begins coverage polling. It must be called before the
// simulation runs.
func (r *Radio) Start() {
	if r.started {
		return
	}
	r.started = true
	r.Sched.Ticker(0, r.PollInterval, r.poll)
}

func (r *Radio) poll(now sim.Time) {
	covered := r.Model.RSS(now) > NoServiceRSS
	if !covered {
		r.outOfService += r.PollInterval
		if !r.inOutage {
			r.inOutage = true
			r.outageSince = now
		}
		if r.state == Attached && now-r.outageSince >= r.DetachAfter {
			r.state = Detached
			r.attachPend = false
			if r.OnDetach != nil {
				r.OnDetach(now)
			}
		}
		return
	}
	// In coverage.
	r.inOutage = false
	if r.state == Detached {
		if !r.attachPend {
			r.attachPend = true
			r.attachingAt = now + r.AttachDelay
		}
		if now >= r.attachingAt {
			r.state = Attached
			r.attachPend = false
			if r.OnAttach != nil {
				r.OnAttach(now)
			}
		} else {
			r.outOfService += r.PollInterval
		}
	}
	r.lastPoll = now
}

// State returns the current attachment state.
func (r *Radio) State() RadioState { return r.state }

// InCoverage reports whether the instantaneous RSS allows service.
func (r *Radio) InCoverage(now sim.Time) bool {
	return r.Model.RSS(now) > NoServiceRSS
}

// Available reports whether data can flow right now: attached and in
// coverage. Air-interface link gates call this.
func (r *Radio) Available(now sim.Time) bool {
	return r.state == Attached && r.InCoverage(now)
}

// OutOfServiceTime returns the cumulative duration without service,
// the numerator of the paper's intermittent disconnectivity ratio η.
func (r *Radio) OutOfServiceTime() time.Duration { return r.outOfService }
