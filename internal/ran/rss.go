// Package ran emulates the LTE radio access network: the received
// signal strength (RSS) process, the radio link with RSS-driven loss
// and outage gating, radio-link-failure detection feeding the core's
// detach logic, and the base station's RRC procedures — including the
// COUNTER CHECK exchange TLC uses as its tamper-resilient downlink
// charging record (§5.4).
package ran

import (
	"sort"
	"time"

	"tlc/internal/sim"
)

// RSSModel produces the received signal strength (dBm) over time.
type RSSModel interface {
	RSS(now sim.Time) float64
}

// ConstantRSS is a time-invariant signal strength.
type ConstantRSS float64

// RSS implements RSSModel.
func (c ConstantRSS) RSS(sim.Time) float64 { return float64(c) }

// Interval is a half-open time interval.
type Interval struct {
	Start sim.Time
	End   sim.Time
}

// Contains reports whether t is inside the interval.
func (iv Interval) Contains(t sim.Time) bool { return t >= iv.Start && t < iv.End }

// OutageRSS models intermittent wireless connectivity (§3.2, Figure 4):
// the signal sits at Base dBm, interrupted by outages during which it
// drops to Depth dBm. Outage gaps and durations are exponentially
// distributed, reproducing the paper's "average wireless
// dis-connectivity duration is 1.93s" regime and the η sweeps of
// Figure 14.
type OutageRSS struct {
	Base    float64
	Depth   float64
	outages []Interval
}

// NewOutageRSS precomputes an outage schedule over [0, horizon).
// meanGap is the mean in-coverage time between outages and meanOutage
// the mean outage duration.
func NewOutageRSS(base, depth float64, meanGap, meanOutage, horizon time.Duration, rng *sim.RNG) *OutageRSS {
	o := &OutageRSS{Base: base, Depth: depth}
	if meanOutage <= 0 || meanGap <= 0 {
		return o
	}
	t := sim.Time(0)
	for t < horizon {
		gap := rng.Exp(meanGap)
		if gap < 50*time.Millisecond {
			gap = 50 * time.Millisecond
		}
		start := t + gap
		dur := rng.Exp(meanOutage)
		if dur < 20*time.Millisecond {
			dur = 20 * time.Millisecond
		}
		end := start + dur
		if start >= horizon {
			break
		}
		if end > horizon {
			end = horizon
		}
		o.outages = append(o.outages, Interval{Start: start, End: end})
		t = end
	}
	return o
}

// RSS implements RSSModel.
func (o *OutageRSS) RSS(now sim.Time) float64 {
	i := sort.Search(len(o.outages), func(i int) bool { return o.outages[i].End > now })
	if i < len(o.outages) && o.outages[i].Contains(now) {
		return o.Depth
	}
	return o.Base
}

// Outages returns the precomputed outage schedule.
func (o *OutageRSS) Outages() []Interval { return o.outages }

// OutageTime returns the total scheduled outage duration in [0, until).
func (o *OutageRSS) OutageTime(until sim.Time) time.Duration {
	var total time.Duration
	for _, iv := range o.outages {
		if iv.Start >= until {
			break
		}
		end := iv.End
		if end > until {
			end = until
		}
		total += end - iv.Start
	}
	return total
}

// TraceRSS replays an explicit step function of (time, rss) samples,
// e.g. one digitised from the paper's Figure 4.
type TraceRSS struct {
	Times  []sim.Time
	Values []float64
}

// RSS implements RSSModel. Before the first sample it returns the
// first value; afterwards the most recent sample applies.
func (t *TraceRSS) RSS(now sim.Time) float64 {
	if len(t.Times) == 0 {
		return 0
	}
	i := sort.Search(len(t.Times), func(i int) bool { return t.Times[i] > now })
	if i == 0 {
		return t.Values[0]
	}
	return t.Values[i-1]
}

// Signal-quality thresholds used across the RAN model, in dBm.
const (
	// GoodRSS is the paper's "good radio" threshold (§3.2: RSS ≥ -95dBm).
	GoodRSS = -95.0
	// NoServiceRSS is the level below which the device is out of
	// sync with the base station: no uplink or downlink service.
	NoServiceRSS = -120.0
)

// LossProb maps instantaneous RSS to an air-interface packet loss
// probability. LTE's HARQ/RLC retransmissions recover most physical-
// layer errors, so at any usable signal level the IP-visible loss is
// the residual rate (UDP streams over LTE are not lossless; the
// paper measures 6.7-8.3% gaps even in good radio). Below the
// no-service threshold nothing gets through. Weak-but-usable signal
// instead reduces the achievable *rate* — see MCSFactor — which is
// why "weak signal does not always result in charging gaps" (§3.2).
func LossProb(rss, residual float64) float64 {
	if rss <= NoServiceRSS {
		return 1
	}
	return residual
}

// MCSFactor maps instantaneous RSS to the fraction of the nominal
// air-interface rate a UE achieves: modulation-and-coding adaptation
// gives full rate in good signal and a steeply lower rate toward the
// cell edge (a cubic roll-off approximating LTE MCS tables).
func MCSFactor(rss float64) float64 {
	if rss >= GoodRSS {
		return 1
	}
	if rss <= NoServiceRSS {
		return 0
	}
	frac := (rss - NoServiceRSS) / (GoodRSS - NoServiceRSS)
	return frac * frac * frac
}
