// Package trace records and replays packet traces. The paper replays
// tcpdump logs of VRidge/Portal-2 and King of Glory through its
// testbed (via tcprelay); this package provides the equivalent
// mechanism — a compact binary trace format, a Recorder that taps a
// packet path, and a Replayer that re-emits a trace into the emulated
// network — together with synthesizers that build traces from the
// workload models since the original captures are proprietary.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"

	"tlc/internal/apps"
	"tlc/internal/netem"
	"tlc/internal/sim"
)

// Magic identifies the trace file format.
const Magic = "TLCTRC01"

// Trace is an in-memory packet trace for a single flow.
type Trace struct {
	Flow string
	IMSI string
	Dir  netem.Direction
	QCI  uint8

	Times []sim.Time // emission times, non-decreasing
	Sizes []int32    // bytes on the wire
}

// Len returns the number of packets.
func (t *Trace) Len() int { return len(t.Times) }

// Bytes returns the total traced volume.
func (t *Trace) Bytes() uint64 {
	var total uint64
	for _, s := range t.Sizes {
		total += uint64(s)
	}
	return total
}

// Duration returns the time span of the trace.
func (t *Trace) Duration() time.Duration {
	if len(t.Times) == 0 {
		return 0
	}
	return t.Times[len(t.Times)-1] - t.Times[0]
}

// Append adds one packet record. Times must be non-decreasing.
func (t *Trace) Append(at sim.Time, size int) error {
	if n := len(t.Times); n > 0 && at < t.Times[n-1] {
		return fmt.Errorf("trace: non-monotonic time %v after %v", at, t.Times[n-1])
	}
	if size <= 0 {
		return fmt.Errorf("trace: non-positive size %d", size)
	}
	t.Times = append(t.Times, at)
	t.Sizes = append(t.Sizes, int32(size))
	return nil
}

// WriteTo serialises the trace. Format: magic, flow, imsi, dir, qci,
// count, then per packet a varint time delta (ns) and varint size.
func (t *Trace) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	n := int64(0)
	count := func(k int, err error) error {
		n += int64(k)
		return err
	}
	if err := count(bw.WriteString(Magic)); err != nil {
		return n, err
	}
	writeStr := func(s string) error {
		var buf [binary.MaxVarintLen64]byte
		k := binary.PutUvarint(buf[:], uint64(len(s)))
		if err := count(bw.Write(buf[:k])); err != nil {
			return err
		}
		return count(bw.WriteString(s))
	}
	if err := writeStr(t.Flow); err != nil {
		return n, err
	}
	if err := writeStr(t.IMSI); err != nil {
		return n, err
	}
	if err := count(bw.Write([]byte{byte(t.Dir), t.QCI})); err != nil {
		return n, err
	}
	var buf [binary.MaxVarintLen64]byte
	k := binary.PutUvarint(buf[:], uint64(len(t.Times)))
	if err := count(bw.Write(buf[:k])); err != nil {
		return n, err
	}
	prev := sim.Time(0)
	for i := range t.Times {
		k = binary.PutUvarint(buf[:], uint64(t.Times[i]-prev))
		if err := count(bw.Write(buf[:k])); err != nil {
			return n, err
		}
		prev = t.Times[i]
		k = binary.PutUvarint(buf[:], uint64(t.Sizes[i]))
		if err := count(bw.Write(buf[:k])); err != nil {
			return n, err
		}
	}
	return n, bw.Flush()
}

// Read parses a trace written by WriteTo.
func Read(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(Magic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("trace: short magic: %w", err)
	}
	if string(magic) != Magic {
		return nil, errors.New("trace: bad magic")
	}
	readStr := func() (string, error) {
		l, err := binary.ReadUvarint(br)
		if err != nil {
			return "", err
		}
		if l > 1<<20 {
			return "", errors.New("trace: unreasonable string length")
		}
		b := make([]byte, l)
		if _, err := io.ReadFull(br, b); err != nil {
			return "", err
		}
		return string(b), nil
	}
	t := &Trace{}
	var err error
	if t.Flow, err = readStr(); err != nil {
		return nil, fmt.Errorf("trace: flow: %w", err)
	}
	if t.IMSI, err = readStr(); err != nil {
		return nil, fmt.Errorf("trace: imsi: %w", err)
	}
	var hdr [2]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: header: %w", err)
	}
	t.Dir = netem.Direction(hdr[0])
	t.QCI = hdr[1]
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: count: %w", err)
	}
	if count > 1<<30 {
		return nil, errors.New("trace: unreasonable packet count")
	}
	t.Times = make([]sim.Time, 0, count)
	t.Sizes = make([]int32, 0, count)
	prev := sim.Time(0)
	for i := uint64(0); i < count; i++ {
		dt, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: record %d time: %w", i, err)
		}
		size, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: record %d size: %w", i, err)
		}
		prev += sim.Time(dt)
		t.Times = append(t.Times, prev)
		t.Sizes = append(t.Sizes, int32(size))
	}
	return t, nil
}

// Recorder taps a packet path and accumulates a Trace.
type Recorder struct {
	Trace *Trace
	sched *sim.Scheduler
	// Next optionally forwards packets.
	Next netem.Node
}

// NewRecorder returns a recorder capturing flow metadata from the
// first packet it sees.
func NewRecorder(sched *sim.Scheduler, next netem.Node) *Recorder {
	return &Recorder{Trace: &Trace{}, sched: sched, Next: next}
}

// Recv implements netem.Node.
func (r *Recorder) Recv(p *netem.Packet) {
	if r.Trace.Len() == 0 {
		r.Trace.Flow = p.Flow
		r.Trace.IMSI = p.IMSI
		r.Trace.Dir = p.Dir
		r.Trace.QCI = p.QCI
	}
	// Append never fails here: scheduler time is monotonic.
	_ = r.Trace.Append(r.sched.Now(), p.Size)
	if r.Next != nil {
		r.Next.Recv(p)
	}
}

// Replayer re-emits a trace into the network, like the paper's use of
// tcprelay to replay VR and gaming captures over the testbed LTE.
type Replayer struct {
	Trace *Trace
	Sched *sim.Scheduler
	IDs   *netem.IDGen
	Dst   netem.Node
	// TimeScale stretches (>1) or compresses (<1) the replay; 0
	// means 1.0 (real time).
	TimeScale float64
	// OnEmit observes every replayed packet.
	OnEmit func(*netem.Packet)

	// Pool optionally recycles emitted packets; the testbed wires
	// the same pool into the terminal sinks and drop sites.
	Pool *netem.PacketPool

	emitted uint64
	bytes   uint64
}

// Start schedules the entire trace starting at the given time.
func (r *Replayer) Start(at sim.Time) {
	scale := r.TimeScale
	if scale <= 0 {
		scale = 1
	}
	if r.Trace.Len() == 0 {
		return
	}
	t0 := r.Trace.Times[0]
	for i := range r.Trace.Times {
		i := i
		offset := time.Duration(float64(r.Trace.Times[i]-t0) * scale)
		r.Sched.AtPooled(at+offset, func() {
			pkt := r.Pool.Get()
			pkt.ID = r.IDs.Next()
			pkt.Flow = r.Trace.Flow
			pkt.IMSI = r.Trace.IMSI
			pkt.QCI = r.Trace.QCI
			pkt.Size = int(r.Trace.Sizes[i])
			pkt.Dir = r.Trace.Dir
			pkt.Sent = r.Sched.Now()
			r.emitted++
			r.bytes += uint64(pkt.Size)
			if r.OnEmit != nil {
				r.OnEmit(pkt)
			}
			r.Dst.Recv(pkt)
		})
	}
}

// Emitted returns (packets, bytes) replayed so far.
func (r *Replayer) Emitted() (uint64, uint64) { return r.emitted, r.bytes }

// Synthesize builds a trace by running a workload profile for the
// given duration on a private scheduler. It stands in for the paper's
// proprietary tcpdump captures.
func Synthesize(p apps.Profile, flow, imsi string, dur time.Duration, seed int64) *Trace {
	sched := sim.NewScheduler()
	rec := NewRecorder(sched, nil)
	st := apps.NewStreamer(p, sched, &netem.IDGen{}, rec, flow, imsi, sim.NewRNG(seed))
	st.Start(0)
	sched.RunUntil(dur)
	st.Stop()
	return rec.Trace
}
