package trace

import (
	"bytes"
	"testing"
	"testing/quick"
	"time"

	"tlc/internal/apps"
	"tlc/internal/netem"
	"tlc/internal/sim"
)

func sampleTrace(t *testing.T) *Trace {
	t.Helper()
	tr := &Trace{Flow: "vr", IMSI: "imsi9", Dir: netem.Downlink, QCI: 9}
	for i, rec := range []struct {
		at   sim.Time
		size int
	}{{0, 1400}, {time.Millisecond, 1400}, {16 * time.Millisecond, 900}} {
		if err := tr.Append(rec.at, rec.size); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	return tr
}

func TestTraceAccessors(t *testing.T) {
	tr := sampleTrace(t)
	if tr.Len() != 3 || tr.Bytes() != 3700 || tr.Duration() != 16*time.Millisecond {
		t.Fatalf("len=%d bytes=%d dur=%v", tr.Len(), tr.Bytes(), tr.Duration())
	}
	empty := &Trace{}
	if empty.Duration() != 0 || empty.Bytes() != 0 {
		t.Fatal("empty trace accessors nonzero")
	}
}

func TestAppendValidation(t *testing.T) {
	tr := &Trace{}
	if err := tr.Append(time.Second, 100); err != nil {
		t.Fatal(err)
	}
	if err := tr.Append(500*time.Millisecond, 100); err == nil {
		t.Fatal("non-monotonic append accepted")
	}
	if err := tr.Append(2*time.Second, 0); err == nil {
		t.Fatal("zero size accepted")
	}
	if err := tr.Append(time.Second, 100); err != nil {
		t.Fatal("equal-time append rejected")
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	tr := sampleTrace(t)
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Flow != tr.Flow || back.IMSI != tr.IMSI || back.Dir != tr.Dir || back.QCI != tr.QCI {
		t.Fatalf("metadata mismatch: %+v", back)
	}
	if back.Len() != tr.Len() {
		t.Fatalf("len = %d", back.Len())
	}
	for i := range tr.Times {
		if back.Times[i] != tr.Times[i] || back.Sizes[i] != tr.Sizes[i] {
			t.Fatalf("record %d mismatch", i)
		}
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("NOTATRACE..."))); err == nil {
		t.Fatal("bad magic accepted")
	}
	if _, err := Read(bytes.NewReader([]byte("TL"))); err == nil {
		t.Fatal("truncated magic accepted")
	}
	// Valid magic, then truncation.
	if _, err := Read(bytes.NewReader([]byte(Magic))); err == nil {
		t.Fatal("empty body accepted")
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(deltas []uint16, sizes []uint16) bool {
		tr := &Trace{Flow: "f", IMSI: "i", Dir: netem.Uplink, QCI: 7}
		at := sim.Time(0)
		n := len(deltas)
		if len(sizes) < n {
			n = len(sizes)
		}
		for i := 0; i < n; i++ {
			at += sim.Time(deltas[i])
			if err := tr.Append(at, int(sizes[i])+1); err != nil {
				return false
			}
		}
		var buf bytes.Buffer
		if _, err := tr.WriteTo(&buf); err != nil {
			return false
		}
		back, err := Read(&buf)
		if err != nil {
			return false
		}
		if back.Len() != tr.Len() || back.Bytes() != tr.Bytes() {
			return false
		}
		for i := range tr.Times {
			if back.Times[i] != tr.Times[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRecorderCapturesMetadataAndForwards(t *testing.T) {
	s := sim.NewScheduler()
	sink := &netem.Sink{}
	rec := NewRecorder(s, sink)
	s.At(time.Second, func() {
		rec.Recv(&netem.Packet{Flow: "game", IMSI: "i7", QCI: 7, Size: 100, Dir: netem.Downlink})
	})
	s.At(2*time.Second, func() {
		rec.Recv(&netem.Packet{Flow: "game", IMSI: "i7", QCI: 7, Size: 150, Dir: netem.Downlink})
	})
	s.Run()
	tr := rec.Trace
	if tr.Flow != "game" || tr.IMSI != "i7" || tr.QCI != 7 || tr.Dir != netem.Downlink {
		t.Fatalf("metadata = %+v", tr)
	}
	if tr.Len() != 2 || tr.Times[0] != time.Second || tr.Sizes[1] != 150 {
		t.Fatalf("records = %v %v", tr.Times, tr.Sizes)
	}
	if sink.Packets != 2 {
		t.Fatal("recorder did not forward")
	}
}

func TestReplayerReproducesTiming(t *testing.T) {
	tr := sampleTrace(t)
	s := sim.NewScheduler()
	var times []sim.Time
	var sizes []int
	sink := netem.NodeFunc(func(p *netem.Packet) {
		times = append(times, s.Now())
		sizes = append(sizes, p.Size)
	})
	rp := &Replayer{Trace: tr, Sched: s, IDs: &netem.IDGen{}, Dst: sink}
	rp.Start(time.Second)
	s.Run()
	if len(times) != 3 {
		t.Fatalf("replayed %d packets", len(times))
	}
	want := []sim.Time{time.Second, time.Second + time.Millisecond, time.Second + 16*time.Millisecond}
	for i := range want {
		if times[i] != want[i] {
			t.Fatalf("times = %v, want %v", times, want)
		}
		if sizes[i] != int(tr.Sizes[i]) {
			t.Fatalf("sizes = %v", sizes)
		}
	}
	pkts, bytes := rp.Emitted()
	if pkts != 3 || bytes != 3700 {
		t.Fatalf("Emitted = %d/%d", pkts, bytes)
	}
}

func TestReplayerTimeScale(t *testing.T) {
	tr := sampleTrace(t)
	s := sim.NewScheduler()
	var last sim.Time
	sink := netem.NodeFunc(func(p *netem.Packet) { last = s.Now() })
	rp := &Replayer{Trace: tr, Sched: s, IDs: &netem.IDGen{}, Dst: sink, TimeScale: 2}
	rp.Start(0)
	s.Run()
	if last != 32*time.Millisecond {
		t.Fatalf("stretched replay ended at %v, want 32ms", last)
	}
}

func TestReplayerEmptyTrace(t *testing.T) {
	s := sim.NewScheduler()
	rp := &Replayer{Trace: &Trace{}, Sched: s, IDs: &netem.IDGen{}, Dst: &netem.Sink{}}
	rp.Start(0) // must not panic
	s.Run()
}

func TestSynthesizeVRidge(t *testing.T) {
	tr := Synthesize(apps.VRidgeGVSP, "vr", "imsi1", 10*time.Second, 42)
	if tr.Len() == 0 {
		t.Fatal("empty synthetic trace")
	}
	mbps := float64(tr.Bytes()) * 8 / 10 / 1e6
	if mbps < 7.5 || mbps > 10.5 {
		t.Fatalf("synthetic VR bitrate = %.2f Mbps, want ~9", mbps)
	}
	if tr.Dir != netem.Downlink || tr.Flow != "vr" {
		t.Fatalf("metadata = %+v", tr)
	}
	// Deterministic for a fixed seed.
	tr2 := Synthesize(apps.VRidgeGVSP, "vr", "imsi1", 10*time.Second, 42)
	if tr2.Len() != tr.Len() || tr2.Bytes() != tr.Bytes() {
		t.Fatal("synthesis not deterministic")
	}
}
