package epc

import (
	"net"
	"strings"
	"testing"
)

func rfPair(t *testing.T) (*RfClient, *RfServer, *OFCS, func()) {
	t.Helper()
	cliConn, srvConn := net.Pipe()
	ofcs := NewOFCS()
	srv := &RfServer{OFCS: ofcs}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(srvConn) }()
	cleanup := func() {
		_ = cliConn.Close()
		_ = srvConn.Close()
		if err := <-done; err != nil {
			t.Errorf("server: %v", err)
		}
	}
	return NewRfClient(cliConn), srv, ofcs, cleanup
}

func sampleCDR(seq uint32, ul uint64) *CDR {
	return &CDR{
		ServedIMSI:       "00 01 11 32 54 76 48 F5",
		GatewayAddress:   "192.168.2.11",
		SequenceNumber:   seq,
		TimeOfFirstUsage: "2019-01-07 07:13:46",
		TimeOfLastUsage:  "2019-01-07 08:13:46",
		TimeUsage:        3600,
		DataVolumeUplink: ul,
	}
}

func TestRfTransfersCDRs(t *testing.T) {
	cli, srv, ofcs, cleanup := rfPair(t)
	for i := uint32(0); i < 10; i++ {
		if err := cli.Send(sampleCDR(i, 100)); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	cleanup()
	if srv.Received != 10 || srv.Rejected != 0 {
		t.Fatalf("server received=%d rejected=%d", srv.Received, srv.Rejected)
	}
	if ofcs.Records() != 10 {
		t.Fatalf("OFCS has %d records", ofcs.Records())
	}
	u, ok := ofcs.UsageFor("00 01 11 32 54 76 48 F5")
	if !ok || u.UL != 1000 {
		t.Fatalf("usage = %+v, %v", u, ok)
	}
	if cli.Sent != 10 || cli.Acked != 10 {
		t.Fatalf("client sent=%d acked=%d", cli.Sent, cli.Acked)
	}
}

func TestRfOverTCP(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close() //tlcvet:allow errdiscard — test cleanup; the assertions, not Close, decide this test
	ofcs := NewOFCS()
	srv := &RfServer{OFCS: ofcs}
	done := make(chan error, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			done <- err
			return
		}
		defer conn.Close() //tlcvet:allow errdiscard — test cleanup; the assertions, not Close, decide this test
		done <- srv.Serve(conn)
	}()
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	cli := NewRfClient(conn)
	if err := cli.Send(sampleCDR(0, 274841)); err != nil {
		t.Fatal(err)
	}
	_ = conn.Close()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if ofcs.TotalVolume() != 274841 {
		t.Fatalf("volume = %d", ofcs.TotalVolume())
	}
}

// rawConn lets a test speak the wire format directly.
func TestRfServerRejectsMalformedRecord(t *testing.T) {
	cliConn, srvConn := net.Pipe()
	ofcs := NewOFCS()
	srv := &RfServer{OFCS: ofcs}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(srvConn) }()

	if err := writeRfFrame(cliConn, rfTypeACR, 1, 0, []byte("not xml")); err != nil {
		t.Fatal(err)
	}
	typ, seq, result, _, err := readRfFrame(cliConn)
	if err != nil {
		t.Fatal(err)
	}
	if typ != rfTypeACA || seq != 1 || result != RfResultMalformed {
		t.Fatalf("answer = type %d seq %d result %d", typ, seq, result)
	}
	_ = cliConn.Close()
	_ = srvConn.Close()
	<-done
	if srv.Rejected != 1 || ofcs.Records() != 0 {
		t.Fatalf("rejected=%d records=%d", srv.Rejected, ofcs.Records())
	}
}

func TestRfServerRejectsUnknownType(t *testing.T) {
	cliConn, srvConn := net.Pipe()
	srv := &RfServer{OFCS: NewOFCS()}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(srvConn) }()
	if err := writeRfFrame(cliConn, 99, 7, 0, nil); err != nil {
		t.Fatal(err)
	}
	typ, _, result, _, err := readRfFrame(cliConn)
	if err != nil {
		t.Fatal(err)
	}
	if typ != rfTypeACA || result != RfResultUnsupported {
		t.Fatalf("answer = type %d result %d", typ, result)
	}
	_ = cliConn.Close()
	_ = srvConn.Close()
	<-done
}

func TestRfClientSurfacesRejection(t *testing.T) {
	cliConn, srvConn := net.Pipe()
	// A fake server that rejects everything.
	go func() {
		for {
			typ, seq, _, _, err := readRfFrame(srvConn)
			if err != nil {
				return
			}
			_ = typ
			_ = writeRfFrame(srvConn, rfTypeACA, seq, RfResultMalformed, nil)
		}
	}()
	cli := NewRfClient(cliConn)
	err := cli.Send(sampleCDR(0, 1))
	if err == nil || !strings.Contains(err.Error(), "rejected") {
		t.Fatalf("err = %v", err)
	}
	if cli.Acked != 0 {
		t.Fatal("rejected record counted as acked")
	}
	_ = cliConn.Close()
	_ = srvConn.Close()
}

func TestRfFrameBounds(t *testing.T) {
	cliConn, srvConn := net.Pipe()
	defer cliConn.Close() //tlcvet:allow errdiscard — test cleanup; the assertions, not Close, decide this test
	defer srvConn.Close() //tlcvet:allow errdiscard — test cleanup; the assertions, not Close, decide this test
	go func() { _, _, _, _, _ = readRfFrame(srvConn) }()
	if err := writeRfFrame(cliConn, rfTypeACR, 0, 0, make([]byte, maxRfFrame+1)); err == nil {
		t.Fatal("oversized frame written")
	}
}
