package epc

import "tlc/internal/metrics"

// Registry instruments for the charging core. Collection and metering
// keep their existing plain counters (one scheduler, no atomics on
// the packet path); PublishMetrics flushes the totals once at a run
// boundary.
var (
	mCDRsEmitted = metrics.Default.Counter("epc_cdrs_emitted_total",
		"CDRs collected by the OFCS")
	mCDRsLost = metrics.Default.Counter("epc_cdrs_lost_total",
		"CDRs lost to OFCS crashes (loss-window rollback plus discarded while down)")
	mCDRBytesLost = metrics.Default.Counter("epc_cdr_bytes_lost_total",
		"charged bytes carried by CDRs lost to OFCS crashes")
	mCDRsRecovered = metrics.Default.Counter("epc_cdrs_recovered_total",
		"loss-window CDRs recovered from the durable ledger on OFCS restart")
	mQuotaTrips = metrics.Default.Counter("epc_quota_trips_total",
		"subscribers whose cumulative usage passed the plan quota")
	mOFCSCrashes = metrics.Default.Counter("epc_ofcs_crashes_total",
		"OFCS crash fault injections")
	mMeterRestarts = metrics.Default.Counter("epc_meter_restarts_total",
		"SPGW metering-process restarts")
	mMeterBytesLost = metrics.Default.Counter("epc_meter_bytes_lost_total",
		"metered-but-unflushed bytes discarded by SPGW meter restarts")
	mDetachedDrops = metrics.Default.Counter("epc_detached_dropped_packets_total",
		"downlink packets discarded uncharged while the subscriber was detached")
	mDetachedBytes = metrics.Default.Counter("epc_detached_dropped_bytes_total",
		"downlink bytes discarded uncharged while the subscriber was detached")
)

// PublishMetrics flushes the charging system's counters into the
// process metrics registry. Call once at the end of a run; later
// calls are no-ops.
func (o *OFCS) PublishMetrics() {
	if o == nil || o.published {
		return
	}
	o.published = true
	mCDRsEmitted.Add(uint64(len(o.cdrs)))
	mCDRsLost.Add(uint64(o.LostRecords()))
	mCDRBytesLost.Add(o.lostBytes)
	mCDRsRecovered.Add(uint64(o.recovered))
	mQuotaTrips.Add(uint64(len(o.exceeded)))
	mOFCSCrashes.Add(uint64(o.crashes))
}

// PublishMetrics flushes the gateway's counters into the process
// metrics registry, once.
func (g *SPGW) PublishMetrics() {
	if g == nil || g.published {
		return
	}
	g.published = true
	mMeterRestarts.Add(uint64(g.restarts))
	mMeterBytesLost.Add(g.restartLostBy)
	var pkts, bytes uint64
	for _, s := range g.sessions {
		pkts += s.droppedDetachedPkts
		bytes += s.droppedDetachedBytes
	}
	mDetachedDrops.Add(pkts)
	mDetachedBytes.Add(bytes)
}
