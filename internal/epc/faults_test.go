package epc

import (
	"testing"
	"time"

	"tlc/internal/ledger"
	"tlc/internal/netem"
	"tlc/internal/sim"
)

func TestOFCSCrashRollsBackLossWindow(t *testing.T) {
	o := NewOFCS()
	mk := func(ul, dl uint64) *CDR {
		return &CDR{ServedIMSI: "imsi-1", DataVolumeUplink: ul, DataVolumeDownlink: dl}
	}
	o.CollectAt(mk(100, 10), 1*time.Second)
	o.CollectAt(mk(200, 20), 2*time.Second)
	o.CollectAt(mk(300, 30), 3*time.Second)
	o.CollectAt(mk(400, 40), 4*time.Second)

	// Crash at t=4s with a 2s window: records stamped >= 2s are lost.
	lost := o.Crash(4*time.Second, 2*time.Second)
	if lost != 3 {
		t.Fatalf("lost %d records, want 3", lost)
	}
	u, ok := o.UsageFor("imsi-1")
	if !ok || u.UL != 100 || u.DL != 10 || u.Records != 1 {
		t.Fatalf("post-crash usage %+v", u)
	}
	if o.Records() != 1 {
		t.Fatalf("post-crash records %d, want 1", o.Records())
	}
	if !o.Down() || o.Crashes() != 1 {
		t.Fatalf("down=%v crashes=%d", o.Down(), o.Crashes())
	}

	// While down, collection is lost, not stored.
	o.CollectAt(mk(500, 50), 5*time.Second)
	if o.Records() != 1 {
		t.Fatal("record accepted while down")
	}
	if o.LostRecords() != 4 {
		t.Fatalf("LostRecords %d, want 4", o.LostRecords())
	}
	wantBytes := uint64(200 + 20 + 300 + 30 + 400 + 40 + 500 + 50)
	if o.LostBytes() != wantBytes {
		t.Fatalf("LostBytes %d, want %d", o.LostBytes(), wantBytes)
	}

	// After restart, collection resumes.
	o.Restart()
	o.CollectAt(mk(600, 60), 6*time.Second)
	if o.Records() != 2 {
		t.Fatalf("post-restart records %d, want 2", o.Records())
	}
	u, _ = o.UsageFor("imsi-1")
	if u.UL != 700 || u.Records != 2 {
		t.Fatalf("post-restart usage %+v", u)
	}
}

func TestOFCSCrashKeepsQuotaTrip(t *testing.T) {
	o := NewOFCS()
	o.SetPlan(Plan{QuotaBytes: 50})
	fired := 0
	o.OnQuotaExceeded = func(string, uint64) { fired++ }
	o.CollectAt(&CDR{ServedIMSI: "x", DataVolumeUplink: 80}, time.Second)
	if fired != 1 || !o.QuotaExceeded("x") {
		t.Fatalf("quota not tripped: fired=%d", fired)
	}
	o.Crash(time.Second, time.Second)
	if !o.QuotaExceeded("x") {
		t.Fatal("crash rolled back a quota trip")
	}
}

// TestSPGWRestartMeters: restart discards unflushed usage, resets
// baselines, and the next flush charges only post-restart traffic —
// no uint64 underflow in the CDR deltas.
func TestSPGWRestartMeters(t *testing.T) {
	s := sim.NewScheduler()
	mme := NewMME(s)
	g := NewSPGW(s, "gw", mme, nil)
	g.OFCS = NewOFCS()
	mme.Attach("ue1")

	push := func(size int) {
		g.ULNode().Recv(&netem.Packet{IMSI: "ue1", Size: size})
	}
	push(1000)
	s.RunUntil(time.Second)
	g.FlushCDRs(s.Now()) // flush: baseline 1000
	push(500)            // unflushed 500

	lost := g.RestartMeters()
	if lost != 500 {
		t.Fatalf("restart lost %d bytes, want 500", lost)
	}
	if g.Restarts() != 1 || g.RestartLostBytes() != 500 {
		t.Fatalf("restart counters: %d, %d", g.Restarts(), g.RestartLostBytes())
	}
	if got := g.MeteredUL("ue1"); got != 0 {
		t.Fatalf("post-restart meter %d, want 0", got)
	}

	push(200)
	g.FlushCDRs(s.Now())
	u, ok := g.OFCS.UsageFor(FormatIMSITrace("ue1"))
	if !ok {
		t.Fatal("no usage after restart flush")
	}
	// 1000 flushed pre-restart + 200 post-restart; the 500 unflushed
	// bytes are gone and must not reappear as a huge underflowed delta.
	if u.UL != 1200 {
		t.Fatalf("charged UL %d, want 1200", u.UL)
	}
}

// TestSPGWFlushClampsForeignMeterReset guards the defensive clamp: a
// meter swapped below the baseline must not underflow the delta.
func TestSPGWFlushClampsForeignMeterReset(t *testing.T) {
	s := sim.NewScheduler()
	mme := NewMME(s)
	g := NewSPGW(s, "gw", mme, nil)
	g.OFCS = NewOFCS()
	mme.Attach("ue1")
	g.ULNode().Recv(&netem.Packet{IMSI: "ue1", Size: 1000})
	g.FlushCDRs(s.Now())

	// Swap the meter out from under the gateway (not via RestartMeters,
	// which resets baselines itself).
	sess := g.session("ue1")
	sess.ulMeter = netem.NewMeter("rogue", s, nil)
	sess.ulMeter.Recv(&netem.Packet{IMSI: "ue1", Size: 10})

	g.FlushCDRs(s.Now())
	u, _ := g.OFCS.UsageFor(FormatIMSITrace("ue1"))
	if u.UL > 2000 {
		t.Fatalf("delta underflowed: charged %d", u.UL)
	}
}

// TestOFCSCrashRecoversFromLedger: the same crash as
// TestOFCSCrashRollsBackLossWindow, but with a durable ledger
// attached and synced on every append — Restart must replay the loss
// window back out of the log, so nothing stays lost except what was
// discarded while down.
func TestOFCSCrashRecoversFromLedger(t *testing.T) {
	fsys := ledger.NewMemFS()
	led, err := ledger.Open(ledger.Options{Dir: "led", FS: fsys, SyncEvery: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	o := NewOFCS()
	o.AttachLedger(led, 1)
	mk := func(seq uint32, ul, dl uint64) *CDR {
		return &CDR{ServedIMSI: "imsi-1", SequenceNumber: seq, DataVolumeUplink: ul, DataVolumeDownlink: dl}
	}
	o.CollectAt(mk(1, 100, 10), 1*time.Second)
	o.CollectAt(mk(2, 200, 20), 2*time.Second)
	o.CollectAt(mk(3, 300, 30), 3*time.Second)
	o.CollectAt(mk(4, 400, 40), 4*time.Second)

	lost := o.Crash(4*time.Second, 2*time.Second)
	if lost != 3 {
		t.Fatalf("lost %d records in the window, want 3", lost)
	}
	// While down, records are gone for good — the OFCS cannot write
	// its log while dead.
	o.CollectAt(mk(5, 500, 50), 5*time.Second)

	recovered := o.Restart()
	if recovered != 3 {
		t.Fatalf("recovered %d records, want the full 3-record loss window", recovered)
	}
	if o.RecoveredRecords() != 3 {
		t.Fatalf("RecoveredRecords %d, want 3", o.RecoveredRecords())
	}
	// LostRecords drops to what the log could not help with: the
	// record discarded while down.
	if o.LostRecords() != 1 {
		t.Fatalf("LostRecords %d after recovery, want 1 (discarded while down)", o.LostRecords())
	}
	if o.LostWindowRecords() != 0 {
		t.Fatalf("LostWindowRecords %d, want 0 — everything was fsynced", o.LostWindowRecords())
	}
	u, _ := o.UsageFor("imsi-1")
	if u.UL != 1000 || u.DL != 100 || u.Records != 4 {
		t.Fatalf("post-recovery usage %+v, want the full pre-crash aggregate", u)
	}
	if o.LostBytes() != 550 {
		t.Fatalf("LostBytes %d, want 550 (the while-down record only)", o.LostBytes())
	}
	// Collection resumes and keeps logging durably.
	o.CollectAt(mk(6, 600, 60), 6*time.Second)
	if o.Records() != 5 {
		t.Fatalf("post-restart records %d, want 5", o.Records())
	}
	if o.LedgerErrors() != 0 {
		t.Fatalf("ledger errors %d", o.LedgerErrors())
	}
}

// TestOFCSCrashLedgerTornTail: with a group-commit window larger than
// one, the unsynced tail dies with the page cache — recovery brings
// back the fsynced prefix and LostRecords counts exactly the torn
// tail.
func TestOFCSCrashLedgerTornTail(t *testing.T) {
	fsys := ledger.NewMemFS()
	// SyncEvery=4: the log fsyncs after records 4 and 8; records
	// 9-10 sit in the page cache.
	led, err := ledger.Open(ledger.Options{Dir: "led", FS: fsys, SyncEvery: 4}, nil)
	if err != nil {
		t.Fatal(err)
	}
	o := NewOFCS()
	o.AttachLedger(led, 1)
	for i := 1; i <= 10; i++ {
		o.CollectAt(&CDR{ServedIMSI: "imsi-1", SequenceNumber: uint32(i), DataVolumeUplink: uint64(i)},
			time.Duration(i)*time.Second)
	}
	// Crash at t=10s with a 9s window: records stamped >= 1s — all
	// ten — are rolled out of memory.
	lost := o.Crash(10*time.Second, 9*time.Second)
	if lost != 10 {
		t.Fatalf("lost %d records, want 10", lost)
	}
	recovered := o.Restart()
	if recovered != 8 {
		t.Fatalf("recovered %d records, want the 8 fsynced ones", recovered)
	}
	if o.LostRecords() != 2 {
		t.Fatalf("LostRecords %d, want 2 (the torn tail)", o.LostRecords())
	}
	if o.LostWindowRecords() != 2 {
		t.Fatalf("LostWindowRecords %d, want 2", o.LostWindowRecords())
	}
	u, _ := o.UsageFor("imsi-1")
	if u.Records != 8 || u.UL != 1+2+3+4+5+6+7+8 {
		t.Fatalf("post-recovery usage %+v", u)
	}
}

// TestOFCSDoubleCrashRecovery: two crash/restart rounds against one
// ledger must not double-ingest anything — the second recovery
// replays only the second loss window.
func TestOFCSDoubleCrashRecovery(t *testing.T) {
	fsys := ledger.NewMemFS()
	led, err := ledger.Open(ledger.Options{Dir: "led", FS: fsys, SyncEvery: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	o := NewOFCS()
	o.AttachLedger(led, 1)
	for i := 1; i <= 4; i++ {
		o.CollectAt(&CDR{ServedIMSI: "imsi-1", SequenceNumber: uint32(i), DataVolumeUplink: uint64(i)},
			time.Duration(i)*time.Second)
	}
	if lost := o.Crash(4*time.Second, 2*time.Second); lost != 3 {
		t.Fatalf("first crash lost %d, want 3", lost)
	}
	if rec := o.Restart(); rec != 3 {
		t.Fatalf("first recovery %d, want 3", rec)
	}
	for i := 5; i <= 6; i++ {
		o.CollectAt(&CDR{ServedIMSI: "imsi-1", SequenceNumber: uint32(i), DataVolumeUplink: uint64(i)},
			time.Duration(i)*time.Second)
	}
	if lost := o.Crash(6*time.Second, 1*time.Second); lost != 2 {
		t.Fatalf("second crash lost %d, want 2 (stamped >= 5s)", lost)
	}
	if rec := o.Restart(); rec != 2 {
		t.Fatalf("second recovery %d, want 2", rec)
	}
	u, _ := o.UsageFor("imsi-1")
	if u.Records != 6 || u.UL != 1+2+3+4+5+6 {
		t.Fatalf("post-recovery usage %+v, want all six records exactly once", u)
	}
	if o.LostRecords() != 0 || o.RecoveredRecords() != 5 {
		t.Fatalf("lost=%d recovered=%d, want 0/5", o.LostRecords(), o.RecoveredRecords())
	}
}
