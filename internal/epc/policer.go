package epc

import (
	"time"

	"tlc/internal/netem"
	"tlc/internal/sim"
)

// Policer enforces the post-quota speed limit of the "unlimited" data
// plans in §2.1: once the OFCS reports the quota exceeded, the
// subscriber's traffic is rate-limited (e.g. to 128Kbps) with a token
// bucket at the gateway. Policed drops happen *before* metering — the
// operator does not charge traffic its own policer discarded.
type Policer struct {
	Sched *sim.Scheduler
	// Next receives conforming packets.
	Next netem.Node

	// BurstBytes is the token bucket depth; default one second of
	// the configured rate.
	BurstBytes float64

	rateBps    float64
	tokens     float64
	lastRefill sim.Time
	active     bool

	Dropped      uint64
	DroppedBytes uint64
}

// NewPolicer returns an inactive policer (everything passes until
// Throttle is called).
func NewPolicer(sched *sim.Scheduler, next netem.Node) *Policer {
	return &Policer{Sched: sched, Next: next}
}

// Throttle activates the rate limit; wire it to
// OFCS.OnQuotaExceeded.
func (p *Policer) Throttle(bps float64) {
	if bps <= 0 {
		return
	}
	p.active = true
	p.rateBps = bps
	if p.BurstBytes <= 0 {
		p.BurstBytes = bps / 8 // one second of traffic
	}
	p.tokens = p.BurstBytes
	p.lastRefill = p.Sched.Now()
}

// Release deactivates the limit (e.g. a new billing cycle).
func (p *Policer) Release() { p.active = false }

// Active reports whether the subscriber is currently throttled.
func (p *Policer) Active() bool { return p.active }

// Recv implements netem.Node.
func (p *Policer) Recv(pkt *netem.Packet) {
	if !p.active || pkt.Background {
		if p.Next != nil {
			p.Next.Recv(pkt)
		}
		return
	}
	now := p.Sched.Now()
	elapsed := now - p.lastRefill
	if elapsed > 0 {
		p.tokens += p.rateBps / 8 * float64(elapsed) / float64(time.Second)
		if p.tokens > p.BurstBytes {
			p.tokens = p.BurstBytes
		}
		p.lastRefill = now
	}
	if float64(pkt.Size) > p.tokens {
		p.Dropped++
		p.DroppedBytes += uint64(pkt.Size)
		return
	}
	p.tokens -= float64(pkt.Size)
	if p.Next != nil {
		p.Next.Recv(pkt)
	}
}
