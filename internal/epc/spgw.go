package epc

import (
	"time"

	"tlc/internal/netem"
	"tlc/internal/sim"
)

// gwSession is the SPGW's per-subscriber forwarding and metering
// state.
type gwSession struct {
	imsi       string
	chargingID uint32
	seq        uint32

	ulMeter *netem.Meter
	dlMeter *netem.Meter

	firstUsage sim.Time
	lastUsage  sim.Time
	sawUsage   bool
	lastCDRUL  uint64
	lastCDRDL  uint64

	// droppedDetached counts downlink bytes discarded (uncharged)
	// while the device was detached — the core "prevents larger
	// gap" this way (§3.2).
	droppedDetachedBytes uint64
	droppedDetachedPkts  uint64
}

// SPGW is the serving/packet gateway: it forwards edge traffic,
// stamps QoS classes from the PCRF, meters usage per subscriber, and
// periodically emits CDRs to the OFCS.
type SPGW struct {
	Sched   *sim.Scheduler
	Address string
	MME     *MME
	PCRF    *PCRF

	// ULNext receives metered uplink packets (toward the edge
	// server through the core network).
	ULNext netem.Node
	// DLNext receives metered downlink packets (toward the base
	// station).
	DLNext netem.Node

	// CDRInterval is the record emission period; the paper's
	// testbed records usage every 1s (§3.2).
	CDRInterval time.Duration
	// OFCS receives emitted CDRs.
	OFCS *OFCS

	// Pool optionally recycles downlink packets discarded while the
	// subscriber is detached (the one drop site inside the gateway).
	Pool *netem.PacketPool

	// MeterHorizon, when positive, pre-sizes each session meter's
	// bin series for a cycle of that length so steady-state metering
	// does not grow slices; the testbed sets it to the cycle length.
	MeterHorizon time.Duration

	sessions map[string]*gwSession
	nextID   uint32
	started  bool

	// Meter-restart fault state: how many times RestartMeters ran and
	// how many metered-but-unflushed bytes each restart discarded.
	restarts      int
	restartLostBy uint64

	published bool

	// cdrArena allocates CDRs in fixed-capacity blocks. Emitting one
	// record per second per session makes *CDR the gateway's hottest
	// allocation; blocks amortise it ~64× while keeping the pointers
	// the OFCS retains stable (a full block is never reallocated,
	// a fresh one is started instead).
	cdrArena []CDR
}

// cdrArenaBlock is the arena block capacity.
const cdrArenaBlock = 64

// newCDR returns a pointer into the arena, valid for the lifetime of
// the gateway.
func (g *SPGW) newCDR(c CDR) *CDR {
	if len(g.cdrArena) == cap(g.cdrArena) {
		g.cdrArena = make([]CDR, 0, cdrArenaBlock)
	}
	g.cdrArena = append(g.cdrArena, c)
	return &g.cdrArena[len(g.cdrArena)-1]
}

// NewSPGW returns a gateway wired to the given control-plane
// functions.
func NewSPGW(sched *sim.Scheduler, addr string, mme *MME, pcrf *PCRF) *SPGW {
	return &SPGW{
		Sched:       sched,
		Address:     addr,
		MME:         mme,
		PCRF:        pcrf,
		CDRInterval: time.Second,
		sessions:    make(map[string]*gwSession),
	}
}

func (g *SPGW) session(imsi string) *gwSession {
	s, ok := g.sessions[imsi]
	if !ok {
		g.nextID++
		s = &gwSession{
			imsi:       imsi,
			chargingID: g.nextID - 1,
			ulMeter:    netem.NewMeter("spgw-ul-"+imsi, g.Sched, nil),
			dlMeter:    netem.NewMeter("spgw-dl-"+imsi, g.Sched, nil),
		}
		if g.MeterHorizon > 0 {
			s.ulMeter.Reserve(g.MeterHorizon)
			s.dlMeter.Reserve(g.MeterHorizon)
		}
		g.sessions[imsi] = s
	}
	return s
}

// Start begins periodic CDR emission. Optional: without it the
// gateway still meters, and FlushCDRs can be called at cycle end.
func (g *SPGW) Start() {
	if g.started || g.OFCS == nil {
		return
	}
	g.started = true
	g.Sched.Ticker(g.CDRInterval, g.CDRInterval, func(now sim.Time) { g.FlushCDRs(now) })
}

// FlushCDRs emits a CDR for every session with usage since the last
// record.
func (g *SPGW) FlushCDRs(now sim.Time) {
	if g.OFCS == nil {
		return
	}
	for _, s := range g.sessions {
		ul, dl := s.ulMeter.TotalBytes(), s.dlMeter.TotalBytes()
		// Defensive clamp: a meter that restarted below the last CDR
		// baseline must not underflow the uint64 delta. RestartMeters
		// already resets the baselines, so this only fires if a meter
		// is swapped out behind the gateway's back.
		if ul < s.lastCDRUL {
			s.lastCDRUL = ul
		}
		if dl < s.lastCDRDL {
			s.lastCDRDL = dl
		}
		if ul == s.lastCDRUL && dl == s.lastCDRDL {
			continue
		}
		cdr := g.newCDR(CDR{
			ServedIMSI:         FormatIMSITrace(s.imsi),
			GatewayAddress:     g.Address,
			ChargingID:         s.chargingID,
			SequenceNumber:     s.seq,
			TimeOfFirstUsage:   FormatCDRTime(s.firstUsage),
			TimeOfLastUsage:    FormatCDRTime(s.lastUsage),
			TimeUsage:          int64((s.lastUsage - s.firstUsage) / time.Second),
			DataVolumeUplink:   ul - s.lastCDRUL,
			DataVolumeDownlink: dl - s.lastCDRDL,
		})
		s.seq++
		s.lastCDRUL, s.lastCDRDL = ul, dl
		g.OFCS.CollectAt(cdr, now)
	}
}

// RestartMeters simulates the gateway's metering process restarting
// mid-cycle: every session gets fresh meters, and usage metered since
// the last CDR flush is lost (the OFCS's flushed records remain the
// durable copy — exactly the degradation the paper's charging
// architecture implies). Returns the unflushed bytes discarded.
func (g *SPGW) RestartMeters() (lostBytes uint64) {
	for _, s := range g.sessions {
		ul, dl := s.ulMeter.TotalBytes(), s.dlMeter.TotalBytes()
		if ul > s.lastCDRUL {
			lostBytes += ul - s.lastCDRUL
		}
		if dl > s.lastCDRDL {
			lostBytes += dl - s.lastCDRDL
		}
		s.ulMeter = netem.NewMeter("spgw-ul-"+s.imsi, g.Sched, nil)
		s.dlMeter = netem.NewMeter("spgw-dl-"+s.imsi, g.Sched, nil)
		if g.MeterHorizon > 0 {
			s.ulMeter.Reserve(g.MeterHorizon)
			s.dlMeter.Reserve(g.MeterHorizon)
		}
		// Fresh meters count from zero; reset the CDR baselines so the
		// next flush charges only post-restart usage.
		s.lastCDRUL, s.lastCDRDL = 0, 0
	}
	g.restarts++
	g.restartLostBy += lostBytes
	return lostBytes
}

// Restarts returns how many times the gateway's meters restarted.
func (g *SPGW) Restarts() int { return g.restarts }

// RestartLostBytes returns metered-but-unflushed bytes discarded by
// meter restarts.
func (g *SPGW) RestartLostBytes() uint64 { return g.restartLostBy }

func (g *SPGW) noteUsage(s *gwSession, now sim.Time) {
	if !s.sawUsage {
		s.firstUsage = now
		s.sawUsage = true
	}
	s.lastUsage = now
}

// ULNode returns the uplink ingress: packets arriving from the RAN
// are metered and forwarded into the core toward the edge server.
func (g *SPGW) ULNode() netem.Node {
	return netem.NodeFunc(func(p *netem.Packet) {
		if p.IMSI != "" && !p.Background {
			s := g.session(p.IMSI)
			s.ulMeter.Recv(p)
			g.noteUsage(s, g.Sched.Now())
		}
		if g.ULNext != nil {
			g.ULNext.Recv(p)
		}
	})
}

// DLNode returns the downlink ingress: packets arriving from the edge
// server get their QoS class stamped, are dropped uncharged if the
// device is detached, and otherwise are metered and forwarded toward
// the base station. Metering-before-the-air-interface is precisely
// what lets downlink loss create a charging gap.
func (g *SPGW) DLNode() netem.Node {
	return netem.NodeFunc(func(p *netem.Packet) {
		if g.PCRF != nil && !p.Background {
			p.QCI = g.PCRF.QCIFor(p.Flow)
		}
		if p.IMSI != "" && !p.Background {
			s := g.session(p.IMSI)
			if g.MME != nil && !g.MME.Attached(p.IMSI) {
				s.droppedDetachedPkts++
				s.droppedDetachedBytes += uint64(p.Size)
				g.Pool.Put(p)
				return
			}
			s.dlMeter.Recv(p)
			g.noteUsage(s, g.Sched.Now())
		}
		if g.DLNext != nil {
			g.DLNext.Recv(p)
		}
	})
}

// MeteredUL returns total metered uplink bytes for a subscriber.
func (g *SPGW) MeteredUL(imsi string) uint64 { return g.session(imsi).ulMeter.TotalBytes() }

// MeteredDL returns total metered downlink bytes for a subscriber.
func (g *SPGW) MeteredDL(imsi string) uint64 { return g.session(imsi).dlMeter.TotalBytes() }

// UsageInWindow returns the metered bytes for a subscriber inside an
// arbitrary window of true time. The operator's charging function
// queries this with its (possibly clock-skewed) view of the cycle.
func (g *SPGW) UsageInWindow(imsi string, start, end sim.Time) (ul, dl float64) {
	s := g.session(imsi)
	return s.ulMeter.BytesInWindow(start, end), s.dlMeter.BytesInWindow(start, end)
}

// DroppedDetached returns the downlink traffic discarded uncharged
// while the subscriber was detached.
func (g *SPGW) DroppedDetached(imsi string) (packets, bytes uint64) {
	s := g.session(imsi)
	return s.droppedDetachedPkts, s.droppedDetachedBytes
}
