package epc

import (
	"encoding/xml"
	"fmt"
	"time"

	"tlc/internal/sim"
)

// CDR is a charging data record as emitted by the gateway, mirroring
// the fields of the paper's Trace 1 (an OpenEPC record).
type CDR struct {
	XMLName            xml.Name `xml:"chargingRecord"`
	ServedIMSI         string   `xml:"servedIMSI"`
	GatewayAddress     string   `xml:"gatewayAddress"`
	ChargingID         uint32   `xml:"chargingID"`
	SequenceNumber     uint32   `xml:"SequenceNumber"`
	TimeOfFirstUsage   string   `xml:"timeOfFirstUsage"`
	TimeOfLastUsage    string   `xml:"timeOfLastUsage"`
	TimeUsage          int64    `xml:"timeUsage"` // seconds
	DataVolumeUplink   uint64   `xml:"datavolumeUplink"`
	DataVolumeDownlink uint64   `xml:"datavolumeDownlink"`
}

// cdrEpoch anchors simulated time to a wall-clock representation in
// the XML output; the value matches the paper's Trace 1 date.
var cdrEpoch = time.Date(2019, 1, 7, 7, 13, 46, 0, time.UTC)

// FormatCDRTime renders a simulated instant in the gateway's
// "2006-01-02 15:04:05" format.
func FormatCDRTime(t sim.Time) string {
	return cdrEpoch.Add(t).Format("2006-01-02 15:04:05")
}

// ParseCDRTime converts a formatted CDR time back into simulated time.
func ParseCDRTime(s string) (sim.Time, error) {
	t, err := time.Parse("2006-01-02 15:04:05", s)
	if err != nil {
		return 0, fmt.Errorf("epc: bad CDR time %q: %w", s, err)
	}
	return t.Sub(cdrEpoch), nil
}

// MarshalXMLText renders the CDR as indented XML in the Trace 1 style.
func (c *CDR) MarshalXMLText() ([]byte, error) {
	return xml.MarshalIndent(c, "", "  ")
}

// ParseCDRXML decodes one chargingRecord element.
func ParseCDRXML(data []byte) (*CDR, error) {
	var c CDR
	if err := xml.Unmarshal(data, &c); err != nil {
		return nil, fmt.Errorf("epc: decode CDR: %w", err)
	}
	return &c, nil
}

// Volume returns the record's total bytes in both directions.
func (c *CDR) Volume() uint64 { return c.DataVolumeUplink + c.DataVolumeDownlink }

// LegacyCDRWireSize is the paper's measured size of a plain LTE CDR
// on the wire (Figure 17's overhead table: 34 bytes). Our XML
// rendering is a diagnostic form; the binary gateway encoding the
// overhead analysis uses is this constant.
const LegacyCDRWireSize = 34
