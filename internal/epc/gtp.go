package epc

import (
	"encoding/binary"
	"errors"
	"fmt"

	"tlc/internal/netem"
)

// GTP-U (GPRS tunnelling protocol, user plane) carries subscriber IP
// packets between the base station and the gateway over the S1-U
// interface. The emulation encapsulates packets crossing the
// SPGW↔eNodeB segment so that (a) per-bearer tunnel endpoint IDs
// (TEIDs) demultiplex subscribers exactly as in a real core, and (b)
// the gateway's metering-point byte counts include the same tunnel
// overhead question real charging systems face (§2.1's CDRs count
// subscriber bytes, not tunnel bytes).

// GTPHeaderSize is the fixed GTPv1-U header length used here (no
// optional fields): version/flags, message type, length, TEID.
const GTPHeaderSize = 8

// GTP message types (subset).
const (
	// GTPMsgTPDU carries a user packet.
	GTPMsgTPDU = 0xFF
	// GTPMsgEchoRequest / Response implement path keepalive.
	GTPMsgEchoRequest  = 0x01
	GTPMsgEchoResponse = 0x02
)

// GTPHeader is a GTPv1-U header.
type GTPHeader struct {
	MessageType uint8
	Length      uint16 // payload bytes following the 8-byte header
	TEID        uint32
}

// Marshal encodes the header.
func (h GTPHeader) Marshal() []byte {
	b := make([]byte, GTPHeaderSize)
	b[0] = 0x30 // version 1, protocol type GTP, no options
	b[1] = h.MessageType
	binary.BigEndian.PutUint16(b[2:4], h.Length)
	binary.BigEndian.PutUint32(b[4:8], h.TEID)
	return b
}

// ParseGTPHeader decodes a GTPv1-U header.
func ParseGTPHeader(data []byte) (GTPHeader, error) {
	if len(data) < GTPHeaderSize {
		return GTPHeader{}, errors.New("epc: short GTP header")
	}
	if data[0]>>5 != 1 {
		return GTPHeader{}, fmt.Errorf("epc: unsupported GTP version %d", data[0]>>5)
	}
	if data[0]&0x10 == 0 {
		return GTPHeader{}, errors.New("epc: not GTP (protocol type bit clear)")
	}
	return GTPHeader{
		MessageType: data[1],
		Length:      binary.BigEndian.Uint16(data[2:4]),
		TEID:        binary.BigEndian.Uint32(data[4:8]),
	}, nil
}

// BearerTable allocates and resolves tunnel endpoint IDs per
// (IMSI, QCI) bearer, as the control plane would during session
// establishment.
type BearerTable struct {
	next   uint32
	byKey  map[string]uint32
	byTEID map[uint32]BearerInfo
}

// BearerInfo identifies the subscriber bearer behind a TEID.
type BearerInfo struct {
	IMSI string
	QCI  uint8
}

// NewBearerTable returns an empty table. TEID 0 is reserved.
func NewBearerTable() *BearerTable {
	return &BearerTable{next: 1, byKey: map[string]uint32{}, byTEID: map[uint32]BearerInfo{}}
}

func bearerKey(imsi string, qci uint8) string {
	return fmt.Sprintf("%s/%d", imsi, qci)
}

// Establish returns the TEID for a bearer, allocating on first use.
func (t *BearerTable) Establish(imsi string, qci uint8) uint32 {
	k := bearerKey(imsi, qci)
	if teid, ok := t.byKey[k]; ok {
		return teid
	}
	teid := t.next
	t.next++
	t.byKey[k] = teid
	t.byTEID[teid] = BearerInfo{IMSI: imsi, QCI: qci}
	return teid
}

// Resolve maps a TEID back to its bearer.
func (t *BearerTable) Resolve(teid uint32) (BearerInfo, bool) {
	info, ok := t.byTEID[teid]
	return info, ok
}

// Release tears down a bearer.
func (t *BearerTable) Release(imsi string, qci uint8) {
	k := bearerKey(imsi, qci)
	if teid, ok := t.byKey[k]; ok {
		delete(t.byKey, k)
		delete(t.byTEID, teid)
	}
}

// Len returns the number of established bearers.
func (t *BearerTable) Len() int { return len(t.byKey) }

// GTPEncap encapsulates packets into the tunnel toward Next: it adds
// the GTP header bytes to the wire size and stamps the bearer's TEID
// into the packet's tunnel field. The simulator does not carry
// payload bytes, so encapsulation manifests as size overhead plus the
// TEID bookkeeping — exactly the parts that matter for charging.
type GTPEncap struct {
	Bearers *BearerTable
	Next    netem.Node

	Encapsulated uint64
}

// Recv implements netem.Node.
func (g *GTPEncap) Recv(p *netem.Packet) {
	if !p.Background {
		p.TEID = g.Bearers.Establish(p.IMSI, p.QCI)
		p.Size += GTPHeaderSize
		p.Tunneled = true
		g.Encapsulated++
	}
	if g.Next != nil {
		g.Next.Recv(p)
	}
}

// GTPDecap removes the tunnel header and re-derives the subscriber
// identity from the TEID (dropping packets with unknown TEIDs, as a
// real endpoint must).
type GTPDecap struct {
	Bearers *BearerTable
	Next    netem.Node

	// Pool optionally recycles packets dropped for an unknown TEID.
	Pool *netem.PacketPool

	Decapsulated uint64
	UnknownTEID  uint64
}

// Recv implements netem.Node.
func (g *GTPDecap) Recv(p *netem.Packet) {
	if p.Tunneled {
		info, ok := g.Bearers.Resolve(p.TEID)
		if !ok {
			g.UnknownTEID++
			g.Pool.Put(p)
			return
		}
		p.IMSI = info.IMSI
		p.QCI = info.QCI
		p.Size -= GTPHeaderSize
		p.Tunneled = false
		p.TEID = 0
		g.Decapsulated++
	}
	if g.Next != nil {
		g.Next.Recv(p)
	}
}
