package epc

import (
	"testing"
	"time"

	"tlc/internal/netem"
	"tlc/internal/sim"
)

func TestPolicerPassesUntilThrottled(t *testing.T) {
	s := sim.NewScheduler()
	sink := &netem.Sink{}
	p := NewPolicer(s, sink)
	src := &netem.TrafficSource{Sched: s, IDs: &netem.IDGen{}, Dst: p,
		Flow: "f", RateBps: 10e6, PacketSize: 1400}
	src.Start(0)
	s.RunUntil(2 * time.Second)
	src.Stop()
	if p.Dropped != 0 || sink.Bytes == 0 {
		t.Fatalf("inactive policer dropped %d", p.Dropped)
	}
}

func TestPolicerEnforcesRate(t *testing.T) {
	s := sim.NewScheduler()
	sink := &netem.Sink{}
	p := NewPolicer(s, sink)
	src := &netem.TrafficSource{Sched: s, IDs: &netem.IDGen{}, Dst: p,
		Flow: "f", RateBps: 10e6, PacketSize: 1400}
	// Throttle to 128Kbps (the §2.1 plan) from the start.
	p.Throttle(128e3)
	src.Start(0)
	s.RunUntil(20 * time.Second)
	src.Stop()
	// Delivered rate ≈ 128Kbps (+ the initial burst allowance).
	gotBps := float64(sink.Bytes) * 8 / 20
	if gotBps > 200e3 || gotBps < 100e3 {
		t.Fatalf("throttled rate = %.0f bps, want ~128K", gotBps)
	}
	if p.Dropped == 0 {
		t.Fatal("no policer drops at 10Mbps offered vs 128Kbps limit")
	}
}

func TestPolicerRelease(t *testing.T) {
	s := sim.NewScheduler()
	sink := &netem.Sink{}
	p := NewPolicer(s, sink)
	p.Throttle(1)
	if !p.Active() {
		t.Fatal("not active after Throttle")
	}
	p.Release()
	if p.Active() {
		t.Fatal("active after Release")
	}
	p.Recv(&netem.Packet{Size: 1 << 20})
	if sink.Packets != 1 {
		t.Fatal("released policer dropped")
	}
}

func TestPolicerSkipsBackground(t *testing.T) {
	s := sim.NewScheduler()
	sink := &netem.Sink{}
	p := NewPolicer(s, sink)
	p.Throttle(1) // effectively zero rate
	p.Recv(&netem.Packet{Size: 1400, Background: true})
	if sink.Packets != 1 {
		t.Fatal("background traffic policed")
	}
}

func TestQuotaToThrottleEndToEnd(t *testing.T) {
	// OFCS quota → policer throttle, the §2.1 "unlimited" plan: the
	// subscriber's own traffic collapses to the limit after the
	// quota, and the policed traffic is never charged.
	s := sim.NewScheduler()
	mme := NewMME(s)
	mme.Attach("imsi1")
	gw := NewSPGW(s, "10.0.0.1", mme, NewPCRF())
	ofcs := NewOFCS()
	gw.OFCS = ofcs
	ofcs.SetPlan(Plan{CycleStart: 0, CycleEnd: time.Hour, C: 0.5,
		QuotaBytes: 2_000_000, ThrottleBps: 128e3})
	sink := &netem.Sink{}
	gw.ULNext = sink
	policer := NewPolicer(s, gw.ULNode())
	ofcs.OnQuotaExceeded = func(imsi string, usage uint64) {
		policer.Throttle(128e3)
	}
	gw.Start()
	src := &netem.TrafficSource{Sched: s, IDs: &netem.IDGen{}, Dst: policer,
		Flow: "f", IMSI: "imsi1", Dir: netem.Uplink, RateBps: 8e6, PacketSize: 1400}
	src.Start(0)
	s.RunUntil(30 * time.Second)
	src.Stop()
	if !policer.Active() {
		t.Fatal("quota never triggered the throttle")
	}
	// 8Mbps would meter 30MB without the quota; with the 2MB quota
	// and 128Kbps throttle the charge stays near the quota.
	metered := gw.MeteredUL("imsi1")
	if metered > 4_000_000 {
		t.Fatalf("metered %d bytes after quota, throttle ineffective", metered)
	}
	if policer.Dropped == 0 {
		t.Fatal("no policed drops")
	}
	// Policed traffic is uncharged: metered == delivered.
	if metered != sink.Bytes {
		t.Fatalf("metered %d != delivered %d; policer drops were charged", metered, sink.Bytes)
	}
}
