package epc

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
)

// The Rf interface carries accounting records from the charging
// trigger function (the SPGW) to the offline charging system. 3GPP
// uses Diameter ACR/ACA pairs; the emulation keeps the same
// request/answer discipline with a compact framing: each record is
// acknowledged by sequence number, and unacknowledged records are the
// sender's to retry. This lets a deployment run the OFCS as a
// separate process reachable over TCP, like OpenEPC's function VMs.

// Rf frame types.
const (
	rfTypeACR byte = 1 // accounting request (carries one CDR as XML)
	rfTypeACA byte = 2 // accounting answer
)

// rf result codes (mirroring Diameter's success/failure split).
const (
	RfResultSuccess     uint8 = 1
	RfResultMalformed   uint8 = 2
	RfResultUnsupported uint8 = 3
)

// maxRfFrame bounds one record on the wire.
const maxRfFrame = 1 << 20

func writeRfFrame(w io.Writer, typ byte, seq uint32, result uint8, payload []byte) error {
	if len(payload) > maxRfFrame {
		return fmt.Errorf("epc: rf frame too large (%d bytes)", len(payload))
	}
	frame := make([]byte, 10+len(payload))
	binary.BigEndian.PutUint32(frame[0:4], uint32(len(payload))+6)
	frame[4] = typ
	binary.BigEndian.PutUint32(frame[5:9], seq)
	frame[9] = result
	copy(frame[10:], payload)
	_, err := w.Write(frame)
	return err
}

func readRfFrame(r io.Reader) (typ byte, seq uint32, result uint8, payload []byte, err error) {
	var lenBuf [4]byte
	if _, err = io.ReadFull(r, lenBuf[:]); err != nil {
		return
	}
	n := binary.BigEndian.Uint32(lenBuf[:])
	if n < 6 || n > maxRfFrame {
		err = fmt.Errorf("epc: bad rf frame length %d", n)
		return
	}
	body := make([]byte, n)
	if _, err = io.ReadFull(r, body); err != nil {
		return
	}
	typ = body[0]
	seq = binary.BigEndian.Uint32(body[1:5])
	result = body[5]
	payload = body[6:]
	return
}

// RfClient is the gateway-side accounting sender.
type RfClient struct {
	conn io.ReadWriter
	seq  uint32

	// Sent and Acked count records for retry bookkeeping.
	Sent  uint32
	Acked uint32
}

// NewRfClient wraps a connection to the OFCS.
func NewRfClient(conn io.ReadWriter) *RfClient {
	return &RfClient{conn: conn}
}

// Send transfers one CDR and waits for its answer. A non-success
// answer surfaces as an error (the caller re-queues the record).
func (c *RfClient) Send(cdr *CDR) error {
	payload, err := cdr.MarshalXMLText()
	if err != nil {
		return err
	}
	c.seq++
	seq := c.seq
	if err := writeRfFrame(c.conn, rfTypeACR, seq, 0, payload); err != nil {
		return fmt.Errorf("epc: rf send: %w", err)
	}
	c.Sent++
	typ, gotSeq, result, _, err := readRfFrame(c.conn)
	if err != nil {
		return fmt.Errorf("epc: rf answer: %w", err)
	}
	if typ != rfTypeACA {
		return fmt.Errorf("epc: rf answer has type %d", typ)
	}
	if gotSeq != seq {
		return fmt.Errorf("epc: rf answer for seq %d, want %d", gotSeq, seq)
	}
	if result != RfResultSuccess {
		return fmt.Errorf("epc: rf record rejected with result %d", result)
	}
	c.Acked++
	return nil
}

// RfServer is the OFCS-side accounting receiver.
type RfServer struct {
	OFCS *OFCS

	// Received and Rejected count processed frames.
	Received uint64
	Rejected uint64
}

// Serve processes accounting requests until the connection ends. It
// returns nil on clean EOF.
func (s *RfServer) Serve(conn io.ReadWriter) error {
	for {
		typ, seq, _, payload, err := readRfFrame(conn)
		if err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) ||
				errors.Is(err, io.ErrClosedPipe) || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		if typ != rfTypeACR {
			if err := writeRfFrame(conn, rfTypeACA, seq, RfResultUnsupported, nil); err != nil {
				return err
			}
			s.Rejected++
			continue
		}
		cdr, err := ParseCDRXML(payload)
		if err != nil {
			if err := writeRfFrame(conn, rfTypeACA, seq, RfResultMalformed, nil); err != nil {
				return err
			}
			s.Rejected++
			continue
		}
		s.OFCS.Collect(cdr)
		s.Received++
		if err := writeRfFrame(conn, rfTypeACA, seq, RfResultSuccess, nil); err != nil {
			return err
		}
	}
}
