// Package epc emulates the LTE evolved packet core used by the
// paper's testbed (OpenEPC): the home subscriber server (HSS), the
// policy and charging rules function (PCRF), the mobility management
// entity (MME), the serving/packet gateway (SPGW) that forwards and
// meters traffic, and the offline charging system (OFCS) that turns
// charging data records (CDRs) into bills.
//
// Charging-wise the important property is the metering point: the
// SPGW counts a packet when it forwards it, so any loss downstream of
// the gateway (the air interface on the downlink, the congested
// virtualised core on the uplink) is charged-but-not-delivered. That
// is the loss-induced charging gap of §3.
package epc

import (
	"fmt"
	"time"

	"tlc/internal/sim"
)

// Subscriber is an HSS entry for one edge device.
type Subscriber struct {
	IMSI   string
	MSISDN string
	APN    string
	// DefaultQCI applies to flows without a dedicated bearer.
	DefaultQCI uint8
}

// HSS is the home subscriber server.
type HSS struct {
	subs map[string]*Subscriber
}

// NewHSS returns an empty subscriber database.
func NewHSS() *HSS { return &HSS{subs: make(map[string]*Subscriber)} }

// Register adds or replaces a subscriber record.
func (h *HSS) Register(s *Subscriber) {
	h.subs[s.IMSI] = s
}

// Lookup returns the subscriber record for an IMSI.
func (h *HSS) Lookup(imsi string) (*Subscriber, bool) {
	s, ok := h.subs[imsi]
	return s, ok
}

// Deregister removes a subscriber.
func (h *HSS) Deregister(imsi string) { delete(h.subs, imsi) }

// Len returns the number of registered subscribers.
func (h *HSS) Len() int { return len(h.subs) }

// PolicyRule maps an application flow to a QoS class. The gaming
// acceleration use case (§2.2) installs QCI=7 for its control flow
// while background traffic stays at QCI=9.
type PolicyRule struct {
	Flow string
	QCI  uint8
}

// PCRF is the policy and charging rules function.
type PCRF struct {
	// DefaultQCI is used when no rule matches; LTE's best-effort
	// default bearer is QCI 9.
	DefaultQCI uint8
	rules      []PolicyRule
}

// NewPCRF returns a PCRF with the LTE default bearer class.
func NewPCRF() *PCRF { return &PCRF{DefaultQCI: 9} }

// Install adds a dedicated-bearer rule.
func (p *PCRF) Install(rule PolicyRule) { p.rules = append(p.rules, rule) }

// QCIFor returns the QoS class for a flow.
func (p *PCRF) QCIFor(flow string) uint8 {
	for _, r := range p.rules {
		if r.Flow == flow {
			return r.QCI
		}
	}
	return p.DefaultQCI
}

// SessionState is the MME's view of a device session.
type SessionState int

const (
	// SessionAttached: traffic flows and is metered.
	SessionAttached SessionState = iota
	// SessionDetached: the MME released the session after a radio
	// link failure; the SPGW drops (and does not charge) traffic.
	SessionDetached
)

// Session is the per-device mobility/session record.
type Session struct {
	IMSI       string
	State      SessionState
	Attaches   int
	Detaches   int
	LastChange sim.Time
}

// MME is the mobility management entity. The RAN's radio-link-failure
// detection calls Detach/Attach; the SPGW consults the MME before
// forwarding.
type MME struct {
	sched    *sim.Scheduler
	sessions map[string]*Session
}

// NewMME returns an MME bound to the scheduler.
func NewMME(sched *sim.Scheduler) *MME {
	return &MME{sched: sched, sessions: make(map[string]*Session)}
}

// Attach creates or re-activates a session.
func (m *MME) Attach(imsi string) *Session {
	s, ok := m.sessions[imsi]
	if !ok {
		s = &Session{IMSI: imsi}
		m.sessions[imsi] = s
	}
	if !ok || s.State == SessionDetached {
		s.State = SessionAttached
		s.Attaches++
		s.LastChange = m.sched.Now()
	}
	return s
}

// Detach releases the session after a radio link failure.
func (m *MME) Detach(imsi string) {
	s, ok := m.sessions[imsi]
	if !ok || s.State == SessionDetached {
		return
	}
	s.State = SessionDetached
	s.Detaches++
	s.LastChange = m.sched.Now()
}

// Attached reports whether the device currently has a session.
func (m *MME) Attached(imsi string) bool {
	s, ok := m.sessions[imsi]
	return ok && s.State == SessionAttached
}

// Session returns the session record, if any.
func (m *MME) Session(imsi string) (*Session, bool) {
	s, ok := m.sessions[imsi]
	return s, ok
}

// FormatIMSITrace renders an IMSI in the nibble-swapped hex form seen
// in the paper's Trace 1 ("00 01 11 32 54 76 48 F5"). It exists so the
// CDR XML output looks like a real gateway's.
func FormatIMSITrace(imsi string) string {
	// Pad to an even number of digits with a trailing filler 'F',
	// then swap nibbles per byte, per TBCD encoding.
	digits := imsi
	if len(digits)%2 == 1 {
		digits += "F"
	}
	out := ""
	for i := 0; i+1 < len(digits); i += 2 {
		if i > 0 {
			out += " "
		}
		out += fmt.Sprintf("%c%c", digits[i+1], digits[i])
	}
	return out
}

// Plan captures the data-plan parameters agreed between the operator
// and the edge vendor at setup (§5.3.1): the charging cycle and the
// lost-data weight c, plus the usual commercial extras.
type Plan struct {
	// CycleStart and CycleEnd delimit the charging cycle T in true
	// simulated time.
	CycleStart sim.Time
	CycleEnd   sim.Time
	// C is the pre-defined charging weight for lost data, c in [0,1].
	C float64
	// QuotaBytes is the pre-paid volume; 0 means unlimited.
	QuotaBytes uint64
	// ThrottleBps is the speed limit applied once the quota is
	// exceeded (the "128Kbps after 15GB" plans of §2.1).
	ThrottleBps float64
}

// CycleDuration returns the cycle length.
func (p Plan) CycleDuration() time.Duration { return p.CycleEnd - p.CycleStart }

// Validate checks plan invariants.
func (p Plan) Validate() error {
	if p.CycleEnd <= p.CycleStart {
		return fmt.Errorf("epc: empty charging cycle [%v, %v)", p.CycleStart, p.CycleEnd)
	}
	if p.C < 0 || p.C > 1 {
		return fmt.Errorf("epc: charging weight c=%v outside [0,1]", p.C)
	}
	return nil
}
