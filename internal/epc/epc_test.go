package epc

import (
	"strings"
	"testing"
	"time"

	"tlc/internal/netem"
	"tlc/internal/sim"
)

func TestHSSRegisterLookup(t *testing.T) {
	h := NewHSS()
	h.Register(&Subscriber{IMSI: "001011132547648", DefaultQCI: 9})
	if h.Len() != 1 {
		t.Fatalf("Len = %d", h.Len())
	}
	s, ok := h.Lookup("001011132547648")
	if !ok || s.DefaultQCI != 9 {
		t.Fatalf("Lookup = %+v, %v", s, ok)
	}
	if _, ok := h.Lookup("nope"); ok {
		t.Fatal("lookup of unknown IMSI succeeded")
	}
	h.Deregister("001011132547648")
	if h.Len() != 0 {
		t.Fatal("Deregister failed")
	}
}

func TestPCRFPolicy(t *testing.T) {
	p := NewPCRF()
	if p.QCIFor("anything") != 9 {
		t.Fatal("default QCI not 9")
	}
	p.Install(PolicyRule{Flow: "game", QCI: 7})
	if p.QCIFor("game") != 7 {
		t.Fatal("dedicated bearer rule not applied")
	}
	if p.QCIFor("webcam") != 9 {
		t.Fatal("rule leaked onto other flows")
	}
}

func TestMMEAttachDetach(t *testing.T) {
	s := sim.NewScheduler()
	m := NewMME(s)
	sess := m.Attach("imsi1")
	if !m.Attached("imsi1") || sess.Attaches != 1 {
		t.Fatalf("attach: %+v", sess)
	}
	// Re-attach while attached is a no-op.
	m.Attach("imsi1")
	if sess.Attaches != 1 {
		t.Fatal("double attach counted twice")
	}
	m.Detach("imsi1")
	if m.Attached("imsi1") || sess.Detaches != 1 {
		t.Fatal("detach failed")
	}
	m.Detach("imsi1") // idempotent
	if sess.Detaches != 1 {
		t.Fatal("double detach counted twice")
	}
	m.Attach("imsi1")
	if !m.Attached("imsi1") || sess.Attaches != 2 {
		t.Fatal("re-attach failed")
	}
	m.Detach("unknown") // must not panic
	if _, ok := m.Session("unknown"); ok {
		t.Fatal("phantom session created by detach")
	}
}

func TestFormatIMSITrace(t *testing.T) {
	// The paper's Trace 1 shows IMSI 001011132547648F5 rendered as
	// nibble-swapped byte pairs. Verify the transform on a simple
	// case: "001" pads to "001F" -> "00 F1".
	if got := FormatIMSITrace("001"); got != "00 F1" {
		t.Fatalf("FormatIMSITrace(001) = %q", got)
	}
	if got := FormatIMSITrace("1234"); got != "21 43" {
		t.Fatalf("FormatIMSITrace(1234) = %q", got)
	}
}

func TestPlanValidate(t *testing.T) {
	good := Plan{CycleStart: 0, CycleEnd: time.Hour, C: 0.5}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid plan rejected: %v", err)
	}
	if good.CycleDuration() != time.Hour {
		t.Fatal("CycleDuration wrong")
	}
	bad := []Plan{
		{CycleStart: time.Hour, CycleEnd: time.Hour, C: 0.5},
		{CycleStart: 0, CycleEnd: time.Hour, C: -0.1},
		{CycleStart: 0, CycleEnd: time.Hour, C: 1.5},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Fatalf("bad plan %d accepted", i)
		}
	}
}

func TestCDRXMLRoundTrip(t *testing.T) {
	c := &CDR{
		ServedIMSI:         "00 01 11 32 54 76 48 F5",
		GatewayAddress:     "192.168.2.11",
		ChargingID:         0,
		SequenceNumber:     1001,
		TimeOfFirstUsage:   "2019-01-07 07:13:46",
		TimeOfLastUsage:    "2019-01-07 08:13:46",
		TimeUsage:          3600,
		DataVolumeUplink:   274841,
		DataVolumeDownlink: 33604032,
	}
	data, err := c.MarshalXMLText()
	if err != nil {
		t.Fatal(err)
	}
	text := string(data)
	for _, want := range []string{"<chargingRecord>", "<servedIMSI>00 01 11 32 54 76 48 F5</servedIMSI>",
		"<datavolumeDownlink>33604032</datavolumeDownlink>", "<SequenceNumber>1001</SequenceNumber>"} {
		if !strings.Contains(text, want) {
			t.Fatalf("XML missing %q:\n%s", want, text)
		}
	}
	back, err := ParseCDRXML(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.DataVolumeUplink != c.DataVolumeUplink || back.ServedIMSI != c.ServedIMSI ||
		back.TimeUsage != 3600 || back.Volume() != c.Volume() {
		t.Fatalf("round trip mismatch: %+v", back)
	}
}

func TestParseCDRXMLError(t *testing.T) {
	if _, err := ParseCDRXML([]byte("not xml")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestCDRTimeRoundTrip(t *testing.T) {
	for _, d := range []sim.Time{0, time.Second, time.Hour, 25 * time.Hour} {
		s := FormatCDRTime(d)
		back, err := ParseCDRTime(s)
		if err != nil {
			t.Fatal(err)
		}
		if back != d {
			t.Fatalf("round trip %v -> %q -> %v", d, s, back)
		}
	}
	if _, err := ParseCDRTime("bogus"); err == nil {
		t.Fatal("bogus time accepted")
	}
	if FormatCDRTime(0) != "2019-01-07 07:13:46" {
		t.Fatalf("epoch format = %q, want Trace 1's timestamp", FormatCDRTime(0))
	}
}

func buildGW(t *testing.T) (*sim.Scheduler, *SPGW, *MME, *netem.Sink, *netem.Sink) {
	t.Helper()
	s := sim.NewScheduler()
	mme := NewMME(s)
	pcrf := NewPCRF()
	pcrf.Install(PolicyRule{Flow: "game", QCI: 7})
	gw := NewSPGW(s, "192.168.2.11", mme, pcrf)
	ulSink, dlSink := &netem.Sink{}, &netem.Sink{}
	gw.ULNext, gw.DLNext = ulSink, dlSink
	return s, gw, mme, ulSink, dlSink
}

func TestSPGWMetersAndForwards(t *testing.T) {
	s, gw, mme, ulSink, dlSink := buildGW(t)
	mme.Attach("imsi1")
	ul, dl := gw.ULNode(), gw.DLNode()
	s.At(0, func() {
		ul.Recv(&netem.Packet{IMSI: "imsi1", Flow: "webcam", Size: 100, Dir: netem.Uplink})
		dl.Recv(&netem.Packet{IMSI: "imsi1", Flow: "webcam", Size: 200, Dir: netem.Downlink})
	})
	s.RunUntil(time.Second)
	if gw.MeteredUL("imsi1") != 100 || gw.MeteredDL("imsi1") != 200 {
		t.Fatalf("metered = %d/%d", gw.MeteredUL("imsi1"), gw.MeteredDL("imsi1"))
	}
	if ulSink.Packets != 1 || dlSink.Packets != 1 {
		t.Fatal("forwarding failed")
	}
}

func TestSPGWStampsQCI(t *testing.T) {
	s, gw, mme, _, _ := buildGW(t)
	mme.Attach("imsi1")
	var got uint8
	gw.DLNext = netem.NodeFunc(func(p *netem.Packet) { got = p.QCI })
	dl := gw.DLNode()
	s.At(0, func() {
		dl.Recv(&netem.Packet{IMSI: "imsi1", Flow: "game", Size: 10})
	})
	s.RunUntil(time.Millisecond)
	if got != 7 {
		t.Fatalf("QCI = %d, want 7 (PCRF dedicated bearer)", got)
	}
}

func TestSPGWDropsDetachedDownlinkUncharged(t *testing.T) {
	s, gw, mme, _, dlSink := buildGW(t)
	mme.Attach("imsi1")
	mme.Detach("imsi1")
	dl := gw.DLNode()
	s.At(0, func() {
		dl.Recv(&netem.Packet{IMSI: "imsi1", Flow: "webcam", Size: 500})
	})
	s.RunUntil(time.Millisecond)
	if gw.MeteredDL("imsi1") != 0 {
		t.Fatal("detached traffic was charged")
	}
	if dlSink.Packets != 0 {
		t.Fatal("detached traffic was forwarded")
	}
	pkts, bytes := gw.DroppedDetached("imsi1")
	if pkts != 1 || bytes != 500 {
		t.Fatalf("dropped-detached = %d/%d", pkts, bytes)
	}
}

func TestSPGWIgnoresBackgroundTraffic(t *testing.T) {
	s, gw, mme, ulSink, _ := buildGW(t)
	mme.Attach("imsi1")
	ul := gw.ULNode()
	s.At(0, func() {
		ul.Recv(&netem.Packet{IMSI: "imsi1", Flow: "bg", Size: 999, Background: true})
	})
	s.RunUntil(time.Millisecond)
	if gw.MeteredUL("imsi1") != 0 {
		t.Fatal("background traffic was metered")
	}
	if ulSink.Packets != 1 {
		t.Fatal("background traffic not forwarded")
	}
}

func TestSPGWUsageInWindow(t *testing.T) {
	s, gw, mme, _, _ := buildGW(t)
	mme.Attach("imsi1")
	ul := gw.ULNode()
	s.At(500*time.Millisecond, func() { ul.Recv(&netem.Packet{IMSI: "imsi1", Size: 100}) })
	s.At(1500*time.Millisecond, func() { ul.Recv(&netem.Packet{IMSI: "imsi1", Size: 300}) })
	s.RunUntil(2 * time.Second)
	gotUL, _ := gw.UsageInWindow("imsi1", 0, time.Second)
	if gotUL != 100 {
		t.Fatalf("window UL = %v, want 100", gotUL)
	}
	gotUL, _ = gw.UsageInWindow("imsi1", 0, 2*time.Second)
	if gotUL != 400 {
		t.Fatalf("full-window UL = %v, want 400", gotUL)
	}
}

func TestSPGWEmitsCDRsToOFCS(t *testing.T) {
	s, gw, mme, _, _ := buildGW(t)
	mme.Attach("imsi1")
	ofcs := NewOFCS()
	gw.OFCS = ofcs
	gw.CDRInterval = time.Second
	gw.Start()
	ul := gw.ULNode()
	// Two seconds of traffic, then silence: CDRs only when usage
	// changed.
	s.At(100*time.Millisecond, func() { ul.Recv(&netem.Packet{IMSI: "imsi1", Size: 100}) })
	s.At(1100*time.Millisecond, func() { ul.Recv(&netem.Packet{IMSI: "imsi1", Size: 200}) })
	s.RunUntil(10 * time.Second)
	if ofcs.Records() != 2 {
		t.Fatalf("CDRs = %d, want 2 (silent periods emit nothing)", ofcs.Records())
	}
	u, ok := ofcs.UsageFor(FormatIMSITrace("imsi1"))
	if !ok || u.UL != 300 || u.DL != 0 {
		t.Fatalf("OFCS usage = %+v", u)
	}
	cdrs := ofcs.CDRs()
	if cdrs[0].SequenceNumber != 0 || cdrs[1].SequenceNumber != 1 {
		t.Fatal("CDR sequence numbers not monotonic")
	}
	if cdrs[0].GatewayAddress != "192.168.2.11" {
		t.Fatalf("gateway address = %q", cdrs[0].GatewayAddress)
	}
}

func TestOFCSQuotaTriggersOnce(t *testing.T) {
	ofcs := NewOFCS()
	ofcs.SetPlan(Plan{CycleStart: 0, CycleEnd: time.Hour, C: 0.5, QuotaBytes: 1000, ThrottleBps: 128e3})
	var fired []uint64
	ofcs.OnQuotaExceeded = func(imsi string, usage uint64) { fired = append(fired, usage) }
	for i := 0; i < 5; i++ {
		ofcs.Collect(&CDR{ServedIMSI: "A", DataVolumeUplink: 400})
	}
	if len(fired) != 1 {
		t.Fatalf("quota callback fired %d times, want 1", len(fired))
	}
	if fired[0] != 1200 {
		t.Fatalf("quota fired at %d bytes, want 1200", fired[0])
	}
	if !ofcs.QuotaExceeded("A") {
		t.Fatal("QuotaExceeded not recorded")
	}
}

func TestOFCSAggregation(t *testing.T) {
	ofcs := NewOFCS()
	ofcs.Collect(&CDR{ServedIMSI: "A", DataVolumeUplink: 10, DataVolumeDownlink: 20})
	ofcs.Collect(&CDR{ServedIMSI: "B", DataVolumeDownlink: 5})
	ofcs.Collect(&CDR{ServedIMSI: "A", DataVolumeUplink: 1})
	if ofcs.TotalVolume() != 36 {
		t.Fatalf("TotalVolume = %d", ofcs.TotalVolume())
	}
	subs := ofcs.Subscribers()
	if len(subs) != 2 || subs[0] != "A" || subs[1] != "B" {
		t.Fatalf("Subscribers = %v", subs)
	}
	a, _ := ofcs.UsageFor("A")
	if a.Records != 2 || a.Total() != 31 {
		t.Fatalf("usage A = %+v", a)
	}
}
