package epc

import (
	"testing"
	"testing/quick"

	"tlc/internal/netem"
)

func TestGTPHeaderRoundTrip(t *testing.T) {
	h := GTPHeader{MessageType: GTPMsgTPDU, Length: 1400, TEID: 0xDEADBEEF}
	data := h.Marshal()
	if len(data) != GTPHeaderSize {
		t.Fatalf("header length = %d", len(data))
	}
	back, err := ParseGTPHeader(data)
	if err != nil {
		t.Fatal(err)
	}
	if back != h {
		t.Fatalf("round trip: %+v vs %+v", back, h)
	}
}

func TestGTPHeaderRoundTripProperty(t *testing.T) {
	f := func(mt uint8, length uint16, teid uint32) bool {
		h := GTPHeader{MessageType: mt, Length: length, TEID: teid}
		back, err := ParseGTPHeader(h.Marshal())
		return err == nil && back == h
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestParseGTPHeaderErrors(t *testing.T) {
	if _, err := ParseGTPHeader([]byte{0x30, 0xFF}); err == nil {
		t.Fatal("short header accepted")
	}
	bad := GTPHeader{MessageType: GTPMsgTPDU}.Marshal()
	bad[0] = 0x50 // version 2
	if _, err := ParseGTPHeader(bad); err == nil {
		t.Fatal("GTP version 2 accepted")
	}
	bad[0] = 0x20 // version 1 but protocol-type bit clear (GTP')
	if _, err := ParseGTPHeader(bad); err == nil {
		t.Fatal("GTP' accepted")
	}
}

func TestBearerTable(t *testing.T) {
	bt := NewBearerTable()
	t1 := bt.Establish("imsiA", 9)
	t2 := bt.Establish("imsiA", 7) // dedicated bearer: separate TEID
	t3 := bt.Establish("imsiB", 9)
	if t1 == t2 || t1 == t3 || t2 == t3 {
		t.Fatal("TEIDs not unique per bearer")
	}
	if t1 == 0 || t2 == 0 || t3 == 0 {
		t.Fatal("TEID 0 is reserved")
	}
	// Idempotent establishment.
	if bt.Establish("imsiA", 9) != t1 {
		t.Fatal("re-establish allocated a new TEID")
	}
	info, ok := bt.Resolve(t2)
	if !ok || info.IMSI != "imsiA" || info.QCI != 7 {
		t.Fatalf("Resolve = %+v, %v", info, ok)
	}
	if bt.Len() != 3 {
		t.Fatalf("Len = %d", bt.Len())
	}
	bt.Release("imsiA", 7)
	if _, ok := bt.Resolve(t2); ok {
		t.Fatal("released TEID still resolves")
	}
	if bt.Len() != 2 {
		t.Fatalf("Len after release = %d", bt.Len())
	}
	bt.Release("nobody", 9) // no-op
}

func TestGTPEncapDecapRoundTrip(t *testing.T) {
	bt := NewBearerTable()
	var got *netem.Packet
	decap := &GTPDecap{Bearers: bt, Next: netem.NodeFunc(func(p *netem.Packet) { got = p })}
	encap := &GTPEncap{Bearers: bt, Next: decap}

	encap.Recv(&netem.Packet{IMSI: "imsi1", QCI: 7, Size: 1400})
	if got == nil {
		t.Fatal("packet lost in tunnel")
	}
	if got.Size != 1400 || got.Tunneled || got.TEID != 0 {
		t.Fatalf("decapsulated packet: %+v", got)
	}
	if got.IMSI != "imsi1" || got.QCI != 7 {
		t.Fatal("bearer identity lost")
	}
	if encap.Encapsulated != 1 || decap.Decapsulated != 1 {
		t.Fatalf("counters: %d/%d", encap.Encapsulated, decap.Decapsulated)
	}
}

func TestGTPEncapAddsWireOverhead(t *testing.T) {
	bt := NewBearerTable()
	var onWire int
	encap := &GTPEncap{Bearers: bt, Next: netem.NodeFunc(func(p *netem.Packet) { onWire = p.Size })}
	encap.Recv(&netem.Packet{IMSI: "i", QCI: 9, Size: 1000})
	if onWire != 1000+GTPHeaderSize {
		t.Fatalf("wire size = %d, want %d", onWire, 1000+GTPHeaderSize)
	}
}

func TestGTPDecapDropsUnknownTEID(t *testing.T) {
	bt := NewBearerTable()
	sink := &netem.Sink{}
	decap := &GTPDecap{Bearers: bt, Next: sink}
	decap.Recv(&netem.Packet{Tunneled: true, TEID: 999, Size: 100})
	if sink.Packets != 0 || decap.UnknownTEID != 1 {
		t.Fatalf("unknown TEID forwarded: sink=%d unknown=%d", sink.Packets, decap.UnknownTEID)
	}
}

func TestGTPSkipsBackgroundAndUntunneled(t *testing.T) {
	bt := NewBearerTable()
	sink := &netem.Sink{}
	encap := &GTPEncap{Bearers: bt, Next: sink}
	encap.Recv(&netem.Packet{Background: true, Size: 500})
	if bt.Len() != 0 {
		t.Fatal("background traffic established a bearer")
	}
	decap := &GTPDecap{Bearers: bt, Next: sink}
	decap.Recv(&netem.Packet{Size: 500}) // not tunneled: pass through
	if sink.Packets != 2 {
		t.Fatalf("forwarded %d, want 2", sink.Packets)
	}
}
