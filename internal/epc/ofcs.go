package epc

import (
	"sort"
	"time"

	"tlc/internal/ledger"
	"tlc/internal/sim"
)

// OFCS is the offline charging system (CDF in 4G, CHF in 5G): it
// collects CDRs from the gateway, aggregates them into per-subscriber
// usage, and applies policy-driven actions such as throttling once a
// plan quota is exceeded. TLC's loss-selfishness cancellation is
// realised "atop existing charging functions" (§6), so the operator
// side of the negotiation reads its charging record from here.
type OFCS struct {
	// OnQuotaExceeded fires once per subscriber when cumulative
	// usage passes the plan quota; the testbed uses it to throttle.
	OnQuotaExceeded func(imsi string, usage uint64)

	plan     Plan
	hasPlan  bool
	cdrs     []*CDR
	usage    map[string]*Usage
	exceeded map[string]bool

	// collectedAt stamps when each cdrs[i] arrived, so a crash can
	// roll back exactly the records inside its loss window.
	collectedAt []sim.Time

	// Crash/restart state (component fault injection). While down the
	// OFCS silently discards incoming CDRs — the gateway keeps
	// emitting, the records are simply lost, and the charging policy
	// degrades to whatever survived rather than panicking.
	down              bool
	crashes           int
	lostWhileDown     int
	lostWindowRecords int
	lostBytes         uint64

	// Durable-ledger state (optional). With a ledger attached every
	// collected CDR is also appended to the log, a Crash drops the
	// log's unsynced tail along with the in-memory loss window, and
	// Restart replays the durable records back into the aggregate —
	// LostRecords then counts only the truly-torn tail plus records
	// discarded while down.
	led        *ledger.Ledger
	cycle      uint64
	crashedAt  sim.Time
	lossCutoff sim.Time
	recovered  int
	appendErrs int

	published bool
}

// Usage is per-subscriber aggregated usage.
type Usage struct {
	IMSI    string
	UL      uint64
	DL      uint64
	Records int
}

// Total returns UL+DL bytes.
func (u *Usage) Total() uint64 { return u.UL + u.DL }

// NewOFCS returns an empty charging system. The CDR slice is
// pre-sized for a typical cycle (one record per second per session)
// so steady-state collection appends without reallocating.
func NewOFCS() *OFCS {
	return &OFCS{
		cdrs:     make([]*CDR, 0, 128),
		usage:    make(map[string]*Usage),
		exceeded: make(map[string]bool),
	}
}

// SetPlan installs the data plan whose quota the OFCS enforces.
func (o *OFCS) SetPlan(p Plan) {
	o.plan = p
	o.hasPlan = true
}

// Collect ingests one CDR with no arrival stamp (time zero); callers
// with a clock should prefer CollectAt so crash loss windows work.
func (o *OFCS) Collect(c *CDR) { o.CollectAt(c, 0) }

// AttachLedger makes the OFCS durable: every collected CDR is also
// appended to led (under cycle as the charging-cycle id), and
// Crash/Restart recover the loss window from the log instead of only
// counting it. Attach before the first CollectAt; the ledger's own
// group-commit options decide the durability window.
func (o *OFCS) AttachLedger(led *ledger.Ledger, cycle uint64) {
	o.led = led
	o.cycle = cycle
}

// Ledger returns the attached ledger, or nil.
func (o *OFCS) Ledger() *ledger.Ledger { return o.led }

// CollectAt ingests one CDR stamped with its arrival time. While the
// OFCS is down (crashed, not yet restarted) the record is counted
// lost and dropped.
func (o *OFCS) CollectAt(c *CDR, now sim.Time) {
	if o.down {
		o.lostWhileDown++
		o.lostBytes += c.DataVolumeUplink + c.DataVolumeDownlink
		return
	}
	o.ingest(c, now)
	if o.led != nil {
		rec := ledger.Record{
			Kind:       ledger.KindCDR,
			Cycle:      o.cycle,
			At:         int64(now),
			Subscriber: c.ServedIMSI,
			Seq:        c.SequenceNumber,
			ChargingID: c.ChargingID,
			TimeUsage:  c.TimeUsage,
			UL:         c.DataVolumeUplink,
			DL:         c.DataVolumeDownlink,
		}
		if err := o.led.Append(&rec); err != nil {
			// The simulation must not die on a storage fault; the
			// record stays in memory and the failure is counted.
			o.appendErrs++
		}
	}
}

// ingest applies one CDR to the in-memory aggregate (no ledger
// append): the shared tail of CollectAt and crash recovery.
func (o *OFCS) ingest(c *CDR, now sim.Time) {
	o.cdrs = append(o.cdrs, c)
	o.collectedAt = append(o.collectedAt, now)
	u, ok := o.usage[c.ServedIMSI]
	if !ok {
		u = &Usage{IMSI: c.ServedIMSI}
		o.usage[c.ServedIMSI] = u
	}
	u.UL += c.DataVolumeUplink
	u.DL += c.DataVolumeDownlink
	u.Records++
	if o.hasPlan && o.plan.QuotaBytes > 0 && !o.exceeded[c.ServedIMSI] && u.Total() > o.plan.QuotaBytes {
		o.exceeded[c.ServedIMSI] = true
		if o.OnQuotaExceeded != nil {
			o.OnQuotaExceeded(c.ServedIMSI, u.Total())
		}
	}
}

// Records returns the number of CDRs collected (the dataset size
// reported in Figure 11c).
func (o *OFCS) Records() int { return len(o.cdrs) }

// CDRs returns the collected records.
func (o *OFCS) CDRs() []*CDR { return o.cdrs }

// UsageFor returns the aggregated usage for a subscriber (by its
// Trace-1 formatted IMSI, as carried in the CDRs).
func (o *OFCS) UsageFor(imsi string) (*Usage, bool) {
	u, ok := o.usage[imsi]
	return u, ok
}

// TotalVolume returns all charged bytes across subscribers.
func (o *OFCS) TotalVolume() uint64 {
	var total uint64
	for _, u := range o.usage {
		total += u.Total()
	}
	return total
}

// Subscribers returns the IMSIs seen, sorted for deterministic
// iteration.
func (o *OFCS) Subscribers() []string {
	out := make([]string, 0, len(o.usage))
	for imsi := range o.usage {
		out = append(out, imsi)
	}
	sort.Strings(out)
	return out
}

// QuotaExceeded reports whether a subscriber passed the plan quota.
func (o *OFCS) QuotaExceeded(imsi string) bool { return o.exceeded[imsi] }

// Crash simulates the charging collector dying at time now: records
// collected within the trailing lossWindow (not yet durably flushed)
// are rolled out of the aggregate, and the OFCS stops accepting CDRs
// until Restart. Returns how many records were lost from the window.
//
// Quota trips are deliberately NOT rolled back: a throttle action
// already taken in the real system is not undone by losing the
// records that justified it.
func (o *OFCS) Crash(now sim.Time, lossWindow time.Duration) int {
	o.down = true
	o.crashes++
	cutoff := now - lossWindow
	o.crashedAt = now
	o.lossCutoff = cutoff
	if o.led != nil {
		// The process died: whatever the ledger had not fsynced is
		// gone with the page cache.
		o.led.Crash()
	}
	lost := 0
	for len(o.cdrs) > 0 {
		i := len(o.cdrs) - 1
		if o.collectedAt[i] < cutoff {
			break
		}
		c := o.cdrs[i]
		o.cdrs = o.cdrs[:i]
		o.collectedAt = o.collectedAt[:i]
		if u, ok := o.usage[c.ServedIMSI]; ok {
			u.UL -= c.DataVolumeUplink
			u.DL -= c.DataVolumeDownlink
			u.Records--
		}
		o.lostBytes += c.DataVolumeUplink + c.DataVolumeDownlink
		lost++
	}
	o.lostWindowRecords += lost
	return lost
}

// Restart brings a crashed OFCS back: it resumes collecting, with
// whatever records survived the crash as its state. With a ledger
// attached it first replays the log and re-ingests every durable CDR
// from the loss window — the only records still missing afterwards
// are the truly-torn tail (appended but never fsynced before the
// crash) and anything discarded while down. Returns how many records
// the replay brought back.
func (o *OFCS) Restart() int {
	o.down = false
	if o.led == nil {
		return 0
	}
	cutoff, cycle := int64(o.lossCutoff), o.cycle
	recovered := 0
	err := o.led.Reopen(func(rec *ledger.Record) error {
		if rec.Kind != ledger.KindCDR || rec.Cycle != cycle || rec.At < cutoff {
			// Before the cutoff the in-memory aggregate kept the
			// record through the crash; re-ingesting would double
			// count.
			return nil
		}
		c := &CDR{
			ServedIMSI:         rec.Subscriber,
			ChargingID:         rec.ChargingID,
			SequenceNumber:     rec.Seq,
			TimeUsage:          rec.TimeUsage,
			DataVolumeUplink:   rec.UL,
			DataVolumeDownlink: rec.DL,
		}
		o.ingest(c, sim.Time(rec.At))
		recovered++
		return nil
	})
	if err != nil {
		// The log is unusable; the crash degrades to the ledger-less
		// accounting (the loss window stays lost).
		o.appendErrs++
		return 0
	}
	o.recovered += recovered
	o.lostWindowRecords -= recovered
	for _, c := range o.cdrs[len(o.cdrs)-recovered:] {
		o.lostBytes -= c.DataVolumeUplink + c.DataVolumeDownlink
	}
	return recovered
}

// RecoveredRecords returns how many loss-window CDRs ledger replay
// brought back across all restarts.
func (o *OFCS) RecoveredRecords() int { return o.recovered }

// LostWindowRecords returns the loss-window records still missing
// after any ledger recovery: the truly-torn tail.
func (o *OFCS) LostWindowRecords() int { return o.lostWindowRecords }

// LedgerErrors returns ledger append/replay failures absorbed by the
// OFCS (counted, never fatal to the simulation).
func (o *OFCS) LedgerErrors() int { return o.appendErrs }

// Down reports whether the OFCS is currently crashed.
func (o *OFCS) Down() bool { return o.down }

// Crashes returns how many times the OFCS crashed.
func (o *OFCS) Crashes() int { return o.crashes }

// LostRecords returns CDRs lost to crashes: rolled out of the loss
// window plus discarded while down.
func (o *OFCS) LostRecords() int { return o.lostWindowRecords + o.lostWhileDown }

// LostBytes returns the charged volume those lost records carried.
func (o *OFCS) LostBytes() uint64 { return o.lostBytes }
