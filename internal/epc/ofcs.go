package epc

import "sort"

// OFCS is the offline charging system (CDF in 4G, CHF in 5G): it
// collects CDRs from the gateway, aggregates them into per-subscriber
// usage, and applies policy-driven actions such as throttling once a
// plan quota is exceeded. TLC's loss-selfishness cancellation is
// realised "atop existing charging functions" (§6), so the operator
// side of the negotiation reads its charging record from here.
type OFCS struct {
	// OnQuotaExceeded fires once per subscriber when cumulative
	// usage passes the plan quota; the testbed uses it to throttle.
	OnQuotaExceeded func(imsi string, usage uint64)

	plan     Plan
	hasPlan  bool
	cdrs     []*CDR
	usage    map[string]*Usage
	exceeded map[string]bool
}

// Usage is per-subscriber aggregated usage.
type Usage struct {
	IMSI    string
	UL      uint64
	DL      uint64
	Records int
}

// Total returns UL+DL bytes.
func (u *Usage) Total() uint64 { return u.UL + u.DL }

// NewOFCS returns an empty charging system. The CDR slice is
// pre-sized for a typical cycle (one record per second per session)
// so steady-state collection appends without reallocating.
func NewOFCS() *OFCS {
	return &OFCS{
		cdrs:     make([]*CDR, 0, 128),
		usage:    make(map[string]*Usage),
		exceeded: make(map[string]bool),
	}
}

// SetPlan installs the data plan whose quota the OFCS enforces.
func (o *OFCS) SetPlan(p Plan) {
	o.plan = p
	o.hasPlan = true
}

// Collect ingests one CDR.
func (o *OFCS) Collect(c *CDR) {
	o.cdrs = append(o.cdrs, c)
	u, ok := o.usage[c.ServedIMSI]
	if !ok {
		u = &Usage{IMSI: c.ServedIMSI}
		o.usage[c.ServedIMSI] = u
	}
	u.UL += c.DataVolumeUplink
	u.DL += c.DataVolumeDownlink
	u.Records++
	if o.hasPlan && o.plan.QuotaBytes > 0 && !o.exceeded[c.ServedIMSI] && u.Total() > o.plan.QuotaBytes {
		o.exceeded[c.ServedIMSI] = true
		if o.OnQuotaExceeded != nil {
			o.OnQuotaExceeded(c.ServedIMSI, u.Total())
		}
	}
}

// Records returns the number of CDRs collected (the dataset size
// reported in Figure 11c).
func (o *OFCS) Records() int { return len(o.cdrs) }

// CDRs returns the collected records.
func (o *OFCS) CDRs() []*CDR { return o.cdrs }

// UsageFor returns the aggregated usage for a subscriber (by its
// Trace-1 formatted IMSI, as carried in the CDRs).
func (o *OFCS) UsageFor(imsi string) (*Usage, bool) {
	u, ok := o.usage[imsi]
	return u, ok
}

// TotalVolume returns all charged bytes across subscribers.
func (o *OFCS) TotalVolume() uint64 {
	var total uint64
	for _, u := range o.usage {
		total += u.Total()
	}
	return total
}

// Subscribers returns the IMSIs seen, sorted for deterministic
// iteration.
func (o *OFCS) Subscribers() []string {
	out := make([]string, 0, len(o.usage))
	for imsi := range o.usage {
		out = append(out, imsi)
	}
	sort.Strings(out)
	return out
}

// QuotaExceeded reports whether a subscriber passed the plan quota.
func (o *OFCS) QuotaExceeded(imsi string) bool { return o.exceeded[imsi] }
