package epc

import (
	"sort"
	"time"

	"tlc/internal/sim"
)

// OFCS is the offline charging system (CDF in 4G, CHF in 5G): it
// collects CDRs from the gateway, aggregates them into per-subscriber
// usage, and applies policy-driven actions such as throttling once a
// plan quota is exceeded. TLC's loss-selfishness cancellation is
// realised "atop existing charging functions" (§6), so the operator
// side of the negotiation reads its charging record from here.
type OFCS struct {
	// OnQuotaExceeded fires once per subscriber when cumulative
	// usage passes the plan quota; the testbed uses it to throttle.
	OnQuotaExceeded func(imsi string, usage uint64)

	plan     Plan
	hasPlan  bool
	cdrs     []*CDR
	usage    map[string]*Usage
	exceeded map[string]bool

	// collectedAt stamps when each cdrs[i] arrived, so a crash can
	// roll back exactly the records inside its loss window.
	collectedAt []sim.Time

	// Crash/restart state (component fault injection). While down the
	// OFCS silently discards incoming CDRs — the gateway keeps
	// emitting, the records are simply lost, and the charging policy
	// degrades to whatever survived rather than panicking.
	down              bool
	crashes           int
	lostWhileDown     int
	lostWindowRecords int
	lostBytes         uint64

	published bool
}

// Usage is per-subscriber aggregated usage.
type Usage struct {
	IMSI    string
	UL      uint64
	DL      uint64
	Records int
}

// Total returns UL+DL bytes.
func (u *Usage) Total() uint64 { return u.UL + u.DL }

// NewOFCS returns an empty charging system. The CDR slice is
// pre-sized for a typical cycle (one record per second per session)
// so steady-state collection appends without reallocating.
func NewOFCS() *OFCS {
	return &OFCS{
		cdrs:     make([]*CDR, 0, 128),
		usage:    make(map[string]*Usage),
		exceeded: make(map[string]bool),
	}
}

// SetPlan installs the data plan whose quota the OFCS enforces.
func (o *OFCS) SetPlan(p Plan) {
	o.plan = p
	o.hasPlan = true
}

// Collect ingests one CDR with no arrival stamp (time zero); callers
// with a clock should prefer CollectAt so crash loss windows work.
func (o *OFCS) Collect(c *CDR) { o.CollectAt(c, 0) }

// CollectAt ingests one CDR stamped with its arrival time. While the
// OFCS is down (crashed, not yet restarted) the record is counted
// lost and dropped.
func (o *OFCS) CollectAt(c *CDR, now sim.Time) {
	if o.down {
		o.lostWhileDown++
		o.lostBytes += c.DataVolumeUplink + c.DataVolumeDownlink
		return
	}
	o.cdrs = append(o.cdrs, c)
	o.collectedAt = append(o.collectedAt, now)
	u, ok := o.usage[c.ServedIMSI]
	if !ok {
		u = &Usage{IMSI: c.ServedIMSI}
		o.usage[c.ServedIMSI] = u
	}
	u.UL += c.DataVolumeUplink
	u.DL += c.DataVolumeDownlink
	u.Records++
	if o.hasPlan && o.plan.QuotaBytes > 0 && !o.exceeded[c.ServedIMSI] && u.Total() > o.plan.QuotaBytes {
		o.exceeded[c.ServedIMSI] = true
		if o.OnQuotaExceeded != nil {
			o.OnQuotaExceeded(c.ServedIMSI, u.Total())
		}
	}
}

// Records returns the number of CDRs collected (the dataset size
// reported in Figure 11c).
func (o *OFCS) Records() int { return len(o.cdrs) }

// CDRs returns the collected records.
func (o *OFCS) CDRs() []*CDR { return o.cdrs }

// UsageFor returns the aggregated usage for a subscriber (by its
// Trace-1 formatted IMSI, as carried in the CDRs).
func (o *OFCS) UsageFor(imsi string) (*Usage, bool) {
	u, ok := o.usage[imsi]
	return u, ok
}

// TotalVolume returns all charged bytes across subscribers.
func (o *OFCS) TotalVolume() uint64 {
	var total uint64
	for _, u := range o.usage {
		total += u.Total()
	}
	return total
}

// Subscribers returns the IMSIs seen, sorted for deterministic
// iteration.
func (o *OFCS) Subscribers() []string {
	out := make([]string, 0, len(o.usage))
	for imsi := range o.usage {
		out = append(out, imsi)
	}
	sort.Strings(out)
	return out
}

// QuotaExceeded reports whether a subscriber passed the plan quota.
func (o *OFCS) QuotaExceeded(imsi string) bool { return o.exceeded[imsi] }

// Crash simulates the charging collector dying at time now: records
// collected within the trailing lossWindow (not yet durably flushed)
// are rolled out of the aggregate, and the OFCS stops accepting CDRs
// until Restart. Returns how many records were lost from the window.
//
// Quota trips are deliberately NOT rolled back: a throttle action
// already taken in the real system is not undone by losing the
// records that justified it.
func (o *OFCS) Crash(now sim.Time, lossWindow time.Duration) int {
	o.down = true
	o.crashes++
	cutoff := now - lossWindow
	lost := 0
	for len(o.cdrs) > 0 {
		i := len(o.cdrs) - 1
		if o.collectedAt[i] < cutoff {
			break
		}
		c := o.cdrs[i]
		o.cdrs = o.cdrs[:i]
		o.collectedAt = o.collectedAt[:i]
		if u, ok := o.usage[c.ServedIMSI]; ok {
			u.UL -= c.DataVolumeUplink
			u.DL -= c.DataVolumeDownlink
			u.Records--
		}
		o.lostBytes += c.DataVolumeUplink + c.DataVolumeDownlink
		lost++
	}
	o.lostWindowRecords += lost
	return lost
}

// Restart brings a crashed OFCS back: it resumes collecting, with
// whatever records survived the crash as its state.
func (o *OFCS) Restart() { o.down = false }

// Down reports whether the OFCS is currently crashed.
func (o *OFCS) Down() bool { return o.down }

// Crashes returns how many times the OFCS crashed.
func (o *OFCS) Crashes() int { return o.crashes }

// LostRecords returns CDRs lost to crashes: rolled out of the loss
// window plus discarded while down.
func (o *OFCS) LostRecords() int { return o.lostWindowRecords + o.lostWhileDown }

// LostBytes returns the charged volume those lost records carried.
func (o *OFCS) LostBytes() uint64 { return o.lostBytes }
