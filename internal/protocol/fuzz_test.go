package protocol

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
)

// FuzzReadFrame throws arbitrary streams at the framing layer. The
// oracle: ReadFrame either returns a typed error (truncation,
// oversize) or a frame that round-trips byte-identically through
// WriteFrame. It must never panic, never allocate past MaxFrame, and
// never mistake a mid-frame death for a clean EOF.
func FuzzReadFrame(f *testing.F) {
	// Structural edge cases (mirrored in testdata/fuzz seeds).
	f.Add([]byte{})                             // clean EOF
	f.Add([]byte{0, 0})                         // partial header
	f.Add([]byte{0, 0, 0, 0})                   // empty frame
	f.Add([]byte{0, 0, 0, 3, 1, 2, 3})          // exact small frame
	f.Add([]byte{0, 0, 0, 10, 1, 2})            // truncated body
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})       // oversize header
	f.Add([]byte{0, 1, 0, 1})                   // >MaxFrame by a little
	f.Add([]byte{0, 0, 0, 5, 1, 2, 3, 4, 5, 9}) // trailing garbage

	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		frame, err := ReadFrame(r)
		switch {
		case err == nil:
			// Parsed: the header must have announced exactly this
			// length within bounds, and the frame must round-trip.
			if len(frame) > MaxFrame {
				t.Fatalf("frame of %d exceeds MaxFrame", len(frame))
			}
			want := binary.BigEndian.Uint32(data[:4])
			if int(want) != len(frame) {
				t.Fatalf("announced %d, returned %d", want, len(frame))
			}
			var buf bytes.Buffer
			if werr := WriteFrame(&buf, frame); werr != nil {
				t.Fatalf("round-trip write: %v", werr)
			}
			if !bytes.Equal(buf.Bytes(), data[:4+len(frame)]) {
				t.Fatal("round trip changed bytes")
			}
		case errors.Is(err, ErrFrameTruncated):
			// Typed truncation requires the stream to actually be
			// short: either a partial header or a body shorter than
			// announced.
			if len(data) >= 4 {
				n := binary.BigEndian.Uint32(data[:4])
				if n <= MaxFrame && len(data)-4 >= int(n) {
					t.Fatalf("truncation reported on a complete frame: %v", err)
				}
			}
		case errors.Is(err, io.EOF):
			if len(data) != 0 {
				t.Fatalf("clean EOF on %d bytes", len(data))
			}
		default:
			// Oversize and unexpected-EOF-free errors: must only
			// happen when the header announced past MaxFrame.
			if len(data) >= 4 {
				if n := binary.BigEndian.Uint32(data[:4]); n <= MaxFrame {
					t.Fatalf("unexpected error on in-bounds header: %v", err)
				}
			}
		}
	})
}
