package protocol

import (
	"errors"
	"fmt"
	"io"
	"time"
)

// ErrRetryBudget is returned when a retry loop gives up: attempts
// exhausted or the deadline would be overrun by the next backoff.
var ErrRetryBudget = errors.New("protocol: retry budget exhausted")

// Transient reports whether an error is worth retrying. Protocol
// verdicts — a peer that failed validation, a malformed message, a
// stale proof, exhausted rounds — are permanent: retrying replays the
// same doomed exchange. Everything else (truncated frames, connection
// resets, timeouts) is transport weather and may clear.
func Transient(err error) bool {
	if err == nil {
		return false
	}
	switch {
	case errors.Is(err, ErrBadPeer),
		errors.Is(err, ErrBadMessage),
		errors.Is(err, ErrNoConvergence),
		errors.Is(err, ErrStaleProof):
		return false
	}
	return true
}

// Retrier bounds re-attempts with exponential backoff and an overall
// deadline. The clock is injectable so internal/ users stay
// tlcvet-clean and deterministic: tests pass recorders, cmd/tlcd
// passes time.Sleep and a time.Since closure. Nil Sleep means no
// waiting (attempts run back to back); nil Elapsed disables the
// deadline and only MaxAttempts bounds the loop.
type Retrier struct {
	// MaxAttempts caps total tries (default 3).
	MaxAttempts int
	// BaseDelay is the first backoff, doubling per attempt (default
	// 50ms), capped at MaxDelay (default 2s).
	BaseDelay time.Duration
	MaxDelay  time.Duration
	// Deadline bounds the whole loop: once Elapsed() reaches it no
	// further attempt starts, and backoffs are capped at the budget
	// remaining so a sleep never overshoots it. Zero means no deadline.
	Deadline time.Duration
	// Sleep waits out a backoff; nil skips the wait.
	Sleep func(time.Duration)
	// Elapsed reports time spent since the operation started; nil
	// disables the deadline check.
	Elapsed func() time.Duration
}

func (r *Retrier) maxAttempts() int {
	if r.MaxAttempts > 0 {
		return r.MaxAttempts
	}
	return 3
}

func (r *Retrier) backoff(attempt int) time.Duration {
	d := r.BaseDelay
	if d <= 0 {
		d = 50 * time.Millisecond
	}
	max := r.MaxDelay
	if max <= 0 {
		max = 2 * time.Second
	}
	for i := 0; i < attempt; i++ {
		// Clamp before doubling: past max/2 the next doubling either
		// reaches max or overflows time.Duration (attempt ≥ ~40 with a
		// large MaxDelay flips d negative and the sleep never happens).
		if d >= max || d > max/2 {
			return max
		}
		d *= 2
	}
	if d > max {
		return max
	}
	return d
}

// Do runs op until it succeeds, fails permanently, or the budget runs
// out. op receives the attempt index (0-based). The backoff precedes
// every attempt but the first.
func (r *Retrier) Do(op func(attempt int) error) error {
	var last error
	for attempt := 0; attempt < r.maxAttempts(); attempt++ {
		if attempt > 0 {
			d := r.backoff(attempt - 1)
			if r.Deadline > 0 && r.Elapsed != nil {
				// Cap the sleep at the remaining budget instead of
				// refusing the attempt: a retry that still fits the
				// deadline should run, just without oversleeping it.
				// (Subtracting also avoids the Elapsed()+d overflow.)
				remaining := r.Deadline - r.Elapsed()
				if remaining <= 0 {
					return fmt.Errorf("%w: deadline before attempt %d: %v", ErrRetryBudget, attempt+1, last)
				}
				if d > remaining {
					d = remaining
				}
			}
			Metrics.Retries.Inc()
			if r.Sleep != nil {
				r.Sleep(d)
			}
		}
		err := op(attempt)
		if err == nil {
			return nil
		}
		last = err
		if !Transient(err) {
			return err
		}
	}
	return fmt.Errorf("%w: %d attempts: %v", ErrRetryBudget, r.maxAttempts(), last)
}

// RunWithRetry runs the negotiation with a fresh connection per
// attempt: transient transport faults (truncated frames, resets,
// stalls that trip the deadline) retry with backoff, while protocol
// verdicts fail closed immediately.
func (p *Party) RunWithRetry(dial func() (io.ReadWriteCloser, error), initiate bool, r *Retrier) (*Result, error) {
	if r == nil {
		r = &Retrier{}
	}
	var res *Result
	err := r.Do(func(int) error {
		conn, err := dial()
		if err != nil {
			return err
		}
		res, err = p.Run(conn, initiate)
		_ = conn.Close() // best-effort teardown; Run already closed on framing faults
		return err
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}
