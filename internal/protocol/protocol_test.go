package protocol

import (
	"bytes"
	"errors"
	"net"
	"strings"
	"testing"
	"time"

	"tlc/internal/core"
	"tlc/internal/poc"
	"tlc/internal/sim"
)

var (
	edgeKeys *poc.KeyPair
	opKeys   *poc.KeyPair
	plan     = poc.Plan{TStart: 0, TEnd: int64(time.Hour), C: 0.5}
)

func init() {
	rng := sim.NewRNG(4321)
	var err error
	if edgeKeys, err = poc.GenerateKeyPair(poc.DefaultKeyBits, rng.Fork("e")); err != nil {
		panic(err)
	}
	if opKeys, err = poc.GenerateKeyPair(poc.DefaultKeyBits, rng.Fork("o")); err != nil {
		panic(err)
	}
}

func parties(edgeStrat, opStrat core.Strategy, ev, ov core.View, seed int64) (*Party, *Party) {
	edge := &Party{
		Role: poc.RoleEdge, Plan: plan, Keys: edgeKeys, PeerKey: opKeys.Public,
		Strategy: edgeStrat, View: ev, RNG: sim.NewRNG(seed),
	}
	op := &Party{
		Role: poc.RoleOperator, Plan: plan, Keys: opKeys, PeerKey: edgeKeys.Public,
		Strategy: opStrat, View: ov, RNG: sim.NewRNG(seed + 1),
	}
	return edge, op
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	msg := []byte("hello negotiation")
	if err := WriteFrame(&buf, msg); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("frame = %q", got)
	}
}

func TestFrameLimits(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, make([]byte, MaxFrame+1)); err == nil {
		t.Fatal("oversized frame written")
	}
	// A forged oversized header is rejected on read.
	buf.Reset()
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	if _, err := ReadFrame(&buf); err == nil {
		t.Fatal("oversized header accepted")
	}
	// Truncated frame.
	buf.Reset()
	buf.Write([]byte{0, 0, 0, 10, 1, 2})
	if _, err := ReadFrame(&buf); err == nil {
		t.Fatal("truncated frame accepted")
	}
}

func TestOperatorInitiatedOptimalOneRound(t *testing.T) {
	// Theorem 4 over the wire: rational parties settle in one CDR
	// exchange and both hold the same verifiable PoC.
	view := core.View{Sent: 1000, Received: 900}
	edge, op := parties(core.OptimalStrategy{}, core.OptimalStrategy{}, view, view, 1)
	ro, re, err := RunPair(op, edge)
	if err != nil {
		t.Fatal(err)
	}
	if ro.X != re.X || ro.X != 950 {
		t.Fatalf("X = %d / %d, want 950", ro.X, re.X)
	}
	if ro.Rounds != 1 {
		t.Fatalf("operator rounds = %d, want 1", ro.Rounds)
	}
	// Both PoCs are the same bytes.
	b1, _ := ro.PoC.MarshalBinary()
	b2, _ := re.PoC.MarshalBinary()
	if !bytes.Equal(b1, b2) {
		t.Fatal("parties hold different proofs")
	}
	// And the proof verifies publicly.
	if err := poc.VerifyStateless(ro.PoC, plan, edgeKeys.Public, opKeys.Public); err != nil {
		t.Fatalf("public verification: %v", err)
	}
}

func TestEdgeInitiatedHonestOneRound(t *testing.T) {
	view := core.View{Sent: 2000, Received: 1500}
	edge, op := parties(core.HonestStrategy{}, core.HonestStrategy{}, view, view, 2)
	re, ro, err := RunPair(edge, op)
	if err != nil {
		t.Fatal(err)
	}
	// Honest parties: x = xo + c(xe - xo) = 1500 + 0.5*500 = 1750.
	if re.X != 1750 || ro.X != 1750 {
		t.Fatalf("X = %d / %d, want 1750", re.X, ro.X)
	}
	if err := poc.VerifyStateless(re.PoC, plan, edgeKeys.Public, opKeys.Public); err != nil {
		t.Fatalf("public verification: %v", err)
	}
}

func TestRandomSelfishConvergesOverWire(t *testing.T) {
	view := core.View{Sent: 10000, Received: 9300}
	totalRounds := 0
	const n = 50
	for i := 0; i < n; i++ {
		edge, op := parties(core.RandomSelfishStrategy{}, core.RandomSelfishStrategy{}, view, view, int64(100+i))
		edge.MaxRounds, op.MaxRounds = 256, 256
		ro, re, err := RunPair(op, edge)
		if err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
		if re.X != ro.X {
			t.Fatalf("iteration %d: X mismatch %d vs %d", i, re.X, ro.X)
		}
		// Theorem 2 bound (with tolerance).
		if float64(ro.X) < 9300*0.89 || float64(ro.X) > 10000*1.11 {
			t.Fatalf("iteration %d: X=%d escapes bound", i, ro.X)
		}
		totalRounds += ro.Rounds
	}
	avg := float64(totalRounds) / n
	if avg < 1 || avg > 10 {
		t.Fatalf("average rounds = %.1f", avg)
	}
}

func TestAlwaysRejectExhaustsRounds(t *testing.T) {
	view := core.View{Sent: 1000, Received: 900}
	edge, op := parties(core.OptimalStrategy{}, core.AlwaysRejectStrategy{}, view, view, 3)
	edge.MaxRounds, op.MaxRounds = 8, 8
	_, _, err := RunPair(op, edge)
	if err == nil {
		t.Fatal("negotiation with an always-rejecting peer settled")
	}
}

func TestRunOverTCP(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close() //tlcvet:allow errdiscard — test cleanup; the assertions, not Close, decide this test

	view := core.View{Sent: 5000, Received: 4600}
	edge, op := parties(core.OptimalStrategy{}, core.OptimalStrategy{}, view, view, 4)
	edge.Timeout, op.Timeout = 5*time.Second, 5*time.Second

	type outcome struct {
		res *Result
		err error
	}
	ch := make(chan outcome, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			ch <- outcome{nil, err}
			return
		}
		defer conn.Close() //tlcvet:allow errdiscard — test cleanup; the assertions, not Close, decide this test
		res, err := edge.Run(conn, false)
		ch <- outcome{res, err}
	}()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close() //tlcvet:allow errdiscard — test cleanup; the assertions, not Close, decide this test
	ro, err := op.Run(conn, true)
	if err != nil {
		t.Fatal(err)
	}
	re := <-ch
	if re.err != nil {
		t.Fatal(re.err)
	}
	if ro.X != re.res.X || ro.X != 4800 {
		t.Fatalf("TCP negotiation X = %d / %d, want 4800", ro.X, re.res.X)
	}
}

func TestMissingConfig(t *testing.T) {
	p := &Party{Role: poc.RoleEdge}
	if _, err := p.Run(nil, true); err == nil {
		t.Fatal("missing config accepted")
	}
}

// tamperConn flips a byte in the first CDR frame that passes through.
type tamperConn struct {
	net.Conn
	tampered bool
}

func (c *tamperConn) Read(b []byte) (int, error) {
	n, err := c.Conn.Read(b)
	if err == nil && !c.tampered && n > 20 {
		b[12] ^= 0xFF // corrupt a plan byte inside the payload
		c.tampered = true
	}
	return n, err
}

func TestTamperedMessageRejected(t *testing.T) {
	view := core.View{Sent: 1000, Received: 900}
	edge, op := parties(core.OptimalStrategy{}, core.OptimalStrategy{}, view, view, 5)
	ci, cr := net.Pipe()
	defer ci.Close() //tlcvet:allow errdiscard — test cleanup; the assertions, not Close, decide this test
	defer cr.Close() //tlcvet:allow errdiscard — test cleanup; the assertions, not Close, decide this test
	go func() {
		_, _ = op.Run(ci, true)
		_ = ci.Close()
	}()
	_, err := edge.Run(&tamperConn{Conn: cr}, false)
	if err == nil {
		t.Fatal("tampered stream accepted")
	}
	if !errors.Is(err, ErrBadPeer) && !errors.Is(err, ErrBadMessage) &&
		!strings.Contains(err.Error(), "closed") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestSequenceNumbersMatchAtSettle(t *testing.T) {
	// Multi-round negotiations must still settle with se == so, or
	// Algorithm 2 would reject the proof.
	view := core.View{Sent: 1000, Received: 700}
	for i := 0; i < 20; i++ {
		edge, op := parties(core.RandomSelfishStrategy{}, core.RandomSelfishStrategy{}, view, view, int64(500+i))
		edge.MaxRounds, op.MaxRounds = 256, 256
		ro, _, err := RunPair(op, edge)
		if err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
		if ro.PoC.CDA.Seq != ro.PoC.CDA.Peer.Seq {
			t.Fatalf("iteration %d: se=%d so=%d", i, ro.PoC.CDA.Seq, ro.PoC.CDA.Peer.Seq)
		}
		if err := poc.VerifyStateless(ro.PoC, plan, edgeKeys.Public, opKeys.Public); err != nil {
			t.Fatalf("iteration %d: settle proof invalid: %v", i, err)
		}
	}
}
