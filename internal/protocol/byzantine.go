package protocol

import (
	"crypto/rsa"
	"errors"
	"fmt"
	"io"

	"tlc/internal/poc"
	"tlc/internal/sim"
)

// Byzantine peer modes: the adversarial fault family. Each one sends
// a syntactically well-formed frame that the honest side's
// verification must reject with a typed error.
const (
	// ByzInflate answers the peer's claim with a forged chain: the
	// embedded CDR's volume is inflated (breaking the peer's
	// signature) and the final PoC's X is bumped after signing.
	ByzInflate = "inflate"
	// ByzReplay answers with a genuine, correctly signed PoC from an
	// earlier negotiation (Stale). It passes stateless verification —
	// the rejection must come from the protocol's CDA binding
	// (ErrStaleProof) or a stateful verifier's replay set.
	ByzReplay = "replay"
	// ByzTamper answers with a correctly built CDA whose signed bytes
	// are then flipped, so signature verification fails.
	ByzTamper = "tamper"
)

// Byzantine is a dishonest negotiation responder. It reads the
// honest initiator's opening CDR and answers with the forgery its
// Mode prescribes, then returns — it does not wait for a verdict
// (the honest side fails closed and hangs up).
type Byzantine struct {
	Mode    string
	Role    poc.Role
	Plan    poc.Plan
	Keys    *poc.KeyPair
	PeerKey *rsa.PublicKey
	RNG     *sim.RNG

	// Volume is the byzantine party's own (inflated) claim.
	Volume uint64
	// Stale is the old proof ByzReplay sends.
	Stale *poc.PoC
}

// Run plays one adversarial exchange as the responder. It returns
// every frame it sent, so test batteries can assert that none of
// them ever verifies as a PoC.
func (b *Byzantine) Run(conn io.ReadWriter) (sent [][]byte, err error) {
	frame, err := ReadFrame(conn)
	if err != nil {
		return nil, fmt.Errorf("byzantine: reading opening claim: %w", err)
	}
	if len(frame) == 0 {
		return nil, errors.New("byzantine: empty opening frame")
	}
	if frame[0] != 1 {
		return nil, fmt.Errorf("byzantine: expected opening CDR, got kind %d", frame[0])
	}
	var cdr poc.CDR
	if err := cdr.UnmarshalBinary(frame); err != nil {
		return nil, fmt.Errorf("byzantine: opening CDR: %w", err)
	}

	emit := func(data []byte) error {
		sent = append(sent, data)
		return WriteFrame(conn, data)
	}

	switch b.Mode {
	case ByzReplay:
		if b.Stale == nil {
			return nil, errors.New("byzantine: replay mode needs a Stale proof")
		}
		data, err := b.Stale.MarshalBinary()
		if err != nil {
			return nil, err
		}
		return sent, emit(data)

	case ByzTamper:
		cda, err := poc.BuildCDA(b.Plan, b.Role, cdr.Seq, b.claim(&cdr), &cdr, b.RNG, b.Keys.Private)
		if err != nil {
			return nil, err
		}
		data, err := cda.MarshalBinary()
		if err != nil {
			return nil, err
		}
		// Flip one bit inside the signed body (past the kind byte,
		// before the trailing signature).
		data[1+len(data)/3] ^= 0x40
		return sent, emit(data)

	case ByzInflate:
		// Inflate the peer's claim inside the chain: the copy's volume
		// no longer matches the peer's signature, and the finishing
		// signature is made with the wrong key on top. Bump X after
		// signing for good measure. Verification must reject every
		// layer of this.
		forged := cdr
		forged.Volume = forged.Volume*3 + 1<<22
		cda, err := poc.BuildCDA(b.Plan, b.Role, forged.Seq, b.claim(&forged), &forged, b.RNG, b.Keys.Private)
		if err != nil {
			return nil, err
		}
		proof, err := poc.BuildPoC(cda, b.Keys.Private)
		if err != nil {
			return nil, err
		}
		proof.X = proof.X*2 + 1<<20
		data, err := proof.MarshalBinary()
		if err != nil {
			return nil, err
		}
		return sent, emit(data)

	default:
		return nil, fmt.Errorf("byzantine: unknown mode %q", b.Mode)
	}
}

// claim picks the byzantine party's own claimed volume: the
// configured Volume, or double the peer's claim.
func (b *Byzantine) claim(peer *poc.CDR) uint64 {
	if b.Volume > 0 {
		return b.Volume
	}
	return peer.Volume * 2
}
