//go:build !race

package protocol

// raceEnabled: see raceon_test.go.
const raceEnabled = false
