//go:build race

package protocol

// raceEnabled reports whether the race detector is compiled in; the
// testing.AllocsPerRun guards skip themselves under it (verify.sh
// runs them in a separate non-race pass).
const raceEnabled = true
