// Package protocol runs TLC's negotiation (Figure 7) as an
// application-layer protocol over any stream transport: the signed
// CDR/CDA/PoC messages of internal/poc exchanged with length-prefixed
// framing, driving the Algorithm 1 game of internal/core. It works
// identically over net.Pipe (tests, simulation) and TCP (cmd/tlcd).
package protocol

import (
	"crypto/rsa"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"time"

	"tlc/internal/core"
	"tlc/internal/poc"
	"tlc/internal/sim"
)

// MaxFrame bounds a message frame; PoCs are well under 4 KiB even
// with RSA-3072.
const MaxFrame = 64 * 1024

// WriteFrame writes one length-prefixed message.
func WriteFrame(w io.Writer, data []byte) error {
	if len(data) > MaxFrame {
		return fmt.Errorf("protocol: frame of %d bytes exceeds max %d", len(data), MaxFrame)
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(data)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(data)
	return err
}

// ReadFrame reads one length-prefixed message. A stream that ends
// mid-frame — partway through the header or the announced body — is a
// truncation, not a clean EOF, and returns ErrFrameTruncated so
// callers can fail closed (close the connection) instead of leaving
// the peer mid-exchange on a half-consumed stream.
func ReadFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if n, err := io.ReadFull(r, hdr[:]); err != nil {
		if n > 0 {
			return nil, fmt.Errorf("%w: %d of 4 header bytes: %v", ErrFrameTruncated, n, err)
		}
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return nil, fmt.Errorf("protocol: frame of %d bytes exceeds max %d", n, MaxFrame)
	}
	data := make([]byte, n)
	if m, err := io.ReadFull(r, data); err != nil {
		return nil, fmt.Errorf("%w: %d of %d body bytes: %v", ErrFrameTruncated, m, n, err)
	}
	return data, nil
}

// Errors surfaced by a negotiation run.
var (
	ErrNoConvergence = errors.New("protocol: negotiation exhausted max rounds")
	ErrBadMessage    = errors.New("protocol: malformed or unexpected message")
	ErrBadPeer       = errors.New("protocol: peer message failed validation")
	// ErrFrameTruncated marks a stream that died mid-frame; the
	// connection is unusable (the framing is desynchronised) and Run
	// closes it.
	ErrFrameTruncated = errors.New("protocol: frame truncated")
	// ErrStaleProof marks a syntactically valid, correctly signed PoC
	// that does not embed the CDA this party sent in this exchange — a
	// replayed proof from an earlier negotiation.
	ErrStaleProof = errors.New("protocol: stale proof")
)

// closeConn tears the transport down when the framing layer is
// desynchronised; a half-read stream can never resynchronise, so
// leaving it open would wedge the peer.
func closeConn(conn io.ReadWriter) {
	if c, ok := conn.(io.Closer); ok {
		_ = c.Close() // already failing; the close result adds nothing
	}
}

// Party is one side of the negotiation.
type Party struct {
	Role    poc.Role
	Plan    poc.Plan
	Keys    *poc.KeyPair
	PeerKey *rsa.PublicKey

	// Strategy and View drive the Algorithm 1 game exactly as in
	// internal/core.
	Strategy core.Strategy
	View     core.View

	// RNG drives randomized strategies and nonce generation in
	// deterministic runs; nil uses a zero-seeded stream (nonces are
	// then deterministic — fine for simulation, not for production;
	// pass a crypto/rand-backed reader via NonceSource for that).
	RNG *sim.RNG
	// NonceSource overrides the nonce randomness (defaults to RNG).
	NonceSource io.Reader

	// MaxRounds caps claims sent by this party.
	MaxRounds int
	// Timeout applies per message exchange when the transport is a
	// net.Conn.
	Timeout time.Duration
}

// Result is the settled negotiation.
type Result struct {
	PoC    *poc.PoC
	X      uint64
	Rounds int // claims this party sent or answered
}

func (p *Party) coreRole() core.Role {
	if p.Role == poc.RoleEdge {
		return core.EdgeRole
	}
	return core.OperatorRole
}

func (p *Party) rng() *sim.RNG {
	if p.RNG == nil {
		p.RNG = sim.NewRNG(0)
	}
	return p.RNG
}

func (p *Party) nonceSource() io.Reader {
	if p.NonceSource != nil {
		return p.NonceSource
	}
	return p.rng()
}

func (p *Party) maxRounds() int {
	if p.MaxRounds > 0 {
		return p.MaxRounds
	}
	return core.DefaultMaxRounds
}

func (p *Party) deadline(conn io.ReadWriter) {
	if p.Timeout <= 0 {
		return
	}
	if c, ok := conn.(net.Conn); ok {
		//tlcvet:allow simtime — real network I/O deadline on a live conn, not simulated control flow
		_ = c.SetDeadline(time.Now().Add(p.Timeout))
	}
}

// validateCDR checks plan and signature of a peer claim.
func (p *Party) validateCDR(c *poc.CDR) error {
	if !c.Plan.Equal(p.Plan) {
		return fmt.Errorf("%w: plan mismatch", ErrBadPeer)
	}
	if c.Role != p.Role.Other() {
		return fmt.Errorf("%w: role mismatch", ErrBadPeer)
	}
	if err := c.Verify(p.PeerKey); err != nil {
		return fmt.Errorf("%w: %v", ErrBadPeer, err)
	}
	return nil
}

// Run executes the negotiation over the transport. The initiator
// sends the first CDR; the responder waits for it. On success both
// sides hold the same doubly signed PoC.
func (p *Party) Run(conn io.ReadWriter, initiate bool) (*Result, error) {
	Metrics.NegotiationsStarted.Inc()
	res, err := p.run(conn, initiate)
	switch {
	case err == nil:
		Metrics.NegotiationsSettled.Inc()
		Metrics.RoundsTotal.Add(uint64(res.Rounds))
	default:
		Metrics.NegotiationsFailed.Inc()
		switch {
		case errors.Is(err, ErrStaleProof):
			Metrics.StaleProofRejections.Inc()
		case errors.Is(err, ErrBadPeer):
			Metrics.ByzantineRejections.Inc()
		case errors.Is(err, ErrFrameTruncated):
			Metrics.FrameTruncations.Inc()
		}
	}
	return res, err
}

func (p *Party) run(conn io.ReadWriter, initiate bool) (*Result, error) {
	if p.Strategy == nil || p.Keys == nil || p.PeerKey == nil {
		return nil, errors.New("protocol: Strategy, Keys and PeerKey are required")
	}
	bounds := core.Bounds{Lower: 0, Upper: math.Inf(1)}
	var (
		seq         uint32
		lastOwn     *poc.CDR // our latest outstanding claim
		lastSentCDA *poc.CDA // the acceptance we sent, if any
		rounds      int
		myLastVol   = math.NaN()
	)

	sendCDR := func() error {
		rounds++
		if rounds > p.maxRounds() {
			return ErrNoConvergence
		}
		vol := p.Strategy.Claim(p.coreRole(), p.View, bounds, rounds, p.rng())
		myLastVol = vol
		cdr, err := poc.BuildCDR(p.Plan, p.Role, seq, poc.RoundVolume(vol), p.nonceSource(), p.Keys.Private)
		if err != nil {
			return err
		}
		seq++
		lastOwn = cdr
		data, err := cdr.MarshalBinary()
		if err != nil {
			return err
		}
		p.deadline(conn)
		return WriteFrame(conn, data)
	}

	// tighten implements Algorithm 1 line 12 after any reject.
	tighten := func(peerVol uint64) {
		if math.IsNaN(myLastVol) {
			return
		}
		lo := math.Min(myLastVol, float64(peerVol))
		hi := math.Max(myLastVol, float64(peerVol))
		bounds = core.Bounds{Lower: lo, Upper: hi}
	}

	if initiate {
		if err := sendCDR(); err != nil {
			return nil, err
		}
	}

	for {
		p.deadline(conn)
		frame, err := ReadFrame(conn)
		if err != nil {
			if errors.Is(err, ErrFrameTruncated) {
				closeConn(conn)
			}
			return nil, err
		}
		if len(frame) == 0 {
			return nil, ErrBadMessage
		}
		switch frame[0] {
		case 1: // CDR: either the peer's opening claim or a reject/re-claim.
			var cdr poc.CDR
			if err := cdr.UnmarshalBinary(frame); err != nil {
				return nil, fmt.Errorf("%w: %v", ErrBadMessage, err)
			}
			if err := p.validateCDR(&cdr); err != nil {
				return nil, err
			}
			inWindow := bounds.Contains(float64(cdr.Volume))
			accept := inWindow && p.Strategy.Decide(p.coreRole(), p.View, myLastVol, float64(cdr.Volume), rounds+1, p.rng())
			if accept {
				// Reply CDA carrying our own claim.
				rounds++
				if rounds > p.maxRounds() {
					return nil, ErrNoConvergence
				}
				vol := p.Strategy.Claim(p.coreRole(), p.View, bounds, rounds, p.rng())
				myLastVol = vol
				cda, err := poc.BuildCDA(p.Plan, p.Role, cdr.Seq, poc.RoundVolume(vol), &cdr, p.nonceSource(), p.Keys.Private)
				if err != nil {
					return nil, err
				}
				seq = cdr.Seq + 1
				data, err := cda.MarshalBinary()
				if err != nil {
					return nil, err
				}
				p.deadline(conn)
				if err := WriteFrame(conn, data); err != nil {
					return nil, err
				}
				lastSentCDA = cda
				continue
			}
			// Implicit reject: tighten and re-claim (Figure 7 case 2/3).
			tighten(cdr.Volume)
			if err := sendCDR(); err != nil {
				return nil, err
			}

		case 2: // CDA: the peer accepted our last CDR.
			var cda poc.CDA
			if err := cda.UnmarshalBinary(frame); err != nil {
				return nil, fmt.Errorf("%w: %v", ErrBadMessage, err)
			}
			if !cda.Plan.Equal(p.Plan) || cda.Role != p.Role.Other() {
				return nil, fmt.Errorf("%w: CDA plan/role", ErrBadPeer)
			}
			if err := cda.Verify(p.PeerKey); err != nil {
				return nil, fmt.Errorf("%w: CDA signature: %v", ErrBadPeer, err)
			}
			// The embedded CDR must be exactly the claim we sent —
			// no mix-and-match across rounds.
			if lastOwn == nil || cda.Peer.Nonce != lastOwn.Nonce || cda.Peer.Volume != lastOwn.Volume {
				return nil, fmt.Errorf("%w: CDA embeds a claim we did not send", ErrBadPeer)
			}
			accept := p.Strategy.Decide(p.coreRole(), p.View, myLastVol, float64(cda.Volume), rounds, p.rng())
			if accept {
				proof, err := poc.BuildPoC(&cda, p.Keys.Private)
				if err != nil {
					return nil, err
				}
				data, err := proof.MarshalBinary()
				if err != nil {
					return nil, err
				}
				p.deadline(conn)
				if err := WriteFrame(conn, data); err != nil {
					return nil, err
				}
				return &Result{PoC: proof, X: proof.X, Rounds: rounds}, nil
			}
			// Reject the acceptance: tighten and re-claim.
			tighten(cda.Volume)
			if err := sendCDR(); err != nil {
				return nil, err
			}

		case 3: // PoC: the peer finished the negotiation.
			var proof poc.PoC
			if err := proof.UnmarshalBinary(frame); err != nil {
				return nil, fmt.Errorf("%w: %v", ErrBadMessage, err)
			}
			// Validate the whole chain as an Algorithm 2 verifier
			// would, with our key as one side.
			var edgeKey, opKey *rsa.PublicKey
			if p.Role == poc.RoleEdge {
				edgeKey, opKey = p.Keys.Public, p.PeerKey
			} else {
				edgeKey, opKey = p.PeerKey, p.Keys.Public
			}
			if err := poc.VerifyStateless(&proof, p.Plan, edgeKey, opKey); err != nil {
				return nil, fmt.Errorf("%w: PoC: %v", ErrBadPeer, err)
			}
			// Signature validity is not enough: a proof from an earlier
			// negotiation also verifies. The PoC must embed the exact
			// CDA this party sent in this exchange, or it is a replay.
			if lastSentCDA == nil ||
				proof.CDA.Nonce != lastSentCDA.Nonce ||
				proof.CDA.Volume != lastSentCDA.Volume ||
				proof.CDA.Seq != lastSentCDA.Seq {
				closeConn(conn)
				return nil, fmt.Errorf("%w: PoC does not embed the CDA we sent", ErrStaleProof)
			}
			return &Result{PoC: &proof, X: proof.X, Rounds: rounds}, nil

		default:
			return nil, fmt.Errorf("%w: unknown kind %d", ErrBadMessage, frame[0])
		}
	}
}

// RunPair drives both parties over an in-memory connection and
// returns their results; it is the simulator's convenience entry.
func RunPair(initiator, responder *Party) (*Result, *Result, error) {
	ci, cr := net.Pipe()

	type outcome struct {
		res *Result
		err error
	}
	ch := make(chan outcome, 1)
	go func() {
		res, err := responder.Run(cr, false)
		// Closing unblocks the peer if we failed mid-exchange.
		cr.Close() //tlcvet:allow errdiscard — net.Pipe close never fails; the call only unblocks the peer
		ch <- outcome{res, err}
	}()
	ri, err := initiator.Run(ci, true)
	ci.Close() //tlcvet:allow errdiscard — net.Pipe close never fails; the call only unblocks the peer
	ro := <-ch
	if err != nil {
		return nil, nil, fmt.Errorf("initiator: %w", err)
	}
	if ro.err != nil {
		return nil, nil, fmt.Errorf("responder: %w", ro.err)
	}
	return ri, ro.res, nil
}
