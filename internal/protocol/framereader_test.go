package protocol

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// TestFrameReaderParity pins FrameReader to ReadFrame's observable
// behaviour over the same byte streams: identical frames on success,
// identical error classification on every failure mode.
func TestFrameReaderParity(t *testing.T) {
	frame := func(body []byte) []byte {
		var b bytes.Buffer
		if err := WriteFrame(&b, body); err != nil {
			t.Fatal(err)
		}
		return b.Bytes()
	}
	streams := [][]byte{
		{},                       // clean EOF
		{0, 0},                   // partial header
		{0, 0, 0, 0},             // empty frame
		frame([]byte("abc")),     // small frame
		{0, 0, 0, 10, 1, 2},      // truncated body
		{0xff, 0xff, 0xff, 0xff}, // oversize header
		{0, 1, 0, 1},             // just past MaxFrame
		append(frame([]byte("first")), frame(bytes.Repeat([]byte{7}, 512))...), // back-to-back
	}
	for _, stream := range streams {
		ref := bytes.NewReader(stream)
		fr := NewFrameReader(bytes.NewReader(stream))
		for {
			want, wantErr := ReadFrame(ref)
			got, gotErr := fr.ReadFrame()
			if (wantErr == nil) != (gotErr == nil) {
				t.Fatalf("stream %x: ReadFrame err=%v FrameReader err=%v", stream, wantErr, gotErr)
			}
			if wantErr != nil {
				for _, target := range []error{ErrFrameTruncated, io.EOF} {
					if errors.Is(wantErr, target) != errors.Is(gotErr, target) {
						t.Fatalf("stream %x: error class diverged: %v vs %v", stream, wantErr, gotErr)
					}
				}
				break
			}
			if !bytes.Equal(want, got) {
				t.Fatalf("stream %x: frame diverged: %x vs %x", stream, want, got)
			}
		}
	}
}

// TestFrameReaderReuse: the returned slice aliases the internal buffer,
// so the next call overwrites it — the documented contract callers copy
// around.
func TestFrameReaderReuse(t *testing.T) {
	var b bytes.Buffer
	if err := WriteFrame(&b, []byte("aaaa")); err != nil {
		t.Fatal(err)
	}
	if err := WriteFrame(&b, []byte("bbbb")); err != nil {
		t.Fatal(err)
	}
	fr := NewFrameReader(&b)
	first, err := fr.ReadFrame()
	if err != nil {
		t.Fatal(err)
	}
	if string(first) != "aaaa" {
		t.Fatalf("first frame %q", first)
	}
	if _, err := fr.ReadFrame(); err != nil {
		t.Fatal(err)
	}
	if string(first) == "aaaa" {
		t.Fatal("second ReadFrame left the first slice untouched; buffer is not being reused")
	}
}

// TestFrameReaderZeroAlloc guards the pooled read path: after the
// buffer has grown once, reading frames allocates nothing. Runs in the
// non-race allocs verify stage (AllocsPerRun is perturbed under -race).
func TestFrameReaderZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("AllocsPerRun is perturbed by the race detector")
	}
	var wire bytes.Buffer
	if err := WriteFrame(&wire, bytes.Repeat([]byte{3}, 1024)); err != nil {
		t.Fatal(err)
	}
	stream := wire.Bytes()
	r := bytes.NewReader(stream)
	fr := NewFrameReader(r)
	if _, err := fr.ReadFrame(); err != nil { // grow once
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		r.Reset(stream)
		if _, err := fr.ReadFrame(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("FrameReader.ReadFrame allocates %v per frame; want 0", allocs)
	}
}
