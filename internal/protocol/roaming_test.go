package protocol

import (
	"crypto/rsa"
	"errors"
	"testing"
	"time"

	"tlc/internal/core"
	"tlc/internal/poc"
	"tlc/internal/sim"
)

var (
	roamVendorKeys  *poc.KeyPair
	roamVisitedKeys *poc.KeyPair
	roamHomeKeys    *poc.KeyPair
	roamPlan        = poc.Plan{TStart: 0, TEnd: int64(time.Hour), C: 0.5}
)

func init() {
	rng := sim.NewRNG(8765)
	var err error
	if roamVendorKeys, err = poc.GenerateKeyPair(poc.DefaultKeyBits, rng.Fork("vendor")); err != nil {
		panic(err)
	}
	if roamVisitedKeys, err = poc.GenerateKeyPair(poc.DefaultKeyBits, rng.Fork("visited")); err != nil {
		panic(err)
	}
	if roamHomeKeys, err = poc.GenerateKeyPair(poc.DefaultKeyBits, rng.Fork("home")); err != nil {
		panic(err)
	}
}

// roamConfig is an honest three-party run with the drop inside the
// visited network: the vendor's 1000 bytes all reach the visited
// ingress, only 900 reach the subscriber.
func roamConfig(seed int64) RoamingConfig {
	return RoamingConfig{
		Plan:            roamPlan,
		VendorKeys:      roamVendorKeys,
		VisitedKeys:     roamVisitedKeys,
		HomeKeys:        roamHomeKeys,
		VendorStrategy:  core.HonestStrategy{},
		VisitedStrategy: core.HonestStrategy{},
		HomeStrategy:    core.HonestStrategy{},
		VendorView:      core.View{Sent: 1000, Received: 1000},
		VisitedViewA:    core.View{Sent: 1000, Received: 1000},
		HomeView:        core.View{Sent: 1000, Received: 900},
		RNG:             sim.NewRNG(seed),
	}
}

func TestRunRoamingHonest(t *testing.T) {
	res, err := RunRoaming(roamConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Chain == nil {
		t.Fatal("no chain accepted")
	}
	// Downstream settles at the agreed 1000; upstream applies
	// Algorithm 1 over (X1, 900).
	if res.X1 != 1000 {
		t.Fatalf("X1 = %d, want 1000", res.X1)
	}
	wantX2 := poc.RoundVolume(core.Charge(roamPlan.C, float64(res.X1), 900))
	if res.X2 != wantX2 {
		t.Fatalf("X2 = %d, want %d", res.X2, wantX2)
	}
	if res.Chain.Final.X != res.X2 || res.Chain.Links[0].Proof.X != res.X1 {
		t.Fatalf("chain volumes (%d, %d) disagree with results (%d, %d)",
			res.Chain.Links[0].Proof.X, res.Chain.Final.X, res.X1, res.X2)
	}
	// The accepted chain re-verifies for any third party.
	if err := poc.ChainVerifyStateless(res.Chain, roamPlan, roamVendorKeys.Public,
		[]*rsa.PublicKey{roamVisitedKeys.Public}, roamHomeKeys.Public); err != nil {
		t.Fatalf("accepted chain fails third-party verification: %v", err)
	}
}

func TestRunRoamingForgedChainRejected(t *testing.T) {
	cfg := roamConfig(2)
	cfg.Forge = func(ch *poc.Chain) *poc.Chain {
		forged := *ch
		forged.Links = append([]poc.ChainLink(nil), ch.Links...)
		sig := append([]byte(nil), forged.Links[0].Endorse.Signature...)
		sig[0] ^= 1
		forged.Links[0].Endorse.Signature = sig
		return &forged
	}
	_, err := RunRoaming(cfg)
	if !errors.Is(err, ErrBadChain) {
		t.Fatalf("forged chain: err = %v, want ErrBadChain", err)
	}
}

func TestRunRoamingPersistentVerifierStopsReplay(t *testing.T) {
	verifier := poc.NewChainVerifier(roamVendorKeys.Public,
		[]*rsa.PublicKey{roamVisitedKeys.Public}, roamHomeKeys.Public)

	cfg := roamConfig(3)
	cfg.Verifier = verifier
	first, err := RunRoaming(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Next cycle, the visited operator swaps in the already-settled
	// link to double-bill the vendor segment. Same verifier: replay.
	cfg2 := roamConfig(4)
	cfg2.Verifier = verifier
	cfg2.Forge = func(ch *poc.Chain) *poc.Chain {
		return &poc.Chain{Links: first.Chain.Links, Final: ch.Final}
	}
	_, err = RunRoaming(cfg2)
	if !errors.Is(err, ErrBadChain) {
		t.Fatalf("replayed link: err = %v, want ErrBadChain", err)
	}

	// An honest second cycle under the same verifier still settles.
	cfg3 := roamConfig(5)
	cfg3.Verifier = verifier
	if _, err := RunRoaming(cfg3); err != nil {
		t.Fatal(err)
	}
}
