package protocol

import (
	"encoding/binary"
	"fmt"
	"io"
)

// FrameReader reads length-prefixed frames like ReadFrame but reuses
// one internal body buffer across calls, so a steady stream of frames
// costs zero allocations after the buffer has grown to the largest
// frame seen. It is the live-path reader: cmd/tlcd's session engine
// decodes hundreds of thousands of frames per second, where ReadFrame's
// per-frame make([]byte, n) would dominate the allocation profile.
//
// The returned slice aliases the internal buffer and is only valid
// until the next ReadFrame call; callers that queue frames must copy.
// The simulator and the one-negotiation-per-conn paths keep using the
// plain ReadFrame, whose fresh allocations make frames safe to retain
// — their behaviour (and the fuzz oracle over it) stays byte-identical.
type FrameReader struct {
	r   io.Reader
	hdr [4]byte // reused header scratch; a local would escape through io.ReadFull
	buf []byte
}

// NewFrameReader wraps r. The reader owns no goroutines and holds no
// state besides the reusable buffer, so it is safe to abandon.
func NewFrameReader(r io.Reader) *FrameReader {
	return &FrameReader{r: r}
}

// ReadFrame reads one length-prefixed message with exactly ReadFrame's
// semantics: clean EOF only on a frame boundary, ErrFrameTruncated on
// a stream that dies mid-header or mid-body, and a hard error on a
// header announcing more than MaxFrame bytes.
func (fr *FrameReader) ReadFrame() ([]byte, error) {
	if n, err := io.ReadFull(fr.r, fr.hdr[:]); err != nil {
		if n > 0 {
			return nil, fmt.Errorf("%w: %d of 4 header bytes: %v", ErrFrameTruncated, n, err)
		}
		return nil, err
	}
	n := binary.BigEndian.Uint32(fr.hdr[:])
	if n > MaxFrame {
		return nil, fmt.Errorf("protocol: frame of %d bytes exceeds max %d", n, MaxFrame)
	}
	if uint32(cap(fr.buf)) < n {
		fr.buf = make([]byte, n)
	}
	data := fr.buf[:n]
	if m, err := io.ReadFull(fr.r, data); err != nil {
		return nil, fmt.Errorf("%w: %d of %d body bytes: %v", ErrFrameTruncated, m, n, err)
	}
	return data, nil
}
