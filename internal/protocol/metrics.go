package protocol

import "tlc/internal/metrics"

// Metrics are the negotiation-layer instruments, observed inline:
// unlike the simulated substrates, protocol runs serve live peers
// (cmd/tlcd) where a cycle-end flush would be too late. All updates
// are single atomic operations on pre-registered instruments — no
// locks, no allocation, no clock reads and no RNG draws, so
// simulation-driven negotiations (RunPair in the experiment suite)
// stay byte-deterministic.
//
// NegotiateSeconds is observed by the caller that owns a real clock
// (cmd/tlcd wraps each settlement with time.Since); nothing in
// internal/ reads wall time, which keeps the tlcvet simtime pass
// clean without waivers.
var Metrics = struct {
	// NegotiationsStarted/Settled/Failed count Party.Run outcomes.
	NegotiationsStarted *metrics.Counter
	NegotiationsSettled *metrics.Counter
	NegotiationsFailed  *metrics.Counter
	// RoundsTotal accumulates claims sent/answered across settled
	// negotiations (RoundsTotal/NegotiationsSettled = mean rounds).
	RoundsTotal *metrics.Counter
	// Retries counts backoff re-attempts taken by Retrier.Do.
	Retries *metrics.Counter
	// StaleProofRejections counts replayed-PoC rejections
	// (ErrStaleProof); ByzantineRejections counts peer-validation
	// failures (ErrBadPeer: bad signatures, forged or mismatched
	// claims); FrameTruncations counts streams that died mid-frame.
	StaleProofRejections *metrics.Counter
	ByzantineRejections  *metrics.Counter
	FrameTruncations     *metrics.Counter
	// NegotiateSeconds is the negotiation round-trip latency
	// histogram, observed by live callers (cmd/tlcd).
	NegotiateSeconds *metrics.Histogram
}{
	NegotiationsStarted: metrics.Default.Counter("protocol_negotiations_started_total",
		"negotiation runs started by this process"),
	NegotiationsSettled: metrics.Default.Counter("protocol_negotiations_settled_total",
		"negotiation runs settled with a doubly signed PoC"),
	NegotiationsFailed: metrics.Default.Counter("protocol_negotiations_failed_total",
		"negotiation runs that returned an error"),
	RoundsTotal: metrics.Default.Counter("protocol_rounds_total",
		"claims sent or answered across settled negotiations"),
	Retries: metrics.Default.Counter("protocol_retries_total",
		"backoff re-attempts taken by negotiation retry loops"),
	StaleProofRejections: metrics.Default.Counter("protocol_stale_proof_rejections_total",
		"negotiations rejected because the peer presented a replayed PoC"),
	ByzantineRejections: metrics.Default.Counter("protocol_byzantine_rejections_total",
		"negotiations rejected because a peer message failed validation"),
	FrameTruncations: metrics.Default.Counter("protocol_frame_truncations_total",
		"negotiations aborted by a stream that died mid-frame"),
	NegotiateSeconds: metrics.Default.Histogram("protocol_negotiate_seconds",
		"negotiation round-trip latency in seconds (observed by live servers)",
		metrics.DefBuckets),
}
