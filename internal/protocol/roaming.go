package protocol

import (
	"crypto/rsa"
	"errors"
	"fmt"
	"net"

	"tlc/internal/core"
	"tlc/internal/poc"
	"tlc/internal/sim"
)

// Three-party roaming settlement over the wire. The edge vendor and
// the visited operator first settle their segment with the ordinary
// bilateral negotiation; the visited operator countersigns that proof,
// opens a second negotiation with the home operator claiming exactly
// the settled volume, and after that segment settles hands the full
// chain over on the same connection. The home operator verifies the
// chain end to end before accepting it — a visited operator that
// inflates, replays or tampers anything gets a typed rejection.

// ErrBadChain marks a relayed settlement chain that failed end-to-end
// verification at the home operator.
var ErrBadChain = errors.New("protocol: roaming chain failed verification")

// RoamingConfig wires the three parties of one roaming settlement.
type RoamingConfig struct {
	Plan poc.Plan

	VendorKeys  *poc.KeyPair
	VisitedKeys *poc.KeyPair
	HomeKeys    *poc.KeyPair

	VendorStrategy  core.Strategy
	VisitedStrategy core.Strategy
	HomeStrategy    core.Strategy

	// VendorView is the vendor's view of the downstream segment and
	// VisitedViewA the visited operator's; they drive the Algorithm 1
	// game exactly as in a bilateral run.
	VendorView   core.View
	VisitedViewA core.View
	// VisitedViewB is the visited operator's view of the upstream
	// segment. Zero means derive it from the settled downstream volume
	// — the honest relay claims upstream exactly what it countersigned.
	VisitedViewB core.View
	// HomeView is the home operator's view of the upstream segment:
	// Sent is its gateway estimate of what the visited operator pushed,
	// Received its record of what reached the subscriber.
	HomeView core.View

	RNG       *sim.RNG
	MaxRounds int

	// Verifier, when set, is the home operator's persistent chain
	// verifier (replay defence across cycles). Nil verifies each run
	// against a fresh replay set.
	Verifier *poc.ChainVerifier

	// Forge, when set, lets a byzantine visited operator rewrite the
	// chain between assembly and handoff. The home operator's verdict
	// on the forged chain is the experiment's measurement.
	Forge func(*poc.Chain) *poc.Chain
}

// RoamingResult is one settled (or rejected) roaming run.
type RoamingResult struct {
	// Chain is the settlement chain as the home operator accepted it;
	// nil when the handoff was rejected.
	Chain *poc.Chain
	// X1 is the vendor<->visited settled volume, X2 the final
	// visited<->home one (what the subscriber is billed).
	X1, X2 uint64
	// RoundsA and RoundsB count the claims of the two negotiations.
	RoundsA, RoundsB int
}

func (cfg *RoamingConfig) rng() *sim.RNG {
	if cfg.RNG == nil {
		cfg.RNG = sim.NewRNG(0)
	}
	return cfg.RNG
}

// RunRoaming drives a full three-party settlement over in-memory
// connections: downstream negotiation, countersignature, upstream
// negotiation, chain handoff, home-side verification.
func RunRoaming(cfg RoamingConfig) (*RoamingResult, error) {
	rng := cfg.rng()

	vendor := &Party{
		Role: poc.RoleEdge, Plan: cfg.Plan,
		Keys: cfg.VendorKeys, PeerKey: cfg.VisitedKeys.Public,
		Strategy: cfg.VendorStrategy, View: cfg.VendorView,
		RNG: rng.Fork("vendor"), MaxRounds: cfg.MaxRounds,
	}
	visitedDown := &Party{
		Role: poc.RoleOperator, Plan: cfg.Plan,
		Keys: cfg.VisitedKeys, PeerKey: cfg.VendorKeys.Public,
		Strategy: cfg.VisitedStrategy, View: cfg.VisitedViewA,
		RNG: rng.Fork("visited-down"), MaxRounds: cfg.MaxRounds,
	}
	_, resA, err := RunPair(vendor, visitedDown)
	if err != nil {
		return nil, fmt.Errorf("roaming downstream: %w", err)
	}

	cs, err := poc.Countersign(resA.PoC, rng.Fork("countersign"), cfg.VisitedKeys.Private)
	if err != nil {
		return nil, err
	}

	viewB := cfg.VisitedViewB
	if viewB == (core.View{}) {
		x1 := float64(cs.Relayed)
		viewB = core.View{Sent: x1, Received: x1}
	}
	visitedUp := &Party{
		Role: poc.RoleEdge, Plan: cfg.Plan,
		Keys: cfg.VisitedKeys, PeerKey: cfg.HomeKeys.Public,
		Strategy: cfg.VisitedStrategy, View: viewB,
		RNG: rng.Fork("visited-up"), MaxRounds: cfg.MaxRounds,
	}
	home := &Party{
		Role: poc.RoleOperator, Plan: cfg.Plan,
		Keys: cfg.HomeKeys, PeerKey: cfg.VisitedKeys.Public,
		Strategy: cfg.HomeStrategy, View: cfg.HomeView,
		RNG: rng.Fork("home"), MaxRounds: cfg.MaxRounds,
	}

	verifier := cfg.Verifier
	if verifier == nil {
		verifier = poc.NewChainVerifier(cfg.VendorKeys.Public,
			[]*rsa.PublicKey{cfg.VisitedKeys.Public}, cfg.HomeKeys.Public)
	}

	// Upstream negotiation and chain handoff share one connection: the
	// chain frame (kind 5, the chain codec's own tag) follows the
	// settlement on the same stream.
	ci, cr := net.Pipe()
	type homeOut struct {
		res   *Result
		chain *poc.Chain
		err   error
	}
	ch := make(chan homeOut, 1)
	go func() {
		out := homeOut{}
		out.res, out.err = home.Run(cr, false)
		if out.err == nil {
			out.chain, out.err = readChainFrame(cr, verifier, cfg.Plan)
		}
		cr.Close() //tlcvet:allow errdiscard — net.Pipe close never fails; the call only unblocks the peer
		ch <- out
	}()

	resB, errB := visitedUp.Run(ci, true)
	if errB == nil {
		chain := &poc.Chain{
			Links: []poc.ChainLink{{Proof: *resA.PoC, Endorse: *cs}},
			Final: *resB.PoC,
		}
		if cfg.Forge != nil {
			chain = cfg.Forge(chain)
		}
		errB = writeChainFrame(ci, chain)
	}
	ci.Close() //tlcvet:allow errdiscard — net.Pipe close never fails; the call only unblocks the peer
	out := <-ch
	if errB != nil {
		return nil, fmt.Errorf("roaming upstream (visited): %w", errB)
	}
	if out.err != nil {
		return nil, fmt.Errorf("roaming upstream (home): %w", out.err)
	}

	return &RoamingResult{
		Chain:   out.chain,
		X1:      resA.X,
		X2:      out.res.X,
		RoundsA: resA.Rounds,
		RoundsB: out.res.Rounds,
	}, nil
}

// writeChainFrame sends the assembled chain; its first byte is the
// chain codec's kind tag, distinct from the CDR/CDA/PoC kinds.
func writeChainFrame(conn net.Conn, chain *poc.Chain) error {
	data, err := chain.MarshalBinary()
	if err != nil {
		return err
	}
	return WriteFrame(conn, data)
}

// readChainFrame receives and fully verifies the settlement chain.
func readChainFrame(conn net.Conn, verifier *poc.ChainVerifier, plan poc.Plan) (*poc.Chain, error) {
	frame, err := ReadFrame(conn)
	if err != nil {
		if errors.Is(err, ErrFrameTruncated) {
			closeConn(conn)
		}
		return nil, err
	}
	var chain poc.Chain
	if err := chain.UnmarshalBinary(frame); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadMessage, err)
	}
	if err := verifier.Verify(&chain, plan); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadChain, err)
	}
	return &chain, nil
}
