package protocol

import (
	"bytes"
	"errors"
	"io"
	"net"
	"testing"
	"time"

	"tlc/internal/core"
	"tlc/internal/poc"
	"tlc/internal/sim"
)

// --- ErrFrameTruncated regression (the latent short-read bug) ---

func TestReadFrameTruncatedHeader(t *testing.T) {
	// A stream that dies inside the 4-byte header must surface the
	// typed truncation error, not a bare unexpected-EOF.
	_, err := ReadFrame(bytes.NewReader([]byte{0, 0}))
	if !errors.Is(err, ErrFrameTruncated) {
		t.Fatalf("partial header: %v, want ErrFrameTruncated", err)
	}
	// A stream that ends cleanly before any header is a normal EOF.
	_, err = ReadFrame(bytes.NewReader(nil))
	if !errors.Is(err, io.EOF) || errors.Is(err, ErrFrameTruncated) {
		t.Fatalf("clean EOF: %v, want io.EOF", err)
	}
}

func TestReadFrameTruncatedBody(t *testing.T) {
	_, err := ReadFrame(bytes.NewReader([]byte{0, 0, 0, 10, 1, 2, 3}))
	if !errors.Is(err, ErrFrameTruncated) {
		t.Fatalf("partial body: %v, want ErrFrameTruncated", err)
	}
}

// closableHalf wraps one end of a pipe recording whether Run closed it.
type closableHalf struct {
	net.Conn
	closed bool
}

func (c *closableHalf) Close() error { c.closed = true; return c.Conn.Close() }

// TestRunClosesOnTruncatedFrame: a peer that dies mid-frame must not
// leave this side's transport open (the framing can never resync).
func TestRunClosesOnTruncatedFrame(t *testing.T) {
	view := core.View{Sent: 1000, Received: 900}
	edge, _ := parties(core.OptimalStrategy{}, core.OptimalStrategy{}, view, view, 30)

	ci, cr := net.Pipe()
	go func() {
		// Send 4 header bytes announcing 100, then die after 3.
		_, _ = ci.Write([]byte{0, 0, 0, 100, 9, 9, 9})
		_ = ci.Close()
	}()
	wrapped := &closableHalf{Conn: cr}
	_, err := edge.Run(wrapped, false)
	if !errors.Is(err, ErrFrameTruncated) {
		t.Fatalf("err = %v, want ErrFrameTruncated", err)
	}
	if !wrapped.closed {
		t.Fatal("Run left the truncated connection open")
	}
}

// --- stale-proof binding ---

// TestStaleProofRejected: a correctly signed PoC from an earlier
// negotiation passes stateless verification but must be rejected by
// the protocol's CDA binding with ErrStaleProof.
func TestStaleProofRejected(t *testing.T) {
	view := core.View{Sent: 1000, Received: 900}
	e1, o1 := parties(core.OptimalStrategy{}, core.OptimalStrategy{}, view, view, 31)
	ro, _, err := RunPair(o1, e1)
	if err != nil {
		t.Fatal(err)
	}
	stale := ro.PoC
	if err := poc.VerifyStateless(stale, plan, edgeKeys.Public, opKeys.Public); err != nil {
		t.Fatalf("stale proof should be genuine: %v", err)
	}

	edge, _ := parties(core.OptimalStrategy{}, core.OptimalStrategy{}, view, view, 32)
	byz := &Byzantine{
		Mode: ByzReplay, Role: poc.RoleOperator, Plan: plan,
		Keys: opKeys, PeerKey: edgeKeys.Public, RNG: sim.NewRNG(33), Stale: stale,
	}
	ci, cr := net.Pipe()
	done := make(chan error, 1)
	go func() {
		_, err := byz.Run(cr)
		done <- err
	}()
	_, err = edge.Run(ci, true)
	if !errors.Is(err, ErrStaleProof) {
		t.Fatalf("err = %v, want ErrStaleProof", err)
	}
	_ = ci.Close()
	if berr := <-done; berr != nil {
		t.Fatalf("byzantine side: %v", berr)
	}

	// The stateful verifier also refuses the second sighting.
	v := poc.NewVerifier(edgeKeys.Public, opKeys.Public)
	if err := v.Verify(stale, plan); err != nil {
		t.Fatalf("first sighting: %v", err)
	}
	if err := v.Verify(stale, plan); !errors.Is(err, poc.ErrReplay) {
		t.Fatalf("second sighting: %v, want ErrReplay", err)
	}
}

// --- byzantine battery: forged frames never verify ---

func TestByzantineForgeriesNeverVerify(t *testing.T) {
	view := core.View{Sent: 1000, Received: 900}
	for i, mode := range []string{ByzInflate, ByzTamper} {
		edge, _ := parties(core.OptimalStrategy{}, core.OptimalStrategy{}, view, view, int64(40+i))
		byz := &Byzantine{
			Mode: mode, Role: poc.RoleOperator, Plan: plan,
			Keys: opKeys, PeerKey: edgeKeys.Public, RNG: sim.NewRNG(int64(50 + i)),
		}
		ci, cr := net.Pipe()
		type out struct {
			sent [][]byte
			err  error
		}
		done := make(chan out, 1)
		go func() {
			sent, err := byz.Run(cr)
			done <- out{sent, err}
		}()
		_, err := edge.Run(ci, true)
		if err == nil {
			t.Fatalf("%s: honest side accepted a forgery", mode)
		}
		if !errors.Is(err, ErrBadPeer) && !errors.Is(err, ErrBadMessage) {
			t.Fatalf("%s: err = %v, want a typed protocol rejection", mode, err)
		}
		_ = ci.Close()
		o := <-done
		if o.err != nil {
			t.Fatalf("%s: byzantine side: %v", mode, o.err)
		}
		// No frame the adversary emitted may ever verify as a PoC.
		for _, data := range o.sent {
			if len(data) == 0 || data[0] != 3 {
				continue
			}
			var p poc.PoC
			if uerr := p.UnmarshalBinary(data); uerr != nil {
				continue // does not even parse: fine
			}
			if verr := poc.VerifyStateless(&p, plan, edgeKeys.Public, opKeys.Public); verr == nil {
				t.Fatalf("%s: forged PoC verified", mode)
			}
		}
	}
}

// --- bounded retry ---

func TestTransientClassification(t *testing.T) {
	for _, tc := range []struct {
		err  error
		want bool
	}{
		{nil, false},
		{ErrBadPeer, false},
		{ErrBadMessage, false},
		{ErrNoConvergence, false},
		{ErrStaleProof, false},
		{ErrFrameTruncated, true},
		{io.ErrUnexpectedEOF, true},
		{errors.New("connection reset"), true},
	} {
		if got := Transient(tc.err); got != tc.want {
			t.Errorf("Transient(%v) = %v, want %v", tc.err, got, tc.want)
		}
	}
}

func TestRetrierBackoffAndBudget(t *testing.T) {
	var slept []time.Duration
	r := &Retrier{
		MaxAttempts: 4,
		BaseDelay:   10 * time.Millisecond,
		MaxDelay:    35 * time.Millisecond,
		Sleep:       func(d time.Duration) { slept = append(slept, d) },
	}
	calls := 0
	err := r.Do(func(attempt int) error {
		if attempt != calls {
			t.Fatalf("attempt %d on call %d", attempt, calls)
		}
		calls++
		return io.ErrUnexpectedEOF
	})
	if !errors.Is(err, ErrRetryBudget) {
		t.Fatalf("err = %v, want ErrRetryBudget", err)
	}
	if calls != 4 {
		t.Fatalf("calls = %d, want 4", calls)
	}
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond, 35 * time.Millisecond}
	if len(slept) != len(want) {
		t.Fatalf("slept %v", slept)
	}
	for i := range want {
		if slept[i] != want[i] {
			t.Fatalf("backoff %d = %s, want %s", i, slept[i], want[i])
		}
	}
}

func TestRetrierPermanentErrorStops(t *testing.T) {
	r := &Retrier{MaxAttempts: 5}
	calls := 0
	err := r.Do(func(int) error { calls++; return ErrBadPeer })
	if !errors.Is(err, ErrBadPeer) || calls != 1 {
		t.Fatalf("err=%v calls=%d, want immediate ErrBadPeer", err, calls)
	}
}

func TestRetrierDeadline(t *testing.T) {
	elapsed := time.Duration(0)
	r := &Retrier{
		MaxAttempts: 10,
		BaseDelay:   100 * time.Millisecond,
		Deadline:    150 * time.Millisecond,
		Sleep:       func(d time.Duration) { elapsed += d },
		Elapsed:     func() time.Duration { return elapsed },
	}
	calls := 0
	err := r.Do(func(int) error { calls++; return io.ErrUnexpectedEOF })
	if !errors.Is(err, ErrRetryBudget) {
		t.Fatalf("err = %v, want ErrRetryBudget", err)
	}
	// attempt 1 (free), backoff 100ms fits (100 <= 150), attempt 2,
	// next backoff 200ms is capped at the 50ms remaining, attempt 3,
	// budget now exhausted (elapsed == deadline): stop at 3 calls.
	if calls != 3 {
		t.Fatalf("calls = %d, want 3", calls)
	}
	if elapsed != 150*time.Millisecond {
		t.Fatalf("slept %s total, want exactly the 150ms deadline", elapsed)
	}
}

// TestRetrierBackoffNoOverflow: the doubling loop used to multiply
// first and clamp after, so with a very large MaxDelay ("effectively
// uncapped") the duration overflowed negative around attempt 40 — a
// negative Sleep returns immediately and the retry loop hot-spins.
// The clamped loop must stay positive, monotone, and saturate.
func TestRetrierBackoffNoOverflow(t *testing.T) {
	r := &Retrier{BaseDelay: time.Second, MaxDelay: 1<<63 - 1}
	prev := time.Duration(0)
	for attempt := 0; attempt < 80; attempt++ {
		d := r.backoff(attempt)
		if d <= 0 {
			t.Fatalf("backoff(%d) = %v, want positive (overflow)", attempt, d)
		}
		if d < prev {
			t.Fatalf("backoff(%d) = %v < backoff(%d) = %v, want monotone", attempt, d, attempt-1, prev)
		}
		prev = d
	}
	if prev != r.MaxDelay {
		t.Fatalf("backoff(79) = %v, want saturation at MaxDelay", prev)
	}
}

// TestRetrierSleepCappedAtDeadline: with an uncapped MaxDelay and many
// attempts, every backoff must be trimmed to the deadline remaining —
// the loop sleeps exactly the budget in total and never oversleeps,
// even where the raw doubled backoff has long since overflowed.
func TestRetrierSleepCappedAtDeadline(t *testing.T) {
	elapsed := time.Duration(0)
	r := &Retrier{
		MaxAttempts: 50,
		BaseDelay:   100 * time.Millisecond,
		MaxDelay:    1<<63 - 1,
		Deadline:    time.Second,
		Sleep: func(d time.Duration) {
			if d <= 0 {
				t.Fatalf("slept %v, want positive", d)
			}
			elapsed += d
		},
		Elapsed: func() time.Duration { return elapsed },
	}
	calls := 0
	err := r.Do(func(int) error { calls++; return io.ErrUnexpectedEOF })
	if !errors.Is(err, ErrRetryBudget) {
		t.Fatalf("err = %v, want ErrRetryBudget", err)
	}
	// Sleeps 100+200+400+300(capped) = the 1s budget exactly; the
	// fifth call runs with no budget left for a sixth.
	if calls != 5 {
		t.Fatalf("calls = %d, want 5", calls)
	}
	if elapsed != time.Second {
		t.Fatalf("slept %s total, want exactly the 1s deadline", elapsed)
	}
}

// TestRunWithRetryRecoversFromTruncation: the first dial hits a
// transport that dies mid-frame; the retry dials again and settles.
func TestRunWithRetryRecoversFromTruncation(t *testing.T) {
	view := core.View{Sent: 1000, Received: 900}
	dials := 0
	dial := func() (io.ReadWriteCloser, error) {
		dials++
		ci, cr := net.Pipe()
		if dials == 1 {
			go func() {
				if _, err := ReadFrame(cr); err != nil {
					_ = cr.Close()
					return
				}
				_, _ = cr.Write([]byte{0, 0, 1, 0, 2}) // announce 256, die
				_ = cr.Close()
			}()
			return ci, nil
		}
		op := &Party{
			Role: poc.RoleOperator, Plan: plan, Keys: opKeys, PeerKey: edgeKeys.Public,
			Strategy: core.OptimalStrategy{}, View: view, RNG: sim.NewRNG(61),
		}
		go func() {
			_, _ = op.Run(cr, false)
			_ = cr.Close()
		}()
		return ci, nil
	}
	edge := &Party{
		Role: poc.RoleEdge, Plan: plan, Keys: edgeKeys, PeerKey: opKeys.Public,
		Strategy: core.OptimalStrategy{}, View: view, RNG: sim.NewRNG(60),
	}
	res, err := edge.RunWithRetry(dial, true, &Retrier{MaxAttempts: 3})
	if err != nil {
		t.Fatalf("retry did not recover: %v", err)
	}
	if dials != 2 {
		t.Fatalf("dials = %d, want 2", dials)
	}
	if err := poc.VerifyStateless(res.PoC, plan, edgeKeys.Public, opKeys.Public); err != nil {
		t.Fatalf("settled proof invalid: %v", err)
	}
}
