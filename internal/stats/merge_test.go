package stats

import (
	"testing"
)

// TestShardParityMergeKeepsPartitionOrder pins the sharded-metrics
// merge rule: Merge concatenates per-partition contributions in the
// exact order given — never sorted, never completion order — and
// reading percentiles off the merged sample must not disturb the
// parts, so a later render of the same parts is byte-identical.
func TestShardParityMergeKeepsPartitionOrder(t *testing.T) {
	a := NewSample(3, 1)
	b := NewSample(2)
	c := NewSample(5, 4)
	m := Merge(a, nil, b, c)
	want := []float64{3, 1, 2, 5, 4}
	got := m.Values()
	if len(got) != len(want) {
		t.Fatalf("merged %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("merged %v, want %v (contribution order not preserved)", got, want)
		}
	}

	// Sorting reads on the merged sample must not leak into the parts
	// or into a re-merge.
	if p := m.Percentile(95); p != 4.8 {
		t.Fatalf("p95 = %v, want 4.8", p)
	}
	if av := a.Values(); av[0] != 3 || av[1] != 1 {
		t.Fatalf("Percentile on merged sample mutated a part: %v", av)
	}
	again := Merge(a, nil, b, c).Values()
	for i := range want {
		if again[i] != want[i] {
			t.Fatalf("re-merge %v, want %v", again, want)
		}
	}

	// Render the same parts twice (first render sorts internally):
	// identical bytes both times.
	r1 := RenderCDF("x", Merge(a, b, c), 4)
	r2 := RenderCDF("x", Merge(a, b, c), 4)
	if r1 != r2 {
		t.Fatalf("re-rendered CDF differs:\n%s\nvs\n%s", r1, r2)
	}

	if m := Merge(); m.Len() != 0 {
		t.Fatalf("empty merge has %d values", m.Len())
	}
}
