package stats

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestEmptySampleIsSafe(t *testing.T) {
	s := NewSample()
	if s.Mean() != 0 || s.Stddev() != 0 || s.Min() != 0 || s.Max() != 0 ||
		s.Median() != 0 || s.Percentile(95) != 0 || s.CDFAt(1) != 0 {
		t.Fatal("empty sample statistics not all zero")
	}
	if s.CDF() != nil {
		t.Fatal("empty sample CDF not nil")
	}
}

func TestMeanStddev(t *testing.T) {
	s := NewSample(2, 4, 4, 4, 5, 5, 7, 9)
	if !almost(s.Mean(), 5) {
		t.Fatalf("Mean = %v, want 5", s.Mean())
	}
	if !almost(s.Stddev(), 2) {
		t.Fatalf("Stddev = %v, want 2", s.Stddev())
	}
}

func TestMinMax(t *testing.T) {
	s := NewSample(3, -1, 7, 0)
	if s.Min() != -1 || s.Max() != 7 {
		t.Fatalf("Min/Max = %v/%v", s.Min(), s.Max())
	}
}

func TestPercentile(t *testing.T) {
	s := NewSample(1, 2, 3, 4, 5)
	cases := []struct{ p, want float64 }{
		{0, 1}, {25, 2}, {50, 3}, {75, 4}, {100, 5}, {-5, 1}, {110, 5},
		{10, 1.4}, // interpolated
	}
	for _, c := range cases {
		if got := s.Percentile(c.p); !almost(got, c.want) {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestPercentileSingleValue(t *testing.T) {
	s := NewSample(42)
	for _, p := range []float64{0, 50, 95, 100} {
		if got := s.Percentile(p); got != 42 {
			t.Fatalf("Percentile(%v) = %v, want 42", p, got)
		}
	}
}

func TestAddInvalidatesSortCache(t *testing.T) {
	s := NewSample(5, 1)
	if s.Min() != 1 {
		t.Fatal("min before add wrong")
	}
	s.Add(-3)
	if s.Min() != -3 {
		t.Fatal("Add after sort did not refresh order")
	}
}

func TestCDF(t *testing.T) {
	s := NewSample(1, 2, 2, 3)
	pts := s.CDF()
	want := []CDFPoint{{1, 0.25}, {2, 0.75}, {3, 1.0}}
	if len(pts) != len(want) {
		t.Fatalf("CDF = %v, want %v", pts, want)
	}
	for i := range want {
		if pts[i].Value != want[i].Value || !almost(pts[i].Fraction, want[i].Fraction) {
			t.Fatalf("CDF[%d] = %v, want %v", i, pts[i], want[i])
		}
	}
}

func TestCDFAt(t *testing.T) {
	s := NewSample(1, 2, 2, 3)
	cases := []struct{ x, want float64 }{
		{0.5, 0}, {1, 0.25}, {2, 0.75}, {2.5, 0.75}, {3, 1}, {10, 1},
	}
	for _, c := range cases {
		if got := s.CDFAt(c.x); !almost(got, c.want) {
			t.Errorf("CDFAt(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestCDFAtMonotoneProperty(t *testing.T) {
	f := func(raw []float64, a, b float64) bool {
		vals := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				vals = append(vals, v)
			}
		}
		if len(vals) == 0 || math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		s := NewSample(vals...)
		if a > b {
			a, b = b, a
		}
		return s.CDFAt(a) <= s.CDFAt(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestValuesIsCopy(t *testing.T) {
	s := NewSample(1, 2, 3)
	v := s.Values()
	v[0] = 99
	if s.Values()[0] == 99 {
		t.Fatal("Values leaked internal slice")
	}
}

func TestSummarize(t *testing.T) {
	s := NewSample(1, 2, 3, 4, 5)
	sm := s.Summarize()
	if sm.N != 5 || !almost(sm.Mean, 3) || !almost(sm.P50, 3) || sm.Min != 1 || sm.Max != 5 {
		t.Fatalf("Summary = %+v", sm)
	}
	if !strings.Contains(sm.String(), "n=5") {
		t.Fatalf("Summary string: %q", sm.String())
	}
}

func TestSummaryStringEmpty(t *testing.T) {
	sm := NewSample().Summarize()
	if got := sm.String(); got != "n=0 empty" {
		t.Fatalf("empty Summary string = %q, want \"n=0 empty\"", got)
	}
	// A real all-zero sample is NOT empty and must keep its stats.
	zero := NewSample(0, 0).Summarize()
	if got := zero.String(); !strings.Contains(got, "n=2") || strings.Contains(got, "empty") {
		t.Fatalf("all-zero Summary string = %q", got)
	}
}

func TestRenderCDFEmpty(t *testing.T) {
	out := RenderCDF("gap", NewSample(), 4)
	if !strings.Contains(out, "gap (n=0 empty)") {
		t.Fatalf("empty RenderCDF output:\n%s", out)
	}
	if strings.Contains(out, "p25") || strings.Contains(out, "0.0000") {
		t.Fatalf("empty RenderCDF printed phantom quantiles:\n%s", out)
	}
}

func TestRenderCDF(t *testing.T) {
	s := NewSample(1, 2, 3, 4)
	out := RenderCDF("gap", s, 4)
	if !strings.Contains(out, "gap (n=4)") || !strings.Contains(out, "p100") {
		t.Fatalf("RenderCDF output:\n%s", out)
	}
	// Zero rows falls back to a default.
	if RenderCDF("x", s, 0) == "" {
		t.Fatal("RenderCDF with 0 rows produced nothing")
	}
}

func TestSeriesAndTable(t *testing.T) {
	a := &Series{Name: "legacy"}
	b := &Series{Name: "tlc"}
	xs := []float64{0, 100}
	a.AddPoint(0, 10)
	a.AddPoint(100, 20)
	b.AddPoint(0, 1)
	if a.Len() != 2 {
		t.Fatalf("Len = %d", a.Len())
	}
	out := Table("mbps", xs, a, b)
	if !strings.Contains(out, "legacy") || !strings.Contains(out, "tlc") {
		t.Fatalf("Table output:\n%s", out)
	}
	// Missing Y for second series renders a dash rather than panicking.
	if !strings.Contains(out, "-") {
		t.Fatalf("Table missing dash for short series:\n%s", out)
	}
}

func TestPercentileMatchesSortedIndexProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		vals := make([]float64, len(raw))
		for i, v := range raw {
			vals[i] = float64(v)
		}
		s := NewSample(vals...)
		sorted := append([]float64(nil), vals...)
		sort.Float64s(sorted)
		return s.Percentile(0) == sorted[0] && s.Percentile(100) == sorted[len(sorted)-1]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
