// Package stats provides the small statistical toolkit the experiment
// harness uses to reproduce the paper's CDFs, averages, and percentile
// claims (e.g. "95% of records have ≤7.7% error").
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Sample is a mutable collection of float64 observations.
type Sample struct {
	values []float64
	sorted bool
}

// NewSample returns a Sample pre-filled with the given values.
func NewSample(values ...float64) *Sample {
	s := &Sample{}
	s.Add(values...)
	return s
}

// Add appends observations to the sample.
func (s *Sample) Add(values ...float64) {
	s.values = append(s.values, values...)
	s.sorted = false
}

// Len returns the number of observations.
func (s *Sample) Len() int { return len(s.values) }

// Merge concatenates per-partition sample contributions into one
// Sample, strictly preserving the caller's part order and each part's
// insertion order. Sharded runs depend on this: contributions must
// merge in partition index order — never worker completion order — so
// a rendered CDF is byte-identical at any shard count. (Percentile
// and CDF sort lazily on read without mutating the parts.)
func Merge(parts ...*Sample) *Sample {
	out := &Sample{}
	for _, p := range parts {
		if p == nil {
			continue
		}
		out.values = append(out.values, p.values...)
	}
	return out
}

// Values returns a copy of the raw observations.
func (s *Sample) Values() []float64 {
	out := make([]float64, len(s.values))
	copy(out, s.values)
	return out
}

func (s *Sample) sort() {
	if !s.sorted {
		sort.Float64s(s.values)
		s.sorted = true
	}
}

// Mean returns the arithmetic mean, or 0 for an empty sample.
func (s *Sample) Mean() float64 {
	if len(s.values) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range s.values {
		sum += v
	}
	return sum / float64(len(s.values))
}

// Stddev returns the population standard deviation.
func (s *Sample) Stddev() float64 {
	n := len(s.values)
	if n == 0 {
		return 0
	}
	m := s.Mean()
	sum := 0.0
	for _, v := range s.values {
		d := v - m
		sum += d * d
	}
	return math.Sqrt(sum / float64(n))
}

// Min returns the smallest observation, or 0 for an empty sample.
func (s *Sample) Min() float64 {
	if len(s.values) == 0 {
		return 0
	}
	s.sort()
	return s.values[0]
}

// Max returns the largest observation, or 0 for an empty sample.
func (s *Sample) Max() float64 {
	if len(s.values) == 0 {
		return 0
	}
	s.sort()
	return s.values[len(s.values)-1]
}

// Percentile returns the p-th percentile (0 <= p <= 100) using linear
// interpolation between closest ranks.
func (s *Sample) Percentile(p float64) float64 {
	n := len(s.values)
	if n == 0 {
		return 0
	}
	s.sort()
	if p <= 0 {
		return s.values[0]
	}
	if p >= 100 {
		return s.values[n-1]
	}
	rank := p / 100 * float64(n-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s.values[lo]
	}
	frac := rank - float64(lo)
	return s.values[lo]*(1-frac) + s.values[hi]*frac
}

// Median returns the 50th percentile.
func (s *Sample) Median() float64 { return s.Percentile(50) }

// CDFPoint is one (value, cumulative fraction) point.
type CDFPoint struct {
	Value    float64
	Fraction float64 // in (0, 1]
}

// CDF returns the empirical CDF of the sample as sorted points. Ties
// collapse into a single point carrying the cumulative fraction.
func (s *Sample) CDF() []CDFPoint {
	n := len(s.values)
	if n == 0 {
		return nil
	}
	s.sort()
	var out []CDFPoint
	for i, v := range s.values {
		f := float64(i+1) / float64(n)
		if len(out) > 0 && out[len(out)-1].Value == v {
			out[len(out)-1].Fraction = f
			continue
		}
		out = append(out, CDFPoint{Value: v, Fraction: f})
	}
	return out
}

// CDFAt returns the empirical cumulative fraction of observations <= x.
func (s *Sample) CDFAt(x float64) float64 {
	n := len(s.values)
	if n == 0 {
		return 0
	}
	s.sort()
	i := sort.SearchFloat64s(s.values, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(n)
}

// Summary is a compact, printable statistical summary.
type Summary struct {
	N      int
	Mean   float64
	Stddev float64
	Min    float64
	P50    float64
	P95    float64
	Max    float64
}

// Summarize computes a Summary of the sample.
func (s *Sample) Summarize() Summary {
	return Summary{
		N:      s.Len(),
		Mean:   s.Mean(),
		Stddev: s.Stddev(),
		Min:    s.Min(),
		P50:    s.Median(),
		P95:    s.Percentile(95),
		Max:    s.Max(),
	}
}

// String renders the summary as a single table-friendly line. An
// empty sample says so explicitly instead of printing a row of
// phantom zeros that reads like a real all-zero measurement.
func (sm Summary) String() string {
	if sm.N == 0 {
		return "n=0 empty"
	}
	return fmt.Sprintf("n=%d mean=%.3f sd=%.3f min=%.3f p50=%.3f p95=%.3f max=%.3f",
		sm.N, sm.Mean, sm.Stddev, sm.Min, sm.P50, sm.P95, sm.Max)
}

// RenderCDF renders an ASCII CDF sparkline table with the given number
// of quantile rows, matching how the paper's CDF figures are read
// ("X% of samples are below V").
func RenderCDF(name string, s *Sample, rows int) string {
	if rows <= 0 {
		rows = 5
	}
	var b strings.Builder
	if s.Len() == 0 {
		fmt.Fprintf(&b, "%s (n=0 empty)\n", name)
		return b.String()
	}
	fmt.Fprintf(&b, "%s (n=%d)\n", name, s.Len())
	for i := 1; i <= rows; i++ {
		p := float64(i) / float64(rows) * 100
		fmt.Fprintf(&b, "  p%-5.1f %12.4f\n", p, s.Percentile(p))
	}
	return b.String()
}

// Series is an ordered (x, y) series used for the paper's line figures
// (gap vs background traffic, gap vs time, ...).
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// AddPoint appends a point to the series.
func (s *Series) AddPoint(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// Len returns the number of points.
func (s *Series) Len() int { return len(s.X) }

// Table renders one or more series that share X values as an aligned
// text table, one row per X.
func Table(header string, xs []float64, series ...*Series) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s", header)
	for _, s := range series {
		fmt.Fprintf(&b, " %16s", s.Name)
	}
	b.WriteByte('\n')
	for i, x := range xs {
		fmt.Fprintf(&b, "%-12.4g", x)
		for _, s := range series {
			if i < len(s.Y) {
				fmt.Fprintf(&b, " %16.4f", s.Y[i])
			} else {
				fmt.Fprintf(&b, " %16s", "-")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}
