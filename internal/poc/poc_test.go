package poc

import (
	"errors"
	"testing"
	"time"

	"tlc/internal/sim"
)

var (
	testEdgeKey *KeyPair
	testOpKey   *KeyPair
	testPlan    = Plan{TStart: 0, TEnd: int64(time.Hour), C: 0.5}
)

func init() {
	// Deterministic test keys; generating RSA keys per test is slow.
	rng := sim.NewRNG(1234)
	var err error
	if testEdgeKey, err = GenerateKeyPair(DefaultKeyBits, rng.Fork("edge")); err != nil {
		panic(err)
	}
	if testOpKey, err = GenerateKeyPair(DefaultKeyBits, rng.Fork("op")); err != nil {
		panic(err)
	}
}

// buildChain creates a complete operator-initiated negotiation chain:
// CDR(operator, xo) -> CDA(edge, xe) -> PoC(operator).
func buildChain(t *testing.T, xe, xo uint64) (*CDR, *CDA, *PoC) {
	t.Helper()
	rng := sim.NewRNG(99)
	cdr, err := BuildCDR(testPlan, RoleOperator, 0, xo, rng, testOpKey.Private)
	if err != nil {
		t.Fatal(err)
	}
	cda, err := BuildCDA(testPlan, RoleEdge, 0, xe, cdr, rng, testEdgeKey.Private)
	if err != nil {
		t.Fatal(err)
	}
	proof, err := BuildPoC(cda, testOpKey.Private)
	if err != nil {
		t.Fatal(err)
	}
	return cdr, cda, proof
}

func TestCDRRoundTripAndSignature(t *testing.T) {
	rng := sim.NewRNG(5)
	cdr, err := BuildCDR(testPlan, RoleOperator, 7, 123456, rng, testOpKey.Private)
	if err != nil {
		t.Fatal(err)
	}
	if err := cdr.Verify(testOpKey.Public); err != nil {
		t.Fatalf("self-verify: %v", err)
	}
	if err := cdr.Verify(testEdgeKey.Public); err == nil {
		t.Fatal("wrong key verified")
	}
	data, err := cdr.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var back CDR
	if err := back.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if back.Volume != 123456 || back.Seq != 7 || back.Role != RoleOperator ||
		!back.Plan.Equal(testPlan) || back.Nonce != cdr.Nonce {
		t.Fatalf("round trip mismatch: %+v", back)
	}
	if err := back.Verify(testOpKey.Public); err != nil {
		t.Fatalf("decoded CDR signature: %v", err)
	}
}

func TestCDRTamperDetected(t *testing.T) {
	rng := sim.NewRNG(6)
	cdr, err := BuildCDR(testPlan, RoleOperator, 0, 1000, rng, testOpKey.Private)
	if err != nil {
		t.Fatal(err)
	}
	cdr.Volume = 999999 // operator tries to inflate after signing
	if err := cdr.Verify(testOpKey.Public); err == nil {
		t.Fatal("tampered volume passed signature check")
	}
}

func TestCDARoundTrip(t *testing.T) {
	_, cda, _ := buildChain(t, 900, 1000)
	data, err := cda.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var back CDA
	if err := back.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if back.Volume != 900 || back.Peer.Volume != 1000 || back.Role != RoleEdge {
		t.Fatalf("round trip: %+v", back)
	}
	if err := back.Verify(testEdgeKey.Public); err != nil {
		t.Fatalf("decoded CDA signature: %v", err)
	}
	if err := back.Peer.Verify(testOpKey.Public); err != nil {
		t.Fatalf("embedded CDR signature: %v", err)
	}
}

func TestCDARejectsWrongPeerRole(t *testing.T) {
	rng := sim.NewRNG(8)
	cdr, err := BuildCDR(testPlan, RoleEdge, 0, 500, rng, testEdgeKey.Private)
	if err != nil {
		t.Fatal(err)
	}
	// An edge CDA embedding an *edge* CDR is a role-chain violation.
	if _, err := BuildCDA(testPlan, RoleEdge, 0, 400, cdr, rng, testEdgeKey.Private); err == nil {
		t.Fatal("role-chain violation accepted")
	}
}

func TestPoCRoundTripAndVerify(t *testing.T) {
	_, _, proof := buildChain(t, 900, 1000)
	data, err := proof.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var back PoC
	if err := back.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	v := NewVerifier(testEdgeKey.Public, testOpKey.Public)
	if err := v.Verify(&back, testPlan); err != nil {
		t.Fatalf("Algorithm 2 rejected a valid proof: %v", err)
	}
	// x = xe + c*(xo - xe) since xo > xe: 900 + 0.5*100 = 950.
	if back.X != 950 {
		t.Fatalf("X = %d, want 950", back.X)
	}
}

func TestVerifierRejectsReplay(t *testing.T) {
	_, _, proof := buildChain(t, 900, 1000)
	v := NewVerifier(testEdgeKey.Public, testOpKey.Public)
	if err := v.Verify(proof, testPlan); err != nil {
		t.Fatal(err)
	}
	if err := v.Verify(proof, testPlan); !errors.Is(err, ErrReplay) {
		t.Fatalf("replay returned %v, want ErrReplay", err)
	}
	// Stateless verification accepts it again.
	if err := VerifyStateless(proof, testPlan, testEdgeKey.Public, testOpKey.Public); err != nil {
		t.Fatalf("stateless verify: %v", err)
	}
}

func TestVerifierRejectsPlanMismatch(t *testing.T) {
	_, _, proof := buildChain(t, 900, 1000)
	v := NewVerifier(testEdgeKey.Public, testOpKey.Public)
	otherPlan := Plan{TStart: 0, TEnd: int64(2 * time.Hour), C: 0.5}
	if err := v.Verify(proof, otherPlan); !errors.Is(err, ErrPlanMismatch) {
		t.Fatalf("got %v, want ErrPlanMismatch", err)
	}
	otherC := Plan{TStart: 0, TEnd: int64(time.Hour), C: 0.25}
	if err := v.Verify(proof, otherC); !errors.Is(err, ErrPlanMismatch) {
		t.Fatalf("got %v, want ErrPlanMismatch (c)", err)
	}
}

func TestVerifierRejectsForgedX(t *testing.T) {
	_, _, proof := buildChain(t, 900, 1000)
	// A selfish operator inflates the settled volume and re-signs
	// with its own key — the volume recomputation catches it even
	// though the outer signature is valid.
	proof.X = 5000
	if err := proof.Sign(testOpKey.Private); err != nil {
		t.Fatal(err)
	}
	v := NewVerifier(testEdgeKey.Public, testOpKey.Public)
	if err := v.Verify(proof, testPlan); !errors.Is(err, ErrVolumeMismatch) {
		t.Fatalf("got %v, want ErrVolumeMismatch", err)
	}
}

func TestVerifierRejectsTamperedInnerClaim(t *testing.T) {
	_, _, proof := buildChain(t, 900, 1000)
	// Tamper with the edge's claim inside the chain; the edge's CDA
	// signature no longer matches.
	proof.CDA.Volume = 100
	proof.X = RoundVolume(0.5*float64(100) + 0.5*float64(1000))
	if err := proof.Sign(testOpKey.Private); err != nil {
		t.Fatal(err)
	}
	v := NewVerifier(testEdgeKey.Public, testOpKey.Public)
	if err := v.Verify(proof, testPlan); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("got %v, want ErrBadSignature", err)
	}
}

func TestVerifierRejectsNonceMismatch(t *testing.T) {
	_, _, proof := buildChain(t, 900, 1000)
	proof.NonceE[0] ^= 0xFF
	v := NewVerifier(testEdgeKey.Public, testOpKey.Public)
	if err := v.Verify(proof, testPlan); !errors.Is(err, ErrNonceMismatch) {
		t.Fatalf("got %v, want ErrNonceMismatch", err)
	}
}

func TestVerifierRejectsSequenceMismatch(t *testing.T) {
	rng := sim.NewRNG(17)
	cdr, err := BuildCDR(testPlan, RoleOperator, 3, 1000, rng, testOpKey.Private)
	if err != nil {
		t.Fatal(err)
	}
	cda, err := BuildCDA(testPlan, RoleEdge, 4, 900, cdr, rng, testEdgeKey.Private)
	if err != nil {
		t.Fatal(err)
	}
	proof, err := BuildPoC(cda, testOpKey.Private)
	if err != nil {
		t.Fatal(err)
	}
	v := NewVerifier(testEdgeKey.Public, testOpKey.Public)
	if err := v.Verify(proof, testPlan); !errors.Is(err, ErrSequenceMismatch) {
		t.Fatalf("got %v, want ErrSequenceMismatch", err)
	}
}

func TestEdgeInitiatedChainVerifies(t *testing.T) {
	// Either party can initiate (§5.3.2); here the edge sends the
	// first CDR and the operator replies with a CDA, so the edge
	// finishes the proof.
	rng := sim.NewRNG(21)
	cdr, err := BuildCDR(testPlan, RoleEdge, 0, 900, rng, testEdgeKey.Private)
	if err != nil {
		t.Fatal(err)
	}
	cda, err := BuildCDA(testPlan, RoleOperator, 0, 1000, cdr, rng, testOpKey.Private)
	if err != nil {
		t.Fatal(err)
	}
	proof, err := BuildPoC(cda, testEdgeKey.Private)
	if err != nil {
		t.Fatal(err)
	}
	if proof.Role != RoleEdge {
		t.Fatalf("finisher role = %v", proof.Role)
	}
	v := NewVerifier(testEdgeKey.Public, testOpKey.Public)
	if err := v.Verify(proof, testPlan); err != nil {
		t.Fatalf("edge-initiated proof rejected: %v", err)
	}
	if proof.X != 950 {
		t.Fatalf("X = %d, want 950", proof.X)
	}
}

func TestMessageSizesNearPaper(t *testing.T) {
	// Figure 17's overhead table: TLC CDR 199 B, CDA 398 B, PoC 796 B
	// with RSA-1024. Our binary encoding should land in the same
	// ballpark (the Java prototype pads more).
	cdr, cda, proof := buildChain(t, 900, 1000)
	sizes := map[string]struct {
		got  int
		want int
	}{}
	d1, _ := cdr.MarshalBinary()
	d2, _ := cda.MarshalBinary()
	d3, _ := proof.MarshalBinary()
	sizes["CDR"] = struct{ got, want int }{len(d1), 199}
	sizes["CDA"] = struct{ got, want int }{len(d2), 398}
	sizes["PoC"] = struct{ got, want int }{len(d3), 796}
	for name, s := range sizes {
		if s.got < s.want/2 || s.got > s.want*3/2 {
			t.Errorf("%s wire size %d bytes, paper reports %d — too far", name, s.got, s.want)
		}
		t.Logf("%s: %d bytes (paper: %d)", name, s.got, s.want)
	}
}

func TestRoundVolume(t *testing.T) {
	cases := []struct {
		in   float64
		want uint64
	}{{-5, 0}, {0, 0}, {1.4, 1}, {1.5, 2}, {1e9, 1e9}}
	for _, c := range cases {
		if got := RoundVolume(c.in); got != c.want {
			t.Errorf("RoundVolume(%v) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestUnmarshalGarbage(t *testing.T) {
	var cdr CDR
	if err := cdr.UnmarshalBinary([]byte{0xFF, 1, 2}); err == nil {
		t.Fatal("garbage CDR accepted")
	}
	var cda CDA
	if err := cda.UnmarshalBinary(nil); err == nil {
		t.Fatal("empty CDA accepted")
	}
	var p PoC
	if err := p.UnmarshalBinary([]byte{kindPoC}); err == nil {
		t.Fatal("truncated PoC accepted")
	}
	// Trailing bytes are rejected.
	good, _, _ := buildChain(t, 900, 1000)
	data, _ := good.MarshalBinary()
	if err := new(CDR).UnmarshalBinary(append(data, 0)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

func TestRoleHelpers(t *testing.T) {
	if RoleEdge.Other() != RoleOperator || RoleOperator.Other() != RoleEdge {
		t.Fatal("Other() wrong")
	}
	if RoleEdge.String() != "edge" || RoleOperator.String() != "operator" {
		t.Fatal("String() wrong")
	}
}

func TestPlanEqual(t *testing.T) {
	p := Plan{TStart: 1, TEnd: 2, C: 0.5}
	if !p.Equal(Plan{TStart: 1, TEnd: 2, C: 0.5}) {
		t.Fatal("equal plans differ")
	}
	if p.Equal(Plan{TStart: 1, TEnd: 3, C: 0.5}) || p.Equal(Plan{TStart: 1, TEnd: 2, C: 0.6}) {
		t.Fatal("different plans equal")
	}
}

func TestNonceUniqueness(t *testing.T) {
	rng := sim.NewRNG(55)
	seen := map[Nonce]bool{}
	for i := 0; i < 1000; i++ {
		n, err := NewNonce(rng)
		if err != nil {
			t.Fatal(err)
		}
		if seen[n] {
			t.Fatal("duplicate nonce")
		}
		seen[n] = true
	}
}
