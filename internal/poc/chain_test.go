package poc

import (
	"bytes"
	"crypto/rsa"
	"errors"
	"testing"

	"tlc/internal/core"
	"tlc/internal/sim"
)

var (
	testVendorKey  *KeyPair
	testVisitedKey *KeyPair
	testHomeKey    *KeyPair
)

func init() {
	rng := sim.NewRNG(5678)
	var err error
	if testVendorKey, err = GenerateKeyPair(DefaultKeyBits, rng.Fork("vendor")); err != nil {
		panic(err)
	}
	if testVisitedKey, err = GenerateKeyPair(DefaultKeyBits, rng.Fork("visited")); err != nil {
		panic(err)
	}
	if testHomeKey, err = GenerateKeyPair(DefaultKeyBits, rng.Fork("home")); err != nil {
		panic(err)
	}
}

// buildSegment runs one vendor-initiated bilateral settlement between
// claimant and operator key pairs: CDR(edge, xe) -> CDA(operator, xo)
// -> PoC finished by the claimant.
func buildSegment(tb testing.TB, plan Plan, rng *sim.RNG, claimant, operator *KeyPair, xe, xo uint64) *PoC {
	tb.Helper()
	cdr, err := BuildCDR(plan, RoleEdge, 0, xe, rng, claimant.Private)
	if err != nil {
		tb.Fatal(err)
	}
	cda, err := BuildCDA(plan, RoleOperator, 0, xo, cdr, rng, operator.Private)
	if err != nil {
		tb.Fatal(err)
	}
	proof, err := BuildPoC(cda, claimant.Private)
	if err != nil {
		tb.Fatal(err)
	}
	return proof
}

// buildTestChain assembles an honest single-relay roaming chain:
// vendor claims xe against the visited operator's xv, the visited
// operator countersigns the settlement and claims exactly X1 upstream
// against the home operator's xh.
func buildTestChain(tb testing.TB, seed int64, xe, xv, xh uint64) *Chain {
	tb.Helper()
	rng := sim.NewRNG(seed)
	seg1 := buildSegment(tb, testPlan, rng.Fork("seg1"), testVendorKey, testVisitedKey, xe, xv)
	cs, err := Countersign(seg1, rng.Fork("cs"), testVisitedKey.Private)
	if err != nil {
		tb.Fatal(err)
	}
	final := buildSegment(tb, testPlan, rng.Fork("seg2"), testVisitedKey, testHomeKey, cs.Relayed, xh)
	return &Chain{Links: []ChainLink{{Proof: *seg1, Endorse: *cs}}, Final: *final}
}

func chainVerifier() *ChainVerifier {
	return NewChainVerifier(testVendorKey.Public,
		[]*rsa.PublicKey{testVisitedKey.Public}, testHomeKey.Public)
}

func TestChainRoundTrip(t *testing.T) {
	ch := buildTestChain(t, 1, 1000, 900, 850)
	data, err := ch.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var back Chain
	if err := back.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	re, err := back.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, re) {
		t.Fatal("chain round trip not byte-identical")
	}
}

func TestChainVerifyHonest(t *testing.T) {
	ch := buildTestChain(t, 2, 1000, 900, 850)
	v := chainVerifier()
	if err := v.Verify(ch, testPlan); err != nil {
		t.Fatalf("honest chain rejected: %v", err)
	}
	// The chained charge follows Algorithm 1 twice.
	x1 := RoundVolume(core.Charge(testPlan.C, 1000, 900))
	if ch.Links[0].Proof.X != x1 {
		t.Fatalf("segment 1 X = %d, want %d", ch.Links[0].Proof.X, x1)
	}
	x2 := RoundVolume(core.Charge(testPlan.C, float64(x1), 850))
	if ch.Final.X != x2 {
		t.Fatalf("final X = %d, want %d", ch.Final.X, x2)
	}
	// Presenting the same chain twice is a replay.
	if err := v.Verify(ch, testPlan); !errors.Is(err, ErrReplay) {
		t.Fatalf("replayed chain: err = %v, want ErrReplay", err)
	}
}

func TestChainVerifyRejectsInflatedRelay(t *testing.T) {
	// The visited operator settles X1 with the vendor but claims twice
	// that upstream; the countersignature can restate whatever it wants
	// — either it contradicts the proof it binds (Relayed != X) or it
	// contradicts the upstream claim. Both die as ErrChainRelay.
	ch := buildTestChain(t, 3, 1000, 900, 850)
	rng := sim.NewRNG(33)
	x1 := ch.Links[0].Proof.X
	inflated := buildSegment(t, testPlan, rng, testVisitedKey, testHomeKey, 2*x1, 850)
	forged := &Chain{Links: ch.Links, Final: *inflated}
	if err := chainVerifier().Verify(forged, testPlan); !errors.Is(err, ErrChainRelay) {
		t.Fatalf("inflated upstream claim: err = %v, want ErrChainRelay", err)
	}

	// Insider variant: the visited operator re-countersigns with an
	// inflated Relayed to match its upstream claim. Its own signature
	// is genuine, but the endorsement now contradicts the vendor
	// segment's settled X.
	cs, err := Countersign(&ch.Links[0].Proof, rng, testVisitedKey.Private)
	if err != nil {
		t.Fatal(err)
	}
	cs.Relayed = 2 * x1
	if err := cs.Sign(testVisitedKey.Private); err != nil {
		t.Fatal(err)
	}
	forged = &Chain{
		Links: []ChainLink{{Proof: ch.Links[0].Proof, Endorse: *cs}},
		Final: *inflated,
	}
	if err := chainVerifier().Verify(forged, testPlan); !errors.Is(err, ErrChainRelay) {
		t.Fatalf("inflated countersignature: err = %v, want ErrChainRelay", err)
	}
}

func TestChainVerifyRejectsTamperedCountersig(t *testing.T) {
	ch := buildTestChain(t, 4, 1000, 900, 850)
	tampered := *ch
	tampered.Links = append([]ChainLink(nil), ch.Links...)
	sig := append([]byte(nil), ch.Links[0].Endorse.Signature...)
	sig[len(sig)/2] ^= 0x40
	tampered.Links[0].Endorse.Signature = sig
	if err := chainVerifier().Verify(&tampered, testPlan); !errors.Is(err, ErrCountersig) {
		t.Fatalf("tampered countersignature: err = %v, want ErrCountersig", err)
	}

	tampered.Links = append([]ChainLink(nil), ch.Links...)
	tampered.Links[0].Endorse.Digest[0] ^= 1
	if err := chainVerifier().Verify(&tampered, testPlan); !errors.Is(err, ErrChainDigest) {
		t.Fatalf("tampered digest: err = %v, want ErrChainDigest", err)
	}
}

func TestChainVerifyRejectsSwappedLink(t *testing.T) {
	// A proof from a different negotiation under the countersignature
	// of the genuine one: the digest binding catches the swap even
	// though both proofs verify bilaterally.
	ch := buildTestChain(t, 5, 1000, 900, 850)
	other := buildTestChain(t, 6, 1200, 1100, 1000)
	swapped := &Chain{
		Links: []ChainLink{{Proof: other.Links[0].Proof, Endorse: ch.Links[0].Endorse}},
		Final: ch.Final,
	}
	if err := chainVerifier().Verify(swapped, testPlan); !errors.Is(err, ErrChainDigest) {
		t.Fatalf("swapped link: err = %v, want ErrChainDigest", err)
	}
}

func TestChainVerifyRejectsReplayedLink(t *testing.T) {
	// A genuine link lifted from an already-settled chain into a fresh
	// one: every segment and countersignature verifies, the relayed
	// volumes line up, and only the verifier's replay set stops the
	// visited operator from billing the same vendor settlement twice.
	ch := buildTestChain(t, 7, 1000, 900, 850)
	v := chainVerifier()
	if err := v.Verify(ch, testPlan); err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(77)
	fresh := buildSegment(t, testPlan, rng, testVisitedKey, testHomeKey, ch.Links[0].Endorse.Relayed, 840)
	replay := &Chain{Links: ch.Links, Final: *fresh}
	if err := v.Verify(replay, testPlan); !errors.Is(err, ErrReplay) {
		t.Fatalf("replayed link: err = %v, want ErrReplay", err)
	}
	// A stateless verifier (fresh replay set) accepts it — the battery
	// and the ledger audit must therefore always verify statefully.
	if err := chainVerifier().Verify(replay, testPlan); err != nil {
		t.Fatalf("fresh verifier should accept the re-linked chain: %v", err)
	}
}

func TestChainVerifyRejectsDuplicateLink(t *testing.T) {
	// The same link pasted twice into one chain must fail even on a
	// fresh verifier: in-chain duplicates are checked before the
	// cross-call set. (Two relays in the topology to make room.)
	ch := buildTestChain(t, 8, 1000, 900, 850)
	dup := &Chain{Links: []ChainLink{ch.Links[0], ch.Links[0]}, Final: ch.Final}
	v := NewChainVerifier(testVendorKey.Public,
		[]*rsa.PublicKey{testVisitedKey.Public, testVisitedKey.Public}, testHomeKey.Public)
	err := v.Verify(dup, testPlan)
	if err == nil {
		t.Fatal("duplicate link verified")
	}
	// Duplicated links fail the relay-consistency walk (link 0's
	// Relayed vs link 1's claimant volume) or, if the volumes happen to
	// coincide, the in-chain duplicate check.
	if !errors.Is(err, ErrChainRelay) && !errors.Is(err, ErrReplay) {
		t.Fatalf("duplicate link: err = %v", err)
	}
}

func TestChainVerifyRejectsWrongLength(t *testing.T) {
	ch := buildTestChain(t, 9, 1000, 900, 850)
	v := chainVerifier()
	if err := v.Verify(&Chain{Final: ch.Final}, testPlan); !errors.Is(err, ErrChainLength) {
		t.Fatalf("empty chain: err = %v, want ErrChainLength", err)
	}
	long := &Chain{Links: []ChainLink{ch.Links[0], ch.Links[0]}, Final: ch.Final}
	if err := v.Verify(long, testPlan); !errors.Is(err, ErrChainLength) {
		t.Fatalf("chain longer than topology: err = %v, want ErrChainLength", err)
	}
}

func TestChainVerifyRejectsTruncatedChain(t *testing.T) {
	// Dropping the endorsed vendor segment and presenting only the
	// upstream settlement is the visited operator hiding its downstream
	// cost; the topology pins the link count.
	ch := buildTestChain(t, 10, 1000, 900, 850)
	data, err := (&Chain{Final: ch.Final}).MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var back Chain
	if err := back.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if err := chainVerifier().Verify(&back, testPlan); !errors.Is(err, ErrChainLength) {
		t.Fatalf("truncated chain: err = %v, want ErrChainLength", err)
	}
}
