package poc

import (
	"bytes"
	"testing"
	"time"

	"tlc/internal/core"
	"tlc/internal/sim"
)

// fuzzFixture is one canonical, genuinely signed proof chain built
// from deterministic keys, so every fuzz execution checks mutations
// against the same unforgeable original.
type fuzzFixture struct {
	plan      Plan
	edgeKeys  *KeyPair
	opKeys    *KeyPair
	proof     *PoC
	proofData []byte
}

func newFuzzFixture(tb testing.TB) *fuzzFixture {
	rng := sim.NewRNG(987)
	edgeKeys, err := GenerateKeyPair(DefaultKeyBits, rng.Fork("edge"))
	if err != nil {
		tb.Fatal(err)
	}
	opKeys, err := GenerateKeyPair(DefaultKeyBits, rng.Fork("op"))
	if err != nil {
		tb.Fatal(err)
	}
	plan := Plan{TStart: 0, TEnd: int64(time.Hour), C: 0.5}
	cdr, err := BuildCDR(plan, RoleEdge, 0, 1000, rng, edgeKeys.Private)
	if err != nil {
		tb.Fatal(err)
	}
	cda, err := BuildCDA(plan, RoleOperator, 0, RoundVolume(core.Charge(plan.C, 1000, 900)), cdr, rng, opKeys.Private)
	if err != nil {
		tb.Fatal(err)
	}
	// The operator accepted with volume = charge(xe, xo) directly, so
	// the recomputed X matches; what matters here is a chain that
	// verifies.
	proof, err := BuildPoC(cda, edgeKeys.Private)
	if err != nil {
		tb.Fatal(err)
	}
	data, err := proof.MarshalBinary()
	if err != nil {
		tb.Fatal(err)
	}
	if err := VerifyStateless(proof, plan, edgeKeys.Public, opKeys.Public); err != nil {
		tb.Fatalf("canonical proof does not verify: %v", err)
	}
	return &fuzzFixture{plan: plan, edgeKeys: edgeKeys, opKeys: opKeys, proof: proof, proofData: data}
}

// FuzzPoCVerify mutates marshalled PoC bytes. The oracle is RSA
// unforgeability end to end: any input that parses AND passes
// Algorithm 2 verification must be byte-identical (after
// re-marshalling) to the one genuine proof — no mutation of the
// signed chain, the nonces, the sequence numbers or the negotiated
// volume may ever verify.
func FuzzPoCVerify(f *testing.F) {
	fx := newFuzzFixture(f)

	f.Add(fx.proofData)
	// Structural seeds: flipped kind byte, truncations, bit flips in
	// the middle (CDA body) and at the tail (signature).
	kindFlip := append([]byte(nil), fx.proofData...)
	kindFlip[0] = 2
	f.Add(kindFlip)
	f.Add(fx.proofData[:len(fx.proofData)/2])
	mid := append([]byte(nil), fx.proofData...)
	mid[len(mid)/2] ^= 1
	f.Add(mid)
	tail := append([]byte(nil), fx.proofData...)
	tail[len(tail)-1] ^= 0x80
	f.Add(tail)
	f.Add([]byte{3})
	f.Add([]byte("not a proof at all"))

	f.Fuzz(func(t *testing.T, data []byte) {
		var p PoC
		if err := p.UnmarshalBinary(data); err != nil {
			return // unparseable: rejected before crypto, fine
		}
		if err := VerifyStateless(&p, fx.plan, fx.edgeKeys.Public, fx.opKeys.Public); err != nil {
			return // parsed but rejected: fine
		}
		// It verified. The only bytes allowed to verify are the
		// genuine proof's own (any trailing-garbage tolerance in the
		// decoder must still yield the canonical proof).
		re, err := p.MarshalBinary()
		if err != nil {
			t.Fatalf("verified proof fails to re-marshal: %v", err)
		}
		if !bytes.Equal(re, fx.proofData) {
			t.Fatalf("a mutated PoC verified:\n in  %x\n out %x", data, re)
		}
	})
}
