package poc

import (
	"bytes"
	"crypto/rsa"
	"testing"
)

// chainFuzzFixture builds the canonical honest chain once per fuzz
// run plus the interesting forgeries (swapped link, duplicate link,
// truncated chain) as structured seeds.
type chainFuzzFixture struct {
	chain     *Chain
	chainData []byte
	relays    []*rsa.PublicKey
}

func newChainFuzzFixture(tb testing.TB) *chainFuzzFixture {
	ch := buildTestChain(tb, 4242, 1000, 900, 850)
	data, err := ch.MarshalBinary()
	if err != nil {
		tb.Fatal(err)
	}
	relays := []*rsa.PublicKey{testVisitedKey.Public}
	if err := ChainVerifyStateless(ch, testPlan, testVendorKey.Public, relays, testHomeKey.Public); err != nil {
		tb.Fatalf("canonical chain does not verify: %v", err)
	}
	return &chainFuzzFixture{chain: ch, chainData: data, relays: relays}
}

func mustMarshalChain(tb testing.TB, ch *Chain) []byte {
	tb.Helper()
	data, err := ch.MarshalBinary()
	if err != nil {
		tb.Fatal(err)
	}
	return data
}

// FuzzChainVerify mutates marshalled roaming chains. The oracle is the
// same unforgeability contract as FuzzPoCVerify, lifted to chains: any
// input that parses AND passes full chain verification (fresh replay
// set) must re-marshal byte-identically to the one genuine chain. No
// truncation, link swap, duplicated countersignature, volume edit or
// signature bit flip may ever verify.
func FuzzChainVerify(f *testing.F) {
	fx := newChainFuzzFixture(f)

	f.Add(fx.chainData)
	// Truncated chain: the final settlement without its endorsed
	// vendor segment.
	f.Add(mustMarshalChain(f, &Chain{Final: fx.chain.Final}))
	// Swapped link: a foreign proof under the genuine countersignature.
	other := buildTestChain(f, 4343, 1200, 1100, 1000)
	f.Add(mustMarshalChain(f, &Chain{
		Links: []ChainLink{{Proof: other.Links[0].Proof, Endorse: fx.chain.Links[0].Endorse}},
		Final: fx.chain.Final,
	}))
	// Duplicate countersignature: the same endorsed link pasted twice.
	f.Add(mustMarshalChain(f, &Chain{
		Links: []ChainLink{fx.chain.Links[0], fx.chain.Links[0]},
		Final: fx.chain.Final,
	}))
	// Byte-level mutations: truncation, mid-body and tail bit flips,
	// bare kind byte, garbage.
	f.Add(fx.chainData[:len(fx.chainData)/2])
	mid := append([]byte(nil), fx.chainData...)
	mid[len(mid)/2] ^= 1
	f.Add(mid)
	tail := append([]byte(nil), fx.chainData...)
	tail[len(tail)-1] ^= 0x80
	f.Add(tail)
	f.Add([]byte{kindChain})
	f.Add([]byte("not a chain at all"))

	f.Fuzz(func(t *testing.T, data []byte) {
		var ch Chain
		if err := ch.UnmarshalBinary(data); err != nil {
			return // unparseable: rejected before crypto, fine
		}
		if err := ChainVerifyStateless(&ch, testPlan, testVendorKey.Public, fx.relays, testHomeKey.Public); err != nil {
			return // parsed but rejected: fine
		}
		re, err := ch.MarshalBinary()
		if err != nil {
			t.Fatalf("verified chain fails to re-marshal: %v", err)
		}
		if !bytes.Equal(re, fx.chainData) {
			t.Fatalf("a mutated chain verified:\n in  %x\n out %x", data, re)
		}
	})
}
