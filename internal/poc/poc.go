// Package poc implements TLC's publicly verifiable Proof-of-Charging
// (§5.3): the signed CDR/CDA/PoC message types, their deterministic
// binary encoding, the RSA key setup of §5.3.1, and the Algorithm 2
// public verification with nonce/sequence replay defence.
//
// The paper's prototype uses java.security RSA-1024; this package
// uses Go's crypto/rsa with the same default key size (configurable —
// see the key-size ablation bench).
package poc

import (
	"bytes"
	"crypto"
	"crypto/rand"
	"crypto/rsa"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// DefaultKeyBits matches the paper's RSA-1024 prototype.
const DefaultKeyBits = 1024

// KeyPair is one party's signing keys (K+, K-) from §5.3.1.
type KeyPair struct {
	Private *rsa.PrivateKey
	Public  *rsa.PublicKey
}

// GenerateKeyPair creates a key pair. Pass nil for cryptographically
// secure randomness; tests and the deterministic simulator pass a
// seeded reader.
func GenerateKeyPair(bits int, random io.Reader) (*KeyPair, error) {
	if bits == 0 {
		bits = DefaultKeyBits
	}
	if random == nil {
		random = rand.Reader
	}
	priv, err := rsa.GenerateKey(random, bits)
	if err != nil {
		return nil, fmt.Errorf("poc: generate key: %w", err)
	}
	return &KeyPair{Private: priv, Public: &priv.PublicKey}, nil
}

// Role identifies the signer of a message.
type Role uint8

const (
	// RoleEdge is the edge application vendor.
	RoleEdge Role = 1
	// RoleOperator is the cellular operator.
	RoleOperator Role = 2
	// RoleVisited is a visited operator relaying a roaming subscriber's
	// traffic. It never appears inside a bilateral CDR/CDA/PoC chain —
	// on the wire each settlement segment keeps the edge/operator role
	// pair — but it identifies the countersigner of a chain link.
	RoleVisited Role = 3
)

// Other returns the opposite role.
func (r Role) Other() Role {
	if r == RoleEdge {
		return RoleOperator
	}
	return RoleEdge
}

// String implements fmt.Stringer.
func (r Role) String() string {
	switch r {
	case RoleEdge:
		return "edge"
	case RoleOperator:
		return "operator"
	case RoleVisited:
		return "visited"
	default:
		return fmt.Sprintf("Role(%d)", uint8(r))
	}
}

// Plan is the public data-plan fragment bound into every message: the
// charging cycle T = (Tstart, Tend) in nanoseconds of simulated (or
// unix) time, and the lost-data weight c.
type Plan struct {
	TStart int64
	TEnd   int64
	C      float64
}

// Equal compares plans with exact cycle match and a small float
// tolerance on c.
func (p Plan) Equal(q Plan) bool {
	return p.TStart == q.TStart && p.TEnd == q.TEnd && math.Abs(p.C-q.C) < 1e-9
}

// NonceSize is the nonce length in bytes.
const NonceSize = 16

// Nonce is a random per-message value defending against replay.
type Nonce [NonceSize]byte

// NewNonce draws a nonce from the reader (crypto/rand by default).
func NewNonce(random io.Reader) (Nonce, error) {
	if random == nil {
		random = rand.Reader
	}
	var n Nonce
	if _, err := io.ReadFull(random, n[:]); err != nil {
		return Nonce{}, fmt.Errorf("poc: nonce: %w", err)
	}
	return n, nil
}

// Message kinds on the wire.
const (
	kindCDR byte = 1
	kindCDA byte = 2
	kindPoC byte = 3
)

// CDR is a signed charging data record: one party's usage claim for
// the cycle (§5.3.2). Compared with a plain 4G/5G CDR it carries the
// plan, a sequence number, a nonce, and the signer's signature.
type CDR struct {
	Plan      Plan
	Role      Role
	Seq       uint32
	Nonce     Nonce
	Volume    uint64 // claimed bytes
	Signature []byte
}

// CDA is a charging data acceptance: the sender accepts the peer's
// CDR, copies it, and signs both together with its own claim.
type CDA struct {
	Plan      Plan
	Role      Role
	Seq       uint32
	Nonce     Nonce
	Volume    uint64
	Peer      CDR // the accepted claim, signature included
	Signature []byte
}

// PoC is the proof of charging: the negotiated volume and the full
// CDA chain, signed by the finishing party. It therefore carries both
// parties' signatures and is unforgeable and undeniable.
type PoC struct {
	Plan      Plan
	Role      Role // the finishing signer
	Seq       uint32
	X         uint64 // negotiated charging volume (bytes)
	CDA       CDA
	NonceE    Nonce // ne, appended per §5.3.2's "…‖ne‖no"
	NonceO    Nonce
	Signature []byte
}

func putPlan(b *bytes.Buffer, p Plan) {
	var tmp [8]byte
	binary.BigEndian.PutUint64(tmp[:], uint64(p.TStart))
	b.Write(tmp[:])
	binary.BigEndian.PutUint64(tmp[:], uint64(p.TEnd))
	b.Write(tmp[:])
	binary.BigEndian.PutUint64(tmp[:], math.Float64bits(p.C))
	b.Write(tmp[:])
}

func getPlan(r *bytes.Reader) (Plan, error) {
	var tmp [24]byte
	if _, err := io.ReadFull(r, tmp[:]); err != nil {
		return Plan{}, err
	}
	return Plan{
		TStart: int64(binary.BigEndian.Uint64(tmp[0:8])),
		TEnd:   int64(binary.BigEndian.Uint64(tmp[8:16])),
		C:      math.Float64frombits(binary.BigEndian.Uint64(tmp[16:24])),
	}, nil
}

func putSig(b *bytes.Buffer, sig []byte) {
	var l [2]byte
	binary.BigEndian.PutUint16(l[:], uint16(len(sig)))
	b.Write(l[:])
	b.Write(sig)
}

func getSig(r *bytes.Reader) ([]byte, error) {
	var l [2]byte
	if _, err := io.ReadFull(r, l[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint16(l[:])
	if n > 4096 {
		return nil, errors.New("poc: unreasonable signature length")
	}
	sig := make([]byte, n)
	if _, err := io.ReadFull(r, sig); err != nil {
		return nil, err
	}
	return sig, nil
}

// payload serialises the signed portion of a CDR.
func (c *CDR) payload() []byte {
	var b bytes.Buffer
	b.WriteByte(kindCDR)
	putPlan(&b, c.Plan)
	b.WriteByte(byte(c.Role))
	var tmp [8]byte
	binary.BigEndian.PutUint32(tmp[:4], c.Seq)
	b.Write(tmp[:4])
	b.Write(c.Nonce[:])
	binary.BigEndian.PutUint64(tmp[:], c.Volume)
	b.Write(tmp[:])
	return b.Bytes()
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (c *CDR) MarshalBinary() ([]byte, error) {
	var b bytes.Buffer
	b.Write(c.payload())
	putSig(&b, c.Signature)
	return b.Bytes(), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (c *CDR) UnmarshalBinary(data []byte) error {
	r := bytes.NewReader(data)
	if err := c.decode(r); err != nil {
		return err
	}
	if r.Len() != 0 {
		return errors.New("poc: trailing bytes after CDR")
	}
	return nil
}

func (c *CDR) decode(r *bytes.Reader) error {
	kind, err := r.ReadByte()
	if err != nil {
		return err
	}
	if kind != kindCDR {
		return fmt.Errorf("poc: expected CDR, got kind %d", kind)
	}
	if c.Plan, err = getPlan(r); err != nil {
		return err
	}
	role, err := r.ReadByte()
	if err != nil {
		return err
	}
	c.Role = Role(role)
	var tmp [8]byte
	if _, err := io.ReadFull(r, tmp[:4]); err != nil {
		return err
	}
	c.Seq = binary.BigEndian.Uint32(tmp[:4])
	if _, err := io.ReadFull(r, c.Nonce[:]); err != nil {
		return err
	}
	if _, err := io.ReadFull(r, tmp[:]); err != nil {
		return err
	}
	c.Volume = binary.BigEndian.Uint64(tmp[:])
	c.Signature, err = getSig(r)
	return err
}

// Sign computes the sender's signature over the record.
func (c *CDR) Sign(key *rsa.PrivateKey) error {
	sig, err := signPayload(key, c.payload())
	if err != nil {
		return err
	}
	c.Signature = sig
	return nil
}

// Verify checks the signature against the signer's public key.
func (c *CDR) Verify(pub *rsa.PublicKey) error {
	return verifyPayload(pub, c.payload(), c.Signature)
}

// payload serialises the signed portion of a CDA (which embeds the
// peer's full CDR, signature included, per §5.3.2).
func (c *CDA) payload() ([]byte, error) {
	var b bytes.Buffer
	b.WriteByte(kindCDA)
	putPlan(&b, c.Plan)
	b.WriteByte(byte(c.Role))
	var tmp [8]byte
	binary.BigEndian.PutUint32(tmp[:4], c.Seq)
	b.Write(tmp[:4])
	b.Write(c.Nonce[:])
	binary.BigEndian.PutUint64(tmp[:], c.Volume)
	b.Write(tmp[:])
	peer, err := c.Peer.MarshalBinary()
	if err != nil {
		return nil, err
	}
	binary.BigEndian.PutUint32(tmp[:4], uint32(len(peer)))
	b.Write(tmp[:4])
	b.Write(peer)
	return b.Bytes(), nil
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (c *CDA) MarshalBinary() ([]byte, error) {
	p, err := c.payload()
	if err != nil {
		return nil, err
	}
	var b bytes.Buffer
	b.Write(p)
	putSig(&b, c.Signature)
	return b.Bytes(), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (c *CDA) UnmarshalBinary(data []byte) error {
	r := bytes.NewReader(data)
	if err := c.decode(r); err != nil {
		return err
	}
	if r.Len() != 0 {
		return errors.New("poc: trailing bytes after CDA")
	}
	return nil
}

func (c *CDA) decode(r *bytes.Reader) error {
	kind, err := r.ReadByte()
	if err != nil {
		return err
	}
	if kind != kindCDA {
		return fmt.Errorf("poc: expected CDA, got kind %d", kind)
	}
	if c.Plan, err = getPlan(r); err != nil {
		return err
	}
	role, err := r.ReadByte()
	if err != nil {
		return err
	}
	c.Role = Role(role)
	var tmp [8]byte
	if _, err := io.ReadFull(r, tmp[:4]); err != nil {
		return err
	}
	c.Seq = binary.BigEndian.Uint32(tmp[:4])
	if _, err := io.ReadFull(r, c.Nonce[:]); err != nil {
		return err
	}
	if _, err := io.ReadFull(r, tmp[:]); err != nil {
		return err
	}
	c.Volume = binary.BigEndian.Uint64(tmp[:])
	if _, err := io.ReadFull(r, tmp[:4]); err != nil {
		return err
	}
	peerLen := binary.BigEndian.Uint32(tmp[:4])
	if peerLen > 1<<16 {
		return errors.New("poc: unreasonable embedded CDR length")
	}
	peer := make([]byte, peerLen)
	if _, err := io.ReadFull(r, peer); err != nil {
		return err
	}
	if err := c.Peer.UnmarshalBinary(peer); err != nil {
		return fmt.Errorf("poc: embedded CDR: %w", err)
	}
	c.Signature, err = getSig(r)
	return err
}

// Sign computes the sender's signature over the acceptance.
func (c *CDA) Sign(key *rsa.PrivateKey) error {
	p, err := c.payload()
	if err != nil {
		return err
	}
	sig, err := signPayload(key, p)
	if err != nil {
		return err
	}
	c.Signature = sig
	return nil
}

// Verify checks the signature against the signer's public key.
func (c *CDA) Verify(pub *rsa.PublicKey) error {
	p, err := c.payload()
	if err != nil {
		return err
	}
	return verifyPayload(pub, p, c.Signature)
}

// payload serialises the signed portion of a PoC.
func (p *PoC) payload() ([]byte, error) {
	var b bytes.Buffer
	b.WriteByte(kindPoC)
	putPlan(&b, p.Plan)
	b.WriteByte(byte(p.Role))
	var tmp [8]byte
	binary.BigEndian.PutUint32(tmp[:4], p.Seq)
	b.Write(tmp[:4])
	binary.BigEndian.PutUint64(tmp[:], p.X)
	b.Write(tmp[:])
	cda, err := p.CDA.MarshalBinary()
	if err != nil {
		return nil, err
	}
	binary.BigEndian.PutUint32(tmp[:4], uint32(len(cda)))
	b.Write(tmp[:4])
	b.Write(cda)
	return b.Bytes(), nil
}

// MarshalBinary implements encoding.BinaryMarshaler. The two nonces
// ride outside the signed body, as the paper appends "‖ne‖no".
func (p *PoC) MarshalBinary() ([]byte, error) {
	body, err := p.payload()
	if err != nil {
		return nil, err
	}
	var b bytes.Buffer
	b.Write(body)
	putSig(&b, p.Signature)
	b.Write(p.NonceE[:])
	b.Write(p.NonceO[:])
	return b.Bytes(), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (p *PoC) UnmarshalBinary(data []byte) error {
	r := bytes.NewReader(data)
	kind, err := r.ReadByte()
	if err != nil {
		return err
	}
	if kind != kindPoC {
		return fmt.Errorf("poc: expected PoC, got kind %d", kind)
	}
	if p.Plan, err = getPlan(r); err != nil {
		return err
	}
	role, err := r.ReadByte()
	if err != nil {
		return err
	}
	p.Role = Role(role)
	var tmp [8]byte
	if _, err := io.ReadFull(r, tmp[:4]); err != nil {
		return err
	}
	p.Seq = binary.BigEndian.Uint32(tmp[:4])
	if _, err := io.ReadFull(r, tmp[:]); err != nil {
		return err
	}
	p.X = binary.BigEndian.Uint64(tmp[:])
	if _, err := io.ReadFull(r, tmp[:4]); err != nil {
		return err
	}
	cdaLen := binary.BigEndian.Uint32(tmp[:4])
	if cdaLen > 1<<18 {
		return errors.New("poc: unreasonable embedded CDA length")
	}
	cda := make([]byte, cdaLen)
	if _, err := io.ReadFull(r, cda); err != nil {
		return err
	}
	if err := p.CDA.UnmarshalBinary(cda); err != nil {
		return fmt.Errorf("poc: embedded CDA: %w", err)
	}
	if p.Signature, err = getSig(r); err != nil {
		return err
	}
	if _, err := io.ReadFull(r, p.NonceE[:]); err != nil {
		return err
	}
	if _, err := io.ReadFull(r, p.NonceO[:]); err != nil {
		return err
	}
	if r.Len() != 0 {
		return errors.New("poc: trailing bytes after PoC")
	}
	return nil
}

// Sign computes the finishing party's signature over the proof.
func (p *PoC) Sign(key *rsa.PrivateKey) error {
	body, err := p.payload()
	if err != nil {
		return err
	}
	sig, err := signPayload(key, body)
	if err != nil {
		return err
	}
	p.Signature = sig
	return nil
}

// VerifySignature checks the outer signature against the finishing
// party's public key. Full Algorithm 2 verification lives in Verifier.
func (p *PoC) VerifySignature(pub *rsa.PublicKey) error {
	body, err := p.payload()
	if err != nil {
		return err
	}
	return verifyPayload(pub, body, p.Signature)
}

func signPayload(key *rsa.PrivateKey, payload []byte) ([]byte, error) {
	digest := sha256.Sum256(payload)
	sig, err := rsa.SignPKCS1v15(nil, key, crypto.SHA256, digest[:])
	if err != nil {
		return nil, fmt.Errorf("poc: sign: %w", err)
	}
	return sig, nil
}

func verifyPayload(pub *rsa.PublicKey, payload, sig []byte) error {
	digest := sha256.Sum256(payload)
	if err := rsa.VerifyPKCS1v15(pub, crypto.SHA256, digest[:], sig); err != nil {
		return fmt.Errorf("poc: bad signature: %w", err)
	}
	return nil
}
