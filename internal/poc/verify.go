package poc

import (
	"crypto/rsa"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"tlc/internal/core"
)

// Errors returned by Algorithm 2 verification. They are distinct so a
// court/FCC verifier can report *why* a proof fails.
var (
	ErrPlanMismatch     = errors.New("poc: inconsistent data plan")
	ErrBadSignature     = errors.New("poc: signature verification failed")
	ErrRoleChain        = errors.New("poc: message role chain inconsistent")
	ErrNonceMismatch    = errors.New("poc: nonce mismatch")
	ErrSequenceMismatch = errors.New("poc: sequence numbers differ")
	ErrVolumeMismatch   = errors.New("poc: negotiated volume inconsistent with claims")
	ErrReplay           = errors.New("poc: proof already verified (replay)")
)

// RoundVolume converts a negotiated float volume into the wire's
// integer byte count; builder and verifier must round identically.
func RoundVolume(x float64) uint64 {
	if x <= 0 {
		return 0
	}
	return uint64(math.Round(x))
}

// BuildCDR assembles and signs a usage claim.
func BuildCDR(plan Plan, role Role, seq uint32, volume uint64, random io.Reader, key *rsa.PrivateKey) (*CDR, error) {
	nonce, err := NewNonce(random)
	if err != nil {
		return nil, err
	}
	c := &CDR{Plan: plan, Role: role, Seq: seq, Nonce: nonce, Volume: volume}
	if err := c.Sign(key); err != nil {
		return nil, err
	}
	return c, nil
}

// BuildCDA assembles and signs an acceptance of the peer's CDR
// together with the sender's own claim.
func BuildCDA(plan Plan, role Role, seq uint32, volume uint64, peer *CDR, random io.Reader, key *rsa.PrivateKey) (*CDA, error) {
	if peer.Role != role.Other() {
		return nil, fmt.Errorf("%w: CDA by %v embedding CDR by %v", ErrRoleChain, role, peer.Role)
	}
	nonce, err := NewNonce(random)
	if err != nil {
		return nil, err
	}
	c := &CDA{Plan: plan, Role: role, Seq: seq, Nonce: nonce, Volume: volume, Peer: *peer}
	if err := c.Sign(key); err != nil {
		return nil, err
	}
	return c, nil
}

// BuildPoC finalises a negotiation: the finishing party accepts the
// peer's CDA, computes the settled volume with Algorithm 1 line 8,
// and signs the whole chain.
func BuildPoC(cda *CDA, key *rsa.PrivateKey) (*PoC, error) {
	finisher := cda.Role.Other()
	xe, xo := claimPair(cda)
	x := RoundVolume(core.Charge(cda.Plan.C, float64(xe), float64(xo)))
	p := &PoC{
		Plan: cda.Plan,
		Role: finisher,
		Seq:  cda.Seq,
		X:    x,
		CDA:  *cda,
	}
	p.NonceE, p.NonceO = noncePair(cda)
	if err := p.Sign(key); err != nil {
		return nil, err
	}
	return p, nil
}

// claimPair extracts (xe, xo) from a CDA chain regardless of which
// party initiated the negotiation.
func claimPair(cda *CDA) (xe, xo uint64) {
	if cda.Role == RoleEdge {
		return cda.Volume, cda.Peer.Volume
	}
	return cda.Peer.Volume, cda.Volume
}

// noncePair extracts (ne, no) from a CDA chain.
func noncePair(cda *CDA) (ne, no Nonce) {
	if cda.Role == RoleEdge {
		return cda.Nonce, cda.Peer.Nonce
	}
	return cda.Peer.Nonce, cda.Nonce
}

// Verifier performs Algorithm 2 public verification. Any independent
// third party (FCC, a court, an MVNO — §5.3.4) holding the two public
// keys and the published plan can run it without auditing the actual
// data transfer.
type Verifier struct {
	EdgeKey     *rsa.PublicKey
	OperatorKey *rsa.PublicKey

	// seen defends against replays of outdated PoCs across calls.
	seen map[[32]byte]bool
}

// NewVerifier returns a verifier for the two parties' public keys.
func NewVerifier(edge, operator *rsa.PublicKey) *Verifier {
	return &Verifier{EdgeKey: edge, OperatorKey: operator, seen: make(map[[32]byte]bool)}
}

func (v *Verifier) keyFor(r Role) (*rsa.PublicKey, error) {
	switch r {
	case RoleEdge:
		return v.EdgeKey, nil
	case RoleOperator:
		return v.OperatorKey, nil
	default:
		return nil, fmt.Errorf("%w: unknown role %v", ErrRoleChain, r)
	}
}

// Verify runs Algorithm 2 against the proof: decrypt/decode, check
// plan coherence, check nonces and sequence numbers, recompute the
// negotiated volume, and reject replays. A nil error means the
// charging is consistent with the negotiation.
func (v *Verifier) Verify(p *PoC, plan Plan) error {
	// Lines 2-4: consistent data plan across the chain and with the
	// published (T, c).
	if !p.Plan.Equal(plan) || !p.CDA.Plan.Equal(plan) || !p.CDA.Peer.Plan.Equal(plan) {
		return ErrPlanMismatch
	}

	// Role chain: the PoC signer accepted a CDA from the other
	// party, which embedded the signer's original CDR.
	if p.CDA.Role != p.Role.Other() || p.CDA.Peer.Role != p.Role {
		return ErrRoleChain
	}

	// Signatures, outermost in: PoC by the finisher, CDA by the
	// other party, embedded CDR by the finisher.
	outerKey, err := v.keyFor(p.Role)
	if err != nil {
		return err
	}
	innerKey, err := v.keyFor(p.CDA.Role)
	if err != nil {
		return err
	}
	if err := p.VerifySignature(outerKey); err != nil {
		return fmt.Errorf("%w (PoC)", ErrBadSignature)
	}
	if err := p.CDA.Verify(innerKey); err != nil {
		return fmt.Errorf("%w (CDA)", ErrBadSignature)
	}
	if err := p.CDA.Peer.Verify(outerKey); err != nil {
		return fmt.Errorf("%w (CDR)", ErrBadSignature)
	}

	// Line 5: nonce coherence (n′e = PoC.ne, n′o = PoC.no) and
	// sequence agreement (se = so).
	ne, no := noncePair(&p.CDA)
	if ne != p.NonceE || no != p.NonceO {
		return ErrNonceMismatch
	}
	if p.CDA.Seq != p.CDA.Peer.Seq {
		return ErrSequenceMismatch
	}

	// Line 8: recompute x′ from the embedded claims.
	xe, xo := claimPair(&p.CDA)
	want := RoundVolume(core.Charge(plan.C, float64(xe), float64(xo)))
	if want != p.X {
		return ErrVolumeMismatch
	}

	// Replay defence across verification requests.
	h := replayKey(p)
	if v.seen[h] {
		return ErrReplay
	}
	v.seen[h] = true
	return nil
}

// VerifyStateless runs Algorithm 2 without the cross-call replay set;
// it suits bulk re-verification of an archive.
func VerifyStateless(p *PoC, plan Plan, edge, operator *rsa.PublicKey) error {
	v := &Verifier{EdgeKey: edge, OperatorKey: operator, seen: map[[32]byte]bool{}}
	return v.Verify(p, plan)
}

func replayKey(p *PoC) [32]byte {
	var b [NonceSize*2 + 16]byte
	copy(b[:NonceSize], p.NonceE[:])
	copy(b[NonceSize:2*NonceSize], p.NonceO[:])
	binary.BigEndian.PutUint64(b[2*NonceSize:], uint64(p.Plan.TStart))
	binary.BigEndian.PutUint64(b[2*NonceSize+8:], uint64(p.Plan.TEnd))
	return sha256.Sum256(b[:])
}
