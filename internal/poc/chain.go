package poc

import (
	"bytes"
	"crypto/rsa"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Roaming extends the bilateral proof of §5.3 to the three-party
// topology of a roaming subscriber: the edge vendor settles with the
// visited operator, the visited operator countersigns that settlement
// and relays the charged volume upstream, and the home operator
// settles the relayed claim. The chain ties the segments together so
// the home operator (or any third party holding the public keys) can
// verify the whole path without trusting the visited operator:
//
//	vendor ──PoC₁── visited ──countersig(PoC₁)──┐
//	                visited ──PoC₂── home        │ Chain{[{PoC₁,CS₁}], PoC₂}
//
// Each settlement segment is an ordinary bilateral PoC (the relay
// plays the wire role of the claimant upstream and of the operator
// downstream), so Algorithm 2 verifies every segment unchanged. What
// the chain adds is the glue the relay cannot forge: a countersignature
// binding the downstream proof by digest, and the invariant that the
// volume claimed upstream equals the volume settled downstream.

// Message kinds for the chain extension (bilateral kinds are 1-3).
const (
	kindCountersig byte = 4
	kindChain      byte = 5
)

// MaxChainLinks bounds the relay depth of a chain. Real roaming paths
// have one visited operator; the codec allows a few more for nested
// wholesale agreements but refuses absurd chains outright.
const MaxChainLinks = 8

// Errors specific to chain verification. Segment-level failures keep
// their Algorithm 2 identities (ErrBadSignature, ErrPlanMismatch, …).
var (
	// ErrCountersig means a relay's countersignature did not verify
	// under the relay's public key.
	ErrCountersig = errors.New("poc: countersignature verification failed")
	// ErrChainDigest means a countersignature does not bind the proof
	// it rides with — the link was reassembled from mismatched parts.
	ErrChainDigest = errors.New("poc: countersignature digest does not match proof")
	// ErrChainRelay means the volume claimed upstream differs from the
	// volume settled (and countersigned) downstream — the relay
	// inflated or deflated the traffic it forwarded.
	ErrChainRelay = errors.New("poc: relayed volume inconsistent across chain")
	// ErrChainLength means the chain's link count does not match the
	// verifier's relay topology (or exceeds MaxChainLinks).
	ErrChainLength = errors.New("poc: chain length inconsistent with topology")
)

// Countersig is a relay's endorsement of a downstream settlement: it
// binds the downstream PoC by digest and states the volume the relay
// carries upstream, which must equal the proof's settled X. The home
// operator accepts an upstream claim only when it arrives endorsed.
type Countersig struct {
	Plan      Plan
	Seq       uint32
	Relayed   uint64   // volume claimed upstream; must equal the bound proof's X
	Digest    [32]byte // SHA-256 of the countersigned PoC's marshaled bytes
	Nonce     Nonce
	Signature []byte
}

// payload serialises the signed portion of a countersignature.
func (c *Countersig) payload() []byte {
	var b bytes.Buffer
	b.WriteByte(kindCountersig)
	putPlan(&b, c.Plan)
	var tmp [8]byte
	binary.BigEndian.PutUint32(tmp[:4], c.Seq)
	b.Write(tmp[:4])
	binary.BigEndian.PutUint64(tmp[:], c.Relayed)
	b.Write(tmp[:])
	b.Write(c.Digest[:])
	b.Write(c.Nonce[:])
	return b.Bytes()
}

// Sign computes the relay's signature over the endorsement.
func (c *Countersig) Sign(key *rsa.PrivateKey) error {
	sig, err := signPayload(key, c.payload())
	if err != nil {
		return err
	}
	c.Signature = sig
	return nil
}

// Verify checks the signature against the relay's public key.
func (c *Countersig) Verify(pub *rsa.PublicKey) error {
	return verifyPayload(pub, c.payload(), c.Signature)
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (c *Countersig) MarshalBinary() ([]byte, error) {
	var b bytes.Buffer
	b.Write(c.payload())
	putSig(&b, c.Signature)
	return b.Bytes(), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (c *Countersig) UnmarshalBinary(data []byte) error {
	r := bytes.NewReader(data)
	kind, err := r.ReadByte()
	if err != nil {
		return err
	}
	if kind != kindCountersig {
		return fmt.Errorf("poc: expected countersignature, got kind %d", kind)
	}
	if c.Plan, err = getPlan(r); err != nil {
		return err
	}
	var tmp [8]byte
	if _, err := io.ReadFull(r, tmp[:4]); err != nil {
		return err
	}
	c.Seq = binary.BigEndian.Uint32(tmp[:4])
	if _, err := io.ReadFull(r, tmp[:]); err != nil {
		return err
	}
	c.Relayed = binary.BigEndian.Uint64(tmp[:])
	if _, err := io.ReadFull(r, c.Digest[:]); err != nil {
		return err
	}
	if _, err := io.ReadFull(r, c.Nonce[:]); err != nil {
		return err
	}
	if c.Signature, err = getSig(r); err != nil {
		return err
	}
	if r.Len() != 0 {
		return errors.New("poc: trailing bytes after countersignature")
	}
	return nil
}

// ProofDigest is the digest a countersignature binds: SHA-256 over the
// proof's full marshaled bytes (signature and nonces included), so any
// re-signing or nonce swap breaks the binding.
func ProofDigest(p *PoC) ([32]byte, error) {
	raw, err := p.MarshalBinary()
	if err != nil {
		return [32]byte{}, err
	}
	return sha256.Sum256(raw), nil
}

// Countersign builds a relay's endorsement of the downstream proof p:
// the relayed volume is exactly the settled X, the digest binds the
// proof bytes, and the relay signs both.
func Countersign(p *PoC, random io.Reader, key *rsa.PrivateKey) (*Countersig, error) {
	digest, err := ProofDigest(p)
	if err != nil {
		return nil, err
	}
	nonce, err := NewNonce(random)
	if err != nil {
		return nil, err
	}
	c := &Countersig{Plan: p.Plan, Seq: p.Seq, Relayed: p.X, Digest: digest, Nonce: nonce}
	if err := c.Sign(key); err != nil {
		return nil, err
	}
	return c, nil
}

// ChainLink pairs a downstream settlement with the relay's
// endorsement of it.
type ChainLink struct {
	Proof   PoC
	Endorse Countersig
}

// Chain is the full roaming settlement: one link per relay hop,
// downstream first, then the final settlement with the home operator.
// Chain.Final.X is what the subscriber is billed.
type Chain struct {
	Links []ChainLink
	Final PoC
}

// chainPartCap bounds each embedded marshaled part. A PoC embeds a CDA
// capped at 1<<18, so 1<<19 is generous without being unbounded.
const chainPartCap = 1 << 19

func putPart(b *bytes.Buffer, part []byte) {
	var tmp [4]byte
	binary.BigEndian.PutUint32(tmp[:], uint32(len(part)))
	b.Write(tmp[:])
	b.Write(part)
}

func getPart(r *bytes.Reader) ([]byte, error) {
	var tmp [4]byte
	if _, err := io.ReadFull(r, tmp[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(tmp[:])
	if n > chainPartCap {
		return nil, errors.New("poc: unreasonable chain part length")
	}
	part := make([]byte, n)
	if _, err := io.ReadFull(r, part); err != nil {
		return nil, err
	}
	return part, nil
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (ch *Chain) MarshalBinary() ([]byte, error) {
	if len(ch.Links) > MaxChainLinks {
		return nil, ErrChainLength
	}
	var b bytes.Buffer
	b.WriteByte(kindChain)
	var tmp [4]byte
	binary.BigEndian.PutUint32(tmp[:], uint32(len(ch.Links)))
	b.Write(tmp[:])
	for i := range ch.Links {
		proof, err := ch.Links[i].Proof.MarshalBinary()
		if err != nil {
			return nil, err
		}
		putPart(&b, proof)
		cs, err := ch.Links[i].Endorse.MarshalBinary()
		if err != nil {
			return nil, err
		}
		putPart(&b, cs)
	}
	final, err := ch.Final.MarshalBinary()
	if err != nil {
		return nil, err
	}
	putPart(&b, final)
	return b.Bytes(), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler. It never
// panics on arbitrary input — FuzzChainVerify holds it to that.
func (ch *Chain) UnmarshalBinary(data []byte) error {
	r := bytes.NewReader(data)
	kind, err := r.ReadByte()
	if err != nil {
		return err
	}
	if kind != kindChain {
		return fmt.Errorf("poc: expected chain, got kind %d", kind)
	}
	var tmp [4]byte
	if _, err := io.ReadFull(r, tmp[:]); err != nil {
		return err
	}
	n := binary.BigEndian.Uint32(tmp[:])
	if n > MaxChainLinks {
		return ErrChainLength
	}
	ch.Links = make([]ChainLink, n)
	for i := range ch.Links {
		proof, err := getPart(r)
		if err != nil {
			return err
		}
		if err := ch.Links[i].Proof.UnmarshalBinary(proof); err != nil {
			return fmt.Errorf("poc: chain link %d proof: %w", i, err)
		}
		cs, err := getPart(r)
		if err != nil {
			return err
		}
		if err := ch.Links[i].Endorse.UnmarshalBinary(cs); err != nil {
			return fmt.Errorf("poc: chain link %d countersignature: %w", i, err)
		}
	}
	final, err := getPart(r)
	if err != nil {
		return err
	}
	if err := ch.Final.UnmarshalBinary(final); err != nil {
		return fmt.Errorf("poc: chain final proof: %w", err)
	}
	if r.Len() != 0 {
		return errors.New("poc: trailing bytes after chain")
	}
	return nil
}

// ChainVerifier verifies full roaming chains against a fixed topology:
// the vendor's key, the relay keys in downstream-to-upstream order
// (one visited operator in the common case), and the home operator's
// key. Like Verifier it keeps a replay set across calls, so a chain —
// or any single link of one — presented twice is rejected.
type ChainVerifier struct {
	VendorKey *rsa.PublicKey
	RelayKeys []*rsa.PublicKey
	HomeKey   *rsa.PublicKey

	seen map[[32]byte]bool
}

// NewChainVerifier returns a verifier for the given topology.
func NewChainVerifier(vendor *rsa.PublicKey, relays []*rsa.PublicKey, home *rsa.PublicKey) *ChainVerifier {
	return &ChainVerifier{
		VendorKey: vendor,
		RelayKeys: relays,
		HomeKey:   home,
		seen:      make(map[[32]byte]bool),
	}
}

// claimantVolume extracts the edge-side (claimant) volume of a
// settlement segment — the number the upstream relay put on the wire
// as its own usage claim.
func claimantVolume(p *PoC) uint64 {
	xe, _ := claimPair(&p.CDA)
	return xe
}

// Verify checks a roaming chain end to end:
//
//   - the link count matches the relay topology;
//   - every settlement segment passes Algorithm 2 under the keys of
//     the two parties that negotiated it;
//   - every countersignature verifies under its relay's key, binds its
//     segment's proof by digest, and restates that proof's plan,
//     sequence, and settled volume exactly;
//   - the volume each relay claimed upstream equals the volume it
//     countersigned downstream (no inflation across the handover);
//   - no link or final proof has been presented to this verifier
//     before, in this chain or any earlier one.
//
// A nil error means every party's charge is consistent with what its
// downstream neighbour provably settled.
func (v *ChainVerifier) Verify(ch *Chain, plan Plan) error {
	if len(ch.Links) == 0 || len(ch.Links) > MaxChainLinks || len(ch.Links) != len(v.RelayKeys) {
		return ErrChainLength
	}

	// Collect replay keys first: the whole chain must be judged before
	// any part of it is marked seen, so a failed chain does not burn
	// its own links.
	var marks [][32]byte

	for i := range ch.Links {
		link := &ch.Links[i]
		claimant := v.VendorKey
		if i > 0 {
			claimant = v.RelayKeys[i-1]
		}
		relay := v.RelayKeys[i]
		if err := VerifyStateless(&link.Proof, plan, claimant, relay); err != nil {
			return fmt.Errorf("chain link %d: %w", i, err)
		}
		digest, err := ProofDigest(&link.Proof)
		if err != nil {
			return err
		}
		cs := &link.Endorse
		if cs.Digest != digest {
			return fmt.Errorf("chain link %d: %w", i, ErrChainDigest)
		}
		if !cs.Plan.Equal(plan) {
			return fmt.Errorf("chain link %d countersignature: %w", i, ErrPlanMismatch)
		}
		if cs.Seq != link.Proof.Seq {
			return fmt.Errorf("chain link %d countersignature: %w", i, ErrSequenceMismatch)
		}
		if cs.Relayed != link.Proof.X {
			return fmt.Errorf("chain link %d: %w", i, ErrChainRelay)
		}
		if err := cs.Verify(relay); err != nil {
			return fmt.Errorf("chain link %d: %w", i, ErrCountersig)
		}
		// The next segment's claimant must claim exactly what this
		// relay countersigned.
		if i+1 < len(ch.Links) {
			if claimantVolume(&ch.Links[i+1].Proof) != cs.Relayed {
				return fmt.Errorf("chain link %d->%d: %w", i, i+1, ErrChainRelay)
			}
		}
		marks = append(marks, digest)
	}

	last := len(ch.Links) - 1
	if err := VerifyStateless(&ch.Final, plan, v.RelayKeys[last], v.HomeKey); err != nil {
		return fmt.Errorf("chain final: %w", err)
	}
	if claimantVolume(&ch.Final) != ch.Links[last].Endorse.Relayed {
		return fmt.Errorf("chain final: %w", ErrChainRelay)
	}
	marks = append(marks, replayKey(&ch.Final))

	// Replay defence: within the chain (a link pasted twice) and
	// across calls (a link or final proof lifted from an earlier
	// chain).
	fresh := make(map[[32]byte]bool, len(marks))
	for _, m := range marks {
		if v.seen[m] || fresh[m] {
			return ErrReplay
		}
		fresh[m] = true
	}
	for _, m := range marks {
		v.seen[m] = true
	}
	return nil
}

// ChainVerifyStateless verifies a chain without the cross-call replay
// set; it suits bulk re-verification of archived chains.
func ChainVerifyStateless(ch *Chain, plan Plan, vendor *rsa.PublicKey, relays []*rsa.PublicKey, home *rsa.PublicKey) error {
	return NewChainVerifier(vendor, relays, home).Verify(ch, plan)
}
