package keyio

import (
	"os"
	"path/filepath"
	"testing"

	"tlc/internal/poc"
	"tlc/internal/sim"
)

func testPair(t *testing.T) *poc.KeyPair {
	t.Helper()
	kp, err := poc.GenerateKeyPair(poc.DefaultKeyBits, sim.NewRNG(77))
	if err != nil {
		t.Fatal(err)
	}
	return kp
}

func TestPublicKeyRoundTrip(t *testing.T) {
	kp := testPair(t)
	data, err := MarshalPublicKey(kp.Public)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParsePublicKey(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.N.Cmp(kp.Public.N) != 0 || back.E != kp.Public.E {
		t.Fatal("public key round trip mismatch")
	}
}

func TestPrivateKeyRoundTrip(t *testing.T) {
	kp := testPair(t)
	data, err := MarshalPrivateKey(kp.Private)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParsePrivateKey(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.D.Cmp(kp.Private.D) != 0 {
		t.Fatal("private key round trip mismatch")
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := ParsePublicKey([]byte("not pem")); err == nil {
		t.Fatal("garbage public accepted")
	}
	if _, err := ParsePrivateKey([]byte("not pem")); err == nil {
		t.Fatal("garbage private accepted")
	}
	// Wrong block type: a private PEM fed to the public parser.
	kp := testPair(t)
	priv, _ := MarshalPrivateKey(kp.Private)
	if _, err := ParsePublicKey(priv); err == nil {
		t.Fatal("private PEM accepted as public")
	}
	pub, _ := MarshalPublicKey(kp.Public)
	if _, err := ParsePrivateKey(pub); err == nil {
		t.Fatal("public PEM accepted as private")
	}
}

func TestFileRoundTripAndPermissions(t *testing.T) {
	kp := testPair(t)
	dir := t.TempDir()
	pubPath := filepath.Join(dir, "k.pub")
	privPath := filepath.Join(dir, "k.key")

	if err := SavePublicKey(pubPath, kp.Public); err != nil {
		t.Fatal(err)
	}
	if err := SavePrivateKey(privPath, kp.Private); err != nil {
		t.Fatal(err)
	}
	pub, err := LoadPublicKey(pubPath)
	if err != nil {
		t.Fatal(err)
	}
	if pub.N.Cmp(kp.Public.N) != 0 {
		t.Fatal("loaded public key differs")
	}
	priv, err := LoadPrivateKey(privPath)
	if err != nil {
		t.Fatal(err)
	}
	if priv.D.Cmp(kp.Private.D) != 0 {
		t.Fatal("loaded private key differs")
	}
	// Secret material is not world readable.
	info, err := os.Stat(privPath)
	if err != nil {
		t.Fatal(err)
	}
	if info.Mode().Perm()&0o077 != 0 {
		t.Fatalf("private key file mode %v too permissive", info.Mode())
	}
	if _, err := LoadPublicKey(filepath.Join(dir, "missing")); err == nil {
		t.Fatal("missing file accepted")
	}
	if _, err := LoadPrivateKey(filepath.Join(dir, "missing")); err == nil {
		t.Fatal("missing private file accepted")
	}
}
