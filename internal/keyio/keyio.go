// Package keyio loads and stores the RSA keys of §5.3.1 in standard
// PEM containers (PKCS#8 private keys, PKIX public keys), so the edge
// vendor, operator and public verifiers can exchange key material as
// ordinary files.
package keyio

import (
	"crypto/rsa"
	"crypto/x509"
	"encoding/pem"
	"errors"
	"fmt"
	"os"
)

const (
	publicBlockType  = "PUBLIC KEY"
	privateBlockType = "PRIVATE KEY"
)

// MarshalPublicKey renders a public key as PKIX PEM.
func MarshalPublicKey(pub *rsa.PublicKey) ([]byte, error) {
	der, err := x509.MarshalPKIXPublicKey(pub)
	if err != nil {
		return nil, fmt.Errorf("keyio: marshal public key: %w", err)
	}
	return pem.EncodeToMemory(&pem.Block{Type: publicBlockType, Bytes: der}), nil
}

// ParsePublicKey decodes a PKIX PEM public key.
func ParsePublicKey(data []byte) (*rsa.PublicKey, error) {
	block, _ := pem.Decode(data)
	if block == nil {
		return nil, errors.New("keyio: no PEM block")
	}
	if block.Type != publicBlockType {
		return nil, fmt.Errorf("keyio: unexpected PEM type %q", block.Type)
	}
	pub, err := x509.ParsePKIXPublicKey(block.Bytes)
	if err != nil {
		return nil, fmt.Errorf("keyio: parse public key: %w", err)
	}
	rsaPub, ok := pub.(*rsa.PublicKey)
	if !ok {
		return nil, errors.New("keyio: not an RSA public key")
	}
	return rsaPub, nil
}

// MarshalPrivateKey renders a private key as PKCS#8 PEM.
func MarshalPrivateKey(priv *rsa.PrivateKey) ([]byte, error) {
	der, err := x509.MarshalPKCS8PrivateKey(priv)
	if err != nil {
		return nil, fmt.Errorf("keyio: marshal private key: %w", err)
	}
	return pem.EncodeToMemory(&pem.Block{Type: privateBlockType, Bytes: der}), nil
}

// ParsePrivateKey decodes a PKCS#8 PEM private key.
func ParsePrivateKey(data []byte) (*rsa.PrivateKey, error) {
	block, _ := pem.Decode(data)
	if block == nil {
		return nil, errors.New("keyio: no PEM block")
	}
	if block.Type != privateBlockType {
		return nil, fmt.Errorf("keyio: unexpected PEM type %q", block.Type)
	}
	priv, err := x509.ParsePKCS8PrivateKey(block.Bytes)
	if err != nil {
		return nil, fmt.Errorf("keyio: parse private key: %w", err)
	}
	rsaPriv, ok := priv.(*rsa.PrivateKey)
	if !ok {
		return nil, errors.New("keyio: not an RSA private key")
	}
	return rsaPriv, nil
}

// SavePublicKey writes a PKIX PEM file (0644: public material).
func SavePublicKey(path string, pub *rsa.PublicKey) error {
	data, err := MarshalPublicKey(pub)
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// LoadPublicKey reads a PKIX PEM file.
func LoadPublicKey(path string) (*rsa.PublicKey, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("keyio: %w", err)
	}
	pub, err := ParsePublicKey(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return pub, nil
}

// SavePrivateKey writes a PKCS#8 PEM file (0600: secret material).
func SavePrivateKey(path string, priv *rsa.PrivateKey) error {
	data, err := MarshalPrivateKey(priv)
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o600)
}

// LoadPrivateKey reads a PKCS#8 PEM file.
func LoadPrivateKey(path string) (*rsa.PrivateKey, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("keyio: %w", err)
	}
	priv, err := ParsePrivateKey(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return priv, nil
}
