package apps

import (
	"math"
	"testing"
	"time"

	"tlc/internal/netem"
	"tlc/internal/sim"
)

func runStreamer(t *testing.T, p Profile, dur time.Duration, seed int64) (*Streamer, *netem.Sink) {
	t.Helper()
	s := sim.NewScheduler()
	ids := &netem.IDGen{}
	sink := &netem.Sink{}
	st := NewStreamer(p, s, ids, sink, p.Name, "imsi1", sim.NewRNG(seed))
	st.Start(0)
	s.RunUntil(dur)
	st.Stop()
	return st, sink
}

// bitrate checks the measured average bitrate against the paper's
// Table 2 value within a tolerance.
func checkBitrate(t *testing.T, p Profile, wantMbps, tolFrac float64) {
	t.Helper()
	st, _ := runStreamer(t, p, 60*time.Second, 7)
	got := float64(st.SentBytes()) * 8 / 60 / 1e6
	if math.Abs(got-wantMbps) > wantMbps*tolFrac {
		t.Fatalf("%s bitrate = %.3f Mbps, want %.3f +/- %.0f%%",
			p.Name, got, wantMbps, tolFrac*100)
	}
}

func TestWebCamRTSPBitrate(t *testing.T) { checkBitrate(t, WebCamRTSP, 0.77, 0.12) }
func TestWebCamUDPBitrate(t *testing.T)  { checkBitrate(t, WebCamUDP, 1.73, 0.12) }
func TestVRidgeBitrate(t *testing.T)     { checkBitrate(t, VRidgeGVSP, 9.0, 0.12) }
func TestGamingBitrate(t *testing.T)     { checkBitrate(t, Gaming, 0.02, 0.15) }

func TestAvgBitrateFormulaTracksMeasurement(t *testing.T) {
	for _, p := range []Profile{WebCamRTSP, WebCamUDP, VRidgeGVSP, Gaming} {
		st, _ := runStreamer(t, p, 30*time.Second, 3)
		measured := float64(st.SentBytes()) * 8 / 30
		nominal := p.AvgBitrate()
		if math.Abs(measured-nominal) > nominal*0.2 {
			t.Fatalf("%s: nominal %.0f bps vs measured %.0f bps", p.Name, nominal, measured)
		}
	}
}

func TestDirectionsAndQCI(t *testing.T) {
	if WebCamRTSP.Dir != netem.Uplink || WebCamUDP.Dir != netem.Uplink {
		t.Fatal("webcam streams must be uplink")
	}
	if VRidgeGVSP.Dir != netem.Downlink || Gaming.Dir != netem.Downlink {
		t.Fatal("VR and gaming must be downlink")
	}
	if Gaming.QCI != 7 {
		t.Fatal("gaming must ride the dedicated QCI=7 bearer")
	}
	if WebCamRTSP.QCI != 9 || VRidgeGVSP.QCI != 9 {
		t.Fatal("streams other than gaming ride the default bearer")
	}
}

func TestFrameFragmentation(t *testing.T) {
	p := Profile{
		Name: "big", Dir: netem.Downlink, QCI: 9,
		FPS: 1, MeanFrameBytes: 5000, MTU: 1400, HeaderBytes: 40,
	}
	s := sim.NewScheduler()
	var sizes []int
	sink := netem.NodeFunc(func(pk *netem.Packet) { sizes = append(sizes, pk.Size) })
	st := NewStreamer(p, s, &netem.IDGen{}, sink, "f", "i", nil)
	st.Start(0)
	s.RunUntil(500 * time.Millisecond) // exactly one frame
	// 5000 bytes at MTU 1400: 1400+1400+1400+800, each +40 header.
	want := []int{1440, 1440, 1440, 840}
	if len(sizes) != len(want) {
		t.Fatalf("fragments = %v", sizes)
	}
	for i := range want {
		if sizes[i] != want[i] {
			t.Fatalf("fragments = %v, want %v", sizes, want)
		}
	}
	if st.Frames() != 1 || st.SentPackets() != 4 {
		t.Fatalf("frames=%d packets=%d", st.Frames(), st.SentPackets())
	}
}

func TestKeyFramesAreLarger(t *testing.T) {
	p := Profile{
		Name: "kf", Dir: netem.Uplink, QCI: 9,
		FPS: 10, MeanFrameBytes: 3000, KeyFrameInterval: 10, KeyFrameScale: 5,
		MTU: 100000, HeaderBytes: 0, // no fragmentation: 1 packet per frame
	}
	s := sim.NewScheduler()
	var sizes []int
	sink := netem.NodeFunc(func(pk *netem.Packet) { sizes = append(sizes, pk.Size) })
	st := NewStreamer(p, s, &netem.IDGen{}, sink, "f", "i", nil)
	st.Start(0)
	s.RunUntil(3 * time.Second)
	st.Stop()
	if len(sizes) < 20 {
		t.Fatalf("only %d frames", len(sizes))
	}
	// Frames 0, 10, 20 are key frames: exactly KeyFrameScale larger
	// than the others (no jitter configured).
	ratio := float64(sizes[0]) / float64(sizes[1])
	if math.Abs(ratio-5) > 0.01 {
		t.Fatalf("key frame %d vs delta frame %d, want 5x", sizes[0], sizes[1])
	}
	if sizes[10] != sizes[0] || sizes[11] != sizes[1] {
		t.Fatal("key frame cadence wrong")
	}
	// Long-run mean stays near MeanFrameBytes.
	sum := 0
	for _, v := range sizes[:30] {
		sum += v
	}
	mean := float64(sum) / 30
	if math.Abs(mean-3000) > 30 {
		t.Fatalf("mean frame = %.0f, want 3000", mean)
	}
}

func TestStopHaltsEmission(t *testing.T) {
	s := sim.NewScheduler()
	sink := &netem.Sink{}
	st := NewStreamer(Gaming, s, &netem.IDGen{}, sink, "g", "i", sim.NewRNG(1))
	st.Start(0)
	s.RunUntil(time.Second)
	st.Stop()
	before := sink.Packets
	s.RunUntil(5 * time.Second)
	if sink.Packets > before+1 {
		t.Fatalf("emission continued after Stop: %d -> %d", before, sink.Packets)
	}
}

func TestOnEmitTap(t *testing.T) {
	s := sim.NewScheduler()
	sink := &netem.Sink{}
	st := NewStreamer(Gaming, s, &netem.IDGen{}, sink, "g", "i", sim.NewRNG(1))
	var tapped uint64
	st.OnEmit = func(p *netem.Packet) { tapped += uint64(p.Size) }
	st.Start(0)
	s.RunUntil(2 * time.Second)
	st.Stop()
	if tapped == 0 || tapped != st.SentBytes() {
		t.Fatalf("tap saw %d bytes, streamer sent %d", tapped, st.SentBytes())
	}
}

func TestPacketFieldsPopulated(t *testing.T) {
	s := sim.NewScheduler()
	var got *netem.Packet
	sink := netem.NodeFunc(func(p *netem.Packet) {
		if got == nil {
			got = p
		}
	})
	st := NewStreamer(Gaming, s, &netem.IDGen{}, sink, "game-flow", "imsi42", sim.NewRNG(1))
	st.Start(time.Second)
	s.RunUntil(1100 * time.Millisecond)
	st.Stop()
	if got == nil {
		t.Fatal("no packet emitted")
	}
	if got.Flow != "game-flow" || got.IMSI != "imsi42" || got.QCI != 7 ||
		got.Dir != netem.Downlink || got.ID == 0 || got.Sent != time.Second {
		t.Fatalf("packet fields = %+v", got)
	}
	if got.Size != Gaming.PacketSize+Gaming.HeaderBytes {
		t.Fatalf("packet size = %d", got.Size)
	}
}

func TestProfileByName(t *testing.T) {
	p, ok := ProfileByName("VRidge-GVSP")
	if !ok || p.FPS != 60 {
		t.Fatalf("ProfileByName = %+v, %v", p, ok)
	}
	if _, ok := ProfileByName("nope"); ok {
		t.Fatal("unknown profile found")
	}
	if len(Workloads) != 4 {
		t.Fatalf("Workloads = %d entries, want 4", len(Workloads))
	}
}

func TestTinyFrameFloor(t *testing.T) {
	p := Profile{
		Name: "tiny", Dir: netem.Uplink, FPS: 10,
		MeanFrameBytes: 10, FrameSigma: 2, MTU: 1400,
	}
	st, sink := runStreamer(t, p, time.Second, 5)
	if st.SentPackets() == 0 {
		t.Fatal("no packets")
	}
	if sink.Bytes < 64*uint64(st.SentPackets()) {
		t.Fatal("frame floor of 64 bytes not applied")
	}
}
