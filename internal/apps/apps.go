// Package apps generates the edge application workloads of §7.1:
// WebCam streaming for video analytics (RTSP and legacy UDP),
// edge-based virtual reality (VRidge over the GigE Vision stream
// protocol), and online mobile gaming acceleration (King-of-Glory
// style control traffic on a dedicated QCI=7 bearer).
//
// The paper replays VLC camera streams and tcpdump traces; this
// repository has neither the camera nor the proprietary traces, so it
// generates synthetic streams matched to the paper's reported
// characteristics: average bitrate, frame rate, frame-size burstiness
// and direction (see DESIGN.md's substitution table).
package apps

import (
	"math"
	"time"

	"tlc/internal/netem"
	"tlc/internal/sim"
)

// Profile describes one application workload.
type Profile struct {
	Name string
	// Dir is the data direction: uplink for camera streams, downlink
	// for VR frames and game state.
	Dir netem.Direction
	// QCI is the bearer class the flow requests (gaming uses the
	// dedicated QCI=7 bearer of §2.2; everything else rides the
	// default QCI=9 bearer).
	QCI uint8

	// Frame-based streams (video/VR):
	FPS              float64
	MeanFrameBytes   int
	FrameSigma       float64 // lognormal-ish multiplicative spread
	KeyFrameInterval int     // every Nth frame is a key frame
	KeyFrameScale    float64 // key frame size multiplier
	MTU              int     // fragmentation threshold
	HeaderBytes      int     // per-packet protocol overhead (RTP/GVSP/UDP/IP)

	// Packet-based streams (gaming):
	PacketMode bool
	PacketSize int
	PacketRate float64 // packets per second
}

// AvgBitrate returns the profile's nominal average bit rate in bits
// per second, including per-packet header overhead.
func (p Profile) AvgBitrate() float64 {
	if p.PacketMode {
		return p.PacketRate * float64(p.PacketSize+p.HeaderBytes) * 8
	}
	frames := p.FPS
	pktsPerFrame := math.Ceil(float64(p.MeanFrameBytes) / float64(p.MTU))
	return frames * (float64(p.MeanFrameBytes) + pktsPerFrame*float64(p.HeaderBytes)) * 8
}

// The four §7.1 workloads, calibrated to Table 2's average bitrates
// (0.77 / 1.73 / 9.0 / 0.02 Mbps).
var (
	// WebCamRTSP is the 1920x1080p30 H.264 camera stream carried
	// over RTSP/RTP, uplink from the roadside camera (§2.2).
	WebCamRTSP = Profile{
		Name: "WebCam-RTSP", Dir: netem.Uplink, QCI: 9,
		FPS: 30, MeanFrameBytes: 3050, FrameSigma: 0.35,
		KeyFrameInterval: 30, KeyFrameScale: 6,
		MTU: 1400, HeaderBytes: 40,
	}
	// WebCamUDP is the same camera encoded at a higher rate and
	// pushed over legacy UDP without RTSP flow control.
	WebCamUDP = Profile{
		Name: "WebCam-UDP", Dir: netem.Uplink, QCI: 9,
		FPS: 30, MeanFrameBytes: 6950, FrameSigma: 0.35,
		KeyFrameInterval: 30, KeyFrameScale: 6,
		MTU: 1400, HeaderBytes: 28,
	}
	// VRidgeGVSP is the 1920x1080p60 VR graphical frame stream,
	// downlink from the edge server to the headset (GVSP, §2.2).
	VRidgeGVSP = Profile{
		Name: "VRidge-GVSP", Dir: netem.Downlink, QCI: 9,
		FPS: 60, MeanFrameBytes: 18200, FrameSigma: 0.3,
		KeyFrameInterval: 60, KeyFrameScale: 3,
		MTU: 1400, HeaderBytes: 36,
	}
	// Gaming is the King-of-Glory style player-control stream on a
	// dedicated high-QoS bearer (QCI=7), downlink server-to-device.
	Gaming = Profile{
		Name: "Gaming-QCI7", Dir: netem.Downlink, QCI: 7,
		PacketMode: true, PacketSize: 72, PacketRate: 25, HeaderBytes: 28,
	}
)

// Workloads lists the four profiles in the order the paper's tables
// present them.
var Workloads = []Profile{WebCamRTSP, WebCamUDP, VRidgeGVSP, Gaming}

// WithDirection returns a copy of the profile streaming in the given
// direction; the paper's Figure 4/14 use a *downlink* UDP WebCam.
func (p Profile) WithDirection(d netem.Direction) Profile {
	out := p
	out.Dir = d
	if d != p.Dir {
		out.Name = p.Name + "-" + d.String()
	}
	return out
}

// ProfileByName returns a workload profile by its Name.
func ProfileByName(name string) (Profile, bool) {
	for _, p := range Workloads {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}

// Streamer emits one application flow into the network. For frame
// profiles each frame fragments into MTU-sized packets emitted
// back-to-back (the burstiness that overflows air-interface queues);
// for packet profiles it emits individual datagrams.
type Streamer struct {
	Profile Profile
	Sched   *sim.Scheduler
	IDs     *netem.IDGen
	Dst     netem.Node
	Flow    string
	IMSI    string
	RNG     *sim.RNG

	// OnEmit observes every emitted packet before it enters the
	// network; the edge vendor's sender-side monitor taps here.
	OnEmit func(*netem.Packet)

	// Pool optionally recycles emitted packets; the testbed wires
	// the same pool into the terminal sinks and drop sites.
	Pool *netem.PacketPool

	stopped     bool
	frameCount  uint64
	sentPackets uint64
	sentBytes   uint64
	emitFn      func() // bound frame/packet emitter, allocated once
}

// NewStreamer builds a streamer for the profile.
func NewStreamer(p Profile, sched *sim.Scheduler, ids *netem.IDGen, dst netem.Node, flow, imsi string, rng *sim.RNG) *Streamer {
	return &Streamer{Profile: p, Sched: sched, IDs: ids, Dst: dst, Flow: flow, IMSI: imsi, RNG: rng}
}

// Start begins emission at the given simulated time.
func (s *Streamer) Start(at sim.Time) {
	if s.Profile.PacketMode {
		s.emitFn = s.emitPacket
	} else {
		s.emitFn = s.emitFrame
	}
	s.Sched.AtPooled(at, s.emitFn)
}

// Stop halts emission.
func (s *Streamer) Stop() { s.stopped = true }

// SentPackets returns the number of packets emitted.
func (s *Streamer) SentPackets() uint64 { return s.sentPackets }

// SentBytes returns the number of bytes emitted (the edge vendor's
// sender-side ground truth x̂e for this flow).
func (s *Streamer) SentBytes() uint64 { return s.sentBytes }

// Frames returns the number of frames emitted.
func (s *Streamer) Frames() uint64 { return s.frameCount }

func (s *Streamer) send(size int) {
	pkt := s.Pool.Get()
	pkt.ID = s.IDs.Next()
	pkt.Flow = s.Flow
	pkt.IMSI = s.IMSI
	pkt.QCI = s.Profile.QCI
	pkt.Size = size
	pkt.Dir = s.Profile.Dir
	pkt.Sent = s.Sched.Now()
	s.sentPackets++
	s.sentBytes += uint64(size)
	if s.OnEmit != nil {
		s.OnEmit(pkt)
	}
	s.Dst.Recv(pkt)
}

// frameSize draws the next frame size. Key frames every
// KeyFrameInterval are KeyFrameScale times larger; the base size is
// rescaled so that the long-run mean stays MeanFrameBytes.
func (s *Streamer) frameSize() int {
	p := s.Profile
	base := float64(p.MeanFrameBytes)
	if p.KeyFrameInterval > 1 && p.KeyFrameScale > 1 {
		// mean = base * ((n-1) + scale) / n  =>  solve for base.
		n := float64(p.KeyFrameInterval)
		base = float64(p.MeanFrameBytes) * n / (n - 1 + p.KeyFrameScale)
		if s.frameCount%uint64(p.KeyFrameInterval) == 0 {
			base *= p.KeyFrameScale
		}
	}
	if p.FrameSigma > 0 && s.RNG != nil {
		// Multiplicative jitter with mean 1: exp(N(-sigma^2/2, sigma)).
		m := math.Exp(s.RNG.Norm(-p.FrameSigma*p.FrameSigma/2, p.FrameSigma))
		base *= m
	}
	if base < 64 {
		base = 64
	}
	return int(base)
}

func (s *Streamer) emitFrame() {
	if s.stopped {
		return
	}
	size := s.frameSize()
	s.frameCount++
	mtu := s.Profile.MTU
	if mtu <= 0 {
		mtu = 1400
	}
	for size > 0 {
		chunk := size
		if chunk > mtu {
			chunk = mtu
		}
		s.send(chunk + s.Profile.HeaderBytes)
		size -= chunk
	}
	gap := time.Duration(float64(time.Second) / s.Profile.FPS)
	s.Sched.AfterPooled(gap, s.emitFn)
}

func (s *Streamer) emitPacket() {
	if s.stopped {
		return
	}
	s.frameCount++
	s.send(s.Profile.PacketSize + s.Profile.HeaderBytes)
	mean := time.Duration(float64(time.Second) / s.Profile.PacketRate)
	gap := mean
	if s.RNG != nil {
		// Game ticks are quasi-periodic; add light jitter.
		gap = time.Duration(float64(mean) * (1 + s.RNG.Uniform(-0.2, 0.2)))
	}
	s.Sched.AfterPooled(gap, s.emitFn)
}
