package simclock

import (
	"testing"
	"testing/quick"
	"time"

	"tlc/internal/sim"
)

func TestZeroClockIsTrueTime(t *testing.T) {
	c := New(0, 0)
	for _, now := range []sim.Time{0, time.Second, time.Hour} {
		if c.LocalTime(now) != now {
			t.Fatalf("LocalTime(%v) = %v", now, c.LocalTime(now))
		}
	}
}

func TestFixedOffset(t *testing.T) {
	c := New(50*time.Millisecond, 0)
	if got := c.LocalTime(time.Second); got != time.Second+50*time.Millisecond {
		t.Fatalf("LocalTime = %v", got)
	}
	if got := c.OffsetAt(time.Hour); got != 50*time.Millisecond {
		t.Fatalf("OffsetAt = %v", got)
	}
}

func TestDriftAccumulates(t *testing.T) {
	c := New(0, 10) // 10 ppm fast
	// After 1000 seconds, a 10ppm clock gains 10ms.
	got := c.OffsetAt(1000 * time.Second)
	want := 10 * time.Millisecond
	if got < want-time.Microsecond || got > want+time.Microsecond {
		t.Fatalf("drift offset = %v, want ~%v", got, want)
	}
}

func TestSyncResetsDrift(t *testing.T) {
	c := New(100*time.Millisecond, 10)
	c.Sync(1000*time.Second, 2*time.Millisecond)
	// Right after sync: residual only.
	if got := c.OffsetAt(1000 * time.Second); got != 2*time.Millisecond {
		t.Fatalf("post-sync offset = %v, want 2ms", got)
	}
	// Drift resumes from the sync instant.
	got := c.OffsetAt(2000 * time.Second)
	want := 2*time.Millisecond + 10*time.Millisecond
	if got < want-time.Microsecond || got > want+time.Microsecond {
		t.Fatalf("offset 1000s after sync = %v, want ~%v", got, want)
	}
}

func TestTrueTimeOfInvertsLocalTime(t *testing.T) {
	c := New(30*time.Millisecond, 5)
	for _, now := range []sim.Time{0, time.Second, time.Minute, time.Hour} {
		local := c.LocalTime(now)
		back := c.TrueTimeOf(local)
		diff := back - now
		if diff < 0 {
			diff = -diff
		}
		// Drift makes the single-iteration inverse approximate; at
		// 5ppm the residual must be far below a microsecond.
		if diff > time.Microsecond {
			t.Fatalf("TrueTimeOf(LocalTime(%v)) off by %v", now, diff)
		}
	}
}

func TestObservedWindowShiftsByOffset(t *testing.T) {
	c := New(-20*time.Millisecond, 0) // clock runs behind true time
	w := Window{Start: time.Hour, End: 2 * time.Hour}
	ow := c.ObservedWindow(w)
	// A slow clock reads Tstart late, so it starts metering late in
	// true time: shift = -offset = +20ms.
	if ow.Start != w.Start+20*time.Millisecond || ow.End != w.End+20*time.Millisecond {
		t.Fatalf("ObservedWindow = %+v", ow)
	}
	if ow.Duration() != w.Duration() {
		t.Fatalf("duration changed: %v", ow.Duration())
	}
}

func TestObservedWindowWithDriftChangesDuration(t *testing.T) {
	c := New(0, 100) // fast clock: 100 ppm
	w := Window{Start: 0, End: time.Hour}
	ow := c.ObservedWindow(w)
	// A fast clock reaches Tend early, so it meters a shorter true
	// window: duration shrinks by ~100ppm of an hour = 360ms.
	shrink := w.Duration() - ow.Duration()
	want := 360 * time.Millisecond
	if shrink < want-time.Millisecond || shrink > want+time.Millisecond {
		t.Fatalf("window shrink = %v, want ~%v", shrink, want)
	}
}

func TestWindowContains(t *testing.T) {
	w := Window{Start: time.Second, End: 2 * time.Second}
	if w.Contains(0) || !w.Contains(time.Second) || !w.Contains(1500*time.Millisecond) || w.Contains(2*time.Second) {
		t.Fatal("Contains boundary semantics wrong")
	}
}

func TestSyncModelResidualScale(t *testing.T) {
	rng := sim.NewRNG(11)
	m := NewSyncModel(10*time.Millisecond, rng)
	var sum, sumsq float64
	const n = 5000
	for i := 0; i < n; i++ {
		r := float64(m.Residual())
		sum += r
		sumsq += r * r
	}
	mean := sum / n
	sd := time.Duration((sumsq/n - mean*mean))
	_ = sd
	sdDur := time.Duration((sumsq / n))
	_ = sdDur
	// Mean near zero (within 3 sigma/sqrt(n)).
	if time.Duration(mean) > time.Millisecond || time.Duration(mean) < -time.Millisecond {
		t.Fatalf("residual mean = %v", time.Duration(mean))
	}
}

func TestSyncModelZeroPrecision(t *testing.T) {
	m := NewSyncModel(0, sim.NewRNG(1))
	if m.Residual() != 0 {
		t.Fatal("zero-precision model produced nonzero residual")
	}
}

func TestSyncAll(t *testing.T) {
	rng := sim.NewRNG(3)
	m := NewSyncModel(5*time.Millisecond, rng)
	a := New(time.Second, 50)
	b := New(-time.Second, -50)
	m.SyncAll(10*time.Second, a, b)
	for _, c := range []*Clock{a, b} {
		off := c.OffsetAt(10 * time.Second)
		if off > 50*time.Millisecond || off < -50*time.Millisecond {
			t.Fatalf("post-sync offset = %v, want small residual", off)
		}
	}
}

func TestObservedWindowIdentityProperty(t *testing.T) {
	// With zero offset and drift the observed window equals the plan.
	f := func(startSec, durSec uint16) bool {
		c := New(0, 0)
		w := Window{
			Start: time.Duration(startSec) * time.Second,
			End:   time.Duration(startSec)*time.Second + time.Duration(durSec)*time.Second,
		}
		return c.ObservedWindow(w) == w
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
