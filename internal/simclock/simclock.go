// Package simclock models the per-party wall clocks of the cellular
// operator and edge application vendor.
//
// TLC requires both parties to agree on the charging cycle boundaries
// (Table 1: T = (Tstart, Tend)), synchronised "e.g. via NTP" (§4). Real
// clocks are never perfectly aligned, and the paper attributes the
// residual charging-record errors of Figure 18 to "the asynchronous
// charging cycle start/end". This package reproduces that mechanism:
// each party's clock carries an offset and drift relative to simulated
// true time, an NTP-style sync bounds the offset, and the window a
// party actually meters is the true cycle window shifted by the
// party's offset at the boundary instants.
package simclock

import (
	"time"

	"tlc/internal/sim"
)

// Clock is one party's wall clock. Local time = true time + Offset +
// Drift accumulated since the last sync.
type Clock struct {
	offset   time.Duration // fixed offset at lastSync
	driftPPM float64       // parts-per-million frequency error
	lastSync sim.Time      // true time of last synchronisation
}

// New returns a clock with the given initial offset and drift.
func New(offset time.Duration, driftPPM float64) *Clock {
	return &Clock{offset: offset, driftPPM: driftPPM}
}

// OffsetAt returns the clock's total offset from true time at the
// given true instant, including drift accumulated since the last sync.
func (c *Clock) OffsetAt(now sim.Time) time.Duration {
	elapsed := now - c.lastSync
	drift := time.Duration(float64(elapsed) * c.driftPPM / 1e6)
	return c.offset + drift
}

// LocalTime converts a true instant into this party's local time.
func (c *Clock) LocalTime(now sim.Time) time.Duration {
	return now + c.OffsetAt(now)
}

// TrueTimeOf converts this party's local time back to true time,
// ignoring drift accumulated over the conversion interval (a second-
// order effect at ppm drift rates).
func (c *Clock) TrueTimeOf(local time.Duration) sim.Time {
	// Invert local = t + offset + drift*(t - lastSync)/1e6 approximately
	// by one fixed-point iteration starting from t = local - offset.
	t := local - c.offset
	return local - c.OffsetAt(t)
}

// Sync performs an NTP-style synchronisation at the given true time:
// the residual offset is drawn by the caller (typically from a
// distribution bounded by the sync precision) and drift restarts from
// this instant.
func (c *Clock) Sync(now sim.Time, residual time.Duration) {
	c.offset = residual
	c.lastSync = now
}

// Window is a half-open metering interval in true simulated time.
type Window struct {
	Start sim.Time
	End   sim.Time
}

// Duration returns End - Start.
func (w Window) Duration() time.Duration { return w.End - w.Start }

// Contains reports whether t falls inside the window.
func (w Window) Contains(t sim.Time) bool { return t >= w.Start && t < w.End }

// ObservedWindow returns the true-time interval this party actually
// meters when it intends to meter the true cycle window w: the party
// starts and stops when its *local* clock reads w.Start and w.End, so
// the true interval is shifted by the clock offset at each boundary.
func (c *Clock) ObservedWindow(w Window) Window {
	return Window{
		Start: w.Start - c.OffsetAt(w.Start),
		End:   w.End - c.OffsetAt(w.End),
	}
}

// SyncModel draws NTP residual offsets for a population of clocks.
type SyncModel struct {
	// Precision is the standard deviation of the residual offset
	// after a sync. Public NTP over the internet is typically in the
	// 1-50ms range; the LTE testbed's edge server syncs locally.
	Precision time.Duration
	rng       *sim.RNG
}

// NewSyncModel returns a model drawing residuals from N(0, precision).
func NewSyncModel(precision time.Duration, rng *sim.RNG) *SyncModel {
	return &SyncModel{Precision: precision, rng: rng}
}

// Residual draws one post-sync residual offset.
func (m *SyncModel) Residual() time.Duration {
	if m.Precision <= 0 {
		return 0
	}
	return time.Duration(m.rng.Norm(0, float64(m.Precision)))
}

// SyncAll synchronises every clock at the given true time.
func (m *SyncModel) SyncAll(now sim.Time, clocks ...*Clock) {
	for _, c := range clocks {
		c.Sync(now, m.Residual())
	}
}
