//go:build !race

package metrics

// raceEnabled: see raceon_test.go.
const raceEnabled = false
