// Package metrics is the repository's unified instrument registry: a
// deterministic, allocation-free-on-the-hot-path set of atomic
// counters, gauges and fixed-bucket histograms with Prometheus
// text-format exposition and a snapshot API.
//
// Design constraints (see DESIGN.md "Observability"):
//
//   - Observation paths (Counter.Add, Gauge.Set, Histogram.Observe)
//     are lock-free and never allocate, so they are safe on the
//     event-engine hot paths guarded by the ZeroAlloc tests.
//   - Instruments are pre-registered: registration takes the
//     registry lock once, up front; after that only atomics move.
//     Label sets are baked into the series name at registration time
//     (`name{qci="9"}`), never assembled per observation.
//   - Nothing in this package reads a clock or draws randomness, so
//     instrumenting a simulated component cannot perturb event order
//     or RNG streams: sweep goldens stay byte-identical.
//
// Simulated components accumulate into their existing plain counters
// and publish deltas at cycle boundaries; live components (cmd/tlcd,
// internal/protocol) observe inline.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing counter.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
//
//tlcvet:hotpath observed from live packet paths
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
//
//tlcvet:hotpath observed from live packet paths
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an instantaneous integer value that can move both ways.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
//
//tlcvet:hotpath observed from live packet paths
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the value by d (negative to decrease).
//
//tlcvet:hotpath observed from live packet paths
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket histogram. Bucket bounds are set at
// registration and never change, so Observe is a bucket scan plus
// three atomic updates — no locks, no allocation.
type Histogram struct {
	bounds []float64 // upper bounds, strictly increasing
	counts []atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-updated
}

// Observe records one value.
//
//tlcvet:hotpath observed from live packet paths
func (h *Histogram) Observe(v float64) {
	// Buckets are few (typically ≤ 16); a linear scan beats binary
	// search at this size and stays branch-predictable for the common
	// low buckets.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// BucketBounds returns a copy of the finite upper bucket bounds (the
// implicit +Inf bucket is not listed).
func (h *Histogram) BucketBounds() []float64 {
	return append([]float64(nil), h.bounds...)
}

// BucketCounts returns a point-in-time copy of the per-bucket
// observation counts; the final entry is the +Inf bucket. Paired with
// BucketBounds it lets callers compute quantiles over a window by
// differencing two snapshots (see Quantile).
func (h *Histogram) BucketCounts() []uint64 {
	out := make([]uint64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

// Quantile estimates the q-quantile (q in [0,1]) of the observations
// from the live bucket counts; see the package-level Quantile for the
// estimation rules.
func (h *Histogram) Quantile(q float64) float64 {
	return Quantile(h.bounds, h.BucketCounts(), q)
}

// Quantile estimates the q-quantile of a bucketed distribution:
// bounds are the finite upper bucket bounds and counts the per-bucket
// observation counts with the +Inf bucket last (the shapes returned by
// BucketBounds/BucketCounts, or an element-wise difference of two
// BucketCounts snapshots for a per-run window). The estimate
// interpolates linearly inside the selected bucket (from 0 for the
// first). Values landing in the +Inf bucket are clamped to the highest
// finite bound — a histogram cannot say more — and an empty
// distribution reports NaN.
func Quantile(bounds []float64, counts []uint64, q float64) float64 {
	if len(counts) != len(bounds)+1 {
		panic("metrics: Quantile needs len(counts) == len(bounds)+1")
	}
	var total uint64
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	cum := 0.0
	for i, c := range counts {
		prev := cum
		cum += float64(c)
		if cum < rank || c == 0 {
			continue
		}
		if i == len(bounds) {
			// +Inf bucket: clamp to the last finite bound.
			if len(bounds) == 0 {
				return math.Inf(1)
			}
			return bounds[len(bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = bounds[i-1]
		}
		frac := (rank - prev) / float64(c)
		return lo + (bounds[i]-lo)*frac
	}
	if len(bounds) == 0 {
		return math.Inf(1)
	}
	return bounds[len(bounds)-1]
}

// ExpBuckets returns n exponentially growing bucket bounds starting
// at start and multiplying by factor.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("metrics: ExpBuckets needs start > 0, factor > 1, n >= 1")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// DefBuckets are general-purpose latency bounds in seconds, from
// sub-millisecond to ten seconds.
var DefBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10,
}

type kind int

const (
	counterKind kind = iota
	gaugeKind
	histogramKind
)

func (k kind) String() string {
	switch k {
	case counterKind:
		return "counter"
	case gaugeKind:
		return "gauge"
	default:
		return "histogram"
	}
}

// instrument is one registered series.
type instrument struct {
	name string // full series name, possibly with a {label="v"} block
	base string // metric name without the label block
	help string
	kind kind

	c *Counter
	g *Gauge
	h *Histogram
}

// Registry holds pre-registered instruments. Registration is
// mutex-guarded and idempotent; observation touches only the
// instruments' atomics. The zero value is not ready; use New.
type Registry struct {
	mu     sync.Mutex
	byName map[string]*instrument
	order  []*instrument
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{byName: map[string]*instrument{}}
}

// Default is the process-wide registry: cmd/tlcd exposes it over
// /metrics and cmd/tlcbench snapshots it into the -json report.
var Default = New()

// baseName strips a trailing {label="v",...} block from a series name.
func baseName(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

func validName(name string) bool {
	base := baseName(name)
	if base == "" {
		return false
	}
	for i := 0; i < len(base); i++ {
		c := base[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(c >= '0' && c <= '9' && i > 0)
		if !ok {
			return false
		}
	}
	if strings.ContainsRune(name, '{') != strings.HasSuffix(name, "}") {
		return false
	}
	return true
}

// register returns the existing instrument for name (panicking on a
// kind mismatch — two packages fighting over one name is a bug) or
// records a new one.
func (r *Registry) register(name, help string, k kind, mk func() *instrument) *instrument {
	if !validName(name) {
		panic(fmt.Sprintf("metrics: invalid series name %q", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if in, ok := r.byName[name]; ok {
		if in.kind != k {
			panic(fmt.Sprintf("metrics: %s re-registered as %s (was %s)", name, k, in.kind))
		}
		return in
	}
	in := mk()
	in.name = name
	in.base = baseName(name)
	in.help = help
	in.kind = k
	r.byName[name] = in
	r.order = append(r.order, in)
	return in
}

// Counter pre-registers (or fetches) a counter.
func (r *Registry) Counter(name, help string) *Counter {
	return r.register(name, help, counterKind, func() *instrument {
		return &instrument{c: &Counter{}}
	}).c
}

// Gauge pre-registers (or fetches) a gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.register(name, help, gaugeKind, func() *instrument {
		return &instrument{g: &Gauge{}}
	}).g
}

// Histogram pre-registers (or fetches) a histogram with the given
// upper bucket bounds (an implicit +Inf bucket is added). Histogram
// names must not carry a label block: the bucket series already uses
// the label position for `le`.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if strings.IndexByte(name, '{') >= 0 {
		panic(fmt.Sprintf("metrics: histogram %q must not carry labels", name))
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("metrics: histogram %q bounds not increasing", name))
		}
	}
	return r.register(name, help, histogramKind, func() *instrument {
		h := &Histogram{
			bounds: append([]float64(nil), bounds...),
			counts: make([]atomic.Uint64, len(bounds)+1),
		}
		return &instrument{h: h}
	}).h
}

// sortedInstruments returns the instruments ordered by (base, name)
// so labeled series of one metric stay adjacent under a single
// HELP/TYPE header.
func (r *Registry) sortedInstruments() []*instrument {
	r.mu.Lock()
	out := append([]*instrument(nil), r.order...)
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].base != out[j].base {
			return out[i].base < out[j].base
		}
		return out[i].name < out[j].name
	})
	return out
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteText renders the registry in the Prometheus text exposition
// format (version 0.0.4), series sorted by name.
func (r *Registry) WriteText(w io.Writer) error {
	var b strings.Builder
	lastBase := ""
	for _, in := range r.sortedInstruments() {
		if in.base != lastBase {
			lastBase = in.base
			if in.help != "" {
				fmt.Fprintf(&b, "# HELP %s %s\n", in.base, in.help)
			}
			fmt.Fprintf(&b, "# TYPE %s %s\n", in.base, in.kind)
		}
		switch in.kind {
		case counterKind:
			fmt.Fprintf(&b, "%s %d\n", in.name, in.c.Value())
		case gaugeKind:
			fmt.Fprintf(&b, "%s %d\n", in.name, in.g.Value())
		case histogramKind:
			h := in.h
			cum := uint64(0)
			for i, bound := range h.bounds {
				cum += h.counts[i].Load()
				fmt.Fprintf(&b, "%s_bucket{le=%q} %d\n", in.base, formatFloat(bound), cum)
			}
			fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", in.base, h.Count())
			fmt.Fprintf(&b, "%s_sum %s\n", in.base, formatFloat(h.Sum()))
			fmt.Fprintf(&b, "%s_count %d\n", in.base, h.Count())
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Snapshot returns every series as a flat name → value map: counters
// and gauges under their registered name, histograms as _count and
// _sum. The map is a point-in-time copy; concurrent observers keep
// moving the live instruments.
func (r *Registry) Snapshot() map[string]float64 {
	out := map[string]float64{}
	for _, in := range r.sortedInstruments() {
		switch in.kind {
		case counterKind:
			out[in.name] = float64(in.c.Value())
		case gaugeKind:
			out[in.name] = float64(in.g.Value())
		case histogramKind:
			out[in.base+"_count"] = float64(in.h.Count())
			out[in.base+"_sum"] = in.h.Sum()
		}
	}
	return out
}
