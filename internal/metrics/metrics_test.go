package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
)

// TestRegistryConcurrency hammers one counter, one gauge and one
// histogram from many goroutines under -race: registration is
// idempotent across goroutines and no observation is lost.
func TestRegistryConcurrency(t *testing.T) {
	r := New()
	const goroutines = 8
	const perG = 2000

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Concurrent registration must converge on one instrument.
			c := r.Counter("test_ops_total", "ops")
			ga := r.Gauge("test_level", "level")
			h := r.Histogram("test_latency_seconds", "latency", []float64{0.01, 0.1, 1})
			for i := 0; i < perG; i++ {
				c.Inc()
				ga.Set(int64(g))
				h.Observe(0.05)
			}
		}(g)
	}
	wg.Wait()

	if got := r.Counter("test_ops_total", "ops").Value(); got != goroutines*perG {
		t.Fatalf("counter = %d, want %d", got, goroutines*perG)
	}
	h := r.Histogram("test_latency_seconds", "latency", []float64{0.01, 0.1, 1})
	if h.Count() != goroutines*perG {
		t.Fatalf("histogram count = %d, want %d", h.Count(), goroutines*perG)
	}
	want := 0.05 * goroutines * perG
	if math.Abs(h.Sum()-want) > 1e-6 {
		t.Fatalf("histogram sum = %v, want %v", h.Sum(), want)
	}
	snap := r.Snapshot()
	if snap["test_ops_total"] != goroutines*perG {
		t.Fatalf("snapshot counter = %v", snap["test_ops_total"])
	}
	if snap["test_latency_seconds_count"] != goroutines*perG {
		t.Fatalf("snapshot histogram count = %v", snap["test_latency_seconds_count"])
	}
}

// TestExpositionGolden pins the Prometheus text format byte-for-byte:
// sorted series, HELP/TYPE once per base name, cumulative buckets,
// labeled series grouped under their base.
func TestExpositionGolden(t *testing.T) {
	r := New()
	r.Counter(`demo_drops_total{qci="9"}`, "drops by QCI").Add(3)
	r.Counter(`demo_drops_total{qci="1"}`, "drops by QCI").Add(1)
	r.Gauge("demo_in_flight", "in-flight packets").Set(7)
	h := r.Histogram("demo_latency_seconds", "negotiation latency", []float64{0.1, 0.5})
	h.Observe(0.05)
	h.Observe(0.05)
	h.Observe(0.3)
	h.Observe(2)

	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP demo_drops_total drops by QCI
# TYPE demo_drops_total counter
demo_drops_total{qci="1"} 1
demo_drops_total{qci="9"} 3
# HELP demo_in_flight in-flight packets
# TYPE demo_in_flight gauge
demo_in_flight 7
# HELP demo_latency_seconds negotiation latency
# TYPE demo_latency_seconds histogram
demo_latency_seconds_bucket{le="0.1"} 2
demo_latency_seconds_bucket{le="0.5"} 3
demo_latency_seconds_bucket{le="+Inf"} 4
demo_latency_seconds_sum 2.4
demo_latency_seconds_count 4
`
	if b.String() != want {
		t.Fatalf("exposition mismatch:\n got:\n%s\nwant:\n%s", b.String(), want)
	}
}

func TestRegistrationValidation(t *testing.T) {
	r := New()
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		fn()
	}
	r.Counter("ok_total", "x")
	mustPanic("kind mismatch", func() { r.Gauge("ok_total", "x") })
	mustPanic("bad name", func() { r.Counter("9starts_with_digit", "x") })
	mustPanic("unclosed label", func() { r.Counter("x_total{qci=\"1\"", "x") })
	mustPanic("labeled histogram", func() { r.Histogram(`h{a="b"}`, "x", []float64{1}) })
	mustPanic("unsorted bounds", func() { r.Histogram("h2", "x", []float64{2, 1}) })
}

func TestExpBuckets(t *testing.T) {
	got := ExpBuckets(0.001, 10, 4)
	want := []float64{0.001, 0.01, 0.1, 1}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("ExpBuckets = %v, want %v", got, want)
		}
	}
}

// TestObserveZeroAlloc pins the observation paths at zero allocations
// so instrumented event-engine hot paths keep their ZeroAlloc
// guarantees (verify.sh runs this in the non-race allocs pass).
func TestObserveZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are perturbed by -race instrumentation")
	}
	r := New()
	c := r.Counter("za_total", "x")
	g := r.Gauge("za_gauge", "x")
	h := r.Histogram("za_hist", "x", DefBuckets)
	if avg := testing.AllocsPerRun(200, func() {
		c.Inc()
		c.Add(3)
		g.Set(42)
		g.Add(-1)
		h.Observe(0.42)
	}); avg != 0 {
		t.Fatalf("observation path allocates %v per op, want 0", avg)
	}
}
