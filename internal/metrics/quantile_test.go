package metrics

import (
	"math"
	"testing"
)

func TestQuantileFromBuckets(t *testing.T) {
	r := New()
	h := r.Histogram("q_test_seconds", "t", []float64{1, 2, 4, 8})

	// 100 observations uniformly in (0,1]: every quantile lands in the
	// first bucket, interpolated from 0 to 1.
	for i := 0; i < 100; i++ {
		h.Observe(0.5)
	}
	if got := h.Quantile(0.5); got <= 0 || got > 1 {
		t.Fatalf("median of first-bucket mass = %v, want in (0,1]", got)
	}

	// Push mass into the (2,4] bucket; p99 should move there.
	for i := 0; i < 900; i++ {
		h.Observe(3)
	}
	if got := h.Quantile(0.99); got <= 2 || got > 4 {
		t.Fatalf("p99 = %v, want in (2,4]", got)
	}

	// +Inf observations clamp to the top finite bound.
	for i := 0; i < 10000; i++ {
		h.Observe(100)
	}
	if got := h.Quantile(0.99); got != 8 {
		t.Fatalf("p99 with +Inf mass = %v, want clamp to 8", got)
	}
}

func TestQuantileWindowDiff(t *testing.T) {
	r := New()
	h := r.Histogram("q_window_seconds", "t", []float64{1, 2, 4})
	h.Observe(0.5) // pre-window noise
	before := h.BucketCounts()
	for i := 0; i < 50; i++ {
		h.Observe(3)
	}
	after := h.BucketCounts()
	window := make([]uint64, len(after))
	for i := range after {
		window[i] = after[i] - before[i]
	}
	got := Quantile(h.BucketBounds(), window, 0.5)
	if got <= 2 || got > 4 {
		t.Fatalf("windowed median = %v, want in (2,4] (pre-window mass excluded)", got)
	}
}

func TestQuantileEdgeCases(t *testing.T) {
	bounds := []float64{1, 2}
	if got := Quantile(bounds, []uint64{0, 0, 0}, 0.5); !math.IsNaN(got) {
		t.Fatalf("empty distribution = %v, want NaN", got)
	}
	if got := Quantile(bounds, []uint64{0, 0, 7}, 0.5); got != 2 {
		t.Fatalf("all-inf distribution = %v, want clamp to 2", got)
	}
	if got := Quantile(bounds, []uint64{4, 0, 0}, 1.5); got != 1 {
		t.Fatalf("q>1 = %v, want clamped to max finite estimate 1", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched shapes did not panic")
		}
	}()
	Quantile(bounds, []uint64{1}, 0.5)
}
