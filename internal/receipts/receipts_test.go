package receipts

import (
	"errors"
	"os"
	"testing"
	"time"

	"tlc/internal/poc"
	"tlc/internal/sim"
)

var (
	edgeKP *poc.KeyPair
	opKP   *poc.KeyPair
)

func init() {
	rng := sim.NewRNG(808)
	var err error
	if edgeKP, err = poc.GenerateKeyPair(poc.DefaultKeyBits, rng.Fork("e")); err != nil {
		panic(err)
	}
	if opKP, err = poc.GenerateKeyPair(poc.DefaultKeyBits, rng.Fork("o")); err != nil {
		panic(err)
	}
}

// testNow is the fixed archive timestamp used throughout: the store
// only records the time the caller hands it, and pinning it keeps
// these tests off the wall clock (tlcvet simtime).
var testNow = time.Date(2019, 1, 7, 8, 13, 46, 0, time.UTC)

func buildProof(t *testing.T, rng *sim.RNG, cycle int64, xe, xo uint64) []byte {
	t.Helper()
	plan := poc.Plan{TStart: cycle * int64(time.Hour), TEnd: (cycle + 1) * int64(time.Hour), C: 0.5}
	cdr, err := poc.BuildCDR(plan, poc.RoleOperator, 0, xo, rng, opKP.Private)
	if err != nil {
		t.Fatal(err)
	}
	cda, err := poc.BuildCDA(plan, poc.RoleEdge, 0, xe, cdr, rng, edgeKP.Private)
	if err != nil {
		t.Fatal(err)
	}
	proof, err := poc.BuildPoC(cda, opKP.Private)
	if err != nil {
		t.Fatal(err)
	}
	data, err := proof.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestPutGetList(t *testing.T) {
	store, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(1)
	now := testNow
	p1 := buildProof(t, rng, 0, 1000, 900)
	p2 := buildProof(t, rng, 1, 2000, 1900)
	r1, err := store.Put(p1, now)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := store.Put(p2, now); err != nil {
		t.Fatal(err)
	}
	if r1.X != 950 || r1.PlanC != 0.5 {
		t.Fatalf("record = %+v", r1)
	}
	got, err := store.Get(r1.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.X != r1.X || string(got.Proof) != string(p1) {
		t.Fatal("Get mismatch")
	}
	list, err := store.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 2 || list[0].PlanStart > list[1].PlanStart {
		t.Fatalf("List = %d records, order wrong", len(list))
	}
}

func TestPutDeduplicates(t *testing.T) {
	store, _ := Open(t.TempDir())
	rng := sim.NewRNG(2)
	p := buildProof(t, rng, 0, 1000, 900)
	a, _ := store.Put(p, testNow)
	b, _ := store.Put(p, testNow)
	if a.ID != b.ID {
		t.Fatal("same proof got different IDs")
	}
	list, _ := store.List()
	if len(list) != 1 {
		t.Fatalf("duplicate archived: %d records", len(list))
	}
}

func TestPutRejectsGarbage(t *testing.T) {
	store, _ := Open(t.TempDir())
	if _, err := store.Put([]byte("garbage"), testNow); err == nil {
		t.Fatal("garbage archived")
	}
}

func TestGetDetectsTampering(t *testing.T) {
	store, _ := Open(t.TempDir())
	rng := sim.NewRNG(3)
	rec, err := store.Put(buildProof(t, rng, 0, 1000, 900), testNow)
	if err != nil {
		t.Fatal(err)
	}
	// Replace the stored file with a record whose proof no longer
	// matches the content address: Get must reject it.
	forged := []byte(`{"id":"` + rec.ID + `","plan_start":0,"plan_end":1,"plan_c":0.5,` +
		`"x":1,"stored_at":"2019-01-07T00:00:00Z","proof":"AAAA"}`)
	if err := os.WriteFile(store.path(rec.ID), forged, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := store.Get(rec.ID); err == nil {
		t.Fatal("tampered record passed its content address")
	}
	// And List surfaces the corruption rather than skipping it.
	if _, err := store.List(); err == nil {
		t.Fatal("List ignored a corrupt record")
	}
}

func TestAuditAcceptsValidArchive(t *testing.T) {
	store, _ := Open(t.TempDir())
	rng := sim.NewRNG(4)
	for i := int64(0); i < 5; i++ {
		if _, err := store.Put(buildProof(t, rng, i, 1000+uint64(i), 900), testNow); err != nil {
			t.Fatal(err)
		}
	}
	results, err := store.Audit(edgeKP.Public, opKP.Public)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 5 {
		t.Fatalf("audited %d", len(results))
	}
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("valid receipt %s failed: %v", r.ID, r.Err)
		}
	}
	total, err := store.TotalSettled(edgeKP.Public, opKP.Public)
	if err != nil {
		t.Fatal(err)
	}
	if total == 0 {
		t.Fatal("zero settled total")
	}
}

func TestAuditFlagsWrongKeys(t *testing.T) {
	store, _ := Open(t.TempDir())
	rng := sim.NewRNG(5)
	if _, err := store.Put(buildProof(t, rng, 0, 1000, 900), testNow); err != nil {
		t.Fatal(err)
	}
	// Audit with swapped keys: every signature check fails.
	results, err := store.Audit(opKP.Public, edgeKP.Public)
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Err == nil {
		t.Fatal("audit with wrong keys passed")
	}
	if !errors.Is(results[0].Err, poc.ErrBadSignature) && !errors.Is(results[0].Err, poc.ErrRoleChain) {
		t.Fatalf("unexpected audit error: %v", results[0].Err)
	}
}
