// Package receipts is the durable Proof-of-Charging archive: both
// parties "locally store [the PoC] as a charging receipt" (§5.3.2)
// and later hand receipts to a public verifier. The archive is a
// directory of JSON records, content-addressed so duplicate receipts
// de-duplicate naturally, with a bulk re-verification pass that
// reruns Algorithm 2 over everything (the court/FCC audit workflow of
// §5.3.4).
package receipts

import (
	"crypto/rsa"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"tlc/internal/poc"
)

// Record is one archived receipt.
type Record struct {
	// ID is the content address (hex SHA-256 prefix of the proof).
	ID string `json:"id"`
	// Plan is the data-plan fragment the proof settles.
	PlanStart int64   `json:"plan_start"`
	PlanEnd   int64   `json:"plan_end"`
	PlanC     float64 `json:"plan_c"`
	// X is the settled volume in bytes (denormalised for listing).
	X uint64 `json:"x"`
	// StoredAt is the archive timestamp.
	StoredAt time.Time `json:"stored_at"`
	// Proof is the serialized PoC.
	Proof []byte `json:"proof"`
}

// Store is a directory-backed archive.
type Store struct {
	dir string
}

// Open creates or opens an archive directory.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("receipts: %w", err)
	}
	return &Store{dir: dir}, nil
}

// idOf content-addresses a proof.
func idOf(proof []byte) string {
	sum := sha256.Sum256(proof)
	return hex.EncodeToString(sum[:8])
}

func (s *Store) path(id string) string {
	return filepath.Join(s.dir, "receipt-"+id+".json")
}

// Put archives a serialized proof, returning its record. The proof is
// decoded first: garbage never enters the archive.
func (s *Store) Put(proof []byte, storedAt time.Time) (*Record, error) {
	var p poc.PoC
	if err := p.UnmarshalBinary(proof); err != nil {
		return nil, fmt.Errorf("receipts: refusing to archive undecodable proof: %w", err)
	}
	rec := &Record{
		ID:        idOf(proof),
		PlanStart: p.Plan.TStart,
		PlanEnd:   p.Plan.TEnd,
		PlanC:     p.Plan.C,
		X:         p.X,
		StoredAt:  storedAt.UTC(),
		Proof:     append([]byte(nil), proof...),
	}
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return nil, err
	}
	if err := os.WriteFile(s.path(rec.ID), data, 0o644); err != nil {
		return nil, fmt.Errorf("receipts: %w", err)
	}
	return rec, nil
}

// Get loads a record by ID.
func (s *Store) Get(id string) (*Record, error) {
	data, err := os.ReadFile(s.path(id))
	if err != nil {
		return nil, fmt.Errorf("receipts: %w", err)
	}
	var rec Record
	if err := json.Unmarshal(data, &rec); err != nil {
		return nil, fmt.Errorf("receipts: corrupt record %s: %w", id, err)
	}
	if idOf(rec.Proof) != rec.ID {
		return nil, fmt.Errorf("receipts: record %s fails its content address", id)
	}
	return &rec, nil
}

// List returns all records sorted by plan start then ID.
func (s *Store) List() ([]*Record, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("receipts: %w", err)
	}
	var out []*Record
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "receipt-") || !strings.HasSuffix(name, ".json") {
			continue
		}
		id := strings.TrimSuffix(strings.TrimPrefix(name, "receipt-"), ".json")
		rec, err := s.Get(id)
		if err != nil {
			return nil, err
		}
		out = append(out, rec)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].PlanStart != out[j].PlanStart {
			return out[i].PlanStart < out[j].PlanStart
		}
		return out[i].ID < out[j].ID
	})
	return out, nil
}

// AuditResult is one receipt's verification outcome.
type AuditResult struct {
	ID  string
	X   uint64
	Err error
}

// Audit reruns Algorithm 2 over the whole archive with a shared
// replay set, so duplicated nonces across records are caught.
func (s *Store) Audit(edgeKey, operatorKey *rsa.PublicKey) ([]AuditResult, error) {
	recs, err := s.List()
	if err != nil {
		return nil, err
	}
	verifier := poc.NewVerifier(edgeKey, operatorKey)
	out := make([]AuditResult, 0, len(recs))
	for _, rec := range recs {
		var p poc.PoC
		res := AuditResult{ID: rec.ID, X: rec.X}
		if err := p.UnmarshalBinary(rec.Proof); err != nil {
			res.Err = err
		} else {
			res.Err = verifier.Verify(&p, poc.Plan{TStart: rec.PlanStart, TEnd: rec.PlanEnd, C: rec.PlanC})
		}
		out = append(out, res)
	}
	return out, nil
}

// TotalSettled sums the settled volumes of valid records — the
// billing total for the archive's period.
func (s *Store) TotalSettled(edgeKey, operatorKey *rsa.PublicKey) (uint64, error) {
	results, err := s.Audit(edgeKey, operatorKey)
	if err != nil {
		return 0, err
	}
	var total uint64
	for _, r := range results {
		if r.Err == nil {
			total += r.X
		}
	}
	return total, nil
}
