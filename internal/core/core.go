// Package core implements TLC's primary contribution: the
// loss-selfishness cancellation game of §5.1 (Algorithm 1), the
// negotiation strategies of §5.2 and §7.1 (honest, optimal
// minimax/maximin, random-selfish, and the misbehaving variants
// discussed in §5.1), and checkable statements of Theorems 2-4.
//
// The game is deliberately independent of the network emulation: it
// consumes two parties' usage views (however obtained) and produces a
// negotiated charging volume. The protocol encoding and signatures
// live in internal/poc; the transport in internal/protocol.
package core

import (
	"errors"
	"fmt"
	"math"

	"tlc/internal/sim"
)

// Role identifies a negotiation party.
type Role int

const (
	// EdgeRole is the edge application vendor (wants to minimise
	// its payment).
	EdgeRole Role = iota
	// OperatorRole is the cellular operator (wants to maximise the
	// charge).
	OperatorRole
)

// String implements fmt.Stringer.
func (r Role) String() string {
	if r == EdgeRole {
		return "edge"
	}
	return "operator"
}

// View is what one party knows about the cycle's usage when entering
// the negotiation: its estimate of the edge-sent volume x̂e and of the
// edge-received volume x̂o, in bytes. Each party knows one side
// exactly (its own record) and estimates the other via the readily
// available mechanisms of §5.4 — the edge's local monitors, the
// operator's gateway charging function and RRC COUNTER CHECK.
type View struct {
	Sent     float64 // estimate of x̂e
	Received float64 // estimate of x̂o
}

// Charge evaluates Algorithm 1 line 8: the negotiated volume for a
// pair of claims under lost-data weight c.
//
//	x = xo + c·(xe − xo)   if xo ≤ xe
//	x = xe + c·(xo − xe)   otherwise
func Charge(c, xe, xo float64) float64 {
	if xo <= xe {
		return xo + c*(xe-xo)
	}
	return xe + c*(xo-xe)
}

// Expected returns the ground-truth charging volume x̂ = x̂o + c·(x̂e −
// x̂o) of Equation (1).
func Expected(c, sent, received float64) float64 {
	return Charge(c, sent, received)
}

// Bounds carries Algorithm 1's claim window (xL, xU); claims in the
// next round must fall inside it.
type Bounds struct {
	Lower float64
	Upper float64 // may be +Inf
}

// Contains reports whether a claim is admissible under the bounds.
// Algorithm 1 requires claims strictly inside the window, xe, xo ∈
// (xL, xU): the strictly shrinking open window is what forces a
// rejected negotiation to move and eventually terminate. The initial
// window (0, ∞) additionally admits a zero claim so that an idle
// cycle can settle at zero usage.
func (b Bounds) Contains(x float64) bool {
	if x == 0 && b.Lower == 0 {
		return !(b.Upper <= 0)
	}
	return x > b.Lower && x < b.Upper
}

// ClampInside moves a desired claim to an admissible point of the
// open window, nudging boundary claims inward by a small fraction of
// the window width. Honest parties use it when their truthful report
// became a window boundary after a rejection; the nudge is what the
// open-interval constraint of Algorithm 1 costs them.
func (b Bounds) ClampInside(x float64) float64 {
	if b.Contains(x) {
		return x
	}
	if math.IsInf(b.Upper, 1) {
		if x <= b.Lower {
			return b.Lower + math.Max(1e-9, b.Lower*1e-9)
		}
		return x
	}
	width := b.Upper - b.Lower
	if width <= 0 {
		// Degenerate (empty) window: nothing is admissible; return
		// the boundary and let the violation be flagged.
		return b.Lower
	}
	// The nudge must be vanishingly small relative to the window so
	// that a truthful party repeating its boundary claim does not
	// drag the window away from its record.
	step := math.Max(width*1e-9, math.Nextafter(b.Lower, b.Upper)-b.Lower)
	if x <= b.Lower {
		return b.Lower + step
	}
	return b.Upper - step
}

// Strategy decides a party's claims and accept/reject choices.
type Strategy interface {
	// Name identifies the strategy in experiment output.
	Name() string
	// Claim returns the volume the party reports this round.
	Claim(role Role, view View, bounds Bounds, round int, rng *sim.RNG) float64
	// Decide reports whether the party accepts the other's claim.
	Decide(role Role, view View, own, other float64, round int, rng *sim.RNG) bool
}

// DefaultTolerance absorbs charging-record estimation error in the
// cross-checks: a party rejects the other's claim only when it
// exceeds the party's own ground truth by more than this fraction.
// Figure 18 puts the record error around 1-2% on average with a
// ≤7.7% 95th percentile; a 3% guard keeps honest negotiations from
// spuriously rejecting while still detecting meaningful selfishness.
const DefaultTolerance = 0.03

// crossCheckAccept implements the §4 "cross-check" bound: the edge
// rejects xo > x̂e (its sent record), the operator rejects xe < x̂o
// (its received record), each with a tolerance for record error.
func crossCheckAccept(role Role, view View, other, tol float64) bool {
	switch role {
	case EdgeRole:
		return other <= view.Sent*(1+tol)
	default:
		return other >= view.Received*(1-tol)
	}
}

// HonestStrategy reports the party's true record and accepts anything
// passing the cross-check. An honest edge claims its sent volume; an
// honest operator claims its received volume.
type HonestStrategy struct {
	// Tolerance for the cross-check; DefaultTolerance if zero.
	Tolerance float64
}

// Name implements Strategy.
func (HonestStrategy) Name() string { return "honest" }

func (s HonestStrategy) tol() float64 {
	if s.Tolerance > 0 {
		return s.Tolerance
	}
	return DefaultTolerance
}

// Claim implements Strategy.
func (s HonestStrategy) Claim(role Role, view View, bounds Bounds, _ int, _ *sim.RNG) float64 {
	var x float64
	if role == EdgeRole {
		x = view.Sent
	} else {
		x = view.Received
	}
	return bounds.ClampInside(x)
}

// Decide implements Strategy.
func (s HonestStrategy) Decide(role Role, view View, _, other float64, _ int, _ *sim.RNG) bool {
	return crossCheckAccept(role, view, other, s.tol())
}

// OptimalStrategy is the minimax/maximin equilibrium play of §5.1
// (proof in Appendix C): the edge claims its estimate of the received
// volume x̂o, the operator claims its estimate of the sent volume x̂e.
// With both parties rational this converges in one round to x = x̂
// (Theorems 3 and 4).
type OptimalStrategy struct {
	Tolerance float64
}

// Name implements Strategy.
func (OptimalStrategy) Name() string { return "optimal" }

func (s OptimalStrategy) tol() float64 {
	if s.Tolerance > 0 {
		return s.Tolerance
	}
	return DefaultTolerance
}

// Claim implements Strategy.
func (s OptimalStrategy) Claim(role Role, view View, bounds Bounds, _ int, _ *sim.RNG) float64 {
	var x float64
	if role == EdgeRole {
		x = view.Received // argmin_xe max_xo x  =>  xe = x̂o
	} else {
		x = view.Sent // argmax_xo min_xe x  =>  xo = x̂e
	}
	return bounds.ClampInside(x)
}

// Decide implements Strategy.
func (s OptimalStrategy) Decide(role Role, view View, _, other float64, _ int, _ *sim.RNG) bool {
	return crossCheckAccept(role, view, other, s.tol())
}

// RandomSelfishStrategy models §7.1's TLC-random: both parties are
// selfish but unaware of the optimal play. Each round the operator
// uniformly over-claims above its received record (up to OverCap
// times its sent estimate) and the edge uniformly under-claims below
// its sent record, re-drawing inside the tightening Algorithm 1
// bounds until both claims survive the cross-checks.
type RandomSelfishStrategy struct {
	Tolerance float64
	// OverCap bounds the operator's first-round over-claim as a
	// multiple of its sent estimate; 0 means 1.2.
	OverCap float64
}

// Name implements Strategy.
func (RandomSelfishStrategy) Name() string { return "random" }

func (s RandomSelfishStrategy) tol() float64 {
	if s.Tolerance > 0 {
		return s.Tolerance
	}
	return DefaultTolerance
}

func (s RandomSelfishStrategy) overCap() float64 {
	if s.OverCap > 1 {
		return s.OverCap
	}
	return 1.2
}

// Claim implements Strategy.
func (s RandomSelfishStrategy) Claim(role Role, view View, bounds Bounds, _ int, rng *sim.RNG) float64 {
	if role == EdgeRole {
		// Under-claim: uniform between the window floor and the
		// edge's sent record (it will not over-claim, Theorem 2).
		hi := math.Min(view.Sent, bounds.Upper)
		lo := math.Max(0, bounds.Lower)
		if lo >= hi {
			return bounds.ClampInside(hi)
		}
		return bounds.ClampInside(rng.Uniform(lo, hi))
	}
	// Over-claim: uniform between the operator's received record and
	// a capped multiple of what it believes was sent.
	lo := math.Max(view.Received, bounds.Lower)
	hi := math.Min(view.Sent*s.overCap(), bounds.Upper)
	if hi <= lo {
		return bounds.ClampInside(lo)
	}
	return bounds.ClampInside(rng.Uniform(lo, hi))
}

// Decide implements Strategy.
func (s RandomSelfishStrategy) Decide(role Role, view View, _, other float64, _ int, _ *sim.RNG) bool {
	return crossCheckAccept(role, view, other, s.tol())
}

// AlwaysRejectStrategy is the misbehaving party of §5.1 that
// "intentionally rejects all claims". Negotiations against it never
// converge; Negotiate returns with Converged=false after MaxRounds.
type AlwaysRejectStrategy struct{ Inner Strategy }

// Name implements Strategy.
func (s AlwaysRejectStrategy) Name() string { return "always-reject" }

// Claim implements Strategy.
func (s AlwaysRejectStrategy) Claim(role Role, view View, bounds Bounds, round int, rng *sim.RNG) float64 {
	return s.inner().Claim(role, view, bounds, round, rng)
}

// Decide implements Strategy.
func (s AlwaysRejectStrategy) Decide(Role, View, float64, float64, int, *sim.RNG) bool { return false }

func (s AlwaysRejectStrategy) inner() Strategy {
	if s.Inner != nil {
		return s.Inner
	}
	return HonestStrategy{}
}

// BoundViolatorStrategy ignores Algorithm 1's line 12 constraint and
// keeps claiming an out-of-window volume. The other party detects the
// violation and rejects (§5.1's misbehaviour discussion).
type BoundViolatorStrategy struct {
	// Volume is the insisted claim.
	Volume float64
}

// Name implements Strategy.
func (BoundViolatorStrategy) Name() string { return "bound-violator" }

// Claim implements Strategy.
func (s BoundViolatorStrategy) Claim(Role, View, Bounds, int, *sim.RNG) float64 { return s.Volume }

// Decide implements Strategy.
func (s BoundViolatorStrategy) Decide(role Role, view View, _, other float64, _ int, _ *sim.RNG) bool {
	return crossCheckAccept(role, view, other, DefaultTolerance)
}

// RoundRecord captures one round of Algorithm 1 for the audit trail.
type RoundRecord struct {
	EdgeClaim      float64
	OperatorClaim  float64
	EdgeAccepts    bool
	OperatorAccept bool
	ViolationEdge  bool // edge's claim fell outside the window
	ViolationOp    bool
}

// Outcome is the result of a negotiation.
type Outcome struct {
	// X is the negotiated charging volume (bytes); valid only when
	// Converged.
	X float64
	// Rounds is the number of CDR exchanges performed.
	Rounds int
	// Converged reports whether both parties accepted.
	Converged bool
	// Trail records every round.
	Trail []RoundRecord
}

// DefaultMaxRounds caps the negotiation against misbehaving parties.
const DefaultMaxRounds = 64

// Config parameterises a negotiation run.
type Config struct {
	// C is the lost-data charging weight from the data plan.
	C float64
	// Edge and Operator are the two parties' strategies.
	Edge, Operator Strategy
	// EdgeView and OperatorView are their usage views.
	EdgeView, OperatorView View
	// MaxRounds defaults to DefaultMaxRounds.
	MaxRounds int
	// RNG drives randomized strategies; required for those.
	RNG *sim.RNG
}

// ErrNoStrategy is returned when a party's strategy is missing.
var ErrNoStrategy = errors.New("core: both Edge and Operator strategies are required")

// Negotiate runs Algorithm 1 (loss-selfishness cancellation). It is
// the in-process form of the protocol; internal/protocol runs the
// same rounds as signed CDR/CDA/PoC messages over a transport.
func Negotiate(cfg Config) (Outcome, error) {
	if cfg.Edge == nil || cfg.Operator == nil {
		return Outcome{}, ErrNoStrategy
	}
	if cfg.C < 0 || cfg.C > 1 {
		return Outcome{}, fmt.Errorf("core: charging weight c=%v outside [0,1]", cfg.C)
	}
	maxRounds := cfg.MaxRounds
	if maxRounds <= 0 {
		maxRounds = DefaultMaxRounds
	}
	rng := cfg.RNG
	if rng == nil {
		rng = sim.NewRNG(0)
	}

	bounds := Bounds{Lower: 0, Upper: math.Inf(1)}
	out := Outcome{}
	for round := 1; round <= maxRounds; round++ {
		// Line 4: exchange CDRs.
		xe := cfg.Edge.Claim(EdgeRole, cfg.EdgeView, bounds, round, rng)
		xo := cfg.Operator.Claim(OperatorRole, cfg.OperatorView, bounds, round, rng)
		rec := RoundRecord{EdgeClaim: xe, OperatorClaim: xo}

		// Claims outside the agreed window are protocol violations
		// the other party detects locally and rejects (§5.1).
		rec.ViolationEdge = !bounds.Contains(xe)
		rec.ViolationOp = !bounds.Contains(xo)

		// Line 6: exchange decisions.
		rec.EdgeAccepts = !rec.ViolationOp &&
			cfg.Edge.Decide(EdgeRole, cfg.EdgeView, xe, xo, round, rng)
		rec.OperatorAccept = !rec.ViolationEdge &&
			cfg.Operator.Decide(OperatorRole, cfg.OperatorView, xo, xe, round, rng)

		out.Trail = append(out.Trail, rec)
		out.Rounds = round

		if rec.EdgeAccepts && rec.OperatorAccept {
			// Line 8: settle.
			out.X = Charge(cfg.C, xe, xo)
			out.Converged = true
			return out, nil
		}
		// Line 12: tighten the claim window. A violating claim is
		// treated as no claim at all — a misbehaving party must not
		// be able to manipulate the window — so the bounds update
		// only when both claims were admissible.
		if !rec.ViolationEdge && !rec.ViolationOp {
			bounds = Bounds{Lower: math.Min(xe, xo), Upper: math.Max(xe, xo)}
		}
	}
	return out, nil
}
