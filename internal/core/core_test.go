package core

import (
	"math"
	"testing"
	"testing/quick"

	"tlc/internal/sim"
)

func TestCharge(t *testing.T) {
	cases := []struct {
		c, xe, xo, want float64
	}{
		{0, 100, 80, 80},   // only received data charged
		{1, 100, 80, 100},  // all sent data charged
		{0.5, 100, 80, 90}, // halfway
		{0.5, 80, 100, 90}, // swapped order uses the symmetric branch
		{0.25, 100, 100, 100},
		{0.75, 0, 0, 0},
	}
	for _, cse := range cases {
		if got := Charge(cse.c, cse.xe, cse.xo); math.Abs(got-cse.want) > 1e-9 {
			t.Errorf("Charge(%v,%v,%v) = %v, want %v", cse.c, cse.xe, cse.xo, got, cse.want)
		}
	}
}

func TestChargeBoundedProperty(t *testing.T) {
	// For any claims, the charge lies between min and max claim.
	f := func(c8 uint8, xe, xo uint32) bool {
		c := float64(c8%101) / 100
		x := Charge(c, float64(xe), float64(xo))
		lo, hi := math.Min(float64(xe), float64(xo)), math.Max(float64(xe), float64(xo))
		return x >= lo-1e-9 && x <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestChargeMonotoneProperty(t *testing.T) {
	// x is positively monotonic in both claims (the lemma behind
	// Theorem 2's proof).
	f := func(c8 uint8, xe, xo, bump uint16) bool {
		c := float64(c8%101) / 100
		base := Charge(c, float64(xe), float64(xo))
		upE := Charge(c, float64(xe)+float64(bump), float64(xo))
		upO := Charge(c, float64(xe), float64(xo)+float64(bump))
		return upE >= base-1e-9 && upO >= base-1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func exactViews(sent, received float64) (View, View) {
	v := View{Sent: sent, Received: received}
	return v, v
}

func TestHonestOneRoundExact(t *testing.T) {
	// Theorem 4 case (1): honest parties, exact views: 1 round, x = x̂.
	ev, ov := exactViews(1000, 900)
	out, err := Negotiate(Config{
		C: 0.5, Edge: HonestStrategy{}, Operator: HonestStrategy{},
		EdgeView: ev, OperatorView: ov,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Converged || out.Rounds != 1 {
		t.Fatalf("honest negotiation: %+v", out)
	}
	want := Expected(0.5, 1000, 900)
	if math.Abs(out.X-want) > 1e-9 {
		t.Fatalf("x = %v, want %v", out.X, want)
	}
}

func TestOptimalOneRoundExact(t *testing.T) {
	// Theorem 4 case (2): rational parties playing minimax/maximin:
	// 1 round, x = x̂, for every c.
	for _, c := range []float64{0, 0.25, 0.5, 0.75, 1} {
		ev, ov := exactViews(5000, 4200)
		out, err := Negotiate(Config{
			C: c, Edge: OptimalStrategy{}, Operator: OptimalStrategy{},
			EdgeView: ev, OperatorView: ov,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !out.Converged || out.Rounds != 1 {
			t.Fatalf("c=%v: %+v", c, out)
		}
		if want := Expected(c, 5000, 4200); math.Abs(out.X-want) > 1e-9 {
			t.Fatalf("c=%v: x = %v, want %v", c, out.X, want)
		}
	}
}

func TestTheorem3CorrectnessProperty(t *testing.T) {
	// Rational (optimal) parties with exact views always converge to
	// x = x̂ regardless of the usage pair and c.
	f := func(c8 uint8, recvK uint16, lossK uint16) bool {
		c := float64(c8%101) / 100
		received := float64(recvK)
		sent := received + float64(lossK)
		ev, ov := exactViews(sent, received)
		out, err := Negotiate(Config{
			C: c, Edge: OptimalStrategy{}, Operator: OptimalStrategy{},
			EdgeView: ev, OperatorView: ov,
		})
		if err != nil || !out.Converged || out.Rounds != 1 {
			return false
		}
		return math.Abs(out.X-Expected(c, sent, received)) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTheorem2BoundProperty(t *testing.T) {
	// For every mix of honest/optimal/random strategies with exact
	// views, the negotiated charge satisfies x̂o ≤ x ≤ x̂e (up to the
	// cross-check tolerance).
	rng := sim.NewRNG(77)
	strategies := []Strategy{HonestStrategy{}, OptimalStrategy{}, RandomSelfishStrategy{}}
	f := func(ei, oi uint8, recvK uint16, lossK uint16, seed int64) bool {
		edge := strategies[int(ei)%len(strategies)]
		op := strategies[int(oi)%len(strategies)]
		received := float64(recvK) + 1
		sent := received + float64(lossK)
		ev, ov := exactViews(sent, received)
		out, err := Negotiate(Config{
			C: 0.5, Edge: edge, Operator: op,
			EdgeView: ev, OperatorView: ov,
			RNG: rng.Fork("case"), MaxRounds: 128,
		})
		if err != nil {
			return false
		}
		if !out.Converged {
			// Random strategies must converge within the generous
			// round budget.
			return false
		}
		tol := DefaultTolerance
		return out.X >= received*(1-tol)-1e-6 && out.X <= sent*(1+tol)+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestBoundedChargingVsLegacyUnbounded(t *testing.T) {
	// §3.1: in legacy 4G/5G a dishonest operator can claim an
	// arbitrarily high volume. Under TLC the same operator's claim is
	// rejected by the edge cross-check and the settled charge stays
	// bounded by the sent volume.
	ev, ov := exactViews(1000, 900)
	// The operator opens with a 100x over-claim then follows the
	// random selfish strategy inside the tightening bounds.
	out, err := Negotiate(Config{
		C:    0.5,
		Edge: OptimalStrategy{}, Operator: RandomSelfishStrategy{OverCap: 100},
		EdgeView: ev, OperatorView: ov,
		RNG: sim.NewRNG(5), MaxRounds: 256,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Converged {
		t.Fatalf("did not converge: %+v rounds=%d", out, out.Rounds)
	}
	if out.X > 1000*(1+DefaultTolerance) {
		t.Fatalf("charge %v exceeds sent volume bound", out.X)
	}
}

func TestRandomStrategyConvergesInFewRounds(t *testing.T) {
	// Figure 16b: TLC-random needs ~2.7-4.6 rounds on average.
	rng := sim.NewRNG(11)
	total := 0
	const n = 400
	for i := 0; i < n; i++ {
		ev, ov := exactViews(1000, 930) // ~7% loss, webcam-like
		out, err := Negotiate(Config{
			C: 0.5, Edge: RandomSelfishStrategy{}, Operator: RandomSelfishStrategy{},
			EdgeView: ev, OperatorView: ov,
			RNG: rng.Fork("iter"), MaxRounds: 256,
		})
		if err != nil || !out.Converged {
			t.Fatalf("iteration %d failed: %+v err=%v", i, out, err)
		}
		total += out.Rounds
	}
	avg := float64(total) / n
	if avg < 1.5 || avg > 8 {
		t.Fatalf("average rounds = %.2f, want in the paper's few-round regime", avg)
	}
}

func TestSmallerLossNeedsMoreRandomRounds(t *testing.T) {
	// The acceptance window is the loss interval; gaming's tiny loss
	// made TLC-random need the most rounds in Figure 16b (4.6).
	rng := sim.NewRNG(13)
	avgRounds := func(received float64) float64 {
		total := 0
		const n = 300
		for i := 0; i < n; i++ {
			ev, ov := exactViews(1000, received)
			out, _ := Negotiate(Config{
				C: 0.5, Edge: RandomSelfishStrategy{}, Operator: RandomSelfishStrategy{},
				EdgeView: ev, OperatorView: ov,
				RNG: rng.Fork("iter"), MaxRounds: 512,
			})
			if !out.Converged {
				t.Fatal("no convergence")
			}
			total += out.Rounds
		}
		return float64(total) / n
	}
	smallLoss := avgRounds(995) // 0.5% loss (gaming-like)
	bigLoss := avgRounds(800)   // 20% loss (congested VR-like)
	if smallLoss <= bigLoss {
		t.Fatalf("rounds(small loss)=%.2f <= rounds(big loss)=%.2f", smallLoss, bigLoss)
	}
}

func TestAlwaysRejectNeverConverges(t *testing.T) {
	ev, ov := exactViews(1000, 900)
	out, err := Negotiate(Config{
		C: 0.5, Edge: OptimalStrategy{}, Operator: AlwaysRejectStrategy{},
		EdgeView: ev, OperatorView: ov,
		RNG: sim.NewRNG(1), MaxRounds: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Converged {
		t.Fatal("converged against an always-rejecting party")
	}
	if out.Rounds != 16 {
		t.Fatalf("rounds = %d, want MaxRounds", out.Rounds)
	}
}

func TestBoundViolatorIsRejected(t *testing.T) {
	// An operator insisting on a claim outside the agreed window is
	// auto-rejected every round; it gains nothing (no PoC, §5.1).
	ev, ov := exactViews(1000, 900)
	out, err := Negotiate(Config{
		C:    0.5,
		Edge: HonestStrategy{}, Operator: BoundViolatorStrategy{Volume: 1e9},
		EdgeView: ev, OperatorView: ov,
		RNG: sim.NewRNG(1), MaxRounds: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Converged {
		t.Fatal("bound violator extracted a settlement")
	}
	for i, rec := range out.Trail {
		if i == 0 {
			continue // round 1's window is (0, inf): nothing to violate
		}
		if !rec.ViolationOp {
			t.Fatalf("round %d: violation not flagged: %+v", i+1, rec)
		}
		if rec.EdgeAccepts {
			t.Fatalf("round %d: edge accepted a violating claim", i+1)
		}
	}
}

func TestHonestVsRationalStillBounded(t *testing.T) {
	// §5.2: one honest + one rational party may converge to x != x̂,
	// but Theorem 2's bound still holds — better than legacy.
	rng := sim.NewRNG(21)
	for i := 0; i < 100; i++ {
		ev, ov := exactViews(1000, 900)
		out, err := Negotiate(Config{
			C: 0.5, Edge: HonestStrategy{}, Operator: RandomSelfishStrategy{},
			EdgeView: ev, OperatorView: ov,
			RNG: rng.Fork("i"), MaxRounds: 256,
		})
		if err != nil || !out.Converged {
			t.Fatalf("iteration %d: %+v err=%v", i, out, err)
		}
		if out.X < 900*(1-DefaultTolerance)-1e-9 || out.X > 1000*(1+DefaultTolerance)+1e-9 {
			t.Fatalf("charge %v escaped the Theorem 2 bound", out.X)
		}
	}
}

func TestViewsWithRecordErrorStillOneRound(t *testing.T) {
	// §7.2: TLC-optimal converged in 1 round on the real testbed
	// despite ~2% record errors; the tolerance absorbs them.
	ev := View{Sent: 1000, Received: 912} // edge's estimate of x̂o is 2% high
	ov := View{Sent: 1008, Received: 894} // operator's estimates off too
	out, err := Negotiate(Config{
		C: 0.5, Edge: OptimalStrategy{}, Operator: OptimalStrategy{},
		EdgeView: ev, OperatorView: ov,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Converged || out.Rounds != 1 {
		t.Fatalf("record errors broke 1-round convergence: %+v", out)
	}
	// The result deviates from x̂ = 950 only by the record error.
	if math.Abs(out.X-950) > 950*0.05 {
		t.Fatalf("x = %v, too far from 950", out.X)
	}
}

func TestNegotiateValidation(t *testing.T) {
	ev, ov := exactViews(10, 5)
	if _, err := Negotiate(Config{C: 0.5, Edge: HonestStrategy{}, EdgeView: ev, OperatorView: ov}); err == nil {
		t.Fatal("missing operator strategy accepted")
	}
	if _, err := Negotiate(Config{C: 1.5, Edge: HonestStrategy{}, Operator: HonestStrategy{}, EdgeView: ev, OperatorView: ov}); err == nil {
		t.Fatal("c > 1 accepted")
	}
	if _, err := Negotiate(Config{C: -0.1, Edge: HonestStrategy{}, Operator: HonestStrategy{}, EdgeView: ev, OperatorView: ov}); err == nil {
		t.Fatal("c < 0 accepted")
	}
}

func TestBoundsContains(t *testing.T) {
	// Algorithm 1's window is the open interval (xL, xU).
	b := Bounds{Lower: 10, Upper: 20}
	if b.Contains(10) || b.Contains(20) {
		t.Fatal("boundary claims must violate the open window")
	}
	if !b.Contains(15) || !b.Contains(10.001) || !b.Contains(19.999) {
		t.Fatal("interior claims rejected")
	}
	if b.Contains(9.999) || b.Contains(20.001) {
		t.Fatal("out-of-window accepted")
	}
	inf := Bounds{Lower: 0, Upper: math.Inf(1)}
	if !inf.Contains(1e18) {
		t.Fatal("infinite upper bound broken")
	}
	// The initial window admits a zero claim (idle cycle).
	if !inf.Contains(0) {
		t.Fatal("zero claim rejected in initial window")
	}
	if (Bounds{Lower: 5, Upper: 10}).Contains(0) {
		t.Fatal("zero claim accepted in a tightened window")
	}
}

func TestBoundsClampInside(t *testing.T) {
	b := Bounds{Lower: 10, Upper: 20}
	for _, x := range []float64{5, 10, 15, 20, 25} {
		got := b.ClampInside(x)
		if !b.Contains(got) {
			t.Fatalf("ClampInside(%v) = %v not inside (10,20)", x, got)
		}
	}
	// Interior values pass through unchanged.
	if b.ClampInside(15) != 15 {
		t.Fatal("interior value moved")
	}
	// The nudge is tiny relative to the window.
	if got := b.ClampInside(10); got-10 > 0.001 {
		t.Fatalf("lower nudge too large: %v", got)
	}
	// Infinite window: values above the floor pass through.
	inf := Bounds{Lower: 100, Upper: math.Inf(1)}
	if inf.ClampInside(1e12) != 1e12 {
		t.Fatal("infinite window mangled a valid claim")
	}
	if got := inf.ClampInside(50); got <= 100 {
		t.Fatalf("below-floor claim not nudged inside: %v", got)
	}
	// Degenerate window: returns the boundary (violation flagged by
	// the caller).
	deg := Bounds{Lower: 7, Upper: 7}
	if deg.ClampInside(7) != 7 {
		t.Fatal("degenerate window handling changed")
	}
}

func TestRoleString(t *testing.T) {
	if EdgeRole.String() != "edge" || OperatorRole.String() != "operator" {
		t.Fatal("role strings wrong")
	}
}

func TestStrategyNames(t *testing.T) {
	names := map[string]Strategy{
		"honest":         HonestStrategy{},
		"optimal":        OptimalStrategy{},
		"random":         RandomSelfishStrategy{},
		"always-reject":  AlwaysRejectStrategy{},
		"bound-violator": BoundViolatorStrategy{},
	}
	for want, s := range names {
		if s.Name() != want {
			t.Fatalf("Name() = %q, want %q", s.Name(), want)
		}
	}
}

func TestZeroLossDegenerateCase(t *testing.T) {
	// No loss at all: every strategy must settle at the true volume.
	ev, ov := exactViews(1000, 1000)
	for _, strat := range []Strategy{HonestStrategy{}, OptimalStrategy{}} {
		out, err := Negotiate(Config{
			C: 0.5, Edge: strat, Operator: strat,
			EdgeView: ev, OperatorView: ov, RNG: sim.NewRNG(3),
		})
		if err != nil || !out.Converged {
			t.Fatalf("%s: %+v err=%v", strat.Name(), out, err)
		}
		if math.Abs(out.X-1000) > 1e-9 {
			t.Fatalf("%s: x = %v, want 1000", strat.Name(), out.X)
		}
	}
}

func TestZeroUsage(t *testing.T) {
	ev, ov := exactViews(0, 0)
	out, err := Negotiate(Config{
		C: 0.5, Edge: OptimalStrategy{}, Operator: OptimalStrategy{},
		EdgeView: ev, OperatorView: ov,
	})
	if err != nil || !out.Converged || out.X != 0 {
		t.Fatalf("zero usage: %+v err=%v", out, err)
	}
}
