package core

import (
	"math"
	"testing"

	"tlc/internal/sim"
)

// fixedClaim always claims a constant volume and accepts anything
// passing the cross-check; used to probe Negotiate's response to one
// claim varying while everything else is pinned.
type fixedClaim struct{ v float64 }

func (fixedClaim) Name() string { return "fixed" }
func (s fixedClaim) Claim(_ Role, _ View, b Bounds, _ int, _ *sim.RNG) float64 {
	return b.ClampInside(s.v)
}
func (s fixedClaim) Decide(role Role, view View, _, other float64, _ int, _ *sim.RNG) bool {
	return crossCheckAccept(role, view, other, DefaultTolerance)
}

// TestPropertyChargeMonotoneAndBounded: across randomized claim
// grids, Charge is monotone non-decreasing in each claim and the
// result lies inside [min(xe,xo), max(xe,xo)] for every c in [0,1].
func TestPropertyChargeMonotoneAndBounded(t *testing.T) {
	rng := sim.NewRNG(20260805)
	for i := 0; i < 20000; i++ {
		c := rng.Float64()
		xe := rng.Uniform(0, 1e9)
		xo := rng.Uniform(0, 1e9)
		x := Charge(c, xe, xo)

		lo, hi := math.Min(xe, xo), math.Max(xe, xo)
		if x < lo-1e-6 || x > hi+1e-6 {
			t.Fatalf("c=%v xe=%v xo=%v: X=%v escapes [%v,%v]", c, xe, xo, x, lo, hi)
		}

		// Monotone in each argument.
		bump := rng.Uniform(0, 1e8)
		if Charge(c, xe+bump, xo) < x-1e-6 {
			t.Fatalf("c=%v: raising xe %v->%v lowered X", c, xe, xe+bump)
		}
		if Charge(c, xe, xo+bump) < x-1e-6 {
			t.Fatalf("c=%v: raising xo %v->%v lowered X", c, xo, xo+bump)
		}
	}
}

// TestPropertyNegotiatedMonotoneInClaim: holding the operator's claim
// fixed, a larger edge claim never lowers the settled volume (and
// symmetrically for the operator). Claims stay inside the acceptance
// region so every negotiation settles in one round.
func TestPropertyNegotiatedMonotoneInClaim(t *testing.T) {
	rng := sim.NewRNG(77)
	for i := 0; i < 2000; i++ {
		sent := rng.Uniform(1e5, 1e8)
		loss := rng.Uniform(0, 0.3)
		received := sent * (1 - loss)
		view := View{Sent: sent, Received: received}
		c := rng.Float64()

		opClaim := rng.Uniform(received, sent)
		e1 := rng.Uniform(received, sent)
		e2 := rng.Uniform(e1, sent) // e2 >= e1

		settle := func(edgeClaim float64) float64 {
			out, err := Negotiate(Config{
				C:    c,
				Edge: fixedClaim{edgeClaim}, Operator: fixedClaim{opClaim},
				EdgeView: view, OperatorView: view,
				RNG: sim.NewRNG(1),
			})
			if err != nil || !out.Converged {
				t.Fatalf("no convergence: %v (claims %v/%v)", err, edgeClaim, opClaim)
			}
			return out.X
		}
		if x1, x2 := settle(e1), settle(e2); x2 < x1-1e-6 {
			t.Fatalf("edge claim %v->%v lowered X %v->%v", e1, e2, x1, x2)
		}
	}
}

// TestPropertyNegotiationBoundedByRecords: across randomized loss
// grids and every built-in strategy pairing, a converged negotiation
// lands within the game bound [received·(1−tol), sent·(1+tol)] —
// Theorem 2's guarantee that neither loss nor selfishness moves the
// bill outside what the records support.
func TestPropertyNegotiationBoundedByRecords(t *testing.T) {
	strategies := []Strategy{
		HonestStrategy{}, OptimalStrategy{}, RandomSelfishStrategy{},
	}
	rng := sim.NewRNG(4242)
	const tol = DefaultTolerance
	for i := 0; i < 600; i++ {
		sent := rng.Uniform(1e4, 1e9)
		loss := rng.Uniform(0, 0.5)
		received := sent * (1 - loss)
		view := View{Sent: sent, Received: received}
		c := rng.Float64()
		for _, es := range strategies {
			for _, os := range strategies {
				out, err := Negotiate(Config{
					C:    c,
					Edge: es, Operator: os,
					EdgeView: view, OperatorView: view,
					MaxRounds: 256,
					RNG:       rng.Fork("pair"),
				})
				if err != nil {
					t.Fatal(err)
				}
				if !out.Converged {
					t.Fatalf("%s vs %s did not converge (sent=%v recv=%v c=%v)",
						es.Name(), os.Name(), sent, received, c)
				}
				lo := received * (1 - tol)
				hi := sent * (1 + tol)
				if out.X < lo-1e-6 || out.X > hi+1e-6 {
					t.Fatalf("%s vs %s: X=%v escapes [%v,%v] (sent=%v recv=%v c=%v)",
						es.Name(), os.Name(), out.X, lo, hi, sent, received, c)
				}
			}
		}
	}
}

// TestPropertyHonestFixedPoint: with both parties honest and sharing
// ground truth, one round settles at the paper's fixed point x̂ = x̂o +
// c·(x̂e − x̂o) exactly (Equation 1).
func TestPropertyHonestFixedPoint(t *testing.T) {
	rng := sim.NewRNG(99)
	for i := 0; i < 5000; i++ {
		sent := rng.Uniform(1, 1e9)
		received := sent * (1 - rng.Uniform(0, 0.6))
		c := rng.Float64()
		view := View{Sent: sent, Received: received}
		out, err := Negotiate(Config{
			C:    c,
			Edge: HonestStrategy{}, Operator: HonestStrategy{},
			EdgeView: view, OperatorView: view,
			RNG: sim.NewRNG(int64(i)),
		})
		if err != nil || !out.Converged {
			t.Fatalf("honest pair failed: %v", err)
		}
		if out.Rounds != 1 {
			t.Fatalf("honest pair took %d rounds", out.Rounds)
		}
		want := Expected(c, sent, received)
		if out.X != want {
			t.Fatalf("X=%v, want fixed point %v (sent=%v recv=%v c=%v)", out.X, want, sent, received, c)
		}
	}
}
