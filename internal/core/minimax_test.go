package core

import (
	"math"
	"testing"
)

// These tests validate Appendix C numerically: over a discretised
// claim grid bounded by Theorem 2 (x̂o ≤ claims ≤ x̂e), the edge's
// minimax claim is x̂o, the operator's maximin claim is x̂e, both
// game values equal x̂, and the pair is a Nash equilibrium of the
// charge function.

// grid enumerates claims between received and sent.
func grid(received, sent float64, steps int) []float64 {
	out := make([]float64, steps+1)
	for i := 0; i <= steps; i++ {
		out[i] = received + (sent-received)*float64(i)/float64(steps)
	}
	return out
}

// worstForEdge is max over xo of the charge, for a fixed xe.
func worstForEdge(c, xe float64, claims []float64) float64 {
	worst := math.Inf(-1)
	for _, xo := range claims {
		if x := Charge(c, xe, xo); x > worst {
			worst = x
		}
	}
	return worst
}

// worstForOperator is min over xe of the charge, for a fixed xo.
func worstForOperator(c, xo float64, claims []float64) float64 {
	worst := math.Inf(1)
	for _, xe := range claims {
		if x := Charge(c, xe, xo); x < worst {
			worst = x
		}
	}
	return worst
}

func TestMinimaxEdgeClaimIsReceived(t *testing.T) {
	const received, sent = 900.0, 1000.0
	claims := grid(received, sent, 200)
	for _, c := range []float64{0.1, 0.25, 0.5, 0.75, 0.9} {
		bestClaim, bestVal := 0.0, math.Inf(1)
		for _, xe := range claims {
			if v := worstForEdge(c, xe, claims); v < bestVal {
				bestVal, bestClaim = v, xe
			}
		}
		if math.Abs(bestClaim-received) > 1e-9 {
			t.Fatalf("c=%v: argmin-max xe = %v, want x̂o = %v", c, bestClaim, received)
		}
		// The game value at the optimum is x̂ (Appendix C eq. 5).
		want := Expected(c, sent, received)
		if math.Abs(bestVal-want) > 1e-6 {
			t.Fatalf("c=%v: minimax value = %v, want x̂ = %v", c, bestVal, want)
		}
	}
}

func TestMaximinOperatorClaimIsSent(t *testing.T) {
	const received, sent = 900.0, 1000.0
	claims := grid(received, sent, 200)
	for _, c := range []float64{0.1, 0.25, 0.5, 0.75, 0.9} {
		bestClaim, bestVal := 0.0, math.Inf(-1)
		for _, xo := range claims {
			if v := worstForOperator(c, xo, claims); v > bestVal {
				bestVal, bestClaim = v, xo
			}
		}
		if math.Abs(bestClaim-sent) > 1e-9 {
			t.Fatalf("c=%v: argmax-min xo = %v, want x̂e = %v", c, bestClaim, sent)
		}
		want := Expected(c, sent, received)
		if math.Abs(bestVal-want) > 1e-6 {
			t.Fatalf("c=%v: maximin value = %v, want x̂ = %v", c, bestVal, want)
		}
	}
}

func TestMinimaxEqualsMaximin(t *testing.T) {
	// The coherence condition of §5.1 footnote 6: min-max equals
	// max-min, so a unique pure-strategy Nash equilibrium exists.
	const received, sent = 420.0, 5000.0
	claims := grid(received, sent, 400)
	for _, c := range []float64{0, 0.3, 0.5, 0.8, 1} {
		minimax := math.Inf(1)
		for _, xe := range claims {
			if v := worstForEdge(c, xe, claims); v < minimax {
				minimax = v
			}
		}
		maximin := math.Inf(-1)
		for _, xo := range claims {
			if v := worstForOperator(c, xo, claims); v > maximin {
				maximin = v
			}
		}
		if math.Abs(minimax-maximin) > 1e-6 {
			t.Fatalf("c=%v: minimax %v != maximin %v", c, minimax, maximin)
		}
	}
}

func TestEquilibriumIsNash(t *testing.T) {
	// At (xe = x̂o, xo = x̂e) neither party can improve unilaterally:
	// any edge deviation raises the charge; any operator deviation
	// lowers it (strictly, for 0 < c < 1).
	const received, sent = 900.0, 1000.0
	claims := grid(received, sent, 100)
	for _, c := range []float64{0.25, 0.5, 0.75} {
		eq := Charge(c, received, sent) // xe = x̂o, xo = x̂e
		for _, dev := range claims {
			if dev == received {
				continue
			}
			if got := Charge(c, dev, sent); got < eq-1e-9 {
				t.Fatalf("c=%v: edge deviation xe=%v pays %v < equilibrium %v", c, dev, got, eq)
			}
		}
		for _, dev := range claims {
			if dev == sent {
				continue
			}
			if got := Charge(c, received, dev); got > eq+1e-9 {
				t.Fatalf("c=%v: operator deviation xo=%v earns %v > equilibrium %v", c, dev, got, eq)
			}
		}
	}
}
