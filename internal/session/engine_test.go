package session

import (
	"crypto/sha256"
	"crypto/x509"
	"encoding/hex"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tlc/internal/core"
	"tlc/internal/poc"
	"tlc/internal/protocol"
)

// testView settles at X=950 in one round under optimal/optimal.
var testView = core.View{Sent: 1000, Received: 900}

func operatorEngineConfig() EngineConfig {
	return EngineConfig{
		Config: Config{
			Role: poc.RoleOperator, Plan: testPlan, Key: opKeys.Private,
			Strategy: core.OptimalStrategy{}, View: testView,
		},
		Seed: 99,
	}
}

func edgeClientConfig(sessions int, conns []net.Conn) ClientConfig {
	cc := ClientConfig{
		Config: Config{
			Role: poc.RoleEdge, Plan: testPlan, Key: edgeKeys.Private,
			Strategy: core.OptimalStrategy{}, View: testView,
		},
		Sessions:  sessions,
		Seed:      7,
		OpenFirst: true,
	}
	for _, c := range conns {
		cc.Conns = append(cc.Conns, c)
	}
	return cc
}

// startEngine serves a fresh engine on a loopback listener, sniffing
// each connection's first frame exactly as cmd/tlcd does.
func startEngine(t *testing.T, ec EngineConfig) (*Engine, string, func()) {
	t.Helper()
	eng, err := NewEngine(ec)
	if err != nil {
		t.Fatal(err)
	}
	eng.Start()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		var cwg sync.WaitGroup
		defer cwg.Wait()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			cwg.Add(1)
			go func(conn net.Conn) {
				defer cwg.Done()
				defer func() { _ = conn.Close() }()
				hello, err := protocol.ReadFrame(conn)
				if err != nil {
					return
				}
				_ = eng.ServeConn(conn, hello)
			}(conn)
		}
	}()
	var once sync.Once
	stop := func() {
		once.Do(func() {
			_ = ln.Close()
			wg.Wait()
			eng.Stop()
		})
	}
	// Registered before the tests dial, so this cleanup runs after
	// their conns close — ServeConn readers exit before we wait on
	// them.
	t.Cleanup(stop)
	return eng, ln.Addr().String(), stop
}

func dialConns(t *testing.T, addr string, n int) []net.Conn {
	t.Helper()
	conns := make([]net.Conn, n)
	for i := range conns {
		c, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		//tlcvet:allow simtime — real socket deadline so a wedged test fails instead of hanging
		_ = c.SetDeadline(time.Now().Add(2 * time.Minute))
		conns[i] = c
		t.Cleanup(func() { _ = c.Close() })
	}
	return conns
}

func TestEngineSettlesMuxedSessions(t *testing.T) {
	settledBefore := Metrics.Settled.Value()
	ec := operatorEngineConfig()
	ec.Shards = 4
	ec.Workers = 2
	eng, addr, _ := startEngine(t, ec)

	const sessions = 300
	conns := dialConns(t, addr, 3)
	cc := edgeClientConfig(sessions, conns)
	var ticks atomic.Int64
	cc.Stopwatch = func() float64 { return float64(ticks.Add(1)) }
	res, err := RunClient(cc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Settled != sessions || res.Rejected != 0 || res.Failed != 0 {
		t.Fatalf("settled/rejected/failed = %d/%d/%d, want %d/0/0",
			res.Settled, res.Rejected, res.Failed, sessions)
	}
	if len(res.Latencies) != sessions {
		t.Fatalf("latencies = %d, want %d", len(res.Latencies), sessions)
	}
	// OpenFirst holds every response until all claims are queued, so
	// the engine's resident count must peak at the full load.
	if got := eng.PeakActive(); got != sessions {
		t.Fatalf("peak active = %d, want %d", got, sessions)
	}
	// All three conns presented the same edge key: one parse, two
	// cache hits.
	if hits, misses := eng.KeyCacheStats(); hits != 2 || misses != 1 {
		t.Fatalf("key cache hits/misses = %d/%d, want 2/1", hits, misses)
	}
	if got := Metrics.Settled.Value() - settledBefore; got != sessions {
		t.Fatalf("sessions_settled_total delta = %d, want %d", got, sessions)
	}
	if got := Metrics.Active.Value(); got != 0 {
		t.Fatalf("sessions_active = %d after drain, want 0", got)
	}
}

// TestEngineOverloadRejectsNotCollapses is the admission-control
// regression run under -race by verify.sh: a load far beyond the
// session cap must split cleanly into settled + typed rejections —
// no deadlock, no goroutine leak, no unbounded queue growth.
func TestEngineOverloadRejectsNotCollapses(t *testing.T) {
	baseline := runtime.NumGoroutine()

	ec := operatorEngineConfig()
	ec.Shards = 4
	ec.Workers = 2
	ec.MaxSessions = 64 // 16 per shard; load is 8x over capacity
	ec.MaxPending = 32
	eng, addr, stop := startEngine(t, ec)

	const sessions = 512
	conns := dialConns(t, addr, 2)
	res, err := RunClient(edgeClientConfig(sessions, conns))
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Settled + res.Rejected + res.Failed; got != sessions {
		t.Fatalf("accounted sessions = %d, want %d (%+v)", got, sessions, res)
	}
	if res.Rejected == 0 {
		t.Fatalf("no admission rejections at 8x overload: %+v", res)
	}
	if res.Settled == 0 {
		t.Fatalf("overload collapsed the engine, nothing settled: %+v", res)
	}
	if got := eng.PeakActive(); got > 64 {
		t.Fatalf("peak active = %d, admission cap 64 not enforced", got)
	}

	for _, c := range conns {
		_ = c.Close()
	}
	stop()
	if got := Metrics.Active.Value(); got != 0 {
		t.Fatalf("sessions_active = %d after teardown, want 0", got)
	}
	// Every engine, conn and writer goroutine must be gone.
	for i := 0; ; i++ {
		if runtime.NumGoroutine() <= baseline {
			break
		}
		if i >= 100 {
			t.Fatalf("goroutine leak: %d now vs %d at baseline", runtime.NumGoroutine(), baseline)
		}
		time.Sleep(5 * time.Millisecond) //tlcvet:allow simtime — waiting for real goroutines to park; wall clock is the only clock they run on
	}
}

func TestEngineRejectsForgedPoC(t *testing.T) {
	ec := operatorEngineConfig()
	_, addr, _ := startEngine(t, ec)

	const sessions, forged = 50, 7
	conns := dialConns(t, addr, 2)
	cc := edgeClientConfig(sessions, conns)
	cc.Forge = forged
	res, err := RunClient(cc)
	if err != nil {
		t.Fatal(err)
	}
	if res.ForgedSent != forged || res.ForgedRejected != forged {
		t.Fatalf("forged sent/rejected = %d/%d, want %d/%d",
			res.ForgedSent, res.ForgedRejected, forged, forged)
	}
	if res.ForgedVerified != 0 {
		t.Fatalf("forged PoCs verified = %d: charging integrity broken", res.ForgedVerified)
	}
	if res.Settled != sessions-forged {
		t.Fatalf("settled = %d, want %d honest sessions", res.Settled, sessions-forged)
	}
}

// TestEngineRecorderCapturesSettlements pins the durable-record hook:
// every settled session hands the recorder a verifiable serialized PoC
// tagged with the peer-key fingerprint, whether this side signed the
// final proof or merely received it.
func TestEngineRecorderCapturesSettlements(t *testing.T) {
	var mu sync.Mutex
	var recs []ProofRecord
	ec := operatorEngineConfig()
	ec.Shards = 4
	ec.Workers = 2
	ec.Recorder = func(pr ProofRecord) {
		mu.Lock()
		recs = append(recs, pr)
		mu.Unlock()
	}
	_, addr, _ := startEngine(t, ec)

	const sessions = 40
	conns := dialConns(t, addr, 2)
	res, err := RunClient(edgeClientConfig(sessions, conns))
	if err != nil {
		t.Fatal(err)
	}
	if res.Settled != sessions {
		t.Fatalf("settled = %d, want %d", res.Settled, sessions)
	}

	edgeDER, err := x509.MarshalPKIXPublicKey(&edgeKeys.Private.PublicKey)
	if err != nil {
		t.Fatal(err)
	}
	fp := sha256.Sum256(edgeDER)
	wantFP := hex.EncodeToString(fp[:])

	mu.Lock()
	defer mu.Unlock()
	if len(recs) != sessions {
		t.Fatalf("recorder saw %d settlements, want %d", len(recs), sessions)
	}
	for _, pr := range recs {
		if pr.PeerFP != wantFP {
			t.Fatalf("record fingerprint %q, want %q", pr.PeerFP, wantFP)
		}
		if len(pr.Proof) == 0 {
			t.Fatalf("record for sid %d carries no proof bytes", pr.SID)
		}
		var proof poc.PoC
		if err := proof.UnmarshalBinary(pr.Proof); err != nil {
			t.Fatalf("sid %d proof does not decode: %v", pr.SID, err)
		}
		if err := poc.VerifyStateless(&proof, testPlan,
			&edgeKeys.Private.PublicKey, &opKeys.Private.PublicKey); err != nil {
			t.Fatalf("sid %d recorded proof does not verify: %v", pr.SID, err)
		}
		if proof.X != pr.X {
			t.Fatalf("sid %d record X=%d but proof X=%d", pr.SID, pr.X, proof.X)
		}
	}
}

func TestEngineStoppedRejectsNewSessions(t *testing.T) {
	ec := operatorEngineConfig()
	eng, addr, _ := startEngine(t, ec)

	conns := dialConns(t, addr, 1)
	// First a healthy session to prove the path, then stop and retry.
	if res, err := RunClient(edgeClientConfig(1, conns)); err != nil || res.Settled != 1 {
		t.Fatalf("pre-stop run: %+v, %v", res, err)
	}
	eng.Stop()
	conns2 := dialConns(t, addr, 1)
	res, err := RunClient(edgeClientConfig(1, conns2))
	if err != nil {
		// The listener may already refuse the handshake — also fine.
		return
	}
	if res.Settled != 0 {
		t.Fatalf("stopped engine settled a session: %+v", res)
	}
}
