package session

import (
	"bufio"
	"crypto/rsa"
	"crypto/sha256"
	"crypto/x509"
	"encoding/hex"
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"tlc/internal/protocol"
)

// EngineConfig sizes the sharded engine.
type EngineConfig struct {
	// Config is the operator-side negotiation configuration shared by
	// every session.
	Config
	// Shards is the session-table split; power of two (default 8).
	Shards int
	// Workers is the crypto worker pool size (default 2).
	Workers int
	// MaxSessions caps resident sessions across all shards (default
	// 1<<20). The cap is enforced per shard (MaxSessions/Shards), so
	// hashing skew rejects slightly before the global cap.
	MaxSessions int
	// MaxPending caps queued frames per shard (default 1024).
	MaxPending int
	// Seed derives the per-shard strategy RNG streams.
	Seed int64
	// Nonce overrides CDR/CDA nonce randomness (nil = crypto/rand).
	Nonce io.Reader
	// Stopwatch returns elapsed seconds from an arbitrary origin; the
	// engine reads no clock itself (tlcvet simtime), so latency is
	// only observed when the caller injects one.
	Stopwatch func() float64
	// OnSettle, if set, is called after each settlement (for sampled
	// logging); it runs on a crypto worker, so keep it cheap.
	OnSettle func(conn, sid, x uint64, rounds int)
	// Recorder, if set, receives every settlement's durable record —
	// the serialized PoC plus routing identity — on a crypto worker.
	// Setting it turns on Config.KeepProof so the proof bytes survive
	// the transport buffers. Keep the callback cheap (an append to a
	// group-committed ledger qualifies); heavy work belongs on the
	// callee's own goroutine.
	Recorder func(ProofRecord)
}

// ProofRecord is one settled negotiation as handed to a Recorder: the
// engine-scoped connection id, the client-chosen session id, the hex
// SHA-256 fingerprint of the peer's PKIX public key (the closest thing
// a mux peer has to a subscriber identity), the agreed volume, the
// rounds it took, and the serialized PoC (owned by the record).
type ProofRecord struct {
	Conn   uint64
	SID    uint64
	PeerFP string
	X      uint64
	Rounds int
	Proof  []byte
}

// Engine is the sharded session engine: one instance serves every mux
// connection of a tlcd process. See the package comment for the
// layering.
type Engine struct {
	cfg        Config
	table      *table
	keys       *KeyCache
	ownDER     []byte
	work       chan *shard
	stop       chan struct{}
	stopped    atomic.Bool
	wg         sync.WaitGroup
	workers    int
	connID     atomic.Uint64
	active     atomic.Int64
	peakActive atomic.Int64
	stopwatch  func() float64
	onSettle   func(conn, sid, x uint64, rounds int)
	recorder   func(ProofRecord)
}

// NewEngine validates the configuration and builds the engine; call
// Start before serving connections.
func NewEngine(ec EngineConfig) (*Engine, error) {
	if err := ec.Config.validate(); err != nil {
		return nil, err
	}
	if ec.Shards == 0 {
		ec.Shards = 8
	}
	if ec.Shards < 1 || ec.Shards&(ec.Shards-1) != 0 {
		return nil, fmt.Errorf("session: Shards must be a power of two, got %d", ec.Shards)
	}
	if ec.Workers <= 0 {
		ec.Workers = 2
	}
	if ec.MaxSessions <= 0 {
		ec.MaxSessions = 1 << 20
	}
	if ec.MaxPending <= 0 {
		ec.MaxPending = 1024
	}
	der, err := x509.MarshalPKIXPublicKey(&ec.Key.PublicKey)
	if err != nil {
		return nil, fmt.Errorf("session: marshal own key: %w", err)
	}
	if ec.Recorder != nil {
		ec.Config.KeepProof = true
	}
	return &Engine{
		cfg:       ec.Config,
		table:     newTable(ec.Shards, ec.MaxSessions, ec.MaxPending, ec.Seed, ec.Nonce),
		keys:      NewKeyCache(),
		ownDER:    der,
		work:      make(chan *shard, ec.Shards),
		stop:      make(chan struct{}),
		workers:   ec.Workers,
		stopwatch: ec.Stopwatch,
		onSettle:  ec.OnSettle,
		recorder:  ec.Recorder,
	}, nil
}

// Start launches the crypto worker pool.
func (e *Engine) Start() {
	for i := 0; i < e.workers; i++ {
		e.wg.Add(1)
		go func() {
			defer e.wg.Done()
			for {
				select {
				case <-e.stop:
					return
				case sh := <-e.work:
					e.drain(sh)
				}
			}
		}()
	}
}

// Stop rejects new sessions, stops the workers and waits for them.
// Connections still being served keep their reader/writer goroutines
// until the caller closes them; queued work is abandoned.
func (e *Engine) Stop() {
	if e.stopped.CompareAndSwap(false, true) {
		close(e.stop)
	}
	e.wg.Wait()
}

// PeakActive reports the high-water mark of concurrently resident
// sessions since the engine started.
func (e *Engine) PeakActive() int64 { return e.peakActive.Load() }

// KeyCacheStats reports verified-key cache hit/miss totals.
func (e *Engine) KeyCacheStats() (hits, misses uint64) { return e.keys.Stats() }

// muxConn is the engine's per-connection state: the peer's verified
// key, the outbound queue its single writer goroutine drains, and the
// reader-goroutine-local session index used for teardown.
type muxConn struct {
	id      uint64
	peerKey *rsa.PublicKey
	// peerFP is the hex SHA-256 fingerprint of the peer's PKIX DER,
	// computed once at hello; the recorder uses it as the subscriber
	// identity for settled proofs.
	peerFP string
	out    *outQueue
	// sessions indexes this conn's sessions by sid. Only the reader
	// goroutine touches it (dispatch inserts, teardown sweeps after
	// the read loop exits), so it needs no lock. Finished sessions
	// linger until teardown; their state CAS makes the sweep a no-op.
	sessions map[uint64]*session
}

func (c *muxConn) sendReject(sid uint64, code byte, detail string) {
	out := bufPool.Get().(*[]byte)
	*out = AppendMux((*out)[:0], TypeReject, sid, nil)
	*out = append(*out, code)
	*out = append(*out, detail...)
	c.out.push(out)
}

// ServeConn runs one mux connection to completion: hello is the
// already-read first frame (the caller sniffed it with IsHello to
// route between mux and legacy service). ServeConn blocks until the
// peer hangs up or breaks framing, and returns with no goroutines
// left behind.
func (e *Engine) ServeConn(conn io.ReadWriter, hello []byte) error {
	if e.stopped.Load() {
		return ErrEngineStopped
	}
	der, ok := IsHello(hello)
	if !ok {
		return fmt.Errorf("%w: not a mux hello", ErrMuxFrame)
	}
	peerKey, hit, err := e.keys.Parse(der)
	if err != nil {
		return err
	}
	if hit {
		Metrics.KeyCacheHits.Inc()
	} else {
		Metrics.KeyCacheMisses.Inc()
	}
	// Key exchange completes with our PKIX DER; it happens once per
	// connection, not once per session.
	if err := protocol.WriteFrame(conn, e.ownDER); err != nil {
		return fmt.Errorf("session: write key frame: %w", err)
	}

	c := &muxConn{
		id:       e.connID.Add(1),
		peerKey:  peerKey,
		out:      newOutQueue(),
		sessions: make(map[uint64]*session),
	}
	if e.recorder != nil {
		fp := sha256.Sum256(der)
		c.peerFP = hex.EncodeToString(fp[:])
	}
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		c.writeLoop(conn)
	}()

	fr := protocol.NewFrameReader(conn)
	var readErr error
	for {
		frame, err := fr.ReadFrame()
		if err != nil {
			if err != io.EOF {
				readErr = err
			}
			break
		}
		typ, sid, payload, err := DecodeMux(frame)
		if err != nil {
			// Framing is suspect; drop the whole connection.
			readErr = err
			break
		}
		switch typ {
		case TypeData:
			e.dispatch(c, sid, payload)
		case TypeReject:
			// Client-side abort of one session.
			if s := c.sessions[sid]; s != nil {
				e.failSession(s, RejectFailed, nil)
			}
		case TypeDone:
			// Servers never expect acks; ignore.
		}
	}

	// Teardown: fail whatever is still resident for this conn before
	// its id could ever be observed again, then let the writer flush
	// and exit. The table-wide sweep (not the reader-local c.sessions
	// index) is authoritative — it also evicts sessions another
	// muxConn admitted under the same id, so a reused conn id can
	// never alias a dead conn's sessions. Workers may be settling
	// these sessions concurrently; the per-session state CAS
	// arbitrates.
	e.evictConn(c.id)
	c.out.close()
	<-writerDone
	return readErr
}

// writeLoop is the connection's single writer: it batches queued
// frames through one bufio.Writer and flushes only when the queue
// momentarily empties, so a burst of worker output coalesces into few
// syscalls. Exits when the queue closes (conn teardown) or a write
// fails (peer gone — the queue goes dead and pushes become drops,
// which is what keeps slow/dead conns from wedging crypto workers).
func (c *muxConn) writeLoop(w io.Writer) {
	bw := bufio.NewWriterSize(w, 64<<10)
	var batch []*[]byte
	for {
		var ok bool
		batch, ok = c.out.popAll(batch[:0])
		if !ok {
			_ = bw.Flush() // best-effort final flush on a closing conn
			return
		}
		for i, bp := range batch {
			if err := protocol.WriteFrame(bw, *bp); err != nil {
				for _, rest := range batch[i:] {
					recycle(rest)
				}
				c.out.markDead()
				return
			}
			recycle(bp)
			batch[i] = nil
		}
		if c.out.empty() {
			if err := bw.Flush(); err != nil {
				c.out.markDead()
				return
			}
		}
	}
}

// outQueue is an unbounded multi-producer single-consumer queue of
// pooled frame buffers. Unbounded is deliberate: producers are crypto
// workers that must never block on a slow connection; the bound on
// total outstanding output is the admission-controlled session count.
type outQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  []*[]byte
	closed bool // conn tearing down: drain, then writer exits
	dead   bool // writer gone: pushes become drops
}

func newOutQueue() *outQueue {
	q := &outQueue{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// push enqueues a pooled buffer, recycling it immediately when the
// writer is gone.
func (q *outQueue) push(bp *[]byte) {
	q.mu.Lock()
	if q.closed || q.dead {
		q.mu.Unlock()
		recycle(bp)
		return
	}
	q.items = append(q.items, bp)
	q.cond.Signal()
	q.mu.Unlock()
}

// popAll blocks for the next batch; ok=false means closed-and-drained
// or dead.
func (q *outQueue) popAll(batch []*[]byte) ([]*[]byte, bool) {
	q.mu.Lock()
	for len(q.items) == 0 && !q.closed && !q.dead {
		q.cond.Wait()
	}
	if q.dead || len(q.items) == 0 {
		q.mu.Unlock()
		return batch, false
	}
	batch = append(batch, q.items...)
	for i := range q.items {
		q.items[i] = nil
	}
	q.items = q.items[:0]
	q.mu.Unlock()
	return batch, true
}

func (q *outQueue) empty() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items) == 0
}

// close stops accepting pushes; the writer drains what is queued and
// exits.
func (q *outQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
}

// markDead drops the backlog and makes future pushes no-ops.
func (q *outQueue) markDead() {
	q.mu.Lock()
	q.dead = true
	for i, bp := range q.items {
		recycle(bp)
		q.items[i] = nil
	}
	q.items = q.items[:0]
	q.cond.Broadcast()
	q.mu.Unlock()
}
