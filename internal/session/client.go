package session

import (
	"crypto/rsa"
	"crypto/x509"
	"encoding/binary"
	"fmt"
	"io"
	"strconv"
	"sync"

	"tlc/internal/protocol"
	"tlc/internal/sim"
)

// ClientConfig drives a mux load-generation client: Sessions
// negotiations multiplexed over the given pre-dialed connections.
// The caller owns the conns (dialing, deadlines, closing) — this
// package reads no clock and opens no sockets.
type ClientConfig struct {
	// Config is the edge-side negotiation configuration; the client
	// initiates every session.
	Config
	// Sessions is the number of negotiations to run, assigned to
	// connections round-robin.
	Sessions int
	// Conns carries the sessions; each must be freshly connected to a
	// mux-capable tlcd.
	Conns []io.ReadWriter
	// Seed derives the client's deterministic strategy RNG streams.
	Seed int64
	// Nonce overrides nonce randomness (nil = crypto/rand).
	Nonce io.Reader
	// Stopwatch (optional) timestamps session open/settle for latency
	// measurement, in seconds from an arbitrary origin.
	Stopwatch func() float64
	// OpenFirst holds response processing until every session's
	// opening claim has been queued AND the server has answered each
	// one (the server responds exactly once per inbound frame, so one
	// buffered response per opened session means every admitted
	// session is resident server-side simultaneously). This is the
	// thundering-herd shape the engine is sized for, and it makes the
	// server's peak-active count deterministic: admitted == peak.
	// When false, sessions settle while later ones are still opening
	// (steady-state shape).
	OpenFirst bool
	// Forge tampers the final PoC signature of the first Forge
	// sessions; a correct server must answer TypeReject, never
	// TypeDone. Forged sessions count in ForgedRejected/Verified, not
	// Settled/Failed.
	Forge int
}

// ClientResult aggregates per-session outcomes.
type ClientResult struct {
	Settled  int
	Rejected int // admission-control rejections (RejectOverload)
	Failed   int
	// Forged-PoC accounting: Sent were emitted, Rejected were refused
	// by the server (correct), Verified were acknowledged as settled
	// (a charging-integrity bug — must be zero).
	ForgedSent     int
	ForgedRejected int
	ForgedVerified int
	// Latencies holds one open→settle duration in seconds per settled
	// session (only when a Stopwatch was injected).
	Latencies []float64
}

// clientSession is one initiator-side negotiation.
type clientSession struct {
	sid      uint64
	m        Machine
	forged   bool
	resolved bool
	openedAt float64
}

// clientConn is one mux connection's client-side state. The table and
// counters are touched by the opener only up to the gate and by the
// reader goroutine after it; the table mutex publishes each session's
// machine state from opener to reader.
type clientConn struct {
	rw        io.ReadWriter
	serverKey *rsa.PublicKey
	out       *outQueue
	env       Env

	mu       sync.Mutex
	table    map[uint64]*clientSession
	assigned int
	opened   int

	// reader-goroutine-local outcome counters
	res ClientResult
}

// RunClient executes the configured load against a mux server and
// blocks until every session resolves or its connection dies. It
// leaves no goroutines behind.
func RunClient(cc ClientConfig) (*ClientResult, error) {
	if err := cc.Config.validate(); err != nil {
		return nil, err
	}
	if cc.Sessions <= 0 || len(cc.Conns) == 0 {
		return nil, fmt.Errorf("session: client needs Sessions > 0 and at least one conn")
	}
	ownDER, err := x509.MarshalPKIXPublicKey(&cc.Key.PublicKey)
	if err != nil {
		return nil, fmt.Errorf("session: marshal own key: %w", err)
	}

	// Handshake every connection: Hello out, server key back.
	base := sim.NewRNG(cc.Seed)
	conns := make([]*clientConn, len(cc.Conns))
	for i, rw := range cc.Conns {
		if err := protocol.WriteFrame(rw, Hello(ownDER)); err != nil {
			return nil, fmt.Errorf("session: hello on conn %d: %w", i, err)
		}
		keyFrame, err := protocol.ReadFrame(rw)
		if err != nil {
			return nil, fmt.Errorf("session: key frame on conn %d: %w", i, err)
		}
		parsed, err := x509.ParsePKIXPublicKey(keyFrame)
		if err != nil {
			return nil, fmt.Errorf("session: server key on conn %d: %w", i, err)
		}
		serverKey, ok := parsed.(*rsa.PublicKey)
		if !ok {
			return nil, fmt.Errorf("session: server key on conn %d is %T, want RSA", i, parsed)
		}
		conns[i] = &clientConn{
			rw:        rw,
			serverKey: serverKey,
			out:       newOutQueue(),
			env:       Env{RNG: base.Fork("conn" + strconv.Itoa(i)), Nonce: cc.Nonce},
			table:     make(map[uint64]*clientSession),
		}
	}
	// Round-robin assignment is deterministic, so each conn's session
	// count is known before any reader starts.
	for i := 0; i < cc.Sessions; i++ {
		conns[i%len(conns)].assigned++
	}

	gate := make(chan struct{})
	if !cc.OpenFirst {
		close(gate)
	}
	var wg sync.WaitGroup
	for _, cn := range conns {
		wg.Add(2)
		go func(cn *clientConn) {
			defer wg.Done()
			cn.writeLoop()
		}(cn)
		go func(cn *clientConn) {
			defer wg.Done()
			<-gate
			cn.readLoop(&cc)
		}(cn)
	}

	// Open every session: sign the opening claim, publish the machine
	// through the table mutex, then queue the frame. Publishing before
	// the push is the ordering that guarantees the reader finds the
	// session when the server's response arrives.
	openEnv := Env{RNG: base.Fork("opener"), Nonce: cc.Nonce}
	openFailed := 0
	for i := 0; i < cc.Sessions; i++ {
		cn := conns[i%len(conns)]
		s := &clientSession{sid: uint64(i) + 1, forged: i < cc.Forge}
		s.m.Init(&cc.Config, cn.serverKey)
		if cc.Stopwatch != nil {
			s.openedAt = cc.Stopwatch()
		}
		var opening []byte
		if err := s.m.Start(&openEnv, func(msg []byte) error {
			opening = append(opening, msg...)
			return nil
		}); err != nil {
			openFailed++
			cn.mu.Lock()
			cn.assigned-- // never pushed; the reader must not wait for it
			cn.mu.Unlock()
			continue
		}
		cn.mu.Lock()
		cn.table[s.sid] = s
		cn.opened++
		cn.mu.Unlock()
		out := bufPool.Get().(*[]byte)
		*out = AppendMux((*out)[:0], TypeData, s.sid, opening)
		cn.out.push(out)
	}
	if cc.OpenFirst {
		close(gate)
	}
	wg.Wait()

	total := &ClientResult{Failed: openFailed}
	for _, cn := range conns {
		total.Settled += cn.res.Settled
		total.Rejected += cn.res.Rejected
		total.Failed += cn.res.Failed
		total.ForgedSent += cn.res.ForgedSent
		total.ForgedRejected += cn.res.ForgedRejected
		total.ForgedVerified += cn.res.ForgedVerified
		total.Latencies = append(total.Latencies, cn.res.Latencies...)
	}
	return total, nil
}

// writeLoop mirrors the server's: single writer, batched flushes.
func (cn *clientConn) writeLoop() {
	mc := &muxConn{out: cn.out}
	mc.writeLoop(cn.rw)
}

// resolve marks a session finished; the reader exits once every
// assigned session resolved.
func (cn *clientConn) resolve(s *clientSession) {
	s.resolved = true
	cn.mu.Lock()
	cn.assigned--
	cn.mu.Unlock()
}

// remaining is the count of assigned-but-unresolved sessions.
func (cn *clientConn) remaining() int {
	cn.mu.Lock()
	defer cn.mu.Unlock()
	return cn.assigned
}

// failRemaining resolves every outstanding session as failed after
// the connection died.
func (cn *clientConn) failRemaining() {
	cn.mu.Lock()
	cn.res.Failed += cn.assigned
	cn.assigned = 0
	cn.mu.Unlock()
}

// emit wraps a machine's outbound message for s, applying PoC forgery
// when configured.
func (cn *clientConn) emit(cc *ClientConfig, s *clientSession) func([]byte) error {
	return func(msg []byte) error {
		if s.forged && len(msg) > 0 && msg[0] == 3 {
			// Flip the tail of the PoC — inside the outer signature —
			// so the server's Algorithm 2 verification must fail.
			msg[len(msg)-1] ^= 0xff
			cn.res.ForgedSent++
		}
		out := bufPool.Get().(*[]byte)
		*out = AppendMux((*out)[:0], TypeData, s.sid, msg)
		cn.out.push(out)
		return nil
	}
}

// readLoop processes server frames until every assigned session
// resolves or the connection dies, then shuts the writer down.
func (cn *clientConn) readLoop(cc *ClientConfig) {
	fr := protocol.NewFrameReader(cn.rw)

	// OpenFirst phase: buffer one response per opened session before
	// advancing any negotiation. A read error here falls through to
	// the main loop, which fails whatever never resolved.
	var buffered [][]byte
	if cc.OpenFirst {
		for len(buffered) < cn.opened {
			frame, err := fr.ReadFrame()
			if err != nil {
				break
			}
			buffered = append(buffered, append([]byte(nil), frame...))
		}
	}

	for cn.remaining() > 0 {
		var frame []byte
		if len(buffered) > 0 {
			frame = buffered[0]
			buffered = buffered[1:]
		} else {
			var err error
			frame, err = fr.ReadFrame()
			if err != nil {
				// Connection died: every unresolved session fails.
				cn.failRemaining()
				break
			}
		}
		typ, sid, payload, err := DecodeMux(frame)
		if err != nil {
			cn.failRemaining()
			break
		}
		cn.mu.Lock()
		s := cn.table[sid]
		cn.mu.Unlock()
		if s == nil || s.resolved {
			continue
		}
		switch typ {
		case TypeReject:
			code := byte(0)
			if len(payload) > 0 {
				code = payload[0]
			}
			switch {
			case s.forged && code == RejectFailed:
				cn.res.ForgedRejected++ // the server caught the forgery
			case code == RejectOverload:
				cn.res.Rejected++
			default:
				cn.res.Failed++
			}
			cn.resolve(s)

		case TypeDone:
			switch {
			case s.forged:
				// The server settled a tampered PoC: charging
				// integrity is broken. Surfaced, never expected.
				cn.res.ForgedVerified++
			case s.m.Done() && s.m.Finisher() && len(payload) == 8 &&
				binary.BigEndian.Uint64(payload) == s.m.X():
				cn.settle(cc, s)
			default:
				cn.res.Failed++
			}
			cn.resolve(s)

		case TypeData:
			finished, err := s.m.Handle(payload, &cn.env, cn.emit(cc, s))
			if err != nil {
				cn.res.Failed++
				cn.resolve(s)
				out := bufPool.Get().(*[]byte)
				*out = AppendMux((*out)[:0], TypeReject, s.sid, []byte{RejectFailed})
				cn.out.push(out)
				continue
			}
			if finished && !s.m.Finisher() {
				// Server sent the final PoC; settled without an ack.
				cn.settle(cc, s)
				cn.resolve(s)
			}
			// finished && Finisher(): we sent the PoC (possibly
			// forged); resolution arrives as TypeDone or TypeReject.
		}
	}
	cn.out.close()
}

func (cn *clientConn) settle(cc *ClientConfig, s *clientSession) {
	cn.res.Settled++
	if cc.Stopwatch != nil {
		cn.res.Latencies = append(cn.res.Latencies, cc.Stopwatch()-s.openedAt)
	}
}
