package session

import (
	"errors"
	"testing"
	"time"

	"tlc/internal/core"
	"tlc/internal/poc"
	"tlc/internal/protocol"
	"tlc/internal/sim"
)

var (
	edgeKeys *poc.KeyPair
	opKeys   *poc.KeyPair
	testPlan = poc.Plan{TStart: 0, TEnd: int64(time.Hour), C: 0.5}
)

func init() {
	rng := sim.NewRNG(4321)
	var err error
	if edgeKeys, err = poc.GenerateKeyPair(poc.DefaultKeyBits, rng.Fork("e")); err != nil {
		panic(err)
	}
	if opKeys, err = poc.GenerateKeyPair(poc.DefaultKeyBits, rng.Fork("o")); err != nil {
		panic(err)
	}
}

func machineConfigs(edgeStrat, opStrat core.Strategy, ev, ov core.View) (edge, op *Config) {
	edge = &Config{
		Role: poc.RoleEdge, Plan: testPlan, Key: edgeKeys.Private,
		Strategy: edgeStrat, View: ev,
	}
	op = &Config{
		Role: poc.RoleOperator, Plan: testPlan, Key: opKeys.Private,
		Strategy: opStrat, View: ov,
	}
	return edge, op
}

// pump runs two machines against each other in memory, the first
// initiating, until both settle or a step errors.
func pump(t *testing.T, init, resp *Machine, envI, envR *Env) error {
	t.Helper()
	var toResp, toInit [][]byte
	clone := func(b []byte) []byte { return append([]byte(nil), b...) }
	emitI := func(msg []byte) error { toResp = append(toResp, clone(msg)); return nil }
	emitR := func(msg []byte) error { toInit = append(toInit, clone(msg)); return nil }
	if err := init.Start(envI, emitI); err != nil {
		return err
	}
	for steps := 0; len(toResp) > 0 || len(toInit) > 0; steps++ {
		if steps > 4*core.DefaultMaxRounds {
			t.Fatal("machines did not converge")
		}
		if len(toResp) > 0 {
			msg := toResp[0]
			toResp = toResp[1:]
			if _, err := resp.Handle(msg, envR, emitR); err != nil {
				return err
			}
		}
		if len(toInit) > 0 {
			msg := toInit[0]
			toInit = toInit[1:]
			if _, err := init.Handle(msg, envI, emitI); err != nil {
				return err
			}
		}
	}
	return nil
}

func TestMachinePairMatchesProtocolRun(t *testing.T) {
	// The machine is protocol.Party.run under a different execution
	// model; for deterministic strategies the settled X must be
	// identical to the goroutine-per-conn path.
	cases := []struct {
		name     string
		edge, op core.Strategy
		ev, ov   core.View
	}{
		{"optimal", core.OptimalStrategy{}, core.OptimalStrategy{}, core.View{Sent: 1000, Received: 900}, core.View{Sent: 1000, Received: 900}},
		{"honest", core.HonestStrategy{}, core.HonestStrategy{}, core.View{Sent: 500, Received: 480}, core.View{Sent: 500, Received: 480}},
		{"asym-views", core.OptimalStrategy{}, core.OptimalStrategy{}, core.View{Sent: 1200, Received: 1000}, core.View{Sent: 1100, Received: 1050}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			// Reference outcome over the legacy path. A negotiation
			// that fails there (e.g. irreconcilable views exhausting
			// the round cap) must fail identically in the machine.
			edgeP := &protocol.Party{
				Role: poc.RoleEdge, Plan: testPlan, Keys: edgeKeys, PeerKey: opKeys.Public,
				Strategy: tc.edge, View: tc.ev, RNG: sim.NewRNG(11),
			}
			opP := &protocol.Party{
				Role: poc.RoleOperator, Plan: testPlan, Keys: opKeys, PeerKey: edgeKeys.Public,
				Strategy: tc.op, View: tc.ov, RNG: sim.NewRNG(12),
			}
			re, _, refErr := protocol.RunPair(edgeP, opP)

			ec, oc := machineConfigs(tc.edge, tc.op, tc.ev, tc.ov)
			var em, om Machine
			em.Init(ec, opKeys.Public)
			om.Init(oc, edgeKeys.Public)
			envE := &Env{RNG: sim.NewRNG(11), Nonce: sim.NewRNG(21)}
			envO := &Env{RNG: sim.NewRNG(12), Nonce: sim.NewRNG(22)}
			mErr := pump(t, &em, &om, envE, envO)

			if refErr != nil {
				if !errors.Is(mErr, protocol.ErrNoConvergence) || !errors.Is(refErr, protocol.ErrNoConvergence) {
					t.Fatalf("errors diverge: machine %v, protocol %v", mErr, refErr)
				}
				return
			}
			if mErr != nil {
				t.Fatal(mErr)
			}
			if !em.Done() || !om.Done() {
				t.Fatalf("done = %v/%v, want settled", em.Done(), om.Done())
			}
			if em.X() != om.X() {
				t.Fatalf("split brain: edge X=%d op X=%d", em.X(), om.X())
			}
			if em.X() != re.X {
				t.Fatalf("machine X=%d, protocol X=%d", em.X(), re.X)
			}
			if em.Finisher() == om.Finisher() {
				t.Fatalf("finisher = %v/%v, want exactly one", em.Finisher(), om.Finisher())
			}
		})
	}
}

func TestMachineRejectsTamperedMessages(t *testing.T) {
	ec, oc := machineConfigs(core.OptimalStrategy{}, core.OptimalStrategy{},
		core.View{Sent: 1000, Received: 900}, core.View{Sent: 1000, Received: 900})
	var em, om Machine
	em.Init(ec, opKeys.Public)
	om.Init(oc, edgeKeys.Public)
	envE := &Env{RNG: sim.NewRNG(1), Nonce: sim.NewRNG(2)}
	envO := &Env{RNG: sim.NewRNG(3), Nonce: sim.NewRNG(4)}

	var opening []byte
	if err := em.Start(envE, func(msg []byte) error {
		opening = append([]byte(nil), msg...)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	// A flipped signature bit must surface as a peer-validation error,
	// not an accepted claim.
	tampered := append([]byte(nil), opening...)
	tampered[len(tampered)-1] ^= 0xff
	if _, err := om.Handle(tampered, envO, discard); !errors.Is(err, protocol.ErrBadPeer) {
		t.Fatalf("tampered CDR: err = %v, want ErrBadPeer", err)
	}

	// Unknown message kinds and truncation are bad messages.
	var fresh Machine
	fresh.Init(oc, edgeKeys.Public)
	if _, err := fresh.Handle([]byte{42, 1, 2}, envO, discard); !errors.Is(err, protocol.ErrBadMessage) {
		t.Fatalf("unknown kind: err = %v, want ErrBadMessage", err)
	}
	if _, err := fresh.Handle(nil, envO, discard); !errors.Is(err, protocol.ErrBadMessage) {
		t.Fatalf("empty message: err = %v, want ErrBadMessage", err)
	}
}

func TestMachineRejectsStalePoC(t *testing.T) {
	// Settle one negotiation, then replay its PoC into a second
	// exchange: the replay embeds a CDA the new session never sent.
	ec, oc := machineConfigs(core.OptimalStrategy{}, core.OptimalStrategy{},
		core.View{Sent: 1000, Received: 900}, core.View{Sent: 1000, Received: 900})

	var proof []byte
	var em1, om1 Machine
	em1.Init(ec, opKeys.Public)
	om1.Init(oc, edgeKeys.Public)
	envE := &Env{RNG: sim.NewRNG(1), Nonce: sim.NewRNG(2)}
	envO := &Env{RNG: sim.NewRNG(3), Nonce: sim.NewRNG(4)}
	var toOp [][]byte
	if err := em1.Start(envE, func(msg []byte) error {
		toOp = append(toOp, append([]byte(nil), msg...))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	var toEdge [][]byte
	for len(toOp) > 0 || len(toEdge) > 0 {
		if len(toOp) > 0 {
			msg := toOp[0]
			toOp = toOp[1:]
			if _, err := om1.Handle(msg, envO, func(m []byte) error {
				toEdge = append(toEdge, append([]byte(nil), m...))
				return nil
			}); err != nil {
				t.Fatal(err)
			}
		}
		if len(toEdge) > 0 {
			msg := toEdge[0]
			toEdge = toEdge[1:]
			if msg[0] == 3 {
				proof = msg // capture the operator-bound PoC... or edge-bound
			}
			if _, err := em1.Handle(msg, envE, func(m []byte) error {
				if m[0] == 3 {
					proof = m
				}
				toOp = append(toOp, append([]byte(nil), m...))
				return nil
			}); err != nil {
				t.Fatal(err)
			}
		}
	}
	if proof == nil {
		t.Fatal("no PoC captured")
	}

	// Second exchange, same parties: advance the operator to the
	// point where it has sent a CDA, then replay the old proof.
	var em2, om2 Machine
	em2.Init(ec, opKeys.Public)
	om2.Init(oc, edgeKeys.Public)
	var opening2 []byte
	if err := em2.Start(envE, func(msg []byte) error {
		opening2 = append([]byte(nil), msg...)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := om2.Handle(opening2, envO, discard); err != nil {
		t.Fatal(err)
	}
	if _, err := om2.Handle(proof, envO, discard); !errors.Is(err, protocol.ErrStaleProof) {
		t.Fatalf("replayed PoC: err = %v, want ErrStaleProof", err)
	}
}

func discard([]byte) error { return nil }
