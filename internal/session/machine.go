package session

import (
	"crypto/rsa"
	"errors"
	"fmt"
	"io"
	"math"

	"tlc/internal/core"
	"tlc/internal/poc"
	"tlc/internal/protocol"
	"tlc/internal/sim"
)

// Config is the negotiation configuration one engine or client shares
// across all of its sessions. It is immutable after Start.
type Config struct {
	Role     poc.Role
	Plan     poc.Plan
	Key      *rsa.PrivateKey
	Strategy core.Strategy
	View     core.View
	// MaxRounds caps claims per session (0 = core.DefaultMaxRounds).
	MaxRounds int
	// KeepProof retains the serialized final PoC on each settled
	// machine (copied out of transport buffers where needed) so a
	// settlement recorder can persist it. Off by default: the hot
	// path stays allocation-free when nobody asks for the bytes.
	KeepProof bool
}

func (c *Config) maxRounds() int {
	if c.MaxRounds > 0 {
		return c.MaxRounds
	}
	return core.DefaultMaxRounds
}

func (c *Config) validate() error {
	if c.Key == nil || c.Strategy == nil {
		return errors.New("session: Config.Key and Config.Strategy are required")
	}
	if c.Role != poc.RoleEdge && c.Role != poc.RoleOperator {
		return fmt.Errorf("session: bad role %v", c.Role)
	}
	return nil
}

// Env is the per-worker execution environment a Machine advances in:
// the deterministic RNG stream driving the strategy and the nonce
// randomness (nil = crypto/rand, the live default). One Env is owned
// by exactly one worker goroutine at a time, which is what lets
// machines share it without locks.
type Env struct {
	RNG   *sim.RNG
	Nonce io.Reader
}

// Machine is one charging negotiation as an explicit state machine:
// protocol.Party.run's loop unrolled into Start (initiator's opening
// claim) and Handle (one peer message in, zero or more messages out).
// It performs the same validation, the same Algorithm 1 bookkeeping
// and returns the same typed errors (protocol.ErrBadPeer,
// ErrStaleProof, ErrBadMessage, ErrNoConvergence), so the engine's
// fast path is behaviourally the slow path — only the execution model
// differs.
type Machine struct {
	cfg     *Config
	peerKey *rsa.PublicKey

	bounds      core.Bounds
	seq         uint32
	lastOwn     *poc.CDR
	lastSentCDA *poc.CDA
	rounds      int
	myLastVol   float64

	done     bool
	finisher bool // we sent the final PoC (vs received it)
	x        uint64
	rejected bool // peer aborted us with a TypeReject frame
	proof    []byte
}

// Init readies the machine for a fresh negotiation against peerKey.
func (m *Machine) Init(cfg *Config, peerKey *rsa.PublicKey) {
	*m = Machine{
		cfg:       cfg,
		peerKey:   peerKey,
		bounds:    core.Bounds{Lower: 0, Upper: math.Inf(1)},
		myLastVol: math.NaN(),
	}
}

// Done reports whether the negotiation settled; X is then the agreed
// volume and Finisher whether this side signed the final PoC.
func (m *Machine) Done() bool     { return m.done }
func (m *Machine) X() uint64      { return m.x }
func (m *Machine) Finisher() bool { return m.finisher }
func (m *Machine) Rounds() int    { return m.rounds }

// Proof returns the serialized final PoC of a settled machine, or nil
// unless Config.KeepProof was set. The slice is owned by the machine
// (never aliases a pooled transport buffer).
func (m *Machine) Proof() []byte { return m.proof }

func (m *Machine) coreRole() core.Role {
	if m.cfg.Role == poc.RoleEdge {
		return core.EdgeRole
	}
	return core.OperatorRole
}

// sendCDR builds, signs and emits our next claim (Algorithm 1's
// claim step), enforcing the round cap.
func (m *Machine) sendCDR(env *Env, emit func([]byte) error) error {
	m.rounds++
	if m.rounds > m.cfg.maxRounds() {
		return protocol.ErrNoConvergence
	}
	vol := m.cfg.Strategy.Claim(m.coreRole(), m.cfg.View, m.bounds, m.rounds, env.RNG)
	m.myLastVol = vol
	cdr, err := poc.BuildCDR(m.cfg.Plan, m.cfg.Role, m.seq, poc.RoundVolume(vol), env.Nonce, m.cfg.Key)
	if err != nil {
		return err
	}
	m.seq++
	m.lastOwn = cdr
	data, err := cdr.MarshalBinary()
	if err != nil {
		return err
	}
	return emit(data)
}

// tighten implements Algorithm 1 line 12 after any reject.
func (m *Machine) tighten(peerVol uint64) {
	if math.IsNaN(m.myLastVol) {
		return
	}
	lo := math.Min(m.myLastVol, float64(peerVol))
	hi := math.Max(m.myLastVol, float64(peerVol))
	m.bounds = core.Bounds{Lower: lo, Upper: hi}
}

// Start sends the opening claim; only the initiating side calls it.
func (m *Machine) Start(env *Env, emit func([]byte) error) error {
	return m.sendCDR(env, emit)
}

// validateCDR checks plan and signature of a peer claim.
func (m *Machine) validateCDR(c *poc.CDR) error {
	if !c.Plan.Equal(m.cfg.Plan) {
		return fmt.Errorf("%w: plan mismatch", protocol.ErrBadPeer)
	}
	if c.Role != m.cfg.Role.Other() {
		return fmt.Errorf("%w: role mismatch", protocol.ErrBadPeer)
	}
	if err := c.Verify(m.peerKey); err != nil {
		return fmt.Errorf("%w: %v", protocol.ErrBadPeer, err)
	}
	return nil
}

// Handle advances the machine with one peer message. It returns
// done=true when the negotiation settled (X/Finisher are then set);
// on error the session is dead and the caller tears it down. All
// RSA work happens inline here — the caller is a crypto worker
// draining a shard batch.
func (m *Machine) Handle(frame []byte, env *Env, emit func([]byte) error) (finished bool, err error) {
	if m.done {
		return true, fmt.Errorf("%w: message after settlement", protocol.ErrBadMessage)
	}
	if len(frame) == 0 {
		return false, protocol.ErrBadMessage
	}
	switch frame[0] {
	case 1: // CDR: the peer's opening claim or a reject/re-claim.
		var cdr poc.CDR
		if err := cdr.UnmarshalBinary(frame); err != nil {
			return false, fmt.Errorf("%w: %v", protocol.ErrBadMessage, err)
		}
		if err := m.validateCDR(&cdr); err != nil {
			return false, err
		}
		inWindow := m.bounds.Contains(float64(cdr.Volume))
		accept := inWindow && m.cfg.Strategy.Decide(m.coreRole(), m.cfg.View, m.myLastVol, float64(cdr.Volume), m.rounds+1, env.RNG)
		if accept {
			m.rounds++
			if m.rounds > m.cfg.maxRounds() {
				return false, protocol.ErrNoConvergence
			}
			vol := m.cfg.Strategy.Claim(m.coreRole(), m.cfg.View, m.bounds, m.rounds, env.RNG)
			m.myLastVol = vol
			cda, err := poc.BuildCDA(m.cfg.Plan, m.cfg.Role, cdr.Seq, poc.RoundVolume(vol), &cdr, env.Nonce, m.cfg.Key)
			if err != nil {
				return false, err
			}
			m.seq = cdr.Seq + 1
			data, err := cda.MarshalBinary()
			if err != nil {
				return false, err
			}
			if err := emit(data); err != nil {
				return false, err
			}
			m.lastSentCDA = cda
			return false, nil
		}
		// Implicit reject: tighten and re-claim (Figure 7 case 2/3).
		m.tighten(cdr.Volume)
		return false, m.sendCDR(env, emit)

	case 2: // CDA: the peer accepted our last CDR.
		var cda poc.CDA
		if err := cda.UnmarshalBinary(frame); err != nil {
			return false, fmt.Errorf("%w: %v", protocol.ErrBadMessage, err)
		}
		if !cda.Plan.Equal(m.cfg.Plan) || cda.Role != m.cfg.Role.Other() {
			return false, fmt.Errorf("%w: CDA plan/role", protocol.ErrBadPeer)
		}
		if err := cda.Verify(m.peerKey); err != nil {
			return false, fmt.Errorf("%w: CDA signature: %v", protocol.ErrBadPeer, err)
		}
		// The embedded CDR must be exactly the claim we sent — no
		// mix-and-match across rounds.
		if m.lastOwn == nil || cda.Peer.Nonce != m.lastOwn.Nonce || cda.Peer.Volume != m.lastOwn.Volume {
			return false, fmt.Errorf("%w: CDA embeds a claim we did not send", protocol.ErrBadPeer)
		}
		accept := m.cfg.Strategy.Decide(m.coreRole(), m.cfg.View, m.myLastVol, float64(cda.Volume), m.rounds, env.RNG)
		if accept {
			proof, err := poc.BuildPoC(&cda, m.cfg.Key)
			if err != nil {
				return false, err
			}
			data, err := proof.MarshalBinary()
			if err != nil {
				return false, err
			}
			if err := emit(data); err != nil {
				return false, err
			}
			m.done, m.finisher, m.x = true, true, proof.X
			if m.cfg.KeepProof {
				// data is a fresh MarshalBinary allocation; emit copied
				// it into the outbound frame, so it is ours to keep.
				m.proof = data
			}
			return true, nil
		}
		m.tighten(cda.Volume)
		return false, m.sendCDR(env, emit)

	case 3: // PoC: the peer finished the negotiation.
		var proof poc.PoC
		if err := proof.UnmarshalBinary(frame); err != nil {
			return false, fmt.Errorf("%w: %v", protocol.ErrBadMessage, err)
		}
		// Validate the whole chain as an Algorithm 2 verifier would,
		// with our key as one side.
		var edgeKey, opKey *rsa.PublicKey
		if m.cfg.Role == poc.RoleEdge {
			edgeKey, opKey = &m.cfg.Key.PublicKey, m.peerKey
		} else {
			edgeKey, opKey = m.peerKey, &m.cfg.Key.PublicKey
		}
		if err := poc.VerifyStateless(&proof, m.cfg.Plan, edgeKey, opKey); err != nil {
			return false, fmt.Errorf("%w: PoC: %v", protocol.ErrBadPeer, err)
		}
		// Signature validity is not enough: the PoC must embed the
		// exact CDA this side sent in this exchange, or it is a
		// replay from an earlier negotiation.
		if m.lastSentCDA == nil ||
			proof.CDA.Nonce != m.lastSentCDA.Nonce ||
			proof.CDA.Volume != m.lastSentCDA.Volume ||
			proof.CDA.Seq != m.lastSentCDA.Seq {
			return false, fmt.Errorf("%w: PoC does not embed the CDA we sent", protocol.ErrStaleProof)
		}
		m.done, m.finisher, m.x = true, false, proof.X
		if m.cfg.KeepProof {
			// frame is a pooled transport buffer recycled after this
			// call; the retained proof must be a copy.
			m.proof = append([]byte(nil), frame...)
		}
		return true, nil

	default:
		return false, fmt.Errorf("%w: unknown kind %d", protocol.ErrBadMessage, frame[0])
	}
}
