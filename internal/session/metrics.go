package session

import "tlc/internal/metrics"

// Metrics are the session-engine instruments, observed inline on the
// live path (same discipline as protocol.Metrics: single atomic ops on
// pre-registered instruments, no locks, no clock reads). The engine
// additionally feeds protocol.Metrics — a negotiation settled by the
// sharded engine counts exactly like one settled by the legacy
// goroutine-per-conn path, so dashboards don't care which path served
// it.
var Metrics = struct {
	// Active is the sessions currently resident in the shard tables
	// (opened, not yet settled/failed/rejected).
	Active *metrics.Gauge
	// Opened/Settled/Failed count session outcomes; Rejected counts
	// admission-control refusals (shard table or pending queue full),
	// which are not Failed — the work was never admitted.
	Opened   *metrics.Counter
	Settled  *metrics.Counter
	Failed   *metrics.Counter
	Rejected *metrics.Counter
	// Backpressure counts frames dropped because an already-admitted
	// session's shard queue was full; the session is failed rather
	// than the queue grown.
	Backpressure *metrics.Counter
	// BatchSize is the distribution of per-shard batch sizes drained
	// by crypto workers; mass above 1 is scheduling amortisation won.
	BatchSize *metrics.Histogram
	// StaleEvicted counts sessions evicted by the dispatch alias guard:
	// a resident session whose conn id was reused by a newer connection
	// before the dead conn's teardown sweep ran. Nonzero means conn ids
	// are being recycled under live sessions — worth alarming on.
	StaleEvicted *metrics.Counter
	// KeyCacheHits/Misses count verified-key cache lookups.
	KeyCacheHits   *metrics.Counter
	KeyCacheMisses *metrics.Counter
}{
	Active: metrics.Default.Gauge("sessions_active",
		"charging sessions currently resident in the engine's shard tables"),
	Opened: metrics.Default.Counter("sessions_opened_total",
		"charging sessions admitted into the engine"),
	Settled: metrics.Default.Counter("sessions_settled_total",
		"charging sessions settled with a doubly signed PoC"),
	Failed: metrics.Default.Counter("sessions_failed_total",
		"charging sessions torn down by validation or transport errors"),
	Rejected: metrics.Default.Counter("sessions_rejected_total",
		"sessions refused by admission control (shard table or queue full)"),
	Backpressure: metrics.Default.Counter("session_backpressure_total",
		"frames dropped because an admitted session's shard queue was full"),
	StaleEvicted: metrics.Default.Counter("sessions_stale_evicted_total",
		"stale sessions evicted because their conn id was reused by a newer connection"),
	BatchSize: metrics.Default.Histogram("session_crypto_batch_size",
		"sessions advanced per crypto-worker shard drain",
		[]float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}),
	KeyCacheHits: metrics.Default.Counter("session_key_cache_hits_total",
		"peer key parses served from the verified-key cache"),
	KeyCacheMisses: metrics.Default.Counter("session_key_cache_misses_total",
		"peer key parses that fell through to x509 parsing"),
}
