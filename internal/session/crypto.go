package session

import (
	"crypto/rsa"
	"crypto/sha256"
	"crypto/x509"
	"fmt"
	"sync"
	"sync/atomic"
)

// KeyCache maps PKIX DER fingerprints to parsed RSA public keys, so a
// fleet of edge clients reconnecting with the same identity pays for
// x509 parsing once, not once per connection. Keys are cached by the
// SHA-256 of the DER bytes: two byte-identical encodings are the same
// key, and nothing is trusted beyond "this DER parses as RSA" — the
// negotiation itself authenticates every message against the key.
type KeyCache struct {
	mu     sync.RWMutex
	m      map[[sha256.Size]byte]*rsa.PublicKey
	hits   atomic.Uint64
	misses atomic.Uint64
}

// NewKeyCache returns an empty cache.
func NewKeyCache() *KeyCache {
	return &KeyCache{m: make(map[[sha256.Size]byte]*rsa.PublicKey)}
}

// Parse returns the RSA public key for der, consulting the cache
// first; hit reports whether parsing was skipped.
func (kc *KeyCache) Parse(der []byte) (key *rsa.PublicKey, hit bool, err error) {
	fp := sha256.Sum256(der)
	kc.mu.RLock()
	key = kc.m[fp]
	kc.mu.RUnlock()
	if key != nil {
		kc.hits.Add(1)
		return key, true, nil
	}
	kc.misses.Add(1)
	parsed, err := x509.ParsePKIXPublicKey(der)
	if err != nil {
		return nil, false, fmt.Errorf("session: parse peer key: %w", err)
	}
	key, ok := parsed.(*rsa.PublicKey)
	if !ok {
		return nil, false, fmt.Errorf("session: peer key is %T, want RSA", parsed)
	}
	kc.mu.Lock()
	kc.m[fp] = key
	kc.mu.Unlock()
	return key, false, nil
}

// Stats returns cumulative hit/miss counts.
func (kc *KeyCache) Stats() (hits, misses uint64) {
	return kc.hits.Load(), kc.misses.Load()
}

// Len returns the number of cached keys.
func (kc *KeyCache) Len() int {
	kc.mu.RLock()
	defer kc.mu.RUnlock()
	return len(kc.m)
}

// bufPool recycles payload buffers: the conn reader's FrameReader
// buffer is only valid until its next read, so each queued payload is
// copied into a pooled buffer and returned after the worker consumes
// it. Pooled as *[]byte to keep the slice header off the heap.
var bufPool = sync.Pool{
	New: func() any { b := make([]byte, 0, 2048); return &b },
}

// copyToPooled copies p into a pooled buffer.
func copyToPooled(p []byte) *[]byte {
	bp := bufPool.Get().(*[]byte)
	*bp = append((*bp)[:0], p...)
	return bp
}

// recycle returns a pooled buffer.
func recycle(bp *[]byte) {
	if bp != nil {
		bufPool.Put(bp)
	}
}
