package session

import (
	"bytes"
	"errors"
	"testing"
)

func TestMuxRoundTrip(t *testing.T) {
	payload := []byte{3, 1, 4, 1, 5, 9}
	frame := AppendMux(nil, TypeData, 0xdeadbeefcafe, payload)
	typ, sid, got, err := DecodeMux(frame)
	if err != nil {
		t.Fatal(err)
	}
	if typ != TypeData || sid != 0xdeadbeefcafe || !bytes.Equal(got, payload) {
		t.Fatalf("decode = (%d, %x, %v)", typ, sid, got)
	}
	// Empty payloads are legal (TypeReject carries its code in the
	// payload, but a bare abort is still a frame).
	typ, sid, got, err = DecodeMux(AppendMux(nil, TypeDone, 7, nil))
	if err != nil || typ != TypeDone || sid != 7 || len(got) != 0 {
		t.Fatalf("empty payload decode = (%d, %d, %v, %v)", typ, sid, got, err)
	}
}

func TestDecodeMuxRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{},
		{TypeData},                         // header cut short
		{TypeData, 0, 0, 0, 0, 0, 0, 0},    // one byte short
		{99, 0, 0, 0, 0, 0, 0, 0, 0, 0xff}, // unknown type
		{0, 0, 0, 0, 0, 0, 0, 0, 0},        // type zero is reserved
	}
	for i, c := range cases {
		if _, _, _, err := DecodeMux(c); !errors.Is(err, ErrMuxFrame) {
			t.Fatalf("case %d (%v): err = %v, want ErrMuxFrame", i, c, err)
		}
	}
}

func TestHelloRoundTrip(t *testing.T) {
	der := []byte("fake-der-bytes")
	got, ok := IsHello(Hello(der))
	if !ok || !bytes.Equal(got, der) {
		t.Fatalf("IsHello(Hello(der)) = (%q, %v)", got, ok)
	}
	// A legacy first frame (bare DER, which happens to start with an
	// ASN.1 SEQUENCE tag, not the magic) is not a hello.
	if _, ok := IsHello([]byte{0x30, 0x81, 0x9f, 0x30}); ok {
		t.Fatal("ASN.1 DER misread as mux hello")
	}
	if _, ok := IsHello(nil); ok {
		t.Fatal("empty frame misread as mux hello")
	}
	// Magic alone means an empty DER — structurally a hello; the key
	// parse rejects it later.
	if der, ok := IsHello(Hello(nil)); !ok || len(der) != 0 {
		t.Fatal("bare magic not recognised")
	}
}

// FuzzDecodeMux asserts the decoder never panics and that every
// accepted frame round-trips through AppendMux byte-identically.
func FuzzDecodeMux(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{TypeData, 0, 0, 0, 0, 0, 0, 0, 1, 3, 9, 9})
	f.Add([]byte{TypeReject, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, RejectOverload})
	f.Add([]byte{TypeDone, 0, 0, 0, 0, 0, 0, 0, 2, 0, 0, 0, 0, 0, 0, 3, 0xb6})
	f.Add(AppendMux(nil, TypeData, 1<<63, bytes.Repeat([]byte{0xaa}, 300)))
	f.Fuzz(func(t *testing.T, frame []byte) {
		typ, sid, payload, err := DecodeMux(frame)
		if err != nil {
			return
		}
		if got := AppendMux(nil, typ, sid, payload); !bytes.Equal(got, frame) {
			t.Fatalf("round trip: %v != %v", got, frame)
		}
	})
}
