package session

import (
	"sync"
	"testing"
)

// Regression tests for the conn-id-reuse alias: a session admitted
// under (conn, sid) by a connection that has since died must never be
// fed frames dispatched by a *newer* connection carrying the same id.
// Engine conn ids are a monotonic counter today, so the alias needs a
// recycled id to occur — these tests construct that state directly and
// pin both defense layers: the dispatch alias guard and the
// table-wide teardown sweep.

// staleConn builds a muxConn the way ServeConn does, minus the
// transport: dispatch and eviction only touch id/peerKey/out/sessions.
func staleConn(id uint64) *muxConn {
	return &muxConn{
		id:       id,
		peerKey:  &edgeKeys.Private.PublicKey,
		out:      newOutQueue(),
		sessions: make(map[uint64]*session),
	}
}

func residentSession(e *Engine, key connSid) *session {
	sh := e.table.shard(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.sessions[key]
}

// TestDispatchEvictsStaleConnIDReuse: the first frame from a
// reconnected conn whose id aliases a dead conn's resident session
// must evict the stale session and open a fresh one — not route the
// new client's traffic into the dead conn's machine.
func TestDispatchEvictsStaleConnIDReuse(t *testing.T) {
	eng, err := NewEngine(operatorEngineConfig())
	if err != nil {
		t.Fatal(err)
	}
	// No Start(): frames park in shard queues — this test is about
	// table identity, not crypto.
	c1, c2 := staleConn(42), staleConn(42)
	payload := []byte{0x01} // never reaches a worker

	eng.dispatch(c1, 7, payload)
	key := connSid{conn: 42, sid: 7}
	s1 := residentSession(eng, key)
	if s1 == nil || s1.conn != c1 {
		t.Fatalf("session not admitted for the first conn: %+v", s1)
	}

	// Reconnect reusing the id while s1 is still resident.
	eng.dispatch(c2, 7, payload)
	s2 := residentSession(eng, key)
	if s2 == nil {
		t.Fatal("no session resident after the reconnect dispatch")
	}
	if s2 == s1 {
		t.Fatal("reconnect aliased the dead conn's session: new conn's frames would feed the old machine")
	}
	if s2.conn != c2 {
		t.Fatal("resident session owned by a conn other than the dispatcher")
	}
	if got := s1.state.Load(); got != stateFailed {
		t.Fatalf("stale session state = %d, want stateFailed", got)
	}
}

// TestEvictConnSweepsTable: ServeConn teardown evicts by scanning the
// table for the conn id, so sessions the reader-local index never saw
// (admitted by another muxConn object under the same id) go too.
func TestEvictConnSweepsTable(t *testing.T) {
	eng, err := NewEngine(operatorEngineConfig())
	if err != nil {
		t.Fatal(err)
	}
	doomed, twin, bystander := staleConn(9), staleConn(9), staleConn(10)
	payload := []byte{0x01}
	for sid := uint64(1); sid <= 16; sid++ {
		eng.dispatch(doomed, sid, payload)
	}
	// twin shares the id but is a different muxConn, so its session
	// (a fresh sid: no alias to evict) is invisible to doomed's
	// reader-local index — only the table sweep can find it.
	eng.dispatch(twin, 17, payload)
	eng.dispatch(bystander, 1, payload)

	eng.evictConn(9)

	for _, sh := range eng.table.shards {
		sh.mu.Lock()
		for k := range sh.sessions {
			if k.conn == 9 {
				sh.mu.Unlock()
				t.Fatalf("session %+v survived evictConn(9)", k)
			}
		}
		sh.mu.Unlock()
	}
	if s := residentSession(eng, connSid{conn: 10, sid: 1}); s == nil || s.conn != bystander {
		t.Fatal("evictConn(9) disturbed the bystander conn's session")
	}
	if got := eng.active.Load(); got != 1 {
		t.Fatalf("active = %d after sweep, want 1 (the bystander)", got)
	}
}

// TestReconnectReuseConcurrent drives the alias guard from two
// "reader" goroutines sharing a conn id while a third tears the id
// down, under the race detector: the invariant is that the table never
// holds a session whose conn field disagrees with its key's owner at
// rest, and nothing deadlocks.
func TestReconnectReuseConcurrent(t *testing.T) {
	eng, err := NewEngine(operatorEngineConfig())
	if err != nil {
		t.Fatal(err)
	}
	old, reborn := staleConn(77), staleConn(77)
	payload := []byte{0x01}
	var wg sync.WaitGroup
	wg.Add(3)
	go func() {
		defer wg.Done()
		for sid := uint64(1); sid <= 64; sid++ {
			eng.dispatch(old, sid, payload)
		}
	}()
	go func() {
		defer wg.Done()
		for sid := uint64(1); sid <= 64; sid++ {
			eng.dispatch(reborn, sid, payload)
		}
	}()
	go func() {
		defer wg.Done()
		eng.evictConn(77)
	}()
	wg.Wait()
	eng.evictConn(77)
	for _, sh := range eng.table.shards {
		sh.mu.Lock()
		for k := range sh.sessions {
			if k.conn == 77 {
				sh.mu.Unlock()
				t.Fatalf("session %+v survived the final sweep", k)
			}
		}
		sh.mu.Unlock()
	}
}
