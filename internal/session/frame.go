// Package session is tlcd's sharded session engine: the live-path
// machinery that lets one daemon terminate 10⁵–10⁶ concurrent
// charging negotiations.
//
// Three layers (DESIGN.md "Session engine"):
//
//   - a mux framing layer over internal/protocol's length-prefixed
//     frames, so one TCP connection carries thousands of interleaved
//     negotiations and key exchange happens once per connection, not
//     once per charging cycle;
//   - a session table split into power-of-two shards (per-shard
//     mutex, fingerprint-hashed session ids) with admission control:
//     a bounded per-shard pending queue that rejects new work with a
//     typed overload frame instead of growing goroutines without
//     bound;
//   - a PoC crypto pipeline: a small worker pool drains the per-shard
//     queues in batches, so RSA sign/verify work amortises scheduling
//     across sessions, and a verified-key cache keeps x509 parsing
//     off the hot path.
//
// Negotiations run as event-driven state machines (Machine), not
// goroutine-per-session: a parked session is a few hundred bytes of
// table state, which is what makes the million-session table fit.
//
// Nothing in this package reads a wall clock (tlcvet's simtime rule);
// callers in cmd/ inject a Stopwatch for latency observation.
package session

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Magic opens a mux connection: the client's first frame is Magic
// followed by its PKIX public key DER. A first frame without the
// prefix is a legacy one-negotiation-per-conn client (whose first
// frame is the bare DER), which keeps both protocols on one port.
var Magic = []byte("TLCMUX1")

// Mux frame types. A mux frame rides inside one protocol frame as
// [type:1][session id:8 BE][payload].
const (
	// TypeData carries one negotiation message (CDR/CDA/PoC, kind
	// byte first) for the session.
	TypeData byte = 1
	// TypeReject aborts the session; payload is [code:1][utf-8 detail].
	TypeReject byte = 2
	// TypeDone acknowledges settlement to the party that sent the
	// final PoC; payload is the settled volume X as 8 bytes BE.
	TypeDone byte = 3
)

// Reject codes carried by TypeReject frames.
const (
	// RejectOverload: admission control refused the session (shard
	// table or pending queue full). The client may retry later.
	RejectOverload byte = 1
	// RejectBadMessage: the frame could not be parsed as a
	// negotiation message.
	RejectBadMessage byte = 2
	// RejectFailed: the negotiation failed validation (bad signature,
	// stale proof, plan mismatch, round exhaustion).
	RejectFailed byte = 3
	// RejectShutdown: the engine is draining.
	RejectShutdown byte = 4
)

// muxHeaderSize is the mux prefix: type byte plus session id.
const muxHeaderSize = 1 + 8

// Errors surfaced by the engine and the mux codec.
var (
	// ErrOverload is the typed admission-control rejection: the
	// target shard's session table or pending queue is full. Clients
	// see it via a TypeReject/RejectOverload frame.
	ErrOverload = errors.New("session: shard overloaded")
	// ErrMuxFrame marks a frame too short or otherwise unparseable as
	// a mux frame; the connection's framing is suspect and the caller
	// closes it.
	ErrMuxFrame = errors.New("session: malformed mux frame")
	// ErrEngineStopped is returned for work arriving after Stop.
	ErrEngineStopped = errors.New("session: engine stopped")
)

// AppendMux appends a mux frame body ([type][sid][payload]) to dst
// and returns the extended slice; pass it to protocol.WriteFrame.
func AppendMux(dst []byte, typ byte, sid uint64, payload []byte) []byte {
	dst = append(dst, typ)
	var idb [8]byte
	binary.BigEndian.PutUint64(idb[:], sid)
	dst = append(dst, idb[:]...)
	return append(dst, payload...)
}

// DecodeMux splits a mux frame body into its type, session id and
// payload. The payload aliases frame. It never panics on adversarial
// input (FuzzDecodeMux).
func DecodeMux(frame []byte) (typ byte, sid uint64, payload []byte, err error) {
	if len(frame) < muxHeaderSize {
		return 0, 0, nil, fmt.Errorf("%w: %d bytes, need at least %d", ErrMuxFrame, len(frame), muxHeaderSize)
	}
	typ = frame[0]
	switch typ {
	case TypeData, TypeReject, TypeDone:
	default:
		return 0, 0, nil, fmt.Errorf("%w: unknown type %d", ErrMuxFrame, typ)
	}
	sid = binary.BigEndian.Uint64(frame[1:9])
	return typ, sid, frame[muxHeaderSize:], nil
}

// IsHello reports whether a first frame opens a mux connection, and
// if so returns the PKIX DER that follows the magic.
func IsHello(frame []byte) (der []byte, ok bool) {
	if len(frame) < len(Magic) {
		return nil, false
	}
	for i := range Magic {
		if frame[i] != Magic[i] {
			return nil, false
		}
	}
	return frame[len(Magic):], true
}

// Hello builds the client's opening frame: Magic followed by the
// client's PKIX public key DER.
func Hello(der []byte) []byte {
	out := make([]byte, 0, len(Magic)+len(der))
	out = append(out, Magic...)
	return append(out, der...)
}
