package session

import (
	"encoding/binary"
	"errors"
	"io"
	"strconv"
	"sync"
	"sync/atomic"

	"tlc/internal/protocol"
	"tlc/internal/sim"
)

// connSid identifies a session: the engine-assigned connection id plus
// the client-chosen session id. Shard placement hashes the pair, but
// the table key is the pair itself — hash collisions share a shard,
// never a session.
type connSid struct {
	conn uint64
	sid  uint64
}

// fnv1a hashes a connSid for shard placement (FNV-1a over the 16 id
// bytes). Session ids are client-chosen and typically sequential;
// FNV-1a spreads them across shards where a modulo would stripe.
func (k connSid) fnv1a() uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < 64; i += 8 {
		h ^= (k.conn >> i) & 0xff
		h *= 1099511628211
	}
	for i := 0; i < 64; i += 8 {
		h ^= (k.sid >> i) & 0xff
		h *= 1099511628211
	}
	return h
}

// Session lifecycle states (session.state).
const (
	stateActive int32 = iota
	stateSettled
	stateFailed
)

// session is one parked negotiation: the machine plus routing state.
// A parked session owns no goroutine — this struct in a shard's map
// is its entire footprint.
type session struct {
	key  connSid
	conn *muxConn
	m    Machine
	// state transitions exactly once from active via CAS; the winner
	// performs removal and metric accounting.
	state atomic.Int32
	// start is the engine Stopwatch reading at admission (0 when no
	// stopwatch is injected).
	start float64
}

// workItem is one queued frame for one session. payload is a pooled
// copy (the conn reader's buffer is reused per frame); the draining
// worker recycles it.
type workItem struct {
	s       *session
	payload *[]byte
}

// shard is 1/Nth of the session table. The mutex guards the map and
// the pending queue; crypto work happens outside it. The draining
// flag hands the shard to at most one worker at a time, which is also
// what makes env safe to use without its own lock: ownership of env
// passes between workers through the mutex at each batch swap.
type shard struct {
	mu       sync.Mutex
	sessions map[connSid]*session
	pending  []workItem
	spare    []workItem // recycled backing array for batch swaps
	draining bool
	env      Env // strategy RNG + nonce source, worker-owned while draining
}

// table is the sharded session table plus its admission limits.
type table struct {
	shards      []*shard
	mask        uint64
	maxPerShard int // session cap per shard
	maxPending  int // queued frames per shard
}

func newTable(nshards, maxSessions, maxPending int, seed int64, nonce io.Reader) *table {
	base := sim.NewRNG(seed)
	t := &table{
		shards:      make([]*shard, nshards),
		mask:        uint64(nshards - 1),
		maxPerShard: (maxSessions + nshards - 1) / nshards,
		maxPending:  maxPending,
	}
	for i := range t.shards {
		t.shards[i] = &shard{
			sessions: make(map[connSid]*session),
			env: Env{
				RNG:   base.Fork("shard" + strconv.Itoa(i)),
				Nonce: nonce,
			},
		}
	}
	return t
}

func (t *table) shard(k connSid) *shard {
	return t.shards[k.fnv1a()&t.mask]
}

// dispatch routes one TypeData payload. It runs on the connection's
// reader goroutine; all crypto happens later on a worker. The bool
// reports whether a drain notification must be sent (the caller owns
// the work channel).
func (e *Engine) dispatch(c *muxConn, sid uint64, payload []byte) {
	key := connSid{conn: c.id, sid: sid}
	sh := e.table.shard(key)

	sh.mu.Lock()
	s := sh.sessions[key]
	if s != nil && s.conn != c {
		// Stale resident: a session keyed (conn, sid) whose muxConn is
		// not the one dispatching that conn id — the id was reused
		// after a reconnect before the dead conn's sessions were swept.
		// Without this guard the new client's frames would feed the
		// dead conn's machine (and its replies would go to the dead
		// writer). Evict the stale session and admit this one fresh.
		sh.mu.Unlock()
		Metrics.StaleEvicted.Inc()
		e.failSession(s, RejectShutdown, nil)
		sh.mu.Lock()
		s = sh.sessions[key]
		if s != nil && s.conn != c {
			// A settle/fail racing the eviction removes the entry via
			// the state CAS; nothing else can re-insert under a conn id
			// owned by this reader. Drop the frame if the map is still
			// settling out — the client will retransmit or time out.
			sh.mu.Unlock()
			return
		}
	}
	if s == nil {
		// First frame for this id: admission control, then open.
		if e.stopped.Load() {
			sh.mu.Unlock()
			c.sendReject(sid, RejectShutdown, "engine stopping")
			return
		}
		if len(sh.sessions) >= e.table.maxPerShard || len(sh.pending) >= e.table.maxPending {
			sh.mu.Unlock()
			Metrics.Rejected.Inc()
			c.sendReject(sid, RejectOverload, ErrOverload.Error())
			return
		}
		s = &session{key: key, conn: c}
		s.m.Init(&e.cfg, c.peerKey)
		if e.stopwatch != nil {
			s.start = e.stopwatch()
		}
		sh.sessions[key] = s
		c.sessions[sid] = s // reader-goroutine-only map, no lock
		Metrics.Opened.Inc()
		protocol.Metrics.NegotiationsStarted.Inc()
		active := e.active.Add(1)
		Metrics.Active.Set(active)
		for {
			peak := e.peakActive.Load()
			if active <= peak || e.peakActive.CompareAndSwap(peak, active) {
				break
			}
		}
	} else if s.state.Load() != stateActive {
		// Late frame for a finished session; drop it.
		sh.mu.Unlock()
		return
	}
	if len(sh.pending) >= e.table.maxPending {
		// The admitted session is outrunning the crypto pipeline.
		// Shedding the session (not silently dropping the frame) keeps
		// the failure visible to the peer.
		sh.mu.Unlock()
		Metrics.Backpressure.Inc()
		e.failSession(s, RejectOverload, ErrOverload)
		return
	}
	sh.pending = append(sh.pending, workItem{s: s, payload: copyToPooled(payload)})
	notify := false
	if !sh.draining {
		sh.draining = true
		notify = true
	}
	sh.mu.Unlock()
	if notify {
		// Never blocks: the draining flag caps in-flight notifications
		// at one per shard and the channel holds one slot per shard.
		e.work <- sh
	}
}

// drain is a worker's claim on one shard: swap out the pending batch,
// process it outside the lock, repeat until the queue is empty, then
// release the shard. The mutex hand-off at each swap is the
// happens-before edge that lets successive workers share sh.env.
func (e *Engine) drain(sh *shard) {
	for {
		sh.mu.Lock()
		if len(sh.pending) == 0 {
			sh.draining = false
			sh.mu.Unlock()
			return
		}
		batch := sh.pending
		sh.pending = sh.spare[:0]
		sh.spare = batch
		sh.mu.Unlock()

		Metrics.BatchSize.Observe(float64(len(batch)))
		for i := range batch {
			e.process(sh, batch[i])
			recycle(batch[i].payload)
			batch[i] = workItem{}
		}
	}
}

// process advances one session by one frame. All RSA work happens
// here, on a worker, batched with the rest of the shard's backlog.
func (e *Engine) process(sh *shard, it workItem) {
	s := it.s
	if s.state.Load() != stateActive {
		return
	}
	finished, err := s.m.Handle(*it.payload, &sh.env, func(msg []byte) error {
		out := bufPool.Get().(*[]byte)
		*out = AppendMux((*out)[:0], TypeData, s.key.sid, msg)
		s.conn.out.push(out)
		return nil
	})
	if err != nil {
		code := byte(RejectFailed)
		if errors.Is(err, protocol.ErrBadMessage) {
			code = RejectBadMessage
		}
		e.failSession(s, code, err)
		return
	}
	if finished {
		e.settleSession(s)
	}
}

// settleSession finalises a settled session: remove it, account it,
// and acknowledge the finisher if the peer signed the final PoC.
func (e *Engine) settleSession(s *session) {
	if !s.state.CompareAndSwap(stateActive, stateSettled) {
		return
	}
	e.removeSession(s)
	Metrics.Settled.Inc()
	protocol.Metrics.NegotiationsSettled.Inc()
	protocol.Metrics.RoundsTotal.Add(uint64(s.m.Rounds()))
	if e.stopwatch != nil {
		protocol.Metrics.NegotiateSeconds.Observe(e.stopwatch() - s.start)
	}
	if !s.m.Finisher() {
		// The peer sent the final PoC; ack settlement with X.
		out := bufPool.Get().(*[]byte)
		var xb [8]byte
		binary.BigEndian.PutUint64(xb[:], s.m.X())
		*out = AppendMux((*out)[:0], TypeDone, s.key.sid, xb[:])
		s.conn.out.push(out)
	}
	if e.onSettle != nil {
		e.onSettle(s.key.conn, s.key.sid, s.m.X(), s.m.Rounds())
	}
	if e.recorder != nil {
		e.recorder(ProofRecord{
			Conn:   s.key.conn,
			SID:    s.key.sid,
			PeerFP: s.conn.peerFP,
			X:      s.m.X(),
			Rounds: s.m.Rounds(),
			Proof:  s.m.Proof(),
		})
	}
}

// failSession tears down an admitted session after a validation,
// transport or backpressure failure, notifying the peer with code.
func (e *Engine) failSession(s *session, code byte, cause error) {
	if !s.state.CompareAndSwap(stateActive, stateFailed) {
		return
	}
	e.removeSession(s)
	Metrics.Failed.Inc()
	protocol.Metrics.NegotiationsFailed.Inc()
	switch {
	case errors.Is(cause, protocol.ErrStaleProof):
		protocol.Metrics.StaleProofRejections.Inc()
	case errors.Is(cause, protocol.ErrBadPeer):
		protocol.Metrics.ByzantineRejections.Inc()
	}
	detail := ""
	if cause != nil {
		detail = cause.Error()
	}
	s.conn.sendReject(s.key.sid, code, detail)
}

// evictConn fails every session still resident in the table under
// conn id. It is the authoritative teardown sweep: unlike the
// reader-local c.sessions index, it also catches sessions admitted by
// a *different* muxConn carrying the same id, so a connection id can
// never be reused while a dead conn's sessions still alias its keys.
// Victims are collected under the shard lock but failed outside it
// (failSession re-enters the shard lock through removeSession).
func (e *Engine) evictConn(id uint64) {
	var victims []*session
	for _, sh := range e.table.shards {
		sh.mu.Lock()
		for k, s := range sh.sessions {
			if k.conn == id {
				victims = append(victims, s)
			}
		}
		sh.mu.Unlock()
	}
	for _, s := range victims {
		e.failSession(s, RejectShutdown, nil)
	}
}

// removeSession deletes the session from its shard. The conn-side
// index is cleaned up lazily by the reader (it is reader-local state).
func (e *Engine) removeSession(s *session) {
	sh := e.table.shard(s.key)
	sh.mu.Lock()
	if sh.sessions[s.key] == s {
		delete(sh.sessions, s.key)
	}
	sh.mu.Unlock()
	Metrics.Active.Set(e.active.Add(-1))
}
