// Package transport implements a minimal reliable transport (a
// TCP-like ARQ with cumulative ACKs and a retransmission timer) over
// the netem substrate. It exists to reproduce the paper's §3.1 gap
// cause (4): "Transport-layer retransmission: The data can be
// over-charged due to spurious retransmission" [12] — every
// retransmitted copy crosses the gateway's metering point and is
// charged, even when the original was merely delayed, while the
// application-level received volume counts each byte once.
package transport

import (
	"time"

	"tlc/internal/netem"
	"tlc/internal/sim"
)

// Segment numbers are carried in the packet ID space; the sender owns
// an IDGen and maps IDs to sequence numbers.

// ackMsg models the reverse-path acknowledgement. ACKs ride outside
// the metered data path (the receiver invokes the sender's Ack
// directly after the reverse propagation delay).
type ackMsg struct {
	cumSeq uint64
}

// Sender is the reliable sending endpoint.
type Sender struct {
	Sched *sim.Scheduler
	IDs   *netem.IDGen
	// Dst is the forward data path (through the metered network).
	Dst netem.Node
	// Flow/IMSI/QCI/Dir stamp outgoing segments.
	Flow string
	IMSI string
	QCI  uint8
	Dir  netem.Direction

	// SegmentSize is the payload bytes per segment.
	SegmentSize int
	// Window is the send window in segments.
	Window int
	// RTO is the (fixed) retransmission timeout. A short RTO
	// relative to the path RTT produces spurious retransmissions.
	RTO time.Duration
	// MaxRetries bounds retransmissions per segment.
	MaxRetries int
	// BackoffFactor, when > 1, multiplies the timeout per retry of a
	// segment (exponential backoff), which keeps retransmissions from
	// hammering a path under injected fault bursts. Values <= 1 keep
	// the paper's fixed-RTO behaviour exactly.
	BackoffFactor float64

	// ReverseDelay is the ACK path latency.
	ReverseDelay time.Duration

	nextSeq    uint64 // next sequence to send
	ackedTo    uint64 // cumulative ack (all < ackedTo delivered)
	toSend     uint64 // application backlog in segments
	inFlight   map[uint64]*flight
	sentData   uint64 // bytes handed to the network incl. rtx
	uniqueData uint64 // bytes of distinct segments sent once
	rtxData    uint64 // retransmitted bytes
	spurious   uint64 // retransmissions for segments already delivered
	done       func()
}

type flight struct {
	timer   *sim.Event
	retries int
}

// NewSender builds a sender with sane defaults.
func NewSender(sched *sim.Scheduler, ids *netem.IDGen, dst netem.Node, flow, imsi string) *Sender {
	return &Sender{
		Sched: sched, IDs: ids, Dst: dst, Flow: flow, IMSI: imsi,
		QCI: 9, SegmentSize: 1400, Window: 32,
		RTO: 200 * time.Millisecond, MaxRetries: 8,
		ReverseDelay: 10 * time.Millisecond,
		inFlight:     map[uint64]*flight{},
	}
}

// Transfer queues n segments for reliable delivery and starts
// sending; onDone (optional) fires when everything is acknowledged.
func (s *Sender) Transfer(segments int, onDone func()) {
	s.toSend += uint64(segments)
	s.done = onDone
	s.pump()
}

// pump fills the window.
func (s *Sender) pump() {
	for s.nextSeq < s.ackedTo+uint64(s.Window) && s.nextSeq < s.toSend {
		seq := s.nextSeq
		s.nextSeq++
		s.uniqueData += uint64(s.SegmentSize)
		s.transmit(seq, 0)
	}
}

// transmit sends one segment copy and arms its timer.
func (s *Sender) transmit(seq uint64, retries int) {
	pkt := &netem.Packet{
		ID:   s.IDs.Next(),
		Flow: s.Flow, IMSI: s.IMSI, QCI: s.QCI, Dir: s.Dir,
		Size: s.SegmentSize,
		Sent: s.Sched.Now(),
	}
	s.sentData += uint64(s.SegmentSize)
	if retries > 0 {
		s.rtxData += uint64(s.SegmentSize)
		if seq < s.ackedTo {
			s.spurious += uint64(s.SegmentSize)
		}
	}
	fl := &flight{retries: retries}
	rto := s.RTO
	if s.BackoffFactor > 1 {
		for i := 0; i < retries; i++ {
			rto = time.Duration(float64(rto) * s.BackoffFactor)
		}
	}
	fl.timer = s.Sched.After(rto, func() {
		s.onTimeout(seq)
	})
	s.inFlight[seq] = fl
	// Tag the packet with its sequence via the Seq field.
	pkt.Seq = seq
	s.Dst.Recv(pkt)
}

func (s *Sender) onTimeout(seq uint64) {
	fl, ok := s.inFlight[seq]
	if !ok {
		return
	}
	if seq < s.ackedTo {
		delete(s.inFlight, seq)
		return
	}
	if fl.retries >= s.MaxRetries {
		// Give up on the segment: advance as if acked so the
		// transfer cannot wedge (the application's loss tolerance).
		delete(s.inFlight, seq)
		s.maybeAdvance()
		return
	}
	s.transmit(seq, fl.retries+1)
}

// Ack delivers a cumulative acknowledgement (invoked by the Receiver
// after the reverse-path delay).
func (s *Sender) Ack(cumSeq uint64) {
	if cumSeq <= s.ackedTo {
		return
	}
	for seq := s.ackedTo; seq < cumSeq; seq++ {
		if fl, ok := s.inFlight[seq]; ok {
			s.Sched.Cancel(fl.timer)
			delete(s.inFlight, seq)
		}
	}
	s.ackedTo = cumSeq
	s.maybeAdvance()
}

func (s *Sender) maybeAdvance() {
	s.pump()
	if s.ackedTo >= s.toSend && s.done != nil {
		done := s.done
		s.done = nil
		done()
	}
}

// Stats returns (bytes sent incl. retransmissions, unique bytes,
// retransmitted bytes, spurious retransmitted bytes).
func (s *Sender) Stats() (sent, unique, rtx, spurious uint64) {
	return s.sentData, s.uniqueData, s.rtxData, s.spurious
}

// AckedBytes returns the reliably delivered volume.
func (s *Sender) AckedBytes() uint64 { return s.ackedTo * uint64(s.SegmentSize) }

// Receiver is the reliable receiving endpoint: it tracks the highest
// in-order sequence, counts distinct delivered bytes once, and sends
// cumulative ACKs back to the sender.
type Receiver struct {
	Sched  *sim.Scheduler
	Sender *Sender

	received map[uint64]bool
	cum      uint64
	unique   uint64 // distinct payload bytes delivered
	dups     uint64 // duplicate payload bytes discarded
}

// NewReceiver builds the receiving endpoint bound to its sender.
func NewReceiver(sched *sim.Scheduler, sender *Sender) *Receiver {
	return &Receiver{Sched: sched, Sender: sender, received: map[uint64]bool{}}
}

// Recv implements netem.Node.
func (r *Receiver) Recv(p *netem.Packet) {
	seq := p.Seq
	if r.received[seq] || seq < r.cum {
		r.dups += uint64(p.Size)
	} else {
		r.received[seq] = true
		r.unique += uint64(p.Size)
		for r.received[r.cum] {
			delete(r.received, r.cum)
			r.cum++
		}
	}
	cum := r.cum
	r.Sched.After(r.Sender.ReverseDelay, func() {
		r.Sender.Ack(cum)
	})
}

// UniqueBytes returns distinct payload bytes delivered (what the edge
// application actually received).
func (r *Receiver) UniqueBytes() uint64 { return r.unique }

// DuplicateBytes returns discarded duplicate payload bytes — traffic
// the gateway charged twice.
func (r *Receiver) DuplicateBytes() uint64 { return r.dups }
